GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# verify is the pre-merge gate: everything compiles, vet is clean, and the
# full suite passes under the race detector.
verify: build vet race
