GO ?= go

.PHONY: build test vet race bench lint verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# lint runs the determinism linter over all simulator and CLI code; any
# wall-clock read, global math/rand use, or unsorted map-order output fails
# (warnings included, via -Werror).
lint:
	$(GO) run ./cmd/plasma-lint -Werror ./internal/... ./cmd/...

# verify is the pre-merge gate: everything compiles, vet is clean, the full
# suite passes under the race detector, and the determinism lint is clean.
verify: build vet race lint
