GO ?= go

# Perf-gate knobs: the checked-in baseline to compare against, and the
# relative slowdown allowed before bench-quick fails. The wall-time
# tolerance is deliberately wide (shared/virtualized runners jitter by tens
# of percent); the gate's load-bearing checks — allocation counts and
# bit-exact event/summary determinism at fixed seed — are timing-immune,
# and a real hot-path regression (e.g. reintroducing per-event boxing)
# multiplies allocs/op far past any tolerance.
BENCH_BASELINE ?= BENCH_2026-08-05.json
BENCH_TOLERANCE ?= 0.60

.PHONY: build test vet race bench bench-quick bench-baseline lint verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-quick measures the quick-scale evaluation sweep and fails on
# regression against the checked-in baseline: slowdown/alloc growth past
# BENCH_TOLERANCE, or any determinism drift at fixed seed.
bench-quick:
	$(GO) run ./cmd/plasma-bench -compare $(BENCH_BASELINE) -tolerance $(BENCH_TOLERANCE)

# bench-baseline regenerates the checked-in baseline (run on a quiet
# machine; commit the refreshed JSON alongside the change justifying it).
bench-baseline:
	$(GO) run ./cmd/plasma-bench -json -o $(BENCH_BASELINE)

# lint runs the determinism linter over all simulator and CLI code; any
# wall-clock read, global math/rand use, or unsorted map-order output fails
# (warnings included, via -Werror).
lint:
	$(GO) run ./cmd/plasma-lint -Werror ./internal/... ./cmd/...

# verify is the pre-merge gate: everything compiles, vet is clean, the full
# suite passes under the race detector, the determinism lint is clean, and
# the quick-scale sweep shows no perf regression or determinism drift
# against the checked-in bench baseline.
verify: build vet race lint bench-quick
