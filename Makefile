GO ?= go

# Perf-gate knobs: the checked-in baseline to compare against, and the
# relative slowdown allowed before bench-quick fails. The wall-time
# tolerance is deliberately wide (shared/virtualized runners jitter by tens
# of percent); the gate's load-bearing checks — allocation counts and
# bit-exact event/summary determinism at fixed seed — are timing-immune,
# and a real hot-path regression (e.g. reintroducing per-event boxing)
# multiplies allocs/op far past any tolerance.
BENCH_BASELINE ?= BENCH_2026-08-08.json
BENCH_TOLERANCE ?= 0.60

# Coverage gate: `make cover` fails when total statement coverage drops
# below the floor. Measured 84.4% when the floor was set; the slack keeps
# honest refactors from fighting the gate while still catching a PR that
# lands a subsystem with no tests.
COVER_FLOOR ?= 80.0
COVER_PROFILE ?= coverage.out

# Scratch dir for the trace round-trip smoke test.
TRACE_SMOKE_DIR ?= .trace-smoke

.PHONY: build test vet race bench bench-quick bench-baseline bench-shards burst-quick stream-quick plan-quick lint lint-model cover trace-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-quick measures the quick-scale evaluation sweep and fails on
# regression against the checked-in baseline: slowdown/alloc growth past
# BENCH_TOLERANCE, or any determinism drift at fixed seed.
bench-quick:
	$(GO) run ./cmd/plasma-bench -compare $(BENCH_BASELINE) -tolerance $(BENCH_TOLERANCE)

# bench-baseline regenerates the checked-in baseline (run on a quiet
# machine; commit the refreshed JSON alongside the change justifying it).
bench-baseline:
	$(GO) run ./cmd/plasma-bench -json -o $(BENCH_BASELINE)

# bench-shards proves the sharded kernel: every quick experiment id must be
# byte-identical (report + trace) at shards=1 vs GOMAXPROCS, race-clean on
# the sharded scale runs, and the shard-twin sweep must show at least a 2x
# events/sec speedup on machines with 4+ CPUs (the gate self-disables below
# that — on 1-2 cores the barrier overhead makes a speedup unmeasurable, so
# the ratio is reported but not enforced).
bench-shards:
	$(GO) test -count=1 -run 'TestShardEquivalenceAllQuickIDs|TestScaleShardTwinsMatch' ./internal/experiments/
	$(GO) test -race -count=1 -run 'TestScaleShard|TestShardDifferentialRandomized' ./internal/experiments/ ./internal/sim/
	$(GO) run ./cmd/plasma-bench -min-speedup 2.0 > /dev/null

# burst-quick runs the burst/failure robustness family at quick sizes: the
# flash-crowd sweep across the provisioning spectrum, the chaos-composed
# flash-during-GEM-crash run, and the burst shape/determinism tests.
burst-quick:
	$(GO) run ./cmd/plasma-sim burst_flash burst_chaos
	$(GO) test -run 'TestBurst' ./internal/experiments/

# stream-quick runs the windowed streaming family at quick sizes: the
# skew-shift recovery race against the Elasticutor-style repartitioner, the
# chaos-composed shift, and the stream acceptance/shape/determinism tests
# (including the pinned seed-1 recovery numbers).
stream-quick:
	$(GO) run ./cmd/plasma-sim stream_skew stream_chaos
	$(GO) test -run 'TestStream' ./internal/experiments/

# plan-quick runs the batched-planner family at quick sizes: both plan_*
# races (batch multi-resource round vs the legacy greedy, DESIGN.md §11),
# the planner unit/regression suite (band-math fixes, batch packing,
# affinity anchoring, transfer pipelining), and the decision-throughput
# benchmark at its quick scale.
plan-quick:
	$(GO) run ./cmd/plasma-sim plan_pagerank plan_halo
	$(GO) test -run 'TestPlan|TestBatch|TestGroupAnchor|TestDecisionBench|TestXfer' ./internal/emr/ ./internal/experiments/ ./internal/actor/
	$(GO) test -bench 'PlannerDecision/64k' -benchtime 1x -run '^$$' ./internal/emr/

# lint runs the determinism linter over all simulator and CLI code; any
# wall-clock read, global math/rand use, or unsorted map-order output fails
# (warnings included, via -Werror).
lint:
	$(GO) run ./cmd/plasma-lint -Werror ./internal/... ./cmd/...

# lint-model runs the offline policy model checker: the model package's
# corpus verdicts and the shipped-policy gate (every internal/apps and
# examples/ policy must be EPL2xx-clean), then the CLI end to end with
# -model -Werror over the clean corpus policies (any new model finding —
# oscillation, overload dead state, pool dead end, assert violation —
# fails the build).
lint-model:
	$(GO) test -count=1 ./internal/lint/model/
	$(GO) run ./cmd/plasma-lint -model -Werror internal/lint/testdata/clean_*.epl internal/lint/testdata/assert_ok.epl

# cover measures total statement coverage and fails below COVER_FLOOR.
# CI uploads $(COVER_PROFILE) as an artifact for inspection.
cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) ./...
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' || \
		{ echo "FAIL: coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# trace-smoke round-trips the decision tracer end to end: a quick traced
# experiment run twice at the same seed must produce byte-identical JSONL,
# summarize and diff must accept it, and the Chrome export must render.
trace-smoke:
	@rm -rf $(TRACE_SMOKE_DIR) && mkdir -p $(TRACE_SMOKE_DIR)
	$(GO) run ./cmd/plasma-sim -trace $(TRACE_SMOKE_DIR)/a.jsonl fig5 > /dev/null
	$(GO) run ./cmd/plasma-sim -trace $(TRACE_SMOKE_DIR)/b.jsonl fig5 > /dev/null
	cmp $(TRACE_SMOKE_DIR)/a.jsonl $(TRACE_SMOKE_DIR)/b.jsonl
	$(GO) run ./cmd/plasma-trace summarize $(TRACE_SMOKE_DIR)/a.jsonl | grep -q '^records:'
	$(GO) run ./cmd/plasma-trace diff $(TRACE_SMOKE_DIR)/a.jsonl $(TRACE_SMOKE_DIR)/b.jsonl > /dev/null
	$(GO) run ./cmd/plasma-trace chrome $(TRACE_SMOKE_DIR)/a.jsonl > $(TRACE_SMOKE_DIR)/a.trace.json
	@rm -rf $(TRACE_SMOKE_DIR)
	@echo "trace-smoke OK: same-seed traces byte-identical, tooling round-trips"

# verify is the pre-merge gate: everything compiles, vet is clean, the full
# suite passes under the race detector, the determinism lint is clean, the
# policy model checker passes every shipped policy, the quick-scale sweep
# shows no perf regression or determinism drift against the checked-in
# bench baseline, and the decision tracer round-trips.
verify: build vet race lint lint-model bench-quick trace-smoke
