package plasma

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/apps/pagerank"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/graph"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// Ablation benchmarks isolate the design choices DESIGN.md calls out:
// which graph partitioner feeds PageRank, whether the placement-stability
// rule (§4.3) is enforced, and whether balance outranks colocate (§4.3's
// priority example).

// pagerankRun deploys the fig6a-style setup with a chosen partitioner and
// EMR config, returning converged time and migration count.
func pagerankRun(seed int64, partitioner string, cfg emr.Config, elastic bool) (sim.Duration, int) {
	k := sim.New(seed)
	c := cluster.New(k, 8, cluster.M5Large)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	g := graph.GeneratePowerLaw(12000, 10, 2.1, seed)
	var parts []int
	switch partitioner {
	case "multilevel":
		parts = graph.PartitionMultilevel(g, 32, seed)
	case "ldg":
		parts = graph.PartitionLDG(g, 32)
	case "hash":
		parts = graph.PartitionHash(g, 32)
	}
	perm := sim.New(seed*7 + 1).Rand().Perm(32)
	placement := make([]cluster.MachineID, 32)
	for i, p := range perm {
		placement[p] = cluster.MachineID(i % 8)
	}
	app := pagerank.Build(k, rt, pagerank.Config{
		Graph: g, Parts: parts, K: 32,
		PerEdgeCost: 55 * sim.Microsecond, SyncOverhead: 12 * sim.Millisecond,
		HeteroSpread: 0.5, Iterations: 120,
	}, placement)
	migs := 0
	if elastic {
		mgr := emr.New(k, c, rt, prof, epl.MustParse(pagerank.PolicySrc), cfg)
		mgr.Start()
		app.Start(k)
		for !app.Done && k.Step() {
		}
		migs = mgr.Stats.ExecutedMigrations
		return app.ConvergedTime(), migs
	}
	app.Start(k)
	for !app.Done && k.Step() {
	}
	return app.ConvergedTime(), migs
}

// BenchmarkAblationPartitioner compares PageRank converged time across
// partitioners, with PLASMA balancing on: better initial cuts leave less
// work for the elasticity runtime.
func BenchmarkAblationPartitioner(b *testing.B) {
	for _, part := range []string{"multilevel", "ldg", "hash"} {
		part := part
		b.Run(part, func(b *testing.B) {
			var sumMS, sumCut float64
			for i := 0; i < b.N; i++ {
				seed := int64(i + 1)
				d, _ := pagerankRun(seed, part, emr.Config{Period: 500 * sim.Millisecond}, true)
				g := graph.GeneratePowerLaw(12000, 10, 2.1, seed)
				var parts []int
				switch part {
				case "multilevel":
					parts = graph.PartitionMultilevel(g, 32, seed)
				case "ldg":
					parts = graph.PartitionLDG(g, 32)
				case "hash":
					parts = graph.PartitionHash(g, 32)
				}
				sumCut += float64(graph.EdgeCut(g, parts))
				sumMS += float64(d) / float64(sim.Millisecond)
			}
			b.ReportMetric(sumMS/float64(b.N), "converged_ms")
			b.ReportMetric(sumCut/float64(b.N), "edge_cut")
		})
	}
}

// BenchmarkAblationStability compares the §4.3 placement-stability rule
// (min residence = one elasticity period) against no stability: without
// it, actors may thrash between servers every period.
func BenchmarkAblationStability(b *testing.B) {
	cases := []struct {
		name string
		res  sim.Duration
	}{
		{"minResidence=period", 0}, // 0 defaults to the period
		{"minResidence=1ms", sim.Millisecond},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var sumMS, sumMigs float64
			for i := 0; i < b.N; i++ {
				d, migs := pagerankRun(int64(i+1), "multilevel",
					emr.Config{Period: 500 * sim.Millisecond, MinResidence: c.res}, true)
				sumMS += float64(d) / float64(sim.Millisecond)
				sumMigs += float64(migs)
			}
			b.ReportMetric(sumMS/float64(b.N), "converged_ms")
			b.ReportMetric(sumMigs/float64(b.N), "migrations")
		})
	}
}

// BenchmarkAblationPriority inverts the §4.3 priority example (colocate
// above balance) on the PageRank balance workload combined with a colocate
// rule, measuring how often conflicting actions had to be resolved.
func BenchmarkAblationPriority(b *testing.B) {
	policies := map[string]map[epl.BehaviorKind]int{
		"balance>colocate": nil, // defaults
		"colocate>balance": {
			epl.KindColocate: 50,
			epl.KindBalance:  40,
		},
	}
	for _, name := range []string{"balance>colocate", "colocate>balance"} {
		pri := policies[name]
		b.Run(name, func(b *testing.B) {
			var sumMS float64
			for i := 0; i < b.N; i++ {
				d, _ := pagerankRun(int64(i+1), "multilevel",
					emr.Config{Period: 500 * sim.Millisecond, Priorities: pri}, true)
				sumMS += float64(d) / float64(sim.Millisecond)
			}
			b.ReportMetric(sumMS/float64(b.N), "converged_ms")
		})
	}
}
