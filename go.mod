module plasma

go 1.22
