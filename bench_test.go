package plasma

import (
	"testing"

	"plasma/internal/experiments"
)

// Each benchmark regenerates one of the paper's tables or figures on the
// simulated cluster and reports its headline metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` reprints the whole evaluation. The runs are
// deterministic per seed; vary the seed across iterations so means are
// meaningful.

func benchExperiment(b *testing.B, id string, metricKeys ...string) {
	b.Helper()
	sums := map[string]float64{}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Config{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range metricKeys {
			sums[k] += res.Summary[k]
		}
	}
	for _, k := range metricKeys {
		b.ReportMetric(sums[k]/float64(b.N), k)
	}
}

// BenchmarkTable1Apps compiles every application policy (Table 1).
func BenchmarkTable1Apps(b *testing.B) {
	benchExperiment(b, "table1", "apps", "total_rules")
}

// BenchmarkTable3Overhead measures the EPR profiling overhead (Table 3).
func BenchmarkTable3Overhead(b *testing.B) {
	benchExperiment(b, "table3", "worst_overhead")
}

// BenchmarkFig5Metadata compares reserve+colocate vs def-rule vs none.
func BenchmarkFig5Metadata(b *testing.B) {
	benchExperiment(b, "fig5", "rescol_vs_norule_reduction", "defrule_vs_norule_reduction")
}

// BenchmarkFig6aPageRank compares PLASMA vs Orleans balancing.
func BenchmarkFig6aPageRank(b *testing.B) {
	benchExperiment(b, "fig6a", "plasma_improvement_pct")
}

// BenchmarkFig6bProvision compares dynamic allocation vs conservative.
func BenchmarkFig6bProvision(b *testing.B) {
	benchExperiment(b, "fig6b", "servers_plasma", "resource_saving_pct")
}

// BenchmarkFig7aMizan compares elasticity gains: PLASMA vs Mizan.
func BenchmarkFig7aMizan(b *testing.B) {
	benchExperiment(b, "fig7a", "gain_pct_plasma", "gain_pct_mizan")
}

// BenchmarkFig7bcTraces traces per-server CPU% and actor distributions.
func BenchmarkFig7bcTraces(b *testing.B) {
	benchExperiment(b, "fig7bc", "cpu_imbalance_first", "cpu_imbalance_last", "migrations")
}

// BenchmarkFig8Dynamic traces scale-out from one server.
func BenchmarkFig8Dynamic(b *testing.B) {
	benchExperiment(b, "fig8", "speedup", "final_servers")
}

// BenchmarkFig9EStore compares PLASMA rules vs in-app E-Store elasticity.
func BenchmarkFig9EStore(b *testing.B) {
	benchExperiment(b, "fig9", "tail_ms_plasma", "tail_ms_in-app", "tail_ms_none")
}

// BenchmarkFig10Media sweeps elasticity periods on the Media Service.
func BenchmarkFig10Media(b *testing.B) {
	benchExperiment(b, "fig10", "mean_latency_ms_20s", "mean_latency_ms_60s", "peak_servers_20s")
}

// BenchmarkFig11aHalo compares the interaction rule vs the default rule.
func BenchmarkFig11aHalo(b *testing.B) {
	benchExperiment(b, "fig11a", "mean_ms_inter-rule", "mean_ms_def-rule")
}

// BenchmarkFig11bHaloClients measures per-client misplacement penalties.
func BenchmarkFig11bHaloClients(b *testing.B) {
	benchExperiment(b, "fig11b", "misplaced_early_over_late")
}

// BenchmarkFig11cGEMs sweeps the number of GEMs on the Halo router balance.
func BenchmarkFig11cGEMs(b *testing.B) {
	benchExperiment(b, "fig11c", "peak_ms_1gem", "final_ms_1gem", "final_ms_4gem")
}

// BenchmarkScale sweeps GEM count on the synthetic large-fleet balance.
func BenchmarkScale(b *testing.B) {
	benchExperiment(b, "scale", "migrations_4000_1gem", "migrations_4000_4gem", "spare_filled_4000_4gem")
}

// BenchmarkScaleSnap measures fleet-wide EPR snapshot construction; its
// allocs/op is the snapshot-arena regression gate.
func BenchmarkScaleSnap(b *testing.B) {
	benchExperiment(b, "scale_snap", "actors", "call_records", "messages")
}
