// Command plasma-bench runs the full evaluation sweep (every table and
// figure of §5) and reports it in two forms:
//
// Report mode (default) emits an EXPERIMENTS.md-style markdown report with
// the paper's claims next to the measured results:
//
//	plasma-bench [-full] [-seed N] > report.md
//
// Bench mode (-json, -compare, and/or -min-speedup) measures the sweep
// instead: wall time,
// allocations, simulated-event throughput, and peak event-queue depth per
// experiment id, written as a BENCH_<date>.json perf baseline. -compare
// checks the fresh measurement against a previous baseline and exits
// non-zero on regression (>10% by default), so `make verify` fails when a
// change slows the hot path:
//
//	plasma-bench -json                      # write BENCH_<date>.json
//	plasma-bench -json -o BENCH_ci.json     # explicit output path
//	plasma-bench -compare BENCH_base.json   # measure, diff, gate
//	plasma-bench -compare BENCH_base.json -tolerance 0.25
//	plasma-bench -json -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Bench mode also reports the sharded-kernel speedup — the events/sec
// ratio between the scale_shard (4-shard kernel) and scale_shard1
// (sequential reference) twins, which run the identical seeded workload.
// -min-speedup gates on it (machines with >= 4 CPUs only; a single-core
// runner reports the ratio without gating, since intra-run parallelism
// cannot win wall-clock there).
//
// The JSON schema is documented in EXPERIMENTS.md ("Perf baselines").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"plasma/internal/emr"
	"plasma/internal/experiments"
)

// benchSchema identifies the BENCH_*.json layout; bump on breaking change.
const benchSchema = "plasma-bench/v1"

// BenchExperiment is one experiment's measurement in a BENCH_*.json file.
type BenchExperiment struct {
	ID    string `json:"id"`
	Iters int    `json:"iters"`
	// NsPerOp is the minimum wall time across iterations for one full run
	// of the experiment.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is the heap allocation count of the last iteration.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Events is the number of simulation-kernel events one run fires.
	Events uint64 `json:"events"`
	// EventsPerSec is Events divided by the best wall time.
	EventsPerSec float64 `json:"events_per_sec"`
	// PeakQueue is the deepest event queue any kernel in the run reached.
	PeakQueue int `json:"peak_queue"`
	// Summary carries the experiment's finite summary values so -compare
	// can flag determinism drift at fixed seed, not just slowdowns.
	Summary map[string]float64 `json:"summary,omitempty"`
}

// BenchFile is the on-disk perf baseline.
type BenchFile struct {
	Schema      string            `json:"schema"`
	Date        string            `json:"date"`
	Mode        string            `json:"mode"` // "quick" or "full"
	Seed        int64             `json:"seed"`
	GoVersion   string            `json:"go"`
	Experiments []BenchExperiment `json:"experiments"`
}

func main() {
	full := flag.Bool("full", false, "run paper-scale workloads (slower)")
	seed := flag.Int64("seed", 1, "simulation seed")
	shards := flag.Int("shards", 1, "kernel shard count for shard-capable experiments (results are byte-identical at any count)")
	jsonOut := flag.Bool("json", false, "benchmark the sweep and write a BENCH_<date>.json baseline")
	outPath := flag.String("o", "", "output path for -json (default BENCH_<date>.json)")
	comparePath := flag.String("compare", "", "benchmark the sweep and diff against this baseline; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.10, "relative slowdown tolerated by -compare before failing")
	minSpeedup := flag.Float64("min-speedup", 0, "fail bench mode unless scale_shard beats scale_shard1 by this events/sec factor (0 disables; requires >= 4 CPUs, otherwise reported but not gated)")
	iters := flag.Int("iters", 3, "iterations per experiment in bench mode (min wall time wins)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the bench sweep to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the bench sweep to this file")
	flag.Parse()

	cfg := experiments.Config{Full: *full, Seed: *seed, Shards: *shards}
	if *jsonOut || *comparePath != "" || *minSpeedup > 0 {
		os.Exit(benchMain(cfg, *iters, *outPath, *comparePath, *tolerance, *minSpeedup, *cpuProfile, *memProfile))
	}
	reportMain(cfg)
}

// reportMain is the original markdown report mode, byte-for-byte stable
// per (mode, seed).
func reportMain(cfg experiments.Config) {
	fmt.Println("# PLASMA evaluation sweep")
	fmt.Println()
	mode := "quick"
	if cfg.Full {
		mode = "full (paper-scale)"
	}
	fmt.Printf("Mode: %s, seed %d. Virtual-time simulation; compare shapes, not absolute numbers.\n\n", mode, cfg.Seed)

	for _, id := range experiments.IDs() {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("## %s — %s\n\n```\n%s```\n\n", res.ID, res.Title, res.Render())
		if len(res.Series) > 0 {
			names := make([]string, 0, len(res.Series))
			for n := range res.Series {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Printf("Series available: %v\n\n", names)
		}
	}
}

func benchMain(cfg experiments.Config, iters int, outPath, comparePath string, tolerance, minSpeedup float64, cpuProfile, memProfile string) int {
	if iters < 1 {
		iters = 1
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	bf := measureSweep(cfg, iters)
	printBenchTable(os.Stdout, bf)

	if speedup, ok := shardSpeedup(bf); ok {
		fmt.Printf("shard speedup: scale_shard vs scale_shard1 events/sec = %.2fx on %d CPU(s)\n", speedup, runtime.NumCPU())
		if minSpeedup > 0 {
			if runtime.NumCPU() < 4 {
				fmt.Printf("note: -min-speedup %.1f not gated (%d CPU(s) < 4; intra-run parallelism cannot show a wall-clock win here)\n", minSpeedup, runtime.NumCPU())
			} else if speedup < minSpeedup {
				fmt.Printf("SPEEDUP GATE FAILED: %.2fx < %.1fx required\n", speedup, minSpeedup)
				return 1
			}
		}
	}

	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		f.Close()
	}

	if outPath == "" {
		outPath = "BENCH_" + bf.Date + ".json"
	}
	exit := 0
	if comparePath != "" {
		old, err := readBenchFile(comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		regressions, notes := compareBench(old, bf, tolerance)
		for _, n := range notes {
			fmt.Printf("note: %s\n", n)
		}
		for _, r := range regressions {
			fmt.Printf("REGRESSION: %s\n", r)
		}
		if len(regressions) > 0 {
			// Every finding was already printed above; the consolidated line
			// names each offending experiment once, so a CI log scan (or a
			// human skimming the tail) sees the full blast radius without
			// counting REGRESSION lines.
			fmt.Printf("%d regression(s) vs %s (tolerance %.0f%%); experiments: %s\n",
				len(regressions), comparePath, tolerance*100,
				strings.Join(regressedIDs(regressions), " "))
			exit = 1
		} else {
			fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", comparePath, tolerance*100)
		}
	}
	if flagPassed("json") {
		data, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	}
	return exit
}

func flagPassed(name string) bool {
	found := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			found = true
		}
	})
	return found
}

// measureSweep benchmarks every registered experiment. Wall time is the
// minimum across iterations (the least-noisy estimator for a deterministic
// workload); allocation counts come from the final iteration.
func measureSweep(cfg experiments.Config, iters int) BenchFile {
	mode := "quick"
	if cfg.Full {
		mode = "full"
	}
	bf := BenchFile{
		Schema: benchSchema,
		//lint:ignore DET001 bench mode stamps the baseline file with the wall-clock date
		Date:      time.Now().Format("2006-01-02"),
		Mode:      mode,
		Seed:      cfg.Seed,
		GoVersion: runtime.Version(),
	}
	for _, id := range experiments.IDs() {
		be, err := benchOne(id, cfg, iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bf.Experiments = append(bf.Experiments, be)
	}
	bf.Experiments = append(bf.Experiments, benchDecision(cfg, iters))
	return bf
}

// benchDecision measures the planner_decision_time entry: one batch-planner
// GEM decision round over a synthetic dense snapshot — a million actors on a
// thousand servers in full mode, 64k on 256 in quick mode. The snapshot is
// built outside the timed region (emr.NewDecisionBench), so ns/op is the
// decision round alone, the part that must stay off the migration critical
// path. Events counts the snapshot rows one round scans, making events/sec
// the planner's decision throughput in actors/sec; the fixed synthetic fleet
// makes both planners' action counts pure functions of the sizes, so the
// Summary values feed -compare's determinism gate like any experiment's.
func benchDecision(cfg experiments.Config, iters int) BenchExperiment {
	actors, servers := 65536, 256
	if cfg.Full {
		actors, servers = 1_000_000, 1000
	}
	db := emr.NewDecisionBench(actors, servers)
	be := BenchExperiment{ID: "planner_decision_time", Iters: iters, NsPerOp: math.MaxInt64}
	batchActions := 0
	for i := 0; i < iters; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		//lint:ignore DET001 bench mode measures real wall time by design
		start := time.Now()
		batchActions = db.Run("batch")
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if ns := elapsed.Nanoseconds(); ns < be.NsPerOp {
			be.NsPerOp = ns
		}
		be.AllocsPerOp = int64(after.Mallocs - before.Mallocs)
	}
	legacyActions := db.Run("")
	be.Events = uint64(actors)
	if be.NsPerOp > 0 {
		be.EventsPerSec = float64(be.Events) / (float64(be.NsPerOp) / 1e9)
	}
	be.Summary = map[string]float64{
		"actors":         float64(actors),
		"servers":        float64(servers),
		"actions_batch":  float64(batchActions),
		"actions_legacy": float64(legacyActions),
	}
	return be
}

func benchOne(id string, cfg experiments.Config, iters int) (BenchExperiment, error) {
	be := BenchExperiment{ID: id, Iters: iters, NsPerOp: math.MaxInt64}
	for i := 0; i < iters; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		//lint:ignore DET001 bench mode measures real wall time by design
		start := time.Now()
		res, err := experiments.Run(id, cfg)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return be, err
		}
		if ns := elapsed.Nanoseconds(); ns < be.NsPerOp {
			be.NsPerOp = ns
		}
		be.AllocsPerOp = int64(after.Mallocs - before.Mallocs)
		be.Events = res.EventsFired
		be.PeakQueue = res.PeakQueue
		if i == iters-1 {
			be.Summary = finiteSummary(res.Summary)
		}
	}
	if be.NsPerOp > 0 {
		be.EventsPerSec = float64(be.Events) / (float64(be.NsPerOp) / 1e9)
	}
	return be, nil
}

// finiteSummary drops non-finite values: NaN/Inf are not representable in
// JSON, and a conditional summary key may legitimately be absent.
func finiteSummary(in map[string]float64) map[string]float64 {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]float64, len(in))
	for k, v := range in {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out[k] = v
	}
	return out
}

func printBenchTable(w *os.File, bf BenchFile) {
	fmt.Fprintf(w, "plasma-bench %s mode, seed %d, %s\n", bf.Mode, bf.Seed, bf.GoVersion)
	fmt.Fprintf(w, "%-8s  %14s  %14s  %12s  %14s  %10s\n", "id", "ns/op", "allocs/op", "events", "events/sec", "peak queue")
	for _, e := range bf.Experiments {
		fmt.Fprintf(w, "%-8s  %14d  %14d  %12d  %14.0f  %10d\n",
			e.ID, e.NsPerOp, e.AllocsPerOp, e.Events, e.EventsPerSec, e.PeakQueue)
	}
}

func readBenchFile(path string) (BenchFile, error) {
	var bf BenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return bf, fmt.Errorf("plasma-bench: reading baseline: %w", err)
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		return bf, fmt.Errorf("plasma-bench: parsing %s: %w", path, err)
	}
	if bf.Schema != benchSchema {
		return bf, fmt.Errorf("plasma-bench: %s has schema %q, want %q", path, bf.Schema, benchSchema)
	}
	return bf, nil
}

// compareBench diffs a fresh measurement against a baseline. A regression
// is a >tolerance slowdown in wall time or allocation count, or — when
// mode and seed match — any summary or event-count drift at all, which
// means determinism broke (same seed must reproduce the same run).
func compareBench(old, fresh BenchFile, tolerance float64) (regressions, notes []string) {
	if old.Mode != fresh.Mode {
		notes = append(notes, fmt.Sprintf("baseline mode %q differs from measured mode %q; timing comparison skipped", old.Mode, fresh.Mode))
		return nil, notes
	}
	sameRun := old.Seed == fresh.Seed
	freshByID := make(map[string]BenchExperiment, len(fresh.Experiments))
	for _, e := range fresh.Experiments {
		freshByID[e.ID] = e
	}
	for _, o := range old.Experiments {
		n, ok := freshByID[o.ID]
		if !ok {
			// A baseline id the sweep no longer measures is silent coverage
			// loss — the gate would pass while checking less. Fail it.
			regressions = append(regressions, fmt.Sprintf("%s: present in baseline but not measured (experiment removed or renamed?)", o.ID))
			continue
		}
		if o.NsPerOp > 0 && float64(n.NsPerOp) > float64(o.NsPerOp)*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf("%s: ns/op %d -> %d (%+.1f%%)",
				o.ID, o.NsPerOp, n.NsPerOp, pctChange(float64(o.NsPerOp), float64(n.NsPerOp))))
		}
		if o.AllocsPerOp > 0 && float64(n.AllocsPerOp) > float64(o.AllocsPerOp)*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf("%s: allocs/op %d -> %d (%+.1f%%)",
				o.ID, o.AllocsPerOp, n.AllocsPerOp, pctChange(float64(o.AllocsPerOp), float64(n.AllocsPerOp))))
		}
		if sameRun {
			if o.Events != n.Events {
				regressions = append(regressions, fmt.Sprintf("%s: determinism drift: events fired %d -> %d at fixed seed",
					o.ID, o.Events, n.Events))
			}
			keys := make([]string, 0, len(o.Summary))
			for k := range o.Summary {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				ov := o.Summary[k]
				nv, ok := n.Summary[k]
				if !ok {
					regressions = append(regressions, fmt.Sprintf("%s: determinism drift: summary %q missing at fixed seed", o.ID, k))
					continue
				}
				if nv != ov {
					regressions = append(regressions, fmt.Sprintf("%s: determinism drift: summary %q %v -> %v at fixed seed", o.ID, k, ov, nv))
				}
			}
		}
	}
	for _, n := range fresh.Experiments {
		found := false
		for _, o := range old.Experiments {
			if o.ID == n.ID {
				found = true
				break
			}
		}
		if !found {
			notes = append(notes, fmt.Sprintf("%s: new experiment, no baseline", n.ID))
		}
	}
	return regressions, notes
}

func pctChange(old, new float64) float64 { return (new - old) / old * 100 }

// regressedIDs extracts the sorted, deduplicated experiment ids from
// compareBench's regression messages (each begins "<id>: ...").
func regressedIDs(regressions []string) []string {
	seen := map[string]bool{}
	var ids []string
	for _, r := range regressions {
		id, _, ok := strings.Cut(r, ":")
		if !ok || id == "" {
			id = r
		}
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// shardSpeedup reports the events/sec ratio between the sharded-kernel
// twin and its sequential reference. The two ids run the identical seeded
// workload (their reports are byte-equal by construction), so the ratio
// isolates the kernel's intra-run parallel speedup.
func shardSpeedup(bf BenchFile) (float64, bool) {
	var sharded, seq float64
	for _, e := range bf.Experiments {
		switch e.ID {
		case "scale_shard":
			sharded = e.EventsPerSec
		case "scale_shard1":
			seq = e.EventsPerSec
		}
	}
	if sharded <= 0 || seq <= 0 {
		return 0, false
	}
	return sharded / seq, true
}
