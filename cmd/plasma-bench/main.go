// Command plasma-bench runs the full evaluation sweep (every table and
// figure of §5) and emits an EXPERIMENTS.md-style report with the paper's
// claims next to the measured results.
//
// Usage:
//
//	plasma-bench [-full] [-seed N] > report.md
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"plasma/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run paper-scale workloads (slower)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	cfg := experiments.Config{Full: *full, Seed: *seed}
	fmt.Println("# PLASMA evaluation sweep")
	fmt.Println()
	mode := "quick"
	if *full {
		mode = "full (paper-scale)"
	}
	fmt.Printf("Mode: %s, seed %d. Virtual-time simulation; compare shapes, not absolute numbers.\n\n", mode, *seed)

	for _, id := range experiments.IDs() {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("## %s — %s\n\n```\n%s```\n\n", res.ID, res.Title, res.Render())
		if len(res.Series) > 0 {
			names := make([]string, 0, len(res.Series))
			for n := range res.Series {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Printf("Series available: %v\n\n", names)
		}
	}
}
