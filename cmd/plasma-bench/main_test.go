package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineFile() BenchFile {
	return BenchFile{
		Schema:    benchSchema,
		Date:      "2026-01-01",
		Mode:      "quick",
		Seed:      1,
		GoVersion: "go1.x",
		Experiments: []BenchExperiment{
			{ID: "fig5", Iters: 3, NsPerOp: 1_000_000, AllocsPerOp: 5000, Events: 42000, EventsPerSec: 42e6, PeakQueue: 96,
				Summary: map[string]float64{"p99_ms": 12.5}},
			{ID: "table3", Iters: 3, NsPerOp: 2_000_000, AllocsPerOp: 8000, Events: 90000, EventsPerSec: 45e6, PeakQueue: 210,
				Summary: map[string]float64{"speedup": 3.1}},
		},
	}
}

// withNs returns a copy of bf with experiment id's NsPerOp scaled.
func withNs(bf BenchFile, id string, scale float64) BenchFile {
	out := bf
	out.Experiments = append([]BenchExperiment(nil), bf.Experiments...)
	for i := range out.Experiments {
		if out.Experiments[i].ID == id {
			out.Experiments[i].NsPerOp = int64(float64(out.Experiments[i].NsPerOp) * scale)
			out.Experiments[i].EventsPerSec = float64(out.Experiments[i].Events) / (float64(out.Experiments[i].NsPerOp) / 1e9)
		}
	}
	return out
}

func TestCompareDetectsInjectedSlowdown(t *testing.T) {
	old := baselineFile()
	// 15% slowdown on fig5 must trip the default 10% gate.
	fresh := withNs(old, "fig5", 1.15)
	regs, _ := compareBench(old, fresh, 0.10)
	if len(regs) != 1 {
		t.Fatalf("want exactly 1 regression, got %d: %v", len(regs), regs)
	}
	if !strings.Contains(regs[0], "fig5") || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("regression should name fig5 ns/op, got %q", regs[0])
	}
}

func TestCompareWithinToleranceOK(t *testing.T) {
	old := baselineFile()
	// 8% slowdown stays under the 10% gate; speedups never flag.
	fresh := withNs(withNs(old, "fig5", 1.08), "table3", 0.5)
	if regs, _ := compareBench(old, fresh, 0.10); len(regs) != 0 {
		t.Fatalf("want no regressions, got %v", regs)
	}
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	old := baselineFile()
	fresh := baselineFile()
	fresh.Experiments[1].AllocsPerOp *= 2
	regs, _ := compareBench(old, fresh, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
}

func TestCompareDetectsDeterminismDrift(t *testing.T) {
	old := baselineFile()
	fresh := baselineFile()
	fresh.Experiments[0].Events++
	fresh.Experiments[1].Summary["speedup"] = 3.2
	regs, _ := compareBench(old, fresh, 0.10)
	if len(regs) != 2 {
		t.Fatalf("want 2 drift regressions, got %v", regs)
	}
	for _, r := range regs {
		if !strings.Contains(r, "determinism drift") {
			t.Fatalf("expected determinism drift message, got %q", r)
		}
	}
}

func TestCompareDifferentSeedSkipsDriftCheck(t *testing.T) {
	old := baselineFile()
	fresh := baselineFile()
	fresh.Seed = 2
	fresh.Experiments[0].Summary["p99_ms"] = 99
	if regs, _ := compareBench(old, fresh, 0.10); len(regs) != 0 {
		t.Fatalf("different seeds must not drift-check, got %v", regs)
	}
}

func TestCompareModeMismatchSkips(t *testing.T) {
	old := baselineFile()
	fresh := baselineFile()
	fresh.Mode = "full"
	fresh.Experiments[0].NsPerOp *= 10
	regs, notes := compareBench(old, fresh, 0.10)
	if len(regs) != 0 {
		t.Fatalf("mode mismatch must not produce regressions, got %v", regs)
	}
	if len(notes) == 0 || !strings.Contains(notes[0], "mode") {
		t.Fatalf("want a mode-mismatch note, got %v", notes)
	}
}

func TestCompareMissingBaselineIDFails(t *testing.T) {
	old := baselineFile()
	fresh := baselineFile()
	fresh.Experiments[0].ID = "fig99"
	regs, notes := compareBench(old, fresh, 0.10)
	// A baseline id the run no longer measures is a regression (silent
	// coverage loss), while a brand-new id is only worth a note.
	if joined := strings.Join(regs, "\n"); !strings.Contains(joined, "fig5") || !strings.Contains(joined, "not measured") {
		t.Fatalf("missing baseline id must be a regression, got %v", regs)
	}
	if joined := strings.Join(notes, "\n"); !strings.Contains(joined, "fig99") {
		t.Fatalf("want a note for the new id, got %v", notes)
	}
}

func TestReadBenchFileSchemaCheck(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	data, err := json.Marshal(baselineFile())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBenchFile(good); err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	}

	bad := filepath.Join(dir, "bad.json")
	bf := baselineFile()
	bf.Schema = "something-else/v9"
	data, _ = json.Marshal(bf)
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBenchFile(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestFiniteSummaryDropsNonFinite(t *testing.T) {
	in := map[string]float64{"ok": 1.5, "nan": nan(), "inf": inf()}
	out := finiteSummary(in)
	if len(out) != 1 || out["ok"] != 1.5 {
		t.Fatalf("want only finite keys, got %v", out)
	}
	if finiteSummary(nil) != nil {
		t.Fatal("empty input should stay nil")
	}
}

func nan() float64 { return 0 / zero }
func inf() float64 { return 1 / zero }

var zero float64

func TestShardSpeedupRatio(t *testing.T) {
	bf := baselineFile()
	if _, ok := shardSpeedup(bf); ok {
		t.Fatal("speedup reported without the shard twins present")
	}
	bf.Experiments = append(bf.Experiments,
		BenchExperiment{ID: "scale_shard1", Events: 1000, EventsPerSec: 2e6},
		BenchExperiment{ID: "scale_shard", Events: 1000, EventsPerSec: 5e6},
	)
	got, ok := shardSpeedup(bf)
	if !ok || got != 2.5 {
		t.Fatalf("shardSpeedup = %v, %v; want 2.5, true", got, ok)
	}
}

func TestCompareReportsEveryRegressedID(t *testing.T) {
	old := baselineFile()
	// Slow down BOTH experiments: the gate must surface both, not stop at
	// the first, and the consolidated id list must name each exactly once.
	fresh := withNs(withNs(old, "fig5", 1.5), "table3", 1.5)
	regs, _ := compareBench(old, fresh, 0.10)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions (one per slowed experiment), got %d: %v", len(regs), regs)
	}
	ids := regressedIDs(regs)
	if len(ids) != 2 || ids[0] != "fig5" || ids[1] != "table3" {
		t.Fatalf("consolidated ids = %v, want [fig5 table3]", ids)
	}
}

func TestRegressedIDsDedupsAndSorts(t *testing.T) {
	ids := regressedIDs([]string{
		"zeta: ns/op 1 -> 2 (+100.0%)",
		"alpha: allocs/op 3 -> 9 (+200.0%)",
		"zeta: determinism drift: events fired 1 -> 2 at fixed seed",
	})
	if len(ids) != 2 || ids[0] != "alpha" || ids[1] != "zeta" {
		t.Fatalf("ids = %v, want [alpha zeta]", ids)
	}
}
