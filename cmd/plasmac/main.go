// Command plasmac is PLASMA's elasticity-rule compiler (the "PLASMA
// compiler" of Fig. 2): it parses an EPL policy, checks it against an
// optional application schema, reports conflict warnings, and emits the
// compiled elasticity configuration as JSON.
//
// Usage:
//
//	plasmac [-schema app.json] [-lint] [-model] [-json] [-Werror] policy.epl
//	plasmac -e 'server.cpu.perc > 80 => balance({Worker}, cpu);'
//
// -lint runs the static-analysis passes (satisfiability, flapping,
// shadowing, unused declarations) on top of the compiler's own conflict
// detection. -model additionally runs the offline scaling-state model
// checker (oscillation, overload dead states, unreachable rules, pool
// dead ends, probabilistic //lint:assert bounds — EPL2xx). -json embeds
// the per-rule diagnostics in the emitted JSON (instead of printing them
// to stderr). -Werror exits nonzero when any diagnostic of warning
// severity or above is produced.
//
// The schema file declares actor classes:
//
//	{"actors": [{"name": "Folder", "functions": ["open"], "props": ["files"]}]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"plasma/internal/epl"
	"plasma/internal/lint"
	"plasma/internal/lint/model"
)

type schemaFile struct {
	Actors []struct {
		Name      string   `json:"name"`
		Parent    string   `json:"parent"`
		Functions []string `json:"functions"`
		Props     []string `json:"props"`
	} `json:"actors"`
}

// ruleJSON is the compiled form of one rule.
type ruleJSON struct {
	Index       int      `json:"index"`
	Condition   string   `json:"condition"`
	Behaviors   []string `json:"behaviors"`
	Class       string   `json:"class"`
	Variables   []string `json:"variables,omitempty"`
	ResourceFor []string `json:"resourceRuleFor,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("plasmac", flag.ContinueOnError)
	fl.SetOutput(stderr)
	expr := fl.String("e", "", "inline policy source instead of a file")
	schemaPath := fl.String("schema", "", "application schema JSON for checking")
	doLint := fl.Bool("lint", false, "run the static-analysis passes in addition to conflict detection")
	doModel := fl.Bool("model", false, "run the scaling-state model checker (EPL2xx)")
	jsonDiags := fl.Bool("json", false, "embed diagnostics in the JSON output instead of printing to stderr")
	werror := fl.Bool("Werror", false, "exit nonzero on diagnostics of warning severity or above")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	src := *expr
	if src == "" {
		if fl.NArg() != 1 {
			fmt.Fprintln(stderr, "usage: plasmac [-schema app.json] [-lint] [-json] [-Werror] policy.epl  |  plasmac -e '<rules>'")
			return 2
		}
		data, err := os.ReadFile(fl.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		src = string(data)
	}

	var schema *epl.Schema
	if *schemaPath != "" {
		data, err := os.ReadFile(*schemaPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		var sf schemaFile
		if err := json.Unmarshal(data, &sf); err != nil {
			fmt.Fprintf(stderr, "plasmac: bad schema: %v\n", err)
			return 1
		}
		var classes []*epl.ActorSchema
		for _, a := range sf.Actors {
			classes = append(classes, &epl.ActorSchema{
				Name: a.Name, Parent: a.Parent, Functions: a.Functions, Props: a.Props,
			})
		}
		schema = epl.NewSchema(classes...)
	}

	pol, err := epl.Parse(src)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	warns, err := epl.Check(pol, schema)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	diags := make([]lint.Diagnostic, 0, len(warns))
	for _, w := range warns {
		diags = append(diags, lint.Diagnostic{
			Code: w.Code, Severity: lint.Warning,
			Line: w.Pos.Line, Col: w.Pos.Col,
			Message: w.Msg, Rules: w.Rules,
		})
	}
	if *doLint {
		diags = append(diags, lint.AnalyzePolicy(pol, schema)...)
	}
	if *doModel {
		diags = append(diags, model.Diagnostics(model.Check(pol, schema))...)
	}
	lint.SortDiagnostics(diags)
	if !*jsonDiags {
		for _, d := range diags {
			fmt.Fprintln(stderr, d)
		}
	}

	out := struct {
		Rules       []ruleJSON        `json:"rules"`
		Warnings    int               `json:"warnings"`
		Diagnostics []lint.Diagnostic `json:"diagnostics,omitempty"`
	}{Warnings: len(warns)}
	if *jsonDiags {
		out.Diagnostics = diags
		if out.Diagnostics == nil {
			out.Diagnostics = []lint.Diagnostic{}
		}
	}
	for _, r := range pol.Rules {
		rj := ruleJSON{Index: r.Index, Condition: r.Cond.String()}
		for _, b := range r.Behaviors {
			rj.Behaviors = append(rj.Behaviors, b.String())
		}
		switch {
		case r.HasResourceBehavior() && r.HasInteractionBehavior():
			rj.Class = "resource+interaction"
		case r.HasResourceBehavior():
			rj.Class = "resource"
		default:
			rj.Class = "interaction"
		}
		for _, v := range r.Vars {
			rj.Variables = append(rj.Variables, fmt.Sprintf("%s:%s", v.Name, v.Type))
		}
		out.Rules = append(out.Rules, rj)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	bar := lint.Error
	if *werror {
		bar = lint.Warning
	}
	if lint.MaxSeverity(diags) >= bar {
		return 1
	}
	return 0
}
