// Command plasmac is PLASMA's elasticity-rule compiler (the "PLASMA
// compiler" of Fig. 2): it parses an EPL policy, checks it against an
// optional application schema, reports conflict warnings, and emits the
// compiled elasticity configuration as JSON.
//
// Usage:
//
//	plasmac [-schema app.json] policy.epl
//	plasmac -e 'server.cpu.perc > 80 => balance({Worker}, cpu);'
//
// The schema file declares actor classes:
//
//	{"actors": [{"name": "Folder", "functions": ["open"], "props": ["files"]}]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"plasma/internal/epl"
)

type schemaFile struct {
	Actors []struct {
		Name      string   `json:"name"`
		Functions []string `json:"functions"`
		Props     []string `json:"props"`
	} `json:"actors"`
}

// ruleJSON is the compiled form of one rule.
type ruleJSON struct {
	Index       int      `json:"index"`
	Condition   string   `json:"condition"`
	Behaviors   []string `json:"behaviors"`
	Class       string   `json:"class"`
	Variables   []string `json:"variables,omitempty"`
	ResourceFor []string `json:"resourceRuleFor,omitempty"`
}

func main() {
	expr := flag.String("e", "", "inline policy source instead of a file")
	schemaPath := flag.String("schema", "", "application schema JSON for checking")
	flag.Parse()

	src := *expr
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: plasmac [-schema app.json] policy.epl  |  plasmac -e '<rules>'")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = string(data)
	}

	var schema *epl.Schema
	if *schemaPath != "" {
		data, err := os.ReadFile(*schemaPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var sf schemaFile
		if err := json.Unmarshal(data, &sf); err != nil {
			fmt.Fprintf(os.Stderr, "plasmac: bad schema: %v\n", err)
			os.Exit(1)
		}
		var classes []*epl.ActorSchema
		for _, a := range sf.Actors {
			classes = append(classes, epl.Class(a.Name, a.Functions, a.Props))
		}
		schema = epl.NewSchema(classes...)
	}

	pol, err := epl.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	warns, err := epl.Check(pol, schema)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, w := range warns {
		fmt.Fprintln(os.Stderr, w)
	}

	out := struct {
		Rules    []ruleJSON `json:"rules"`
		Warnings int        `json:"warnings"`
	}{Warnings: len(warns)}
	for _, r := range pol.Rules {
		rj := ruleJSON{Index: r.Index, Condition: r.Cond.String()}
		for _, b := range r.Behaviors {
			rj.Behaviors = append(rj.Behaviors, b.String())
		}
		switch {
		case r.HasResourceBehavior() && r.HasInteractionBehavior():
			rj.Class = "resource+interaction"
		case r.HasResourceBehavior():
			rj.Class = "resource"
		default:
			rj.Class = "interaction"
		}
		for _, v := range r.Vars {
			rj.Variables = append(rj.Variables, fmt.Sprintf("%s:%s", v.Name, v.Type))
		}
		out.Rules = append(out.Rules, rj)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
