package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const corpusDir = "../../internal/lint/testdata"

var goldenDir = filepath.Join(corpusDir, "golden", "plasmac")

func runPlasmac(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join(goldenDir, name+".golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenCompile locks the compiled JSON (with embedded diagnostics)
// for a representative slice of the corpus.
func TestGoldenCompile(t *testing.T) {
	for _, name := range []string{
		"clean_pagerank", "clean_halo", "shadow_true", "flap_zero_band", "dead_var", "unsat_interval",
	} {
		t.Run(name, func(t *testing.T) {
			stdout, _, code := runPlasmac(t,
				"-lint", "-json", filepath.Join(corpusDir, name+".epl"))
			checkGolden(t, name, stdout+fmt.Sprintf("exit: %d\n", code))
		})
	}
}

// TestDiagnosticsEmbeddedPerRule asserts -json carries each diagnostic
// with its rule indices, not just a count.
func TestDiagnosticsEmbeddedPerRule(t *testing.T) {
	stdout, stderr, _ := runPlasmac(t,
		"-lint", "-json", filepath.Join(corpusDir, "shadow_true.epl"))
	if stderr != "" {
		t.Fatalf("-json should keep stderr quiet, got %q", stderr)
	}
	var out struct {
		Warnings    int `json:"warnings"`
		Diagnostics []struct {
			Code  string `json:"code"`
			Rules []int  `json:"rules"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if out.Warnings != 1 {
		t.Fatalf("warnings = %d, want 1", out.Warnings)
	}
	found := false
	for _, d := range out.Diagnostics {
		if d.Code == "EPL020" {
			found = true
			if len(d.Rules) != 2 || d.Rules[0] != 0 || d.Rules[1] != 1 {
				t.Fatalf("EPL020 rules = %v, want [0 1]", d.Rules)
			}
		}
	}
	if !found {
		t.Fatalf("EPL020 missing from diagnostics: %s", stdout)
	}
}

func TestWerror(t *testing.T) {
	path := filepath.Join(corpusDir, "flap_zero_band.epl")
	if _, _, code := runPlasmac(t, "-lint", path); code != 0 {
		t.Fatalf("warnings without -Werror should exit 0, got %d", code)
	}
	if _, _, code := runPlasmac(t, "-lint", "-Werror", path); code != 1 {
		t.Fatal("-Werror with warnings should exit 1")
	}
	// Conflict warnings from the checker alone (no -lint) also count.
	if _, _, code := runPlasmac(t, "-Werror", filepath.Join(corpusDir, "shadow_true.epl")); code != 1 {
		t.Fatal("-Werror with conflict warnings should exit 1")
	}
}

func TestErrorSeverityFailsWithoutWerror(t *testing.T) {
	if _, _, code := runPlasmac(t, "-lint", filepath.Join(corpusDir, "unsat_interval.epl")); code != 1 {
		t.Fatal("error-severity diagnostics should exit 1 without -Werror")
	}
}

func TestTextModeWritesDiagnosticsToStderr(t *testing.T) {
	stdout, stderr, _ := runPlasmac(t, "-lint", filepath.Join(corpusDir, "dead_var.epl"))
	if !strings.Contains(stderr, "EPL030") {
		t.Fatalf("stderr missing EPL030: %q", stderr)
	}
	if strings.Contains(stdout, "EPL030") {
		t.Fatal("text mode must not embed diagnostics in stdout JSON")
	}
}

func TestInlinePolicy(t *testing.T) {
	stdout, _, code := runPlasmac(t, "-e", "server.cpu.perc > 80 => balance({W}, cpu);")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, `"class": "resource"`) {
		t.Fatalf("compiled output missing rule class: %s", stdout)
	}
}
