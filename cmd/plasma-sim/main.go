// Command plasma-sim runs PLASMA's evaluation experiments by id and prints
// their tables and summaries.
//
// Usage:
//
//	plasma-sim [-full] [-seed N] [-shards N] [-trace out.jsonl] [experiment ...]
//
// -shards runs shard-capable experiments (the scale family) on an N-way
// partitioned simulation kernel. Results are byte-identical to -shards=1
// (the sequential reference) at any shard count — sharding only changes
// wall-clock time; diff two -trace files to check.
//
// With no arguments, all experiments run in registry order. With -trace,
// every elasticity decision (rule evaluations, migrations, provisioning,
// chaos injections) is recorded and written to the given JSONL file; inspect
// it with cmd/plasma-trace (summarize/filter/diff) or convert it with
// `plasma-trace chrome` for Perfetto. Traces at a fixed seed are
// byte-identical across runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"plasma/internal/experiments"
	"plasma/internal/trace"
)

func main() {
	full := flag.Bool("full", false, "run paper-scale workloads (slower)")
	seed := flag.Int64("seed", 1, "simulation seed")
	shards := flag.Int("shards", 1, "kernel shard count for shard-capable experiments (1 = sequential reference; results are byte-identical at any count)")
	traceOut := flag.String("trace", "", "write a decision trace (JSONL) to this file")
	traceCap := flag.Int("trace-cap", 1<<20, "max records kept in the trace ring (oldest dropped)")
	flag.Parse()

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	cfg := experiments.Config{Full: *full, Seed: *seed, Shards: *shards}
	var ring *trace.Ring
	if *traceOut != "" {
		ring = trace.NewRing(*traceCap)
		cfg.Trace = trace.New(ring)
	}
	for _, id := range ids {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(res.Render())
	}
	if ring != nil {
		if err := writeTrace(*traceOut, ring); err != nil {
			fmt.Fprintln(os.Stderr, "plasma-sim:", err)
			os.Exit(1)
		}
		if d := ring.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "plasma-sim: trace ring dropped %d oldest records (raise -trace-cap)\n", d)
		}
	}
}

func writeTrace(path string, ring *trace.Ring) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSONL(fh, ring.Records()); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
