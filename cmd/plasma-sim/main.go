// Command plasma-sim runs PLASMA's evaluation experiments by id and prints
// their tables and summaries.
//
// Usage:
//
//	plasma-sim [-full] [-seed N] [experiment ...]
//
// With no arguments, all experiments run in registry order.
package main

import (
	"flag"
	"fmt"
	"os"

	"plasma/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run paper-scale workloads (slower)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	cfg := experiments.Config{Full: *full, Seed: *seed}
	for _, id := range ids {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(res.Render())
	}
}
