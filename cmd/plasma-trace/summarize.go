package main

import (
	"fmt"
	"sort"
	"strings"

	"plasma/internal/trace"
)

// Summarize renders decision churn for a trace: per-kind record counts,
// rule fire counts, migration activity per actor, and deny reasons. All
// map-keyed sections print in sorted order (determinism lint DET003).
func Summarize(recs []trace.Record) string {
	var b strings.Builder
	if len(recs) == 0 {
		b.WriteString("empty trace\n")
		return b.String()
	}

	ticks := 0
	byKind := map[trace.Kind]int{}
	ruleFires := map[int32]int{}
	denies := map[string]int{}
	type actorChurn struct {
		transfers, commits, rollbacks, denies int
	}
	churn := map[uint64]*actorChurn{}
	churnFor := func(id uint64) *actorChurn {
		c := churn[id]
		if c == nil {
			c = &actorChurn{}
			churn[id] = c
		}
		return c
	}

	for _, r := range recs {
		byKind[r.Kind]++
		switch r.Kind {
		case trace.KindTick:
			ticks++
		case trace.KindRuleFire:
			ruleFires[r.Rule]++
		case trace.KindDeny:
			reason := r.Detail
			if reason == "" {
				reason = "(unspecified)"
			}
			denies[reason]++
			if r.Actor != 0 {
				churnFor(r.Actor).denies++
			}
		case trace.KindTransfer:
			churnFor(r.Actor).transfers++
		case trace.KindCommit:
			churnFor(r.Actor).commits++
		case trace.KindRollback:
			if r.Actor != 0 {
				churnFor(r.Actor).rollbacks++
			}
		}
	}

	fmt.Fprintf(&b, "records: %d  ticks: %d  span: t=%d..%d\n",
		len(recs), ticks, int64(recs[0].At), int64(recs[len(recs)-1].At))

	b.WriteString("\nby kind:\n")
	for _, k := range trace.Kinds() {
		if n := byKind[k]; n > 0 {
			fmt.Fprintf(&b, "  %-14s %d\n", k, n)
		}
	}

	if len(ruleFires) > 0 {
		b.WriteString("\nrule fires:\n")
		rules := make([]int32, 0, len(ruleFires))
		for r := range ruleFires {
			rules = append(rules, r)
		}
		sort.Slice(rules, func(i, j int) bool { return rules[i] < rules[j] })
		for _, r := range rules {
			fmt.Fprintf(&b, "  rule %-3d %d\n", r, ruleFires[r])
		}
	}

	if len(churn) > 0 {
		b.WriteString("\nmigrations per actor (transfers/commits/rollbacks/denies):\n")
		ids := make([]uint64, 0, len(churn))
		for id := range churn {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			c := churn[id]
			fmt.Fprintf(&b, "  actor %-6d %d/%d/%d/%d\n", id, c.transfers, c.commits, c.rollbacks, c.denies)
		}
	}

	if len(denies) > 0 {
		b.WriteString("\ndeny reasons:\n")
		reasons := make([]string, 0, len(denies))
		for r := range denies {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Fprintf(&b, "  %-14s %d\n", r, denies[r])
		}
	}
	return b.String()
}
