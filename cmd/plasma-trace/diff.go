package main

import (
	"fmt"
	"strings"

	"plasma/internal/trace"
)

// Diff compares two traces record by record and reports the first
// divergence. Traces from the same seed are byte-identical, so the first
// differing record IS the first divergent decision — everything after it is
// cascade. The ID field is ignored when one trace has extra records earlier
// (it still participates in the direct comparison, which is what same-seed
// runs want: any drift, including emission-order drift, must surface).
func Diff(nameA string, a []trace.Record, nameB string, b []trace.Record) (report string, same bool) {
	var sb strings.Builder
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			fmt.Fprintf(&sb, "traces diverge at record %d (the first divergent decision):\n", i+1)
			fmt.Fprintf(&sb, "  %s: %s\n", nameA, formatRecord(a[i]))
			fmt.Fprintf(&sb, "  %s: %s\n", nameB, formatRecord(b[i]))
			context := i - 3
			if context < 0 {
				context = 0
			}
			if context < i {
				sb.WriteString("shared context before the divergence:\n")
				for j := context; j < i; j++ {
					fmt.Fprintf(&sb, "  %s\n", formatRecord(a[j]))
				}
			}
			return sb.String(), false
		}
	}
	if len(a) != len(b) {
		longerName, longer := nameB, b
		if len(a) > len(b) {
			longerName, longer = nameA, a
		}
		fmt.Fprintf(&sb, "traces agree on the first %d records, then %s has %d extra; first extra:\n",
			n, longerName, len(longer)-n)
		fmt.Fprintf(&sb, "  %s\n", formatRecord(longer[n]))
		return sb.String(), false
	}
	fmt.Fprintf(&sb, "traces identical: %d records\n", n)
	return sb.String(), true
}

// formatRecord renders one record for human diff output.
func formatRecord(r trace.Record) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "t=%d %s id=%d", int64(r.At), r.Kind, r.ID)
	if r.Parent != 0 {
		fmt.Fprintf(&sb, " par=%d", r.Parent)
	}
	if r.Tick != 0 {
		fmt.Fprintf(&sb, " tick=%d", r.Tick)
	}
	if r.Server >= 0 {
		fmt.Fprintf(&sb, " srv=%d", r.Server)
	}
	if r.Target >= 0 {
		fmt.Fprintf(&sb, " trg=%d", r.Target)
	}
	if r.Actor != 0 {
		fmt.Fprintf(&sb, " actor=%d", r.Actor)
	}
	if r.Rule >= 0 {
		fmt.Fprintf(&sb, " rule=%d", r.Rule)
	}
	if r.Value != 0 {
		fmt.Fprintf(&sb, " val=%g", r.Value)
	}
	if r.Detail != "" {
		fmt.Fprintf(&sb, " %q", r.Detail)
	}
	return sb.String()
}
