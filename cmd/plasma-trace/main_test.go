package main

import (
	"flag"
	"strings"
	"testing"

	"plasma/internal/trace"
)

func sample() []trace.Record {
	return []trace.Record{
		{ID: 1, At: 100, Kind: trace.KindTick, Tick: 1, Server: -1, Target: -1, Rule: -1, Value: 100},
		{ID: 2, Parent: 1, At: 100, Kind: trace.KindRuleFire, Tick: 1, Server: 2, Target: -1, Actor: 7, Rule: 0, Detail: "server.cpu.perc > 85 = 91"},
		{ID: 3, Parent: 1, At: 104, Kind: trace.KindPropose, Tick: 1, Server: 2, Target: 0, Actor: 7, Rule: -1, Value: 40, Detail: "balance"},
		{ID: 4, Parent: 3, At: 108, Kind: trace.KindDeny, Tick: 1, Server: 0, Target: -1, Actor: 7, Rule: -1, Detail: "over-bound"},
		{ID: 5, Parent: 3, At: 112, Kind: trace.KindTransfer, Tick: 1, Server: 2, Target: 1, Actor: 9, Rule: -1, Value: 4096},
		{ID: 6, Parent: 5, At: 120, Kind: trace.KindCommit, Tick: 1, Server: 2, Target: 1, Actor: 9, Rule: -1},
	}
}

func TestSummarizeCountsChurn(t *testing.T) {
	out := Summarize(sample())
	for _, want := range []string{
		"records: 6  ticks: 1",
		"rule 0   1",
		"actor 7      0/0/0/1",
		"actor 9      1/1/0/0",
		"over-bound",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if out := Summarize(nil); !strings.Contains(out, "empty trace") {
		t.Fatalf("empty summary = %q", out)
	}
}

func TestDiffIdentical(t *testing.T) {
	report, same := Diff("a", sample(), "b", sample())
	if !same || !strings.Contains(report, "identical") {
		t.Fatalf("same traces reported different: %s", report)
	}
}

func TestDiffReportsFirstDivergentRecord(t *testing.T) {
	a, b := sample(), sample()
	b[3].Detail = "reserved" // divergent deny reason at record 4
	report, same := Diff("a.jsonl", a, "b.jsonl", b)
	if same {
		t.Fatal("divergent traces reported identical")
	}
	if !strings.Contains(report, "diverge at record 4") {
		t.Fatalf("wrong divergence point:\n%s", report)
	}
	if !strings.Contains(report, `"over-bound"`) || !strings.Contains(report, `"reserved"`) {
		t.Fatalf("report does not show both sides:\n%s", report)
	}
}

func TestDiffReportsLengthMismatch(t *testing.T) {
	a := sample()
	b := sample()[:4]
	report, same := Diff("a", a, "b", b)
	if same {
		t.Fatal("prefix trace reported identical")
	}
	if !strings.Contains(report, "agree on the first 4 records") || !strings.Contains(report, "a has 2 extra") {
		t.Fatalf("length mismatch report wrong:\n%s", report)
	}
}

func newFilter(t *testing.T, args ...string) *filterFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.PanicOnError)
	f := addFilterFlags(fs, true)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFilterByActorServerKindTime(t *testing.T) {
	recs := sample()

	got, err := newFilter(t, "-actor", "9").apply(recs)
	if err != nil || len(got) != 2 {
		t.Fatalf("actor filter: %d records, err %v", len(got), err)
	}

	// Server filter matches source or target.
	got, err = newFilter(t, "-server", "1").apply(recs)
	if err != nil || len(got) != 2 {
		t.Fatalf("server filter: %d records, err %v", len(got), err)
	}

	got, err = newFilter(t, "-kind", "deny").apply(recs)
	if err != nil || len(got) != 1 || got[0].Kind != trace.KindDeny {
		t.Fatalf("kind filter: %+v, err %v", got, err)
	}

	got, err = newFilter(t, "-from", "104", "-to", "112").apply(recs)
	if err != nil || len(got) != 3 {
		t.Fatalf("time filter: %d records, err %v", len(got), err)
	}

	got, err = newFilter(t, "-rule", "0").apply(recs)
	if err != nil || len(got) != 1 || got[0].Kind != trace.KindRuleFire {
		t.Fatalf("rule filter: %+v, err %v", got, err)
	}

	if _, err = newFilter(t, "-kind", "bogus").apply(recs); err == nil {
		t.Fatal("bogus kind must error")
	}
}
