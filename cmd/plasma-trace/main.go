// Command plasma-trace inspects PLASMA elasticity decision traces (the
// JSONL files written by plasma-sim -trace and the experiment harness).
//
// Usage:
//
//	plasma-trace summarize [-actor N] [-server N] [-rule N] [-from T] [-to T] trace.jsonl
//	plasma-trace filter    [-actor N] [-server N] [-rule N] [-from T] [-to T] [-kind K] trace.jsonl
//	plasma-trace chrome    trace.jsonl > trace.json     # load in Perfetto / chrome://tracing
//	plasma-trace diff      a.jsonl b.jsonl              # first divergent decision
//
// summarize prints decision churn: rule fire counts, migrations per actor,
// deny reasons, and per-kind record counts. filter re-emits matching
// records as JSONL. diff compares two traces record by record and reports
// the first divergence — at a fixed seed two runs are byte-identical, so
// any difference localizes determinism drift to one decision.
package main

import (
	"flag"
	"fmt"
	"os"

	"plasma/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "summarize":
		err = cmdSummarize(args)
	case "filter":
		err = cmdFilter(args)
	case "chrome":
		err = cmdChrome(args)
	case "diff":
		err = cmdDiff(args)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "plasma-trace: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plasma-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  plasma-trace summarize [-actor N] [-server N] [-rule N] [-from T] [-to T] trace.jsonl
  plasma-trace filter    [-actor N] [-server N] [-rule N] [-from T] [-to T] [-kind K] trace.jsonl
  plasma-trace chrome    trace.jsonl
  plasma-trace diff      a.jsonl b.jsonl`)
}

// filterFlags are the record selectors shared by summarize and filter.
type filterFlags struct {
	actor  *int64
	server *int
	rule   *int
	from   *int64
	to     *int64
	kind   *string
}

func addFilterFlags(fs *flag.FlagSet, withKind bool) *filterFlags {
	f := &filterFlags{
		actor:  fs.Int64("actor", -1, "only records about this actor id"),
		server: fs.Int("server", -1, "only records touching this server (source or target)"),
		rule:   fs.Int("rule", -1, "only records for this policy rule index"),
		from:   fs.Int64("from", -1, "only records at or after this virtual time (µs)"),
		to:     fs.Int64("to", -1, "only records at or before this virtual time (µs)"),
	}
	kind := ""
	if withKind {
		f.kind = fs.String("kind", "", "only records of this kind (e.g. deny, transfer)")
	} else {
		f.kind = &kind
	}
	return f
}

func (f *filterFlags) apply(recs []trace.Record) ([]trace.Record, error) {
	wantKind := trace.Kind(0)
	haveKind := false
	if *f.kind != "" {
		k, ok := trace.KindFromString(*f.kind)
		if !ok {
			return nil, fmt.Errorf("unknown kind %q", *f.kind)
		}
		wantKind, haveKind = k, true
	}
	var out []trace.Record
	for _, r := range recs {
		if *f.actor >= 0 && r.Actor != uint64(*f.actor) {
			continue
		}
		if *f.server >= 0 && int(r.Server) != *f.server && int(r.Target) != *f.server {
			continue
		}
		if *f.rule >= 0 && int(r.Rule) != *f.rule {
			continue
		}
		if *f.from >= 0 && int64(r.At) < *f.from {
			continue
		}
		if *f.to >= 0 && int64(r.At) > *f.to {
			continue
		}
		if haveKind && r.Kind != wantKind {
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

func readTrace(path string) ([]trace.Record, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	recs, err := trace.ReadJSONL(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func cmdFilter(args []string) error {
	fs := flag.NewFlagSet("filter", flag.ExitOnError)
	f := addFilterFlags(fs, true)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("filter wants exactly one trace file")
	}
	recs, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	recs, err = f.apply(recs)
	if err != nil {
		return err
	}
	return trace.WriteJSONL(os.Stdout, recs)
}

func cmdChrome(args []string) error {
	fs := flag.NewFlagSet("chrome", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("chrome wants exactly one trace file")
	}
	recs, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	return trace.WriteChromeTrace(os.Stdout, recs)
}

func cmdSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	f := addFilterFlags(fs, false)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("summarize wants exactly one trace file")
	}
	recs, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	recs, err = f.apply(recs)
	if err != nil {
		return err
	}
	fmt.Print(Summarize(recs))
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants exactly two trace files")
	}
	a, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := readTrace(fs.Arg(1))
	if err != nil {
		return err
	}
	report, same := Diff(fs.Arg(0), a, fs.Arg(1), b)
	fmt.Print(report)
	if !same {
		os.Exit(1)
	}
	return nil
}
