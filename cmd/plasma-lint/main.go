// Command plasma-lint runs PLASMA's static-analysis engine: the EPL policy
// passes (satisfiability, flapping, shadowing, unused declarations — plus
// the compiler's conflict detection) over .epl files, and the determinism
// linter (wall-clock time, global math/rand, unsorted map-order output)
// over Go sources.
//
// Usage:
//
//	plasma-lint [-schema app.json] [-json] [-Werror] [-model] [-explain] [target...]
//
// Targets ending in .epl are linted as policies; directories, dir/...
// patterns, and .go files are linted for determinism. With no targets it
// lints ./internal/... and ./cmd/... — the repository invariant `make
// verify` enforces.
//
// -model additionally runs the offline model checker on each .epl target:
// the policy is compiled into a finite transition system over abstract
// scaling states (fleet size × provisioning-pool occupancy × discretized
// load) closed by a workload envelope, and checked for oscillation
// (EPL200), overload dead states (EPL201), unreachable rules (EPL202),
// warm-pool dead ends (EPL203), and //lint:assert probabilistic bounds
// (EPL210). -explain (implies -model) prints each finding's concrete
// counterexample path tick by tick.
//
// Exit status: 0 clean, 1 findings at error severity (or warning severity
// with -Werror), 2 usage or I/O failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"plasma/internal/epl"
	"plasma/internal/lint"
	"plasma/internal/lint/model"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("plasma-lint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	jsonOut := fl.Bool("json", false, "emit findings as JSON")
	werror := fl.Bool("Werror", false, "exit nonzero on warnings, not only errors")
	schemaPath := fl.String("schema", "", "application schema JSON for policy checking")
	doModel := fl.Bool("model", false, "run the scaling-state model checker on .epl targets")
	explain := fl.Bool("explain", false, "print counterexample paths for model-checker findings (implies -model)")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *explain {
		*doModel = true
	}

	targets := fl.Args()
	if len(targets) == 0 {
		targets = []string{"./internal/...", "./cmd/..."}
	}
	var epls, gos []string
	for _, t := range targets {
		if strings.HasSuffix(t, ".epl") {
			epls = append(epls, t)
		} else {
			gos = append(gos, t)
		}
	}

	schema, err := loadSchema(*schemaPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var diags []lint.Diagnostic
	var findings []model.Finding
	for _, path := range epls {
		diags = append(diags, lintPolicyFile(path, schema)...)
		if *doModel {
			fs := modelPolicyFile(path, schema)
			findings = append(findings, fs...)
			diags = append(diags, model.Diagnostics(fs)...)
		}
	}
	if len(gos) > 0 {
		files, err := lint.ExpandGoPatterns(gos)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		goDiags, err := lint.LintGoFiles(files)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags = append(diags, goDiags...)
	}
	lint.SortDiagnostics(diags)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
			Model       []model.Finding   `json:"model,omitempty"`
		}{Diagnostics: diags}
		if out.Diagnostics == nil {
			out.Diagnostics = []lint.Diagnostic{}
		}
		if *doModel {
			out.Model = findings
			if out.Model == nil {
				out.Model = []model.Finding{}
			}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if *explain {
			for _, f := range findings {
				if len(f.Path) == 0 {
					continue
				}
				fmt.Fprintf(stdout, "\ncounterexample for %s (%s):\n%s", f.File, f.Code, model.FormatPath(f))
			}
		}
	}

	bar := lint.Error
	if *werror {
		bar = lint.Warning
	}
	if lint.MaxSeverity(diags) >= bar {
		return 1
	}
	return 0
}

// lintPolicyFile parses, checks, and analyzes one .epl file; failures
// surface as diagnostics rather than aborting the run, so a corpus lints
// in one pass.
func lintPolicyFile(path string, schema *epl.Schema) []lint.Diagnostic {
	fail := func(msg string) []lint.Diagnostic {
		return []lint.Diagnostic{{
			Code: lint.CodeParse, Severity: lint.Error, File: path,
			Line: 1, Col: 1, Message: msg,
		}}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(err.Error())
	}
	pol, err := epl.Parse(string(data))
	if err != nil {
		return fail(err.Error())
	}
	diags, err := lint.CheckAndAnalyze(pol, schema)
	if err != nil {
		return fail(err.Error())
	}
	for i := range diags {
		diags[i].File = path
	}
	return diags
}

// modelPolicyFile runs the scaling-state model checker over one .epl
// file. Parse and check failures are skipped silently — lintPolicyFile
// already reported them as EPL001 diagnostics.
func modelPolicyFile(path string, schema *epl.Schema) []model.Finding {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	pol, err := epl.Parse(string(data))
	if err != nil {
		return nil
	}
	if _, err := epl.Check(pol, schema); err != nil {
		return nil
	}
	findings := model.Check(pol, schema)
	for i := range findings {
		findings[i].File = path
	}
	return findings
}

// loadSchema reads the plasmac-format schema file ({"actors": [...]}), or
// returns nil for the empty path.
func loadSchema(path string) (*epl.Schema, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sf struct {
		Actors []struct {
			Name      string   `json:"name"`
			Parent    string   `json:"parent"`
			Functions []string `json:"functions"`
			Props     []string `json:"props"`
		} `json:"actors"`
	}
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("plasma-lint: bad schema %s: %v", path, err)
	}
	var classes []*epl.ActorSchema
	for _, a := range sf.Actors {
		classes = append(classes, &epl.ActorSchema{
			Name: a.Name, Parent: a.Parent, Functions: a.Functions, Props: a.Props,
		})
	}
	return epl.NewSchema(classes...), nil
}
