// Command plasma-lint runs PLASMA's static-analysis engine: the EPL policy
// passes (satisfiability, flapping, shadowing, unused declarations — plus
// the compiler's conflict detection) over .epl files, and the determinism
// linter (wall-clock time, global math/rand, unsorted map-order output)
// over Go sources.
//
// Usage:
//
//	plasma-lint [-schema app.json] [-json] [-Werror] [target...]
//
// Targets ending in .epl are linted as policies; directories, dir/...
// patterns, and .go files are linted for determinism. With no targets it
// lints ./internal/... and ./cmd/... — the repository invariant `make
// verify` enforces.
//
// Exit status: 0 clean, 1 findings at error severity (or warning severity
// with -Werror), 2 usage or I/O failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"plasma/internal/epl"
	"plasma/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("plasma-lint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	jsonOut := fl.Bool("json", false, "emit findings as JSON")
	werror := fl.Bool("Werror", false, "exit nonzero on warnings, not only errors")
	schemaPath := fl.String("schema", "", "application schema JSON for policy checking")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	targets := fl.Args()
	if len(targets) == 0 {
		targets = []string{"./internal/...", "./cmd/..."}
	}
	var epls, gos []string
	for _, t := range targets {
		if strings.HasSuffix(t, ".epl") {
			epls = append(epls, t)
		} else {
			gos = append(gos, t)
		}
	}

	schema, err := loadSchema(*schemaPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var diags []lint.Diagnostic
	for _, path := range epls {
		diags = append(diags, lintPolicyFile(path, schema)...)
	}
	if len(gos) > 0 {
		files, err := lint.ExpandGoPatterns(gos)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		goDiags, err := lint.LintGoFiles(files)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags = append(diags, goDiags...)
	}
	lint.SortDiagnostics(diags)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
		}{Diagnostics: diags}
		if out.Diagnostics == nil {
			out.Diagnostics = []lint.Diagnostic{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}

	bar := lint.Error
	if *werror {
		bar = lint.Warning
	}
	if lint.MaxSeverity(diags) >= bar {
		return 1
	}
	return 0
}

// lintPolicyFile parses, checks, and analyzes one .epl file; failures
// surface as diagnostics rather than aborting the run, so a corpus lints
// in one pass.
func lintPolicyFile(path string, schema *epl.Schema) []lint.Diagnostic {
	fail := func(msg string) []lint.Diagnostic {
		return []lint.Diagnostic{{
			Code: lint.CodeParse, Severity: lint.Error, File: path,
			Line: 1, Col: 1, Message: msg,
		}}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(err.Error())
	}
	pol, err := epl.Parse(string(data))
	if err != nil {
		return fail(err.Error())
	}
	diags, err := lint.CheckAndAnalyze(pol, schema)
	if err != nil {
		return fail(err.Error())
	}
	for i := range diags {
		diags[i].File = path
	}
	return diags
}

// loadSchema reads the plasmac-format schema file ({"actors": [...]}), or
// returns nil for the empty path.
func loadSchema(path string) (*epl.Schema, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sf struct {
		Actors []struct {
			Name      string   `json:"name"`
			Parent    string   `json:"parent"`
			Functions []string `json:"functions"`
			Props     []string `json:"props"`
		} `json:"actors"`
	}
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("plasma-lint: bad schema %s: %v", path, err)
	}
	var classes []*epl.ActorSchema
	for _, a := range sf.Actors {
		classes = append(classes, &epl.ActorSchema{
			Name: a.Name, Parent: a.Parent, Functions: a.Functions, Props: a.Props,
		})
	}
	return epl.NewSchema(classes...), nil
}
