package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const corpusDir = "../../internal/lint/testdata"

var goldenDir = filepath.Join(corpusDir, "golden", "plasma-lint")

// runGolden executes the CLI in-process and returns the normalized
// transcript: stdout, then an exit-status trailer. Corpus paths are
// rewritten relative to testdata/ so goldens do not depend on the
// package's location.
func runGolden(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	if stderr.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", stderr.String())
	}
	out := strings.ReplaceAll(stdout.String(), corpusDir+"/", "testdata/")
	return out + fmt.Sprintf("exit: %d\n", code)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join(goldenDir, name+".golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenCorpus locks the CLI's text output and exit status for every
// corpus policy.
func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.epl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".epl")
		t.Run(name, func(t *testing.T) {
			checkGolden(t, name, runGolden(t, f))
		})
	}
}

// TestGoldenModel locks the model checker's CLI output for the seeded
// model-checker corpus: the plain -model diagnostic lines and the full
// -explain counterexample rendering.
func TestGoldenModel(t *testing.T) {
	cases := []string{
		"osc_cross_rule", "dead_overload", "unreachable_scale",
		"deadend_warmpool", "assert_viol", "bad_assert", "clean_provclass",
	}
	for _, name := range cases {
		path := filepath.Join(corpusDir, name+".epl")
		t.Run(name, func(t *testing.T) {
			checkGolden(t, name+".model", runGolden(t, "-model", path))
		})
		t.Run(name+"_explain", func(t *testing.T) {
			checkGolden(t, name+".explain", runGolden(t, "-explain", path))
		})
	}
}

// TestGoldenModelJSON locks the machine-readable counterexample shape —
// downstream tools replay these paths through the simulator.
func TestGoldenModelJSON(t *testing.T) {
	got := runGolden(t, "-model", "-json", filepath.Join(corpusDir, "osc_cross_rule.epl"))
	checkGolden(t, "osc_cross_rule.model.json", got)
}

// TestGoldenJSON locks the machine-readable output shape.
func TestGoldenJSON(t *testing.T) {
	got := runGolden(t, "-json", filepath.Join(corpusDir, "shadow_true.epl"))
	checkGolden(t, "shadow_true.json", got)
	clean := runGolden(t, "-json", filepath.Join(corpusDir, "clean_pagerank.epl"))
	checkGolden(t, "clean_pagerank.json", clean)
}

func TestWerrorPromotesWarnings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	path := filepath.Join(corpusDir, "flap_zero_band.epl")
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("warnings alone should exit 0, got %d", code)
	}
	stdout.Reset()
	if code := run([]string{"-Werror", path}, &stdout, &stderr); code != 1 {
		t.Fatalf("-Werror with warnings should exit 1")
	}
}

func TestInfoNeverFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	path := filepath.Join(corpusDir, "dead_var.epl")
	if code := run([]string{"-Werror", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("info-severity findings should not fail -Werror, got %d\n%s", code, stdout.String())
	}
}

func TestLintGoTarget(t *testing.T) {
	dir := t.TempDir()
	src := `package p

import "time"

func now() int64 { return time.Now().Unix() }
`
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("DET001 should exit 1, got %d (stderr %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "DET001") {
		t.Fatalf("output missing DET001: %s", stdout.String())
	}
}
