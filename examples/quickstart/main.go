// Quickstart: a minimal PLASMA application — a pool of CPU-heavy workers
// crowded onto one server, with a single balance rule that spreads them.
//
// It demonstrates the whole programming model: write actors against the
// actor runtime, write an elasticity policy in the EPL, wire both with
// core.NewSystem, and watch the elasticity management runtime migrate
// actors based on live CPU profiles.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"plasma/internal/actor"
	"plasma/internal/core"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// policy is the elasticity behavior, written in PLASMA's EPL: keep every
// server's CPU between 60% and 80% by migrating Worker actors.
const policy = `
server.cpu.perc > 80 or server.cpu.perc < 60 =>
    balance({Worker}, cpu);
`

// worker burns ~45 ms of CPU per 100 ms cycle (45% of one core).
func worker() actor.Behavior {
	return actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(45 * sim.Millisecond)
		ctx.SendAfter(55*sim.Millisecond, ctx.Self(), "work", nil, 16)
	})
}

func main() {
	sys, err := core.NewSystem(core.Options{
		Policy:   policy,
		Schema:   epl.NewSchema(epl.Class("Worker", []string{"work"}, nil)),
		Machines: 4,
		EMR:      emr.Config{Period: 2 * sim.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range sys.Warnings {
		fmt.Println(w)
	}

	// Crowd eight workers onto server 0 (~360% demand on one core).
	var workers []actor.Ref
	for i := 0; i < 8; i++ {
		workers = append(workers, sys.Runtime.SpawnOn("Worker", worker(), 0))
	}
	cl := sys.Client(1)
	for _, w := range workers {
		cl.Send(w, "work", nil, 16)
	}

	sys.Start()

	show := func(label string) {
		fmt.Printf("%-8s", label)
		for _, m := range sys.Cluster.UpMachines() {
			fmt.Printf("  server%d: %d workers (%.0f%% cpu)", m.ID,
				len(sys.Runtime.ActorsOn(m.ID)), m.CPUPercent())
		}
		fmt.Println()
	}

	show("t=0s")
	// Sample mid-period so the utilization window has content (the
	// profiler resets it at every elasticity tick).
	sys.Run(3 * sim.Second)
	for i := 0; i < 5; i++ {
		show(fmt.Sprintf("t=%ds", 3+i*4))
		sys.Run(4 * sim.Second)
	}
	fmt.Printf("\nmigrations performed: %d\n", sys.Manager.Stats.ExecutedMigrations)
	fmt.Println("PLASMA balanced the workers across the fleet using one declarative rule.")
}
