// PageRank example: the §5.4 scenario end to end — generate a power-law
// graph, partition it METIS-style, deploy one Worker actor per partition
// over a simulated cluster, and compare convergence with and without
// PLASMA's balance rule.
//
// Run: go run ./examples/pagerank
package main

import (
	"fmt"

	"plasma/internal/actor"
	"plasma/internal/apps/pagerank"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/graph"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func run(elastic bool) (sim.Duration, int) {
	k := sim.New(7)
	c := cluster.New(k, 8, cluster.M5Large)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)

	g := graph.GeneratePowerLaw(12000, 10, 2.1, 7)
	parts := graph.PartitionMultilevel(g, 32, 7)
	placement := make([]cluster.MachineID, 32)
	perm := sim.New(99).Rand().Perm(32)
	for i, p := range perm {
		placement[p] = cluster.MachineID(i % 8)
	}
	app := pagerank.Build(k, rt, pagerank.Config{
		Graph: g, Parts: parts, K: 32,
		PerEdgeCost: 55 * sim.Microsecond, SyncOverhead: 12 * sim.Millisecond,
		HeteroSpread: 0.5, Iterations: 120,
	}, placement)

	var mgr *emr.Manager
	if elastic {
		mgr = emr.New(k, c, rt, prof, epl.MustParse(pagerank.PolicySrc),
			emr.Config{Period: 500 * sim.Millisecond})
		mgr.Start()
	}
	app.Start(k)
	for !app.Done && k.Step() {
	}
	migrations := 0
	if mgr != nil {
		migrations = mgr.Stats.ExecutedMigrations
	}
	return app.ConvergedTime(), migrations
}

func main() {
	fmt.Println("distributed PageRank: 12k-vertex power-law graph, 32 partitions, 8 m5.large VMs")
	fmt.Printf("policy:%s\n", pagerank.PolicySrc)

	static, _ := run(false)
	elastic, migs := run(true)
	fmt.Printf("converged iteration time, static placement:  %v\n", static)
	fmt.Printf("converged iteration time, PLASMA balancing:  %v  (%d migrations)\n", elastic, migs)
	if elastic < static {
		fmt.Printf("PLASMA converges %.1f%% faster by relocating heavy partitions.\n",
			(float64(static-elastic))/float64(static)*100)
	}

	// Sanity: the distributed execution models the same algorithm the
	// reference kernel computes.
	g := graph.GeneratePowerLaw(2000, 8, 2.2, 7)
	ranks := graph.PageRank(g, 0.85, 20)
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	fmt.Printf("reference PageRank kernel: %d vertices, rank mass %.6f\n", g.N, sum)
}
