// Halo Presence example: the §5.7 scenario — player heartbeats route
// through Router → Session → Player actors. The §3.3 interaction rule pins
// each Session and co-locates joining Players with it, so heartbeats avoid
// remote hops from the moment a player joins.
//
// Run: go run ./examples/halo
package main

import (
	"fmt"

	"plasma/internal/actor"
	"plasma/internal/apps/halo"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/metrics"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func run(withRule bool) (mean, p95 float64) {
	k := sim.New(3)
	c := cluster.New(k, 10, cluster.M1Small)
	c.BaseLatency = 5 * sim.Millisecond
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	srvs := make([]cluster.MachineID, 8)
	for i := range srvs {
		srvs[i] = cluster.MachineID(i)
	}
	app := halo.Build(k, rt, srvs, srvs, 8, 8)
	if withRule {
		mgr := emr.New(k, c, rt, prof, epl.MustParse(halo.InterPolicySrc),
			emr.Config{Period: 25 * sim.Second})
		mgr.Start()
	}

	var hist metrics.Histogram
	for i := 0; i < 32; i++ {
		i := i
		k.At(sim.Time(i)*sim.Time(3*sim.Second), func() {
			p := app.Join(i % 8)
			cl := actor.NewClient(rt, cluster.MachineID(8+i%2))
			k.Every(500*sim.Millisecond, func() bool {
				app.Heartbeat(cl, p, func(lat sim.Duration) {
					hist.Observe(float64(lat) / float64(sim.Millisecond))
				})
				return k.Now() < sim.Time(180*sim.Second)
			})
		})
	}
	k.Run(sim.Time(200 * sim.Second))
	return hist.Mean(), hist.Percentile(95)
}

func main() {
	fmt.Println("Halo Presence Service: heartbeat = client -> Router -> Session -> Player -> client")
	fmt.Printf("interaction rule:%s\n", halo.InterPolicySrc)

	m0, p0 := run(false)
	m1, p1 := run(true)
	fmt.Printf("without rule: mean %.1f ms, p95 %.1f ms (players placed at random)\n", m0, p0)
	fmt.Printf("with rule:    mean %.1f ms, p95 %.1f ms (players created beside their session)\n", m1, p1)
	if p1 < p0 {
		fmt.Printf("the rule cuts tail latency by %.0f%% by avoiding remote session->player hops.\n",
			(p0-p1)/p0*100)
	}
}
