// Media Service example: the §5.6 scenario — a microservice of eight actor
// types under a bell-shaped client population, with PLASMA's six rules
// growing and shrinking the fleet as clients come and go.
//
// Run: go run ./examples/mediaservice
package main

import (
	"fmt"

	"plasma/internal/actor"
	"plasma/internal/apps/mediaservice"
	"plasma/internal/apps/workload"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func main() {
	fmt.Println("Media Service under PLASMA's six elasticity rules:")
	fmt.Print(mediaservice.PolicySrc)
	fmt.Println()

	k := sim.New(1)
	c := cluster.New(k, 4, cluster.M1Small)
	c.SetMaxSize(65)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	app := mediaservice.Build(k, rt, []cluster.MachineID{0, 1, 2, 3}, 8)
	k.RunUntilIdle()

	mgr := emr.New(k, c, rt, prof, epl.MustParse(mediaservice.PolicySrc),
		emr.Config{Period: 20 * sim.Second, ScaleOut: true, ScaleIn: true,
			MinServers: 4, InstanceType: cluster.M1Small})
	mgr.Start()

	rec := workload.NewRecorder(20 * sim.Second)
	const clients = 32
	var loops []*workload.ClosedLoop
	// Clients join over the first 80 s...
	for i := 0; i < clients; i++ {
		i := i
		k.At(sim.Time(i)*sim.Time(2500*sim.Millisecond), func() {
			id, fe := app.AddClient()
			watch := true
			loop := &workload.ClosedLoop{
				K: k, Client: actor.NewClient(rt, 0), Think: 200 * sim.Millisecond,
				Rec: rec,
				Next: func() workload.Request {
					watch = !watch
					if watch {
						return workload.Request{Target: fe, Method: "watch", Size: 512}
					}
					return workload.Request{Target: fe, Method: "review", Size: 2 << 10}
				},
			}
			loops = append(loops, loop)
			loop.Start()
			// ...and leave after 150 s each.
			k.After(150*sim.Second, func() {
				loop.Stop()
				app.RemoveClient(id)
			})
		})
	}

	for t := 40; t <= 280; t += 40 {
		k.Run(sim.Time(t) * sim.Time(sim.Second))
		fmt.Printf("t=%3ds  servers=%2d  actors=%3d  migrations=%d  scale-out=%d  scale-in=%d\n",
			t, c.UpCount(), app.ActiveActors(), mgr.Stats.ExecutedMigrations,
			mgr.Stats.ScaleOuts, mgr.Stats.ScaleIns)
	}
	fmt.Printf("\nmean request latency: %.1f ms over %d requests\n",
		rec.Hist.Mean(), rec.Hist.Count())
	fmt.Println("the fleet grew for the client wave and shrank after it left.")
}
