// Package plasma is a from-scratch Go reproduction of "PLASMA: Programmable
// Elasticity for Stateful Cloud Computing Applications" (EuroSys 2020): an
// elasticity programming language (EPL) compiled and evaluated over a
// profiling runtime, driving a two-level elasticity management runtime
// (LEMs/GEMs) that migrates actors and scales a cluster.
//
// The public entry point is internal/core (see examples/quickstart); the
// evaluation harness reproducing every table and figure of the paper lives
// in internal/experiments and the benchmarks in bench_test.go.
package plasma
