package experiments

import (
	"reflect"
	"testing"
)

// Acceptance: all three applications survive three seeded fault schedules
// each with zero invariant violations, and the schedules actually injected
// faults (the sweep is not vacuous).
func TestChaosInvariantsHoldAcrossAppsAndSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness runs nine full simulations")
	}
	r := Chaos(Config{})
	if got := r.Summary["runs"]; got != 9 {
		t.Fatalf("runs = %v, want 9 (3 apps x 3 seeds)", got)
	}
	if got := r.Summary["invariant_violations"]; got != 0 {
		t.Fatalf("invariant violations = %v, want 0:\n%s", got, r.Render())
	}
	if r.Summary["msg_faults"] == 0 {
		t.Fatal("no message faults injected; harness is vacuous")
	}
	if r.Summary["crashes"] == 0 {
		t.Fatal("no machine crashes applied; harness is vacuous")
	}
	if r.Summary["migrations"] == 0 {
		t.Fatal("no elasticity actions executed under chaos")
	}
}

// Satellite: the chaos layer is deterministic end to end — the same seed
// replays the same fault trace bit for bit and lands every actor on the
// same machine with the same EMR counters; a different seed does not.
func TestChaosDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full simulations")
	}
	a := chaosMediaService(Config{}, 21)
	b := chaosMediaService(Config{}, 21)
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Fatalf("same seed produced different fault traces:\n%v\nvs\n%v", a.trace, b.trace)
	}
	if a.dir != b.dir {
		t.Fatalf("same seed produced different final directories:\n%s\nvs\n%s", a.dir, b.dir)
	}
	if a.emrStats != b.emrStats {
		t.Fatalf("same seed produced different EMR stats:\n%+v\nvs\n%+v", a.emrStats, b.emrStats)
	}
	if a.injStats != b.injStats {
		t.Fatalf("same seed produced different injector stats:\n%+v\nvs\n%+v", a.injStats, b.injStats)
	}

	c := chaosMediaService(Config{}, 22)
	if reflect.DeepEqual(a.trace, c.trace) {
		t.Fatal("different seeds produced identical fault traces")
	}
}
