package experiments

import "testing"

// The acceptance bar for the batch planner: at the pinned seed the batched
// multi-resource round must converge strictly faster than the legacy greedy
// round on both plan_* scenarios. The magnitudes are recorded in
// EXPERIMENTS.md; the inequalities are the claim.

func TestPlanPagerankBatchBeatsLegacy(t *testing.T) {
	r := PlanPagerank(Config{Seed: 1})
	legacy, batch := r.Summary["converged_ms_legacy"], r.Summary["converged_ms_batch"]
	if legacy == 0 || batch == 0 {
		t.Fatalf("degenerate convergence times: legacy=%.1f batch=%.1f", legacy, batch)
	}
	if batch >= legacy {
		t.Fatalf("batch converged in %.0f ms, legacy in %.0f ms; the batch planner lost its own race", batch, legacy)
	}
	// The mechanism, not just the outcome: legacy's axis-blind cpu and mem
	// rules keep undoing each other, so it migrates far more for a worse
	// final layout.
	if r.Summary["migrations_batch"] >= r.Summary["migrations_legacy"] {
		t.Errorf("batch moved %.0f actors vs legacy %.0f; expected strictly fewer (no axis ping-pong)",
			r.Summary["migrations_batch"], r.Summary["migrations_legacy"])
	}
	if imp := r.Summary["batch_improvement_pct"]; imp < 50 {
		t.Errorf("batch improvement = %.1f%% at seed 1; the oscillation collapse should be worth at least half the legacy time", imp)
	}
}

func TestPlanHaloBatchBeatsLegacy(t *testing.T) {
	r := PlanHalo(Config{Seed: 1})
	for _, k := range []string{"mean_ms", "final_ms"} {
		legacy, batch := r.Summary[k+"_legacy"], r.Summary[k+"_batch"]
		if legacy == 0 || batch == 0 {
			t.Fatalf("degenerate %s: legacy=%.1f batch=%.1f", k, legacy, batch)
		}
		if batch >= legacy {
			t.Fatalf("%s: batch %.1f ms vs legacy %.1f ms; affinity placement lost", k, batch, legacy)
		}
	}
	// Batch settles no later than legacy: routers land beside their traffic
	// in the first spreading round instead of drifting there.
	if sb, sl := r.Summary["settle_s_batch"], r.Summary["settle_s_legacy"]; sb > sl {
		t.Errorf("batch settled at %.0fs, legacy at %.0fs", sb, sl)
	}
}
