package experiments

import (
	"fmt"

	"plasma/internal/actor"
	"plasma/internal/apps/chatroom"
	"plasma/internal/cluster"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// Table3 reproduces the EPR overhead measurement of §5.2: the chat room
// microbenchmark on one instance with {8,16,32} users on m1.small ("s") and
// m1.medium ("m"), reporting the execution time with profiling normalized
// to the vanilla runtime. The paper observes at most 2.3% overhead.
func Table3(cfg Config) *Result {
	r := newResult("table3", "Normalized EPR overhead (chat room microbenchmark)")
	r.Header = []string{"Setup", "Vanilla", "Profiled", "Normalized"}

	posts := 30
	if cfg.Full {
		posts = 200
	}

	run := func(inst cluster.InstanceType, users int, profiled bool) sim.Duration {
		k := cfg.kernel()
		c := cluster.New(k, 1, inst)
		rt := actor.NewRuntime(k, c)
		if profiled {
			profile.New(k, c, rt)
		}
		app := chatroom.Build(rt, 0, users)
		app.DrivePosts(k, 0, posts, 5*sim.Millisecond)
		k.RunUntilIdle()
		return sim.Duration(k.Now())
	}

	worst := 0.0
	for _, inst := range []cluster.InstanceType{cluster.M1Small, cluster.M1Medium} {
		suffix := "s"
		if inst.Name == "m1.medium" {
			suffix = "m"
		}
		for _, users := range []int{8, 16, 32} {
			vanilla := run(inst, users, false)
			profiled := run(inst, users, true)
			norm := float64(profiled) / float64(vanilla)
			if norm-1 > worst {
				worst = norm - 1
			}
			setup := fmt.Sprintf("%d-%s", users, suffix)
			r.addRow(setup, vanilla.String(), profiled.String(), fmt.Sprintf("%.3f", norm))
			r.Summary["norm_"+setup] = norm
		}
	}
	r.Summary["worst_overhead"] = worst
	if worst <= 0.023 {
		r.notef("worst-case overhead %.1f‰ — within the paper's 2.3%% bound", worst*1000)
	} else {
		r.notef("worst-case overhead %.2f%% exceeds the paper's 2.3%% bound", worst*100)
	}
	return r
}
