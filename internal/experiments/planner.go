package experiments

import (
	"fmt"

	"plasma/internal/actor"
	"plasma/internal/apps/halo"
	"plasma/internal/apps/pagerank"
	"plasma/internal/apps/workload"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/graph"
	"plasma/internal/metrics"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// The plan_* family races the batched multi-resource planner (Config.Planner
// = "batch", DESIGN.md §11) against the legacy greedy round on the paper's
// workloads, everything else pinned: same seed, same placement, same policy,
// same period. Each scenario exercises a specific legacy blind spot — single-
// axis rules fighting each other, and load-only targeting that ignores where
// an actor's traffic lands.

// planPagerankPolicy adds a memory band to the paper's CPU band: with
// vertex state sized realistically, the two rules constrain the same
// workers on different axes.
const planPagerankPolicy = `
server.cpu.perc > 80 or server.cpu.perc < 60 =>
    balance({Worker}, cpu);
server.mem.perc > 80 or server.mem.perc < 60 =>
    balance({Worker}, mem);
`

// PlanPagerank races the planners on a memory-heavy Fig. 6a variant: 32
// PageRank workers with large vertex state, randomly placed on 8 m5.large
// servers, governed by a CPU band and a memory band. The legacy round plans
// each rule on its own axis against the same static snapshot, so a CPU move
// can overload the target's memory (and vice versa) and the rules undo each
// other across periods — every bounce costs a multi-second state serialize.
// The batch round packs both intents against one shared (cpu, mem, net)
// projection, so a target must fit on every axis before a move is planned.
func PlanPagerank(cfg Config) *Result {
	r := newResult("plan_pagerank", "PageRank convergence under cpu+mem bands: batch planner vs legacy greedy")
	r.Header = []string{"Planner", "Converged iteration time", "Migrations"}
	su := pagerankSetup(cfg)
	const statePerVertex = 4 << 20 // ~1.5 GB per worker: memory is a real axis

	run := func(planner string) (sim.Duration, int) {
		seed := cfg.seed()
		placement := randomPlacement(seed*7+1, su.workers, 8)
		k := cfg.kernelSeeded(seed)
		c := cluster.New(k, 8, cluster.M5Large)
		rt := actor.NewRuntime(k, c)
		prof := profile.New(k, c, rt)
		g := graph.GeneratePowerLaw(su.vertices, su.avgDeg, 2.1, seed)
		parts := graph.PartitionMultilevel(g, su.workers, seed)
		app := pagerank.Build(k, rt, pagerank.Config{
			Graph: g, Parts: parts, K: su.workers,
			PerEdgeCost: su.perEdge, SyncOverhead: su.syncOver, Iterations: su.iterations,
			HeteroSpread: 0.5, StatePerVertex: statePerVertex,
		}, placement)
		env := &prEnv{k: k, c: c, rt: rt, prof: prof, app: app}
		mgr := emr.New(k, c, rt, prof, epl.MustParse(planPagerankPolicy),
			emr.Config{Period: su.period, Planner: planner})
		cfg.wireTrace(mgr)
		mgr.Start()
		app.Start(k)
		runToCompletion(env, 30*sim.Minute)
		return app.ConvergedTime(), mgr.Stats.ExecutedMigrations
	}

	times := map[string]float64{}
	for _, planner := range []string{"", "batch"} {
		name := "legacy"
		if planner != "" {
			name = planner
		}
		conv, migs := run(planner)
		times[name] = float64(conv)
		r.addRow(name, conv.String(), fmt.Sprintf("%d", migs))
		r.Summary["converged_ms_"+name] = float64(conv) / float64(sim.Millisecond)
		r.Summary["migrations_"+name] = float64(migs)
	}
	if times["legacy"] > 0 {
		imp := (times["legacy"] - times["batch"]) / times["legacy"] * 100
		r.Summary["batch_improvement_pct"] = imp
		r.notef("legacy's cpu and mem rules plan blind to each other's axis; batch packs one shared projection — measured %.1f%% faster convergence", imp)
	}
	return r
}

// PlanHalo races the planners on a skewed Fig. 11c variant: routers crowded
// on an eighth of the fleet with CPU-hot decryption, three quarters of the
// clients joining the four hottest sessions, and each client sticky to one
// router (the usual sticky load-balancer front end), so every router
// forwards mostly to one hot session. When the router-balance rule spreads
// routers out, the legacy round targets the quietest server regardless of
// traffic; the batch round's affinity scoring places each router where the
// sessions it forwards to actually live, cutting a remote hop off most
// heartbeats.
// planHaloPolicy tightens fig11's router band ([80,60] -> [40,15]) so the
// crowded routers actually spread across the fleet instead of stopping at
// the first server that dips under 80%, and keeps the paper's interaction
// rule. More movers means the target choice — affinity vs least-loaded —
// decides more of the fleet's layout.
const planHaloPolicy = `
server.cpu.perc > 40 or server.cpu.perc < 15 =>
    balance({Router}, cpu);
` + halo.InterPolicySrc

func PlanHalo(cfg Config) *Result {
	r := newResult("plan_halo", "Halo latency with skewed sessions: batch planner vs legacy greedy")
	r.Header = []string{"Planner", "Mean latency", "Final latency", "Settle time"}

	servers, routers, sessions, clients := 64, 32, 64, 128
	period := 80 * sim.Second
	total := 800 * sim.Second
	hbEvery := 500 * sim.Millisecond
	hotSessions := 4
	if !cfg.Full {
		servers, routers, sessions, clients = 16, 8, 16, 32
		period = 20 * sim.Second
		total = 200 * sim.Second
		hbEvery = 200 * sim.Millisecond
	}

	run := func(planner string) *workload.Recorder {
		k := cfg.kernel()
		c := cluster.New(k, servers+2, cluster.M1Small)
		// Accentuate the remote hop further than fig11 (20 ms): the skewed
		// scenario is about where routers sit relative to their traffic, so
		// the cross-server hop must dominate per-message compute.
		c.BaseLatency = 4 * haloBaseLatency
		rt := actor.NewRuntime(k, c)
		prof := profile.New(k, c, rt)
		// All routers crowd a sixteenth of the fleet so the balance rule has
		// real work even at the gentler heartbeat rate.
		routerSrvs := make([]cluster.MachineID, servers/16)
		for i := range routerSrvs {
			routerSrvs[i] = cluster.MachineID(i)
		}
		sessionSrvs := make([]cluster.MachineID, servers)
		for i := range sessionSrvs {
			sessionSrvs[i] = cluster.MachineID(i)
		}
		app := halo.Build(k, rt, routerSrvs, sessionSrvs, routers, sessions)
		app.Decrypt = true

		mgr := emr.New(k, c, rt, prof, epl.MustParse(planHaloPolicy),
			emr.Config{Period: period, Planner: planner})
		cfg.wireTrace(mgr)
		mgr.Start()

		rec := workload.NewRecorder(20 * sim.Second)
		for i := 0; i < clients; i++ {
			i := i
			// Popularity skew: three quarters of the clients pile into the
			// hot sessions; the rest spread round-robin.
			sess := i % sessions
			if i%4 != 0 {
				sess = i % hotSessions
			}
			joinAt := sim.Time(i) * sim.Time(total) / sim.Time(2*clients)
			k.At(joinAt, func() {
				p := app.Join(sess)
				cl := actor.NewClient(rt, cluster.MachineID(servers+i%2))
				router := app.Routers[i%len(app.Routers)]
				k.Every(hbEvery, func() bool {
					cl.Request(router, "heartbeat", p, 256, func(lat sim.Duration, _ interface{}) {
						rec.Record(k.Now(), lat)
					})
					return k.Now() < sim.Time(total)
				})
			})
		}
		k.Run(sim.Time(total))
		return rec
	}

	stats := map[string][2]float64{}
	for _, planner := range []string{"", "batch"} {
		name := "legacy"
		if planner != "" {
			name = planner
		}
		rec := run(planner)
		series := rec.Series()
		r.Series[name] = series
		mean := rec.Hist.Mean()
		final := series.TailMeanY(0.25)
		settle := settleTime(series, final)
		stats[name] = [2]float64{mean, final}
		r.addRow(name, ms(mean), ms(final), fmt.Sprintf("%.0f s", settle))
		r.Summary["mean_ms_"+name] = mean
		r.Summary["final_ms_"+name] = final
		r.Summary["settle_s_"+name] = settle
	}
	if l := stats["legacy"]; l[0] > 0 {
		r.Summary["batch_mean_improvement_pct"] = (l[0] - stats["batch"][0]) / l[0] * 100
		r.Summary["batch_final_improvement_pct"] = (l[1] - stats["batch"][1]) / l[1] * 100
	}
	r.notef("affinity-scored targets put each router beside the hot sessions it forwards to; settle time = first bucket after which latency stays within 20%% of final")
	return r
}

// settleTime finds the earliest bucket time (seconds) after which every
// bucket mean stays within 20% of the final level.
func settleTime(s *metrics.Series, final float64) float64 {
	if s.Len() == 0 {
		return 0
	}
	settleAt := s.X[0]
	settled := true
	for i := 0; i < s.Len(); i++ {
		d := s.Y[i] - final
		if d < 0 {
			d = -d
		}
		if d > 0.2*final {
			settled = false
		} else if !settled {
			settleAt = s.X[i]
			settled = true
		}
	}
	if !settled {
		return s.X[s.Len()-1]
	}
	return settleAt
}
