package experiments

import (
	"plasma/internal/actor"
	"plasma/internal/apps/metadata"
	"plasma/internal/apps/workload"
	"plasma/internal/baseline"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// Fig5 reproduces §5.3: the Metadata Server under three setups — the §3.3
// reserve+colocate rule (res-col-rule), an application-agnostic default
// rule that migrates heavy actors to an idle server (def-rule), and no
// elasticity (no-rule). 4 folders × 8 files on an m1.small, 16 clients,
// one folder taking 50% of requests; the elastic setups may use one extra
// server.
//
// Paper: res-col-rule reduces latency by ~40%; def-rule shows no visible
// benefit because folder accesses are forwarded to files left behind.
func Fig5(cfg Config) *Result {
	r := newResult("fig5", "Metadata Server: reserve+colocate vs default rule vs none")
	r.Header = []string{"Setup", "Latency before", "Latency after", "Change"}

	duration := 100 * sim.Second
	period := 30 * sim.Second
	clients := 16
	folders, filesPer := 4, 8

	run := func(mode string) *workload.Recorder {
		k := cfg.kernel()
		c := cluster.New(k, 2, cluster.M1Small) // server 0 + one spare
		rt := actor.NewRuntime(k, c)
		prof := profile.New(k, c, rt)
		app := metadata.Build(k, rt, 0, folders, filesPer)
		k.RunUntilIdle()

		switch mode {
		case "res-col-rule":
			mgr := emr.New(k, c, rt, prof, epl.MustParse(metadata.PolicySrc),
				emr.Config{Period: period})
			cfg.wireTrace(mgr)
			mgr.Start()
		case "def-rule":
			h := &baseline.HeavyMigrator{K: k, RT: rt, C: c, Prof: prof,
				Period: period, TriggerCPU: 80, MoveCount: 1}
			h.Start()
		}

		rec := workload.NewRecorder(5 * sim.Second)
		pick := workload.SkewedPicker(k, metadata.HotWeights(folders, 0.5))
		for i := 0; i < clients; i++ {
			loop := &workload.ClosedLoop{
				K:      k,
				Client: actor.NewClient(rt, 1), // clients on the second machine
				Think:  50 * sim.Millisecond,
				Rec:    rec,
				Next: func() workload.Request {
					return workload.Request{Target: app.Folders[pick()], Method: "open", Size: 128}
				},
			}
			loop.Start()
		}
		k.Run(sim.Time(duration))
		return rec
	}

	var after = map[string]float64{}
	for _, mode := range []string{"res-col-rule", "def-rule", "no-rule"} {
		rec := run(mode)
		series := rec.Series()
		r.Series[mode] = series
		// "Before" is the first fifth (pre-elasticity), "after" the last
		// third (post-migration steady state).
		n := series.Len()
		var before float64
		if n > 0 {
			cnt := n / 5
			if cnt == 0 {
				cnt = 1
			}
			for _, y := range series.Y[:cnt] {
				before += y
			}
			before /= float64(cnt)
		}
		tail := series.TailMeanY(0.34)
		after[mode] = tail
		change := pct((tail - before) / before * 100)
		r.addRow(mode, ms(before), ms(tail), change)
		r.Summary["after_"+mode] = tail
	}
	resCol := after["res-col-rule"]
	noRule := after["no-rule"]
	defRule := after["def-rule"]
	if noRule > 0 {
		r.Summary["rescol_vs_norule_reduction"] = (noRule - resCol) / noRule * 100
		r.Summary["defrule_vs_norule_reduction"] = (noRule - defRule) / noRule * 100
	}
	r.notef("paper: res-col-rule ~40%% below the others; def-rule indistinguishable from no-rule")
	return r
}
