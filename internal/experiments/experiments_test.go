package experiments

import (
	"strings"
	"testing"
)

// The shape assertions below encode the paper's qualitative claims: each
// experiment must reproduce who wins and in which direction, not absolute
// AWS numbers.

func TestTable1AllAppsCompile(t *testing.T) {
	r := Table1(Config{})
	if r.Summary["apps"] != 9 {
		t.Fatalf("apps = %v", r.Summary["apps"])
	}
	for _, row := range r.Rows {
		if row[3] != "yes" {
			t.Fatalf("app %s failed to compile: %v", row[0], row)
		}
	}
	if r.Summary["total_rules"] < 15 {
		t.Fatalf("total rules = %v", r.Summary["total_rules"])
	}
}

func TestTable3OverheadWithinPaperBound(t *testing.T) {
	r := Table3(Config{})
	if w := r.Summary["worst_overhead"]; w <= 0 || w > 0.023 {
		t.Fatalf("worst overhead = %v, want (0, 2.3%%]", w)
	}
}

func TestFig5ShapesMatchPaper(t *testing.T) {
	r := Fig5(Config{})
	resCol := r.Summary["rescol_vs_norule_reduction"]
	defRule := r.Summary["defrule_vs_norule_reduction"]
	if resCol < 25 {
		t.Fatalf("res-col reduction %v%%, want >= 25%% (paper ~40%%)", resCol)
	}
	if defRule > resCol/2 {
		t.Fatalf("def-rule reduction %v%% too close to res-col %v%%", defRule, resCol)
	}
}

func TestFig6aPlasmaBeatsOrleans(t *testing.T) {
	r := Fig6a(Config{})
	if imp := r.Summary["plasma_improvement_pct"]; imp <= 2 {
		t.Fatalf("plasma improvement %v%%, want > 2%% (paper ~24%%)", imp)
	}
}

func TestFig6bFewerServersSimilarBallpark(t *testing.T) {
	r := Fig6b(Config{})
	if r.Summary["servers_plasma"] >= r.Summary["servers_conservative"] {
		t.Fatalf("plasma used %v servers vs conservative %v",
			r.Summary["servers_plasma"], r.Summary["servers_conservative"])
	}
	ratio := r.Summary["converged_ms_plasma"] / r.Summary["converged_ms_conservative"]
	if ratio > 2.5 {
		t.Fatalf("plasma %vx slower than conservative; too far from the paper's parity", ratio)
	}
}

func TestFig7aPlasmaGainExceedsMizan(t *testing.T) {
	r := Fig7a(Config{})
	p, m := r.Summary["gain_pct_plasma"], r.Summary["gain_pct_mizan"]
	if p <= m {
		t.Fatalf("plasma gain %v%% not above mizan %v%% (paper: 24%% vs <=3%%)", p, m)
	}
	if p <= 0 {
		t.Fatalf("plasma gain %v%%", p)
	}
}

func TestFig7bcImbalanceShrinks(t *testing.T) {
	r := Fig7bc(Config{})
	first, last := r.Summary["cpu_imbalance_first"], r.Summary["cpu_imbalance_last"]
	if last >= first {
		t.Fatalf("imbalance %v -> %v; balancing had no effect", first, last)
	}
	if r.Summary["migrations"] == 0 {
		t.Fatal("no migrations recorded")
	}
}

func TestFig8ScaleOutImprovesIterations(t *testing.T) {
	r := Fig8(Config{})
	if r.Summary["speedup"] < 1.5 {
		t.Fatalf("speedup = %v, want visible round-by-round improvement", r.Summary["speedup"])
	}
	if r.Summary["final_servers"] < 3 {
		t.Fatalf("final servers = %v", r.Summary["final_servers"])
	}
	if r.Summary["scaleouts"] == 0 {
		t.Fatal("no scale-outs")
	}
}

func TestFig9PlasmaMatchesInApp(t *testing.T) {
	r := Fig9(Config{})
	none := r.Summary["tail_ms_none"]
	plasma := r.Summary["tail_ms_plasma"]
	inapp := r.Summary["tail_ms_in-app"]
	if plasma >= none || inapp >= none {
		t.Fatalf("elastic setups not below none: plasma=%v inapp=%v none=%v", plasma, inapp, none)
	}
	ratio := plasma / inapp
	if ratio < 0.5 || ratio > 1.5 {
		t.Fatalf("plasma/in-app ratio %v; paper says they track closely", ratio)
	}
}

func TestFig10ShorterPeriodReclaimsFaster(t *testing.T) {
	r := Fig10(Config{})
	if r.Summary["peak_servers_20s"] <= 4 {
		t.Fatal("fleet never grew")
	}
	if r.Summary["final_servers_20s"] > r.Summary["final_servers_60s"] {
		t.Fatalf("20s period ended with %v servers vs 60s period's %v; shorter should reclaim faster",
			r.Summary["final_servers_20s"], r.Summary["final_servers_60s"])
	}
	if r.Summary["mean_latency_ms_20s"] > r.Summary["mean_latency_ms_60s"]*1.15 {
		t.Fatalf("short-period latency %v far above long-period %v",
			r.Summary["mean_latency_ms_20s"], r.Summary["mean_latency_ms_60s"])
	}
}

func TestFig11aInterRuleSmoother(t *testing.T) {
	r := Fig11a(Config{})
	if r.Summary["p95_ms_def-rule"] <= r.Summary["p95_ms_inter-rule"] {
		t.Fatalf("def-rule p95 %v not above inter-rule %v",
			r.Summary["p95_ms_def-rule"], r.Summary["p95_ms_inter-rule"])
	}
}

func TestFig11bMisplacedPayUntilRedistribution(t *testing.T) {
	r := Fig11b(Config{})
	if r.Summary["misplaced_clients"] == 0 {
		t.Skip("random placement happened to colocate everyone")
	}
	if ratio := r.Summary["misplaced_early_over_late"]; ratio < 1.1 {
		t.Fatalf("misplaced early/late ratio %v, want > 1.1 (paper ~1.35+)", ratio)
	}
}

func TestFig11cSpikeThenStabilizeAndGEMsComparable(t *testing.T) {
	r := Fig11c(Config{})
	if r.Summary["peak_ms_1gem"] < r.Summary["final_ms_1gem"]*1.5 {
		t.Fatalf("no saturation spike: peak %v vs final %v",
			r.Summary["peak_ms_1gem"], r.Summary["final_ms_1gem"])
	}
	f1, f4 := r.Summary["final_ms_1gem"], r.Summary["final_ms_4gem"]
	if f4 > f1*1.3 || f1 > f4*1.3 {
		t.Fatalf("GEM counts diverge: 1gem=%v 4gem=%v", f1, f4)
	}
	if r.Summary["router_servers_1gem"] < 4 {
		t.Fatalf("routers still crowded: %v servers", r.Summary["router_servers_1gem"])
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("bogus", Config{}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRenderIncludesHeaderAndSummary(t *testing.T) {
	r := Table1(Config{})
	out := r.Render()
	for _, want := range []string{"table1", "Application", "Metadata Server", "summary"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 28 {
		t.Fatalf("registered experiments = %d, want 28 (every table and figure, chaos, the scale family with its shard twins, and the burst, stream, and batched-planner families)", len(ids))
	}
}
