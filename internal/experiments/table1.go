package experiments

import (
	"fmt"

	"plasma/internal/apps/bptree"
	"plasma/internal/apps/cassandra"
	"plasma/internal/apps/estore"
	"plasma/internal/apps/halo"
	"plasma/internal/apps/mediaservice"
	"plasma/internal/apps/metadata"
	"plasma/internal/apps/pagerank"
	"plasma/internal/apps/piccolo"
	"plasma/internal/apps/zexpander"
	"plasma/internal/epl"
)

// Table1 regenerates Table 1's application inventory: each application's
// elasticity policy is compiled and checked against its schema, and the
// rule counts and behaviors are reported. (The paper's LoC column counted
// the authors' AEON sources; here the analogous inventory is the compiled
// rule set per application.)
func Table1(cfg Config) *Result {
	r := newResult("table1", "Applications implemented with PLASMA (rule inventory)")
	r.Header = []string{"Application", "Rules", "Behaviors", "Compiles", "Warnings"}

	type appEntry struct {
		name   string
		policy string
		schema *epl.Schema
	}
	apps := []appEntry{
		{"Metadata Server", metadata.PolicySrc, metadata.Schema()},
		{"PageRank", pagerank.PolicySrc, pagerank.Schema()},
		{"E-Store", estore.PolicySrc, estore.Schema()},
		{"Media Service", mediaservice.PolicySrc, mediaservice.Schema()},
		{"Halo Presence", halo.FullPolicySrc, halo.Schema()},
		{"B+ tree", bptree.PolicySrc, bptree.Schema()},
		{"Piccolo", piccolo.PolicySrc, piccolo.Schema()},
		{"zExpander", zexpander.PolicySrc, zexpander.Schema()},
		{"Cassandra", cassandra.PolicySrc, cassandra.Schema()},
	}
	totalRules := 0
	for _, a := range apps {
		pol, err := epl.Parse(a.policy)
		status := "yes"
		warnCount := 0
		behaviors := ""
		if err != nil {
			status = "NO: " + err.Error()
		} else {
			warns, cerr := epl.Check(pol, a.schema)
			if cerr != nil {
				status = "NO: " + cerr.Error()
			}
			warnCount = len(warns)
			kinds := map[string]int{}
			for _, rule := range pol.Rules {
				for _, b := range rule.Behaviors {
					kinds[b.Kind().String()]++
				}
			}
			for _, k := range []string{"balance", "reserve", "colocate", "separate", "pin"} {
				if kinds[k] > 0 {
					if behaviors != "" {
						behaviors += " "
					}
					behaviors += fmt.Sprintf("%s×%d", k, kinds[k])
				}
			}
			totalRules += len(pol.Rules)
			r.addRow(a.name, fmt.Sprintf("%d", len(pol.Rules)), behaviors, status, fmt.Sprintf("%d", warnCount))
			continue
		}
		r.addRow(a.name, "-", behaviors, status, fmt.Sprintf("%d", warnCount))
	}
	r.Summary["apps"] = float64(len(apps))
	r.Summary["total_rules"] = float64(totalRules)
	r.notef("paper reports <10 rules per application; all policies compile against their schemas")
	return r
}
