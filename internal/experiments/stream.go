package experiments

import (
	"fmt"
	"math"
	"sort"

	"plasma/internal/actor"
	"plasma/internal/apps/streamagg"
	"plasma/internal/apps/workload"
	"plasma/internal/baseline"
	"plasma/internal/chaos"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/metrics"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// The stream family is the Elasticutor comparison (PAPERS.md): a windowed
// per-key aggregation serving open-loop arrivals whose Zipf hot set drifts,
// run under two managers over the same fleet — PLASMA migrating whole
// key-range partitions under streamagg.PolicySrc, and an executor-level
// key-repartitioning baseline moving individual hot keys between pinned
// executors. The deliverable metric is recovery time after a skew shift:
// the first window whose p99 flush latency re-enters the SLO after the hot
// set rotates onto previously cold partitions (metrics.RecoveryTracker).

// streamOpts parameterizes one streaming run.
type streamOpts struct {
	mode    string // "plasma" or "elasticutor"
	servers int
	parts   int // plasma partition count (block size for hot-span interleave)
	keys    int
	span    int     // hot-span width in keys
	zipfS   float64 // Zipf exponent (>1)
	perKey  int64   // state bytes per key
	evCost  sim.Duration
	policy  string
	period  sim.Duration
	window  sim.Duration
	total   sim.Duration
	clients int
	// baseEvery is each client's inter-event interval at rate 1.
	baseEvery sim.Duration
	rate      func(t sim.Time) float64 // nil = constant 1
	// uniform draws keys uniformly instead of from the Zipf (rate-spike
	// scenarios: the load problem is capacity, not skew).
	uniform bool
	shifts    []sim.Time               // hot-set rotation instants
	rotate    int                      // keys rotated per shift
	sloMS     float64
	numGEMs   int
	// Elasticutor knobs.
	skewRatio float64
	maxKeys   int
	maxDests  int
	// PLASMA scale-out (stream_spike).
	scaleOut bool
	specs    []cluster.ProvSpec
	// Chaos schedule (stream_chaos).
	events []chaos.Event
	floor  int
}

// streamOut is one run's measured outcome.
type streamOut struct {
	recs      []metrics.Recovery
	meanRec   float64
	recovered int
	violSec   float64
	steadyP99 float64 // p99 of the window before the first shift
	peakP99   float64 // worst finite window p99
	moves     int     // migrations (plasma) or handoff batches (elasticutor)
	movedKeys int
	movedMB   float64
	events    int64
	scaleOuts int
	peakSrv   int
	ctlFails  int
	crashes   int
	p99Series *metrics.Series
	bad       []string
}

// streamRun drives one seeded streaming run end to end: open-loop clients
// draw keys from a drifting Zipf, events are one-way with a fixed CPU cost,
// and per-window flush probes measure the backlog in front of every window
// boundary. The same arrival stream (same seed, same draws) feeds whichever
// manager the mode selects.
func streamRun(cfg Config, seed int64, o streamOpts) streamOut {
	k := cfg.kernelSeeded(seed)
	clientSite := cluster.MachineID(o.servers)
	c := cluster.New(k, o.servers+1, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	servers := make([]cluster.MachineID, o.servers)
	for i := range servers {
		servers[i] = cluster.MachineID(i)
	}
	scfg := streamagg.Config{
		Keys: o.keys, PerKeyBytes: o.perKey,
		EvCost: o.evCost, FlushCost: 500 * sim.Microsecond,
	}

	// Deploy the job and its manager.
	var owner func(key int) actor.Ref
	var flushees []actor.Ref
	var m *emr.Manager
	var plasma *streamagg.Plasma
	var elastic *streamagg.Elastic
	var mgr *baseline.Elasticutor
	var env *chaosEnv
	peakSrv := o.servers
	out := streamOut{}
	switch o.mode {
	case "plasma":
		plasma = streamagg.BuildPlasma(k, rt, servers, o.parts, scfg)
		owner, flushees = plasma.Owner, plasma.Parts
		m = emr.New(k, c, rt, prof, epl.MustParse(o.policy), emr.Config{
			Period: o.period, NumGEMs: o.numGEMs, MinResidence: o.period / 2,
			ScaleOut: o.scaleOut, MinServers: o.servers,
			InstanceType: cluster.M1Small, ProvSpecs: o.specs,
			// Drifting hot sets leave a trail of stale dedications; the lease
			// returns cooled-off reserved servers to the pool (3 periods), and
			// grants evict the dedicated server's old residents so the hot
			// partition actually gets the CPU it was promised.
			ReserveTTL: 3, ReserveEvacuate: true,
		})
		cfg.wireTrace(m)
		m.OnTick = func(int, *epl.Snapshot) {
			if up := c.UpCount(); up > peakSrv {
				peakSrv = up
			}
		}
		if len(o.events) > 0 {
			inj := chaos.NewInjector(seed*31+7, k.Now)
			m.SetChaos(inj)
			env = &chaosEnv{c: c, rt: rt, m: m, floor: o.floor,
				protected: map[cluster.MachineID]bool{clientSite: true}}
			inj.Apply(k, env, o.events)
		}
		m.Start()
	case "elasticutor":
		elastic = streamagg.BuildElastic(k, rt, servers, clientSite, scfg)
		if cfg.Trace != nil {
			elastic.SetTracer(cfg.Trace)
		}
		owner = func(key int) actor.Ref { return elastic.Owner(key) }
		flushees = elastic.Execs
		mgr = &baseline.Elasticutor{
			K: k, App: elastic, Period: o.period,
			SkewRatio: o.skewRatio, MaxKeys: o.maxKeys, MaxDests: o.maxDests,
		}
		mgr.Start()
	default:
		panic("streamRun: unknown mode " + o.mode)
	}

	// The drifting arrival process, shared by every client.
	zipf := workload.NewZipfKeys(k, o.zipfS, o.keys, o.span, o.keys/o.parts)
	for _, at := range o.shifts {
		k.At(at, func() { zipf.Rotate(o.rotate) })
	}
	draw := zipf.Draw
	if o.uniform {
		draw = func() int { return k.Rand().Intn(o.keys) }
	}
	rate := o.rate
	if rate == nil {
		rate = func(sim.Time) float64 { return 1 }
	}
	stop := sim.Time(o.total)
	for i := 0; i < o.clients; i++ {
		cl := actor.NewClient(rt, clientSite)
		var loop func()
		loop = func() {
			if k.Now() >= stop {
				return
			}
			key := draw()
			cl.Send(owner(key), "ev", key, 128)
			iv := sim.Duration(float64(o.baseEvery) / rate(k.Now()))
			if iv < sim.Microsecond {
				iv = sim.Microsecond
			}
			k.After(iv, loop)
		}
		k.At(sim.Time(i)*sim.Time(o.baseEvery)/sim.Time(o.clients), loop)
	}

	// Window flush probes: at every window boundary, one flush request per
	// partition/executor; its end-to-end latency is the backlog the window's
	// results would wait behind. Samples land per window index.
	numWindows := int(sim.Time(o.total) / sim.Time(o.window))
	samples := make([][]float64, numWindows)
	flushCl := actor.NewClient(rt, clientSite)
	k.Every(o.window, func() bool {
		if k.Now() > stop {
			return false
		}
		w := int(k.Now()/sim.Time(o.window)) - 1
		if w < 0 || w >= numWindows {
			return k.Now() < stop
		}
		for _, ref := range flushees {
			flushCl.Request(ref, "flush", w, 64, func(lat sim.Duration, _ interface{}) {
				samples[w] = append(samples[w], float64(lat)/float64(sim.Millisecond))
			})
		}
		return true
	})

	k.Run(stop)
	if m != nil {
		m.Stop()
	}
	if mgr != nil {
		mgr.Stop()
	}
	k.Run(stop + sim.Time(8*sim.Second))

	// Per-window p99 (with the small per-window sample sets this is the
	// worst partition's backlog); a window whose probes never returned is
	// unboundedly late.
	horizon := sim.Time(o.total).Seconds()
	slo := metrics.NewSLOTracker(o.sloMS)
	rec := metrics.NewRecoveryTracker(o.sloMS)
	for _, at := range o.shifts {
		rec.Shift(at.Seconds())
	}
	var series metrics.Series
	firstShiftW := numWindows
	if len(o.shifts) > 0 {
		firstShiftW = int(o.shifts[0] / sim.Time(o.window))
	}
	for w := 0; w < numWindows; w++ {
		p99 := math.Inf(1)
		if len(samples[w]) == len(flushees) {
			sort.Float64s(samples[w])
			idx := (99*len(samples[w]) + 99) / 100
			if idx > len(samples[w]) {
				idx = len(samples[w])
			}
			p99 = samples[w][idx-1]
		}
		end := (sim.Time(w) + 1) * sim.Time(o.window)
		slo.Observe(end.Seconds(), p99)
		rec.Observe(end.Seconds(), p99)
		if !math.IsInf(p99, 0) {
			series.Add(end.Seconds(), p99)
			if p99 > out.peakP99 {
				out.peakP99 = p99
			}
		}
		if w == firstShiftW-1 {
			out.steadyP99 = p99
		}
	}
	slo.Finalize(horizon)

	out.recs = rec.Recoveries(horizon)
	out.meanRec, out.recovered = rec.MeanRecovery(horizon)
	out.violSec = slo.ViolationSeconds()
	out.p99Series = &series
	out.bad = chaosInvariants(c, rt)
	out.peakSrv = peakSrv
	if plasma != nil {
		out.events = plasma.Events
	}
	if m != nil {
		out.moves = m.Stats.ExecutedMigrations
		out.movedKeys = out.moves * (o.keys / o.parts)
		out.movedMB = float64(out.moves) * float64(int64(o.keys/o.parts)*o.perKey) / (1 << 20)
		out.scaleOuts = m.Stats.ScaleOuts
	}
	if elastic != nil {
		out.moves = elastic.HandoffBatches
		out.movedKeys = elastic.HandoffKeys
		out.movedMB = float64(elastic.HandoffBytes) / (1 << 20)
		out.events = elastic.Events
	}
	if env != nil {
		out.ctlFails, out.crashes = env.ctlFails, env.crashes
	}
	return out
}

// streamT converts seconds to virtual time (shift instants are fractional
// so they never coincide with a window boundary).
func streamT(sec float64) sim.Time { return sim.Time(sec * float64(sim.Second)) }

// streamBase is the shared quick-size configuration: 8 one-vCPU servers,
// 32 partitions over 2048 keys, a 256-key hot span carrying ~2/3 of a
// ~1500 ev/s stream (≈3 servers of work), 1 s tumbling windows, 50 ms
// window-latency SLO. Full mode stretches the horizon, not the fleet.
func streamBase(cfg Config, mode string) streamOpts {
	o := streamOpts{
		mode:    mode,
		servers: 8, parts: 32, keys: 2048, span: 256,
		zipfS: 1.05, perKey: 64 << 10,
		evCost: 2 * sim.Millisecond,
		policy: streamagg.PolicySrc,
		period: sim.Second, window: sim.Second,
		total:   40 * sim.Second,
		clients: 12, baseEvery: 10 * sim.Millisecond,
		// Shifts land mid-window so the first post-shift observation is a
		// window that actually saw shifted traffic.
		shifts: []sim.Time{streamT(18.5)}, rotate: 1024,
		sloMS: 50, numGEMs: 2,
		skewRatio: 1.5, maxKeys: 64, maxDests: 4,
	}
	if cfg.Full {
		o.total = 90 * sim.Second
		o.shifts = []sim.Time{streamT(40.5)}
	}
	return o
}

func streamVerdict(bad []string) string {
	if len(bad) > 0 {
		return fmt.Sprintf("%v", bad)
	}
	return "ok"
}

func recCell(r metrics.Recovery) string {
	if !r.Recovered {
		return fmt.Sprintf(">%.0f", r.Seconds)
	}
	return fmt.Sprintf("%.1f", r.Seconds)
}

// StreamSkew is the head-to-head recovery race: one hot-set rotation mid
// run, PLASMA partition migration vs executor-level key repartitioning on
// identical fleets and identical arrival streams.
func StreamSkew(cfg Config) *Result {
	r := newResult("stream_skew", "Skew shift recovery: PLASMA vs Elasticutor-style key repartitioning")
	r.Header = []string{"Manager", "Steady p99(ms)", "Peak p99(ms)", "Recovery(s)", "SLOviol(s)", "Moves", "MovedMB", "Events", "Invariants"}

	for _, mode := range []string{"plasma", "elasticutor"} {
		o := streamRun(cfg, cfg.seed(), streamBase(cfg, mode))
		rec := metrics.Recovery{}
		if len(o.recs) > 0 {
			rec = o.recs[0]
		}
		r.addRow(mode,
			fmt.Sprintf("%.1f", o.steadyP99), fmt.Sprintf("%.1f", o.peakP99),
			recCell(rec), fmt.Sprintf("%.1f", o.violSec),
			fmt.Sprintf("%d", o.moves), fmt.Sprintf("%.1f", o.movedMB),
			fmt.Sprintf("%d", o.events), streamVerdict(o.bad))
		r.Summary["recovery_s_"+mode] = rec.Seconds
		r.Summary["recovered_"+mode] = float64(boolToInt(rec.Recovered))
		r.Summary["slo_viol_s_"+mode] = o.violSec
		r.Summary["moves_"+mode] = float64(o.moves)
		r.Summary["moved_mb_"+mode] = o.movedMB
		r.Summary["invariant_violations_"+mode] = float64(len(o.bad))
		r.Series["p99_"+mode] = o.p99Series
	}
	r.notef("identical seeds drive identical arrival streams; the race is purely detection + state movement + drain")
	return r
}

// StreamDrift rotates the hot set repeatedly — the drifting-popularity
// regime where every shift restarts the race — and reports mean recovery.
func StreamDrift(cfg Config) *Result {
	r := newResult("stream_drift", "Drifting hot set: mean recovery over repeated shifts")
	r.Header = []string{"Manager", "Recoveries(s)", "Recovered", "MeanRec(s)", "SLOviol(s)", "Moves", "MovedMB", "Invariants"}

	for _, mode := range []string{"plasma", "elasticutor"} {
		o := streamBase(cfg, mode)
		o.total = 48 * sim.Second
		o.shifts = []sim.Time{streamT(14.5), streamT(26.5), streamT(38.5)}
		o.rotate = 512 // quarter turns: each shift lands on a fresh cold span
		if cfg.Full {
			o.total = 96 * sim.Second
			o.shifts = []sim.Time{streamT(20.5), streamT(40.5), streamT(60.5), streamT(80.5)}
		}
		out := streamRun(cfg, cfg.seed(), o)
		cells := ""
		for i, rec := range out.recs {
			if i > 0 {
				cells += " "
			}
			cells += recCell(rec)
		}
		r.addRow(mode, cells,
			fmt.Sprintf("%d", out.recovered), fmt.Sprintf("%.1f", out.meanRec),
			fmt.Sprintf("%.1f", out.violSec), fmt.Sprintf("%d", out.moves),
			fmt.Sprintf("%.1f", out.movedMB), streamVerdict(out.bad))
		r.Summary["mean_recovery_s_"+mode] = out.meanRec
		r.Summary["recovered_"+mode] = float64(out.recovered)
		r.Summary["slo_viol_s_"+mode] = out.violSec
		r.Summary["invariant_violations_"+mode] = float64(len(out.bad))
		r.Series["p99_"+mode] = out.p99Series
	}
	r.notef("each rotation moves the hot span onto a cold server; mean recovery integrates detection lag over repeated shifts")
	return r
}

// streamSpikePolicy swaps the shipped policy's reserve rule for warm-pool
// scale-out: under a rate spike there is no skew to fix, only missing
// capacity — which executor-level repartitioning cannot add. Dedicating
// servers would only evacuate residents back into an already-full fleet.
const streamSpikePolicy = `
server.cpu.perc > 70 or server.cpu.perc < 15 => balance({Part}, cpu);
server.cpu.perc > 70 => provclass({warm});
`

// StreamSpike is the window-spike scenario: the arrival rate multiplies
// mid-run with no rotation. PLASMA grows the fleet through the warm pool
// and rebalances onto it; the Elasticutor-style baseline can only shuffle
// keys over a saturated fixed fleet, so it recovers only when the spike
// ends. The comparison is honest about that asymmetry — capacity elasticity
// is exactly what executor-level repartitioning lacks.
func StreamSpike(cfg Config) *Result {
	r := newResult("stream_spike", "Window spike: warm-pool scale-out vs fixed-fleet repartitioning")
	r.Header = []string{"Manager", "Recovery(s)", "SLOviol(s)", "ScaleOuts", "PeakSrv", "Moves", "Invariants"}

	spikeFrom, spikeTo := streamT(16.5), streamT(34.5)
	total := 48 * sim.Second
	if cfg.Full {
		spikeFrom, spikeTo = streamT(30.5), streamT(66.5)
		total = 96 * sim.Second
	}
	for _, mode := range []string{"plasma", "elasticutor"} {
		o := streamBase(cfg, mode)
		o.total = total
		o.shifts = []sim.Time{spikeFrom} // the recovery clock starts at the spike
		o.rotate = 0
		// A rate spike is a capacity problem, not a skew problem: draw keys
		// uniformly so no single partition actor saturates (the Zipf head
		// alone would need more than one core at 4x), and run one GEM (as
		// burst_flash does) so the all-over fleet signal corroborates
		// trivially.
		o.uniform = true
		o.numGEMs = 1
		o.rate = func(t sim.Time) float64 {
			if t >= spikeFrom && t < spikeTo {
				return 4
			}
			return 1
		}
		if mode == "plasma" {
			o.policy = streamSpikePolicy
			o.scaleOut = true
			o.specs = []cluster.ProvSpec{{Class: cluster.WarmPool,
				BootMin: 50 * sim.Millisecond, BootMax: 200 * sim.Millisecond,
				FailProb: 0.01, Capacity: 8}}
		}
		out := streamRun(cfg, cfg.seed(), o)
		rec := metrics.Recovery{}
		if len(out.recs) > 0 {
			rec = out.recs[0]
		}
		r.addRow(mode, recCell(rec), fmt.Sprintf("%.1f", out.violSec),
			fmt.Sprintf("%d", out.scaleOuts), fmt.Sprintf("%d", out.peakSrv),
			fmt.Sprintf("%d", out.moves), streamVerdict(out.bad))
		r.Summary["recovery_s_"+mode] = rec.Seconds
		r.Summary["slo_viol_s_"+mode] = out.violSec
		r.Summary["scale_outs_"+mode] = float64(out.scaleOuts)
		r.Summary["invariant_violations_"+mode] = float64(len(out.bad))
		r.Series["p99_"+mode] = out.p99Series
	}
	r.notef("no rotation: the spike adds load everywhere at once; only the manager that can add machines recovers before the spike ends")
	return r
}

// StreamChaos composes the skew shift with a control-plane outage: GEM 0
// of 2 is down across the entire shift, so detection and migration must
// flow through the surviving GEM alone.
func StreamChaos(cfg Config) *Result {
	r := newResult("stream_chaos", "Skew shift during a GEM crash (chaos-composed stream)")
	r.Header = []string{"Seed", "CtlFails", "Recovery(s)", "SLOviol(s)", "Moves", "Invariants"}

	o := streamBase(cfg, "plasma")
	shift := o.shifts[0]
	o.events = []chaos.Event{
		{At: shift - sim.Time(4*sim.Second), Op: chaos.FailGEM, Target: 0},
		{At: shift + sim.Time(12*sim.Second), Op: chaos.RecoverGEM, Target: 0},
	}
	o.floor = o.servers
	out := streamRun(cfg, cfg.seed(), o)
	rec := metrics.Recovery{}
	if len(out.recs) > 0 {
		rec = out.recs[0]
	}
	r.addRow(fmt.Sprintf("%d", cfg.seed()), fmt.Sprintf("%d", out.ctlFails),
		recCell(rec), fmt.Sprintf("%.1f", out.violSec),
		fmt.Sprintf("%d", out.moves), streamVerdict(out.bad))
	r.Summary["recovery_s"] = rec.Seconds
	r.Summary["recovered"] = float64(boolToInt(rec.Recovered))
	r.Summary["ctl_fails"] = float64(out.ctlFails)
	r.Summary["slo_viol_s"] = out.violSec
	r.Summary["invariant_violations"] = float64(len(out.bad))
	r.Series["p99_plasma"] = out.p99Series
	r.notef("with half the control plane gone for the whole shift, the survivor's self-corroborated plan still rebalances the hot span")
	return r
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
