package experiments

import (
	"fmt"
	"math"

	"plasma/internal/actor"
	"plasma/internal/apps/mediaservice"
	"plasma/internal/apps/workload"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/metrics"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// Fig10 reproduces §5.6: the Media Service under a bell-shaped client
// population. Clients join over the first phase following a normal
// distribution, stay, then leave following another normal distribution.
// The service starts on 4 m1.small instances and may scale to 65. One run
// per elasticity period (60 s, 120 s, 180 s by default).
//
// Paper: a smaller elasticity period yields lower latency and faster
// resource allocation/reclaim.
func Fig10(cfg Config) *Result {
	r := newResult("fig10", "Media Service: latency and fleet size per elasticity period")
	r.Header = []string{"Period", "Mean latency", "Peak servers", "Final servers"}

	clients := 128
	joinMu, joinSigma := 2*sim.Minute, 90*sim.Second
	stay := 4 * sim.Minute
	leaveMu, leaveSigma := 19*sim.Minute, 90*sim.Second
	total := 26 * sim.Minute
	periods := []sim.Duration{60 * sim.Second, 120 * sim.Second, 180 * sim.Second}
	if !cfg.Full {
		clients = 48
		joinMu, joinSigma = 100*sim.Second, 40*sim.Second
		stay = 100 * sim.Second
		leaveMu, leaveSigma = 380*sim.Second, 40*sim.Second
		total = 520 * sim.Second
		periods = []sim.Duration{20 * sim.Second, 40 * sim.Second, 60 * sim.Second}
	}

	meanLat := map[sim.Duration]float64{}
	for _, period := range periods {
		k := cfg.kernel()
		c := cluster.New(k, 4, cluster.M1Small)
		c.SetMaxSize(65)
		rt := actor.NewRuntime(k, c)
		prof := profile.New(k, c, rt)
		app := mediaservice.Build(k, rt, []cluster.MachineID{0, 1, 2, 3}, 8)
		k.RunUntilIdle()

		mgr := emr.New(k, c, rt, prof, epl.MustParse(mediaservice.PolicySrc),
			emr.Config{Period: period, ScaleOut: true, ScaleIn: true,
				MinServers: 4, InstanceType: cluster.M1Small})
		cfg.wireTrace(mgr)
		mgr.Start()

		rec := workload.NewRecorder(20 * sim.Second)
		servers := &metrics.Series{Name: "servers"}
		k.Every(10*sim.Second, func() bool {
			servers.Add(k.Now().Seconds(), float64(c.UpCount()))
			return k.Now() < sim.Time(total)
		})

		// Schedule joins and leaves.
		norm := func(mu, sigma sim.Duration) sim.Time {
			x := k.Rand().NormFloat64()*float64(sigma) + float64(mu)
			if x < 0 {
				x = 0
			}
			return sim.Time(x)
		}
		for i := 0; i < clients; i++ {
			joinAt := norm(joinMu, joinSigma)
			leaveAt := norm(leaveMu, leaveSigma)
			if sim.Duration(leaveAt) < sim.Duration(joinAt)+stay {
				leaveAt = joinAt + sim.Time(stay)
			}
			k.At(joinAt, func() {
				id, fe := app.AddClient()
				watch := true
				loop := &workload.ClosedLoop{
					K:      k,
					Client: actor.NewClient(rt, cluster.MachineID(0)),
					Think:  200 * sim.Millisecond,
					Rec:    rec,
					Next: func() workload.Request {
						watch = !watch
						if watch {
							return workload.Request{Target: fe, Method: "watch", Size: 512}
						}
						return workload.Request{Target: fe, Method: "review", Size: 2 << 10}
					},
				}
				loop.Start()
				k.At(leaveAt, func() {
					loop.Stop()
					app.RemoveClient(id)
				})
			})
		}
		k.Run(sim.Time(total))

		key := fmt.Sprintf("%ds", int64(period/sim.Second))
		lat := rec.Series()
		r.Series["latency-"+key] = lat
		r.Series["servers-"+key] = servers
		mean := lat.MeanY()
		meanLat[period] = mean
		peak := servers.MaxY()
		final := float64(c.UpCount())
		r.addRow(key, ms(mean), fmt.Sprintf("%.0f", peak), fmt.Sprintf("%.0f", final))
		r.Summary["mean_latency_ms_"+key] = mean
		r.Summary["peak_servers_"+key] = peak
		r.Summary["final_servers_"+key] = final
	}

	shortest, longest := periods[0], periods[len(periods)-1]
	if !math.IsNaN(meanLat[shortest]) && meanLat[longest] > 0 {
		r.Summary["short_vs_long_latency_ratio"] = meanLat[shortest] / meanLat[longest]
	}
	r.notef("paper: the 60s period yields the best latency and the fastest allocation/reclaim")
	return r
}
