package experiments

import (
	"testing"
)

// The acceptance bar for the streaming family: at the pinned seed, the
// shipped streamagg policy must match or beat the Elasticutor-style
// executor-level repartitioner on recovery time after the skew shift. The
// exact values are pinned (they are deterministic at fixed seed and also
// guarded by the BENCH baseline); the inequalities are the claim.
func TestStreamSkewPlasmaBeatsElasticutor(t *testing.T) {
	r := StreamSkew(Config{Seed: 1})

	if r.Summary["recovered_plasma"] != 1 {
		t.Fatal("plasma never re-entered the SLO after the shift")
	}
	if r.Summary["recovered_elasticutor"] != 1 {
		t.Fatal("elasticutor never re-entered the SLO after the shift; the race is vacuous")
	}
	p, e := r.Summary["recovery_s_plasma"], r.Summary["recovery_s_elasticutor"]
	if p > e {
		t.Fatalf("plasma recovery %.1fs slower than elasticutor %.1fs; the policy lost the race", p, e)
	}
	// Pinned seed-1 values (see EXPERIMENTS.md): plasma absorbs the shift
	// within the first post-shift window, the baseline takes four violating
	// windows to re-spread the hot keys.
	if p != 0.5 {
		t.Errorf("plasma recovery = %.1fs at seed 1, pinned 0.5s", p)
	}
	if e != 4.5 {
		t.Errorf("elasticutor recovery = %.1fs at seed 1, pinned 4.5s", e)
	}
	if vp, ve := r.Summary["slo_viol_s_plasma"], r.Summary["slo_viol_s_elasticutor"]; vp > ve {
		t.Errorf("plasma violated the SLO longer than the baseline (%.1fs > %.1fs)", vp, ve)
	}
	for _, mode := range []string{"plasma", "elasticutor"} {
		if r.Summary["invariant_violations_"+mode] != 0 {
			t.Errorf("%s run ended with invariant violations", mode)
		}
		if r.Summary["moves_"+mode] == 0 {
			t.Errorf("%s never moved any state; the shift was not managed", mode)
		}
	}
}

// The p99 series must have the race's shape for both managers: a
// steady-state plateau under the SLO before the shift, and (for the
// baseline, which visibly degrades) a post-shift excursion above it.
func TestStreamSkewSeriesShape(t *testing.T) {
	r := StreamSkew(Config{Seed: 1})
	for _, mode := range []string{"plasma", "elasticutor"} {
		s := r.Series["p99_"+mode]
		if s == nil || s.Len() == 0 {
			t.Fatalf("missing p99 series for %s", mode)
		}
		// Steady state: every window in (10s, 18s] — past warm-up, before
		// the 18.5s shift — under the 50 ms SLO.
		for i := range s.X {
			if s.X[i] > 10 && s.X[i] <= 18 && s.Y[i] > 50 {
				t.Errorf("%s steady-state window at t=%.1f has p99 %.1f ms > SLO", mode, s.X[i], s.Y[i])
			}
		}
	}
	// The baseline's post-shift excursion is what recovery is measured
	// against; it must actually exist.
	s := r.Series["p99_elasticutor"]
	peak := 0.0
	for i := range s.X {
		if s.X[i] > 18.5 && s.Y[i] > peak {
			peak = s.Y[i]
		}
	}
	if peak < 50 {
		t.Fatalf("elasticutor post-shift peak %.1f ms never exceeded the SLO; the shift is too weak", peak)
	}
}

// Drifting hot set: every shift must be recovered from, and the repeated
// races must not leave the fleet worse than the single-shift case in kind
// (all recoveries finite).
func TestStreamDriftAllShiftsRecovered(t *testing.T) {
	r := StreamDrift(Config{Seed: 1})
	if r.Summary["recovered_plasma"] != 3 {
		t.Fatalf("plasma recovered %v of 3 shifts", r.Summary["recovered_plasma"])
	}
	if r.Summary["recovered_elasticutor"] != 3 {
		t.Fatalf("elasticutor recovered %v of 3 shifts", r.Summary["recovered_elasticutor"])
	}
	if p, e := r.Summary["mean_recovery_s_plasma"], r.Summary["mean_recovery_s_elasticutor"]; p > e {
		t.Errorf("plasma mean recovery %.1fs worse than baseline %.1fs under drift", p, e)
	}
	for _, mode := range []string{"plasma", "elasticutor"} {
		if r.Summary["invariant_violations_"+mode] != 0 {
			t.Errorf("%s run ended with invariant violations", mode)
		}
	}
}

// The spike scenario's claim is asymmetric capability: only the manager
// that can add machines recovers before the spike ends.
func TestStreamSpikeScaleOutWins(t *testing.T) {
	r := StreamSpike(Config{Seed: 1})
	if r.Summary["scale_outs_plasma"] == 0 {
		t.Fatal("plasma never scaled out during the spike")
	}
	if r.Summary["scale_outs_elasticutor"] != 0 {
		t.Fatal("the fixed-fleet baseline somehow scaled out")
	}
	p, e := r.Summary["recovery_s_plasma"], r.Summary["recovery_s_elasticutor"]
	if p >= e {
		t.Fatalf("plasma recovery %.1fs not ahead of the fixed fleet's %.1fs", p, e)
	}
	// The spike spans 16.5s..34.5s: recovery under 18s means plasma
	// re-entered the SLO while the spike was still on — the capability the
	// scenario exists to show.
	if p >= 18 {
		t.Errorf("plasma recovery %.1fs is after the spike ended; scale-out arrived too late", p)
	}
	for _, mode := range []string{"plasma", "elasticutor"} {
		if r.Summary["invariant_violations_"+mode] != 0 {
			t.Errorf("%s run ended with invariant violations", mode)
		}
	}
}

// The chaos-composed stream: the GEM crash must really happen, and the
// surviving control plane must still win the recovery race.
func TestStreamChaosRecoversThroughGEMCrash(t *testing.T) {
	r := StreamChaos(Config{Seed: 1})
	if r.Summary["ctl_fails"] == 0 {
		t.Fatal("GEM crash never applied; the composition is vacuous")
	}
	if r.Summary["recovered"] != 1 {
		t.Fatal("no recovery with half the control plane down")
	}
	if r.Summary["invariant_violations"] != 0 {
		t.Error("invariant violations after the composed run")
	}
}

// Fixed seed, fixed scenario: the rendered stream results must be
// byte-identical across repeats (the shard-equivalence suite covers
// shards=1 vs N for every registered id, streams included).
func TestStreamDeterministicSameSeed(t *testing.T) {
	for id, fn := range map[string]func(Config) *Result{
		"stream_skew": StreamSkew, "stream_chaos": StreamChaos,
	} {
		a := fn(Config{Seed: 3}).Render()
		b := fn(Config{Seed: 3}).Render()
		if a != b {
			t.Fatalf("same-seed %s renders differ:\n--- a ---\n%s\n--- b ---\n%s", id, a, b)
		}
	}
}
