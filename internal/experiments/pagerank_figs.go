package experiments

import (
	"fmt"

	"plasma/internal/actor"
	"plasma/internal/apps/pagerank"
	"plasma/internal/baseline"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/graph"
	"plasma/internal/metrics"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// prSetup sizes the PageRank experiments.
type prSetup struct {
	vertices   int
	avgDeg     float64
	workers    int
	iterations int
	perEdge    sim.Duration
	syncOver   sim.Duration
	period     sim.Duration
	boot       sim.Duration // provisioning delay for scale-out experiments
}

func pagerankSetup(cfg Config) prSetup {
	if cfg.Full {
		return prSetup{vertices: 24000, avgDeg: 10, workers: 32, iterations: 200, perEdge: 55 * sim.Microsecond, syncOver: 24 * sim.Millisecond, period: sim.Second, boot: 10 * sim.Second}
	}
	return prSetup{vertices: 12000, avgDeg: 10, workers: 32, iterations: 150, perEdge: 55 * sim.Microsecond, syncOver: 12 * sim.Millisecond, period: 500 * sim.Millisecond, boot: 4 * sim.Second}
}

// runToCompletion advances the simulation until the app's iterations are
// done (or the deadline passes), so elasticity managers stop ticking into
// dead time.
func runToCompletion(env *prEnv, deadline sim.Duration) {
	for !env.app.Done && env.k.Now() < sim.Time(deadline) && env.k.Step() {
	}
}

// prEnv deploys PageRank on a fresh simulated cluster.
type prEnv struct {
	k    *sim.Kernel
	c    *cluster.Cluster
	rt   *actor.Runtime
	prof *profile.Profiler
	app  *pagerank.App
}

func buildPagerank(cfg Config, su prSetup, machines int, placement []cluster.MachineID, seed int64) *prEnv {
	k := cfg.kernelSeeded(seed)
	inst := cluster.M5Large
	if su.boot > 0 {
		inst.Boot = su.boot
	}
	c := cluster.New(k, machines, inst)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	g := graph.GeneratePowerLaw(su.vertices, su.avgDeg, 2.1, seed)
	parts := graph.PartitionMultilevel(g, su.workers, seed)
	app := pagerank.Build(k, rt, pagerank.Config{
		Graph: g, Parts: parts, K: su.workers,
		PerEdgeCost: su.perEdge, SyncOverhead: su.syncOver, Iterations: su.iterations,
		HeteroSpread: 0.5,
	}, placement)
	return &prEnv{k: k, c: c, rt: rt, prof: prof, app: app}
}

// randomPlacement randomly assigns workers to machines while keeping actor
// counts equal (the paper's setup: 32 partitions "randomly assign[ed]"
// across 8 VMs with "the number of actors already balanced across servers",
// so Orleans' count-based management takes no further action).
func randomPlacement(seed int64, workers, machines int) []cluster.MachineID {
	k := sim.New(seed)
	perm := k.Rand().Perm(workers)
	out := make([]cluster.MachineID, workers)
	for i, p := range perm {
		out[p] = cluster.MachineID(i % machines)
	}
	return out
}

// Fig6a reproduces §5.4 "dynamic workload balance": 32 workers on 8
// m5.large VMs (16 vCPUs), PLASMA's balance rule vs Orleans' equal-count
// management (which takes no action: counts are already equal). Averaged
// over 3 seeds. Paper: PLASMA converges ~24% faster.
func Fig6a(cfg Config) *Result {
	r := newResult("fig6a", "PageRank converged computation time: PLASMA vs Orleans (16 vCPU)")
	r.Header = []string{"Elasticity", "Converged iteration time", "Runs"}
	su := pagerankSetup(cfg)
	seeds := []int64{cfg.seed(), cfg.seed() + 1, cfg.seed() + 2}

	run := func(mode string, seed int64) sim.Duration {
		placement := randomPlacement(seed*7+1, su.workers, 8)
		env := buildPagerank(cfg, su, 8, placement, seed)
		switch mode {
		case "plasma":
			mgr := emr.New(env.k, env.c, env.rt, env.prof, epl.MustParse(pagerank.PolicySrc),
				emr.Config{Period: su.period})
			cfg.wireTrace(mgr)
			mgr.Start()
		case "orleans":
			o := &baseline.Orleans{K: env.k, RT: env.rt, C: env.c, Prof: env.prof,
				Period: su.period, Types: map[string]bool{"Worker": true}}
			o.Start()
		}
		env.app.Start(env.k)
		runToCompletion(env, 20*sim.Minute)
		return env.app.ConvergedTime()
	}

	means := map[string]float64{}
	for _, mode := range []string{"plasma", "orleans"} {
		var sum sim.Duration
		for _, seed := range seeds {
			sum += run(mode, seed)
		}
		mean := sum / sim.Duration(len(seeds))
		means[mode] = float64(mean)
		r.addRow(mode, mean.String(), fmt.Sprintf("%d", len(seeds)))
		r.Summary["converged_ms_"+mode] = float64(mean) / float64(sim.Millisecond)
	}
	if means["orleans"] > 0 {
		imp := (means["orleans"] - means["plasma"]) / means["orleans"] * 100
		r.Summary["plasma_improvement_pct"] = imp
		r.notef("paper: PLASMA converges ~24%% faster than Orleans; measured %.1f%%", imp)
	}
	return r
}

// Fig6b reproduces §5.4 "dynamic resource allocation" (average view):
// PLASMA grows from 1 server under the balance rule vs conservative
// provisioning with one worker per vCPU (16 m5.large = 32 vCPUs). Paper:
// PLASMA reaches nearly identical performance with 12 servers (25% fewer
// resources).
func Fig6b(cfg Config) *Result {
	r := newResult("fig6b", "PageRank dynamic allocation: PLASMA vs conservative provisioning")
	r.Header = []string{"Setup", "Converged iteration time", "Servers used"}
	su := pagerankSetup(cfg)
	su.iterations *= 5 // give scale-out time to converge

	// Conservative: 16 servers, 2 workers (one per vCPU) each.
	placement := make([]cluster.MachineID, su.workers)
	for i := range placement {
		placement[i] = cluster.MachineID(i / 2)
	}
	conSrv := 16
	env := buildPagerank(cfg, su, conSrv, placement, cfg.seed())
	env.app.Start(env.k)
	runToCompletion(env, 30*sim.Minute)
	conservative := env.app.ConvergedTime()
	r.addRow("conservative (32 vCPU)", conservative.String(), fmt.Sprintf("%d", conSrv))
	r.Summary["converged_ms_conservative"] = float64(conservative) / float64(sim.Millisecond)

	// PLASMA: everything starts on one server; scale-out provisions more.
	all := make([]cluster.MachineID, su.workers)
	env2 := buildPagerank(cfg, su, 1, all, cfg.seed())
	inst := cluster.M5Large
	if su.boot > 0 {
		inst.Boot = su.boot
	}
	mgr := emr.New(env2.k, env2.c, env2.rt, env2.prof, epl.MustParse(pagerank.PolicySrc),
		emr.Config{Period: su.period, ScaleOut: true, InstanceType: inst})
	cfg.wireTrace(mgr)
	mgr.Start()
	env2.app.Start(env2.k)
	runToCompletion(env2, 30*sim.Minute)
	plasma := env2.app.ConvergedTime()
	used := env2.c.UpCount()
	r.addRow("PLASMA (dynamic)", plasma.String(), fmt.Sprintf("%d", used))
	r.Summary["converged_ms_plasma"] = float64(plasma) / float64(sim.Millisecond)
	r.Summary["servers_plasma"] = float64(used)
	r.Summary["servers_conservative"] = float64(conSrv)
	if conSrv > 0 {
		r.Summary["resource_saving_pct"] = float64(conSrv-used) / float64(conSrv) * 100
	}
	r.notef("paper: PLASMA ~matches conservative performance with 12 of 16 servers (25%% saving)")
	return r
}

// Fig7a reproduces the Mizan comparison: normalized per-iteration times for
// PLASMA and a Mizan-style vertex migrator, each with and without
// elasticity. Mizan equalizes per-worker partitions but cannot move actors
// between servers, so per-server skew from random placement persists.
// Paper: Mizan's elasticity gains <=3%; PLASMA's ~24%.
func Fig7a(cfg Config) *Result {
	r := newResult("fig7a", "PageRank per-iteration time: PLASMA vs Mizan, with/without elasticity")
	r.Header = []string{"System", "Mean normalized iteration time (tail)", "Gain vs no elasticity"}
	su := pagerankSetup(cfg)
	// The paper's figure spans 19 iterations; both systems are measured
	// over that horizon (Mizan migrates incrementally per superstep and
	// has not converged by then — one reason its measured gain is small).
	su.iterations = 19
	su.period = su.period / 2

	run := func(system string, elastic bool) *metrics.Series {
		placement := randomPlacement(cfg.seed()*7+1, su.workers, 8)
		env := buildPagerank(cfg, su, 8, placement, cfg.seed())
		if system == "mizan" {
			// Mizan's framework is ~4x slower per edge in the paper's runs.
			env.app.Cfg.PerEdgeCost = su.perEdge * 4
			if elastic {
				mz := &pagerank.Mizan{App: env.app}
				mz.Attach()
			}
		} else if elastic {
			mgr := emr.New(env.k, env.c, env.rt, env.prof, epl.MustParse(pagerank.PolicySrc),
				emr.Config{Period: su.period})
			cfg.wireTrace(mgr)
			mgr.Start()
		}
		env.app.Start(env.k)
		runToCompletion(env, 60*sim.Minute)
		s := &metrics.Series{Name: system}
		for i, d := range env.app.IterationTimes {
			s.Add(float64(i+1), float64(d))
		}
		return s
	}

	gains := map[string]float64{}
	for _, system := range []string{"plasma", "mizan"} {
		base := run(system, false)
		elas := run(system, true)
		norm := base.Y[0] // normalize to the first no-elasticity iteration
		baseNorm := &metrics.Series{Name: system + "-vanilla"}
		elasNorm := &metrics.Series{Name: system + "-elastic"}
		for i := range base.Y {
			baseNorm.Add(base.X[i], base.Y[i]/norm)
		}
		for i := range elas.Y {
			elasNorm.Add(elas.X[i], elas.Y[i]/norm)
		}
		r.Series[system+"-vanilla"] = baseNorm
		r.Series[system+"-elastic"] = elasNorm
		bTail := baseNorm.TailMeanY(0.3)
		eTail := elasNorm.TailMeanY(0.3)
		gain := (bTail - eTail) / bTail * 100
		gains[system] = gain
		r.addRow(system, fmt.Sprintf("%.3f -> %.3f", bTail, eTail), pct(gain))
		r.Summary["gain_pct_"+system] = gain
	}
	r.notef("paper: Mizan elasticity improves iterations by <=3%%, PLASMA by up to 24%%; measured mizan %.1f%%, plasma %.1f%%",
		gains["mizan"], gains["plasma"])
	return r
}

// Fig7bc reproduces the Fig. 7b/7c traces from one elastic Fig6a run:
// per-server CPU% and worker counts at each redistribution (elasticity
// period).
func Fig7bc(cfg Config) *Result {
	r := newResult("fig7bc", "PageRank per-server CPU% and worker distribution over redistributions")
	su := pagerankSetup(cfg)
	placement := randomPlacement(cfg.seed()*7+1, su.workers, 8)
	env := buildPagerank(cfg, su, 8, placement, cfg.seed())
	mgr := emr.New(env.k, env.c, env.rt, env.prof, epl.MustParse(pagerank.PolicySrc),
		emr.Config{Period: su.period})
	cfg.wireTrace(mgr)
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("node%d", i+1)
		r.Series["cpu-"+id] = &metrics.Series{Name: "cpu-" + id}
		r.Series["actors-"+id] = &metrics.Series{Name: "actors-" + id}
	}
	mgr.OnTick = func(tick int, snap *epl.Snapshot) {
		counts := map[cluster.MachineID]int{}
		for _, w := range env.app.Workers {
			counts[env.rt.ServerOf(w)]++
		}
		for i := 0; i < 8; i++ {
			id := cluster.MachineID(i)
			name := fmt.Sprintf("node%d", i+1)
			if s := snap.Server(id); s != nil {
				r.Series["cpu-"+name].Add(float64(tick), s.CPUPerc)
			}
			r.Series["actors-"+name].Add(float64(tick), float64(counts[id]))
		}
	}
	mgr.Start()
	env.app.Start(env.k)
	runToCompletion(env, 20*sim.Minute)

	// Spread of CPU% across servers, first vs last redistribution.
	spread := func(tick int) float64 {
		var vals []float64
		for i := 0; i < 8; i++ {
			s := r.Series[fmt.Sprintf("cpu-node%d", i+1)]
			if tick < s.Len() {
				vals = append(vals, s.Y[tick])
			}
		}
		return metrics.Imbalance(vals)
	}
	last := r.Series["cpu-node1"].Len() - 1
	if last >= 1 {
		r.Summary["cpu_imbalance_first"] = spread(0)
		r.Summary["cpu_imbalance_last"] = spread(last)
		r.Summary["redistributions"] = float64(last + 1)
	}
	r.Summary["migrations"] = float64(mgr.Stats.ExecutedMigrations)
	r.notef("paper: CPU%% of servers converges into the [60,80] band as workers are re-located")
	return r
}

// Fig8 reproduces the dynamic-allocation traces: iteration times,
// per-server CPU%, and worker distribution as PLASMA provisions servers
// from 1 toward the bound-satisfying fleet.
func Fig8(cfg Config) *Result {
	r := newResult("fig8", "PageRank dynamic resource allocation traces")
	su := pagerankSetup(cfg)
	su.iterations *= 5

	all := make([]cluster.MachineID, su.workers)
	env := buildPagerank(cfg, su, 1, all, cfg.seed())
	inst := cluster.M5Large
	if su.boot > 0 {
		inst.Boot = su.boot
	}
	mgr := emr.New(env.k, env.c, env.rt, env.prof, epl.MustParse(pagerank.PolicySrc),
		emr.Config{Period: su.period, ScaleOut: true, InstanceType: inst})
	cfg.wireTrace(mgr)

	iterSeries := &metrics.Series{Name: "iteration-time"}
	env.app.OnIteration = func(iter int, d sim.Duration) {
		iterSeries.Add(float64(iter+1), d.Seconds())
	}
	serverSeries := &metrics.Series{Name: "servers"}
	mgr.OnTick = func(tick int, snap *epl.Snapshot) {
		serverSeries.Add(float64(tick), float64(env.c.UpCount()))
	}
	mgr.Start()
	env.app.Start(env.k)
	runToCompletion(env, 40*sim.Minute)

	r.Series["iteration-time"] = iterSeries
	r.Series["servers"] = serverSeries
	if iterSeries.Len() > 2 {
		r.Summary["first_iter_s"] = iterSeries.Y[0]
		r.Summary["final_iter_s"] = iterSeries.TailMeanY(0.2)
		r.Summary["speedup"] = iterSeries.Y[0] / iterSeries.TailMeanY(0.2)
	}
	r.Summary["final_servers"] = float64(env.c.UpCount())
	r.Summary["scaleouts"] = float64(mgr.Stats.ScaleOuts)
	r.notef("paper: performance improves round by round as servers are provisioned until CPU%% sits within [60,80]")
	return r
}
