package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"plasma/internal/epl"
	"plasma/internal/lint"
	"plasma/internal/lint/model"
)

func corpusPolicy(t *testing.T, name string) *epl.Policy {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "lint", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := epl.Parse(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := epl.Check(pol, nil); err != nil {
		t.Fatal(err)
	}
	return pol
}

// TestCounterexampleReplayReproducesOscillation is the PR's acceptance
// test: the seeded oscillating policy must (a) be flagged EPL200 with a
// concrete counterexample by the model checker, and (b) reproduce the
// oscillation in the real simulator's trace records when that
// counterexample's load schedule is replayed.
func TestCounterexampleReplayReproducesOscillation(t *testing.T) {
	pol := corpusPolicy(t, "osc_cross_rule.epl")

	// (a) the model checker flags it, with a counterexample path.
	var f *model.Finding
	findings := model.Check(pol, nil)
	for i := range findings {
		if findings[i].Code == lint.CodeOscillation {
			f = &findings[i]
		}
	}
	if f == nil {
		t.Fatalf("model checker did not flag osc_cross_rule.epl: %+v", findings)
	}
	if len(f.Path) == 0 || f.CycleFrom < 0 {
		t.Fatalf("EPL200 finding carries no counterexample cycle: path=%d cycleFrom=%d",
			len(f.Path), f.CycleFrom)
	}

	// (b) replaying the counterexample's load schedule through the real
	// simulator reproduces the oscillation: the trace records alternate
	// corroborated scale-out and scale-in decisions under constant load.
	loads := make([]int, len(f.Path))
	for i, st := range f.Path {
		loads[i] = st.Load
	}
	out := ReplayPath(ReplayOpts{
		Policy: pol.Source, Env: model.DefaultEnvelope(),
		Loads: loads, CycleFrom: f.CycleFrom,
		Periods: 60, Seed: 1,
	})
	if out.ScaleOuts < 2 || out.ScaleIns < 2 {
		t.Errorf("replay produced %d scale-outs / %d scale-ins, want ≥2 of each",
			out.ScaleOuts, out.ScaleIns)
	}
	if out.Flips < 3 {
		t.Errorf("replay produced %d direction flips, want ≥3 (oscillation)", out.Flips)
	}
	if out.StatOuts < 2 || out.StatIns < 2 {
		t.Errorf("EMR counters disagree with the trace: %d booted, %d decommissioned",
			out.StatOuts, out.StatIns)
	}
}

// maxCleanFlips bounds how many scale-direction changes an EPL200-clean
// policy may exhibit across a 200-period drift sweep. A genuinely
// tracking policy flips when the workload itself turns around — a few
// times per sweep — while an oscillating one flips on nearly every
// decision (the contrast test below demands over 2x this bound).
const maxCleanFlips = 8

// TestCleanPoliciesDoNotFlap is the property test: policies the model
// checker passes as EPL200-clean stay within the flip bound in a
// 200-period fixed-seed workload sweep, and the seeded oscillating
// policy blows well past it under the identical workload.
func TestCleanPoliciesDoNotFlap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run simulator sweep")
	}
	// Center the sweep on the policies' scaling region (load 13 is 81% on
	// the initial 4 servers) and cap it below saturation — a sustained
	// arrival rate beyond the fleet's service capacity tests overload
	// shedding, not oscillation, and the envelope is exactly the tool for
	// bounding the workload a verdict covers.
	env := model.DefaultEnvelope()
	env.InitLoad = 13
	env.MaxLoad = 16
	loads := DriftWalk(env, 200, 7)

	clean := []string{"clean_hysteresis.epl", "clean_pagerank.epl"}
	for _, name := range clean {
		pol := corpusPolicy(t, name)
		for _, f := range model.Check(pol, nil) {
			if f.Code == lint.CodeOscillation {
				t.Fatalf("%s is not EPL200-clean; pick another policy", name)
			}
		}
		out := ReplayPath(ReplayOpts{
			Policy: pol.Source, Env: env,
			Loads: loads, CycleFrom: -1, Periods: 200, Seed: 7,
		})
		t.Logf("%s: %d flips (outs %d, ins %d)", name, out.Flips, out.ScaleOuts, out.ScaleIns)
		if out.Flips > maxCleanFlips {
			t.Errorf("%s: %d direction flips over 200 periods, want ≤%d (outs %d, ins %d)",
				name, out.Flips, maxCleanFlips, out.ScaleOuts, out.ScaleIns)
		}
	}

	osc := corpusPolicy(t, "osc_cross_rule.epl")
	out := ReplayPath(ReplayOpts{
		Policy: osc.Source, Env: env,
		Loads: loads, CycleFrom: -1, Periods: 200, Seed: 7,
	})
	t.Logf("osc_cross_rule.epl: %d flips (outs %d, ins %d)", out.Flips, out.ScaleOuts, out.ScaleIns)
	if out.Flips <= 2*maxCleanFlips {
		t.Errorf("oscillating policy produced only %d flips under the sweep, want >%d",
			out.Flips, 2*maxCleanFlips)
	}
}

// TestDriftWalkStaysInEnvelope pins the sweep generator: deterministic at
// a fixed seed, one drift step per period, clamped to the envelope.
func TestDriftWalkStaysInEnvelope(t *testing.T) {
	env := model.DefaultEnvelope()
	a := DriftWalk(env, 100, 3)
	b := DriftWalk(env, 100, 3)
	prev := env.InitLoad
	for i, l := range a {
		if l != b[i] {
			t.Fatalf("walk not deterministic at step %d: %d vs %d", i, l, b[i])
		}
		if l < env.MinLoad || l > env.MaxLoad {
			t.Fatalf("step %d load %d escapes the envelope", i, l)
		}
		if d := l - prev; d < -env.Drift || d > env.Drift {
			t.Fatalf("step %d drifts by %d, bound %d", i, d, env.Drift)
		}
		prev = l
	}
	if c := DriftWalk(env, 100, 4); equalInts(a, c) {
		t.Fatal("different seeds produced identical walks")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
