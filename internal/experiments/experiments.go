// Package experiments reproduces every table and figure of PLASMA's
// evaluation (§5) on the simulated cluster: each experiment builds the
// paper's workload, runs the same comparisons, and reports the same rows or
// series. Absolute numbers differ from the AWS testbed; the shapes — who
// wins, by roughly what factor, where crossovers fall — are the deliverable
// (see EXPERIMENTS.md for the paper-vs-measured record).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"plasma/internal/emr"
	"plasma/internal/metrics"
	"plasma/internal/sim"
	"plasma/internal/trace"
)

// Result is one experiment's output.
type Result struct {
	ID    string // e.g. "fig5"
	Title string

	Header []string
	Rows   [][]string

	// Series holds named traces for figure-style results.
	Series map[string]*metrics.Series
	// Summary holds the key scalar findings (also consumed by benchmarks).
	Summary map[string]float64
	// Notes records observations comparing against the paper's claims.
	Notes []string

	// EventsFired and PeakQueue aggregate simulation-kernel effort across
	// every kernel the run created (filled by Run, consumed by
	// cmd/plasma-bench for events/sec and queue-pressure reporting). They
	// are not rendered: Render output stays bit-identical per seed.
	EventsFired uint64
	PeakQueue   int
}

func newResult(id, title string) *Result {
	return &Result{
		ID:      id,
		Title:   title,
		Series:  map[string]*metrics.Series{},
		Summary: map[string]float64{},
	}
}

func (r *Result) addRow(cells ...string) { r.Rows = append(r.Rows, cells) }

func (r *Result) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render formats the result as an aligned text table plus summary lines.
func (r *Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Header) > 0 || len(r.Rows) > 0 {
		widths := make([]int, len(r.Header))
		rows := append([][]string{r.Header}, r.Rows...)
		for _, row := range rows {
			for i, c := range row {
				for i >= len(widths) {
					widths = append(widths, 0)
				}
				if len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		for ri, row := range rows {
			for i, c := range row {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			}
			sb.WriteByte('\n')
			if ri == 0 && len(r.Header) > 0 {
				for i := range r.Header {
					sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
				}
				sb.WriteByte('\n')
			}
		}
	}
	if len(r.Summary) > 0 {
		keys := make([]string, 0, len(r.Summary))
		for k := range r.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "summary %-40s %.4g\n", k, r.Summary[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Config scales experiments: Full reproduces the paper's setup sizes;
// the default (quick) configuration shrinks workloads so the entire
// evaluation runs in seconds, preserving every comparison's shape.
type Config struct {
	Full bool
	Seed int64

	// Shards is the simulation-kernel shard count for experiments that
	// support intra-run parallelism (the scale family). 0 or 1 runs the
	// sequential reference kernel; N>1 partitions the event queue across N
	// worker shards. Results are byte-identical either way — sharding is
	// purely a wall-clock optimization (see internal/sim).
	Shards int

	// Trace, when non-nil, receives the structured decision trace of every
	// EMR the experiment builds (see internal/trace). Experiments that run
	// several kernels sequentially re-point its clock at each new kernel,
	// so record timestamps are always the active kernel's virtual time.
	Trace *trace.Tracer

	// stats, when non-nil, collects every kernel created through
	// Config.kernel/kernelSeeded so Run can aggregate event counts and
	// queue depths (set internally by Run).
	stats *simTracker
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) shards() int {
	if c.Shards > 1 {
		return c.Shards
	}
	return 1
}

// kernel builds the experiment's simulation kernel from the configured
// seed, registering it for perf accounting when the run is traced.
func (c Config) kernel() *sim.Kernel { return c.kernelSeeded(c.seed()) }

// kernelSeeded is kernel for experiments that derive several seeds from
// the base one (multi-seed averaging, chaos schedules).
func (c Config) kernelSeeded(seed int64) *sim.Kernel {
	k := sim.New(seed)
	if c.stats != nil {
		c.stats.add(k)
	}
	c.Trace.SetClock(k.Now)
	return k
}

// runSeeds runs one independent trial per seed (seed base, base+1, ...) and
// returns the trials' results in seed order. Each trial must build its own
// kernel via cfg.kernelSeeded, so trials share no simulation state and the
// index-ordered result slice is deterministic no matter how trials are
// scheduled. Untraced trials run on a goroutine pool; traced runs stay
// sequential because the tracer's clock is re-pointed at each new kernel
// and record order must remain byte-identical per seed.
func runSeeds[T any](cfg Config, seeds int, trial func(idx int, seed int64) T) []T {
	out := make([]T, seeds)
	base := cfg.seed()
	if cfg.Trace != nil || seeds <= 1 {
		for i := range out {
			out[i] = trial(i, base+int64(i))
		}
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > seeds {
		workers = seeds
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = trial(i, base+int64(i))
			}
		}()
	}
	for i := 0; i < seeds; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// wireTrace hands the configured tracer to a freshly built EMR manager
// (which fans it out to the actor runtime, cluster, and chaos injector).
// No-op when tracing is off.
func (c Config) wireTrace(m *emr.Manager) {
	if c.Trace != nil {
		m.SetTracer(c.Trace)
	}
}

// simTracker accumulates the kernels an experiment creates; totals are
// read once the experiment function returns (all kernels idle by then).
// The mutex covers registration from runSeeds' trial goroutines.
type simTracker struct {
	mu      sync.Mutex
	kernels []*sim.Kernel
}

func (t *simTracker) add(k *sim.Kernel) {
	t.mu.Lock()
	t.kernels = append(t.kernels, k)
	t.mu.Unlock()
}

func (t *simTracker) totals() (fired uint64, peak int) {
	for _, k := range t.kernels {
		st := k.Stats()
		fired += st.Fired
		if st.PeakQueue > peak {
			peak = st.PeakQueue
		}
	}
	return fired, peak
}

// Registry maps experiment ids to runners.
var Registry = map[string]func(Config) *Result{
	"table1": Table1,
	"table3": Table3,
	"fig5":   Fig5,
	"fig6a":  Fig6a,
	"fig6b":  Fig6b,
	"fig7a":  Fig7a,
	"fig7bc": Fig7bc,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11a": Fig11a,
	"fig11b": Fig11b,
	"fig11c": Fig11c,
	"chaos":  Chaos,

	// Beyond-the-paper scalability family (Fig. 11c's question asked at
	// fleet sizes the testbed could not reach; see EXPERIMENTS.md).
	"scale":      Scale,
	"scale_snap": ScaleSnap,

	// Sharded-kernel twins: the same fleet run on 4 kernel shards and on
	// the sequential reference. Their reports must be byte-identical; the
	// events/sec ratio between them is plasma-bench's speedup gate.
	"scale_shard":  ScaleShard,
	"scale_shard1": ScaleShard1,

	// Burst/failure robustness family: provisioning spectrum vs flash
	// crowds, diurnal waves, correlated region failover, and a flash crowd
	// composed with a GEM crash (see EXPERIMENTS.md).
	"burst_flash":   BurstFlash,
	"burst_diurnal": BurstDiurnal,
	"burst_region":  BurstRegion,
	"burst_chaos":   BurstChaos,

	// Batched-planner family: the batch multi-resource planner raced
	// against the legacy greedy round on the paper's own workloads, all
	// else pinned (see DESIGN.md §11 and EXPERIMENTS.md).
	"plan_pagerank": PlanPagerank,
	"plan_halo":     PlanHalo,

	// Windowed streaming family: skew-shift recovery race against the
	// Elasticutor-style executor-level key repartitioner, hot-set drift,
	// window spikes, and a shift composed with a GEM crash (see
	// EXPERIMENTS.md).
	"stream_skew":  StreamSkew,
	"stream_drift": StreamDrift,
	"stream_spike": StreamSpike,
	"stream_chaos": StreamChaos,
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id and fills the result's kernel-effort
// counters (EventsFired, PeakQueue).
func Run(id string, cfg Config) (*Result, error) {
	fn, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	tr := &simTracker{}
	cfg.stats = tr
	res := fn(cfg)
	res.EventsFired, res.PeakQueue = tr.totals()
	return res, nil
}

func ms(x float64) string { return fmt.Sprintf("%.1f ms", x) }

func pct(x float64) string { return fmt.Sprintf("%.1f%%", x) }
