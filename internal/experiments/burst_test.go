package experiments

import (
	"bytes"
	"strings"
	"testing"

	"plasma/internal/chaos"
	"plasma/internal/cluster"
	"plasma/internal/sim"
	"plasma/internal/trace"
)

// The flash-crowd sweep must cover the full provisioning spectrum and show
// its effect: a warm pool (capacity back in milliseconds) sheds no more —
// and violates the SLO no longer — than VM provisioning (capacity back
// after the spike is over).
func TestBurstFlashSpectrumShape(t *testing.T) {
	r := BurstFlash(Config{Seed: 1})
	if len(r.Rows) != 3 {
		t.Fatalf("burst_flash has %d rows, want one per provisioning class (3)", len(r.Rows))
	}
	for _, pc := range []string{"warm", "container", "vm"} {
		if _, ok := r.Summary["slo_viol_s_"+pc]; !ok {
			t.Fatalf("missing SLO-violation summary for class %s", pc)
		}
		if r.Summary["invariant_violations_"+pc] != 0 {
			t.Errorf("class %s run ended with invariant violations", pc)
		}
	}
	if r.Summary["shed_vm"] == 0 {
		t.Error("VM-only provisioning shed nothing during the flash; spike too weak to test overload")
	}
	if r.Summary["scale_outs_warm"] == 0 {
		t.Error("warm-pool run never scaled out")
	}
	if r.Summary["shed_warm"] > r.Summary["shed_vm"] {
		t.Errorf("warm pool shed more than VM (%v > %v); spectrum has no effect",
			r.Summary["shed_warm"], r.Summary["shed_vm"])
	}
	if r.Summary["slo_viol_s_warm"] > r.Summary["slo_viol_s_vm"] {
		t.Errorf("warm pool violated longer than VM (%v > %v)",
			r.Summary["slo_viol_s_warm"], r.Summary["slo_viol_s_vm"])
	}
}

// The region-failover scenario must actually dump load: every region-A
// machine crashes, the survivors saturate (nonzero SLO violation), and the
// end state still satisfies the global invariants.
func TestBurstRegionFailoverDumpsLoad(t *testing.T) {
	r := BurstRegion(Config{Seed: 1})
	if r.Summary["mean_crashes"] != 4 {
		t.Fatalf("mean crashes = %v, want 4 (whole region A)", r.Summary["mean_crashes"])
	}
	if r.Summary["mean_slo_viol_s"] == 0 {
		t.Error("region failover caused no SLO violation; survivors were never stressed")
	}
	if r.Summary["invariant_violations"] != 0 {
		t.Error("invariant violations after failover/repair")
	}
}

// The chaos-composed burst (flash crowd during a GEM crash) must run in
// the quick sweep with the GEM actually down and the fleet still growing.
func TestBurstChaosGEMCrashDuringFlash(t *testing.T) {
	r := BurstChaos(Config{Seed: 1})
	if r.Summary["mean_ctl_fails"] == 0 {
		t.Fatal("GEM crash was never applied; composition is vacuous")
	}
	if r.Summary["mean_scale_outs"] == 0 {
		t.Error("no scale-out during the flash: surviving GEM's vote did not carry")
	}
	if r.Summary["invariant_violations"] != 0 {
		t.Error("invariant violations after the composed run")
	}
}

// Fixed seed, fixed scenario: the rendered result (every row, summary, and
// note) must be byte-identical across runs.
func TestBurstDeterministicSameSeed(t *testing.T) {
	a := BurstDiurnal(Config{Seed: 5}).Render()
	b := BurstDiurnal(Config{Seed: 5}).Render()
	if a != b {
		t.Fatalf("same-seed burst_diurnal renders differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// Satellite: chaos schedule composition. A GEM failure, a machine crash,
// and a machine recovery landing on the same tick must apply in schedule
// order, deterministically — and the full decision trace must be
// byte-identical across two runs at the same seed.
func TestBurstChaosSameTickCompositionDeterministic(t *testing.T) {
	tick := sim.Time(8 * sim.Second)
	events := []chaos.Event{
		{At: sim.Time(5 * sim.Second), Op: chaos.CrashMachine, Target: 2},
		// Same instant, three op families; apply order = schedule order.
		{At: tick, Op: chaos.FailGEM, Target: 0},
		{At: tick, Op: chaos.CrashMachine, Target: 1},
		{At: tick, Op: chaos.RepairMachine, Target: 2},
		{At: sim.Time(12 * sim.Second), Op: chaos.RecoverGEM, Target: 0},
	}
	run := func() ([]string, []byte) {
		ring := trace.NewRing(1 << 16)
		cfg := Config{Seed: 7, Trace: trace.New(ring)}
		burstRun(cfg, 7, burstOpts{
			servers: 4, frontends: 8,
			policy:  `server.cpu.perc > 70 or server.cpu.perc < 10 => balance({Frontend}, cpu);`,
			numGEMs: 2, period: 2 * sim.Second, total: 16 * sim.Second,
			clients: 4, baseEvery: 50 * sim.Millisecond,
			rate:    func(sim.Time) float64 { return 1 },
			reqCost: 6 * sim.Millisecond, mailboxCap: 32, sloMS: 50,
			minServers: 2,
			events:     events, floor: 1,
		})
		if ring.Dropped() != 0 {
			t.Fatalf("trace ring overflowed (%d dropped); grow the test ring", ring.Dropped())
		}
		var applied []string
		for _, rec := range ring.Records() {
			if rec.Kind == trace.KindChaos {
				applied = append(applied, rec.Detail)
			}
		}
		var buf bytes.Buffer
		if err := trace.WriteJSONL(&buf, ring.Records()); err != nil {
			t.Fatal(err)
		}
		return applied, buf.Bytes()
	}

	applied1, jsonl1 := run()
	applied2, jsonl2 := run()

	want := []string{"crash-machine 2", "fail-gem 0", "crash-machine 1", "repair-machine 2", "recover-gem 0"}
	if len(applied1) != len(want) {
		t.Fatalf("chaos trace has %d records, want %d: %v", len(applied1), len(want), applied1)
	}
	for i := range want {
		if applied1[i] != want[i] {
			t.Fatalf("same-tick apply order broken at %d: got %q, want %q (full: %v)",
				i, applied1[i], want[i], applied1)
		}
		if strings.HasSuffix(applied1[i], "skipped") {
			t.Fatalf("event %q was refused", applied1[i])
		}
	}
	for i := range applied2 {
		if applied2[i] != applied1[i] {
			t.Fatalf("apply order differs between same-seed runs at %d: %q vs %q",
				i, applied1[i], applied2[i])
		}
	}
	if !bytes.Equal(jsonl1, jsonl2) {
		t.Fatal("same-seed decision traces are not byte-identical")
	}
}

// The flash loop's variable-rate driver: outside the window the arrival
// multiplier is 1, inside it the spike factor.
func TestBurstFlashRateWindow(t *testing.T) {
	r := flashRate(sim.Time(10*sim.Second), sim.Time(20*sim.Second), 25)
	if got := r(sim.Time(5 * sim.Second)); got != 1 {
		t.Errorf("pre-window rate = %v, want 1", got)
	}
	if got := r(sim.Time(10 * sim.Second)); got != 25 {
		t.Errorf("window-start rate = %v, want 25", got)
	}
	if got := r(sim.Time(20 * sim.Second)); got != 1 {
		t.Errorf("window-end rate = %v, want 1 (half-open window)", got)
	}
}

// Spectrum helper sanity: the warm pool is the only finite class, and every
// class carries a nonzero failure probability so the retry path is live.
func TestBurstSpecSpectrum(t *testing.T) {
	for _, pc := range []cluster.ProvClass{cluster.WarmPool, cluster.Container, cluster.VM} {
		specs := burstSpec(pc)
		if len(specs) != 1 || specs[0].Class != pc {
			t.Fatalf("burstSpec(%v) = %+v", pc, specs)
		}
		if specs[0].FailProb <= 0 {
			t.Errorf("class %v has no failure probability; retry path untested", pc)
		}
		finite := specs[0].Capacity >= 0
		if finite != (pc == cluster.WarmPool) {
			t.Errorf("class %v finite=%v; only the warm pool should be finite", pc, finite)
		}
	}
}
