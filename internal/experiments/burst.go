package experiments

import (
	"fmt"
	"math"

	"plasma/internal/actor"
	"plasma/internal/apps/workload"
	"plasma/internal/chaos"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/metrics"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// The burst family stresses PLASMA with demand the paper never modeled:
// flash crowds (a 10-100x arrival spike in seconds), diurnal waves, and
// correlated region failover dumping a whole region's load onto the
// survivors — each against a *provisioning spectrum* (warm pool /
// container / VM classes with boot-time distributions and failure
// probabilities) instead of a single boot constant. Overload degrades
// gracefully: actor mailboxes are bounded, excess requests are shed, and
// the deliverable metric is SLO-violation-seconds (time the latency
// signal spent above the SLO), per Naskos et al.'s argument that
// elasticity guarantees should be quantified as violation time.

// burstFrontend is the request-serving actor: a fixed CPU cost per
// request, then a reply.
type burstFrontend struct {
	cost sim.Duration
}

func (f *burstFrontend) Receive(ctx *actor.Context, msg actor.Message) {
	if msg.Method != "req" {
		return
	}
	ctx.Use(f.cost)
	ctx.Reply(nil, 512)
}

// burstOpts parameterizes one burst run.
type burstOpts struct {
	servers   int // initial app servers (client site is one more)
	frontends int
	// class is the actor class the frontends are spawned as, so the run's
	// policy can address them ("Frontend" when empty; the counterexample
	// replays use "Worker" to match the lint corpus).
	class  string
	policy string
	specs     []cluster.ProvSpec
	numGEMs   int
	period    sim.Duration
	total     sim.Duration
	clients   int
	baseEvery sim.Duration
	// rate is the arrival-rate multiplier at virtual time t (1 = baseline;
	// a flash crowd returns 10-100 during its window).
	rate       func(t sim.Time) float64
	reqCost    sim.Duration
	mailboxCap int
	sloMS      float64
	scaleIn    bool
	minServers int
	// events, when set, is a chaos schedule applied through the standard
	// chaosEnv bridge (burst scenarios compose with the chaos layer).
	events []chaos.Event
	floor  int
}

// burstOut is one burst run's measured outcome.
type burstOut struct {
	violSec    float64
	episodes   int
	shed       int64
	p95        float64
	meanMS     float64
	served     int
	scaleOuts  int
	scaleIns   int
	failedProv int
	provisions int
	peakSrv    int
	finalSrv   int
	crashes    int
	ctlFails   int
	latSeries  *metrics.Series
	violations []string
}

// burstRun drives one seeded burst scenario end to end: open-loop clients
// whose arrival rate follows opts.rate, bounded mailboxes shedding
// overload, scale-out through the provisioning spectrum, optional chaos
// schedule, and the SLO-violation integral over the reply-latency signal.
func burstRun(cfg Config, seed int64, o burstOpts) burstOut {
	k := cfg.kernelSeeded(seed)
	clientSite := cluster.MachineID(o.servers)
	c := cluster.New(k, o.servers+1, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	rt.MailboxCap = o.mailboxCap
	prof := profile.New(k, c, rt)

	class := o.class
	if class == "" {
		class = "Frontend"
	}
	fes := make([]actor.Ref, o.frontends)
	for i := range fes {
		fes[i] = rt.SpawnOn(class, &burstFrontend{cost: o.reqCost}, cluster.MachineID(i%o.servers))
	}

	m := emr.New(k, c, rt, prof, epl.MustParse(o.policy), emr.Config{
		Period: o.period, NumGEMs: o.numGEMs, MinResidence: o.period / 2,
		ScaleOut: true, ScaleIn: o.scaleIn, MinServers: o.minServers,
		InstanceType: cluster.M1Small, ProvSpecs: o.specs,
	})
	cfg.wireTrace(m)

	peakSrv := c.UpCount()
	m.OnTick = func(int, *epl.Snapshot) {
		if up := c.UpCount(); up > peakSrv {
			peakSrv = up
		}
	}

	var env *chaosEnv
	if len(o.events) > 0 {
		inj := chaos.NewInjector(seed*31+7, k.Now)
		m.SetChaos(inj)
		env = &chaosEnv{c: c, rt: rt, m: m, floor: o.floor,
			protected: map[cluster.MachineID]bool{clientSite: true}}
		inj.Apply(k, env, o.events)
	}
	m.Start()

	slo := metrics.NewSLOTracker(o.sloMS)
	rec := workload.NewRecorder(sim.Second)
	served := 0
	stop := sim.Time(o.total)
	for i := 0; i < o.clients; i++ {
		i := i
		cl := actor.NewClient(rt, clientSite)
		next := i // round-robin frontend pick, staggered per client
		var loop func()
		loop = func() {
			if k.Now() >= stop {
				return
			}
			target := fes[next%len(fes)]
			next++
			cl.Request(target, "req", nil, 256, func(lat sim.Duration, _ interface{}) {
				ms := float64(lat) / float64(sim.Millisecond)
				slo.Observe(k.Now().Seconds(), ms)
				rec.Record(k.Now(), lat)
				served++
			})
			iv := sim.Duration(float64(o.baseEvery) / o.rate(k.Now()))
			if iv < sim.Microsecond {
				iv = sim.Microsecond
			}
			k.After(iv, loop)
		}
		k.At(sim.Time(i)*sim.Time(o.baseEvery)/sim.Time(o.clients), loop)
	}

	k.Run(stop)
	m.Stop()
	k.Run(stop + sim.Time(2*o.period))
	slo.Finalize(k.Now().Seconds())

	out := burstOut{
		violSec: slo.ViolationSeconds(), episodes: slo.Episodes(),
		shed: rt.ShedRequests(), p95: rec.Hist.Percentile(95), meanMS: rec.Hist.Mean(),
		served:    served,
		scaleOuts: m.Stats.ScaleOuts, scaleIns: m.Stats.ScaleIns,
		failedProv: m.Stats.FailedProvisions, provisions: c.Provisions(),
		peakSrv: peakSrv, finalSrv: c.UpCount(),
		latSeries:  rec.Series(),
		violations: chaosInvariants(c, rt),
	}
	if up := c.UpCount(); up > out.peakSrv {
		out.peakSrv = up
	}
	if env != nil {
		out.crashes, out.ctlFails = env.crashes, env.ctlFails
	}
	return out
}

// flashRate is the flash-crowd arrival multiplier: baseline outside the
// window, spike-fold inside it.
func flashRate(from, to sim.Time, spike float64) func(sim.Time) float64 {
	return func(t sim.Time) float64 {
		if t >= from && t < to {
			return spike
		}
		return 1
	}
}

// burstSpec builds a single-class spectrum for the flash-crowd class
// comparison (warm pools stay finite; the fallible boot draws exercise
// the retry/backoff path).
func burstSpec(pc cluster.ProvClass) []cluster.ProvSpec {
	switch pc {
	case cluster.WarmPool:
		return []cluster.ProvSpec{{Class: cluster.WarmPool, BootMin: 50 * sim.Millisecond, BootMax: 200 * sim.Millisecond, FailProb: 0.01, Capacity: 8}}
	case cluster.Container:
		return []cluster.ProvSpec{{Class: cluster.Container, BootMin: 2 * sim.Second, BootMax: 5 * sim.Second, FailProb: 0.03, Capacity: -1}}
	default:
		return []cluster.ProvSpec{{Class: cluster.VM, BootMin: 30 * sim.Second, BootMax: 60 * sim.Second, FailProb: 0.05, Capacity: -1}}
	}
}

const burstPolicyFmt = `
server.cpu.perc > 70 or server.cpu.perc < 10 => balance({Frontend}, cpu);
server.cpu.perc > 70 => provclass({%s});
`

// BurstFlash is the flash-crowd scenario swept across the provisioning
// spectrum: a 20x arrival spike hits 15 seconds into a steady workload,
// and the only variable across rows is the provisioning class scale-out
// may draw from. Warm pools absorb the spike in milliseconds; VMs arrive
// after it is over, so the run rides out the crowd on shedding alone.
func BurstFlash(cfg Config) *Result {
	r := newResult("burst_flash", "Flash crowd vs provisioning class: SLO violation and shedding")
	r.Header = []string{"Class", "SLOviol(s)", "Episodes", "Shed", "Served", "p95(ms)", "ScaleOuts", "ProvFails", "PeakSrv", "Invariants"}

	total := 60 * sim.Second
	clients, spike := 12, 10.0
	if cfg.Full {
		total, clients, spike = 120*sim.Second, 24, 20.0
	}
	for _, pc := range []cluster.ProvClass{cluster.WarmPool, cluster.Container, cluster.VM} {
		o := burstRun(cfg, cfg.seed(), burstOpts{
			servers: 4, frontends: 12,
			policy:  fmt.Sprintf(burstPolicyFmt, pc),
			specs:   burstSpec(pc),
			numGEMs: 1, period: 2 * sim.Second, total: total,
			clients: clients, baseEvery: 100 * sim.Millisecond,
			rate:    flashRate(sim.Time(15*sim.Second), sim.Time(35*sim.Second), spike),
			reqCost: 6 * sim.Millisecond, mailboxCap: 32, sloMS: 50,
			minServers: 4,
		})
		verdict := "ok"
		if len(o.violations) > 0 {
			verdict = fmt.Sprintf("%v", o.violations)
		}
		r.addRow(pc.String(),
			fmt.Sprintf("%.1f", o.violSec), fmt.Sprintf("%d", o.episodes),
			fmt.Sprintf("%d", o.shed), fmt.Sprintf("%d", o.served),
			fmt.Sprintf("%.1f", o.p95), fmt.Sprintf("%d", o.scaleOuts),
			fmt.Sprintf("%d", o.failedProv), fmt.Sprintf("%d", o.peakSrv), verdict)
		r.Summary["slo_viol_s_"+pc.String()] = o.violSec
		r.Summary["shed_"+pc.String()] = float64(o.shed)
		r.Summary["scale_outs_"+pc.String()] = float64(o.scaleOuts)
		r.Summary["invariant_violations_"+pc.String()] = float64(len(o.violations))
		r.Series["latency_"+pc.String()] = o.latSeries
	}
	r.notef("warm pool restores capacity inside the spike; VM boots land after it — the violation-seconds spread is the provisioning spectrum's effect")
	return r
}

// BurstDiurnal is the diurnal-wave scenario: arrivals swell and recede
// sinusoidally over each 60-second 'day', and the fleet should track the
// wave — growing through the warm/container spectrum on the way up,
// scaling back in on the way down. Three seeds, aggregated.
func BurstDiurnal(cfg Config) *Result {
	r := newResult("burst_diurnal", "Diurnal wave: fleet tracks a sinusoidal arrival rate")
	r.Header = []string{"Seed", "SLOviol(s)", "Shed", "ScaleOuts", "ScaleIns", "PeakSrv", "FinalSrv", "Invariants"}

	total := 90 * sim.Second
	if cfg.Full {
		total = 240 * sim.Second
	}
	day := 60 * sim.Second
	outs := runSeeds(cfg, 3, func(_ int, seed int64) burstOut {
		return burstRun(cfg, seed, burstOpts{
			servers: 3, frontends: 9,
			policy:  fmt.Sprintf(burstPolicyFmt, "warm, container"),
			specs:   append(burstSpec(cluster.WarmPool), burstSpec(cluster.Container)...),
			numGEMs: 1, period: 3 * sim.Second, total: total,
			clients: 10, baseEvery: 60 * sim.Millisecond,
			rate: func(t sim.Time) float64 {
				return math.Max(0.25, 1+2.2*math.Sin(2*math.Pi*float64(t)/float64(day)))
			},
			reqCost: 6 * sim.Millisecond, mailboxCap: 32, sloMS: 50,
			scaleIn: true, minServers: 3,
		})
	})
	var viol, shed, outsN, ins float64
	bad := 0
	for i, o := range outs {
		verdict := "ok"
		if len(o.violations) > 0 {
			verdict = fmt.Sprintf("%v", o.violations)
			bad += len(o.violations)
		}
		r.addRow(fmt.Sprintf("%d", cfg.seed()+int64(i)),
			fmt.Sprintf("%.1f", o.violSec), fmt.Sprintf("%d", o.shed),
			fmt.Sprintf("%d", o.scaleOuts), fmt.Sprintf("%d", o.scaleIns),
			fmt.Sprintf("%d", o.peakSrv), fmt.Sprintf("%d", o.finalSrv), verdict)
		viol += o.violSec
		shed += float64(o.shed)
		outsN += float64(o.scaleOuts)
		ins += float64(o.scaleIns)
	}
	n := float64(len(outs))
	r.Summary["mean_slo_viol_s"] = viol / n
	r.Summary["mean_shed"] = shed / n
	r.Summary["mean_scale_outs"] = outsN / n
	r.Summary["mean_scale_ins"] = ins / n
	r.Summary["invariant_violations"] = float64(bad)
	r.notef("the fleet grows on the wave's crest and is reclaimed in the trough; violation time concentrates in the first crest before capacity catches up")
	return r
}

// BurstRegion is correlated region failover: half the fleet (region A)
// crashes in the same instant, dumping its actors and load onto the
// surviving region, which saturates and must both shed and re-provision
// through the spectrum. Region A repairs 30 seconds later.
func BurstRegion(cfg Config) *Result {
	r := newResult("burst_region", "Correlated region failover onto survivors")
	r.Header = []string{"Seed", "Crashes", "SLOviol(s)", "Shed", "ScaleOuts", "ProvFails", "PeakSrv", "Invariants"}

	total := 80 * sim.Second
	if cfg.Full {
		total = 160 * sim.Second
	}
	servers := 8
	failAt := sim.Time(30 * sim.Second)
	var events []chaos.Event
	for i := 0; i < servers/2; i++ { // region A = machines 0..3, one instant
		events = append(events, chaos.Event{At: failAt, Op: chaos.CrashMachine, Target: i})
	}
	for i := 0; i < servers/2; i++ {
		events = append(events, chaos.Event{At: failAt + sim.Time(30*sim.Second), Op: chaos.RepairMachine, Target: i})
	}

	// Steady demand sized to ~2/3 of the full fleet (no trigger) but ~4/3
	// of the surviving region (sustained overload after the failover); the
	// wider 80% band keeps the healthy fleet quiet.
	policy := `
server.cpu.perc > 80 or server.cpu.perc < 10 => balance({Frontend}, cpu);
server.cpu.perc > 80 => provclass({warm, container});
`
	outs := runSeeds(cfg, 2, func(_ int, seed int64) burstOut {
		return burstRun(cfg, seed, burstOpts{
			servers: servers, frontends: 16,
			policy:  policy,
			specs:   append(burstSpec(cluster.WarmPool), burstSpec(cluster.Container)...),
			numGEMs: 2, period: 2 * sim.Second, total: total,
			clients: 16, baseEvery: 18 * sim.Millisecond,
			rate:    func(sim.Time) float64 { return 1 },
			reqCost: 6 * sim.Millisecond, mailboxCap: 32, sloMS: 50,
			minServers: 2,
			events:     events, floor: 2,
		})
	})
	var viol, shed, crashes float64
	bad := 0
	for i, o := range outs {
		verdict := "ok"
		if len(o.violations) > 0 {
			verdict = fmt.Sprintf("%v", o.violations)
			bad += len(o.violations)
		}
		r.addRow(fmt.Sprintf("%d", cfg.seed()+int64(i)),
			fmt.Sprintf("%d", o.crashes), fmt.Sprintf("%.1f", o.violSec),
			fmt.Sprintf("%d", o.shed), fmt.Sprintf("%d", o.scaleOuts),
			fmt.Sprintf("%d", o.failedProv), fmt.Sprintf("%d", o.peakSrv), verdict)
		viol += o.violSec
		shed += float64(o.shed)
		crashes += float64(o.crashes)
	}
	n := float64(len(outs))
	r.Summary["mean_slo_viol_s"] = viol / n
	r.Summary["mean_shed"] = shed / n
	r.Summary["mean_crashes"] = crashes / n
	r.Summary["invariant_violations"] = float64(bad)
	r.notef("survivors absorb the dead region's actors (runtime re-homing) and its load; warm-pool scale-out plus shedding carries the gap until repair")
	return r
}

// BurstChaos composes a flash crowd with a GEM crash covering it: GEM 0
// dies before the spike starts and recovers after it ends, so the spike
// must be absorbed with half the control plane gone — the surviving GEM's
// self-corroborated scale-out still grows the fleet.
func BurstChaos(cfg Config) *Result {
	r := newResult("burst_chaos", "Flash crowd during a GEM crash (chaos-composed burst)")
	r.Header = []string{"Seed", "CtlFails", "SLOviol(s)", "Shed", "ScaleOuts", "PeakSrv", "Invariants"}

	// Same workload as burst_flash's warm row, so the delta between the
	// two isolates the GEM crash's cost.
	total := 60 * sim.Second
	spike := 10.0
	if cfg.Full {
		total, spike = 120*sim.Second, 20.0
	}
	events := []chaos.Event{
		{At: sim.Time(12 * sim.Second), Op: chaos.FailGEM, Target: 0},
		{At: sim.Time(40 * sim.Second), Op: chaos.RecoverGEM, Target: 0},
	}
	outs := runSeeds(cfg, 2, func(_ int, seed int64) burstOut {
		return burstRun(cfg, seed, burstOpts{
			servers: 4, frontends: 12,
			policy:  fmt.Sprintf(burstPolicyFmt, "warm, container"),
			specs:   append(burstSpec(cluster.WarmPool), burstSpec(cluster.Container)...),
			numGEMs: 2, period: 2 * sim.Second, total: total,
			clients: 12, baseEvery: 100 * sim.Millisecond,
			rate:    flashRate(sim.Time(15*sim.Second), sim.Time(35*sim.Second), spike),
			reqCost: 6 * sim.Millisecond, mailboxCap: 32, sloMS: 50,
			minServers: 4,
			events:     events, floor: 2,
		})
	})
	var viol, shed, so, ctl float64
	bad := 0
	for i, o := range outs {
		verdict := "ok"
		if len(o.violations) > 0 {
			verdict = fmt.Sprintf("%v", o.violations)
			bad += len(o.violations)
		}
		r.addRow(fmt.Sprintf("%d", cfg.seed()+int64(i)),
			fmt.Sprintf("%d", o.ctlFails), fmt.Sprintf("%.1f", o.violSec),
			fmt.Sprintf("%d", o.shed), fmt.Sprintf("%d", o.scaleOuts),
			fmt.Sprintf("%d", o.peakSrv), verdict)
		viol += o.violSec
		shed += float64(o.shed)
		so += float64(o.scaleOuts)
		ctl += float64(o.ctlFails)
	}
	n := float64(len(outs))
	r.Summary["mean_slo_viol_s"] = viol / n
	r.Summary["mean_shed"] = shed / n
	r.Summary["mean_scale_outs"] = so / n
	r.Summary["mean_ctl_fails"] = ctl / n
	r.Summary["invariant_violations"] = float64(bad)
	r.notef("with one of two GEMs down for the whole spike, the survivor's scale-out vote self-corroborates and the fleet still grows")
	return r
}
