package experiments

import (
	"plasma/internal/actor"
	"plasma/internal/apps/estore"
	"plasma/internal/apps/workload"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// Fig9 reproduces §5.5: E-Store with 40 root partitions × 4 children on 4
// m1.small servers (one extra server available), 48 clients with the 35%
// geometric skew. Three managers: PLASMA executing the §3.3 rules, the
// in-app E-Store algorithm, and no elasticity.
//
// Paper: PLASMA E-Store and in-app E-Store track each other closely; both
// clearly beat no elasticity.
func Fig9(cfg Config) *Result {
	r := newResult("fig9", "E-Store latency: PLASMA rules vs in-app elasticity vs none")
	r.Header = []string{"Setup", "Tail latency", "vs no-elasticity"}

	roots, children := 40, 4
	clients := 48
	duration := 220 * sim.Second
	period := 30 * sim.Second
	if !cfg.Full {
		roots, children = 16, 4
		clients = 24
		duration = 120 * sim.Second
		period = 20 * sim.Second
	}

	run := func(mode string) *workload.Recorder {
		k := cfg.kernel()
		c := cluster.New(k, 5, cluster.M1Small) // 4 app servers + 1 extra
		rt := actor.NewRuntime(k, c)
		prof := profile.New(k, c, rt)
		app := estore.Build(k, rt, []cluster.MachineID{0, 1, 2, 3}, roots, children)
		k.RunUntilIdle()

		switch mode {
		case "plasma":
			mgr := emr.New(k, c, rt, prof, epl.MustParse(estore.PolicySrc),
				emr.Config{Period: period})
			cfg.wireTrace(mgr)
			mgr.Start()
		case "in-app":
			e := &estore.InApp{K: k, RT: rt, C: c, Prof: prof, App: app,
				Period: period, HighWater: 80, TopFrac: 0.1}
			e.Start()
		}

		rec := workload.NewRecorder(10 * sim.Second)
		pick := workload.SkewedPicker(k, workload.GeometricWeights(roots, 0.35))
		for i := 0; i < clients; i++ {
			loop := &workload.ClosedLoop{
				K:      k,
				Client: actor.NewClient(rt, 4), // clients use the spare as their site
				Think:  40 * sim.Millisecond,
				Rec:    rec,
				Next: func() workload.Request {
					return workload.Request{Target: app.Roots[pick()], Method: "read", Size: 256}
				},
			}
			loop.Start()
		}
		k.Run(sim.Time(duration))
		return rec
	}

	tails := map[string]float64{}
	for _, mode := range []string{"plasma", "in-app", "none"} {
		rec := run(mode)
		series := rec.Series()
		r.Series[mode] = series
		tails[mode] = series.TailMeanY(0.34)
	}
	for _, mode := range []string{"plasma", "in-app", "none"} {
		delta := (tails[mode] - tails["none"]) / tails["none"] * 100
		r.addRow(mode, ms(tails[mode]), pct(delta))
		r.Summary["tail_ms_"+mode] = tails[mode]
	}
	if tails["in-app"] > 0 {
		r.Summary["plasma_vs_inapp_ratio"] = tails["plasma"] / tails["in-app"]
	}
	r.notef("paper: PLASMA E-Store ~= in-app E-Store, both clearly below no-elasticity")
	return r
}
