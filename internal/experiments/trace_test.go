package experiments

import (
	"bytes"
	"testing"

	"plasma/internal/trace"
)

// tracedRun executes one experiment with tracing on and returns the
// serialized JSONL trace.
func tracedRun(t *testing.T, id string, seed int64) []byte {
	t.Helper()
	ring := trace.NewRing(1 << 20)
	cfg := Config{Seed: seed, Trace: trace.New(ring)}
	if _, err := Run(id, cfg); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if ring.Dropped() > 0 {
		t.Fatalf("%s: trace ring dropped %d records", id, ring.Dropped())
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, ring.Records()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Same seed, same experiment → byte-identical traces. This is the
// tracing-side statement of the repo's determinism invariant: emitting
// records must not perturb (or be perturbed by) any simulation decision.
func TestTraceSameSeedByteIdentical(t *testing.T) {
	for _, id := range []string{"fig5", "chaos"} {
		a := tracedRun(t, id, 7)
		b := tracedRun(t, id, 7)
		if len(a) == 0 {
			t.Fatalf("%s: traced run emitted no records", id)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: same-seed traces differ (%d vs %d bytes)", id, len(a), len(b))
		}
	}
}

// A traced run must render exactly the same result as an untraced one:
// observation is passive.
func TestTraceDoesNotPerturbResults(t *testing.T) {
	plain, err := Run("fig5", Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run("fig5", Config{Seed: 3, Trace: trace.New(trace.NewRing(1 << 20))})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Render() != traced.Render() {
		t.Fatalf("tracing changed experiment output:\n--- plain ---\n%s\n--- traced ---\n%s",
			plain.Render(), traced.Render())
	}
}
