package experiments

import (
	"fmt"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// This file is the beyond-the-paper scalability family: Fig. 11c asked how
// GEM count affects balancing on 64 servers; these experiments ask the same
// question at fleet sizes the AWS testbed could not reach (10k, 100k and 1M
// actors in -full), plus an EPR-only measurement that isolates the snapshot
// construction hot path the million-actor fleet leans on.

// scaleCycle is the synthetic workers' self-message period; scalePeriod the
// elasticity period (short so a quick run still spans several decisions).
// scaleLookahead is the conservative-window bound for sharded runs: half
// the cluster's minimum cross-machine latency (cluster.New's 0.5 ms base),
// so the cross-home scheduling floor never delays a real message. It is
// set at every shard count — including the sequential reference — so the
// event timeline is identical no matter how many shards execute it.
const (
	scaleCycle     = 500 * sim.Millisecond
	scalePeriod    = sim.Second
	scaleLookahead = 250 * sim.Microsecond
)

// scalePolicy is a plain CPU band: hot servers shed Workers, idle spares
// receive them.
const scalePolicy = `server.cpu.perc > 70 or server.cpu.perc < 30 => balance({Worker}, cpu);`

// scaleTrial is one seeded run's outcome.
type scaleTrial struct {
	stats       emr.Stats
	spareFilled int // spare servers that received at least one Worker
}

// scaleFleet builds a size-actor synthetic fleet: ~128 Workers per server
// placed round-robin on the used servers, the last eighth of the cluster
// left as idle spares, and the first eighth's residents running double duty
// so their servers breach the upper band. Every Worker self-messages once
// per cycle with its start staggered across the cycle, so load is spread
// and the event queue never sees the whole fleet at one instant.
func scaleFleet(k *sim.Kernel, size, gems, shards int, cfg Config) scaleTrial {
	servers := size / 128
	if servers < 8 {
		servers = 8
	}
	spares := servers / 8
	if spares < 1 {
		spares = 1
	}
	used := servers - spares
	hot := spares

	// Shard configuration must precede cluster.New (machines create their
	// scheduling Envs there). The lookahead is set unconditionally so the
	// sequential reference and every sharded run share one event timeline.
	k.SetShards(shards)
	k.SetLookahead(scaleLookahead)

	c := cluster.New(k, servers, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)

	mkWorker := func(cost sim.Duration) actor.Behavior {
		return actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
			ctx.Use(cost)
			ctx.SendAfter(scaleCycle-cost, ctx.Self(), "work", nil, 16)
		})
	}
	// ~0.3% duty per cold Worker: 128/server lands mid-band (~38%); the hot
	// servers' double-duty residents push theirs past the 70% upper bound.
	coldB := mkWorker(1500 * sim.Microsecond)
	hotB := mkWorker(3 * sim.Millisecond)

	cl := actor.NewClient(rt, 0)
	for i := 0; i < size; i++ {
		srv := cluster.MachineID(i % used)
		b := coldB
		if int(srv) < hot {
			b = hotB
		}
		ref := rt.SpawnOn("Worker", b, srv)
		kick := sim.Duration(i%int(scaleCycle/sim.Millisecond)+1) * sim.Millisecond
		k.At(sim.Time(kick), func() { cl.Send(ref, "work", nil, 16) })
	}

	m := emr.New(k, c, rt, prof, epl.MustParse(scalePolicy),
		emr.Config{Period: scalePeriod, NumGEMs: gems, MinResidence: scalePeriod})
	cfg.wireTrace(m)
	m.Start()

	k.Run(sim.Time(4*scalePeriod) + sim.Time(scalePeriod/2))
	m.Stop()

	filled := map[cluster.MachineID]bool{}
	rt.ForEachActor(func(info actor.Info) {
		if int(info.Server) >= used {
			filled[info.Server] = true
		}
	})
	return scaleTrial{stats: m.Stats, spareFilled: len(filled)}
}

// Scale sweeps GEM count across fleet sizes: 1k and 4k actors quick; 10k,
// 100k and 1M actors in -full. Each (size, gems) cell averages several
// seeded trials; trials run in parallel on a goroutine pool (each owns an
// independent kernel), except the million-actor cells, which run one seed
// at a time to bound peak memory.
func Scale(cfg Config) *Result {
	r := newResult("scale", "GEM scalability on synthetic million-actor fleets (beyond Fig. 11c)")
	r.Header = []string{"Actors", "GEMs", "Seeds", "Migrations", "Denied", "Spares filled"}

	sizes := []int{1000, 4000}
	if cfg.Full {
		sizes = []int{10_000, 100_000, 1_000_000}
	}
	for _, size := range sizes {
		for _, gems := range []int{1, 2, 4} {
			seeds := 3
			if size >= 1_000_000 {
				seeds = 1 // one resident million-actor kernel at a time
			}
			trials := runSeeds(cfg, seeds, func(idx int, seed int64) scaleTrial {
				return scaleFleet(cfg.kernelSeeded(seed), size, gems, cfg.shards(), cfg)
			})
			var mig, den, spare float64
			for _, t := range trials {
				mig += float64(t.stats.ExecutedMigrations)
				den += float64(t.stats.DeniedAdmissions)
				spare += float64(t.spareFilled)
			}
			n := float64(len(trials))
			mig, den, spare = mig/n, den/n, spare/n
			r.addRow(fmt.Sprintf("%d", size), fmt.Sprintf("%d", gems), fmt.Sprintf("%d", seeds),
				fmt.Sprintf("%.1f", mig), fmt.Sprintf("%.1f", den), fmt.Sprintf("%.1f", spare))
			key := fmt.Sprintf("%d_%dgem", size, gems)
			r.Summary["migrations_"+key] = mig
			r.Summary["denied_"+key] = den
			r.Summary["spare_filled_"+key] = spare
		}
	}
	r.notef("paper: GEM count has small impact at 64 servers; the sweep checks the claim holds as the fleet grows 4 orders of magnitude")
	return r
}

// ScaleSnap isolates the EPR snapshot hot path: a 10k-actor fleet (100k in
// -full) where only 1% of actors exchange messages each period, so nearly
// all per-period work is Snapshot building ActorInfos for the whole fleet
// and Reset clearing the window. plasma-bench's allocs/op for this id is
// the snapshot-arena regression gate.
func ScaleSnap(cfg Config) *Result {
	r := newResult("scale_snap", "EPR snapshot construction at fleet scale")
	r.Header = []string{"Actors", "Servers", "Periods", "Call records", "Prop actors"}

	size, periods := 10_000, 40
	if cfg.Full {
		size = 100_000
	}
	servers := size / 128
	period := 250 * sim.Millisecond

	k := cfg.kernel()
	c := cluster.New(k, servers, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)

	ping := actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(100 * sim.Microsecond)
	})
	refs := make([]actor.Ref, size)
	for i := range refs {
		refs[i] = rt.SpawnOn("Worker", ping, cluster.MachineID(i%servers))
		if i%100 == 0 { // 1% of the fleet exposes a property (lazy Props path)
			rt.SetProp(refs[i], "peer", []actor.Ref{refs[0]})
		}
	}

	cl := actor.NewClient(rt, 0)
	contacted := size / 100
	var callRecs, propActors, actorsSeen int
	for t := 0; t < periods; t++ {
		for i := 0; i < contacted; i++ {
			cl.Send(refs[i], "ping", nil, 256)
		}
		k.Run(sim.Time(t+1) * sim.Time(period))
		snap := prof.Snapshot(nil)
		actorsSeen = len(snap.Actors)
		callRecs, propActors = 0, 0
		for _, a := range snap.Actors {
			callRecs += len(a.Calls)
			if a.Props != nil {
				propActors++
			}
		}
		prof.Reset()
	}

	r.addRow(fmt.Sprintf("%d", size), fmt.Sprintf("%d", servers), fmt.Sprintf("%d", periods),
		fmt.Sprintf("%d", callRecs), fmt.Sprintf("%d", propActors))
	r.Summary["actors"] = float64(actorsSeen)
	r.Summary["snapshots"] = float64(periods)
	r.Summary["call_records"] = float64(callRecs)
	r.Summary["prop_actors"] = float64(propActors)
	r.Summary["messages"] = float64(prof.Messages())
	r.notef("per-period cost is dominated by building %d ActorInfos; the pooled arena makes that allocation-free after warmup", actorsSeen)
	return r
}

// scaleShardTwin runs one fixed scale-family fleet at the given shard
// count. The two registered twins (scale_shard at 4 shards, scale_shard1
// on the sequential reference kernel) must render byte-identically — the
// pair is both the end-to-end equivalence check and the speedup benchmark
// (events/sec ratio between the twins = intra-run parallel speedup).
func scaleShardTwin(cfg Config, id string, shards int) *Result {
	r := newResult(id, "sharded-kernel scale twin (byte-identical across shard counts)")
	r.Header = []string{"Actors", "GEMs", "Shards seen as", "Migrations", "Denied", "Spares filled"}

	size := 4000
	if cfg.Full {
		size = 100_000
	}
	const gems = 2
	t := scaleFleet(cfg.kernelSeeded(cfg.seed()), size, gems, shards, cfg)
	// The shard count is deliberately absent from rows and summaries: the
	// twins' rendered reports must match byte for byte.
	r.addRow(fmt.Sprintf("%d", size), fmt.Sprintf("%d", gems), "n/a (identical by construction)",
		fmt.Sprintf("%d", t.stats.ExecutedMigrations), fmt.Sprintf("%d", t.stats.DeniedAdmissions),
		fmt.Sprintf("%d", t.spareFilled))
	r.Summary["migrations"] = float64(t.stats.ExecutedMigrations)
	r.Summary["denied"] = float64(t.stats.DeniedAdmissions)
	r.Summary["spare_filled"] = float64(t.spareFilled)
	r.notef("kernel sharding is a wall-clock optimization only; diff this report against its twin to verify")
	return r
}

// ScaleShard is the scale twin on a 4-shard kernel.
func ScaleShard(cfg Config) *Result { return scaleShardTwin(cfg, "scale_shard", 4) }

// ScaleShard1 is the scale twin on the sequential reference kernel.
func ScaleShard1(cfg Config) *Result { return scaleShardTwin(cfg, "scale_shard1", 1) }
