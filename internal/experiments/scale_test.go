package experiments

import (
	"testing"

	"plasma/internal/sim"
)

// Quick-mode scale sweep: every cell must actually balance load into the
// spare servers, with multi-seed trials running on the parallel runner.
func TestScaleQuickBalances(t *testing.T) {
	res := Scale(Config{Seed: 1})
	for _, key := range []string{"migrations_1000_1gem", "migrations_4000_4gem"} {
		if res.Summary[key] <= 0 {
			t.Fatalf("%s = %v, want > 0", key, res.Summary[key])
		}
	}
	if res.Summary["spare_filled_4000_1gem"] <= 0 {
		t.Fatal("no spare server received an actor in the 4000-actor sweep")
	}
}

// The parallel multi-seed runner must not perturb results: running the same
// config twice renders identically (the trials' goroutine interleaving can
// differ; the per-seed kernels and the index-ordered aggregation cannot).
func TestScaleParallelRunsDeterministic(t *testing.T) {
	a := Scale(Config{Seed: 5}).Render()
	b := Scale(Config{Seed: 5}).Render()
	if a != b {
		t.Fatalf("same-seed scale runs differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// 100k-actor smoke test for the scale family: one seeded fleet through the
// full EMR loop, plus the -full snapshot workload. Skipped under -short.
func TestScale100kSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-actor smoke test skipped in -short mode")
	}
	tr := scaleFleet(sim.New(1), 100_000, 2, 1, Config{})
	if tr.stats.ExecutedMigrations == 0 {
		t.Fatal("100k-actor fleet executed no migrations")
	}
	if tr.spareFilled == 0 {
		t.Fatal("100k-actor fleet never filled a spare server")
	}

	res := ScaleSnap(Config{Full: true})
	if got := res.Summary["actors"]; got != 100_000 {
		t.Fatalf("full scale_snap actors = %v, want 100000", got)
	}
	if res.Summary["call_records"] <= 0 {
		t.Fatal("full scale_snap recorded no call stats")
	}
}
