package experiments

import (
	"fmt"

	"plasma/internal/actor"
	"plasma/internal/apps/halo"
	"plasma/internal/apps/workload"
	"plasma/internal/baseline"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// haloBaseLatency accentuates remote-hop cost (the paper's measured
// latencies are dominated by cross-instance messaging).
const haloBaseLatency = 5 * sim.Millisecond

// Fig11a reproduces §5.7's interaction-rule comparison: 8 routers and 8
// sessions on 8 servers; 32 clients join in 4 rounds of 180 s; the
// interaction rule (colocate player with its session, placed correctly at
// creation) vs the frequency-based default rule (random placement, chase
// the chattiest peer each period). Period 70 s.
//
// Paper: inter-rule keeps latency smooth from the start; def-rule shows
// degraded spans until each round's players get re-located.
func Fig11a(cfg Config) *Result {
	r := newResult("fig11a", "Halo: interaction rule vs frequency-based default rule")
	r.Header = []string{"Rule", "Mean latency", "p95 latency"}

	roundLen := 180 * sim.Second
	period := 70 * sim.Second
	hbEvery := 500 * sim.Millisecond
	if !cfg.Full {
		roundLen = 60 * sim.Second
		period = 25 * sim.Second
	}
	rounds, perRound := 4, 8

	run := func(mode string) *workload.Recorder {
		k := cfg.kernel()
		c := cluster.New(k, 10, cluster.M1Small) // 8 app servers + 2 client sites
		c.BaseLatency = haloBaseLatency
		rt := actor.NewRuntime(k, c)
		prof := profile.New(k, c, rt)
		srvs := make([]cluster.MachineID, 8)
		for i := range srvs {
			srvs[i] = cluster.MachineID(i)
		}
		app := halo.Build(k, rt, srvs, srvs, 8, 8)

		switch mode {
		case "inter-rule":
			mgr := emr.New(k, c, rt, prof, epl.MustParse(halo.InterPolicySrc),
				emr.Config{Period: period})
			cfg.wireTrace(mgr)
			mgr.Start()
		case "def-rule":
			f := &baseline.FreqColocator{K: k, RT: rt, C: c, Prof: prof,
				Period: period, Threshold: 10}
			f.Start()
		}

		rec := workload.NewRecorder(10 * sim.Second)
		for round := 0; round < rounds; round++ {
			for j := 0; j < perRound; j++ {
				joinAt := sim.Time(round)*sim.Time(roundLen) +
					sim.Time(k.Rand().Int63n(int64(roundLen)))
				idx := round*perRound + j
				k.At(joinAt, func() {
					p := app.Join(idx % len(app.Sessions))
					site := cluster.MachineID(8 + idx%2)
					cl := actor.NewClient(rt, site)
					k.Every(hbEvery, func() bool {
						app.Heartbeat(cl, p, func(lat sim.Duration) {
							rec.Record(k.Now(), lat)
						})
						return k.Now() < sim.Time(rounds)*sim.Time(roundLen)+sim.Time(roundLen)
					})
				})
			}
		}
		k.Run(sim.Time(rounds)*sim.Time(roundLen) + sim.Time(roundLen))
		return rec
	}

	stats := map[string][2]float64{}
	for _, mode := range []string{"inter-rule", "def-rule"} {
		rec := run(mode)
		r.Series[mode] = rec.Series()
		mean := rec.Hist.Mean()
		p95 := rec.Hist.Percentile(95)
		stats[mode] = [2]float64{mean, p95}
		r.addRow(mode, ms(mean), ms(p95))
		r.Summary["mean_ms_"+mode] = mean
		r.Summary["p95_ms_"+mode] = p95
	}
	if d := stats["def-rule"]; d[0] > 0 {
		r.Summary["defrule_p95_over_inter"] = d[1] / stats["inter-rule"][1]
	}
	r.notef("paper: inter-rule avoids remote messaging from the start; def-rule degrades until re-location")
	return r
}

// Fig11b reproduces the per-client detail of the first round under the
// default rule: fortunately placed clients see low latency immediately;
// misplaced ones run ~35% higher until the first redistribution.
func Fig11b(cfg Config) *Result {
	r := newResult("fig11b", "Halo: per-client latency, first round, default rule")
	r.Header = []string{"Client", "Early latency", "Late latency", "Early/Late"}

	period := 70 * sim.Second
	total := 170 * sim.Second
	if !cfg.Full {
		period = 25 * sim.Second
		total = 80 * sim.Second
	}

	k := cfg.kernel()
	c := cluster.New(k, 10, cluster.M1Small)
	c.BaseLatency = haloBaseLatency
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	srvs := make([]cluster.MachineID, 8)
	for i := range srvs {
		srvs[i] = cluster.MachineID(i)
	}
	app := halo.Build(k, rt, srvs, srvs, 8, 8)
	f := &baseline.FreqColocator{K: k, RT: rt, C: c, Prof: prof, Period: period, Threshold: 10}
	f.Start()

	recs := make([]*workload.Recorder, 8)
	misplacedAtJoin := make([]bool, 8)
	for i := 0; i < 8; i++ {
		i := i
		recs[i] = workload.NewRecorder(10 * sim.Second)
		p := app.Join(i)
		misplacedAtJoin[i] = rt.ServerOf(p) != rt.ServerOf(app.SessionOf(p))
		cl := actor.NewClient(rt, cluster.MachineID(8+i%2))
		k.Every(500*sim.Millisecond, func() bool {
			app.Heartbeat(cl, p, func(lat sim.Duration) { recs[i].Record(k.Now(), lat) })
			return k.Now() < sim.Time(total)
		})
	}
	k.Run(sim.Time(total))

	misplacedEarly, placedEarly := 0.0, 0.0
	nm, np := 0, 0
	ratioSum, nr := 0.0, 0
	for i := 0; i < 8; i++ {
		s := recs[i].Series()
		if s.Len() == 0 {
			continue
		}
		early := s.Y[0]
		late := s.TailMeanY(0.3)
		ratio := early / late
		r.addRow(fmt.Sprintf("c%d", i+1), ms(early), ms(late), fmt.Sprintf("%.2f", ratio))
		if misplacedAtJoin[i] {
			misplacedEarly += early
			nm++
			ratioSum += ratio
			nr++
		} else {
			placedEarly += early
			np++
		}
	}
	if nm > 0 && np > 0 {
		penalty := (misplacedEarly/float64(nm) - placedEarly/float64(np)) / (placedEarly / float64(np)) * 100
		r.Summary["misplaced_early_penalty_pct"] = penalty
		r.notef("paper: misplaced clients run ~35%% higher latency until redistribution; measured %.0f%% vs well-placed peers", penalty)
	}
	if nr > 0 {
		// Early-vs-settled ratio for misplaced clients: the paper's 30-40ms
		// down to 20ms after the first redistribution is a ~1.35-2.0x drop.
		r.Summary["misplaced_early_over_late"] = ratioSum / float64(nr)
		r.notef("misplaced clients' latency dropped %.2fx after re-location (paper: ~35%%+ higher until redistribution)", ratioSum/float64(nr))
	}
	r.Summary["misplaced_clients"] = float64(nm)
	return r
}

// Fig11c reproduces the resource-rule experiment: 64 sessions (one per
// server) and 32 routers crowded on 8 of 64 servers, with router
// decryption making those servers hot; 128 clients join over time. The
// router-balance rule spreads routers; runs with 1, 2, and 4 GEMs compare
// the impact of GEM count on latency.
//
// Paper: latency spikes as clients join, then stabilizes once routers get
// room; the number of GEMs has only a small impact.
func Fig11c(cfg Config) *Result {
	r := newResult("fig11c", "Halo: router CPU balance and GEM count")
	r.Header = []string{"GEMs", "Peak latency", "Final latency", "Router servers"}

	servers, routers, sessions, clients := 64, 32, 64, 128
	period := 80 * sim.Second
	total := 800 * sim.Second
	hbEvery := 250 * sim.Millisecond
	if !cfg.Full {
		servers, routers, sessions, clients = 16, 8, 16, 32
		period = 20 * sim.Second
		total = 200 * sim.Second
		hbEvery = 100 * sim.Millisecond
	}

	for _, gems := range []int{1, 2, 4} {
		k := cfg.kernel()
		c := cluster.New(k, servers+2, cluster.M1Small)
		c.BaseLatency = haloBaseLatency
		rt := actor.NewRuntime(k, c)
		prof := profile.New(k, c, rt)
		routerSrvs := make([]cluster.MachineID, servers/8)
		for i := range routerSrvs {
			routerSrvs[i] = cluster.MachineID(i)
		}
		sessionSrvs := make([]cluster.MachineID, servers)
		for i := range sessionSrvs {
			sessionSrvs[i] = cluster.MachineID(i)
		}
		app := halo.Build(k, rt, routerSrvs, sessionSrvs, routers, sessions)
		app.Decrypt = true

		mgr := emr.New(k, c, rt, prof, epl.MustParse(halo.FullPolicySrc),
			emr.Config{Period: period, NumGEMs: gems})
		cfg.wireTrace(mgr)
		mgr.Start()

		rec := workload.NewRecorder(20 * sim.Second)
		for i := 0; i < clients; i++ {
			i := i
			joinAt := sim.Time(i) * sim.Time(total) / sim.Time(2*clients)
			k.At(joinAt, func() {
				p := app.Join(i % sessions)
				cl := actor.NewClient(rt, cluster.MachineID(servers+i%2))
				k.Every(hbEvery, func() bool {
					app.Heartbeat(cl, p, func(lat sim.Duration) { rec.Record(k.Now(), lat) })
					return k.Now() < sim.Time(total)
				})
			})
		}
		k.Run(sim.Time(total))

		key := fmt.Sprintf("%dgem", gems)
		series := rec.Series()
		r.Series[key] = series
		peak := series.MaxY()
		final := series.TailMeanY(0.25)
		routerSrvSet := map[cluster.MachineID]bool{}
		for _, rr := range app.Routers {
			routerSrvSet[rt.ServerOf(rr)] = true
		}
		r.addRow(fmt.Sprintf("%d", gems), ms(peak), ms(final), fmt.Sprintf("%d", len(routerSrvSet)))
		r.Summary["peak_ms_"+key] = peak
		r.Summary["final_ms_"+key] = final
		r.Summary["router_servers_"+key] = float64(len(routerSrvSet))
	}
	r.notef("paper: latency rises while router servers saturate, then stabilizes after balancing; GEM count has small impact")
	return r
}
