package experiments

import (
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/lint/model"
	"plasma/internal/sim"
	"plasma/internal/trace"
)

// Counterexample replay: the model checker (internal/lint/model) proves
// properties over an *abstraction* — uniform load, instantaneous boots,
// one drift step per period. ReplayPath closes the loop by driving the
// abstract counterexample's load schedule through the real simulator
// (cluster + actor runtime + profiler + EMR) and reading the corroborated
// scale decisions back out of the trace stream, so every EPL200 finding
// can be checked against the system it indicts.

// scaleLog is a trace sink retaining only the corroborated scale
// decisions, in emission order — the oracle the replay consults.
type scaleLog struct {
	recs []trace.Record
}

func (l *scaleLog) Emit(r trace.Record) {
	if r.Kind == trace.KindScaleOut || r.Kind == trace.KindScaleIn {
		l.recs = append(l.recs, r)
	}
}

// ReplayOpts configures one counterexample replay.
type ReplayOpts struct {
	// Policy is the EPL source (lint annotations are ignored by the lexer).
	Policy string
	// Class is the actor class to spawn the workers as. When empty it is
	// taken from the policy's first balance behavior, so the fleet the
	// replay drives is the one the policy actually governs.
	Class string
	// Env is the workload envelope the counterexample was checked under;
	// it fixes the load-to-arrival-rate mapping and the fleet bounds.
	Env model.Envelope
	// Loads is the per-period load schedule (post-drift levels, in model
	// path order — pass the counterexample Steps' Load fields).
	Loads []int
	// CycleFrom is the index the schedule repeats from once exhausted
	// (a counterexample's CycleFrom); -1 holds the last level instead.
	CycleFrom int
	// Periods is how many elasticity periods to simulate.
	Periods int
	Seed    int64
}

// ReplayOut is one replay's outcome, read from the trace records.
type ReplayOut struct {
	// ScaleOuts and ScaleIns count corroborated scale *decisions*
	// (KindScaleOut / KindScaleIn trace records).
	ScaleOuts int
	ScaleIns  int
	// Flips counts direction changes in the decision sequence — the
	// oscillation measure the EPL200 property tests bound.
	Flips int
	// StatOuts/StatIns are the EMR's machine-level counters (machines
	// booted / decommissioned), for cross-checking against the decisions.
	StatOuts int
	StatIns  int
	FinalSrv int
	Shed     int64
}

// ReplayPath replays a load schedule through the real simulator. One
// abstract load unit is the work one server absorbs per 1/PerServer of
// its capacity, so the aggregate arrival rate at level λ is
// λ/(PerServer·reqCost) and the per-server utilization the profiler
// measures converges to the model's 100·λ/(n·PerServer).
func ReplayPath(o ReplayOpts) ReplayOut {
	const (
		period  = 500 * sim.Millisecond
		reqCost = 6 * sim.Millisecond
		clients = 16
	)
	env := o.Env
	class := o.Class
	if class == "" {
		class = balanceClass(o.Policy)
	}
	// 12 actors per initial server keeps per-actor load small enough that
	// balance can land any fleet size in the envelope inside a policy's
	// hysteresis band (the abstraction assumes perfectly divisible load).
	frontends := 12 * env.InitServers

	loadAt := func(i int) int {
		switch {
		case i < len(o.Loads):
			return o.Loads[i]
		case o.CycleFrom >= 0 && o.CycleFrom < len(o.Loads):
			cyc := o.Loads[o.CycleFrom:]
			return cyc[(i-len(o.Loads))%len(cyc)]
		case len(o.Loads) > 0:
			return o.Loads[len(o.Loads)-1]
		default:
			return env.InitLoad
		}
	}

	// Open-loop client rate: baseline is the schedule's first level; the
	// multiplier tracks the schedule period by period.
	base := loadAt(0)
	if base < 1 {
		base = 1
	}
	ratePerLoad := 1 / (float64(env.PerServer) * reqCost.Seconds())
	baseEvery := sim.Duration(float64(clients) / (float64(base) * ratePerLoad) * float64(sim.Second))
	rate := func(t sim.Time) float64 {
		lvl := loadAt(int(t / sim.Time(period)))
		if lvl < 1 {
			lvl = 1
		}
		return float64(lvl) / float64(base)
	}

	log := &scaleLog{}
	cfg := Config{Seed: o.Seed, Trace: trace.New(log)}
	out := burstRun(cfg, o.Seed, burstOpts{
		servers: env.InitServers, frontends: frontends, class: class,
		policy: o.Policy, specs: replaySpecs(env),
		numGEMs: 1, period: period,
		total:   sim.Duration(o.Periods) * period,
		clients: clients, baseEvery: baseEvery, rate: rate,
		reqCost: reqCost, mailboxCap: 64, sloMS: 50,
		scaleIn: true, minServers: env.MinServers,
	})

	r := ReplayOut{
		StatOuts: out.scaleOuts, StatIns: out.scaleIns,
		FinalSrv: out.finalSrv, Shed: out.shed,
	}
	last := trace.Kind(0)
	seen := false
	for _, rec := range log.recs {
		if rec.Kind == trace.KindScaleOut {
			r.ScaleOuts++
		} else {
			r.ScaleIns++
		}
		if seen && rec.Kind != last {
			r.Flips++
		}
		last, seen = rec.Kind, true
	}
	return r
}

// balanceClass extracts the actor class the policy's first balance
// behavior covers — a replayed policy must govern the actors the replay
// spawns, or balance plans nothing while scale-out pressure persists.
func balanceClass(src string) string {
	pol, err := epl.Parse(src)
	if err != nil {
		return "Worker"
	}
	for _, r := range pol.Rules {
		for _, b := range r.Behaviors {
			if bb, ok := b.(*epl.BalanceBeh); ok && len(bb.Types) > 0 {
				return bb.Types[0]
			}
		}
	}
	return "Worker"
}

// replaySpecs builds the provisioning spectrum from the envelope's
// classes with near-instant, infallible boots — the model abstracts boot
// latency away, so the replay must not reintroduce it.
func replaySpecs(env model.Envelope) []cluster.ProvSpec {
	var specs []cluster.ProvSpec
	for _, cl := range env.Classes {
		pc, ok := cluster.ProvClassFromString(cl.Name)
		if !ok {
			continue
		}
		specs = append(specs, cluster.ProvSpec{
			Class: pc, BootMin: 20 * sim.Millisecond, BootMax: 40 * sim.Millisecond,
			Capacity: cl.Cap,
		})
	}
	return specs
}

// DriftWalk rolls the envelope's drift distribution forward, returning a
// per-period load schedule for the property sweeps. The generator is a
// self-contained LCG so sweeps are reproducible byte for byte at a fixed
// seed (and the determinism linter stays quiet).
func DriftWalk(env model.Envelope, periods int, seed uint64) []int {
	loads := make([]int, periods)
	x := seed*2862933555777941757 + 3037000493
	load := env.InitLoad
	for i := range loads {
		x = x*6364136223846793005 + 1442695040888963407
		u := float64(x>>11) / float64(1<<53)
		d := 0 // no-change fallback guards float round-off
		acc := 0.0
		for j, p := range env.DriftProbs {
			acc += p
			if u < acc {
				d = j - env.Drift
				break
			}
		}
		load += d
		if load < env.MinLoad {
			load = env.MinLoad
		}
		if load > env.MaxLoad {
			load = env.MaxLoad
		}
		loads[i] = load
	}
	return loads
}
