package experiments

import (
	"fmt"
	"strings"

	"plasma/internal/actor"
	"plasma/internal/apps/halo"
	"plasma/internal/apps/mediaservice"
	"plasma/internal/apps/pagerank"
	"plasma/internal/chaos"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/graph"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// Chaos is the deterministic fault-injection harness: PageRank, the Media
// Service, and Halo each run under randomized-but-seeded fault schedules —
// control-plane message drops/delays/duplicates plus machine, GEM, and LEM
// crash/recovery pairs — and a global invariant sweep is asserted at the
// end of every run: no actor lost, duplicated, or stuck mid-migration; no
// machine's memory accounting drifted; and the application is serving again
// within two elasticity periods of the last fault. The same seed replays
// the same faults bit for bit (see the injector trace), which is what turns
// §4.3's graceful-degradation claims into checkable assertions.
func Chaos(cfg Config) *Result {
	r := newResult("chaos", "Invariants under seeded control-plane and crash fault schedules")
	r.Header = []string{"App", "Seed", "Dropped", "Dup", "Delayed", "Crashes", "CtlFails", "Migrations", "Failed", "Denied", "Invariants"}

	seeds := []int64{cfg.seed(), cfg.seed() + 1, cfg.seed() + 2}
	apps := []struct {
		name string
		run  func(Config, int64) chaosRun
	}{
		{"pagerank", chaosPagerank},
		{"mediaservice", chaosMediaService},
		{"halo", chaosHalo},
	}

	runs, violations := 0, 0
	var faults, crashes, migrations int
	for _, app := range apps {
		for _, seed := range seeds {
			cr := app.run(cfg, seed)
			runs++
			violations += len(cr.violations)
			st := cr.injStats
			faults += st.TotalDropped() + st.TotalDuplicated() + st.TotalDelayed()
			crashes += cr.crashes
			migrations += cr.emrStats.ExecutedMigrations
			verdict := "ok"
			if len(cr.violations) > 0 {
				verdict = strings.Join(cr.violations, "; ")
			}
			r.addRow(app.name, fmt.Sprintf("%d", seed),
				fmt.Sprintf("%d", st.TotalDropped()),
				fmt.Sprintf("%d", st.TotalDuplicated()),
				fmt.Sprintf("%d", st.TotalDelayed()),
				fmt.Sprintf("%d", cr.crashes),
				fmt.Sprintf("%d", cr.ctlFails),
				fmt.Sprintf("%d", cr.emrStats.ExecutedMigrations),
				fmt.Sprintf("%d", cr.emrStats.QueryTimeouts+cr.failedMigs),
				fmt.Sprintf("%d", cr.emrStats.DeniedAdmissions),
				verdict)
		}
	}
	r.Summary["runs"] = float64(runs)
	r.Summary["invariant_violations"] = float64(violations)
	r.Summary["msg_faults"] = float64(faults)
	r.Summary["crashes"] = float64(crashes)
	r.Summary["migrations"] = float64(migrations)
	r.notef("every run asserts: no actor lost/duplicated/stuck, memory accounting exact, serving resumes within 2 periods of the last fault")
	return r
}

// chaosRun is one application's outcome under one seeded fault schedule.
type chaosRun struct {
	trace      []string // injector fault trace (bit-identical across replays)
	dir        string   // final actor directory, "id@srv ..." in id order
	injStats   chaos.Stats
	emrStats   emr.Stats
	failedMigs int
	crashes    int // machine crash events applied
	ctlFails   int // GEM+LEM crash events applied
	violations []string
}

// chaosEnv bridges a fault schedule to the cluster, runtime, and EMR. It
// refuses crashes that would drop the fleet below floor or touch protected
// (client-site) machines; a machine crash is immediately followed by the
// underlying runtime's fault tolerance re-homing the dead machine's actors
// (§2.2), exactly as the EMR machine-failure tests do.
type chaosEnv struct {
	c         *cluster.Cluster
	rt        *actor.Runtime
	m         *emr.Manager
	floor     int
	protected map[cluster.MachineID]bool

	crashes  int
	ctlFails int
}

func (e *chaosEnv) CrashMachine(id int) bool {
	mid := cluster.MachineID(id)
	if e.protected[mid] || e.c.UpCount() <= e.floor {
		return false
	}
	if !e.c.Fail(mid) {
		return false
	}
	e.rt.RecoverMachine(mid)
	e.crashes++
	return true
}

func (e *chaosEnv) RepairMachine(id int) bool { return e.c.Repair(cluster.MachineID(id)) }

func (e *chaosEnv) FailGEM(id int) bool {
	if !e.m.FailGEM(id) {
		return false
	}
	e.ctlFails++
	return true
}

func (e *chaosEnv) RecoverGEM(id int) bool { return e.m.RecoverGEM(id) }

func (e *chaosEnv) FailLEM(srv int) bool {
	mid := cluster.MachineID(srv)
	if e.protected[mid] || !e.m.FailLEM(mid) {
		return false
	}
	e.ctlFails++
	return true
}

func (e *chaosEnv) RecoverLEM(srv int) bool { return e.m.RecoverLEM(cluster.MachineID(srv)) }

// chaosInvariants is the global sweep every run ends with: no migration
// stuck in flight, every actor homed on an up machine, and each up
// machine's memory accounting exactly the sum of its residents' state.
func chaosInvariants(c *cluster.Cluster, rt *actor.Runtime) []string {
	var bad []string
	if n := rt.InFlightMigrations(); n != 0 {
		bad = append(bad, fmt.Sprintf("%d migrations stuck in flight", n))
	}
	seen := 0
	for _, mach := range c.Machines() {
		on := rt.ActorsOn(mach.ID)
		seen += len(on)
		if !mach.Up() && len(on) > 0 {
			bad = append(bad, fmt.Sprintf("%d actors homed on down machine %d", len(on), mach.ID))
			continue
		}
		if mach.Up() {
			var sum int64
			for _, ref := range on {
				sum += rt.MemSize(ref)
			}
			if sum != mach.MemUsed() {
				bad = append(bad, fmt.Sprintf("machine %d memory drift: accounted %d, actors hold %d",
					mach.ID, mach.MemUsed(), sum))
			}
		}
	}
	if total := len(rt.Actors()); seen != total {
		bad = append(bad, fmt.Sprintf("directory mismatch: %d placed vs %d live (actor lost or duplicated)", seen, total))
	}
	return bad
}

// finalDirectory renders the actor directory for bit-identity comparison.
func finalDirectory(rt *actor.Runtime) string {
	var sb strings.Builder
	for _, ref := range rt.Actors() {
		fmt.Fprintf(&sb, "%d@%d ", ref.ID, rt.ServerOf(ref))
	}
	return sb.String()
}

// lastEventTime is when the schedule's final event (fault or recovery) fires.
func lastEventTime(events []chaos.Event) sim.Time {
	var last sim.Time
	for _, ev := range events {
		if ev.At > last {
			last = ev.At
		}
	}
	return last
}

// chaosMsgFaults is the message-fault mix every app runs under: light loss,
// duplication, and delay on all four control-plane message kinds.
var chaosMsgFaults = chaos.Faults{DropProb: 0.10, DupProb: 0.05, DelayProb: 0.10, MaxDelay: 5 * sim.Millisecond}

// chaosPagerank runs the PageRank computation under control-plane chaos
// (message faults plus GEM/LEM crash pairs; no machine crashes — a
// synchronous barrier workload cannot survive the simulator's loss of
// in-process messages, and machine-crash recovery is covered by the other
// two apps). The liveness invariant is completion: elasticity-plane chaos
// must never stall the application.
func chaosPagerank(cfg Config, seed int64) chaosRun {
	iterations := 40
	if cfg.Full {
		iterations = 80
	}
	period := 500 * sim.Millisecond
	k := cfg.kernelSeeded(seed)
	c := cluster.New(k, 4, cluster.M5Large)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	g := graph.GeneratePowerLaw(3000, 8, 2.1, seed)
	parts := graph.PartitionMultilevel(g, 8, seed)
	placement := make([]cluster.MachineID, 8)
	for i := range placement {
		placement[i] = cluster.MachineID(i % 4)
	}
	app := pagerank.Build(k, rt, pagerank.Config{
		Graph: g, Parts: parts, K: 8,
		PerEdgeCost: 55 * sim.Microsecond, SyncOverhead: 8 * sim.Millisecond,
		Iterations: iterations, HeteroSpread: 0.5,
	}, placement)

	m := emr.New(k, c, rt, prof, epl.MustParse(pagerank.PolicySrc),
		emr.Config{Period: period, NumGEMs: 2, MinResidence: period})
	cfg.wireTrace(m)
	inj := chaos.NewInjector(seed*31+7, k.Now)
	inj.SetAllFaults(chaosMsgFaults)
	m.SetChaos(inj)

	env := &chaosEnv{c: c, rt: rt, m: m, floor: 4}
	events := inj.Generate(chaos.ScheduleOpts{
		Horizon: sim.Time(20 * sim.Second),
		GEMs:    2, LEMs: []int{0, 1, 2, 3},
		GEMFails: 1, LEMFails: 2,
		MeanOutage: 4 * sim.Second,
	})
	inj.Apply(k, env, events)
	m.Start()
	app.Start(k)

	deadline := sim.Time(120 * sim.Second)
	for !app.Done && k.Now() < deadline && k.Step() {
	}
	m.Stop()
	k.Run(k.Now() + sim.Time(2*period))

	cr := chaosRun{
		trace: inj.Trace(), dir: finalDirectory(rt),
		injStats: inj.Stats, emrStats: m.Stats,
		failedMigs: rt.FailedMigrations(),
		crashes:    env.crashes, ctlFails: env.ctlFails,
		violations: chaosInvariants(c, rt),
	}
	if !app.Done {
		cr.violations = append(cr.violations, "pagerank stalled under control-plane chaos")
	}
	return cr
}

// chaosMediaService runs the Media Service under the full fault mix:
// message faults plus machine, GEM, and LEM crash/recovery pairs. Clients
// drive open-loop request streams from a protected client-site machine, and
// the liveness invariant is that requests complete after the last fault.
func chaosMediaService(cfg Config, seed int64) chaosRun {
	total := 90 * sim.Second
	if cfg.Full {
		total = 180 * sim.Second
	}
	period := 5 * sim.Second
	clientSite := cluster.MachineID(4)

	k := cfg.kernelSeeded(seed)
	c := cluster.New(k, 5, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	app := mediaservice.Build(k, rt, []cluster.MachineID{0, 1, 2, 3}, 4)
	k.RunUntilIdle()

	m := emr.New(k, c, rt, prof, epl.MustParse(mediaservice.PolicySrc),
		emr.Config{Period: period, NumGEMs: 2, MinResidence: period})
	cfg.wireTrace(m)
	inj := chaos.NewInjector(seed*31+7, k.Now)
	inj.SetAllFaults(chaosMsgFaults)
	m.SetChaos(inj)

	env := &chaosEnv{c: c, rt: rt, m: m, floor: 3,
		protected: map[cluster.MachineID]bool{clientSite: true}}
	events := inj.Generate(chaos.ScheduleOpts{
		Horizon:  sim.Time(total) * 6 / 10,
		Machines: []int{1, 2, 3},
		GEMs:     2, LEMs: []int{0, 1, 2, 3},
		Crashes: 2, GEMFails: 1, LEMFails: 1,
		MeanOutage: 8 * sim.Second,
	})
	inj.Apply(k, env, events)
	m.Start()

	recoveredAt := lastEventTime(events) + sim.Time(2*period)
	served := 0
	for i := 0; i < 8; i++ {
		i := i
		k.At(sim.Time(i)*sim.Time(250*sim.Millisecond), func() {
			_, fe := app.AddClient()
			cl := actor.NewClient(rt, clientSite)
			watch := true
			k.Every(250*sim.Millisecond, func() bool {
				if k.Now() >= sim.Time(total) {
					return false
				}
				watch = !watch
				method, size := "watch", int64(512)
				if !watch {
					method, size = "review", 2<<10
				}
				cl.Request(fe, method, nil, size, func(sim.Duration, interface{}) {
					if k.Now() >= recoveredAt {
						served++
					}
				})
				return true
			})
		})
	}
	k.Run(sim.Time(total))
	m.Stop()
	k.Run(sim.Time(total) + sim.Time(2*period))

	cr := chaosRun{
		trace: inj.Trace(), dir: finalDirectory(rt),
		injStats: inj.Stats, emrStats: m.Stats,
		failedMigs: rt.FailedMigrations(),
		crashes:    env.crashes, ctlFails: env.ctlFails,
		violations: chaosInvariants(c, rt),
	}
	if served == 0 {
		cr.violations = append(cr.violations, "no requests served after recovery window")
	}
	return cr
}

// chaosHalo runs the Halo presence service (routers, sessions, players)
// under the full fault mix, with heartbeats as the liveness probe.
func chaosHalo(cfg Config, seed int64) chaosRun {
	total := 120 * sim.Second
	if cfg.Full {
		total = 240 * sim.Second
	}
	period := 10 * sim.Second
	servers := 8

	k := cfg.kernelSeeded(seed)
	c := cluster.New(k, servers+2, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	routerSrvs := []cluster.MachineID{0, 1}
	sessionSrvs := make([]cluster.MachineID, servers)
	for i := range sessionSrvs {
		sessionSrvs[i] = cluster.MachineID(i)
	}
	app := halo.Build(k, rt, routerSrvs, sessionSrvs, 4, 8)

	m := emr.New(k, c, rt, prof, epl.MustParse(halo.FullPolicySrc),
		emr.Config{Period: period, NumGEMs: 2, MinResidence: period})
	cfg.wireTrace(m)
	inj := chaos.NewInjector(seed*31+7, k.Now)
	inj.SetAllFaults(chaosMsgFaults)
	m.SetChaos(inj)

	protected := map[cluster.MachineID]bool{
		cluster.MachineID(servers): true, cluster.MachineID(servers + 1): true,
	}
	machines := make([]int, servers)
	lems := make([]int, servers)
	for i := 0; i < servers; i++ {
		machines[i], lems[i] = i, i
	}
	env := &chaosEnv{c: c, rt: rt, m: m, floor: servers / 2, protected: protected}
	events := inj.Generate(chaos.ScheduleOpts{
		Horizon:  sim.Time(total) * 6 / 10,
		Machines: machines,
		GEMs:     2, LEMs: lems,
		Crashes: 2, GEMFails: 1, LEMFails: 2,
		MeanOutage: 10 * sim.Second,
	})
	inj.Apply(k, env, events)
	m.Start()

	recoveredAt := lastEventTime(events) + sim.Time(2*period)
	served := 0
	for i := 0; i < 12; i++ {
		i := i
		joinAt := sim.Time(i) * sim.Time(2*sim.Second)
		k.At(joinAt, func() {
			p := app.Join(i % 8)
			cl := actor.NewClient(rt, cluster.MachineID(servers+i%2))
			k.Every(200*sim.Millisecond, func() bool {
				if k.Now() >= sim.Time(total) {
					return false
				}
				app.Heartbeat(cl, p, func(sim.Duration) {
					if k.Now() >= recoveredAt {
						served++
					}
				})
				return true
			})
		})
	}
	k.Run(sim.Time(total))
	m.Stop()
	k.Run(sim.Time(total) + sim.Time(2*period))

	cr := chaosRun{
		trace: inj.Trace(), dir: finalDirectory(rt),
		injStats: inj.Stats, emrStats: m.Stats,
		failedMigs: rt.FailedMigrations(),
		crashes:    env.crashes, ctlFails: env.ctlFails,
		violations: chaosInvariants(c, rt),
	}
	if served == 0 {
		cr.violations = append(cr.violations, "no heartbeats served after recovery window")
	}
	return cr
}
