package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"plasma/internal/trace"
)

// equivShards picks the sharded side of the differential: GOMAXPROCS as
// the issue prescribes, bumped to 4 on small machines so the concurrent
// window machinery (not just the trivial 1-shard path) is exercised —
// and raced, under `go test -race` — everywhere.
func equivShards() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

// runForEquiv executes one experiment id with a capturing tracer and
// returns everything a byte-level comparison needs: the rendered report,
// the decision-trace JSONL bytes, and the kernel event count.
func runForEquiv(t *testing.T, id string, shards int) (render string, traceJSONL []byte, events uint64) {
	t.Helper()
	ring := trace.NewRing(1 << 20)
	tr := trace.New(ring)
	res, err := Run(id, Config{Seed: 1, Shards: shards, Trace: tr})
	if err != nil {
		t.Fatalf("%s (shards=%d): %v", id, shards, err)
	}
	if d := ring.Dropped(); d != 0 {
		t.Fatalf("%s (shards=%d): trace ring dropped %d records; grow the ring", id, shards, d)
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, ring.Records()); err != nil {
		t.Fatalf("%s (shards=%d): encode trace: %v", id, shards, err)
	}
	return res.Render(), buf.Bytes(), res.EventsFired
}

// TestShardEquivalenceAllQuickIDs is the tentpole's acceptance check: every
// registered experiment id, run quick at -shards=1 and at the parallel
// shard count, must produce a byte-identical rendered report, byte-identical
// decision-trace JSONL, and the same number of fired kernel events. Ids
// outside the scale family ignore Shards (their kernels stay sequential),
// so for them this doubles as a determinism regression; the scale family
// genuinely runs the concurrent window machinery on the sharded side.
func TestShardEquivalenceAllQuickIDs(t *testing.T) {
	shards := equivShards()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			seqRender, seqTrace, seqEvents := runForEquiv(t, id, 1)
			shRender, shTrace, shEvents := runForEquiv(t, id, shards)
			if seqEvents != shEvents {
				t.Errorf("events fired: sequential %d, shards=%d %d", seqEvents, shards, shEvents)
			}
			if seqRender != shRender {
				t.Errorf("rendered report diverged at shards=%d:\n--- sequential ---\n%s\n--- sharded ---\n%s",
					shards, seqRender, shRender)
			}
			if !bytes.Equal(seqTrace, shTrace) {
				t.Errorf("trace JSONL diverged at shards=%d:\n%s", shards, firstTraceDiff(seqTrace, shTrace))
			}
		})
	}
}

// firstTraceDiff locates the first differing JSONL line for a readable
// failure message (full traces run to megabytes).
func firstTraceDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\nsequential: %s\nsharded:    %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: sequential %d, sharded %d", len(al), len(bl))
}

// TestScaleShardTwinsMatch pins the registered twins against each other:
// scale_shard (4-shard kernel) and scale_shard1 (sequential reference) are
// distinct ids, so plasma-bench times them separately, but their results
// must be indistinguishable.
func TestScaleShardTwinsMatch(t *testing.T) {
	a, err := Run("scale_shard", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("scale_shard1", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("twin rows differ:\n%v\n%v", a.Rows, b.Rows)
	}
	if !reflect.DeepEqual(a.Summary, b.Summary) {
		t.Errorf("twin summaries differ:\n%v\n%v", a.Summary, b.Summary)
	}
	if a.EventsFired != b.EventsFired {
		t.Errorf("twin event counts differ: %d vs %d", a.EventsFired, b.EventsFired)
	}
	if a.Summary["migrations"] <= 0 {
		t.Error("shard twin executed no migrations; the workload is not exercising the EMR")
	}
}
