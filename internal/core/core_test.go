package core

import (
	"strings"
	"testing"

	"plasma/internal/actor"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

func TestNewSystemEndToEnd(t *testing.T) {
	sys, err := NewSystem(Options{
		Policy:   `server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`,
		Machines: 2,
		EMR:      emr.Config{Period: sim.Second, MinResidence: sim.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var refs []actor.Ref
	for i := 0; i < 4; i++ {
		b := actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
			ctx.Use(45 * sim.Millisecond)
			ctx.SendAfter(55*sim.Millisecond, ctx.Self(), "w", nil, 8)
		})
		refs = append(refs, sys.Runtime.SpawnOn("Worker", b, 0))
	}
	sys.Start()
	cl := sys.Client(1)
	for _, r := range refs {
		cl.Send(r, "w", nil, 8)
	}
	sys.Run(10 * sim.Second)
	if len(sys.Runtime.ActorsOn(1)) == 0 {
		t.Fatal("system did not balance load")
	}
}

func TestNewSystemRejectsEmptyPolicy(t *testing.T) {
	if _, err := NewSystem(Options{}); err == nil {
		t.Fatal("empty policy accepted")
	}
}

func TestNewSystemRejectsBadPolicy(t *testing.T) {
	_, err := NewSystem(Options{Policy: `server.cpu.perc >`})
	if err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestNewSystemSchemaCheck(t *testing.T) {
	_, err := NewSystem(Options{
		Policy: `server.cpu.perc > 80 => balance({Ghost}, cpu);`,
		Schema: epl.NewSchema(epl.Class("Real", nil, nil)),
	})
	if err == nil || !strings.Contains(err.Error(), "unknown actor type") {
		t.Fatalf("err = %v", err)
	}
}

func TestNewSystemSurfacesConflictWarnings(t *testing.T) {
	sys, err := NewSystem(Options{
		Policy: `
true => pin(Worker(w));
server.cpu.perc > 80 => balance({Worker}, cpu);
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Warnings) == 0 {
		t.Fatal("conflict warnings not surfaced")
	}
}

func TestSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Options{Policy: `true => pin(A(a));`})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cluster.UpCount() != 4 {
		t.Fatalf("default machines = %d, want 4", sys.Cluster.UpCount())
	}
	if sys.Cluster.Machine(0).Type.Name != "m1.small" {
		t.Fatalf("default instance = %s", sys.Cluster.Machine(0).Type.Name)
	}
}
