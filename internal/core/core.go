// Package core is PLASMA's public facade: it wires an application's actor
// program, its EPL elasticity policy, the profiling runtime (EPR), and the
// elasticity management runtime (EMR) over a simulated cluster, exposing
// the paper's programming model as one System value.
//
// Typical use:
//
//	sys, err := core.NewSystem(core.Options{
//	    Policy:   `server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`,
//	    Machines: 8,
//	})
//	...
//	w := sys.Runtime.SpawnOn("Worker", myBehavior, 0)
//	sys.Start()
//	sys.Run(5 * sim.Minute)
package core

import (
	"fmt"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// Options configures a System.
type Options struct {
	// Policy is EPL source (required).
	Policy string
	// Schema optionally declares the application's actor classes for
	// semantic checking of the policy.
	Schema *epl.Schema
	// Seed drives all randomness (default 1).
	Seed int64
	// Machines is the initial fleet size (default 4).
	Machines int
	// Instance is the machine flavor (default cluster.M1Small).
	Instance cluster.InstanceType
	// EMR tunes the elasticity management runtime.
	EMR emr.Config
}

// System bundles one PLASMA deployment: simulator, cluster, actor runtime,
// profiler, compiled policy, and elasticity manager.
type System struct {
	Kernel   *sim.Kernel
	Cluster  *cluster.Cluster
	Runtime  *actor.Runtime
	Profiler *profile.Profiler
	Policy   *epl.Policy
	Manager  *emr.Manager

	// Warnings holds the policy compiler's conflict diagnostics (§4.3).
	Warnings []epl.Warning
}

// NewSystem compiles the policy, checks it against the schema, and builds
// the full stack. The elasticity manager is created but not started; spawn
// your actors, then call Start.
func NewSystem(opts Options) (*System, error) {
	if opts.Policy == "" {
		return nil, fmt.Errorf("core: empty policy")
	}
	pol, err := epl.Parse(opts.Policy)
	if err != nil {
		return nil, err
	}
	warns, err := epl.Check(pol, opts.Schema)
	if err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Machines == 0 {
		opts.Machines = 4
	}
	if opts.Instance.Name == "" {
		opts.Instance = cluster.M1Small
	}
	if opts.EMR.InstanceType.Name == "" {
		opts.EMR.InstanceType = opts.Instance
	}

	k := sim.New(opts.Seed)
	c := cluster.New(k, opts.Machines, opts.Instance)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	mgr := emr.New(k, c, rt, prof, pol, opts.EMR)
	return &System{
		Kernel:   k,
		Cluster:  c,
		Runtime:  rt,
		Profiler: prof,
		Policy:   pol,
		Manager:  mgr,
		Warnings: warns,
	}, nil
}

// Start begins elasticity management.
func (s *System) Start() { s.Manager.Start() }

// Stop halts elasticity management.
func (s *System) Stop() { s.Manager.Stop() }

// Run advances virtual time by d.
func (s *System) Run(d sim.Duration) {
	s.Kernel.Run(s.Kernel.Now() + sim.Time(d))
}

// Client returns a request driver homed on the given machine.
func (s *System) Client(site cluster.MachineID) *actor.Client {
	return actor.NewClient(s.Runtime, site)
}
