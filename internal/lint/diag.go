// Package lint is PLASMA's static-analysis engine: a multi-pass analyzer
// over EPL policies (satisfiability, flapping, shadowing, dead declarations
// — extending the compile-time conflict detection of §4.3) plus a
// determinism linter for the simulator's Go sources, sharing one
// machine-readable Diagnostic type.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity ranks diagnostics. Error means the policy (or program) is
// defective and must not be deployed; Warning means it is suspicious and
// deserves review; Info is a style-level observation.
type Severity int

// Severity levels, ordered.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "severity?"
}

// MarshalJSON encodes severities as their names, keeping the JSON output
// stable across reorderings of the enum.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one finding: a stable code, a severity, a source position,
// a human message, and optionally a suggested fix and the policy rule
// indices involved.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	File     string   `json:"file,omitempty"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
	Fix      string   `json:"fix,omitempty"`
	Rules    []int    `json:"rules,omitempty"`
}

func (d Diagnostic) String() string {
	var sb strings.Builder
	if d.File != "" {
		sb.WriteString(d.File)
		sb.WriteByte(':')
	}
	fmt.Fprintf(&sb, "%d:%d: %s[%s]: %s", d.Line, d.Col, d.Severity, d.Code, d.Message)
	if d.Fix != "" {
		fmt.Fprintf(&sb, " (fix: %s)", d.Fix)
	}
	return sb.String()
}

// SortDiagnostics orders findings by file, position, code, then message, so
// output is deterministic regardless of pass execution order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// MaxSeverity returns the highest severity present, or Info-1 when empty.
func MaxSeverity(diags []Diagnostic) Severity {
	max := Severity(-1)
	for _, d := range diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}
