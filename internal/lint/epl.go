package lint

import (
	"fmt"
	"sort"
	"strings"

	"plasma/internal/epl"
)

// Diagnostic codes of the EPL passes. Conflict warnings from epl.Check use
// the EPL1xx range; the analyzer's own passes use EPL0xx; the scaling-state
// model checker (internal/lint/model, run via plasma-lint -model) emits the
// EPL2xx range. All codes are registered here so the ranges stay disjoint.
const (
	CodeParse       = "EPL000" // source does not parse
	CodeUnsat       = "EPL001" // condition (or a branch of it) can never be true
	CodeOutOfRange  = "EPL002" // threshold outside the statistic's domain
	CodeTautology   = "EPL003" // comparison or disjunction that is always true
	CodeFlapping    = "EPL010" // scale-up/scale-down thresholds with no hysteresis band
	CodeShadowed    = "EPL020" // rule contained in an earlier conflicting rule
	CodeUnusedVar   = "EPL030" // rule variable declared but never referenced
	CodeNondetTime  = "DET001" // wall-clock time in deterministic code
	CodeNondetRand  = "DET002" // global math/rand in deterministic code
	CodeNondetRange = "DET003" // unsorted map iteration feeding output

	// Model-checker findings (internal/lint/model). Each carries a concrete
	// counterexample path through the abstract scaling-state system.
	CodeOscillation   = "EPL200" // reachable scale-out/scale-in cycle at constant load
	CodeOverloadDead  = "EPL201" // reachable saturated state where no rule can fire
	CodeUnreachRule   = "EPL202" // rule never enabled in any reachable scaling state
	CodePoolDeadEnd   = "EPL203" // provclass preference chain exhausts with no fallthrough
	CodeProbBound     = "EPL210" // //lint:assert probabilistic bound violated
	CodeBadAnnotation = "EPL211" // malformed //lint:envelope or //lint:assert annotation
)

// Pass is one independently runnable policy analysis.
type Pass struct {
	Name string
	Doc  string
	Run  func(pol *epl.Policy, schema *epl.Schema) []Diagnostic
}

// Passes returns the EPL pass registry in execution order.
func Passes() []Pass {
	return []Pass{
		{Name: "satisfiability", Doc: "interval analysis of conditions: unsatisfiable, out-of-range, tautological", Run: satisfiabilityPass},
		{Name: "flapping", Doc: "provision/decommission threshold pairs with no hysteresis band", Run: flappingPass},
		{Name: "shadowing", Doc: "rules subsumed by earlier rules with conflicting behaviors", Run: shadowingPass},
		{Name: "unused", Doc: "rule variables never referenced by any behavior or condition", Run: unusedPass},
	}
}

// AnalyzePolicy runs every registered pass over the policy and returns the
// combined findings in deterministic order. The schema may be nil.
func AnalyzePolicy(pol *epl.Policy, schema *epl.Schema) []Diagnostic {
	var out []Diagnostic
	for _, p := range Passes() {
		out = append(out, p.Run(pol, schema)...)
	}
	SortDiagnostics(out)
	return out
}

// CheckAndAnalyze is the full front end: epl.Check (semantic errors +
// conflict warnings, converted to diagnostics) followed by the analyzer
// passes. A semantic error is returned as-is; the policy should not be used.
func CheckAndAnalyze(pol *epl.Policy, schema *epl.Schema) ([]Diagnostic, error) {
	warns, err := epl.Check(pol, schema)
	if err != nil {
		return nil, err
	}
	out := make([]Diagnostic, 0, len(warns))
	for _, w := range warns {
		out = append(out, Diagnostic{
			Code: w.Code, Severity: Warning,
			Line: w.Pos.Line, Col: w.Pos.Col,
			Message: w.Msg, Rules: w.Rules,
		})
	}
	out = append(out, AnalyzePolicy(pol, schema)...)
	SortDiagnostics(out)
	return out, nil
}

// ---- pass 1: interval / satisfiability analysis ----

func satisfiabilityPass(pol *epl.Policy, _ *epl.Schema) []Diagnostic {
	var out []Diagnostic
	for _, r := range pol.Rules {
		out = append(out, checkAtoms(r)...)
		out = append(out, checkOrTautology(r)...)

		djs, ok := toDNF(r.Cond)
		if !ok {
			continue
		}
		dead := 0
		var firstDead *disjunct
		var deadKey string
		for _, d := range djs {
			if key, bad := d.unsat(); bad {
				dead++
				if firstDead == nil {
					firstDead, deadKey = d, key
				}
			}
		}
		switch {
		case dead == len(djs):
			fi := firstDead.ivs[deadKey]
			out = append(out, Diagnostic{
				Code: CodeUnsat, Severity: Error,
				Line: r.Pos.Line, Col: r.Pos.Col, Rules: []int{r.Index},
				Message: fmt.Sprintf("rule #%d can never fire: no value of %s satisfies its condition (empty interval on %s)",
					r.Index, deadKey, fi.iv),
				Fix: "widen or remove one of the contradictory bounds",
			})
		case dead > 0:
			out = append(out, Diagnostic{
				Code: CodeUnsat, Severity: Warning,
				Line: firstDead.pos.Line, Col: firstDead.pos.Col, Rules: []int{r.Index},
				Message: fmt.Sprintf("rule #%d: %d of %d condition branches can never be true (empty interval on %s)",
					r.Index, dead, len(djs), deadKey),
				Fix: "delete the dead branch or fix its bounds",
			})
		}
	}
	return out
}

// checkAtoms flags individual comparisons whose threshold lies outside the
// statistic's domain (EPL002) or which are satisfied by every value in it
// (EPL003).
func checkAtoms(r *epl.Rule) []Diagnostic {
	var out []Diagnostic
	walkCmps(r.Cond, func(c *epl.CmpCond) {
		dom := domainFor(c.Stat)
		if c.Stat == epl.Perc && (c.Val < 0 || c.Val > 100) {
			out = append(out, Diagnostic{
				Code: CodeOutOfRange, Severity: Warning,
				Line: c.Pos.Line, Col: c.Pos.Col, Rules: []int{r.Index},
				Message: fmt.Sprintf("threshold %g of %q is outside the perc domain [0, 100]", c.Val, c.String()),
				Fix:     "use a threshold in [0, 100]",
			})
		}
		if c.Stat != epl.Perc && c.Val < 0 {
			out = append(out, Diagnostic{
				Code: CodeOutOfRange, Severity: Warning,
				Line: c.Pos.Line, Col: c.Pos.Col, Rules: []int{r.Index},
				Message: fmt.Sprintf("threshold %g of %q is negative; %s is never below 0", c.Val, c.String(), c.Stat),
				Fix:     "use a non-negative threshold",
			})
		}
		if dom.constrain(c.Op, c.Val).contains(dom) {
			out = append(out, Diagnostic{
				Code: CodeTautology, Severity: Warning,
				Line: c.Pos.Line, Col: c.Pos.Col, Rules: []int{r.Index},
				Message: fmt.Sprintf("comparison %q is true for every %s value in %s", c.String(), c.Stat, dom),
				Fix:     "delete the comparison or tighten its bound",
			})
		}
	})
	return out
}

// checkOrTautology flags disjunctions over the same feature whose interval
// union covers the whole domain — "x > 50 or x < 60" is always true, so
// the rule degenerates to an unconditional behavior.
func checkOrTautology(r *epl.Rule) []Diagnostic {
	var out []Diagnostic
	var walk func(c epl.Cond)
	walk = func(c epl.Cond) {
		switch cond := c.(type) {
		case *epl.AndCond:
			walk(cond.L)
			walk(cond.R)
		case *epl.OrCond:
			walk(cond.L)
			walk(cond.R)
			lKey, lIv, lOK := singleFeature(cond.L)
			rKey, rIv, rOK := singleFeature(cond.R)
			if lOK && rOK && lKey == rKey && covers(lIv.iv, rIv.iv, domainFor(lIv.stat)) {
				out = append(out, Diagnostic{
					Code: CodeTautology, Severity: Warning,
					Line: lIv.pos.Line, Col: lIv.pos.Col, Rules: []int{r.Index},
					Message: fmt.Sprintf("disjunction over %s is always true: %s and %s cover the whole domain %s",
						lKey, lIv.iv, rIv.iv, domainFor(lIv.stat)),
					Fix: "leave a gap between the bounds (hysteresis band)",
				})
			}
		}
	}
	walk(r.Cond)
	return out
}

// singleFeature reduces a condition to one feature interval when it
// constrains exactly one feature and nothing else.
func singleFeature(c epl.Cond) (string, featIv, bool) {
	djs, ok := toDNF(c)
	if !ok || len(djs) != 1 {
		return "", featIv{}, false
	}
	d := djs[0]
	if len(d.ivs) != 1 || len(d.atoms) != 0 {
		return "", featIv{}, false
	}
	for key, fi := range d.ivs {
		return key, fi, true
	}
	return "", featIv{}, false
}

// walkCmps is epl.WalkCmps; the alias keeps the passes' call sites short.
func walkCmps(c epl.Cond, f func(*epl.CmpCond)) { epl.WalkCmps(c, f) }

// ---- pass 2: flapping detection ----

// trigger is one server-utilization threshold extracted from a rule
// condition: an upper trigger ("perc > 80") fires the rule on high load
// (provision class), a lower trigger ("perc < 50") on low load
// (decommission class).
type trigger struct {
	rule  int
	res   epl.Resource
	val   float64
	upper bool
	pos   epl.Pos
}

// flappingPass pairs provision-class triggers with decommission-class
// triggers on the same server resource, for rules whose resource behaviors
// affect overlapping actor types, and warns when the scale-up threshold
// does not exceed the scale-down threshold: with no hysteresis band, any
// load between the two fires both directions every period — the
// oscillation the paper's elasticity period is meant to damp.
func flappingPass(pol *epl.Policy, _ *epl.Schema) []Diagnostic {
	var ups, downs []trigger
	types := map[int]map[string]bool{}
	for _, r := range pol.Rules {
		if !r.HasResourceBehavior() {
			continue
		}
		types[r.Index] = resourceTypes(pol, r)
		walkCmps(r.Cond, func(c *epl.CmpCond) {
			rf, ok := c.Feat.(*epl.ResFeature)
			if !ok || !rf.Server || c.Stat != epl.Perc {
				return
			}
			t := trigger{rule: r.Index, res: rf.Res, val: c.Val, pos: c.Pos}
			switch c.Op {
			case epl.GT, epl.GE:
				t.upper = true
				ups = append(ups, t)
			case epl.LT, epl.LE:
				downs = append(downs, t)
			}
		})
	}

	var out []Diagnostic
	seen := map[[2]int]bool{}
	for _, up := range ups {
		for _, down := range downs {
			if up.res != down.res {
				continue
			}
			if !overlap(types[up.rule], types[down.rule]) {
				continue
			}
			key := [2]int{up.rule, down.rule}
			if seen[key] {
				continue
			}
			band := up.val - down.val
			if band > 0 {
				continue
			}
			seen[key] = true
			where := fmt.Sprintf("rules #%d and #%d", up.rule, down.rule)
			if up.rule == down.rule {
				where = fmt.Sprintf("rule #%d", up.rule)
			}
			out = append(out, Diagnostic{
				Code: CodeFlapping, Severity: Warning,
				Line: up.pos.Line, Col: up.pos.Col,
				Rules: ruleSet(up.rule, down.rule),
				Message: fmt.Sprintf("%s flap on server.%s.perc: scale-up threshold %g minus scale-down threshold %g leaves no hysteresis band (%g)",
					where, up.res, up.val, down.val, band),
				Fix: fmt.Sprintf("separate the thresholds, e.g. scale up above %g and down below %g", up.val, up.val-10),
			})
		}
	}
	return out
}

// resourceTypes is the set of actor types a rule's resource behaviors act
// on, expanded through the schema hierarchy compiled by Check.
func resourceTypes(pol *epl.Policy, r *epl.Rule) map[string]bool {
	set := map[string]bool{}
	for _, b := range r.Behaviors {
		switch beh := b.(type) {
		case *epl.BalanceBeh:
			for _, t := range beh.Types {
				for _, x := range pol.Expand(t) {
					set[x] = true
				}
			}
		case *epl.ReserveBeh:
			for _, x := range pol.Expand(beh.Actor.Type()) {
				set[x] = true
			}
		case *epl.ProvClassBeh:
			// provclass steers the fleet-wide scale-out decision, so its
			// triggers pair with every resource rule's: a provclass-guarded
			// scale-up threshold can flap against any scale-down threshold.
			set[epl.AnyType] = true
		}
	}
	return set
}

// overlap reports whether two type sets intersect, with AnyType matching
// every type.
func overlap(a, b map[string]bool) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	if a[epl.AnyType] || b[epl.AnyType] {
		return true
	}
	for t := range a {
		if b[t] {
			return true
		}
	}
	return false
}

func ruleSet(rules ...int) []int {
	set := map[int]bool{}
	for _, r := range rules {
		set[r] = true
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// ---- pass 3: rule subsumption / shadowing ----

// shadowingPass flags a rule whose condition region is contained in an
// earlier rule's region while their behaviors demand contradictory
// placements for overlapping actor types: whenever the later rule fires,
// the earlier one fires too, and the runtime resolves the clash by
// priority every single period.
func shadowingPass(pol *epl.Policy, _ *epl.Schema) []Diagnostic {
	type ruleDNF struct {
		djs []*disjunct
		ok  bool
	}
	dnfs := make([]ruleDNF, len(pol.Rules))
	for i, r := range pol.Rules {
		djs, ok := toDNF(r.Cond)
		dnfs[i] = ruleDNF{djs, ok}
	}

	var out []Diagnostic
	for j := 1; j < len(pol.Rules); j++ {
		if !dnfs[j].ok {
			continue
		}
		for i := 0; i < j; i++ {
			if !dnfs[i].ok {
				continue
			}
			if !regionContained(dnfs[j].djs, dnfs[i].djs) {
				continue
			}
			desc, clash := behaviorsClash(pol, pol.Rules[i], pol.Rules[j])
			if !clash {
				continue
			}
			rj := pol.Rules[j]
			out = append(out, Diagnostic{
				Code: CodeShadowed, Severity: Warning,
				Line: rj.Pos.Line, Col: rj.Pos.Col,
				Rules: []int{i, j},
				Message: fmt.Sprintf("rule #%d is shadowed by earlier rule #%d: its condition is contained in rule #%d's and their behaviors conflict (%s)",
					j, i, i, desc),
				Fix: "reorder the rules, disjoin their conditions, or drop one behavior",
			})
		}
	}
	return out
}

// regionContained reports whether every disjunct of inner lies inside some
// disjunct of outer — inner's condition implies outer's.
func regionContained(inner, outer []*disjunct) bool {
	for _, di := range inner {
		held := false
		for _, do := range outer {
			if di.containedIn(do) {
				held = true
				break
			}
		}
		if !held {
			return false
		}
	}
	return true
}

// behSummary is a rule's placement demands by expanded actor type.
type behSummary struct {
	coloc    map[string]map[string]bool // unordered expanded type pairs
	sep      map[string]map[string]bool
	pinned   map[string]bool
	balanced map[string]bool
	reserved map[string]bool
	prov     []string // provclass preference chain, behavior order
}

func summarize(pol *epl.Policy, r *epl.Rule) behSummary {
	s := behSummary{
		coloc: map[string]map[string]bool{}, sep: map[string]map[string]bool{},
		pinned: map[string]bool{}, balanced: map[string]bool{}, reserved: map[string]bool{},
	}
	addPair := func(m map[string]map[string]bool, a, b string) {
		for _, xa := range pol.Expand(a) {
			for _, xb := range pol.Expand(b) {
				lo, hi := xa, xb
				if lo > hi {
					lo, hi = hi, lo
				}
				if m[lo] == nil {
					m[lo] = map[string]bool{}
				}
				m[lo][hi] = true
			}
		}
	}
	addSet := func(m map[string]bool, t string) {
		for _, x := range pol.Expand(t) {
			m[x] = true
		}
	}
	for _, b := range r.Behaviors {
		switch beh := b.(type) {
		case *epl.ColocateBeh:
			addPair(s.coloc, beh.A.Type(), beh.B.Type())
		case *epl.SeparateBeh:
			addPair(s.sep, beh.A.Type(), beh.B.Type())
		case *epl.PinBeh:
			addSet(s.pinned, beh.Actor.Type())
		case *epl.BalanceBeh:
			for _, t := range beh.Types {
				addSet(s.balanced, t)
			}
		case *epl.ReserveBeh:
			addSet(s.reserved, beh.Actor.Type())
		case *epl.ProvClassBeh:
			s.prov = append(s.prov, beh.Classes...)
		}
	}
	return s
}

// behaviorsClash reports whether two rules' behaviors demand contradictory
// placements for overlapping types, mirroring the §4.3 conflict classes.
func behaviorsClash(pol *epl.Policy, ri, rj *epl.Rule) (string, bool) {
	a, b := summarize(pol, ri), summarize(pol, rj)
	if p, ok := pairsIntersect(a.coloc, b.sep); ok {
		return "colocate vs separate of " + p, true
	}
	if p, ok := pairsIntersect(b.coloc, a.sep); ok {
		return "colocate vs separate of " + p, true
	}
	for _, clash := range []struct {
		x, y map[string]bool
		desc string
	}{
		{a.pinned, b.balanced, "pin vs balance"},
		{b.pinned, a.balanced, "pin vs balance"},
		{a.pinned, b.reserved, "pin vs reserve"},
		{b.pinned, a.reserved, "pin vs reserve"},
		{a.reserved, b.balanced, "reserve vs balance"},
		{b.reserved, a.balanced, "reserve vs balance"},
	} {
		if overlap(clash.x, clash.y) {
			return clash.desc + " of type " + overlapName(clash.x, clash.y), true
		}
	}
	// Two provclass chains in the same region fight over the scale-out
	// preference order: the EMR rebuilds it from fired rules every period,
	// so the shadowed rule's chain is overridden (or overrides) silently.
	if len(a.prov) > 0 && len(b.prov) > 0 && !equalChains(a.prov, b.prov) {
		return fmt.Sprintf("provclass preference {%s} vs {%s}",
			strings.Join(a.prov, ", "), strings.Join(b.prov, ", ")), true
	}
	return "", false
}

func equalChains(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pairsIntersect(a, b map[string]map[string]bool) (string, bool) {
	los := make([]string, 0, len(a))
	for lo := range a {
		los = append(los, lo)
	}
	sort.Strings(los)
	for _, lo := range los {
		his := make([]string, 0, len(a[lo]))
		for hi := range a[lo] {
			his = append(his, hi)
		}
		sort.Strings(his)
		for _, hi := range his {
			if b[lo][hi] {
				return fmt.Sprintf("types %q and %q", lo, hi), true
			}
		}
	}
	return "", false
}

func overlapName(a, b map[string]bool) string {
	if a[epl.AnyType] || b[epl.AnyType] {
		names := make([]string, 0, len(a)+len(b))
		for t := range a {
			names = append(names, t)
		}
		for t := range b {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			if t != epl.AnyType {
				return fmt.Sprintf("%q", t)
			}
		}
		return fmt.Sprintf("%q", epl.AnyType)
	}
	names := make([]string, 0, len(a))
	for t := range a {
		if b[t] {
			names = append(names, t)
		}
	}
	sort.Strings(names)
	return fmt.Sprintf("%q", names[0])
}

// ---- pass 4: unused declarations ----

// unusedPass flags rule variables that are declared (Type(v)) but never
// referenced again by any condition atom or behavior: the declaration
// could be an anonymous pattern, and an unused name usually means the
// author meant to constrain something and did not.
func unusedPass(pol *epl.Policy, _ *epl.Schema) []Diagnostic {
	var out []Diagnostic
	for _, r := range pol.Rules {
		uses := map[*epl.VarDecl]int{}
		for _, ref := range ruleRefs(r) {
			// A use is a ref bound to the decl other than the declaring
			// occurrence itself (which carries the type name).
			if ref.Decl != nil && ref.TypeName == "" {
				uses[ref.Decl]++
			}
		}
		for _, v := range r.Vars {
			if uses[v] > 0 {
				continue
			}
			out = append(out, Diagnostic{
				Code: CodeUnusedVar, Severity: Info,
				Line: v.Pos.Line, Col: v.Pos.Col, Rules: []int{r.Index},
				Message: fmt.Sprintf("rule #%d declares variable %q but never references it", r.Index, v.Name),
				Fix:     fmt.Sprintf("use the anonymous pattern %s instead of %s(%s)", v.Type, v.Type, v.Name),
			})
		}
	}
	return out
}

// ruleRefs collects every actor reference in a rule, conditions and
// behaviors alike.
func ruleRefs(r *epl.Rule) []*epl.ActorRef {
	var refs []*epl.ActorRef
	add := func(rs ...*epl.ActorRef) {
		for _, ref := range rs {
			if ref != nil {
				refs = append(refs, ref)
			}
		}
	}
	var walk func(c epl.Cond)
	walk = func(c epl.Cond) {
		switch cond := c.(type) {
		case *epl.AndCond:
			walk(cond.L)
			walk(cond.R)
		case *epl.OrCond:
			walk(cond.L)
			walk(cond.R)
		case *epl.InRefCond:
			add(cond.Sub, cond.Container)
		case *epl.CmpCond:
			switch f := cond.Feat.(type) {
			case *epl.ResFeature:
				if !f.Server {
					add(f.Actor)
				}
			case *epl.CallFeature:
				add(f.Callee)
				if !f.Client {
					add(f.Caller)
				}
			}
		}
	}
	walk(r.Cond)
	for _, b := range r.Behaviors {
		switch beh := b.(type) {
		case *epl.ReserveBeh:
			add(beh.Actor)
		case *epl.ColocateBeh:
			add(beh.A, beh.B)
		case *epl.SeparateBeh:
			add(beh.A, beh.B)
		case *epl.PinBeh:
			add(beh.Actor)
		}
	}
	return refs
}

// describeRules renders rule indices for messages: "#1, #3".
func describeRules(rules []int) string {
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = fmt.Sprintf("#%d", r)
	}
	return strings.Join(parts, ", ")
}
