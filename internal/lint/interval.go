package lint

import (
	"fmt"
	"math"

	"plasma/internal/epl"
)

// interval is a numeric range with open/closed endpoints, used to model
// the set of feature values satisfying a conjunction of comparisons.
type interval struct {
	lo, hi         float64
	loOpen, hiOpen bool
}

// domainFor is the full value range of a feature statistic: utilization
// percentages live in [0,100], counts and sizes in [0,+inf).
func domainFor(stat epl.Stat) interval {
	if stat == epl.Perc {
		return interval{lo: 0, hi: 100}
	}
	return interval{lo: 0, hi: math.Inf(1), hiOpen: true}
}

// constrain intersects the interval with "value op bound".
func (iv interval) constrain(op epl.CmpOp, v float64) interval {
	switch op {
	case epl.LT:
		if v < iv.hi || (v == iv.hi && !iv.hiOpen) {
			iv.hi, iv.hiOpen = v, true
		}
	case epl.LE:
		if v < iv.hi {
			iv.hi, iv.hiOpen = v, false
		}
	case epl.GT:
		if v > iv.lo || (v == iv.lo && !iv.loOpen) {
			iv.lo, iv.loOpen = v, true
		}
	case epl.GE:
		if v > iv.lo {
			iv.lo, iv.loOpen = v, false
		}
	}
	return iv
}

// empty reports whether no value satisfies the interval.
func (iv interval) empty() bool {
	if iv.lo > iv.hi {
		return true
	}
	return iv.lo == iv.hi && (iv.loOpen || iv.hiOpen)
}

// contains reports whether other is a subset of iv.
func (iv interval) contains(other interval) bool {
	if other.empty() {
		return true
	}
	loOK := iv.lo < other.lo || (iv.lo == other.lo && (!iv.loOpen || other.loOpen))
	hiOK := iv.hi > other.hi || (iv.hi == other.hi && (!iv.hiOpen || other.hiOpen))
	return loOK && hiOK
}

// covers reports whether the union of a and b includes all of dom — the
// tautology test for "x > lo or x < hi" disjunctions.
func covers(a, b, dom interval) bool {
	if a.contains(dom) || b.contains(dom) {
		return true
	}
	lo, hi := a, b
	if b.lo < a.lo || (b.lo == a.lo && !b.loOpen && a.loOpen) {
		lo, hi = b, a
	}
	// lo must reach the domain's left edge, hi its right edge, and the two
	// must overlap (or at least touch with one side closed).
	if !(lo.lo < dom.lo || (lo.lo == dom.lo && (!lo.loOpen || dom.loOpen))) {
		return false
	}
	if !(hi.hi > dom.hi || (hi.hi == dom.hi && (!hi.hiOpen || dom.hiOpen))) {
		return false
	}
	if lo.hi > hi.lo {
		return true
	}
	return lo.hi == hi.lo && !(lo.hiOpen && hi.loOpen)
}

func (iv interval) String() string {
	l, r := "[", "]"
	if iv.loOpen {
		l = "("
	}
	if iv.hiOpen {
		r = ")"
	}
	return fmt.Sprintf("%s%g, %g%s", l, iv.lo, iv.hi, r)
}

// featKey canonically names what a CmpCond measures, so two comparisons on
// the same feature and statistic constrain the same value.
func featKey(c *epl.CmpCond) string {
	return c.Feat.String() + "." + c.Stat.String()
}

// featIv is the interval a disjunct allows for one feature.
type featIv struct {
	stat epl.Stat
	iv   interval
	pos  epl.Pos
}

// disjunct is one conjunction of a condition's disjunctive normal form:
// per-feature intervals from CmpConds plus the set of non-comparison atoms
// (InRef conditions) it requires, keyed by their canonical strings.
type disjunct struct {
	ivs   map[string]featIv
	atoms map[string]bool
	pos   epl.Pos
}

func newDisjunct(pos epl.Pos) *disjunct {
	return &disjunct{ivs: map[string]featIv{}, atoms: map[string]bool{}, pos: pos}
}

func (d *disjunct) clone() *disjunct {
	nd := newDisjunct(d.pos)
	for k, v := range d.ivs {
		nd.ivs[k] = v
	}
	for k := range d.atoms {
		nd.atoms[k] = true
	}
	return nd
}

// addCmp intersects the disjunct with one comparison atom.
func (d *disjunct) addCmp(c *epl.CmpCond) {
	key := featKey(c)
	fi, ok := d.ivs[key]
	if !ok {
		fi = featIv{stat: c.Stat, iv: domainFor(c.Stat), pos: c.Pos}
	}
	fi.iv = fi.iv.constrain(c.Op, c.Val)
	d.ivs[key] = fi
}

// unsat reports whether the disjunct is unsatisfiable, and if so on which
// feature.
func (d *disjunct) unsat() (string, bool) {
	for key, fi := range d.ivs {
		if fi.iv.empty() {
			return key, true
		}
	}
	return "", false
}

// containedIn reports whether every assignment satisfying d also satisfies
// outer: outer's intervals must contain d's (features outer leaves
// unconstrained constrain nothing), and outer's non-comparison atoms must
// all be required by d as well.
func (d *disjunct) containedIn(outer *disjunct) bool {
	for key, ofi := range outer.ivs {
		dfi, ok := d.ivs[key]
		if !ok {
			// d does not constrain this feature, so values outside outer's
			// interval satisfy d but not outer.
			if !ofi.iv.contains(domainFor(ofi.stat)) {
				return false
			}
			continue
		}
		if !ofi.iv.contains(dfi.iv) {
			return false
		}
	}
	for atom := range outer.atoms {
		if !d.atoms[atom] {
			return false
		}
	}
	return true
}

// maxDisjuncts caps DNF expansion as a runaway guard; conditions past the
// cap skip disjunct-level analyses.
const maxDisjuncts = 128

// toDNF expands a condition into disjunctive normal form. The second result
// is false when the expansion would exceed maxDisjuncts.
func toDNF(c epl.Cond) ([]*disjunct, bool) {
	switch cond := c.(type) {
	case *epl.TrueCond:
		return []*disjunct{newDisjunct(cond.Pos)}, true
	case *epl.OrCond:
		l, ok := toDNF(cond.L)
		if !ok {
			return nil, false
		}
		r, ok := toDNF(cond.R)
		if !ok {
			return nil, false
		}
		out := append(l, r...)
		return out, len(out) <= maxDisjuncts
	case *epl.AndCond:
		l, ok := toDNF(cond.L)
		if !ok {
			return nil, false
		}
		r, ok := toDNF(cond.R)
		if !ok {
			return nil, false
		}
		if len(l)*len(r) > maxDisjuncts {
			return nil, false
		}
		var out []*disjunct
		for _, dl := range l {
			for _, dr := range r {
				nd := dl.clone()
				for k, v := range dr.ivs {
					fi, ok := nd.ivs[k]
					if !ok {
						nd.ivs[k] = v
						continue
					}
					// Intersect the two interval constraints.
					iv := fi.iv
					if v.iv.lo > iv.lo || (v.iv.lo == iv.lo && v.iv.loOpen) {
						iv.lo, iv.loOpen = v.iv.lo, v.iv.loOpen
					}
					if v.iv.hi < iv.hi || (v.iv.hi == iv.hi && v.iv.hiOpen) {
						iv.hi, iv.hiOpen = v.iv.hi, v.iv.hiOpen
					}
					fi.iv = iv
					nd.ivs[k] = fi
				}
				for k := range dr.atoms {
					nd.atoms[k] = true
				}
				out = append(out, nd)
			}
		}
		return out, true
	case *epl.CmpCond:
		d := newDisjunct(cond.Pos)
		d.addCmp(cond)
		return []*disjunct{d}, true
	case *epl.InRefCond:
		d := newDisjunct(cond.Pos)
		d.atoms[cond.String()] = true
		return []*disjunct{d}, true
	}
	return nil, false
}
