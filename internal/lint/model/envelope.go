// Package model is the offline scaling-state model checker behind
// plasma-lint -model: it compiles a checked epl.Policy into a finite
// transition system over abstract scaling states (server count ×
// provisioning-pool occupancy × discretized load) closed by a workload
// envelope, and proves reachability properties the per-rule interval
// passes cannot see — oscillation cycles (EPL200), overload dead states
// (EPL201), unreachable rules (EPL202), warm-pool dead ends (EPL203), and
// probabilistic bound violations (EPL210). Every finding carries a
// concrete counterexample path; internal/experiments replays those paths
// through the real simulator to keep the abstraction honest.
package model

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/lint"
)

// Class is one provisioning class in the envelope's spectrum, in
// fallthrough order (mirrors cluster.ProvSpec).
type Class struct {
	Name string
	Cap  int // initial pool capacity; negative means unlimited
}

// Envelope closes the open system: it bounds the fleet, discretizes the
// offered load, and assigns per-period drift probabilities, turning the
// policy into a finite DTMC. One load unit is 1/PerServer of one server's
// capacity; utilization in a state is 100·load/(servers·PerServer), capped
// at 100 like a real busy fraction.
type Envelope struct {
	MinServers  int // EMR MinServers: scale-in never drops below this
	MaxServers  int // fleet ceiling closing the state space
	InitServers int

	MinLoad  int
	MaxLoad  int
	InitLoad int

	// PerServer is how many load units one server absorbs at 100%.
	PerServer int

	// Drift bounds the per-period load change; DriftProbs[i] is the
	// probability of drift i-Drift (length 2·Drift+1, sums to 1).
	Drift      int
	DriftProbs []float64

	// Classes is the provisioning spectrum in fallthrough order.
	Classes []Class

	// Resources names the server resources the load signal drives;
	// comparisons on other resources evaluate to unknown.
	Resources map[epl.Resource]bool

	// OverloadPerc is the utilization at which a state counts as
	// saturated for EPL201 and the "overload" assert event.
	OverloadPerc float64
}

// maxClasses bounds the provisioning spectrum an envelope may declare; the
// pool occupancy vector is part of the state key.
const maxClasses = 4

// DefaultEnvelope is the envelope used when the policy declares none:
// the cluster's default provisioning spectrum, a fleet of 4–32 servers
// starting at 4, load 0–24 units starting at 8 (50% on 4 servers), ±1
// unit drift per period, and the EMR's overload line at 90%.
func DefaultEnvelope() Envelope {
	return EnvelopeFor(cluster.DefaultProvSpecs())
}

// EnvelopeFor builds the default envelope over a specific provisioning
// spectrum (pool capacities feed the state space).
func EnvelopeFor(specs []cluster.ProvSpec) Envelope {
	env := Envelope{
		MinServers: 4, MaxServers: 32, InitServers: 4,
		MinLoad: 0, MaxLoad: 24, InitLoad: 8,
		PerServer: 4,
		Drift:     1, DriftProbs: []float64{0.25, 0.5, 0.25},
		Resources:    map[epl.Resource]bool{epl.CPU: true},
		OverloadPerc: 90,
	}
	for _, s := range specs {
		env.Classes = append(env.Classes, Class{Name: s.Class.String(), Cap: s.Capacity})
	}
	return env
}

func (e *Envelope) validate() error {
	switch {
	case e.MinServers < 1:
		return fmt.Errorf("servers lower bound %d must be at least 1", e.MinServers)
	case e.MaxServers < e.MinServers:
		return fmt.Errorf("servers range %d..%d is empty", e.MinServers, e.MaxServers)
	case e.InitServers < e.MinServers || e.InitServers > e.MaxServers:
		return fmt.Errorf("init servers %d outside %d..%d", e.InitServers, e.MinServers, e.MaxServers)
	case e.MaxLoad < e.MinLoad || e.MinLoad < 0:
		return fmt.Errorf("load range %d..%d is invalid", e.MinLoad, e.MaxLoad)
	case e.InitLoad < e.MinLoad || e.InitLoad > e.MaxLoad:
		return fmt.Errorf("init load %d outside %d..%d", e.InitLoad, e.MinLoad, e.MaxLoad)
	case e.PerServer < 1:
		return fmt.Errorf("perserver %d must be at least 1", e.PerServer)
	case e.Drift < 0:
		return fmt.Errorf("drift %d must be non-negative", e.Drift)
	case len(e.DriftProbs) != 2*e.Drift+1:
		return fmt.Errorf("driftprobs needs %d entries for drift %d, got %d", 2*e.Drift+1, e.Drift, len(e.DriftProbs))
	case len(e.Classes) == 0:
		return fmt.Errorf("the provisioning spectrum is empty")
	case len(e.Classes) > maxClasses:
		return fmt.Errorf("at most %d provisioning classes are supported, got %d", maxClasses, len(e.Classes))
	case e.OverloadPerc <= 0 || e.OverloadPerc > 100:
		return fmt.Errorf("overload %g outside (0, 100]", e.OverloadPerc)
	}
	sum := 0.0
	for _, p := range e.DriftProbs {
		if p < 0 {
			return fmt.Errorf("driftprobs entry %g is negative", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("driftprobs sum to %g, want 1", sum)
	}
	seen := map[string]bool{}
	for _, c := range e.Classes {
		if _, ok := cluster.ProvClassFromString(c.Name); !ok {
			return fmt.Errorf("unknown provisioning class %q (have %s)", c.Name, strings.Join(cluster.ProvClassNames(), ", "))
		}
		if seen[c.Name] {
			return fmt.Errorf("provisioning class %q listed twice", c.Name)
		}
		seen[c.Name] = true
	}
	if len(e.Resources) == 0 {
		return fmt.Errorf("no modeled resources")
	}
	return nil
}

// util is the abstract busy fraction at a load level on a fleet size.
func (e *Envelope) util(servers, load int) float64 {
	u := 100 * float64(load) / (float64(servers) * float64(e.PerServer))
	return math.Min(u, 100)
}

func (e *Envelope) clampLoad(load int) int {
	if load < e.MinLoad {
		return e.MinLoad
	}
	if load > e.MaxLoad {
		return e.MaxLoad
	}
	return load
}

// Assert is one parsed //lint:assert annotation: P(event, horizon=H) < p.
type Assert struct {
	Event   string // "overload", "scaleout", or "scalein"
	Horizon int    // periods
	Strict  bool   // true for "<", false for "<="
	Bound   float64
	Line    int
	Col     int
}

func (a Assert) String() string {
	op := "<="
	if a.Strict {
		op = "<"
	}
	return fmt.Sprintf("P(%s, horizon=%d) %s %g", a.Event, a.Horizon, op, a.Bound)
}

// Assert event names.
const (
	EventOverload = "overload"
	EventScaleOut = "scaleout"
	EventScaleIn  = "scalein"
)

const defaultHorizon = 8

// parseAnnotations scans raw policy source for //lint:envelope and
// //lint:assert lines (the EPL lexer strips comments, so annotations ride
// in them), folding envelope keys into env and returning the asserts.
// Malformed annotations become EPL211 diagnostics.
func parseAnnotations(src string, env *Envelope) (asserts []Assert, diags []lint.Diagnostic) {
	bad := func(line, col int, format string, args ...interface{}) {
		diags = append(diags, lint.Diagnostic{
			Code: lint.CodeBadAnnotation, Severity: lint.Error,
			Line: line, Col: col,
			Message: fmt.Sprintf(format, args...),
			Fix:     "see the //lint:envelope / //lint:assert grammar in README.md",
		})
	}
	for i, line := range strings.Split(src, "\n") {
		ln := i + 1
		if idx := strings.Index(line, "lint:envelope"); idx >= 0 && isComment(line, idx) {
			rest := line[idx+len("lint:envelope"):]
			for _, field := range strings.Fields(rest) {
				if err := env.set(field); err != nil {
					bad(ln, idx+1, "bad envelope field %q: %v", field, err)
				}
			}
		}
		if idx := strings.Index(line, "lint:assert"); idx >= 0 && isComment(line, idx) {
			a, err := parseAssert(line[idx+len("lint:assert"):])
			if err != nil {
				bad(ln, idx+1, "bad assert: %v", err)
				continue
			}
			a.Line, a.Col = ln, idx+1
			asserts = append(asserts, a)
		}
	}
	return asserts, diags
}

// isComment reports whether position idx of line sits after a comment
// marker (EPL comments run to end of line, so anything after // or # is
// comment text).
func isComment(line string, idx int) bool {
	head := line[:idx]
	return strings.Contains(head, "//") || strings.Contains(head, "#")
}

// set folds one key=value envelope field into the envelope.
func (e *Envelope) set(field string) error {
	key, val, ok := strings.Cut(field, "=")
	if !ok {
		return fmt.Errorf("want key=value")
	}
	switch key {
	case "servers":
		lo, hi, err := parseRange(val)
		if err != nil {
			return err
		}
		e.MinServers, e.MaxServers = lo, hi
		if e.InitServers < lo {
			e.InitServers = lo
		}
		if e.InitServers > hi {
			e.InitServers = hi
		}
	case "init":
		// init=N or init=N:LOAD
		srv, load, hasLoad := strings.Cut(val, ":")
		n, err := strconv.Atoi(srv)
		if err != nil {
			return fmt.Errorf("bad server count %q", srv)
		}
		e.InitServers = n
		if hasLoad {
			l, err := strconv.Atoi(load)
			if err != nil {
				return fmt.Errorf("bad load level %q", load)
			}
			e.InitLoad = l
		}
	case "load":
		lo, hi, err := parseRange(val)
		if err != nil {
			return err
		}
		e.MinLoad, e.MaxLoad = lo, hi
		if e.InitLoad < lo {
			e.InitLoad = lo
		}
		if e.InitLoad > hi {
			e.InitLoad = hi
		}
	case "perserver":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad count %q", val)
		}
		e.PerServer = n
	case "drift":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad drift %q", val)
		}
		e.Drift = n
		if len(e.DriftProbs) != 2*n+1 {
			// Uniform until driftprobs overrides.
			e.DriftProbs = make([]float64, 2*n+1)
			for i := range e.DriftProbs {
				e.DriftProbs[i] = 1 / float64(2*n+1)
			}
		}
	case "driftprobs":
		parts := strings.Split(val, ",")
		probs := make([]float64, 0, len(parts))
		for _, p := range parts {
			f, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return fmt.Errorf("bad probability %q", p)
			}
			probs = append(probs, f)
		}
		e.DriftProbs = probs
	case "classes":
		var classes []Class
		for _, part := range strings.Split(val, ",") {
			name, capStr, hasCap := strings.Cut(part, ":")
			c := Class{Name: name, Cap: -1}
			if hasCap {
				n, err := strconv.Atoi(capStr)
				if err != nil {
					return fmt.Errorf("bad capacity %q", capStr)
				}
				c.Cap = n
			}
			classes = append(classes, c)
		}
		e.Classes = classes
	case "res":
		res := map[epl.Resource]bool{}
		for _, part := range strings.Split(val, ",") {
			switch part {
			case "cpu":
				res[epl.CPU] = true
			case "mem":
				res[epl.Mem] = true
			case "net":
				res[epl.Net] = true
			default:
				return fmt.Errorf("unknown resource %q", part)
			}
		}
		e.Resources = res
	case "overload":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad percentage %q", val)
		}
		e.OverloadPerc = f
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

func parseRange(s string) (lo, hi int, err error) {
	a, b, ok := strings.Cut(s, "..")
	if !ok {
		return 0, 0, fmt.Errorf("want LO..HI, got %q", s)
	}
	if lo, err = strconv.Atoi(a); err != nil {
		return 0, 0, fmt.Errorf("bad lower bound %q", a)
	}
	if hi, err = strconv.Atoi(b); err != nil {
		return 0, 0, fmt.Errorf("bad upper bound %q", b)
	}
	return lo, hi, nil
}

// parseAssert parses "P(event, horizon=H) < bound" (horizon optional).
func parseAssert(s string) (Assert, error) {
	a := Assert{Horizon: defaultHorizon}
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "P(") {
		return a, fmt.Errorf("want P(event, horizon=N) < bound")
	}
	close := strings.Index(s, ")")
	if close < 0 {
		return a, fmt.Errorf("unclosed P(")
	}
	for i, part := range strings.Split(s[2:close], ",") {
		part = strings.TrimSpace(part)
		if i == 0 {
			switch part {
			case EventOverload, EventScaleOut, EventScaleIn:
				a.Event = part
			default:
				return a, fmt.Errorf("unknown event %q (want %s, %s, or %s)", part, EventOverload, EventScaleOut, EventScaleIn)
			}
			continue
		}
		val, ok := strings.CutPrefix(part, "horizon=")
		if !ok {
			return a, fmt.Errorf("unknown option %q", part)
		}
		h, err := strconv.Atoi(val)
		if err != nil || h < 1 {
			return a, fmt.Errorf("bad horizon %q", val)
		}
		a.Horizon = h
	}
	tail := strings.TrimSpace(s[close+1:])
	switch {
	case strings.HasPrefix(tail, "<="):
		tail = tail[2:]
	case strings.HasPrefix(tail, "<"):
		a.Strict = true
		tail = tail[1:]
	default:
		return a, fmt.Errorf("want < or <= after P(...)")
	}
	bound, err := strconv.ParseFloat(strings.TrimSpace(tail), 64)
	if err != nil {
		return a, fmt.Errorf("bad bound %q", strings.TrimSpace(tail))
	}
	a.Bound = bound
	return a, nil
}
