package model

import (
	"fmt"

	"plasma/internal/lint"
)

// checkAssert verifies one //lint:assert P(event, horizon=H) < p bound by
// bounded value iteration over the DTMC: p_k(s) is the probability the
// event occurs within k periods starting from s, with event states
// absorbing. The computed P from the initial state is compared against
// the asserted bound; a violation carries the greedy highest-probability
// witness path.
func (sys *System) checkAssert(a Assert) []Finding {
	p := sys.eventProb(a.Event, a.Horizon)
	prob := p[a.Horizon][0] // state 0 is the initial state
	violated := prob >= a.Bound
	if !a.Strict {
		violated = prob > a.Bound
	}
	if !violated {
		return nil
	}
	hops := sys.witness(a.Event, a.Horizon, p)
	steps := sys.renderEdges(hops, 0)
	op := "<="
	if a.Strict {
		op = "<"
	}
	return []Finding{{
		Diagnostic: lint.Diagnostic{
			Code: lint.CodeProbBound, Severity: lint.Error,
			Line: a.Line, Col: a.Col,
			Message: fmt.Sprintf(
				"probabilistic bound violated: P(%s within %d periods) = %.4f from the initial state (%d servers, load %d), asserted %s %g",
				a.Event, a.Horizon, prob, sys.Env.InitServers, sys.Env.InitLoad, op, a.Bound),
			Fix: "loosen the asserted bound, shorten the horizon, or make the policy react earlier",
		},
		Path:      steps,
		CycleFrom: -1,
	}}
}

// eventProb returns p[k][id]: the probability the event occurs within k
// periods from state id. "overload" is a state predicate (absorbing);
// "scaleout"/"scalein" are transition events.
func (sys *System) eventProb(event string, horizon int) [][]float64 {
	n := len(sys.states)
	p := make([][]float64, horizon+1)
	for k := range p {
		p[k] = make([]float64, n)
	}
	stateBad := sys.badStates(event)
	for id := range sys.states {
		if stateBad != nil && stateBad[id] {
			p[0][id] = 1
		}
	}
	var actBit action
	switch event {
	case EventScaleOut:
		actBit = actOut
	case EventScaleIn:
		actBit = actIn
	}
	for k := 1; k <= horizon; k++ {
		for id := range sys.states {
			if stateBad != nil && stateBad[id] {
				p[k][id] = 1
				continue
			}
			acc := 0.0
			for _, e := range sys.edges[id] {
				if actBit != 0 && e.act&actBit != 0 {
					acc += e.prob
				} else {
					acc += e.prob * p[k-1][e.to]
				}
			}
			p[k][id] = acc
		}
	}
	return p
}

// badStates returns the absorbing predicate for state events, nil for
// transition events.
func (sys *System) badStates(event string) []bool {
	if event != EventOverload {
		return nil
	}
	bad := make([]bool, len(sys.states))
	for id, s := range sys.states {
		bad[id] = sys.Env.util(int(s.Servers), int(s.Load)) >= sys.Env.OverloadPerc
	}
	return bad
}

// witness follows the locally most probable route to the event: at each
// step it takes the edge maximizing the remaining-horizon event
// probability (weighted by the edge's own probability as a tiebreaker).
func (sys *System) witness(event string, horizon int, p [][]float64) [][2]int {
	stateBad := sys.badStates(event)
	var actBit action
	switch event {
	case EventScaleOut:
		actBit = actOut
	case EventScaleIn:
		actBit = actIn
	}
	var hops [][2]int
	id := 0
	for k := horizon; k > 0; k-- {
		if stateBad != nil && stateBad[id] {
			break
		}
		best, bestScore := -1, -1.0
		for ei, e := range sys.edges[id] {
			score := p[k-1][e.to]
			if actBit != 0 && e.act&actBit != 0 {
				score = 1
			}
			// Weight by edge probability so among equally certain
			// continuations the likeliest drift is shown.
			score *= e.prob
			if score > bestScore {
				best, bestScore = ei, score
			}
		}
		if best < 0 {
			break
		}
		hops = append(hops, [2]int{id, best})
		e := sys.edges[id][best]
		if actBit != 0 && e.act&actBit != 0 {
			break
		}
		id = e.to
	}
	return hops
}
