package model

import (
	"strings"
	"testing"

	"plasma/internal/epl"
	"plasma/internal/lint"
)

func mustCheck(t *testing.T, src string) *epl.Policy {
	t.Helper()
	pol, err := epl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := epl.Check(pol, nil); err != nil {
		t.Fatal(err)
	}
	return pol
}

func TestEnvelopeAnnotationParsing(t *testing.T) {
	env := DefaultEnvelope()
	src := `
# lint:envelope servers=2..8 init=2:3 load=0..12 perserver=6 overload=95
# lint:envelope classes=warm:2,vm drift=2 driftprobs=0.1,0.2,0.4,0.2,0.1
# lint:assert P(overload, horizon=5) < 0.25
# lint:assert P(scalein) <= 0
server.cpu.perc > 80 => balance({W}, cpu);
`
	asserts, diags := parseAnnotations(src, &env)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if err := env.validate(); err != nil {
		t.Fatal(err)
	}
	if env.MinServers != 2 || env.MaxServers != 8 || env.InitServers != 2 {
		t.Errorf("servers = %d..%d init %d", env.MinServers, env.MaxServers, env.InitServers)
	}
	if env.InitLoad != 3 || env.MaxLoad != 12 || env.PerServer != 6 {
		t.Errorf("load init %d max %d perserver %d", env.InitLoad, env.MaxLoad, env.PerServer)
	}
	if env.OverloadPerc != 95 || env.Drift != 2 || len(env.DriftProbs) != 5 {
		t.Errorf("overload %g drift %d probs %v", env.OverloadPerc, env.Drift, env.DriftProbs)
	}
	if len(env.Classes) != 2 || env.Classes[0] != (Class{"warm", 2}) || env.Classes[1] != (Class{"vm", -1}) {
		t.Errorf("classes = %+v", env.Classes)
	}
	if len(asserts) != 2 {
		t.Fatalf("asserts = %+v", asserts)
	}
	if a := asserts[0]; a.Event != EventOverload || a.Horizon != 5 || !a.Strict || a.Bound != 0.25 {
		t.Errorf("assert 0 = %+v", a)
	}
	if a := asserts[1]; a.Event != EventScaleIn || a.Horizon != defaultHorizon || a.Strict || a.Bound != 0 {
		t.Errorf("assert 1 = %+v", a)
	}
}

func TestMalformedAnnotations(t *testing.T) {
	cases := []string{
		"# lint:assert P(meltdown) < 0.5\ntrue => pin(W(w));",
		"# lint:assert P(overload < 0.5\ntrue => pin(W(w));",
		"# lint:assert P(overload) ~ 0.5\ntrue => pin(W(w));",
		"# lint:assert P(overload, horizon=zero) < 0.5\ntrue => pin(W(w));",
		"# lint:envelope servers=8\ntrue => pin(W(w));",
		"# lint:envelope bogus=1\ntrue => pin(W(w));",
		"# lint:envelope driftprobs=0.5,0.5,0.5\ntrue => pin(W(w));",
		"# lint:envelope classes=quantum\ntrue => pin(W(w));",
	}
	for _, src := range cases {
		pol := mustCheck(t, src)
		findings := Check(pol, nil)
		bad := 0
		for _, f := range findings {
			if f.Code == lint.CodeBadAnnotation {
				bad++
			}
		}
		if bad == 0 {
			t.Errorf("no EPL211 for %q (got %+v)", strings.SplitN(src, "\n", 2)[0], findings)
		}
	}
}

// TestOscillationCounterexample pins the tick-by-tick counterexample for
// the seeded oscillating policy: hysteresis band of five points is
// narrower than one server's utilization jump (81.25% on 4 servers →
// 65% on 5), so the fleet provisions and drains forever at load 13.
func TestOscillationCounterexample(t *testing.T) {
	pol := mustCheck(t, `
server.cpu.perc > 80 or server.cpu.perc < 75 =>
    balance({Worker}, cpu);
`)
	findings := Check(pol, nil)
	if len(findings) != 1 || findings[0].Code != lint.CodeOscillation {
		t.Fatalf("findings = %+v, want one EPL200", findings)
	}
	f := findings[0]
	if f.CycleFrom < 0 {
		t.Fatal("no cycle marker")
	}
	cycle := f.Path[f.CycleFrom:]
	if len(cycle) != 2 {
		t.Fatalf("cycle length %d, want the 2-period out/in loop:\n%s", len(cycle), FormatPath(f))
	}
	var sawOut, sawIn bool
	for _, st := range cycle {
		if st.Drift != 0 {
			t.Errorf("cycle step drifts by %d; oscillation must hold load constant", st.Drift)
		}
		if st.Load != 13 {
			t.Errorf("cycle at load %d, want 13", st.Load)
		}
		if strings.Contains(st.Action, "scale-out") {
			sawOut = true
			if st.Servers != 4 || st.After != 5 || st.Util != 81.25 {
				t.Errorf("scale-out step = %+v, want 4→5 servers at 81.25%%", st)
			}
		}
		if strings.Contains(st.Action, "scale-in") {
			sawIn = true
			if st.Servers != 5 || st.After != 4 || st.Util != 65 {
				t.Errorf("scale-in step = %+v, want 5→4 servers at 65%%", st)
			}
		}
	}
	if !sawOut || !sawIn {
		t.Fatalf("cycle misses a direction (out %v, in %v):\n%s", sawOut, sawIn, FormatPath(f))
	}
	// The prefix must be a genuine path from the initial state.
	if f.Path[0].Servers != 4 || f.Path[0].Load-f.Path[0].Drift != 8 {
		t.Errorf("path does not start at the initial state: %+v", f.Path[0])
	}
	for i := 1; i < len(f.Path); i++ {
		if f.Path[i].Load-f.Path[i].Drift != f.Path[i-1].Load {
			t.Errorf("step %d load %d (Δ%+d) does not follow load %d",
				i, f.Path[i].Load, f.Path[i].Drift, f.Path[i-1].Load)
		}
		if f.Path[i].Servers != f.Path[i-1].After {
			t.Errorf("step %d starts at %d servers, previous ended at %d",
				i, f.Path[i].Servers, f.Path[i-1].After)
		}
	}
	// The rendered explanation names the cycle.
	text := FormatPath(f)
	if !strings.Contains(text, "cycle repeats forever") {
		t.Errorf("rendered path misses the cycle marker:\n%s", text)
	}
}

// TestProvClassPreferenceOrder asserts fired provclass chains steer which
// pool a scale-out draws from, with spectrum fallthrough on exhaustion.
func TestProvClassPreferenceOrder(t *testing.T) {
	pol := mustCheck(t, `
server.cpu.perc > 80 => balance({W}, cpu); provclass({vm});
`)
	sys := Compile(pol, DefaultEnvelope())
	c := sys.control(4, 13) // 81.25%: rule fires
	if !c.wantOut {
		t.Fatal("wantOut not set at 81.25%")
	}
	// vm preferred (slot 2), then spectrum order warm, container.
	if len(c.pref) != 3 || c.pref[0] != 2 || c.pref[1] != 0 || c.pref[2] != 1 {
		t.Errorf("pref = %v, want [2 0 1]", c.pref)
	}
	// Without a fired provclass rule the spectrum order stands.
	c = sys.control(4, 8)
	if c.wantOut || len(c.pref) != 3 || c.pref[0] != 0 {
		t.Errorf("idle ctl = %+v, want spectrum order", c)
	}
}

// TestWarmPoolDeadEndPath asserts the EPL203 counterexample actually
// drains the finite pool before stalling.
func TestWarmPoolDeadEndPath(t *testing.T) {
	pol := mustCheck(t, `
# lint:envelope classes=warm:2
server.cpu.perc > 80 =>
    balance({Worker}, cpu); provclass({warm});
`)
	findings := Check(pol, nil)
	var f *Finding
	for i := range findings {
		if findings[i].Code == lint.CodePoolDeadEnd {
			f = &findings[i]
		}
	}
	if f == nil {
		t.Fatalf("no EPL203: %+v", findings)
	}
	outs := 0
	for _, st := range f.Path {
		if strings.Contains(st.Action, "scale-out(warm)") {
			outs++
		}
	}
	if outs != 2 {
		t.Errorf("path drains %d warm slots before the stall, want 2:\n%s", outs, FormatPath(*f))
	}
	last := f.Path[len(f.Path)-1]
	if !strings.Contains(last.Action, "STALLED") {
		t.Errorf("last step is %q, want the stalled scale-out", last.Action)
	}
}

// TestThreeValuedEval pins the Kleene semantics: unknown features
// neither enable (must-fire) nor disable (may-fire) a rule.
func TestThreeValuedEval(t *testing.T) {
	pol := mustCheck(t, `
server.cpu.perc > 50 and client.call(W(w).work).perc > 10 => reserve(w, cpu);
server.mem.perc > 50 => balance({W}, mem);
`)
	sys := Compile(pol, DefaultEnvelope())
	c := sys.control(4, 13) // cpu util 81.25%
	if len(c.fired) != 0 {
		t.Errorf("fired = %v; rules with unknown features must not must-fire", c.fired)
	}
	if !c.may[0] {
		t.Error("rule 0 should be may-enabled above 50% cpu")
	}
	if !c.may[1] {
		t.Error("rule 1 (unmodeled mem) should stay may-enabled")
	}
	c = sys.control(4, 4) // cpu util 25%
	if c.may[0] {
		t.Error("rule 0 must be provably disabled below 50% cpu")
	}
}

// TestChurnCycleFlagged covers the both-directions-in-one-period case:
// inverted thresholds make periods provision and drain simultaneously,
// which is an oscillation even where fleet size never settles.
func TestChurnCycleFlagged(t *testing.T) {
	pol := mustCheck(t, `
server.cpu.perc > 60 => balance({W}, cpu);
server.cpu.perc < 75 => balance({W}, cpu);
`)
	findings := Check(pol, nil)
	found := false
	for _, f := range findings {
		if f.Code == lint.CodeOscillation {
			found = true
			cycle := f.Path[f.CycleFrom:]
			var out, in bool
			for _, st := range cycle {
				if strings.Contains(st.Action, "scale-out") {
					out = true
				}
				if strings.Contains(st.Action, "scale-in") {
					in = true
				}
			}
			if !out || !in {
				t.Errorf("cycle misses a direction (out %v, in %v):\n%s", out, in, FormatPath(f))
			}
			// The overlapping thresholds also force combined
			// provision+drain periods somewhere on the path.
			churn := false
			for _, st := range f.Path {
				if strings.Contains(st.Action, "scale-out") && strings.Contains(st.Action, "scale-in") {
					churn = true
				}
			}
			if !churn {
				t.Errorf("no combined churn period anywhere on the path:\n%s", FormatPath(f))
			}
		}
	}
	if !found {
		t.Fatal("no EPL200 for inverted thresholds")
	}
}

// TestStateSpaceStaysSmall guards the abstraction's footprint: the
// default envelope must compile typical policies into a few thousand
// states at most.
func TestStateSpaceStaysSmall(t *testing.T) {
	pol := mustCheck(t, `
server.cpu.perc > 80 or server.cpu.perc < 60 => balance({W}, cpu);
server.cpu.perc > 90 => provclass({warm, container});
`)
	sys := Compile(pol, DefaultEnvelope())
	if sys.truncated {
		t.Fatal("default envelope truncated")
	}
	if n := len(sys.states); n > 30000 {
		t.Errorf("state space has %d states, want well under 30k", n)
	}
}
