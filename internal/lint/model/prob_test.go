package model

import (
	"math"
	"testing"

	"plasma/internal/lint"
)

// TestOverloadProbabilityExact checks the DTMC bounded iteration against
// a hand-computed value. With drift probabilities (¼, ½, ¼) from load 13
// on a fixed 4-server fleet (the policy only reacts above 95%), overload
// (≥90% ⟺ load ≥ 15) within 3 periods is reached by the upward paths:
//
//	++·        ¼·¼        = 1/16
//	+0+, 0++   2·(¼·½·¼)  = 2/32
//
// for a total of 1/8.
func TestOverloadProbabilityExact(t *testing.T) {
	pol := mustCheck(t, `
# lint:envelope init=4:13
server.cpu.perc > 95 => balance({Worker}, cpu);
`)
	env := DefaultEnvelope()
	_, diags := parseAnnotations(pol.Source, &env)
	if len(diags) != 0 {
		t.Fatal(diags)
	}
	sys := Compile(pol, env)
	p := sys.eventProb(EventOverload, 3)
	if got := p[3][0]; math.Abs(got-0.125) > 1e-12 {
		t.Errorf("P(overload, horizon=3) = %v, want 0.125", got)
	}
	// Monotone in the horizon, and zero at horizon 1 (needs two +1 steps).
	if p[1][0] != 0 {
		t.Errorf("P(horizon=1) = %v, want 0", p[1][0])
	}
	if !(p[2][0] < p[3][0]) {
		t.Errorf("probability not monotone: %v then %v", p[2][0], p[3][0])
	}
}

// TestScaleEventProbability checks the transition-event flavor: from the
// initial state at 50% on the hysteresis policy, a scale-out within one
// period needs drift to push utilization over 80, which cannot happen —
// while from load 12 (75%) one +1 drift (probability ¼) crosses it.
func TestScaleEventProbability(t *testing.T) {
	pol := mustCheck(t, `
server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);
`)
	sys := Compile(pol, DefaultEnvelope())
	p := sys.eventProb(EventScaleOut, 1)
	if p[1][0] != 0 {
		t.Errorf("P(scaleout within 1) from init = %v, want 0", p[1][0])
	}
	// Find the reachable state (4 servers, load 12).
	id := -1
	for i, s := range sys.states {
		if s.Servers == 4 && s.Load == 12 {
			id = i
			break
		}
	}
	if id < 0 {
		t.Fatal("state (4, 12) not reachable")
	}
	if got := p[1][id]; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("P(scaleout within 1) from load 12 = %v, want 0.25", got)
	}
}

// TestAssertWitnessReachesEvent asserts a violated bound's witness path
// ends at the event it bounds.
func TestAssertWitnessReachesEvent(t *testing.T) {
	pol := mustCheck(t, `
# lint:envelope init=4:13
# lint:assert P(overload, horizon=3) < 0.05
server.cpu.perc > 95 => balance({Worker}, cpu);
`)
	var f *Finding
	findings := Check(pol, nil)
	for i := range findings {
		if findings[i].Code == lint.CodeProbBound {
			f = &findings[i]
		}
	}
	if f == nil {
		t.Fatalf("no EPL210: %+v", findings)
	}
	if len(f.Path) == 0 || len(f.Path) > 3 {
		t.Fatalf("witness has %d steps, want 1..3", len(f.Path))
	}
	last := f.Path[len(f.Path)-1]
	u := 100 * float64(last.Load) / (4 * float64(last.After))
	if u < 90 {
		t.Errorf("witness ends below the overload line: %+v", last)
	}
}

// TestAssertHoldsProducesNoFinding is the negative control for EPL210.
func TestAssertHoldsProducesNoFinding(t *testing.T) {
	pol := mustCheck(t, `
# lint:assert P(overload, horizon=3) < 0.01
server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);
`)
	for _, f := range Check(pol, nil) {
		t.Errorf("unexpected finding %s: %s", f.Code, f.Message)
	}
}
