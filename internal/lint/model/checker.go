package model

import (
	"fmt"
	"sort"
	"strings"

	"plasma/internal/epl"
	"plasma/internal/lint"
)

// Step is one tick of a counterexample path: the load drifts, the EMR
// observes utilization on the pre-action fleet, fired rules act.
type Step struct {
	Tick    int     `json:"tick"`
	Drift   int     `json:"drift"`
	Load    int     `json:"load"`    // post-drift load level
	Servers int     `json:"servers"` // fleet size the EMR observes
	Util    float64 `json:"util"`    // utilization the rules evaluate
	Fired   []int   `json:"fired,omitempty"`
	Action  string  `json:"action,omitempty"` // "scale-out(warm)", "scale-in", both, or ""
	After   int     `json:"after"`            // fleet size after the action
}

// Finding is one model-checker diagnostic plus its concrete
// counterexample path (nil for findings with no witness, like EPL202).
type Finding struct {
	lint.Diagnostic
	Path []Step `json:"path,omitempty"`
	// CycleFrom is the index in Path where the repeating cycle begins,
	// -1 when the path is a plain prefix.
	CycleFrom int `json:"cycle_from"`
}

// Check runs the model checker over a checked policy. The envelope
// defaults to DefaultEnvelope overridden by //lint:envelope annotations
// in the policy source; //lint:assert annotations become EPL210 checks.
func Check(pol *epl.Policy, schema *epl.Schema) []Finding {
	_ = schema // reserved: actor-count envelopes would need class declarations
	env := DefaultEnvelope()
	asserts, diags := parseAnnotations(pol.Source, &env)
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, Finding{Diagnostic: d, CycleFrom: -1})
	}
	if err := env.validate(); err != nil {
		findings = append(findings, Finding{Diagnostic: lint.Diagnostic{
			Code: lint.CodeBadAnnotation, Severity: lint.Error,
			Line: 1, Col: 1,
			Message: fmt.Sprintf("workload envelope does not validate: %v", err),
			Fix:     "fix the //lint:envelope annotation",
		}, CycleFrom: -1})
		return findings
	}
	sys := Compile(pol, env)
	findings = append(findings, sys.checkOscillation()...)
	findings = append(findings, sys.checkOverloadDead()...)
	findings = append(findings, sys.checkUnreachable()...)
	findings = append(findings, sys.checkPoolDeadEnd()...)
	for _, a := range asserts {
		findings = append(findings, sys.checkAssert(a)...)
	}
	return findings
}

// Diagnostics strips the paths off findings for callers that only rank
// severity.
func Diagnostics(findings []Finding) []lint.Diagnostic {
	out := make([]lint.Diagnostic, len(findings))
	for i, f := range findings {
		out[i] = f.Diagnostic
	}
	return out
}

// ---- EPL200: oscillation ----

// checkOscillation looks for a reachable cycle in the zero-drift
// subgraph (constant load) whose edges include both a scale-out and a
// scale-in: the fleet provisions and drains forever with no workload
// change. Zero drift makes each state's successor unique, so the
// subgraph is a functional graph walked with the standard three-color
// scan.
func (sys *System) checkOscillation() []Finding {
	zero := sys.Env.Drift // edge index of δ=0
	color := make([]uint8, len(sys.states))
	pos := make([]int, len(sys.states))
	for start := range sys.states {
		if color[start] != 0 {
			continue
		}
		var path []int
		v := start
		for color[v] == 0 {
			color[v] = 1
			pos[v] = len(path)
			path = append(path, v)
			v = sys.edges[v][zero].to
		}
		if color[v] == 1 {
			// New cycle: path[pos[v]:] loops back to v.
			cycle := path[pos[v]:]
			var acts action
			for _, id := range cycle {
				acts |= sys.edges[id][zero].act
			}
			if acts&actOut != 0 && acts&actIn != 0 {
				for _, id := range path {
					color[id] = 2
				}
				return []Finding{sys.oscillationFinding(cycle)}
			}
		}
		for _, id := range path {
			color[id] = 2
		}
	}
	return nil
}

func (sys *System) oscillationFinding(cycle []int) Finding {
	zero := sys.Env.Drift
	// Rules responsible: everything fired on the cycle's scaling edges.
	ruleSet := map[int]bool{}
	outs, ins := 0, 0
	for _, id := range cycle {
		e := sys.edges[id][zero]
		if e.act == 0 {
			continue
		}
		if e.act&actOut != 0 {
			outs++
		}
		if e.act&actIn != 0 {
			ins++
		}
		for _, r := range e.fired {
			ruleSet[r] = true
		}
	}
	rules := sortedKeys(ruleSet)
	entry := cycle[0]
	prefix := sys.pathTo(entry)
	steps := sys.renderPath(prefix)
	cycleFrom := len(steps)
	loop := make([][2]int, 0, len(cycle))
	for _, id := range cycle {
		loop = append(loop, [2]int{id, zero})
	}
	steps = append(steps, sys.renderEdges(loop, len(steps))...)

	s := sys.states[entry]
	pos := sys.rulePos(rules)
	return Finding{
		Diagnostic: lint.Diagnostic{
			Code: lint.CodeOscillation, Severity: lint.Warning,
			Line: pos.Line, Col: pos.Col, Rules: rules,
			Message: fmt.Sprintf(
				"policy oscillates: at constant load %d (%.1f%% util on %d servers) a reachable %d-period cycle scales out %d× and in %d× forever",
				s.Load, sys.Env.util(int(s.Servers), int(s.Load)), s.Servers, len(cycle), outs, ins),
			Fix: "widen the hysteresis band so one server's utilization shift cannot cross both thresholds",
		},
		Path:      steps,
		CycleFrom: cycleFrom,
	}
}

// ---- EPL201: overload dead state ----

// checkOverloadDead reports the first reachable state at or above the
// envelope's overload line where no rule is even possibly enabled: the
// cluster is saturated and the policy provably cannot react.
func (sys *System) checkOverloadDead() []Finding {
	for id, s := range sys.states {
		u := sys.Env.util(int(s.Servers), int(s.Load))
		if u < sys.Env.OverloadPerc {
			continue
		}
		c := sys.control(s.Servers, s.Load)
		enabled := false
		for _, m := range c.may {
			if m {
				enabled = true
				break
			}
		}
		if enabled {
			continue
		}
		steps := sys.renderPath(sys.pathTo(id))
		return []Finding{{
			Diagnostic: lint.Diagnostic{
				Code: lint.CodeOverloadDead, Severity: lint.Warning,
				Line: 1, Col: 1,
				Message: fmt.Sprintf(
					"overload dead state: %d servers saturate at %.1f%% util (load %d, overload line %g%%) and no rule's condition can be true there",
					s.Servers, u, s.Load, sys.Env.OverloadPerc),
				Fix: "add a scale-out rule covering the saturated band (e.g. server.cpu.perc > 90)",
			},
			Path:      steps,
			CycleFrom: -1,
		}}
	}
	return nil
}

// ---- EPL202: unreachable rule ----

// checkUnreachable reports rules that are disabled in every reachable
// scaling state — the cross-rule generalization of EPL001: the condition
// may be satisfiable in isolation, yet the fleet dynamics keep
// utilization outside it forever.
func (sys *System) checkUnreachable() []Finding {
	if sys.truncated {
		return nil // unexplored states could enable the rule
	}
	var out []Finding
	for i, enabled := range sys.mayEnabled {
		if enabled {
			continue
		}
		r := sys.Pol.Rules[i]
		out = append(out, Finding{
			Diagnostic: lint.Diagnostic{
				Code: lint.CodeUnreachRule, Severity: lint.Warning,
				Line: r.Pos.Line, Col: r.Pos.Col, Rules: []int{i},
				Message: fmt.Sprintf(
					"rule #%d can never fire in any reachable scaling state (%d..%d servers, load %d..%d): its utilization guard is outside the reachable range",
					i, sys.Env.MinServers, sys.Env.MaxServers, sys.Env.MinLoad, sys.Env.MaxLoad),
				Fix: "retune the thresholds to the envelope, or delete the rule",
			},
			CycleFrom: -1,
		})
	}
	return out
}

// ---- EPL203: warm-pool dead end ----

// checkPoolDeadEnd reports the first reachable state where scale-out is
// demanded, the fleet is below the envelope ceiling, and every
// provisioning pool the preference chain (plus spectrum fallthrough) can
// reach is exhausted — the elastic promise silently stalls.
func (sys *System) checkPoolDeadEnd() []Finding {
	for id := range sys.states {
		for ei, e := range sys.edges[id] {
			if !e.dead {
				continue
			}
			s := sys.states[id]
			var pools []string
			for i, c := range sys.Env.Classes {
				left := "∞"
				if s.Pools[i] >= 0 {
					left = fmt.Sprintf("%d", s.Pools[i])
				}
				pools = append(pools, fmt.Sprintf("%s:%s", c.Name, left))
			}
			steps := sys.renderPath(sys.pathTo(id))
			steps = append(steps, sys.renderEdges([][2]int{{id, ei}}, len(steps))...)
			pos := sys.rulePos(e.fired)
			return []Finding{{
				Diagnostic: lint.Diagnostic{
					Code: lint.CodePoolDeadEnd, Severity: lint.Warning,
					Line: pos.Line, Col: pos.Col, Rules: e.fired,
					Message: fmt.Sprintf(
						"provisioning dead end: scale-out demanded at %d servers (%.1f%% util) but every pool is exhausted (%s) with no unlimited fallthrough",
						s.Servers, e.util, strings.Join(pools, ", ")),
					Fix: "add an unlimited class (container or vm) to the spectrum, or grow the finite pool",
				},
				Path:      steps,
				CycleFrom: -1,
			}}
		}
	}
	return nil
}

// ---- path construction and rendering ----

// pathTo returns the BFS-tree edge sequence init → id as (state, edge
// index) pairs.
func (sys *System) pathTo(id int) [][2]int {
	var rev [][2]int
	for v := id; sys.parent[v] >= 0; v = sys.parent[v] {
		rev = append(rev, [2]int{sys.parent[v], sys.parentEdge[v]})
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func (sys *System) renderPath(hops [][2]int) []Step {
	return sys.renderEdges(hops, 0)
}

// renderEdges turns (state, edge-index) hops into display steps.
func (sys *System) renderEdges(hops [][2]int, tick0 int) []Step {
	steps := make([]Step, 0, len(hops))
	for i, hop := range hops {
		s := sys.states[hop[0]]
		e := sys.edges[hop[0]][hop[1]]
		load := sys.Env.clampLoad(int(s.Load) + int(e.drift))
		after := int(sys.states[e.to].Servers)
		steps = append(steps, Step{
			Tick:    tick0 + i,
			Drift:   int(e.drift),
			Load:    load,
			Servers: int(s.Servers),
			Util:    e.util,
			Fired:   e.fired,
			Action:  actionLabel(e, sys.Env),
			After:   after,
		})
	}
	return steps
}

func actionLabel(e edge, env Envelope) string {
	var parts []string
	if e.act&actOut != 0 {
		class := "?"
		if e.class >= 0 {
			class = env.Classes[e.class].Name
		}
		parts = append(parts, "scale-out("+class+")")
	}
	if e.act&actIn != 0 {
		parts = append(parts, "scale-in")
	}
	if e.dead {
		parts = append(parts, "scale-out STALLED (pools exhausted)")
	}
	return strings.Join(parts, " + ")
}

// FormatPath renders a finding's counterexample tick by tick for
// plasma-lint -model -explain.
func FormatPath(f Finding) string {
	if len(f.Path) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, st := range f.Path {
		if f.CycleFrom >= 0 && i == f.CycleFrom {
			fmt.Fprintf(&sb, "    ---- cycle repeats forever from here ----\n")
		}
		act := st.Action
		if act == "" {
			act = "steady"
		}
		fired := ""
		if len(st.Fired) > 0 {
			fired = " fires " + describeRules(st.Fired) + " →"
		}
		fmt.Fprintf(&sb, "    t%02d: load %d (Δ%+d), %d servers at %.1f%% —%s %s",
			st.Tick, st.Load, st.Drift, st.Servers, st.Util, fired, act)
		if st.After != st.Servers {
			fmt.Fprintf(&sb, " → %d servers", st.After)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func describeRules(rules []int) string {
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = fmt.Sprintf("#%d", r)
	}
	return strings.Join(parts, ", ")
}

// rulePos anchors a finding at its first responsible rule (1:1 when the
// finding is policy-wide).
func (sys *System) rulePos(rules []int) epl.Pos {
	if len(rules) == 0 {
		return epl.Pos{Line: 1, Col: 1}
	}
	return sys.Pol.Rules[rules[0]].Pos
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
