package model

import (
	"plasma/internal/epl"
)

// State is one abstract scaling state: fleet size, discretized load
// level, and remaining provisioning-pool capacity per envelope class
// (-1 for unlimited pools, which never decrement).
type State struct {
	Servers int16
	Load    int16
	Pools   [maxClasses]int16
}

// action flags on a transition. Out and In can both be set on one edge:
// the EMR runs tryScaleOut and tryScaleIn in the same period when
// different rules demand both (the drained victim is an up server, the
// provisioned one is still booting), so fleet size is unchanged but the
// cluster churns a machine per period.
type action uint8

const (
	actOut action = 1 << iota
	actIn
)

// edge is one DTMC transition: drift δ happens during the period, the EMR
// observes utilization at the new load, and fired rules scale the fleet.
type edge struct {
	drift int8
	prob  float64
	act   action
	class int8 // envelope class slot a scale-out drew from; -1 when none
	dead  bool // scale-out demanded, fleet below max, every pool exhausted
	util  float64
	fired []int // must-fired rule indices at the post-drift load
	to    int   // successor state id
}

// ctl is the policy's control decision at a (servers, load) point,
// mirroring the EMR planner over the uniform-load abstraction: every
// server carries the same utilization, so per-server classification
// (over the rule's upper bound / under its lower bound) collapses to
// allOver/allUnder, and balance produces no blocking move actions
// (planDeficitFill requires a ≥15-point spread).
type ctl struct {
	util    float64
	fired   []int
	may     []bool // per rule: not provably disabled (three-valued eval)
	wantOut bool
	wantIn  bool
	pref    []int // class slot order scale-out walks (provPref + spectrum)
}

type ctlKey struct{ servers, load int16 }

// maxStates caps the reachability exploration; past it the system is
// marked truncated and unreachability findings are suppressed.
const maxStates = 200000

// System is the compiled finite transition system.
type System struct {
	Env Envelope
	Pol *epl.Policy

	states []State
	edges  [][]edge // edges[id][driftIdx], driftIdx = δ + Env.Drift
	index  map[State]int

	// BFS tree for counterexample prefixes: parent[id] is the state the
	// BFS discovered id from, via edges[parent[id]][parentEdge[id]].
	parent     []int
	parentEdge []int

	ctls       map[ctlKey]*ctl
	mayEnabled []bool // per rule: enabled in some reachable state
	truncated  bool
}

// Compile builds the reachable transition system of a checked policy
// under the envelope (which must validate).
func Compile(pol *epl.Policy, env Envelope) *System {
	sys := &System{
		Env:        env,
		Pol:        pol,
		index:      map[State]int{},
		ctls:       map[ctlKey]*ctl{},
		mayEnabled: make([]bool, len(pol.Rules)),
	}
	init := State{Servers: int16(env.InitServers), Load: int16(env.InitLoad)}
	for i := range init.Pools {
		init.Pools[i] = -1
	}
	for i, c := range env.Classes {
		init.Pools[i] = int16(c.Cap)
		if c.Cap < 0 {
			init.Pools[i] = -1
		}
	}
	sys.intern(init, -1, -1)

	for id := 0; id < len(sys.states); id++ {
		s := sys.states[id]
		edges := make([]edge, 0, len(env.DriftProbs))
		for di, p := range env.DriftProbs {
			drift := di - env.Drift
			load := int16(env.clampLoad(int(s.Load) + drift))
			c := sys.control(s.Servers, load)
			// Rule enablement is recorded at evaluation points — the EMR
			// evaluates at the post-drift load on the pre-action fleet, so
			// a rule whose firing immediately shifts the state away (e.g.
			// a scale-out guard) is still reachable.
			for i, m := range c.may {
				if m {
					sys.mayEnabled[i] = true
				}
			}
			e := edge{
				drift: int8(drift), prob: p, class: -1,
				util: c.util, fired: c.fired,
			}
			next := State{Servers: s.Servers, Load: load, Pools: s.Pools}
			if c.wantOut {
				if int(next.Servers) < env.MaxServers {
					slot := -1
					for _, sl := range c.pref {
						if next.Pools[sl] != 0 {
							slot = sl
							break
						}
					}
					if slot < 0 {
						e.dead = true
					} else {
						if next.Pools[slot] > 0 {
							next.Pools[slot]--
						}
						next.Servers++
						e.act |= actOut
						e.class = int8(slot)
					}
				}
			}
			// Scale-in drains an up server; the machine a same-period
			// scale-out provisioned is still booting, so the gate is the
			// pre-action fleet size (UpCount in the EMR).
			if c.wantIn && int(s.Servers) > env.MinServers {
				next.Servers--
				e.act |= actIn
			}
			e.to = sys.intern(next, id, di)
			edges = append(edges, e)
		}
		sys.edges = append(sys.edges, edges)
		if sys.truncated {
			// Close the system: states discovered past the cap keep
			// self-loop stubs so analyses stay total.
			for id2 := len(sys.edges); id2 < len(sys.states); id2++ {
				sys.edges = append(sys.edges, sys.selfLoops(id2))
			}
			break
		}
	}
	return sys
}

func (sys *System) intern(s State, fromID, viaEdge int) int {
	if id, ok := sys.index[s]; ok {
		return id
	}
	if len(sys.states) >= maxStates {
		sys.truncated = true
		return fromID // collapse overflow onto the discovering state
	}
	id := len(sys.states)
	sys.index[s] = id
	sys.states = append(sys.states, s)
	sys.parent = append(sys.parent, fromID)
	sys.parentEdge = append(sys.parentEdge, viaEdge)
	return id
}

func (sys *System) selfLoops(id int) []edge {
	s := sys.states[id]
	c := sys.control(s.Servers, s.Load)
	edges := make([]edge, 0, len(sys.Env.DriftProbs))
	for di, p := range sys.Env.DriftProbs {
		edges = append(edges, edge{
			drift: int8(di - sys.Env.Drift), prob: p, class: -1,
			util: c.util, fired: c.fired, to: id,
		})
	}
	return edges
}

// control computes (memoized) the policy's decision at a fleet size and
// load level.
func (sys *System) control(servers, load int16) *ctl {
	key := ctlKey{servers, load}
	if c, ok := sys.ctls[key]; ok {
		return c
	}
	env := &sys.Env
	c := &ctl{
		util: env.util(int(servers), int(load)),
		may:  make([]bool, len(sys.Pol.Rules)),
	}
	var chain []string
	for i, r := range sys.Pol.Rules {
		tv := sys.evalCond(r.Cond, c.util)
		c.may[i] = tv != triFalse
		if tv != triTrue || len(r.BindingRefs()) > 0 {
			// The rule needs per-actor bindings or unknown features; the
			// abstraction cannot prove it fires.
			continue
		}
		c.fired = append(c.fired, i)
		for _, b := range r.Behaviors {
			bb, ok := b.(*epl.BalanceBeh)
			if !ok || !env.Resources[bb.Res] {
				continue
			}
			// Mirror planBalance's threshold defaulting: a missing upper
			// bound is the EMR's DefaultUpper, a missing lower bound is
			// the upper (hysteresis-free).
			upper, lower := epl.CondBounds(r.Cond, bb.Res)
			if isNaN(upper) {
				upper = defaultUpper
			}
			if isNaN(lower) {
				lower = upper
			}
			if c.util > upper {
				c.wantOut = true
			} else if c.util < lower {
				c.wantIn = true
			}
		}
		chain = append(chain, r.ProvClassChain()...)
	}
	c.pref = sys.classOrder(chain)
	sys.ctls[key] = c
	return c
}

// defaultUpper mirrors emr.Config.DefaultUpper's default: the utilization
// bar balance uses when a rule names no upper bound.
const defaultUpper = 85

// classOrder maps a fired provclass preference chain onto envelope class
// slots and appends the remaining spectrum, mirroring the EMR's provOrder
// (preference first, spectrum-order fallthrough, no slot twice).
func (sys *System) classOrder(chain []string) []int {
	order := make([]int, 0, len(sys.Env.Classes))
	seen := [maxClasses]bool{}
	add := func(slot int) {
		if slot >= 0 && !seen[slot] {
			seen[slot] = true
			order = append(order, slot)
		}
	}
	for _, name := range chain {
		add(sys.slotOf(name))
	}
	for i := range sys.Env.Classes {
		add(i)
	}
	return order
}

func (sys *System) slotOf(name string) int {
	for i, c := range sys.Env.Classes {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ---- three-valued condition evaluation ----

type tri int8

const (
	triFalse tri = iota
	triUnknown
	triTrue
)

// evalCond evaluates a condition at utilization u with Kleene logic:
// server-resource comparisons on modeled resources are concrete, every
// other feature (actor resources, call statistics, reference membership)
// is unknown.
func (sys *System) evalCond(c epl.Cond, u float64) tri {
	switch cond := c.(type) {
	case *epl.TrueCond:
		return triTrue
	case *epl.AndCond:
		return triAnd(sys.evalCond(cond.L, u), sys.evalCond(cond.R, u))
	case *epl.OrCond:
		return triOr(sys.evalCond(cond.L, u), sys.evalCond(cond.R, u))
	case *epl.CmpCond:
		rf, ok := cond.Feat.(*epl.ResFeature)
		if !ok || !rf.Server || cond.Stat != epl.Perc || !sys.Env.Resources[rf.Res] {
			return triUnknown
		}
		if cmpHolds(u, cond.Op, cond.Val) {
			return triTrue
		}
		return triFalse
	default:
		return triUnknown
	}
}

func triAnd(a, b tri) tri {
	if a == triFalse || b == triFalse {
		return triFalse
	}
	if a == triTrue && b == triTrue {
		return triTrue
	}
	return triUnknown
}

func triOr(a, b tri) tri {
	if a == triTrue || b == triTrue {
		return triTrue
	}
	if a == triFalse && b == triFalse {
		return triFalse
	}
	return triUnknown
}

func cmpHolds(x float64, op epl.CmpOp, val float64) bool {
	switch op {
	case epl.LT:
		return x < val
	case epl.LE:
		return x <= val
	case epl.GT:
		return x > val
	case epl.GE:
		return x >= val
	}
	return false
}

func isNaN(f float64) bool { return f != f }
