package model

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"plasma/internal/epl"
	"plasma/internal/lint"
)

// corpusDir is the shared lint policy corpus.
const corpusDir = "../testdata"

// modelWant pins the exact multiset of model-checker codes per corpus
// policy under its annotated (or default) envelope. Every corpus file
// must be listed: a new policy without a verdict here fails the test.
var modelWant = map[string][]string{
	"clean_halo.epl":               {},
	"clean_hysteresis.epl":         {},
	"clean_metadata.epl":           {},
	"clean_pagerank.epl":           {},
	"clean_provclass.epl":          {},
	"dead_var.epl":                 {},
	"shadow_colocate_separate.epl": {},
	"shadow_true.epl":              {},
	"shadow_provclass.epl":         {},
	"flap_provclass.epl":           {}, // EPL010 pairs the guarded thresholds, but provclass alone never scales: no real cycle
	"flap_inverted.epl":            {lint.CodeOscillation},
	"flap_same_rule.epl":           {lint.CodeOscillation},
	"flap_zero_band.epl":           {lint.CodeOscillation},
	"taut_atom.epl":                {lint.CodeOscillation},
	"taut_or.epl":                  {lint.CodeOscillation},
	"osc_cross_rule.epl":           {lint.CodeOscillation}, // EPL010-clean (band +5) yet oscillates: the semantic generalization
	"range_high.epl":               {lint.CodeOverloadDead, lint.CodeUnreachRule},
	"unsat_branch.epl":             {lint.CodeOverloadDead},
	"unsat_eq.epl":                 {lint.CodeOverloadDead, lint.CodeUnreachRule},
	"unsat_interval.epl":           {lint.CodeOverloadDead, lint.CodeUnreachRule},
	"dead_overload.epl":            {lint.CodeOverloadDead},
	"unreachable_scale.epl":        {lint.CodeUnreachRule},
	"deadend_warmpool.epl":         {lint.CodePoolDeadEnd},
	"assert_ok.epl":                {},
	"assert_viol.epl":              {lint.CodeOverloadDead, lint.CodeProbBound},
	"bad_assert.epl":               {lint.CodeBadAnnotation},
}

func checkFile(t *testing.T, path string) []Finding {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := epl.Parse(string(data))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if _, err := epl.Check(pol, nil); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return Check(pol, nil)
}

// TestModelCorpus runs the model checker over every corpus policy and
// compares the finding codes against the pinned verdicts.
func TestModelCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.epl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus policies found")
	}
	start := time.Now()
	for _, path := range files {
		name := filepath.Base(path)
		want, ok := modelWant[name]
		if !ok {
			t.Errorf("%s: corpus policy has no modelWant verdict", name)
			continue
		}
		findings := checkFile(t, path)
		var got []string
		for _, f := range findings {
			got = append(got, f.Code)
		}
		sort.Strings(got)
		wantSorted := append([]string(nil), want...)
		sort.Strings(wantSorted)
		if strings.Join(got, ",") != strings.Join(wantSorted, ",") {
			t.Errorf("%s: model codes = [%s], want [%s]\n%s",
				name, strings.Join(got, ","), strings.Join(wantSorted, ","), renderFindings(findings))
		}
	}
	// The acceptance bar: the whole corpus model-checks in seconds so
	// make verify can absorb it.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("corpus model check took %v, want under 5s", elapsed)
	}
}

func renderFindings(findings []Finding) string {
	var sb strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&sb, "  %s\n%s", f.Diagnostic.String(), FormatPath(f))
	}
	return sb.String()
}

// TestModelFindingsCarryCounterexamples asserts that every reachability
// finding ships a non-empty tick-by-tick path (EPL202 is existence of
// nothing, so it has none).
func TestModelFindingsCarryCounterexamples(t *testing.T) {
	for name := range modelWant {
		findings := checkFile(t, filepath.Join(corpusDir, name))
		for _, f := range findings {
			switch f.Code {
			case lint.CodeOscillation, lint.CodeOverloadDead, lint.CodePoolDeadEnd, lint.CodeProbBound:
				if len(f.Path) == 0 {
					t.Errorf("%s: %s finding has no counterexample path", name, f.Code)
				}
			}
			if f.Code == lint.CodeOscillation {
				if f.CycleFrom < 0 || f.CycleFrom >= len(f.Path) {
					t.Errorf("%s: oscillation cycle start %d outside path of %d steps", name, f.CycleFrom, len(f.Path))
				}
			}
		}
	}
}

// policyConstRe extracts backtick policy constants from example programs.
var policyConstRe = regexp.MustCompile("(?s)Policy[A-Za-z]*Src = `([^`]*)`|const policy = `([^`]*)`")

// TestShippedPoliciesModelClean is the EPL2xx gate over shipped policies:
// every paper application policy (internal/apps) and example program
// policy (examples/) must come out of the model checker clean.
func TestShippedPoliciesModelClean(t *testing.T) {
	var files []string
	for _, pattern := range []string{"../../apps/*/*.go", "../../../examples/*/main.go"} {
		fs, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, fs...)
	}
	checked := 0
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range policyConstRe.FindAllStringSubmatch(string(data), -1) {
			src := m[1] + m[2]
			if !strings.Contains(src, "=>") || strings.Contains(src, "%s") {
				continue // not a complete policy literal
			}
			pol, err := epl.Parse(src)
			if err != nil {
				t.Errorf("%s: embedded policy does not parse: %v", path, err)
				continue
			}
			if _, err := epl.Check(pol, nil); err != nil {
				t.Errorf("%s: embedded policy does not check: %v", path, err)
				continue
			}
			checked++
			for _, f := range Check(pol, nil) {
				t.Errorf("%s: shipped policy has model finding %s: %s", path, f.Code, f.Message)
			}
		}
	}
	if checked < 8 {
		t.Fatalf("only %d shipped policies found; the glob is likely broken", checked)
	}
}
