package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"plasma/internal/epl"
)

// corpusWant maps every testdata policy to the exact multiset of diagnostic
// codes it must produce under CheckAndAnalyze (clean_* files produce none).
var corpusWant = map[string][]string{
	"clean_halo.epl":               {},
	"clean_hysteresis.epl":         {},
	"clean_metadata.epl":           {},
	"clean_pagerank.epl":           {},
	"dead_var.epl":                 {CodeUnusedVar},
	"flap_inverted.epl":            {CodeFlapping},
	"flap_same_rule.epl":           {CodeFlapping},
	"flap_zero_band.epl":           {CodeFlapping},
	"range_high.epl":               {CodeUnsat, CodeOutOfRange},
	"shadow_colocate_separate.epl": {CodeShadowed, epl.CodeColocateSeparate},
	"shadow_true.epl":              {CodeShadowed, epl.CodePinBalance},
	"taut_atom.epl":                {CodeTautology},
	"taut_or.epl":                  {CodeTautology, CodeFlapping},
	"unsat_branch.epl":             {CodeUnsat},
	"unsat_eq.epl":                 {CodeUnsat, CodeFlapping},
	"unsat_interval.epl":           {CodeUnsat},

	// Provclass-aware passes (the model checker's own verdicts for these
	// live in internal/lint/model's corpus test).
	"clean_provclass.epl":   {},
	"flap_provclass.epl":    {CodeFlapping}, // guarded pair: provclass rule's trigger vs balance rule's
	"shadow_provclass.epl":  {CodeShadowed}, // conflicting preference chains in nested regions
	"osc_cross_rule.epl":    {},             // EPL010-clean: +5 band — only the model checker sees the cycle
	"dead_overload.epl":     {},
	"unreachable_scale.epl": {},
	"deadend_warmpool.epl":  {},
	"assert_ok.epl":         {},
	"assert_viol.epl":       {},
	"bad_assert.epl":        {}, // the EPL211 annotation error is a model-checker finding
}

func analyzeFile(t *testing.T, path string) []Diagnostic {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := epl.Parse(string(data))
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	diags, err := CheckAndAnalyze(pol, nil)
	if err != nil {
		t.Fatalf("check %s: %v", path, err)
	}
	return diags
}

func TestPolicyCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.epl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 13 {
		t.Fatalf("corpus has %d policies, want at least 13", len(files))
	}
	seen := map[string]bool{}
	for _, path := range files {
		name := filepath.Base(path)
		seen[name] = true
		t.Run(name, func(t *testing.T) {
			want, ok := corpusWant[name]
			if !ok {
				t.Fatalf("corpus file %s has no expected-code entry; add it to corpusWant", name)
			}
			var got []string
			for _, d := range analyzeFile(t, path) {
				got = append(got, d.Code)
			}
			sort.Strings(got)
			sorted := append([]string(nil), want...)
			sort.Strings(sorted)
			if len(got) == 0 && len(sorted) == 0 {
				return
			}
			if !reflect.DeepEqual(got, sorted) {
				t.Fatalf("codes = %v, want %v\ndiagnostics:\n%s", got, sorted, renderDiags(analyzeFile(t, path)))
			}
		})
	}
	for name := range corpusWant {
		if !seen[name] {
			t.Errorf("corpusWant lists %s but the file does not exist", name)
		}
	}
}

func renderDiags(diags []Diagnostic) string {
	s := ""
	for _, d := range diags {
		s += "  " + d.String() + "\n"
	}
	return s
}

// TestCorpusSeverities pins the severity contract: whole-condition
// unsatisfiability is an error (EMR refuses the policy), partial-branch
// unsatisfiability and the behavioral hazards are warnings, and unused
// declarations are informational.
func TestCorpusSeverities(t *testing.T) {
	cases := []struct {
		file string
		code string
		sev  Severity
	}{
		{"unsat_interval.epl", CodeUnsat, Error},
		{"unsat_branch.epl", CodeUnsat, Warning},
		{"flap_zero_band.epl", CodeFlapping, Warning},
		{"shadow_true.epl", CodeShadowed, Warning},
		{"dead_var.epl", CodeUnusedVar, Info},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			for _, d := range analyzeFile(t, filepath.Join("testdata", c.file)) {
				if d.Code == c.code {
					if d.Severity != c.sev {
						t.Fatalf("%s severity = %v, want %v", c.code, d.Severity, c.sev)
					}
					return
				}
			}
			t.Fatalf("%s not produced for %s", c.code, c.file)
		})
	}
}

// TestShadowingReportsAllRules asserts the shadowing diagnostic names both
// the shadowed and the shadowing rule.
func TestShadowingReportsAllRules(t *testing.T) {
	for _, d := range analyzeFile(t, filepath.Join("testdata", "shadow_true.epl")) {
		if d.Code == CodeShadowed {
			if !reflect.DeepEqual(d.Rules, []int{0, 1}) {
				t.Fatalf("Rules = %v, want [0 1]", d.Rules)
			}
			return
		}
	}
	t.Fatal("no shadowing diagnostic produced")
}

// TestPaperPoliciesLoadable asserts none of the five §3.3 paper policies
// produce an error-severity finding, i.e. the EMR accepts all of them.
func TestPaperPoliciesLoadable(t *testing.T) {
	srcs := map[string]string{
		"metadata": `
server.cpu.perc > 80 and
client.call(Folder(fo).open).perc > 40 and
File(fi) in ref(fo.files) =>
    reserve(fo, cpu); colocate(fo, fi);
`,
		"pagerank": `
server.cpu.perc > 80 or server.cpu.perc < 60 =>
    balance({Partition}, cpu);
`,
		"estore": `
server.cpu.perc > 80 and
client.call(Partition(p1).read).perc > 30 =>
    reserve(p1, cpu);
Partition(p2) in ref(Partition(p1).children) =>
    colocate(p1, p2);
server.cpu.perc < 50 => balance({Partition}, cpu);
`,
		"media": `
server.net.perc > 80 or server.net.perc < 60 =>
    balance({FrontEnd}, net);
server.cpu.perc > 50 => reserve(VideoStream(v), cpu);
VideoStream(v).call(UserInfo(u).track).count > 0 =>
    pin(v); colocate(v, u);
ReviewEditor(r).call(UserReview(u).update).count > 0 =>
    pin(r); colocate(r, u);
true => pin(MovieReview(m));
server.cpu.perc > 90 or server.cpu.perc < 70 =>
    balance({ReviewChecker}, cpu);
`,
		"halo": `
Player(p) in ref(Session(s).players) =>
    pin(s); colocate(p, s);
`,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			pol := epl.MustParse(src)
			diags := AnalyzePolicy(pol, nil)
			if max := MaxSeverity(diags); max >= Error {
				t.Fatalf("paper policy produces error-severity findings:\n%s", renderDiags(diags))
			}
		})
	}
}
