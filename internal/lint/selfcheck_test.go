package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoIsDeterminismClean asserts the repository invariant that `make
// verify` enforces: the determinism linter reports nothing on internal/
// (including the PR 5/6 surface — cluster provisioning, the burst
// experiments, and the profiler), cmd/, or examples/. The finding count
// is pinned at zero: legitimate seeded-RNG sites carry //lint:ignore
// annotations, and any new wall-clock read, global rand call, or
// unsorted map-order output fails this test.
func TestRepoIsDeterminismClean(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			t.Skip("go.mod not found; not running inside the repository")
		}
		root = parent
	}
	files, err := ExpandGoPatterns([]string{
		filepath.Join(root, "internal") + "/...",
		filepath.Join(root, "cmd") + "/...",
		filepath.Join(root, "examples") + "/...",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no Go files found to lint")
	}
	diags, err := LintGoFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("%s", d)
		}
		t.Fatalf("%d determinism findings in the repository; fix them or annotate with //lint:ignore", len(diags))
	}
}
