package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// lintSrc writes src to a temp package dir and runs the determinism linter
// over it.
func lintSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "a.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := LintGoFiles([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func codesOf(diags []Diagnostic) map[string]int {
	m := map[string]int{}
	for _, d := range diags {
		m[d.Code]++
	}
	return m
}

func TestDetTimeNow(t *testing.T) {
	diags := lintSrc(t, `package p

import "time"

func stamp() int64 { return time.Now().UnixNano() }
`)
	if codesOf(diags)[CodeNondetTime] != 1 {
		t.Fatalf("want one DET001, got %v", diags)
	}
	if diags[0].Severity != Error {
		t.Fatalf("DET001 severity = %v, want error", diags[0].Severity)
	}
}

func TestDetTimeOtherUsesAllowed(t *testing.T) {
	diags := lintSrc(t, `package p

import "time"

const tick = 5 * time.Second

func wait(d time.Duration) time.Duration { return d + tick }
`)
	if len(diags) != 0 {
		t.Fatalf("time.Duration use flagged: %v", diags)
	}
}

func TestDetGlobalRand(t *testing.T) {
	diags := lintSrc(t, `package p

import "math/rand"

func pick(n int) int { return rand.Intn(n) }
`)
	// Both the import and the global-source call are flagged.
	if codesOf(diags)[CodeNondetRand] != 2 {
		t.Fatalf("want two DET002, got %v", diags)
	}
}

func TestDetSeededRandAnnotated(t *testing.T) {
	diags := lintSrc(t, `package p

import (
	//lint:ignore DET002 seeded generator only
	"math/rand"
)

func pick(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
`)
	if len(diags) != 0 {
		t.Fatalf("annotated seeded rand flagged: %v", diags)
	}
}

func TestDetIgnoreRequiresMatchingCode(t *testing.T) {
	diags := lintSrc(t, `package p

import (
	//lint:ignore DET001 wrong code on purpose
	"math/rand"
)

func seed() { rand.Seed(1) }
`)
	// The annotation names DET001, so both DET002 findings survive.
	if codesOf(diags)[CodeNondetRand] != 2 {
		t.Fatalf("mismatched ignore suppressed findings: %v", diags)
	}
}

func TestDetMapRangeUnsorted(t *testing.T) {
	diags := lintSrc(t, `package p

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	if codesOf(diags)[CodeNondetRange] != 1 {
		t.Fatalf("want one DET003, got %v", diags)
	}
	if diags[0].Severity != Warning {
		t.Fatalf("DET003 severity = %v, want warning", diags[0].Severity)
	}
}

func TestDetMapRangeSorted(t *testing.T) {
	diags := lintSrc(t, `package p

import "sort"

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`)
	if len(diags) != 0 {
		t.Fatalf("sorted map collection flagged: %v", diags)
	}
}

func TestDetMapRangePrint(t *testing.T) {
	diags := lintSrc(t, `package p

import "fmt"

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`)
	if codesOf(diags)[CodeNondetRange] != 1 {
		t.Fatalf("want one DET003 for print-in-range, got %v", diags)
	}
}

func TestDetStructFieldMap(t *testing.T) {
	diags := lintSrc(t, `package p

type reg struct {
	members map[int]string
}

func (r *reg) names() []string {
	var out []string
	for _, n := range r.members {
		out = append(out, n)
	}
	return out
}
`)
	if codesOf(diags)[CodeNondetRange] != 1 {
		t.Fatalf("struct-field map range not caught: %v", diags)
	}
}

func TestDetSliceRangeNotFlagged(t *testing.T) {
	diags := lintSrc(t, `package p

func double(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}
`)
	if len(diags) != 0 {
		t.Fatalf("slice range flagged: %v", diags)
	}
}

// TestDetCatchesTimeNowInSimStyleFile is the regression the Makefile's
// verify target depends on: introducing wall-clock time into kernel-style
// code must fail the lint.
func TestDetCatchesTimeNowInSimStyleFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sim.go")
	src := `package sim

import "time"

type Kernel struct{ now int64 }

func (k *Kernel) Now() int64 { return time.Now().UnixNano() }
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := LintGoFiles([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if MaxSeverity(diags) < Error {
		t.Fatalf("time.Now in sim-style code did not produce an error: %v", diags)
	}
}

func TestExpandGoPatternsSkipsTests(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []string{"a.go", "a_test.go", "b.txt"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("package p\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sub := filepath.Join(dir, "testdata")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "c.go"), []byte("package q\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	files, err := ExpandGoPatterns([]string{dir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || filepath.Base(files[0]) != "a.go" {
		t.Fatalf("files = %v, want just a.go", files)
	}
}
