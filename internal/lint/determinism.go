package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The determinism linter guards the invariants the chaos layer's
// bit-identical replay depends on: no wall-clock time, no global
// (unseeded, process-shared) math/rand, and no map-iteration-ordered
// output. It is stdlib-only (go/parser + go/ast); heuristics favor
// precision, and the `//lint:ignore <code> <reason>` escape hatch
// suppresses a finding on the annotated line or the line below it.

// globalRandFuncs are the top-level math/rand functions backed by the
// process-global source. Constructors (New, NewSource, NewZipf) build
// explicitly seeded generators and are allowed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// emitFuncs are fmt output calls: printing inside a map range leaks map
// order into observable output.
var emitFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// ExpandGoPatterns resolves plasma-lint Go arguments — "dir/...", a
// directory, or a single .go file — into the list of non-test Go files to
// lint, in deterministic order. testdata and hidden directories are
// skipped.
func ExpandGoPatterns(patterns []string) ([]string, error) {
	var files []string
	seen := map[string]bool{}
	add := func(path string) {
		if seen[path] || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return
		}
		seen[path] = true
		files = append(files, path)
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", pat, err)
		}
		if !info.IsDir() {
			add(pat)
			continue
		}
		if !recursive {
			ents, err := os.ReadDir(pat)
			if err != nil {
				return nil, err
			}
			for _, e := range ents {
				if !e.IsDir() {
					add(filepath.Join(pat, e.Name()))
				}
			}
			continue
		}
		err = filepath.WalkDir(pat, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || (strings.HasPrefix(name, ".") && len(name) > 1) {
					return filepath.SkipDir
				}
				return nil
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

// LintGoFiles runs the determinism checks over the given Go files. Files
// sharing a directory are analyzed together so struct fields declared in
// one file resolve in another.
func LintGoFiles(paths []string) ([]Diagnostic, error) {
	byDir := map[string][]string{}
	for _, p := range paths {
		byDir[filepath.Dir(p)] = append(byDir[filepath.Dir(p)], p)
	}
	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var out []Diagnostic
	for _, dir := range dirs {
		diags, err := lintGoDir(byDir[dir])
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	SortDiagnostics(out)
	return out, nil
}

// parsedFile is one parsed source plus its suppression table.
type parsedFile struct {
	path    string
	fset    *token.FileSet
	file    *ast.File
	ignores map[int]map[string]bool // line -> codes suppressed there
	imports map[string]string       // local name -> import path
}

func lintGoDir(paths []string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	var pfs []*parsedFile
	// Package-wide indices for map-typed declarations.
	structMapFields := map[string]map[string]bool{} // struct type -> field -> is-map
	namedMaps := map[string]bool{}                  // named types that are maps
	pkgMapVars := map[string]bool{}                 // package-level map variables

	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pf := &parsedFile{path: path, fset: fset, file: f,
			ignores: map[int]map[string]bool{}, imports: map[string]string{}}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore ") {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue
				}
				line := fset.Position(c.End()).Line
				for _, l := range []int{line, line + 1} {
					if pf.ignores[l] == nil {
						pf.ignores[l] = map[string]bool{}
					}
					pf.ignores[l][fields[1]] = true
				}
			}
		}
		for _, imp := range f.Imports {
			ipath, _ := strconv.Unquote(imp.Path.Value)
			name := filepath.Base(ipath)
			if imp.Name != nil {
				name = imp.Name.Name
			}
			pf.imports[name] = ipath
		}
		pfs = append(pfs, pf)

		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.TypeSpec:
				switch t := d.Type.(type) {
				case *ast.MapType:
					namedMaps[d.Name.Name] = true
				case *ast.StructType:
					fields := map[string]bool{}
					for _, fl := range t.Fields.List {
						isMap := isMapTypeExpr(fl.Type, namedMaps)
						for _, name := range fl.Names {
							fields[name.Name] = isMap
						}
					}
					structMapFields[d.Name.Name] = fields
				}
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					return true
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if vs.Type != nil && isMapTypeExpr(vs.Type, namedMaps) {
						for _, name := range vs.Names {
							pkgMapVars[name.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	// Named map types may be declared after first use; re-resolve struct
	// fields once the named-map index is complete.
	for _, pf := range pfs {
		ast.Inspect(pf.file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fl := range st.Fields.List {
				if isMapTypeExpr(fl.Type, namedMaps) {
					for _, name := range fl.Names {
						structMapFields[ts.Name.Name][name.Name] = true
					}
				}
			}
			return true
		})
	}

	var out []Diagnostic
	for _, pf := range pfs {
		out = append(out, pf.lintCalls()...)
		out = append(out, pf.lintMapRanges(structMapFields, namedMaps, pkgMapVars)...)
	}
	return out, nil
}

func isMapTypeExpr(e ast.Expr, namedMaps map[string]bool) bool {
	switch t := e.(type) {
	case *ast.MapType:
		return true
	case *ast.Ident:
		return namedMaps[t.Name]
	}
	return false
}

// emit appends a diagnostic unless an ignore annotation covers it.
func (pf *parsedFile) emit(out []Diagnostic, pos token.Pos, code string, sev Severity, msg, fix string) []Diagnostic {
	p := pf.fset.Position(pos)
	if pf.ignores[p.Line][code] {
		return out
	}
	return append(out, Diagnostic{
		Code: code, Severity: sev, File: pf.path,
		Line: p.Line, Col: p.Column, Message: msg, Fix: fix,
	})
}

// lintCalls flags wall-clock time (DET001) and global math/rand (DET002).
func (pf *parsedFile) lintCalls() []Diagnostic {
	var out []Diagnostic
	timeName, timeImported := importLocalName(pf.imports, "time")
	randName, randImported := importLocalName(pf.imports, "math/rand")

	if randImported {
		for _, imp := range pf.file.Imports {
			if p, _ := strconv.Unquote(imp.Path.Value); p == "math/rand" {
				out = pf.emit(out, imp.Pos(), CodeNondetRand, Error,
					"import of math/rand in deterministic code; use the kernel's seeded *rand.Rand",
					"thread a seeded generator through, or annotate the import with //lint:ignore "+CodeNondetRand+" <reason>")
			}
		}
	}
	if !timeImported && !randImported {
		return out
	}
	ast.Inspect(pf.file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || base.Obj != nil { // Obj != nil: a local shadows the package name
			return true
		}
		if timeImported && base.Name == timeName && sel.Sel.Name == "Now" {
			out = pf.emit(out, sel.Pos(), CodeNondetTime, Error,
				"time.Now reads the wall clock; simulated time must come from the kernel",
				"use sim.Kernel.Now()")
		}
		if randImported && base.Name == randName && globalRandFuncs[sel.Sel.Name] {
			out = pf.emit(out, sel.Pos(), CodeNondetRand, Error,
				fmt.Sprintf("rand.%s uses the process-global source; replay needs a seeded generator", sel.Sel.Name),
				"call the method on a rand.New(rand.NewSource(seed)) instance")
		}
		return true
	})
	return out
}

func importLocalName(imports map[string]string, path string) (string, bool) {
	for name, p := range imports {
		if p == path {
			return name, true
		}
	}
	return "", false
}

// lintMapRanges flags DET003: a range over a map whose body appends map
// entries to an outer slice that is never subsequently sorted, or prints
// directly — both leak Go's randomized map iteration order into emitted
// output, breaking bit-identical replay.
func (pf *parsedFile) lintMapRanges(structFields map[string]map[string]bool, namedMaps, pkgMapVars map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, decl := range pf.file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		scope := pf.funcScope(fn, namedMaps)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !pf.isMapExpr(rng.X, scope, structFields, namedMaps, pkgMapVars) {
				return true
			}
			appended, emits := rangeBodyEffects(rng.Body)
			for _, pos := range emits {
				out = pf.emit(out, pos, CodeNondetRange, Warning,
					fmt.Sprintf("output emitted while ranging over map %s: map iteration order is nondeterministic", exprString(rng.X)),
					"collect into a slice, sort it, then emit")
			}
			names := make([]string, 0, len(appended))
			for name := range appended {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if sortedAfter(fn.Body, rng, name) {
					continue
				}
				out = pf.emit(out, rng.Pos(), CodeNondetRange, Warning,
					fmt.Sprintf("range over map %s appends to %q, which is never sorted afterwards: element order is nondeterministic", exprString(rng.X), name),
					fmt.Sprintf("sort %q after the loop (or annotate with //lint:ignore %s <reason> if order is irrelevant)", name, CodeNondetRange))
			}
			return true
		})
	}
	return out
}

// typeRef is what the linter knows about a local identifier.
type typeRef struct {
	isMap bool
	named string // named (struct) type, for selector field resolution
}

// funcScope gathers identifier types from the receiver, parameters, and
// body declarations — a flat, order-insensitive approximation of Go
// scoping that is accurate enough for lint purposes.
func (pf *parsedFile) funcScope(fn *ast.FuncDecl, namedMaps map[string]bool) map[string]typeRef {
	scope := map[string]typeRef{}
	bindField := func(fl *ast.Field) {
		t := fl.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		ref := typeRef{isMap: isMapTypeExpr(fl.Type, namedMaps)}
		if id, ok := t.(*ast.Ident); ok && !ref.isMap {
			ref.named = id.Name
		}
		for _, name := range fl.Names {
			scope[name.Name] = ref
		}
	}
	if fn.Recv != nil {
		for _, fl := range fn.Recv.List {
			bindField(fl)
		}
	}
	if fn.Type.Params != nil {
		for _, fl := range fn.Type.Params.List {
			bindField(fl)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(st.Rhs) {
					continue
				}
				if r, ok := rhsTypeRef(st.Rhs[i], namedMaps); ok {
					scope[id.Name] = r
				}
			}
		case *ast.ValueSpec:
			if st.Type != nil {
				t := st.Type
				if star, ok := t.(*ast.StarExpr); ok {
					t = star.X
				}
				ref := typeRef{isMap: isMapTypeExpr(st.Type, namedMaps)}
				if id, ok := t.(*ast.Ident); ok && !ref.isMap {
					ref.named = id.Name
				}
				for _, name := range st.Names {
					scope[name.Name] = ref
				}
			}
		}
		return true
	})
	return scope
}

// rhsTypeRef classifies an assignment's right-hand side.
func rhsTypeRef(e ast.Expr, namedMaps map[string]bool) (typeRef, bool) {
	switch r := e.(type) {
	case *ast.CallExpr:
		if id, ok := r.Fun.(*ast.Ident); ok && id.Name == "make" && len(r.Args) > 0 {
			if isMapTypeExpr(r.Args[0], namedMaps) {
				return typeRef{isMap: true}, true
			}
		}
	case *ast.CompositeLit:
		if r.Type != nil && isMapTypeExpr(r.Type, namedMaps) {
			return typeRef{isMap: true}, true
		}
		if id, ok := r.Type.(*ast.Ident); ok {
			return typeRef{named: id.Name}, true
		}
	case *ast.UnaryExpr:
		if r.Op == token.AND {
			if cl, ok := r.X.(*ast.CompositeLit); ok {
				if id, ok := cl.Type.(*ast.Ident); ok {
					return typeRef{named: id.Name}, true
				}
			}
		}
	}
	return typeRef{}, false
}

// isMapExpr decides whether a ranged expression is (conservatively,
// provably) a map.
func (pf *parsedFile) isMapExpr(e ast.Expr, scope map[string]typeRef, structFields map[string]map[string]bool, namedMaps, pkgMapVars map[string]bool) bool {
	switch x := e.(type) {
	case *ast.Ident:
		if r, ok := scope[x.Name]; ok {
			return r.isMap
		}
		return pkgMapVars[x.Name]
	case *ast.SelectorExpr:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			return false
		}
		r, ok := scope[base.Name]
		if !ok || r.named == "" {
			return false
		}
		return structFields[r.named][x.Sel.Name]
	}
	return false
}

// rangeBodyEffects finds appends to outer identifiers and direct fmt
// output inside a range body. Identifiers introduced inside the body are
// excluded.
func rangeBodyEffects(body *ast.BlockStmt) (appended map[string]bool, emits []token.Pos) {
	local := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if st, ok := n.(*ast.AssignStmt); ok && st.Tok == token.DEFINE {
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					local[id.Name] = true
				}
			}
		}
		return true
	})
	appended = map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && len(call.Args) > 0 {
				if id, ok := call.Args[0].(*ast.Ident); ok && !local[id.Name] {
					appended[id.Name] = true
				}
			}
		case *ast.SelectorExpr:
			if base, ok := fun.X.(*ast.Ident); ok && base.Name == "fmt" && emitFuncs[fun.Sel.Name] {
				emits = append(emits, call.Pos())
			}
		}
		return true
	})
	return appended, emits
}

// sortedAfter reports whether a sort call mentioning name appears in the
// function after the range statement.
func sortedAfter(fnBody *ast.BlockStmt, rng *ast.RangeStmt, name string) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || base.Name != "sort" {
			return true
		}
		ast.Inspect(call, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && id.Name == name {
				found = true
				return false
			}
			return true
		})
		return true
	})
	return found
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	}
	return "expression"
}
