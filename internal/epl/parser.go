package epl

// behaviorKeywords are reserved: an identifier in this set after a rule's
// '=>' starts another behavior rather than a new rule.
var behaviorKeywords = map[string]bool{
	"balance": true, "reserve": true, "colocate": true, "separate": true, "pin": true,
	"provclass": true,
}

// Parse compiles EPL source into a Policy. Variables declared inline
// (Type(v)) are bound to their uses; declare-before-use order is enforced.
func Parse(src string) (*Policy, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pol := &Policy{Source: src}
	for p.peek().kind != tokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		r.Index = len(pol.Rules)
		pol.Rules = append(pol.Rules, r)
	}
	if len(pol.Rules) == 0 {
		return nil, errAt(Pos{1, 1}, "empty policy")
	}
	return pol, nil
}

// MustParse is Parse that panics on error, for tests and embedded rules.
func MustParse(src string) *Policy {
	pol, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return pol
}

type parser struct {
	toks []token
	i    int

	// refs collects ActorRefs of the rule being parsed, in source order,
	// for the binding pass.
	refs []*ActorRef
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peek2() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, errAt(t.pos, "expected %s, found %s", k, t)
	}
	return t, nil
}

func (p *parser) expectIdent(want string) (token, error) {
	t := p.next()
	if t.kind != tokIdent || t.text != want {
		return t, errAt(t.pos, "expected %q, found %s", want, t)
	}
	return t, nil
}

func (p *parser) parseRule() (*Rule, error) {
	p.refs = nil
	start := p.peek().pos
	cond, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	rule := &Rule{Cond: cond, Pos: start}
	for {
		beh, err := p.parseBehavior()
		if err != nil {
			return nil, err
		}
		rule.Behaviors = append(rule.Behaviors, beh)
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind == tokIdent && behaviorKeywords[t.text] && p.peek2().kind == tokLParen {
			continue
		}
		break
	}
	if err := p.bind(rule); err != nil {
		return nil, err
	}
	return rule, nil
}

// bind resolves the rule's ActorRefs in source order: Type(v) declares v;
// a bare identifier is a variable use when v was declared earlier in the
// rule, otherwise an anonymous type pattern.
func (p *parser) bind(rule *Rule) error {
	decls := map[string]*VarDecl{}
	for _, ref := range p.refs {
		if ref.VarName != "" {
			if prev := decls[ref.VarName]; prev != nil {
				return errAt(ref.Pos, "variable %q already declared as %s(%s)", ref.VarName, prev.Type, prev.Name)
			}
			d := &VarDecl{Name: ref.VarName, Type: ref.TypeName, Pos: ref.Pos}
			decls[ref.VarName] = d
			rule.Vars = append(rule.Vars, d)
			ref.Decl = d
			continue
		}
		if d := decls[ref.TypeName]; d != nil {
			// Bare use of a declared variable.
			ref.VarName = ref.TypeName
			ref.TypeName = ""
			ref.Decl = d
		}
	}
	return nil
}

func (p *parser) parseCond() (Cond, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "or" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Cond, error) {
	l, err := p.parseBasic()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "and" {
		p.next()
		r, err := p.parseBasic()
		if err != nil {
			return nil, err
		}
		l = &AndCond{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseBasic() (Cond, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return c, nil
	case t.kind == tokIdent && t.text == "true":
		p.next()
		return &TrueCond{Pos: t.pos}, nil
	case t.kind == tokIdent && t.text == "server":
		p.next()
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		res, pos, err := p.parseResource()
		if err != nil {
			return nil, err
		}
		return p.parseStatCmp(&ResFeature{Server: true, Res: res, Pos: pos})
	case t.kind == tokIdent && t.text == "client":
		p.next()
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		return p.parseCallTail(true, nil, t.pos)
	case t.kind == tokIdent:
		ref, err := p.parseActorRef()
		if err != nil {
			return nil, err
		}
		nt := p.peek()
		if nt.kind == tokIdent && nt.text == "in" {
			p.next()
			return p.parseInRef(ref)
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		sel := p.peek()
		if sel.kind == tokIdent && sel.text == "call" {
			p.next()
			return p.parseCallTail(false, ref, sel.pos)
		}
		res, pos, err := p.parseResource()
		if err != nil {
			return nil, err
		}
		return p.parseStatCmp(&ResFeature{Actor: ref, Res: res, Pos: pos})
	default:
		return nil, errAt(t.pos, "expected condition, found %s", t)
	}
}

// parseCallTail parses call(actor.fname) then .stat comp val. The leading
// "client." or "caller." has been consumed up to (for client) or including
// the "call" identifier (for actor callers the caller ref is given).
func (p *parser) parseCallTail(client bool, caller *ActorRef, pos Pos) (Cond, error) {
	if client {
		if _, err := p.expectIdent("call"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	callee, err := p.parseActorRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	fn, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	feat := &CallFeature{Client: client, Caller: caller, Callee: callee, FName: fn.text, Pos: pos}
	return p.parseStatCmp(feat)
}

// parseStatCmp parses ".stat comp val" after a feature.
func (p *parser) parseStatCmp(feat Feature) (Cond, error) {
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	st, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	var stat Stat
	switch st.text {
	case "count":
		stat = Count
	case "size":
		stat = Size
	case "perc":
		stat = Perc
	default:
		return nil, errAt(st.pos, "expected statistic (count, size, perc), found %q", st.text)
	}
	opTok := p.next()
	var op CmpOp
	switch opTok.kind {
	case tokLT:
		op = LT
	case tokGT:
		op = GT
	case tokLE:
		op = LE
	case tokGE:
		op = GE
	default:
		return nil, errAt(opTok.pos, "expected comparison operator, found %s", opTok)
	}
	val, err := p.expect(tokNumber)
	if err != nil {
		return nil, err
	}
	return &CmpCond{Feat: feat, Stat: stat, Op: op, Val: val.num, Pos: st.pos}, nil
}

// parseInRef parses "ref(actor.pname)" after "sub in".
func (p *parser) parseInRef(sub *ActorRef) (Cond, error) {
	refTok, err := p.expectIdent("ref")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	container, err := p.parseActorRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	prop, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &InRefCond{Sub: sub, Container: container, Prop: prop.text, Pos: refTok.pos}, nil
}

// parseActorRef parses aname | aname(var) | var | any | any(var); binding
// to declarations happens in a later pass.
func (p *parser) parseActorRef() (*ActorRef, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	ref := &ActorRef{TypeName: t.text, Pos: t.pos}
	if t.text == "any" {
		ref.TypeName = AnyType
	}
	if p.peek().kind == tokLParen && p.peek2().kind == tokIdent {
		// Could be Type(var) only if followed by ')'.
		if p.i+2 < len(p.toks) && p.toks[p.i+2].kind == tokRParen {
			p.next() // (
			v := p.next()
			p.next() // )
			ref.VarName = v.text
		}
	}
	p.refs = append(p.refs, ref)
	return ref, nil
}

func (p *parser) parseResource() (Resource, Pos, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return 0, t.pos, err
	}
	switch t.text {
	case "cpu":
		return CPU, t.pos, nil
	case "mem", "memory":
		return Mem, t.pos, nil
	case "net", "network":
		return Net, t.pos, nil
	}
	return 0, t.pos, errAt(t.pos, "expected resource (cpu, mem, net), found %q", t.text)
}

func (p *parser) parseBehavior() (Behavior, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	switch t.text {
	case "balance":
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLBrace); err != nil {
			return nil, err
		}
		var types []string
		for {
			id, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			types = append(types, id.text)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		res, _, err := p.parseResource()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &BalanceBeh{Types: types, Res: res, Pos: t.pos}, nil
	case "reserve":
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		a, err := p.parseActorRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		res, _, err := p.parseResource()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &ReserveBeh{Actor: a, Res: res, Pos: t.pos}, nil
	case "colocate", "separate":
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		a, err := p.parseActorRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
		b, err := p.parseActorRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if t.text == "colocate" {
			return &ColocateBeh{A: a, B: b, Pos: t.pos}, nil
		}
		return &SeparateBeh{A: a, B: b, Pos: t.pos}, nil
	case "pin":
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		a, err := p.parseActorRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &PinBeh{Actor: a, Pos: t.pos}, nil
	case "provclass":
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLBrace); err != nil {
			return nil, err
		}
		var classes []string
		for {
			id, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			classes = append(classes, id.text)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &ProvClassBeh{Classes: classes, Pos: t.pos}, nil
	}
	return nil, errAt(t.pos, "expected behavior (balance, reserve, colocate, separate, pin, provclass), found %q", t.text)
}
