package epl

import (
	"math"

	"plasma/internal/actor"
	"plasma/internal/cluster"
)

// Intents are the concrete elasticity demands produced by evaluating a
// policy against a snapshot. The EMR turns them into migration actions.
type Intents struct {
	Balance   []BalanceIntent
	Reserve   []ReserveIntent
	Colocate  []PairIntent
	Separate  []PairIntent
	Pin       []PinIntent
	ProvClass []ProvClassIntent
}

// BalanceIntent asks for workload balancing of the listed types on the
// named resource. Upper/Lower are taken from the rule's own condition
// (NaN when the condition states no such bound); Violating lists the
// snapshot servers whose utilization triggered the rule.
type BalanceIntent struct {
	Rule      *Rule
	Types     []string
	Res       Resource
	Upper     float64
	Lower     float64
	Violating []cluster.MachineID
}

// HasUpper reports whether the rule stated an upper bound.
func (b BalanceIntent) HasUpper() bool { return !math.IsNaN(b.Upper) }

// HasLower reports whether the rule stated a lower bound.
func (b BalanceIntent) HasLower() bool { return !math.IsNaN(b.Lower) }

// Covers reports whether the intent's type list includes t.
func (b BalanceIntent) Covers(t string) bool {
	for _, x := range b.Types {
		if x == t || x == AnyType {
			return true
		}
	}
	return false
}

// ReserveIntent asks for the actor to get a dedicated server with idle Res.
type ReserveIntent struct {
	Rule  *Rule
	Actor actor.Ref
	Res   Resource
}

// PairIntent asks for two actors to share (colocate) or not share
// (separate) a server.
type PairIntent struct {
	Rule *Rule
	A, B actor.Ref
}

// PinIntent asks for the actor to stay where it is.
type PinIntent struct {
	Rule  *Rule
	Actor actor.Ref
}

// ProvClassIntent asks scale-out to prefer the named provisioning classes
// (in order) while the rule's condition holds.
type ProvClassIntent struct {
	Rule    *Rule
	Classes []string
}

// maxBindings caps binding enumeration per rule as a runaway guard.
const maxBindings = 1 << 20

// FeatureValue is one profiled comparison observed while a rule fired: the
// condition's textual form and the measured left-hand value.
type FeatureValue struct {
	Feature string
	Value   float64
}

// EvalObserver receives evaluation telemetry. Observation is passive: it
// never changes which intents Evaluate produces, and the values reported to
// RuleFired are recomputed from the same snapshot the decision used.
type EvalObserver interface {
	// RuleEvaluated is called once per applicable rule with the number of
	// contexts examined (bindings, or servers for server-scoped rules) and
	// how many of them fired.
	RuleEvaluated(rule *Rule, examined, fired int)
	// RuleFired is called for each firing context. anchor is the zero Ref
	// for server-scoped rules; values lists the profiled comparisons that
	// held in this context.
	RuleFired(rule *Rule, anchor actor.Ref, srv cluster.MachineID, values []FeatureValue)
}

// Evaluate runs every rule in pol against snap and collects intents.
// resourceOnly / interactionOnly select which behavior classes to apply:
// LEMs evaluate with interaction=true, resource=false (Table 2
// applyActRules); GEMs the reverse (applyResRules). Passing both true
// applies everything (useful for tests and single-node deployments).
func Evaluate(pol *Policy, snap *Snapshot, resource, interaction bool) *Intents {
	return EvaluateObserved(pol, snap, resource, interaction, nil)
}

// EvaluateObserved is Evaluate with an optional observer (nil disables
// observation and is exactly Evaluate).
func EvaluateObserved(pol *Policy, snap *Snapshot, resource, interaction bool, obs EvalObserver) *Intents {
	out := &Intents{}
	dedup := newDedup()
	for _, rule := range pol.Rules {
		wantRule := false
		for _, b := range rule.Behaviors {
			if b.Kind().IsResource() && resource || !b.Kind().IsResource() && interaction {
				wantRule = true
			}
		}
		if !wantRule {
			continue
		}
		evalRule(pol, rule, snap, resource, interaction, out, dedup, obs)
	}
	return out
}

// condValues recomputes the profiled left-hand value of every comparison in
// a condition for one firing context. Pure: reads only the snapshot.
func condValues(c Cond, snap *Snapshot, b *binding, ctxSrv *ServerInfo) []FeatureValue {
	var out []FeatureValue
	var walk func(Cond)
	walk = func(c Cond) {
		switch cond := c.(type) {
		case *AndCond:
			walk(cond.L)
			walk(cond.R)
		case *OrCond:
			walk(cond.L)
			walk(cond.R)
		case *CmpCond:
			if v, ok := evalFeature(cond.Feat, cond.Stat, snap, b, ctxSrv); ok {
				out = append(out, FeatureValue{Feature: cond.String(), Value: v})
			}
		}
	}
	walk(c)
	return out
}

// dedup suppresses duplicate intents arising from multiple bindings of the
// same rule (e.g. a folder with two files triggers reserve(folder) once).
type dedup struct {
	pairs     map[[3]uint64]bool
	pins      map[actor.Ref]bool
	reserve   map[actor.Ref]bool
	provclass map[*Rule]bool
}

func newDedup() *dedup {
	return &dedup{
		pairs:     map[[3]uint64]bool{},
		pins:      map[actor.Ref]bool{},
		reserve:   map[actor.Ref]bool{},
		provclass: map[*Rule]bool{},
	}
}

// implicitVars returns the rule's variables plus implicit existential
// variables for anonymous typed actor patterns, ordered so that InRef
// containers are enumerated before their subjects (which enables pruning
// candidate sets through reference properties).
func ruleBindingRefs(rule *Rule) []*ActorRef {
	var refs []*ActorRef
	seenDecl := map[*VarDecl]bool{}
	add := func(r *ActorRef) {
		if r == nil {
			return
		}
		if r.Decl != nil {
			if seenDecl[r.Decl] {
				return
			}
			seenDecl[r.Decl] = true
		}
		refs = append(refs, r)
	}
	var walkCond func(c Cond)
	walkCond = func(c Cond) {
		switch cond := c.(type) {
		case *AndCond:
			walkCond(cond.L)
			walkCond(cond.R)
		case *OrCond:
			walkCond(cond.L)
			walkCond(cond.R)
		case *InRefCond:
			add(cond.Container) // container first for pruning
			add(cond.Sub)
		case *CmpCond:
			switch f := cond.Feat.(type) {
			case *ResFeature:
				if !f.Server {
					add(f.Actor)
				}
			case *CallFeature:
				add(f.Callee)
				if !f.Client {
					add(f.Caller)
				}
			}
		}
	}
	walkCond(rule.Cond)
	for _, b := range rule.Behaviors {
		switch beh := b.(type) {
		case *ReserveBeh:
			add(beh.Actor)
		case *ColocateBeh:
			add(beh.A)
			add(beh.B)
		case *SeparateBeh:
			add(beh.A)
			add(beh.B)
		case *PinBeh:
			add(beh.Actor)
		}
	}
	return refs
}

// binding maps binding refs (by identity of their VarDecl, or the ref
// itself for anonymous patterns) to concrete actors.
type binding struct {
	byDecl map[*VarDecl]*ActorInfo
	byRef  map[*ActorRef]*ActorInfo
	anchor *ActorInfo // first bound actor; its server is the rule's "server"
}

func (b *binding) lookup(ref *ActorRef) *ActorInfo {
	if ref.Decl != nil {
		return b.byDecl[ref.Decl]
	}
	return b.byRef[ref]
}

func evalRule(pol *Policy, rule *Rule, snap *Snapshot, resource, interaction bool, out *Intents, dd *dedup, obs EvalObserver) {
	refs := ruleBindingRefs(rule)
	if len(refs) == 0 {
		// Server-scoped rule (e.g. pure balance): the condition is checked
		// against each server.
		var violating []cluster.MachineID
		examined := 0
		for _, srv := range snap.Servers {
			if !srv.Up {
				continue
			}
			examined++
			b := &binding{}
			if evalCond(rule.Cond, snap, b, srv) {
				violating = append(violating, srv.ID)
				if obs != nil {
					obs.RuleFired(rule, actor.Ref{}, srv.ID, condValues(rule.Cond, snap, b, srv))
				}
			}
		}
		if obs != nil {
			obs.RuleEvaluated(rule, examined, len(violating))
		}
		if len(violating) > 0 {
			emitBehaviors(pol, rule, snap, &binding{}, violating, resource, interaction, out, dd)
		}
		return
	}

	// Enumerate bindings with InRef-based pruning.
	inrefs := collectInRefs(rule.Cond)
	b := &binding{byDecl: map[*VarDecl]*ActorInfo{}, byRef: map[*ActorRef]*ActorInfo{}}
	count := 0
	fired := 0
	var rec func(i int)
	rec = func(i int) {
		if count > maxBindings {
			return
		}
		if i == len(refs) {
			count++
			ctxSrv := snap.Server(b.anchor.Server)
			if ctxSrv == nil {
				return
			}
			if evalCond(rule.Cond, snap, b, ctxSrv) {
				fired++
				if obs != nil {
					obs.RuleFired(rule, b.anchor.Ref, ctxSrv.ID, condValues(rule.Cond, snap, b, ctxSrv))
				}
				emitBehaviors(pol, rule, snap, b, []cluster.MachineID{ctxSrv.ID}, resource, interaction, out, dd)
			}
			return
		}
		ref := refs[i]
		cands := candidatesFor(pol, ref, snap, b, inrefs)
		for _, cand := range cands {
			bind(b, ref, cand, i == 0)
			rec(i + 1)
			unbind(b, ref, i == 0)
		}
	}
	rec(0)
	if obs != nil {
		obs.RuleEvaluated(rule, count, fired)
	}
}

func bind(b *binding, ref *ActorRef, a *ActorInfo, first bool) {
	if ref.Decl != nil {
		b.byDecl[ref.Decl] = a
	} else {
		b.byRef[ref] = a
	}
	if first {
		b.anchor = a
	}
}

func unbind(b *binding, ref *ActorRef, first bool) {
	if ref.Decl != nil {
		delete(b.byDecl, ref.Decl)
	} else {
		delete(b.byRef, ref)
	}
	if first {
		b.anchor = nil
	}
}

func collectInRefs(c Cond) []*InRefCond {
	var out []*InRefCond
	var walk func(Cond)
	walk = func(c Cond) {
		switch cond := c.(type) {
		case *AndCond:
			walk(cond.L)
			walk(cond.R)
		case *OrCond:
			walk(cond.L)
			walk(cond.R)
		case *InRefCond:
			out = append(out, cond)
		}
	}
	walk(c)
	return out
}

// candidatesFor narrows a ref's candidates: when the ref is the subject of
// an InRef whose container is already bound, only the container's property
// refs qualify.
func candidatesFor(pol *Policy, ref *ActorRef, snap *Snapshot, b *binding, inrefs []*InRefCond) []*ActorInfo {
	typ := ref.Type()
	types := pol.Expand(typ)
	match := func(t string) bool {
		if typ == AnyType {
			return true
		}
		for _, x := range types {
			if x == t {
				return true
			}
		}
		return false
	}
	for _, ir := range inrefs {
		if !sameBindingTarget(ir.Sub, ref) {
			continue
		}
		container := b.lookup(ir.Container)
		if container == nil {
			continue
		}
		var cands []*ActorInfo
		for _, pr := range container.Props[ir.Prop] {
			if ai := snap.Actor(pr); ai != nil && match(ai.Type) {
				cands = append(cands, ai)
			}
		}
		return cands
	}
	return snap.OfTypes(types)
}

// sameBindingTarget reports whether two refs bind the same slot.
func sameBindingTarget(a, b *ActorRef) bool {
	if a == b {
		return true
	}
	return a.Decl != nil && a.Decl == b.Decl
}

func evalCond(c Cond, snap *Snapshot, b *binding, ctxSrv *ServerInfo) bool {
	switch cond := c.(type) {
	case *TrueCond:
		return true
	case *AndCond:
		return evalCond(cond.L, snap, b, ctxSrv) && evalCond(cond.R, snap, b, ctxSrv)
	case *OrCond:
		return evalCond(cond.L, snap, b, ctxSrv) || evalCond(cond.R, snap, b, ctxSrv)
	case *InRefCond:
		sub := b.lookup(cond.Sub)
		container := b.lookup(cond.Container)
		if sub == nil || container == nil {
			return false
		}
		for _, r := range container.Props[cond.Prop] {
			if r == sub.Ref {
				return true
			}
		}
		return false
	case *CmpCond:
		v, ok := evalFeature(cond.Feat, cond.Stat, snap, b, ctxSrv)
		return ok && cond.Op.Apply(v, cond.Val)
	}
	return false
}

func evalFeature(f Feature, stat Stat, snap *Snapshot, b *binding, ctxSrv *ServerInfo) (float64, bool) {
	switch feat := f.(type) {
	case *ResFeature:
		if feat.Server {
			if ctxSrv == nil {
				return 0, false
			}
			return ctxSrv.Res(feat.Res), true
		}
		a := b.lookup(feat.Actor)
		if a == nil {
			return 0, false
		}
		if stat == Size {
			return a.ResSize(feat.Res), true
		}
		return a.ResOf(feat.Res), true
	case *CallFeature:
		callee := b.lookup(feat.Callee)
		if callee == nil {
			return 0, false
		}
		wantCallerType := ""
		var wantCaller actor.Ref
		if feat.Client {
			wantCallerType = actor.ClientCaller
		} else if feat.Caller != nil {
			if ca := b.lookup(feat.Caller); ca != nil {
				wantCaller = ca.Ref
			} else {
				wantCallerType = feat.Caller.Type()
			}
		}
		count, bytes := sumCalls(callee, feat.FName, wantCallerType, wantCaller)
		switch stat {
		case Count:
			return float64(count), true
		case Size:
			return float64(bytes), true
		case Perc:
			// Share of this method's calls received by this actor among all
			// actors on the same server (§3.2 category iii).
			var total int64
			for _, other := range snap.Actors {
				if other.Server != callee.Server {
					continue
				}
				c, _ := sumCalls(other, feat.FName, wantCallerType, wantCaller)
				total += c
			}
			if total == 0 {
				return 0, true
			}
			return float64(count) / float64(total) * 100, true
		}
	}
	return 0, false
}

func sumCalls(a *ActorInfo, method, callerType string, caller actor.Ref) (count, bytes int64) {
	for _, cs := range a.Calls {
		if cs.Method != method {
			continue
		}
		if callerType != "" && cs.CallerType != callerType {
			continue
		}
		if !caller.Zero() && cs.Caller != caller {
			continue
		}
		count += cs.Count
		bytes += cs.Bytes
	}
	return count, bytes
}

func emitBehaviors(pol *Policy, rule *Rule, snap *Snapshot, b *binding, violating []cluster.MachineID, resource, interaction bool, out *Intents, dd *dedup) {
	for _, beh := range rule.Behaviors {
		isRes := beh.Kind().IsResource()
		if isRes && !resource || !isRes && !interaction {
			continue
		}
		switch bh := beh.(type) {
		case *BalanceBeh:
			upper, lower := extractBounds(rule.Cond, bh.Res)
			// Subtype-aware: a balance on a parent type covers its
			// schema-declared subtypes too.
			var types []string
			for _, t := range bh.Types {
				types = append(types, pol.Expand(t)...)
			}
			out.Balance = mergeBalance(out.Balance, BalanceIntent{
				Rule: rule, Types: types, Res: bh.Res, Upper: upper, Lower: lower, Violating: violating,
			})
		case *ReserveBeh:
			if a := b.lookup(bh.Actor); a != nil && !dd.reserve[a.Ref] {
				dd.reserve[a.Ref] = true
				out.Reserve = append(out.Reserve, ReserveIntent{Rule: rule, Actor: a.Ref, Res: bh.Res})
			}
		case *ColocateBeh:
			if x, y := b.lookup(bh.A), b.lookup(bh.B); x != nil && y != nil && x.Ref != y.Ref {
				key := [3]uint64{uint64(x.Ref.ID), uint64(y.Ref.ID), 0}
				if !dd.pairs[key] {
					dd.pairs[key] = true
					out.Colocate = append(out.Colocate, PairIntent{Rule: rule, A: x.Ref, B: y.Ref})
				}
			}
		case *SeparateBeh:
			if x, y := b.lookup(bh.A), b.lookup(bh.B); x != nil && y != nil && x.Ref != y.Ref {
				key := [3]uint64{uint64(x.Ref.ID), uint64(y.Ref.ID), 1}
				if !dd.pairs[key] {
					dd.pairs[key] = true
					out.Separate = append(out.Separate, PairIntent{Rule: rule, A: x.Ref, B: y.Ref})
				}
			}
		case *PinBeh:
			if a := b.lookup(bh.Actor); a != nil && !dd.pins[a.Ref] {
				dd.pins[a.Ref] = true
				out.Pin = append(out.Pin, PinIntent{Rule: rule, Actor: a.Ref})
			}
		case *ProvClassBeh:
			// One intent per rule regardless of how many contexts fired.
			if !dd.provclass[rule] {
				dd.provclass[rule] = true
				out.ProvClass = append(out.ProvClass, ProvClassIntent{Rule: rule, Classes: bh.Classes})
			}
		}
	}
}

// mergeBalance collapses repeated triggers of the same balance rule into
// one intent with the union of violating servers.
func mergeBalance(list []BalanceIntent, bi BalanceIntent) []BalanceIntent {
	for i := range list {
		if list[i].Rule == bi.Rule {
			have := map[cluster.MachineID]bool{}
			for _, s := range list[i].Violating {
				have[s] = true
			}
			for _, s := range bi.Violating {
				if !have[s] {
					list[i].Violating = append(list[i].Violating, s)
				}
			}
			return list
		}
	}
	return append(list, bi)
}

// extractBounds scans a condition for server-resource comparisons on res
// and derives the rule's upper (from > / >=) and lower (from < / <=)
// thresholds. Missing bounds are NaN.
func extractBounds(c Cond, res Resource) (upper, lower float64) {
	upper, lower = math.NaN(), math.NaN()
	var walk func(Cond)
	walk = func(c Cond) {
		switch cond := c.(type) {
		case *AndCond:
			walk(cond.L)
			walk(cond.R)
		case *OrCond:
			walk(cond.L)
			walk(cond.R)
		case *CmpCond:
			rf, ok := cond.Feat.(*ResFeature)
			if !ok || !rf.Server || rf.Res != res || cond.Stat != Perc {
				return
			}
			switch cond.Op {
			case GT, GE:
				if math.IsNaN(upper) || cond.Val < upper {
					upper = cond.Val
				}
			case LT, LE:
				if math.IsNaN(lower) || cond.Val > lower {
					lower = cond.Val
				}
			}
		}
	}
	walk(c)
	return upper, lower
}
