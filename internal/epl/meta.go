package epl

// meta.go exports the condition/behavior metadata offline analyzers need.
// The lint interval passes and the scaling-state model checker
// (internal/lint/model) compile policies into abstract transition systems;
// they must see exactly the thresholds and preference chains the EMR's
// planner acts on, so these accessors wrap the evaluator's own helpers
// rather than re-deriving them.

// WalkCmps calls f for every comparison atom in c, in syntactic order.
func WalkCmps(c Cond, f func(*CmpCond)) {
	switch cond := c.(type) {
	case *AndCond:
		WalkCmps(cond.L, f)
		WalkCmps(cond.R, f)
	case *OrCond:
		WalkCmps(cond.L, f)
		WalkCmps(cond.R, f)
	case *CmpCond:
		f(cond)
	}
}

// CondBounds scans a condition for server-resource comparisons on res and
// derives the upper (from > / >=) and lower (from < / <=) thresholds,
// NaN when absent — the same extraction planBalance runs when the rule
// fires, so offline models scale exactly where the EMR would.
func CondBounds(c Cond, res Resource) (upper, lower float64) {
	return extractBounds(c, res)
}

// ProvClassChain returns the provisioning-class preference chain the
// rule's provclass behaviors demand, in behavior order (nil when the rule
// has none). Class names are as written; Check has already validated them
// against the cluster's spectrum.
func (r *Rule) ProvClassChain() []string {
	var chain []string
	for _, b := range r.Behaviors {
		if pb, ok := b.(*ProvClassBeh); ok {
			chain = append(chain, pb.Classes...)
		}
	}
	return chain
}

// BindingRefs reports the actor references the evaluator must bind to
// concrete actors before the rule can fire. A rule with binding refs never
// fires on server-wide state alone, so abstract models that track no
// individual actors cannot prove it enabled — only possibly enabled.
func (r *Rule) BindingRefs() []*ActorRef {
	return ruleBindingRefs(r)
}

// ServerPercThresholds collects the distinct server.<res>.perc comparison
// values across the whole policy, unordered. Model checkers discretize the
// utilization axis at these points so abstract states never straddle a
// rule boundary.
func (p *Policy) ServerPercThresholds(res Resource) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, r := range p.Rules {
		WalkCmps(r.Cond, func(c *CmpCond) {
			rf, ok := c.Feat.(*ResFeature)
			if !ok || !rf.Server || rf.Res != res || c.Stat != Perc {
				return
			}
			if !seen[c.Val] {
				seen[c.Val] = true
				out = append(out, c.Val)
			}
		})
	}
	return out
}
