package epl

import (
	"fmt"
	"sort"
)

// Schema describes the application program's actor classes (Fig. 3.I) for
// semantic checking of a policy against it.
type Schema struct {
	Actors map[string]*ActorSchema
}

// ActorSchema declares one actor class: its functions (message handlers),
// reference properties, and (optionally) a parent class. §3.2 notes that
// PLASMA "currently treats actor subtypes as distinct types from their
// parent types"; declaring Parent enables the natural extension — a rule
// written for the parent type also matches subtype actors (see
// Policy.Expand).
type ActorSchema struct {
	Name      string
	Parent    string
	Functions []string
	Props     []string
}

// NewSchema builds a schema from actor class declarations.
func NewSchema(classes ...*ActorSchema) *Schema {
	s := &Schema{Actors: make(map[string]*ActorSchema)}
	for _, c := range classes {
		s.Actors[c.Name] = c
	}
	return s
}

// Class declares an actor class for NewSchema.
func Class(name string, funcs []string, props []string) *ActorSchema {
	return &ActorSchema{Name: name, Functions: funcs, Props: props}
}

// Subclass declares an actor class extending a parent class. The subtype
// inherits nothing structurally (functions/props are its own), but rules
// naming the parent type match subtype actors after Check.
func Subclass(name, parent string, funcs []string, props []string) *ActorSchema {
	return &ActorSchema{Name: name, Parent: parent, Functions: funcs, Props: props}
}

// descendants returns the set of types equal to or transitively extending
// t, in deterministic order.
func (s *Schema) descendants(t string) []string {
	out := []string{t}
	// Breadth-first over the child relation.
	for i := 0; i < len(out); i++ {
		names := make([]string, 0, len(s.Actors))
		for n := range s.Actors {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if s.Actors[n].Parent == out[i] {
				out = append(out, n)
			}
		}
	}
	return out
}

func (a *ActorSchema) hasFunc(name string) bool {
	for _, f := range a.Functions {
		if f == name {
			return true
		}
	}
	return false
}

func (a *ActorSchema) hasProp(name string) bool {
	for _, p := range a.Props {
		if p == name {
			return true
		}
	}
	return false
}

// Warning is a non-fatal diagnostic, primarily from conflict detection
// (§4.3: "PLASMA's compiler detects conflicting rules for the same actor
// type, and issues warnings").
type Warning struct {
	Pos Pos
	Msg string
}

func (w Warning) String() string { return fmt.Sprintf("epl:%s: warning: %s", w.Pos, w.Msg) }

// Check validates a policy against a schema (nil schema skips name checks)
// and returns conflict warnings. It returns the first semantic error found.
// When the schema declares subtype relations, Check also compiles them into
// the policy so rule evaluation matches subtype actors (Policy.Expand).
func Check(pol *Policy, schema *Schema) ([]Warning, error) {
	for _, r := range pol.Rules {
		if err := checkRule(r, schema); err != nil {
			return nil, err
		}
	}
	if schema != nil {
		pol.subtypes = map[string][]string{}
		for name, as := range schema.Actors {
			if as.Parent != "" {
				// Only bother when any hierarchy exists.
				for n := range schema.Actors {
					pol.subtypes[n] = schema.descendants(n)
				}
				break
			}
			_ = name
		}
	}
	return detectConflicts(pol), nil
}

func checkRule(r *Rule, schema *Schema) error {
	// Every variable must have a concrete or any type.
	for _, v := range r.Vars {
		if err := checkType(v.Type, v.Pos, schema); err != nil {
			return err
		}
	}
	if err := checkCond(r.Cond, schema); err != nil {
		return err
	}
	usedInBeh := map[string]bool{}
	for _, b := range r.Behaviors {
		switch beh := b.(type) {
		case *BalanceBeh:
			for _, t := range beh.Types {
				if err := checkType(t, beh.Pos, schema); err != nil {
					return err
				}
				// balance takes type names, not variables (§3.2).
				if r.VarByName(t) != nil {
					return errAt(beh.Pos, "balance takes actor types, not variables (%q is a variable)", t)
				}
			}
		case *ReserveBeh:
			if err := checkActorRef(beh.Actor, schema); err != nil {
				return err
			}
			markVar(beh.Actor, usedInBeh)
		case *ColocateBeh:
			if err := checkActorRef(beh.A, schema); err != nil {
				return err
			}
			if err := checkActorRef(beh.B, schema); err != nil {
				return err
			}
			markVar(beh.A, usedInBeh)
			markVar(beh.B, usedInBeh)
		case *SeparateBeh:
			if err := checkActorRef(beh.A, schema); err != nil {
				return err
			}
			if err := checkActorRef(beh.B, schema); err != nil {
				return err
			}
			markVar(beh.A, usedInBeh)
			markVar(beh.B, usedInBeh)
		case *PinBeh:
			if err := checkActorRef(beh.Actor, schema); err != nil {
				return err
			}
			markVar(beh.Actor, usedInBeh)
		}
	}
	return nil
}

func markVar(ref *ActorRef, used map[string]bool) {
	if ref.Decl != nil {
		used[ref.Decl.Name] = true
	}
}

func checkCond(c Cond, schema *Schema) error {
	switch cond := c.(type) {
	case *TrueCond:
		return nil
	case *AndCond:
		if err := checkCond(cond.L, schema); err != nil {
			return err
		}
		return checkCond(cond.R, schema)
	case *OrCond:
		if err := checkCond(cond.L, schema); err != nil {
			return err
		}
		return checkCond(cond.R, schema)
	case *InRefCond:
		if err := checkActorRef(cond.Sub, schema); err != nil {
			return err
		}
		if err := checkActorRef(cond.Container, schema); err != nil {
			return err
		}
		if schema != nil {
			ct := cond.Container.Type()
			if as := schema.Actors[ct]; as != nil && !as.hasProp(cond.Prop) {
				return errAt(cond.Pos, "actor type %q has no property %q", ct, cond.Prop)
			}
		}
		return nil
	case *CmpCond:
		switch feat := cond.Feat.(type) {
		case *ResFeature:
			if !feat.Server {
				if err := checkActorRef(feat.Actor, schema); err != nil {
					return err
				}
			}
			// Resource features expose utilization percentages and sizes,
			// not counts ("not all statistics apply to all features").
			if cond.Stat == Count {
				return errAt(cond.Pos, "statistic 'count' does not apply to resource feature %s", feat)
			}
		case *CallFeature:
			if !feat.Client {
				if err := checkActorRef(feat.Caller, schema); err != nil {
					return err
				}
			}
			if err := checkActorRef(feat.Callee, schema); err != nil {
				return err
			}
			if schema != nil {
				ct := feat.Callee.Type()
				if as := schema.Actors[ct]; as != nil && !as.hasFunc(feat.FName) {
					return errAt(feat.Pos, "actor type %q has no function %q", ct, feat.FName)
				}
			}
		}
		return nil
	}
	return fmt.Errorf("epl: unknown condition node %T", c)
}

func checkType(name string, pos Pos, schema *Schema) error {
	if name == AnyType || schema == nil {
		return nil
	}
	if schema.Actors[name] == nil {
		return errAt(pos, "unknown actor type %q", name)
	}
	return nil
}

func checkActorRef(ref *ActorRef, schema *Schema) error {
	t := ref.Type()
	if t == "" {
		return errAt(ref.Pos, "unresolved actor reference %q", ref.VarName)
	}
	return checkType(t, ref.Pos, schema)
}

// typePair is an unordered pair of actor type names.
type typePair struct{ a, b string }

func makePair(a, b string) typePair {
	if a > b {
		a, b = b, a
	}
	return typePair{a, b}
}

// detectConflicts flags rule combinations that can demand contradictory
// placements for the same actor type. These are warnings: the runtime
// resolves surviving conflicts by priority (§4.3).
func detectConflicts(pol *Policy) []Warning {
	var warns []Warning
	colocated := map[typePair]Pos{}
	separated := map[typePair]Pos{}
	pinned := map[string]Pos{}
	balanced := map[string]Pos{}
	reserved := map[string]Pos{}

	for _, r := range pol.Rules {
		for _, b := range r.Behaviors {
			switch beh := b.(type) {
			case *ColocateBeh:
				colocated[makePair(beh.A.Type(), beh.B.Type())] = beh.Pos
			case *SeparateBeh:
				separated[makePair(beh.A.Type(), beh.B.Type())] = beh.Pos
			case *PinBeh:
				pinned[beh.Actor.Type()] = beh.Pos
			case *BalanceBeh:
				for _, t := range beh.Types {
					balanced[t] = beh.Pos
				}
			case *ReserveBeh:
				reserved[beh.Actor.Type()] = beh.Pos
			}
		}
	}

	for pair, pos := range colocated {
		if _, ok := separated[pair]; ok {
			warns = append(warns, Warning{Pos: pos, Msg: fmt.Sprintf(
				"types %q and %q are both colocated and separated; runtime priority decides", pair.a, pair.b)})
		}
	}
	for t, pos := range pinned {
		if _, ok := balanced[t]; ok || (t == AnyType && len(balanced) > 0) {
			warns = append(warns, Warning{Pos: pos, Msg: fmt.Sprintf(
				"type %q is pinned but also subject to balance; pinned actors will not be balanced", t)})
		}
		if _, ok := reserved[t]; ok {
			warns = append(warns, Warning{Pos: pos, Msg: fmt.Sprintf(
				"type %q is pinned but also subject to reserve; pinned actors will not be reserved", t)})
		}
	}
	for t, pos := range reserved {
		if _, ok := balanced[t]; ok {
			warns = append(warns, Warning{Pos: pos, Msg: fmt.Sprintf(
				"type %q is both reserved and balanced; runtime priority (balance first) decides", t)})
		}
	}
	for pair := range colocated {
		for _, t := range []string{pair.a, pair.b} {
			if pos, ok := balanced[t]; ok {
				warns = append(warns, Warning{Pos: pos, Msg: fmt.Sprintf(
					"type %q is balanced but also colocated with %q; balance may break colocation", t, other(pair, t))})
			}
		}
	}
	sort.Slice(warns, func(i, j int) bool {
		if warns[i].Pos.Line != warns[j].Pos.Line {
			return warns[i].Pos.Line < warns[j].Pos.Line
		}
		return warns[i].Msg < warns[j].Msg
	})
	return warns
}

func other(p typePair, t string) string {
	if p.a == t {
		return p.b
	}
	return p.a
}
