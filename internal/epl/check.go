package epl

import (
	"fmt"
	"sort"
	"strings"

	"plasma/internal/cluster"
)

// Schema describes the application program's actor classes (Fig. 3.I) for
// semantic checking of a policy against it.
type Schema struct {
	Actors map[string]*ActorSchema
}

// ActorSchema declares one actor class: its functions (message handlers),
// reference properties, and (optionally) a parent class. §3.2 notes that
// PLASMA "currently treats actor subtypes as distinct types from their
// parent types"; declaring Parent enables the natural extension — a rule
// written for the parent type also matches subtype actors (see
// Policy.Expand).
type ActorSchema struct {
	Name      string
	Parent    string
	Functions []string
	Props     []string
}

// NewSchema builds a schema from actor class declarations.
func NewSchema(classes ...*ActorSchema) *Schema {
	s := &Schema{Actors: make(map[string]*ActorSchema)}
	for _, c := range classes {
		s.Actors[c.Name] = c
	}
	return s
}

// Class declares an actor class for NewSchema.
func Class(name string, funcs []string, props []string) *ActorSchema {
	return &ActorSchema{Name: name, Functions: funcs, Props: props}
}

// Subclass declares an actor class extending a parent class. The subtype
// inherits nothing structurally (functions/props are its own), but rules
// naming the parent type match subtype actors after Check.
func Subclass(name, parent string, funcs []string, props []string) *ActorSchema {
	return &ActorSchema{Name: name, Parent: parent, Functions: funcs, Props: props}
}

// descendants returns the set of types equal to or transitively extending
// t, in deterministic order.
func (s *Schema) descendants(t string) []string {
	out := []string{t}
	// Breadth-first over the child relation.
	for i := 0; i < len(out); i++ {
		names := make([]string, 0, len(s.Actors))
		for n := range s.Actors {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if s.Actors[n].Parent == out[i] {
				out = append(out, n)
			}
		}
	}
	return out
}

func (a *ActorSchema) hasFunc(name string) bool {
	for _, f := range a.Functions {
		if f == name {
			return true
		}
	}
	return false
}

func (a *ActorSchema) hasProp(name string) bool {
	for _, p := range a.Props {
		if p == name {
			return true
		}
	}
	return false
}

// Conflict warning codes (EPL1xx), stable for tests and tooling. The
// analyzer passes in internal/lint use the EPL0xx range.
const (
	CodeColocateSeparate = "EPL101" // same pair both colocated and separated
	CodePinBalance       = "EPL102" // pinned type subject to balance
	CodePinReserve       = "EPL103" // pinned type subject to reserve
	CodeReserveBalance   = "EPL104" // reserved type subject to balance
	CodeBalanceColocate  = "EPL105" // balanced type colocated with another
)

// Warning is a non-fatal diagnostic, primarily from conflict detection
// (§4.3: "PLASMA's compiler detects conflicting rules for the same actor
// type, and issues warnings"). Code is a stable diagnostic code; Rules
// lists every rule index involved in the conflict.
type Warning struct {
	Code  string
	Pos   Pos
	Msg   string
	Rules []int
}

func (w Warning) String() string {
	if w.Code == "" {
		return fmt.Sprintf("epl:%s: warning: %s", w.Pos, w.Msg)
	}
	return fmt.Sprintf("epl:%s: warning[%s]: %s", w.Pos, w.Code, w.Msg)
}

// Check validates a policy against a schema (nil schema skips name checks)
// and returns conflict warnings. It returns the first semantic error found.
// When the schema declares subtype relations, Check also compiles them into
// the policy so rule evaluation matches subtype actors (Policy.Expand).
func Check(pol *Policy, schema *Schema) ([]Warning, error) {
	for _, r := range pol.Rules {
		if err := checkRule(r, schema); err != nil {
			return nil, err
		}
	}
	if schema != nil {
		pol.subtypes = map[string][]string{}
		for name, as := range schema.Actors {
			if as.Parent != "" {
				// Only bother when any hierarchy exists.
				for n := range schema.Actors {
					pol.subtypes[n] = schema.descendants(n)
				}
				break
			}
			_ = name
		}
	}
	return detectConflicts(pol), nil
}

func checkRule(r *Rule, schema *Schema) error {
	// Every variable must have a concrete or any type.
	for _, v := range r.Vars {
		if err := checkType(v.Type, v.Pos, schema); err != nil {
			return err
		}
	}
	if err := checkCond(r.Cond, schema); err != nil {
		return err
	}
	usedInBeh := map[string]bool{}
	for _, b := range r.Behaviors {
		switch beh := b.(type) {
		case *BalanceBeh:
			for _, t := range beh.Types {
				if err := checkType(t, beh.Pos, schema); err != nil {
					return err
				}
				// balance takes type names, not variables (§3.2).
				if r.VarByName(t) != nil {
					return errAt(beh.Pos, "balance takes actor types, not variables (%q is a variable)", t)
				}
			}
		case *ReserveBeh:
			if err := checkActorRef(beh.Actor, schema); err != nil {
				return err
			}
			markVar(beh.Actor, usedInBeh)
		case *ColocateBeh:
			if err := checkActorRef(beh.A, schema); err != nil {
				return err
			}
			if err := checkActorRef(beh.B, schema); err != nil {
				return err
			}
			markVar(beh.A, usedInBeh)
			markVar(beh.B, usedInBeh)
		case *SeparateBeh:
			if err := checkActorRef(beh.A, schema); err != nil {
				return err
			}
			if err := checkActorRef(beh.B, schema); err != nil {
				return err
			}
			markVar(beh.A, usedInBeh)
			markVar(beh.B, usedInBeh)
		case *PinBeh:
			if err := checkActorRef(beh.Actor, schema); err != nil {
				return err
			}
			markVar(beh.Actor, usedInBeh)
		case *ProvClassBeh:
			for _, c := range beh.Classes {
				if _, ok := cluster.ProvClassFromString(c); !ok {
					return errAt(beh.Pos, "unknown provisioning class %q (expected one of %s)",
						c, strings.Join(cluster.ProvClassNames(), ", "))
				}
			}
		}
	}
	return nil
}

func markVar(ref *ActorRef, used map[string]bool) {
	if ref.Decl != nil {
		used[ref.Decl.Name] = true
	}
}

func checkCond(c Cond, schema *Schema) error {
	switch cond := c.(type) {
	case *TrueCond:
		return nil
	case *AndCond:
		if err := checkCond(cond.L, schema); err != nil {
			return err
		}
		return checkCond(cond.R, schema)
	case *OrCond:
		if err := checkCond(cond.L, schema); err != nil {
			return err
		}
		return checkCond(cond.R, schema)
	case *InRefCond:
		if err := checkActorRef(cond.Sub, schema); err != nil {
			return err
		}
		if err := checkActorRef(cond.Container, schema); err != nil {
			return err
		}
		if schema != nil {
			ct := cond.Container.Type()
			if as := schema.Actors[ct]; as != nil && !as.hasProp(cond.Prop) {
				return errAt(cond.Pos, "actor type %q has no property %q", ct, cond.Prop)
			}
		}
		return nil
	case *CmpCond:
		switch feat := cond.Feat.(type) {
		case *ResFeature:
			if !feat.Server {
				if err := checkActorRef(feat.Actor, schema); err != nil {
					return err
				}
			}
			// Resource features expose utilization percentages and sizes,
			// not counts ("not all statistics apply to all features").
			if cond.Stat == Count {
				return errAt(cond.Pos, "statistic 'count' does not apply to resource feature %s", feat)
			}
		case *CallFeature:
			if !feat.Client {
				if err := checkActorRef(feat.Caller, schema); err != nil {
					return err
				}
			}
			if err := checkActorRef(feat.Callee, schema); err != nil {
				return err
			}
			if schema != nil {
				ct := feat.Callee.Type()
				if as := schema.Actors[ct]; as != nil && !as.hasFunc(feat.FName) {
					return errAt(feat.Pos, "actor type %q has no function %q", ct, feat.FName)
				}
			}
		}
		return nil
	}
	return fmt.Errorf("epl: unknown condition node %T", c)
}

func checkType(name string, pos Pos, schema *Schema) error {
	if name == AnyType || schema == nil {
		return nil
	}
	if schema.Actors[name] == nil {
		return errAt(pos, "unknown actor type %q", name)
	}
	return nil
}

func checkActorRef(ref *ActorRef, schema *Schema) error {
	t := ref.Type()
	if t == "" {
		return errAt(ref.Pos, "unresolved actor reference %q", ref.VarName)
	}
	return checkType(t, ref.Pos, schema)
}

// typePair is an unordered pair of actor type names.
type typePair struct{ a, b string }

func makePair(a, b string) typePair {
	if a > b {
		a, b = b, a
	}
	return typePair{a, b}
}

// occ is one behavior occurrence: the rule it appears in and its position.
type occ struct {
	rule int
	pos  Pos
}

// detectConflicts flags rule combinations that can demand contradictory
// placements for the same actor type. These are warnings: the runtime
// resolves surviving conflicts by priority (§4.3). Every occurrence of a
// conflicting behavior is reported (not just the last one recorded), each
// warning carrying the full set of involved rule indices; type names are
// expanded through the schema hierarchy compiled by Check, so a rule
// naming a parent type conflict-checks against rules naming its subtypes.
func detectConflicts(pol *Policy) []Warning {
	var warns []Warning
	colocated := map[typePair][]occ{}
	separated := map[typePair][]occ{}
	pinned := map[string][]occ{}
	balanced := map[string][]occ{}
	reserved := map[string][]occ{}

	addPair := func(m map[typePair][]occ, a, b string, o occ) {
		for _, xa := range pol.Expand(a) {
			for _, xb := range pol.Expand(b) {
				m[makePair(xa, xb)] = append(m[makePair(xa, xb)], o)
			}
		}
	}
	addType := func(m map[string][]occ, t string, o occ) {
		for _, x := range pol.Expand(t) {
			m[x] = append(m[x], o)
		}
	}

	for _, r := range pol.Rules {
		for _, b := range r.Behaviors {
			switch beh := b.(type) {
			case *ColocateBeh:
				addPair(colocated, beh.A.Type(), beh.B.Type(), occ{r.Index, beh.Pos})
			case *SeparateBeh:
				addPair(separated, beh.A.Type(), beh.B.Type(), occ{r.Index, beh.Pos})
			case *PinBeh:
				addType(pinned, beh.Actor.Type(), occ{r.Index, beh.Pos})
			case *BalanceBeh:
				for _, t := range beh.Types {
					addType(balanced, t, occ{r.Index, beh.Pos})
				}
			case *ReserveBeh:
				addType(reserved, beh.Actor.Type(), occ{r.Index, beh.Pos})
			}
		}
	}

	// typeOccs returns every occurrence in m matching type t, honoring the
	// AnyType wildcard on either side.
	typeOccs := func(m map[string][]occ, t string) []occ {
		if t == AnyType {
			var all []occ
			for _, key := range sortedTypeKeys(m) {
				all = append(all, m[key]...)
			}
			return all
		}
		out := append([]occ(nil), m[t]...)
		out = append(out, m[AnyType]...)
		return out
	}

	for _, pair := range sortedPairKeys(colocated) {
		seps := separated[pair]
		if len(seps) == 0 {
			continue
		}
		rules := ruleUnion(colocated[pair], seps)
		for _, o := range colocated[pair] {
			warns = append(warns, Warning{Code: CodeColocateSeparate, Pos: o.pos, Rules: rules, Msg: fmt.Sprintf(
				"types %q and %q are both colocated and separated (rules %s); runtime priority decides",
				pair.a, pair.b, ruleList(rules))})
		}
	}
	for _, t := range sortedTypeKeys(pinned) {
		if boccs := typeOccs(balanced, t); len(boccs) > 0 {
			rules := ruleUnion(pinned[t], boccs)
			for _, o := range pinned[t] {
				warns = append(warns, Warning{Code: CodePinBalance, Pos: o.pos, Rules: rules, Msg: fmt.Sprintf(
					"type %q is pinned but also subject to balance (rules %s); pinned actors will not be balanced",
					t, ruleList(rules))})
			}
		}
		if roccs := typeOccs(reserved, t); len(roccs) > 0 {
			rules := ruleUnion(pinned[t], roccs)
			for _, o := range pinned[t] {
				warns = append(warns, Warning{Code: CodePinReserve, Pos: o.pos, Rules: rules, Msg: fmt.Sprintf(
					"type %q is pinned but also subject to reserve (rules %s); pinned actors will not be reserved",
					t, ruleList(rules))})
			}
		}
	}
	for _, t := range sortedTypeKeys(reserved) {
		if boccs := typeOccs(balanced, t); len(boccs) > 0 {
			rules := ruleUnion(reserved[t], boccs)
			for _, o := range reserved[t] {
				warns = append(warns, Warning{Code: CodeReserveBalance, Pos: o.pos, Rules: rules, Msg: fmt.Sprintf(
					"type %q is both reserved and balanced (rules %s); runtime priority (balance first) decides",
					t, ruleList(rules))})
			}
		}
	}
	for _, pair := range sortedPairKeys(colocated) {
		ts := []string{pair.a}
		if pair.b != pair.a {
			ts = append(ts, pair.b)
		}
		for _, t := range ts {
			boccs := balanced[t]
			if len(boccs) == 0 {
				continue
			}
			rules := ruleUnion(colocated[pair], boccs)
			for _, o := range boccs {
				warns = append(warns, Warning{Code: CodeBalanceColocate, Pos: o.pos, Rules: rules, Msg: fmt.Sprintf(
					"type %q is balanced but also colocated with %q (rules %s); balance may break colocation",
					t, other(pair, t), ruleList(rules))})
			}
		}
	}
	sort.Slice(warns, func(i, j int) bool {
		if warns[i].Pos.Line != warns[j].Pos.Line {
			return warns[i].Pos.Line < warns[j].Pos.Line
		}
		if warns[i].Code != warns[j].Code {
			return warns[i].Code < warns[j].Code
		}
		return warns[i].Msg < warns[j].Msg
	})
	return warns
}

// sortedPairKeys orders conflict-map pair keys deterministically.
func sortedPairKeys(m map[typePair][]occ) []typePair {
	keys := make([]typePair, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	return keys
}

// sortedTypeKeys orders conflict-map type keys deterministically.
func sortedTypeKeys(m map[string][]occ) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ruleUnion is the sorted, deduplicated set of rule indices across
// occurrence lists.
func ruleUnion(lists ...[]occ) []int {
	set := map[int]bool{}
	for _, l := range lists {
		for _, o := range l {
			set[o.rule] = true
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// ruleList renders rule indices as "#0, #2".
func ruleList(rules []int) string {
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = fmt.Sprintf("#%d", r)
	}
	return strings.Join(parts, ", ")
}

func other(p typePair, t string) string {
	if p.a == t {
		return p.b
	}
	return p.a
}
