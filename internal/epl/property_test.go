package epl

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"plasma/internal/cluster"
)

// genPolicy builds a random syntactically valid policy from the Fig. 3
// grammar.
func genPolicy(rng *rand.Rand) string {
	types := []string{"Folder", "File", "Worker", "Session", "Player"}
	funcs := []string{"open", "read", "compute", "track"}
	props := []string{"files", "children", "players"}
	res := []string{"cpu", "mem", "net"}
	comp := []string{"<", ">", "<=", ">="}

	var sb strings.Builder
	rules := rng.Intn(4) + 1
	varCounter := 0
	for r := 0; r < rules; r++ {
		var declared []string
		newVar := func(t string) string {
			varCounter++
			v := fmt.Sprintf("v%d", varCounter)
			declared = append(declared, v)
			return fmt.Sprintf("%s(%s)", t, v)
		}
		anyVar := func(t string) string {
			if len(declared) > 0 && rng.Intn(2) == 0 {
				return declared[rng.Intn(len(declared))]
			}
			return newVar(t)
		}
		basic := func() string {
			switch rng.Intn(4) {
			case 0:
				return "true"
			case 1:
				return fmt.Sprintf("server.%s.perc %s %d", res[rng.Intn(3)], comp[rng.Intn(4)], rng.Intn(100))
			case 2:
				return fmt.Sprintf("client.call(%s.%s).%s %s %d",
					newVar(types[rng.Intn(len(types))]), funcs[rng.Intn(len(funcs))],
					[]string{"count", "size", "perc"}[rng.Intn(3)], comp[rng.Intn(4)], rng.Intn(100))
			default:
				return fmt.Sprintf("%s in ref(%s.%s)",
					newVar(types[rng.Intn(len(types))]),
					newVar(types[rng.Intn(len(types))]), props[rng.Intn(len(props))])
			}
		}
		cond := basic()
		for c := rng.Intn(2); c > 0; c-- {
			op := " and "
			if rng.Intn(2) == 0 {
				op = " or "
			}
			cond += op + basic()
		}
		var behs []string
		for b := rng.Intn(2) + 1; b > 0; b-- {
			switch rng.Intn(5) {
			case 0:
				behs = append(behs, fmt.Sprintf("balance({%s}, %s)", types[rng.Intn(len(types))], res[rng.Intn(3)]))
			case 1:
				behs = append(behs, fmt.Sprintf("reserve(%s, %s)", anyVar(types[rng.Intn(len(types))]), res[rng.Intn(3)]))
			case 2:
				behs = append(behs, fmt.Sprintf("colocate(%s, %s)", anyVar("Folder"), anyVar("File")))
			case 3:
				behs = append(behs, fmt.Sprintf("separate(%s, %s)", anyVar("Worker"), anyVar("Player")))
			default:
				behs = append(behs, fmt.Sprintf("pin(%s)", anyVar("Session")))
			}
		}
		fmt.Fprintf(&sb, "%s => %s;\n", cond, strings.Join(behs, "; "))
	}
	return sb.String()
}

// Property: generated policies parse, check (against a nil schema), and
// String() is a fixpoint under re-parsing.
func TestPropertyRandomPoliciesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		src := genPolicy(rng)
		pol, err := Parse(src)
		if err != nil {
			t.Fatalf("generated policy failed to parse: %v\n%s", err, src)
		}
		if _, err := Check(pol, nil); err != nil {
			t.Fatalf("generated policy failed check: %v\n%s", err, src)
		}
		printed := pol.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed policy failed to re-parse: %v\n%s", err, printed)
		}
		if again.String() != printed {
			t.Fatalf("String() not a fixpoint:\n%s\nvs\n%s", printed, again.String())
		}
		if len(again.Rules) != len(pol.Rules) {
			t.Fatalf("rule count changed across round trip")
		}
	}
}

// Property: evaluation never panics and dedup holds (no duplicate pins) on
// random snapshots for random policies.
func TestPropertyEvaluateTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		pol, err := Parse(genPolicy(rng))
		if err != nil {
			t.Fatal(err)
		}
		b := newSnap()
		for s := 0; s < 3; s++ {
			b.server(cluster.MachineID(s), rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		}
		types := []string{"Folder", "File", "Worker", "Session", "Player"}
		for a := 0; a < 12; a++ {
			b.actor(types[rng.Intn(len(types))], cluster.MachineID(rng.Intn(3)), rng.Float64()*60)
		}
		in := Evaluate(pol, b.build(), true, true)
		seenPin := map[string]bool{}
		for _, p := range in.Pin {
			key := p.Actor.String()
			if seenPin[key] {
				t.Fatalf("duplicate pin for %s", key)
			}
			seenPin[key] = true
		}
	}
}
