package epl

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokLParen // (
	tokRParen // )
	tokLBrace // {
	tokRBrace // }
	tokComma  // ,
	tokSemi   // ;
	tokDot    // .
	tokArrow  // =>
	tokLT     // <
	tokGT     // >
	tokLE     // <=
	tokGE     // >=
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokDot:
		return "'.'"
	case tokArrow:
		return "'=>'"
	case tokLT:
		return "'<'"
	case tokGT:
		return "'>'"
	case tokLE:
		return "'<='"
	case tokGE:
		return "'>='"
	}
	return "token?"
}

type token struct {
	kind tokKind
	text string
	num  float64
	pos  Pos
}

func (t token) String() string {
	switch t.kind {
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	case tokNumber:
		return fmt.Sprintf("number %s", t.text)
	default:
		return t.kind.String()
	}
}

// Error is a positioned EPL compilation error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("epl:%s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes EPL source. Comments run from '#' or '//' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	pos := func() Pos { return Pos{Line: line, Col: col} }
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '#' || (c == '/' && i+1 < n && src[i+1] == '/'):
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '(':
			toks = append(toks, token{kind: tokLParen, pos: pos()})
			advance(1)
		case c == ')':
			toks = append(toks, token{kind: tokRParen, pos: pos()})
			advance(1)
		case c == '{':
			toks = append(toks, token{kind: tokLBrace, pos: pos()})
			advance(1)
		case c == '}':
			toks = append(toks, token{kind: tokRBrace, pos: pos()})
			advance(1)
		case c == ',':
			toks = append(toks, token{kind: tokComma, pos: pos()})
			advance(1)
		case c == ';':
			toks = append(toks, token{kind: tokSemi, pos: pos()})
			advance(1)
		case c == '.':
			toks = append(toks, token{kind: tokDot, pos: pos()})
			advance(1)
		case c == '=':
			if i+1 < n && src[i+1] == '>' {
				toks = append(toks, token{kind: tokArrow, pos: pos()})
				advance(2)
			} else {
				return nil, errAt(pos(), "unexpected '='; did you mean '=>'?")
			}
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{kind: tokLE, pos: pos()})
				advance(2)
			} else {
				toks = append(toks, token{kind: tokLT, pos: pos()})
				advance(1)
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{kind: tokGE, pos: pos()})
				advance(2)
			} else {
				toks = append(toks, token{kind: tokGT, pos: pos()})
				advance(1)
			}
		case c >= '0' && c <= '9':
			p := pos()
			j := i
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			text := src[i:j]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, errAt(p, "bad number %q", text)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: v, pos: p})
			advance(j - i)
		default:
			r, _ := utf8.DecodeRuneInString(src[i:])
			if !isIdentStart(r) {
				return nil, errAt(pos(), "unexpected character %q", string(r))
			}
			p := pos()
			j := i
			for j < n {
				r2, size2 := utf8.DecodeRuneInString(src[j:])
				if !isIdentPart(r2) {
					break
				}
				j += size2
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], pos: p})
			advance(j - i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: pos()})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
