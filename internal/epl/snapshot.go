package epl

import (
	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/sim"
)

// CallStat aggregates messages of one (caller, method) pair received by an
// actor within a profiling window.
type CallStat struct {
	CallerType string    // actor type name or actor.ClientCaller
	Caller     actor.Ref // zero when calls are aggregated per caller type
	Method     string
	Count      int64
	Bytes      int64
}

// ActorInfo is one actor's runtime information in a snapshot (the
// actorsRT of Alg. 1/2).
type ActorInfo struct {
	Ref    actor.Ref
	Type   string
	Server cluster.MachineID

	CPUPerc  float64 // share of its server's total CPU capacity (0-100)
	CPUTime  sim.Duration
	MemPerc  float64
	MemBytes int64
	NetPerc  float64
	NetBytes int64

	Props     map[string][]actor.Ref
	Calls     []CallStat
	Pinned    bool
	LastMoved sim.Time
}

// ServerInfo is one server's runtime information (the serverRT of Alg. 1/2).
type ServerInfo struct {
	ID      cluster.MachineID
	CPUPerc float64
	MemPerc float64
	NetPerc float64
	VCPUs   int
	MemMB   int64
	NetMbps float64 // NIC capacity; the per-NIC transfer pipeline's rate
	Up      bool
}

// Res reads the named resource utilization.
func (s *ServerInfo) Res(r Resource) float64 {
	switch r {
	case CPU:
		return s.CPUPerc
	case Mem:
		return s.MemPerc
	case Net:
		return s.NetPerc
	}
	return 0
}

// ResVec returns the server's (cpu, mem, net) utilization vector, the unit
// the batch planner's multi-resource packing round works in.
func (s *ServerInfo) ResVec() [3]float64 {
	return [3]float64{s.CPUPerc, s.MemPerc, s.NetPerc}
}

// ResVec returns the actor's (cpu, mem, net) utilization vector: its
// projected contribution to a server already at the actor's current
// capacity scale.
func (a *ActorInfo) ResVec() [3]float64 {
	return [3]float64{a.CPUPerc, a.MemPerc, a.NetPerc}
}

// Resources enumerates the planner's resource axes in ResVec order.
var Resources = [3]Resource{CPU, Mem, Net}

// ResOf reads the actor's named resource utilization percent.
func (a *ActorInfo) ResOf(r Resource) float64 {
	switch r {
	case CPU:
		return a.CPUPerc
	case Mem:
		return a.MemPerc
	case Net:
		return a.NetPerc
	}
	return 0
}

// ResSize reads the actor's named resource in absolute units (cpu: µs of
// CPU time, mem/net: bytes).
func (a *ActorInfo) ResSize(r Resource) float64 {
	switch r {
	case CPU:
		return float64(a.CPUTime)
	case Mem:
		return float64(a.MemBytes)
	case Net:
		return float64(a.NetBytes)
	}
	return 0
}

// Snapshot is the profiling view a rule evaluation runs against: a LEM's
// local snapshot or a GEM's global one.
type Snapshot struct {
	At     sim.Time
	Window sim.Duration

	Actors  []*ActorInfo
	Servers []*ServerInfo

	// byID is a dense actor-ID index: actor ids are assigned sequentially
	// and never reused, so a slice indexed by id replaces the former
	// map[actor.Ref] lookup. Index() reuses it (and byType's per-type
	// slices) across calls, so a double-buffered snapshot re-indexes
	// without reallocating.
	byID     []*ActorInfo
	byType   map[string][]*ActorInfo
	byServer map[cluster.MachineID]*ServerInfo
}

// Index builds lookup indexes; call after populating Actors/Servers. On a
// reused Snapshot the previous indexes are cleared and refilled in place.
func (s *Snapshot) Index() *Snapshot {
	var maxID actor.ID
	for _, a := range s.Actors {
		if a.Ref.ID > maxID {
			maxID = a.Ref.ID
		}
	}
	if n := int(maxID) + 1; cap(s.byID) < n {
		s.byID = make([]*ActorInfo, n)
	} else {
		s.byID = s.byID[:n]
		clear(s.byID)
	}
	if s.byType == nil {
		s.byType = make(map[string][]*ActorInfo)
	} else {
		for t, list := range s.byType {
			s.byType[t] = list[:0]
		}
	}
	if s.byServer == nil {
		s.byServer = make(map[cluster.MachineID]*ServerInfo, len(s.Servers))
	} else {
		clear(s.byServer)
	}
	for _, a := range s.Actors {
		s.byID[a.Ref.ID] = a
		s.byType[a.Type] = append(s.byType[a.Type], a)
	}
	for _, srv := range s.Servers {
		s.byServer[srv.ID] = srv
	}
	return s
}

// WithServers derives a view over the same actors (sharing the actor
// indexes built by Index, so no per-actor work) but a different server
// list. The GEM uses it to evaluate global policies against its
// bounded-staleness server cache without re-indexing the whole fleet.
func (s *Snapshot) WithServers(servers []*ServerInfo) *Snapshot {
	v := &Snapshot{
		At:      s.At,
		Window:  s.Window,
		Actors:  s.Actors,
		Servers: servers,
		byID:    s.byID,
		byType:  s.byType,
	}
	v.byServer = make(map[cluster.MachineID]*ServerInfo, len(servers))
	for _, srv := range servers {
		v.byServer[srv.ID] = srv
	}
	return v
}

// Actor looks up one actor's info (nil if absent).
func (s *Snapshot) Actor(ref actor.Ref) *ActorInfo {
	if int(ref.ID) >= len(s.byID) {
		return nil
	}
	return s.byID[ref.ID]
}

// OfType returns actors of the given type; AnyType returns all.
func (s *Snapshot) OfType(t string) []*ActorInfo {
	if t == AnyType {
		return s.Actors
	}
	return s.byType[t]
}

// OfTypes returns actors of any of the given types, preserving snapshot
// order (used for subtype-expanded matching).
func (s *Snapshot) OfTypes(types []string) []*ActorInfo {
	if len(types) == 1 {
		return s.OfType(types[0])
	}
	want := map[string]bool{}
	for _, t := range types {
		if t == AnyType {
			return s.Actors
		}
		want[t] = true
	}
	var out []*ActorInfo
	for _, a := range s.Actors {
		if want[a.Type] {
			out = append(out, a)
		}
	}
	return out
}

// Server looks up one server's info (nil if absent).
func (s *Snapshot) Server(id cluster.MachineID) *ServerInfo { return s.byServer[id] }
