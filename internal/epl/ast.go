// Package epl implements PLASMA's elasticity programming language: the
// declarative actor-condition-behavior rule language of Fig. 3.II, with a
// lexer, recursive-descent parser, semantic checker (including compile-time
// conflict detection, §4.3), and a rule evaluator that turns profiling
// snapshots into elasticity intents.
package epl

import (
	"fmt"
	"strings"
)

// Pos is a source position for diagnostics.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Resource is the res production: cpu | mem | net.
type Resource int

// Resource kinds.
const (
	CPU Resource = iota
	Mem
	Net
)

func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case Mem:
		return "mem"
	case Net:
		return "net"
	}
	return "res?"
}

// Stat is the stat production: count | size | perc.
type Stat int

// Stat kinds.
const (
	Count Stat = iota
	Size
	Perc
)

func (s Stat) String() string {
	switch s {
	case Count:
		return "count"
	case Size:
		return "size"
	case Perc:
		return "perc"
	}
	return "stat?"
}

// CmpOp is the comp production: < | > | >= | <=.
type CmpOp int

// Comparison operators.
const (
	LT CmpOp = iota
	GT
	LE
	GE
)

func (o CmpOp) String() string {
	switch o {
	case LT:
		return "<"
	case GT:
		return ">"
	case LE:
		return "<="
	case GE:
		return ">="
	}
	return "op?"
}

// Apply evaluates "x op v".
func (o CmpOp) Apply(x, v float64) bool {
	switch o {
	case LT:
		return x < v
	case GT:
		return x > v
	case LE:
		return x <= v
	case GE:
		return x >= v
	}
	return false
}

// AnyType is the special actor type matching all actors.
const AnyType = "any"

// VarDecl is an inline actor variable declaration like Folder(fo).
type VarDecl struct {
	Name string // variable name, e.g. "fo"
	Type string // actor type, possibly AnyType
	Pos  Pos
}

// ActorRef references actors in a rule: a typed anonymous pattern
// ("Folder"), an inline declaration ("Folder(fo)"), or a bare variable use
// ("fo"). After binding, Decl points at the declaring VarDecl for variable
// uses and inline declarations.
type ActorRef struct {
	TypeName string // type as written ("" for bare variable uses)
	VarName  string // variable as written ("" for anonymous patterns)
	Pos      Pos

	Decl *VarDecl // set by the binder when this ref names a variable
}

// Type reports the actor type this ref ranges over (after binding).
func (a *ActorRef) Type() string {
	if a.Decl != nil {
		return a.Decl.Type
	}
	return a.TypeName
}

func (a *ActorRef) String() string {
	switch {
	case a.TypeName != "" && a.VarName != "":
		return a.TypeName + "(" + a.VarName + ")"
	case a.TypeName != "":
		return a.TypeName
	default:
		return a.VarName
	}
}

// Cond is a rule condition.
type Cond interface {
	condNode()
	String() string
}

// TrueCond is the trivial condition.
type TrueCond struct{ Pos Pos }

func (*TrueCond) condNode()      {}
func (*TrueCond) String() string { return "true" }

// AndCond is conjunction.
type AndCond struct{ L, R Cond }

func (*AndCond) condNode() {}
func (c *AndCond) String() string {
	return c.L.String() + " and " + c.R.String()
}

// OrCond is disjunction.
type OrCond struct{ L, R Cond }

func (*OrCond) condNode() {}
func (c *OrCond) String() string {
	return c.L.String() + " or " + c.R.String()
}

// CmpCond compares a feature statistic against a bound: feat.stat comp val.
type CmpCond struct {
	Feat Feature
	Stat Stat
	Op   CmpOp
	Val  float64
	Pos  Pos
}

func (*CmpCond) condNode() {}
func (c *CmpCond) String() string {
	return fmt.Sprintf("%s.%s %s %g", c.Feat, c.Stat, c.Op, c.Val)
}

// InRefCond selects actors referenced by a property of another actor:
// actor in ref(actor'.pname).
type InRefCond struct {
	Sub       *ActorRef
	Container *ActorRef
	Prop      string
	Pos       Pos
}

func (*InRefCond) condNode() {}
func (c *InRefCond) String() string {
	return fmt.Sprintf("%s in ref(%s.%s)", c.Sub, c.Container, c.Prop)
}

// Feature is a runtime feature a condition can measure.
type Feature interface {
	featNode()
	String() string
}

// ResFeature measures resource usage of an entity ([f-ra]/[f-rs]):
// actor.res or server.res.
type ResFeature struct {
	Server bool      // true for the server entity
	Actor  *ActorRef // set when Server is false
	Res    Resource
	Pos    Pos
}

func (*ResFeature) featNode() {}
func (f *ResFeature) String() string {
	if f.Server {
		return "server." + f.Res.String()
	}
	return f.Actor.String() + "." + f.Res.String()
}

// CallFeature measures interaction ([f-ia]): cllr.call(actor.fname).
type CallFeature struct {
	Client bool      // true when the caller is the client keyword
	Caller *ActorRef // set when Client is false
	Callee *ActorRef
	FName  string
	Pos    Pos
}

func (*CallFeature) featNode() {}
func (f *CallFeature) String() string {
	c := "client"
	if !f.Client {
		c = f.Caller.String()
	}
	return fmt.Sprintf("%s.call(%s.%s)", c, f.Callee, f.FName)
}

// Behavior is an elasticity behavior (the beh production).
type Behavior interface {
	behNode()
	Kind() BehaviorKind
	String() string
}

// BehaviorKind discriminates behaviors and carries their rule class.
type BehaviorKind int

// Behavior kinds.
const (
	KindBalance BehaviorKind = iota
	KindReserve
	KindColocate
	KindSeparate
	KindPin
	KindProvClass
)

func (k BehaviorKind) String() string {
	switch k {
	case KindBalance:
		return "balance"
	case KindReserve:
		return "reserve"
	case KindColocate:
		return "colocate"
	case KindSeparate:
		return "separate"
	case KindPin:
		return "pin"
	case KindProvClass:
		return "provclass"
	}
	return "beh?"
}

// IsResource reports whether the behavior yields a resource elasticity rule
// [r-r] (handled by GEMs) rather than an interaction rule [r-i] (LEMs).
// provclass is GEM-side: it steers the scale-out decision, which only GEMs
// make.
func (k BehaviorKind) IsResource() bool {
	return k == KindBalance || k == KindReserve || k == KindProvClass
}

// BalanceBeh is balance({atype...}, res).
type BalanceBeh struct {
	Types []string
	Res   Resource
	Pos   Pos
}

func (*BalanceBeh) behNode()           {}
func (*BalanceBeh) Kind() BehaviorKind { return KindBalance }
func (b *BalanceBeh) String() string {
	return fmt.Sprintf("balance({%s}, %s)", strings.Join(b.Types, ", "), b.Res)
}

// ReserveBeh is reserve(actor, res).
type ReserveBeh struct {
	Actor *ActorRef
	Res   Resource
	Pos   Pos
}

func (*ReserveBeh) behNode()           {}
func (*ReserveBeh) Kind() BehaviorKind { return KindReserve }
func (b *ReserveBeh) String() string   { return fmt.Sprintf("reserve(%s, %s)", b.Actor, b.Res) }

// ColocateBeh is colocate(actor, actor).
type ColocateBeh struct {
	A, B *ActorRef
	Pos  Pos
}

func (*ColocateBeh) behNode()           {}
func (*ColocateBeh) Kind() BehaviorKind { return KindColocate }
func (b *ColocateBeh) String() string   { return fmt.Sprintf("colocate(%s, %s)", b.A, b.B) }

// SeparateBeh is separate(actor, actor).
type SeparateBeh struct {
	A, B *ActorRef
	Pos  Pos
}

func (*SeparateBeh) behNode()           {}
func (*SeparateBeh) Kind() BehaviorKind { return KindSeparate }
func (b *SeparateBeh) String() string   { return fmt.Sprintf("separate(%s, %s)", b.A, b.B) }

// PinBeh is pin(actor).
type PinBeh struct {
	Actor *ActorRef
	Pos   Pos
}

func (*PinBeh) behNode()           {}
func (*PinBeh) Kind() BehaviorKind { return KindPin }
func (b *PinBeh) String() string   { return fmt.Sprintf("pin(%s)", b.Actor) }

// ProvClassBeh is provclass({class, ...}): when the rule fires, scale-out
// prefers the named provisioning classes (warm, container, vm) in order,
// falling to the remaining spectrum when a pool is exhausted.
type ProvClassBeh struct {
	Classes []string
	Pos     Pos
}

func (*ProvClassBeh) behNode()           {}
func (*ProvClassBeh) Kind() BehaviorKind { return KindProvClass }
func (b *ProvClassBeh) String() string {
	return fmt.Sprintf("provclass({%s})", strings.Join(b.Classes, ", "))
}

// Rule is one elasticity rule: cond => beh; beh; ... ;
type Rule struct {
	Index     int // position in the policy, 0-based
	Cond      Cond
	Behaviors []Behavior
	Vars      []*VarDecl // inline variable declarations, in source order
	Pos       Pos
}

// HasResourceBehavior reports whether any behavior is [r-r].
func (r *Rule) HasResourceBehavior() bool {
	for _, b := range r.Behaviors {
		if b.Kind().IsResource() {
			return true
		}
	}
	return false
}

// HasInteractionBehavior reports whether any behavior is [r-i].
func (r *Rule) HasInteractionBehavior() bool {
	for _, b := range r.Behaviors {
		if !b.Kind().IsResource() {
			return true
		}
	}
	return false
}

// VarByName returns the rule variable with the given name, or nil.
func (r *Rule) VarByName(name string) *VarDecl {
	for _, v := range r.Vars {
		if v.Name == name {
			return v
		}
	}
	return nil
}

func (r *Rule) String() string {
	behs := make([]string, len(r.Behaviors))
	for i, b := range r.Behaviors {
		behs[i] = b.String()
	}
	return r.Cond.String() + " => " + strings.Join(behs, "; ") + ";"
}

// Policy is a parsed EPL program: a set of rules.
type Policy struct {
	Rules  []*Rule
	Source string

	// subtypes maps a type to itself plus its declared descendants,
	// compiled by Check from the schema's Parent declarations (nil when
	// the schema declares no hierarchy).
	subtypes map[string][]string
}

// Expand returns the concrete types a rule type name matches: the type
// itself, plus its schema-declared subtypes when Check compiled a
// hierarchy.
func (p *Policy) Expand(t string) []string {
	if p.subtypes == nil {
		return []string{t}
	}
	if d, ok := p.subtypes[t]; ok {
		return d
	}
	return []string{t}
}

// ResourceRules returns rules with at least one [r-r] behavior (what GEMs
// evaluate — Table 2's getResRules).
func (p *Policy) ResourceRules() []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if r.HasResourceBehavior() {
			out = append(out, r)
		}
	}
	return out
}

// InteractionRules returns rules with at least one [r-i] behavior (what
// LEMs evaluate — Table 2's getActRules).
func (p *Policy) InteractionRules() []*Rule {
	var out []*Rule
	for _, r := range p.Rules {
		if r.HasInteractionBehavior() {
			out = append(out, r)
		}
	}
	return out
}

func (p *Policy) String() string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
