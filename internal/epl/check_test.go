package epl

import (
	"strings"
	"testing"
)

func mediaSchema() *Schema {
	return NewSchema(
		Class("FrontEnd", []string{"request"}, nil),
		Class("VideoStream", []string{"watch"}, nil),
		Class("UserInfo", []string{"track"}, nil),
		Class("ReviewEditor", []string{"edit"}, nil),
		Class("UserReview", []string{"update"}, nil),
		Class("MovieReview", []string{"read"}, nil),
		Class("ReviewChecker", []string{"check"}, nil),
		Class("UserDB", []string{"get"}, nil),
	)
}

func TestCheckPaperPoliciesAgainstSchemas(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		schema *Schema
	}{
		{"metadata", metadataPolicy, NewSchema(
			Class("Folder", []string{"open"}, []string{"files"}),
			Class("File", []string{"read", "write"}, nil),
		)},
		{"pagerank", pagerankPolicy, NewSchema(
			Class("Partition", []string{"compute"}, nil),
		)},
		{"estore", estorePolicy, NewSchema(
			Class("Partition", []string{"read"}, []string{"children"}),
		)},
		{"media", mediaPolicy, mediaSchema()},
		{"halo", haloPolicy, NewSchema(
			Class("Router", []string{"route"}, nil),
			Class("Session", []string{"heartbeat"}, []string{"players"}),
			Class("Player", []string{"update"}, nil),
		)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pol := MustParse(c.src)
			if _, err := Check(pol, c.schema); err != nil {
				t.Fatalf("check: %v", err)
			}
		})
	}
}

func TestCheckUnknownType(t *testing.T) {
	pol := MustParse(`server.cpu.perc > 80 => balance({Ghost}, cpu);`)
	_, err := Check(pol, NewSchema(Class("Real", nil, nil)))
	if err == nil || !strings.Contains(err.Error(), "unknown actor type") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckUnknownFunction(t *testing.T) {
	pol := MustParse(`client.call(Folder(f).bogus).count > 3 => pin(f);`)
	_, err := Check(pol, NewSchema(Class("Folder", []string{"open"}, nil)))
	if err == nil || !strings.Contains(err.Error(), "no function") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckUnknownProp(t *testing.T) {
	pol := MustParse(`File(fi) in ref(Folder(fo).bogus) => colocate(fo, fi);`)
	_, err := Check(pol, NewSchema(
		Class("Folder", nil, []string{"files"}),
		Class("File", nil, nil),
	))
	if err == nil || !strings.Contains(err.Error(), "no property") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckCountOnResourceFeature(t *testing.T) {
	pol := MustParse(`server.cpu.count > 3 => balance({A}, cpu);`)
	_, err := Check(pol, nil)
	if err == nil || !strings.Contains(err.Error(), "count") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckBalanceRejectsVariables(t *testing.T) {
	pol := MustParse(`Partition(p).cpu.perc > 30 => balance({p}, cpu);`)
	_, err := Check(pol, nil)
	if err == nil || !strings.Contains(err.Error(), "variable") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckNilSchemaSkipsNames(t *testing.T) {
	pol := MustParse(`client.call(Anything(a).whatever).count > 0 => pin(a);`)
	if _, err := Check(pol, nil); err != nil {
		t.Fatalf("nil schema should skip name checks: %v", err)
	}
}

func TestConflictColocateSeparate(t *testing.T) {
	pol := MustParse(`
true => colocate(A(a), B(b));
true => separate(A(x), B(y));
`)
	warns, err := Check(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasWarning(warns, "colocated and separated") {
		t.Fatalf("warnings = %v", warns)
	}
}

func TestConflictPinBalance(t *testing.T) {
	pol := MustParse(`
true => pin(Worker(w));
server.cpu.perc > 80 => balance({Worker}, cpu);
`)
	warns, err := Check(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasWarning(warns, "pinned but also subject to balance") {
		t.Fatalf("warnings = %v", warns)
	}
}

func TestConflictReserveBalance(t *testing.T) {
	// The E-Store policy intentionally reserves and balances Partitions;
	// the compiler should warn, and the runtime resolves it by priority.
	pol := MustParse(estorePolicy)
	warns, err := Check(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasWarning(warns, "reserved and balanced") {
		t.Fatalf("warnings = %v", warns)
	}
}

func TestConflictBalanceBreaksColocation(t *testing.T) {
	pol := MustParse(`
Partition(p2) in ref(Partition(p1).children) => colocate(p1, p2);
server.cpu.perc > 80 => balance({Partition}, cpu);
`)
	warns, err := Check(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasWarning(warns, "balance may break colocation") {
		t.Fatalf("warnings = %v", warns)
	}
}

func TestNoFalseConflicts(t *testing.T) {
	pol := MustParse(haloPolicy)
	warns, err := Check(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	// pin(Session) + colocate(Player, Session): no conflict.
	if len(warns) != 0 {
		t.Fatalf("unexpected warnings: %v", warns)
	}
}

func hasWarning(warns []Warning, substr string) bool {
	for _, w := range warns {
		if strings.Contains(w.Msg, substr) {
			return true
		}
	}
	return false
}

func warnsByCode(warns []Warning, code string) []Warning {
	var out []Warning
	for _, w := range warns {
		if w.Code == code {
			out = append(out, w)
		}
	}
	return out
}

func TestConflictCodesAndRules(t *testing.T) {
	pol := MustParse(`
true => pin(Worker(w));
server.cpu.perc > 80 => balance({Worker}, cpu);
`)
	warns, err := Check(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	pb := warnsByCode(warns, CodePinBalance)
	if len(pb) != 1 {
		t.Fatalf("want one %s warning, got %v", CodePinBalance, warns)
	}
	w := pb[0]
	if len(w.Rules) != 2 || w.Rules[0] != 0 || w.Rules[1] != 1 {
		t.Fatalf("Rules = %v, want [0 1]", w.Rules)
	}
	if w.Pos.Line == 0 {
		t.Fatalf("warning lost its position: %+v", w)
	}
}

func TestConflictEveryOccurrenceReported(t *testing.T) {
	// The same colocate/separate pair occurs in two separate rules; each
	// occurrence gets its own positioned warning, all naming all rules.
	pol := MustParse(`
true => colocate(A(a), B(b));
true => colocate(A(c), B(d));
true => separate(A(x), B(y));
`)
	warns, err := Check(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := warnsByCode(warns, CodeColocateSeparate)
	if len(cs) != 2 {
		t.Fatalf("want a warning per colocate occurrence, got %v", warns)
	}
	if cs[0].Pos.Line == cs[1].Pos.Line {
		t.Fatalf("occurrences share a position: %v", cs)
	}
	for _, w := range cs {
		if len(w.Rules) != 3 {
			t.Fatalf("Rules = %v, want all of [0 1 2]", w.Rules)
		}
	}
}

func TestConflictThroughSubtypeHierarchy(t *testing.T) {
	// Premium is a subclass of Session: pinning the parent type conflicts
	// with balancing the subtype, because Expand("Session") includes
	// Premium actors.
	schema := NewSchema(
		Class("Session", []string{"presence"}, nil),
		Subclass("Premium", "Session", nil, nil),
	)
	pol := MustParse(`
true => pin(Session);
server.cpu.perc > 80 => balance({Premium}, cpu);
`)
	warns, err := Check(pol, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnsByCode(warns, CodePinBalance)) == 0 {
		t.Fatalf("subtype conflict not detected: %v", warns)
	}
	// Sibling subtypes do not conflict with each other.
	schema2 := NewSchema(
		Class("Session", []string{"presence"}, nil),
		Subclass("Premium", "Session", nil, nil),
		Subclass("Trial", "Session", nil, nil),
	)
	pol2 := MustParse(`
true => pin(Premium);
server.cpu.perc > 80 => balance({Trial}, cpu);
`)
	warns2, err := Check(pol2, schema2)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnsByCode(warns2, CodePinBalance)) != 0 {
		t.Fatalf("sibling subtypes should not conflict: %v", warns2)
	}
}

func TestConflictSubtypeColocateSeparate(t *testing.T) {
	schema := NewSchema(
		Class("Shard", []string{"get"}, []string{"peers"}),
		Subclass("HotShard", "Shard", nil, nil),
	)
	pol := MustParse(`
true => colocate(Shard(a), Shard(b));
true => separate(HotShard(x), HotShard(y));
`)
	warns, err := Check(pol, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnsByCode(warns, CodeColocateSeparate)) == 0 {
		t.Fatalf("colocate(Shard) vs separate(HotShard) not detected: %v", warns)
	}
}

func TestWarningStringIncludesCode(t *testing.T) {
	pol := MustParse(`
true => pin(Worker(w));
server.cpu.perc > 80 => balance({Worker}, cpu);
`)
	warns, err := Check(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	pb := warnsByCode(warns, CodePinBalance)
	if len(pb) == 0 || !strings.Contains(pb[0].String(), CodePinBalance) {
		t.Fatalf("warning string missing code: %v", warns)
	}
}
