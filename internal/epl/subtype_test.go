package epl

import (
	"testing"

	"plasma/internal/actor"
)

// Subtype-aware matching: the paper (§3.2) treats subtypes as distinct and
// names subtype support as the natural extension; these tests cover it.

func subtypeSchema() *Schema {
	return NewSchema(
		Class("Partition", []string{"read"}, []string{"children"}),
		Subclass("HotPartition", "Partition", []string{"read"}, nil),
		Subclass("ArchivePartition", "Partition", []string{"read"}, nil),
		Subclass("GlacierPartition", "ArchivePartition", []string{"read"}, nil),
		Class("Unrelated", nil, nil),
	)
}

func TestExpandWithoutHierarchyIsIdentity(t *testing.T) {
	pol := MustParse(`true => pin(A(a));`)
	if got := pol.Expand("A"); len(got) != 1 || got[0] != "A" {
		t.Fatalf("Expand = %v", got)
	}
}

func TestCheckCompilesSubtypeMap(t *testing.T) {
	pol := MustParse(`server.cpu.perc > 80 => balance({Partition}, cpu);`)
	if _, err := Check(pol, subtypeSchema()); err != nil {
		t.Fatal(err)
	}
	got := pol.Expand("Partition")
	want := map[string]bool{
		"Partition": true, "HotPartition": true,
		"ArchivePartition": true, "GlacierPartition": true,
	}
	if len(got) != len(want) {
		t.Fatalf("Expand(Partition) = %v", got)
	}
	for _, tn := range got {
		if !want[tn] {
			t.Fatalf("unexpected type %q in expansion %v", tn, got)
		}
	}
	if len(pol.Expand("Unrelated")) != 1 {
		t.Fatalf("Unrelated expansion = %v", pol.Expand("Unrelated"))
	}
	// Mid-hierarchy expansion includes only its own subtree.
	arch := pol.Expand("ArchivePartition")
	if len(arch) != 2 {
		t.Fatalf("Expand(ArchivePartition) = %v", arch)
	}
}

func TestEvaluateMatchesSubtypeActors(t *testing.T) {
	pol := MustParse(`Partition(p).cpu.perc > 30 => reserve(p, cpu);`)
	if _, err := Check(pol, subtypeSchema()); err != nil {
		t.Fatal(err)
	}
	b := newSnap().server(0, 50, 0, 0)
	hot := b.actor("HotPartition", 0, 60)
	plain := b.actor("Partition", 0, 55)
	cold := b.actor("GlacierPartition", 0, 5) // matches the type, fails cond
	unrelated := b.actor("Unrelated", 0, 90)
	_ = cold
	_ = unrelated
	in := Evaluate(pol, b.build(), true, true)
	if len(in.Reserve) != 2 {
		t.Fatalf("reserve = %+v, want hot subtype + plain parent", in.Reserve)
	}
	got := map[actor.Ref]bool{in.Reserve[0].Actor: true, in.Reserve[1].Actor: true}
	if !got[hot.Ref] || !got[plain.Ref] {
		t.Fatalf("reserve = %+v", in.Reserve)
	}
}

func TestBalanceIntentCoversSubtypes(t *testing.T) {
	pol := MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Partition}, cpu);`)
	if _, err := Check(pol, subtypeSchema()); err != nil {
		t.Fatal(err)
	}
	b := newSnap().server(0, 90, 0, 0).server(1, 10, 0, 0)
	b.actor("HotPartition", 0, 40)
	in := Evaluate(pol, b.build(), true, false)
	if len(in.Balance) != 1 {
		t.Fatalf("balance = %+v", in.Balance)
	}
	if !in.Balance[0].Covers("HotPartition") || !in.Balance[0].Covers("GlacierPartition") {
		t.Fatalf("intent types = %v", in.Balance[0].Types)
	}
	if in.Balance[0].Covers("Unrelated") {
		t.Fatal("intent covers an unrelated type")
	}
}

func TestSubtypeMatchingThroughInRef(t *testing.T) {
	pol := MustParse(`Partition(c) in ref(Partition(p).children) => colocate(p, c);`)
	if _, err := Check(pol, subtypeSchema()); err != nil {
		t.Fatal(err)
	}
	b := newSnap().server(0, 0, 0, 0).server(1, 0, 0, 0)
	parent := b.actor("Partition", 0, 0)
	child := b.actor("HotPartition", 1, 0)
	parent.Props["children"] = []actor.Ref{child.Ref}
	in := Evaluate(pol, b.build(), true, true)
	if len(in.Colocate) != 1 {
		t.Fatalf("colocate = %+v, want subtype child matched via ref", in.Colocate)
	}
}
