package epl

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
)

// snapBuilder assembles test snapshots tersely.
type snapBuilder struct {
	snap   *Snapshot
	nextID actor.ID
}

func newSnap() *snapBuilder {
	return &snapBuilder{snap: &Snapshot{}}
}

func (b *snapBuilder) server(id cluster.MachineID, cpu, mem, net float64) *snapBuilder {
	b.snap.Servers = append(b.snap.Servers, &ServerInfo{ID: id, CPUPerc: cpu, MemPerc: mem, NetPerc: net, VCPUs: 1, Up: true})
	return b
}

func (b *snapBuilder) actor(typ string, srv cluster.MachineID, cpu float64) *ActorInfo {
	b.nextID++
	ai := &ActorInfo{
		Ref: actor.Ref{ID: b.nextID}, Type: typ, Server: srv, CPUPerc: cpu,
		Props: map[string][]actor.Ref{},
	}
	b.snap.Actors = append(b.snap.Actors, ai)
	return ai
}

func (b *snapBuilder) build() *Snapshot { return b.snap.Index() }

func TestEvalBalanceTriggersOnViolation(t *testing.T) {
	pol := MustParse(pagerankPolicy) // >80 or <60 => balance({Partition}, cpu)
	b := newSnap().server(0, 90, 0, 0).server(1, 70, 0, 0).server(2, 40, 0, 0)
	in := Evaluate(pol, b.build(), true, true)
	if len(in.Balance) != 1 {
		t.Fatalf("balance intents = %d, want 1", len(in.Balance))
	}
	bi := in.Balance[0]
	if bi.Upper != 80 || bi.Lower != 60 {
		t.Fatalf("bounds = %v/%v", bi.Upper, bi.Lower)
	}
	// Servers 0 (>80) and 2 (<60) violate; server 1 does not.
	if len(bi.Violating) != 2 {
		t.Fatalf("violating = %v", bi.Violating)
	}
}

func TestEvalBalanceQuietWhenInBounds(t *testing.T) {
	pol := MustParse(pagerankPolicy)
	b := newSnap().server(0, 70, 0, 0).server(1, 65, 0, 0)
	in := Evaluate(pol, b.build(), true, true)
	if len(in.Balance) != 0 {
		t.Fatalf("balance should not trigger: %+v", in.Balance)
	}
}

func TestEvalBalanceSkippedWithoutResourceFlag(t *testing.T) {
	pol := MustParse(pagerankPolicy)
	b := newSnap().server(0, 90, 0, 0)
	in := Evaluate(pol, b.build(), false, true) // LEM view
	if len(in.Balance) != 0 {
		t.Fatal("LEM evaluation must not emit resource intents")
	}
}

func TestEvalMetadataRule(t *testing.T) {
	pol := MustParse(metadataPolicy)
	b := newSnap().server(0, 90, 0, 0).server(1, 10, 0, 0)
	hot := b.actor("Folder", 0, 40)
	cold := b.actor("Folder", 0, 5)
	f1 := b.actor("File", 0, 1)
	f2 := b.actor("File", 0, 1)
	f3 := b.actor("File", 1, 1)
	hot.Props["files"] = []actor.Ref{f1.Ref, f2.Ref}
	cold.Props["files"] = []actor.Ref{f3.Ref}
	// hot receives 60% of opens on server 0, cold 40%.
	hot.Calls = []CallStat{{CallerType: actor.ClientCaller, Method: "open", Count: 60}}
	cold.Calls = []CallStat{{CallerType: actor.ClientCaller, Method: "open", Count: 40}}

	in := Evaluate(pol, b.build(), true, true)
	if len(in.Reserve) != 1 || in.Reserve[0].Actor != hot.Ref {
		t.Fatalf("reserve = %+v", in.Reserve)
	}
	if len(in.Colocate) != 2 {
		t.Fatalf("colocate = %+v (want hot with f1 and f2)", in.Colocate)
	}
	for _, pi := range in.Colocate {
		if pi.A != hot.Ref {
			t.Fatalf("colocate pair %v not anchored at hot folder", pi)
		}
		if pi.B != f1.Ref && pi.B != f2.Ref {
			t.Fatalf("colocated wrong file: %v", pi)
		}
	}
}

func TestEvalMetadataRuleColdServer(t *testing.T) {
	// Same workload but the folder's server is not overloaded: no intents.
	pol := MustParse(metadataPolicy)
	b := newSnap().server(0, 50, 0, 0)
	hot := b.actor("Folder", 0, 40)
	f1 := b.actor("File", 0, 1)
	hot.Props["files"] = []actor.Ref{f1.Ref}
	hot.Calls = []CallStat{{CallerType: actor.ClientCaller, Method: "open", Count: 100}}
	in := Evaluate(pol, b.build(), true, true)
	if len(in.Reserve) != 0 || len(in.Colocate) != 0 {
		t.Fatalf("intents on cold server: %+v", in)
	}
}

func TestEvalPercDenominatorPerServer(t *testing.T) {
	// Folder on server 0 gets 45 of 100 opens cluster-wide but 45/50 on its
	// own server: perc must use the per-server denominator (90%).
	pol := MustParse(`client.call(Folder(fo).open).perc > 80 => pin(fo);`)
	b := newSnap().server(0, 0, 0, 0).server(1, 0, 0, 0)
	a := b.actor("Folder", 0, 0)
	peer := b.actor("Folder", 0, 0)
	far := b.actor("Folder", 1, 0)
	far2 := b.actor("Folder", 1, 0)
	a.Calls = []CallStat{{CallerType: actor.ClientCaller, Method: "open", Count: 45}}
	peer.Calls = []CallStat{{CallerType: actor.ClientCaller, Method: "open", Count: 5}}
	far.Calls = []CallStat{{CallerType: actor.ClientCaller, Method: "open", Count: 25}}
	far2.Calls = []CallStat{{CallerType: actor.ClientCaller, Method: "open", Count: 25}}
	in := Evaluate(pol, b.build(), true, true)
	// a: 45/50 = 90% on server 0 -> pinned. peer: 10%. far/far2: 50% each.
	if len(in.Pin) != 1 || in.Pin[0].Actor != a.Ref {
		t.Fatalf("pin = %+v, want only the 90%% folder", in.Pin)
	}
}

func TestEvalHaloRule(t *testing.T) {
	pol := MustParse(haloPolicy)
	b := newSnap().server(0, 0, 0, 0).server(1, 0, 0, 0)
	s1 := b.actor("Session", 0, 0)
	s2 := b.actor("Session", 1, 0)
	p1 := b.actor("Player", 1, 0)
	p2 := b.actor("Player", 0, 0)
	p3 := b.actor("Player", 0, 0)
	s1.Props["players"] = []actor.Ref{p1.Ref, p2.Ref}
	s2.Props["players"] = []actor.Ref{p3.Ref}

	in := Evaluate(pol, b.build(), true, true)
	if len(in.Pin) != 2 {
		t.Fatalf("pins = %+v, want both sessions pinned", in.Pin)
	}
	if len(in.Colocate) != 3 {
		t.Fatalf("colocate = %+v, want 3 player-session pairs", in.Colocate)
	}
	// Pairs are (player, session) in declaration order p then s.
	want := map[actor.Ref]actor.Ref{p1.Ref: s1.Ref, p2.Ref: s1.Ref, p3.Ref: s2.Ref}
	for _, pi := range in.Colocate {
		if want[pi.A] != pi.B {
			t.Fatalf("bad pair %v", pi)
		}
	}
}

func TestEvalCallCountActorCaller(t *testing.T) {
	pol := MustParse(`VideoStream(v).call(UserInfo(u).track).count > 0 => pin(v); colocate(v, u);`)
	b := newSnap().server(0, 0, 0, 0)
	v := b.actor("VideoStream", 0, 0)
	u1 := b.actor("UserInfo", 0, 0)
	u2 := b.actor("UserInfo", 0, 0)
	u1.Calls = []CallStat{{CallerType: "VideoStream", Caller: v.Ref, Method: "track", Count: 7}}
	_ = u2 // receives no track calls

	in := Evaluate(pol, b.build(), true, true)
	if len(in.Pin) != 1 || in.Pin[0].Actor != v.Ref {
		t.Fatalf("pin = %+v", in.Pin)
	}
	if len(in.Colocate) != 1 || in.Colocate[0].A != v.Ref || in.Colocate[0].B != u1.Ref {
		t.Fatalf("colocate = %+v, want (v,u1) only", in.Colocate)
	}
}

func TestEvalTruePinAllOfType(t *testing.T) {
	pol := MustParse(`true => pin(MovieReview(m));`)
	b := newSnap().server(0, 0, 0, 0)
	m1 := b.actor("MovieReview", 0, 0)
	m2 := b.actor("MovieReview", 0, 0)
	b.actor("Other", 0, 0)
	in := Evaluate(pol, b.build(), true, true)
	if len(in.Pin) != 2 {
		t.Fatalf("pins = %+v", in.Pin)
	}
	if in.Pin[0].Actor != m1.Ref || in.Pin[1].Actor != m2.Ref {
		t.Fatalf("pins = %+v", in.Pin)
	}
}

func TestEvalReserveUsesActorServerContext(t *testing.T) {
	// server.cpu refers to the server hosting the bound actor.
	pol := MustParse(`server.cpu.perc > 50 => reserve(VideoStream(v), cpu);`)
	b := newSnap().server(0, 90, 0, 0).server(1, 10, 0, 0)
	hot := b.actor("VideoStream", 0, 0)
	cold := b.actor("VideoStream", 1, 0)
	_ = cold
	in := Evaluate(pol, b.build(), true, true)
	if len(in.Reserve) != 1 || in.Reserve[0].Actor != hot.Ref {
		t.Fatalf("reserve = %+v, want only actor on hot server", in.Reserve)
	}
}

func TestEvalActorResourceFeature(t *testing.T) {
	pol := MustParse(`Worker(w).cpu.perc > 30 => reserve(w, cpu);`)
	b := newSnap().server(0, 0, 0, 0)
	big := b.actor("Worker", 0, 45)
	small := b.actor("Worker", 0, 10)
	_ = small
	in := Evaluate(pol, b.build(), true, true)
	if len(in.Reserve) != 1 || in.Reserve[0].Actor != big.Ref {
		t.Fatalf("reserve = %+v", in.Reserve)
	}
}

func TestEvalSeparate(t *testing.T) {
	pol := MustParse(`Leaf(a).cpu.perc > 10 and Leaf(b).cpu.perc > 10 => separate(a, b);`)
	b := newSnap().server(0, 0, 0, 0)
	x := b.actor("Leaf", 0, 20)
	y := b.actor("Leaf", 0, 20)
	in := Evaluate(pol, b.build(), true, true)
	// Bindings (x,y) and (y,x) dedupe by ordered pair; self pairs excluded.
	if len(in.Separate) != 2 {
		t.Fatalf("separate = %+v", in.Separate)
	}
	for _, pi := range in.Separate {
		if pi.A == pi.B {
			t.Fatal("self pair emitted")
		}
	}
	_ = x
	_ = y
}

func TestEvalAnyTypeMatchesAll(t *testing.T) {
	pol := MustParse(`any(a).cpu.perc > 50 => reserve(a, cpu);`)
	b := newSnap().server(0, 0, 0, 0)
	w := b.actor("Worker", 0, 60)
	f := b.actor("Folder", 0, 70)
	b.actor("Idle", 0, 10)
	in := Evaluate(pol, b.build(), true, true)
	if len(in.Reserve) != 2 {
		t.Fatalf("reserve = %+v", in.Reserve)
	}
	got := map[actor.Ref]bool{in.Reserve[0].Actor: true, in.Reserve[1].Actor: true}
	if !got[w.Ref] || !got[f.Ref] {
		t.Fatalf("reserve = %+v", in.Reserve)
	}
}

func TestEvalOrCondition(t *testing.T) {
	pol := MustParse(`server.net.perc > 80 or server.net.perc < 60 => balance({FrontEnd}, net);`)
	b := newSnap().server(0, 0, 0, 70) // in band: no trigger
	in := Evaluate(pol, b.build(), true, true)
	if len(in.Balance) != 0 {
		t.Fatal("should not trigger inside band")
	}
	b2 := newSnap().server(0, 0, 0, 85)
	in2 := Evaluate(pol, b2.build(), true, true)
	if len(in2.Balance) != 1 {
		t.Fatal("should trigger above band")
	}
}

func TestEvalInRefPruningMatchesCrossProduct(t *testing.T) {
	// The container-first pruning must agree with brute-force semantics.
	pol := MustParse(haloPolicy)
	b := newSnap().server(0, 0, 0, 0)
	var sessions []*ActorInfo
	var players []*ActorInfo
	for i := 0; i < 5; i++ {
		sessions = append(sessions, b.actor("Session", 0, 0))
	}
	for i := 0; i < 20; i++ {
		players = append(players, b.actor("Player", 0, 0))
	}
	for i, p := range players {
		s := sessions[i%len(sessions)]
		s.Props["players"] = append(s.Props["players"], p.Ref)
	}
	in := Evaluate(pol, b.build(), true, true)
	if len(in.Colocate) != 20 {
		t.Fatalf("colocate = %d, want 20 (one per player)", len(in.Colocate))
	}
}

func TestEvalEmptySnapshot(t *testing.T) {
	pol := MustParse(mediaPolicy)
	in := Evaluate(pol, (&Snapshot{}).Index(), true, true)
	if len(in.Balance)+len(in.Reserve)+len(in.Colocate)+len(in.Separate)+len(in.Pin) != 0 {
		t.Fatalf("intents from empty snapshot: %+v", in)
	}
}

func TestBalanceIntentCovers(t *testing.T) {
	bi := BalanceIntent{Types: []string{"A", "B"}}
	if !bi.Covers("A") || !bi.Covers("B") || bi.Covers("C") {
		t.Fatal("Covers broken")
	}
	any := BalanceIntent{Types: []string{AnyType}}
	if !any.Covers("Whatever") {
		t.Fatal("any should cover all")
	}
}
