package epl

import (
	"strings"
	"testing"
)

// The five §3.3 example policies, verbatim from the paper (modulo
// whitespace).
const (
	metadataPolicy = `
server.cpu.perc > 80 and
client.call(Folder(fo).open).perc > 40 and
File(fi) in ref(fo.files) =>
    reserve(fo, cpu); colocate(fo, fi);
`
	pagerankPolicy = `
server.cpu.perc > 80 or server.cpu.perc < 60 =>
    balance({Partition}, cpu);
`
	estorePolicy = `
server.cpu.perc > 80 and
client.call(Partition(p1).read).perc > 30 =>
    reserve(p1, cpu);
Partition(p2) in ref(Partition(p1).children) =>
    colocate(p1, p2);
server.cpu.perc < 50 => balance({Partition}, cpu);
`
	mediaPolicy = `
server.net.perc > 80 or server.net.perc < 60 =>
    balance({FrontEnd}, net);
server.cpu.perc > 50 => reserve(VideoStream(v), cpu);
VideoStream(v).call(UserInfo(u).track).count > 0 =>
    pin(v); colocate(v, u);
ReviewEditor(r).call(UserReview(u).update).count > 0 =>
    pin(r); colocate(r, u);
true => pin(MovieReview(m));
server.cpu.perc > 90 or server.cpu.perc < 70 =>
    balance({ReviewChecker}, cpu);
`
	haloPolicy = `
Player(p) in ref(Session(s).players) =>
    pin(s); colocate(p, s);
`
)

func TestParsePaperPolicies(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		rules int
	}{
		{"metadata", metadataPolicy, 1},
		{"pagerank", pagerankPolicy, 1},
		{"estore", estorePolicy, 3},
		{"media", mediaPolicy, 6},
		{"halo", haloPolicy, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pol, err := Parse(c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if len(pol.Rules) != c.rules {
				t.Fatalf("rules = %d, want %d", len(pol.Rules), c.rules)
			}
		})
	}
}

func TestParseMetadataStructure(t *testing.T) {
	pol := MustParse(metadataPolicy)
	r := pol.Rules[0]
	if len(r.Vars) != 2 || r.Vars[0].Name != "fo" || r.Vars[1].Name != "fi" {
		t.Fatalf("vars = %+v", r.Vars)
	}
	if r.Vars[0].Type != "Folder" || r.Vars[1].Type != "File" {
		t.Fatalf("var types = %+v", r.Vars)
	}
	if len(r.Behaviors) != 2 {
		t.Fatalf("behaviors = %d", len(r.Behaviors))
	}
	res, ok := r.Behaviors[0].(*ReserveBeh)
	if !ok || res.Actor.Decl == nil || res.Actor.Decl.Name != "fo" || res.Res != CPU {
		t.Fatalf("behavior[0] = %v", r.Behaviors[0])
	}
	col, ok := r.Behaviors[1].(*ColocateBeh)
	if !ok || col.A.Decl.Name != "fo" || col.B.Decl.Name != "fi" {
		t.Fatalf("behavior[1] = %v", r.Behaviors[1])
	}
	// Condition is a conjunction ending with an InRef.
	and1, ok := r.Cond.(*AndCond)
	if !ok {
		t.Fatalf("cond = %T", r.Cond)
	}
	if _, ok := and1.R.(*InRefCond); !ok {
		t.Fatalf("rightmost cond = %T, want InRefCond", and1.R)
	}
}

func TestParseBalanceBounds(t *testing.T) {
	pol := MustParse(pagerankPolicy)
	r := pol.Rules[0]
	bal, ok := r.Behaviors[0].(*BalanceBeh)
	if !ok || bal.Res != CPU || len(bal.Types) != 1 || bal.Types[0] != "Partition" {
		t.Fatalf("balance = %v", r.Behaviors[0])
	}
	upper, lower := extractBounds(r.Cond, CPU)
	if upper != 80 || lower != 60 {
		t.Fatalf("bounds = %v/%v, want 80/60", upper, lower)
	}
}

func TestParseCallFeatureWithActorCaller(t *testing.T) {
	pol := MustParse(mediaPolicy)
	r := pol.Rules[2] // VideoStream(v).call(UserInfo(u).track).count > 0
	cmp, ok := r.Cond.(*CmpCond)
	if !ok {
		t.Fatalf("cond = %T", r.Cond)
	}
	cf, ok := cmp.Feat.(*CallFeature)
	if !ok || cf.Client || cf.Caller.Type() != "VideoStream" || cf.Callee.Type() != "UserInfo" || cf.FName != "track" {
		t.Fatalf("call feature = %v", cmp.Feat)
	}
	if cmp.Stat != Count || cmp.Op != GT || cmp.Val != 0 {
		t.Fatalf("cmp = %v", cmp)
	}
}

func TestParseTrueRule(t *testing.T) {
	pol := MustParse(`true => pin(MovieReview(m));`)
	r := pol.Rules[0]
	if _, ok := r.Cond.(*TrueCond); !ok {
		t.Fatalf("cond = %T", r.Cond)
	}
	pin := r.Behaviors[0].(*PinBeh)
	if pin.Actor.Type() != "MovieReview" {
		t.Fatalf("pin type = %s", pin.Actor.Type())
	}
}

func TestParseAnyType(t *testing.T) {
	pol := MustParse(`any(a).cpu.perc > 50 => reserve(a, cpu);`)
	r := pol.Rules[0]
	if r.Vars[0].Type != AnyType {
		t.Fatalf("var type = %q, want any", r.Vars[0].Type)
	}
}

func TestParseMultipleBalanceTypes(t *testing.T) {
	pol := MustParse(`server.cpu.perc > 80 => balance({Worker, Table}, cpu);`)
	bal := pol.Rules[0].Behaviors[0].(*BalanceBeh)
	if len(bal.Types) != 2 || bal.Types[0] != "Worker" || bal.Types[1] != "Table" {
		t.Fatalf("types = %v", bal.Types)
	}
}

func TestParseSeparate(t *testing.T) {
	pol := MustParse(`true => separate(Leaf(a), Leaf2(b));`)
	sep := pol.Rules[0].Behaviors[0].(*SeparateBeh)
	if sep.A.Type() != "Leaf" || sep.B.Type() != "Leaf2" {
		t.Fatalf("separate = %v", sep)
	}
}

func TestParseComments(t *testing.T) {
	pol := MustParse(`
# balance partitions
// alt comment style
server.cpu.perc > 80 => balance({P}, cpu); # trailing
`)
	if len(pol.Rules) != 1 {
		t.Fatalf("rules = %d", len(pol.Rules))
	}
}

func TestParseParenthesizedCond(t *testing.T) {
	pol := MustParse(`(server.cpu.perc > 80 or server.cpu.perc < 60) and true => balance({P}, cpu);`)
	if _, ok := pol.Rules[0].Cond.(*AndCond); !ok {
		t.Fatalf("cond = %T", pol.Rules[0].Cond)
	}
}

func TestParseOperators(t *testing.T) {
	pol := MustParse(`
server.cpu.perc >= 80 => balance({A}, cpu);
server.cpu.perc <= 20 => balance({A}, cpu);
`)
	c0 := pol.Rules[0].Cond.(*CmpCond)
	c1 := pol.Rules[1].Cond.(*CmpCond)
	if c0.Op != GE || c1.Op != LE {
		t.Fatalf("ops = %v, %v", c0.Op, c1.Op)
	}
}

func TestParseFractionalValue(t *testing.T) {
	pol := MustParse(`server.cpu.perc > 82.5 => balance({A}, cpu);`)
	if pol.Rules[0].Cond.(*CmpCond).Val != 82.5 {
		t.Fatal("fractional value lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"empty", "", "empty policy"},
		{"missing arrow", `server.cpu.perc > 80 balance({A}, cpu);`, "expected"},
		{"bad stat", `server.cpu.bogus > 80 => balance({A}, cpu);`, "statistic"},
		{"bad resource", `server.gpu.perc > 80 => balance({A}, cpu);`, "resource"},
		{"bad behavior", `true => explode(A);`, "behavior"},
		{"missing semi", `true => pin(A(a))`, "';'"},
		{"lone equals", `server.cpu.perc = 80 => balance({A}, cpu);`, "'=>'"},
		{"bad char", `server.cpu.perc > 80 ! => balance({A}, cpu);`, "unexpected character"},
		{"redeclared var", `Folder(x).cpu.perc > 1 and File(x) in ref(x.files) => pin(x);`, "already declared"},
		{"count on resource", ``, ""}, // checked in check_test
	}
	for _, c := range cases {
		if c.src == "" {
			continue
		}
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Parse("true =>\n  explode(A);")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos.Line != 2 {
		t.Fatalf("error line = %d, want 2", perr.Pos.Line)
	}
}

func TestPolicyRoundTripThroughString(t *testing.T) {
	pol := MustParse(mediaPolicy)
	again, err := Parse(pol.String())
	if err != nil {
		t.Fatalf("re-parse of String() failed: %v\n%s", err, pol.String())
	}
	if len(again.Rules) != len(pol.Rules) {
		t.Fatalf("round trip rules = %d, want %d", len(again.Rules), len(pol.Rules))
	}
	if again.String() != pol.String() {
		t.Fatalf("String() not a fixpoint:\n%s\nvs\n%s", pol.String(), again.String())
	}
}

func TestResourceAndInteractionRuleSplit(t *testing.T) {
	pol := MustParse(estorePolicy)
	res := pol.ResourceRules()
	inter := pol.InteractionRules()
	if len(res) != 2 { // rules 1 (reserve) and 3 (balance)
		t.Fatalf("resource rules = %d, want 2", len(res))
	}
	if len(inter) != 1 { // rule 2 (colocate)
		t.Fatalf("interaction rules = %d, want 1", len(inter))
	}
	// The metadata rule has both reserve and colocate: appears in both sets.
	mpol := MustParse(metadataPolicy)
	if len(mpol.ResourceRules()) != 1 || len(mpol.InteractionRules()) != 1 {
		t.Fatal("mixed rule should be in both rule sets")
	}
}

func TestVarUsableAcrossCondAndBehavior(t *testing.T) {
	// Declaration inside a behavior argument (media rule 2 style).
	pol := MustParse(`server.cpu.perc > 50 => reserve(VideoStream(v), cpu);`)
	r := pol.Rules[0]
	if len(r.Vars) != 1 || r.Vars[0].Name != "v" || r.Vars[0].Type != "VideoStream" {
		t.Fatalf("vars = %+v", r.Vars)
	}
}
