package epl

import (
	"strings"
	"testing"
)

func kinds(toks []token) []tokKind {
	out := make([]tokKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := lex(`server.cpu.perc >= 82.5 => balance({A, B}, cpu);`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{
		tokIdent, tokDot, tokIdent, tokDot, tokIdent, tokGE, tokNumber,
		tokArrow, tokIdent, tokLParen, tokLBrace, tokIdent, tokComma,
		tokIdent, tokRBrace, tokComma, tokIdent, tokRParen, tokSemi, tokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lex(`< > <= >=`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{tokLT, tokGT, tokLE, tokGE, tokEOF}
	for i, k := range want {
		if toks[i].kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexNumberValue(t *testing.T) {
	toks, err := lex(`40 82.5`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].num != 40 || toks[1].num != 82.5 {
		t.Fatalf("numbers = %v, %v", toks[0].num, toks[1].num)
	}
}

func TestLexBadNumber(t *testing.T) {
	if _, err := lex(`1.2.3`); err == nil {
		t.Fatal("1.2.3 accepted")
	}
}

func TestLexCommentsSkipped(t *testing.T) {
	toks, err := lex("# comment line\n// another\ntrue # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].text != "true" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lex("true\n  =>\n    pin(a);")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].pos.Line != 1 || toks[0].pos.Col != 1 {
		t.Fatalf("true at %v", toks[0].pos)
	}
	if toks[1].pos.Line != 2 || toks[1].pos.Col != 3 {
		t.Fatalf("=> at %v", toks[1].pos)
	}
	if toks[2].pos.Line != 3 || toks[2].pos.Col != 5 {
		t.Fatalf("pin at %v", toks[2].pos)
	}
}

func TestLexLoneEquals(t *testing.T) {
	_, err := lex(`a = b`)
	if err == nil || !strings.Contains(err.Error(), "=>") {
		t.Fatalf("err = %v", err)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	_, err := lex(`a @ b`)
	if err == nil || !strings.Contains(err.Error(), "unexpected character") {
		t.Fatalf("err = %v", err)
	}
}

func TestLexUnicodeIdent(t *testing.T) {
	toks, err := lex(`Ордер_7`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[0].text != "Ордер_7" {
		t.Fatalf("token = %v", toks[0])
	}
}

func TestTokenStrings(t *testing.T) {
	for k := tokEOF; k <= tokGE; k++ {
		if k.String() == "token?" {
			t.Fatalf("kind %d has no String", k)
		}
	}
}
