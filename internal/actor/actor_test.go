package actor

import (
	"testing"
	"testing/quick"

	"plasma/internal/cluster"
	"plasma/internal/sim"
)

func testEnv(t *testing.T, machines int) (*sim.Kernel, *cluster.Cluster, *Runtime) {
	t.Helper()
	k := sim.New(1)
	typ := cluster.InstanceType{Name: "t", VCPUs: 2, MemMB: 4096, NetMbps: 1000, SpeedFac: 1}
	c := cluster.New(k, machines, typ)
	rt := NewRuntime(k, c)
	return k, c, rt
}

type echo struct{ got []Message }

func (e *echo) Receive(ctx *Context, msg Message) {
	e.got = append(e.got, msg)
	ctx.Use(sim.Millisecond)
	ctx.Reply("ok:"+msg.Method, 16)
}

func TestSpawnAndRequestReply(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	e := &echo{}
	ref := rt.SpawnOn("Echo", e, 0)
	cl := NewClient(rt, 1)
	var lat sim.Duration
	var reply interface{}
	cl.Request(ref, "ping", 42, 100, func(l sim.Duration, r interface{}) { lat, reply = l, r })
	k.RunUntilIdle()
	if len(e.got) != 1 || e.got[0].Method != "ping" || e.got[0].Arg.(int) != 42 {
		t.Fatalf("bad delivery: %+v", e.got)
	}
	if e.got[0].SenderType != ClientCaller {
		t.Fatalf("sender type %q, want client", e.got[0].SenderType)
	}
	if reply != "ok:ping" {
		t.Fatalf("reply = %v", reply)
	}
	// Latency must include 1ms processing plus two network hops.
	if lat < sim.Millisecond {
		t.Fatalf("latency %v < processing cost", lat)
	}
}

func TestLocalVsRemoteLatency(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	ref := rt.SpawnOn("Echo", &echo{}, 0)

	measure := func(site cluster.MachineID) sim.Duration {
		cl := NewClient(rt, site)
		var lat sim.Duration
		cl.Request(ref, "m", nil, 100, func(l sim.Duration, _ interface{}) { lat = l })
		k.RunUntilIdle()
		return lat
	}
	local := measure(0)
	remote := measure(1)
	if remote <= local {
		t.Fatalf("remote latency %v should exceed local %v", remote, local)
	}
}

func TestMailboxSerializesMessages(t *testing.T) {
	k, _, rt := testEnv(t, 1)
	var done []sim.Time
	b := BehaviorFunc(func(ctx *Context, msg Message) {
		ctx.Use(10 * sim.Millisecond)
		ctx.Reply(nil, 1)
	})
	ref := rt.SpawnOn("A", b, 0)
	cl := NewClient(rt, 0)
	for i := 0; i < 3; i++ {
		cl.Request(ref, "m", nil, 1, func(l sim.Duration, _ interface{}) { done = append(done, k.Now()) })
	}
	k.RunUntilIdle()
	if len(done) != 3 {
		t.Fatalf("replies = %d", len(done))
	}
	// Actor processes one at a time even on a 2-core machine: completions
	// must be spaced by >= 10ms.
	for i := 1; i < len(done); i++ {
		if done[i]-done[i-1] < sim.Time(10*sim.Millisecond) {
			t.Fatalf("messages overlapped: %v", done)
		}
	}
}

func TestSendBetweenActors(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	var got Message
	sink := BehaviorFunc(func(ctx *Context, msg Message) { got = msg })
	sinkRef := rt.SpawnOn("Sink", sink, 1)
	src := BehaviorFunc(func(ctx *Context, msg Message) {
		ctx.Use(sim.Millisecond)
		ctx.Send(sinkRef, "fwd", "data", 64)
	})
	srcRef := rt.SpawnOn("Src", src, 0)
	NewClient(rt, 0).Send(srcRef, "go", nil, 1)
	k.RunUntilIdle()
	if got.Method != "fwd" || got.SenderType != "Src" || got.Sender != srcRef {
		t.Fatalf("got %+v", got)
	}
}

func TestForwardPreservesReplyPath(t *testing.T) {
	k, _, rt := testEnv(t, 3)
	leaf := BehaviorFunc(func(ctx *Context, msg Message) {
		ctx.Use(sim.Millisecond)
		ctx.Reply("from-leaf", 8)
	})
	leafRef := rt.SpawnOn("Leaf", leaf, 2)
	mid := BehaviorFunc(func(ctx *Context, msg Message) {
		ctx.Use(sim.Millisecond)
		ctx.Forward(leafRef, "deep", msg.Arg, msg.Size)
	})
	midRef := rt.SpawnOn("Mid", mid, 1)
	var reply interface{}
	NewClient(rt, 0).Request(midRef, "top", nil, 10, func(_ sim.Duration, r interface{}) { reply = r })
	k.RunUntilIdle()
	if reply != "from-leaf" {
		t.Fatalf("reply = %v, want from-leaf", reply)
	}
}

func TestMigrationMovesActor(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	ref := rt.SpawnOn("A", &echo{}, 0)
	ok := false
	rt.Migrate(ref, 1, func(b bool) { ok = b })
	k.RunUntilIdle()
	if !ok {
		t.Fatal("migration failed")
	}
	if rt.ServerOf(ref) != 1 {
		t.Fatalf("actor on %d, want 1", rt.ServerOf(ref))
	}
	if rt.Migrations() != 1 {
		t.Fatalf("migrations = %d", rt.Migrations())
	}
}

func TestMigrationWaitsForBusyActor(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	b := BehaviorFunc(func(ctx *Context, msg Message) { ctx.Use(50 * sim.Millisecond) })
	ref := rt.SpawnOn("A", b, 0)
	NewClient(rt, 0).Send(ref, "work", nil, 1)
	k.Run(sim.Time(sim.Millisecond)) // message being processed
	var doneAt sim.Time
	rt.Migrate(ref, 1, func(ok bool) {
		if ok {
			doneAt = k.Now()
		}
	})
	k.RunUntilIdle()
	if doneAt < sim.Time(50*sim.Millisecond) {
		t.Fatalf("migration completed at %v, before message finished", doneAt)
	}
	if rt.ServerOf(ref) != 1 {
		t.Fatal("actor did not move")
	}
}

func TestMigrationCostGrowsWithState(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	small := rt.SpawnOn("A", BehaviorFunc(func(ctx *Context, msg Message) {
		ctx.SetMemSize(1 << 10)
	}), 0)
	big := rt.SpawnOn("A", BehaviorFunc(func(ctx *Context, msg Message) {
		ctx.SetMemSize(64 << 20)
	}), 0)
	cl := NewClient(rt, 0)
	cl.Send(small, "init", nil, 1)
	cl.Send(big, "init", nil, 1)
	k.RunUntilIdle()

	migrate := func(ref Ref, dst cluster.MachineID) sim.Duration {
		start := k.Now()
		var end sim.Time
		rt.Migrate(ref, dst, func(bool) { end = k.Now() })
		k.RunUntilIdle()
		return sim.Duration(end - start)
	}
	dSmall := migrate(small, 1)
	dBig := migrate(big, 1)
	if dBig <= dSmall {
		t.Fatalf("big-state migration (%v) not slower than small (%v)", dBig, dSmall)
	}
}

func TestPinnedActorRefusesMigration(t *testing.T) {
	k, _, rt := testEnv(t, 2)
	ref := rt.SpawnOn("A", &echo{}, 0)
	rt.Pin(ref)
	ok := true
	rt.Migrate(ref, 1, func(b bool) { ok = b })
	k.RunUntilIdle()
	if ok || rt.ServerOf(ref) != 0 {
		t.Fatal("pinned actor moved")
	}
	rt.Unpin(ref)
	rt.Migrate(ref, 1, func(b bool) { ok = b })
	k.RunUntilIdle()
	if !ok {
		t.Fatal("unpinned actor should move")
	}
}

func TestMessagesChaseMigratedActor(t *testing.T) {
	k, _, rt := testEnv(t, 3)
	var got int
	b := BehaviorFunc(func(ctx *Context, msg Message) {
		got++
		ctx.Use(sim.Millisecond)
		ctx.Reply(nil, 1)
	})
	ref := rt.SpawnOn("A", b, 0)
	cl := NewClient(rt, 2)
	replies := 0
	// Send, migrate while in flight, send again.
	cl.Request(ref, "m1", nil, 1000, func(sim.Duration, interface{}) { replies++ })
	rt.Migrate(ref, 1, nil)
	cl.Request(ref, "m2", nil, 1000, func(sim.Duration, interface{}) { replies++ })
	k.RunUntilIdle()
	if got != 2 || replies != 2 {
		t.Fatalf("got=%d replies=%d, want 2,2", got, replies)
	}
	if rt.ServerOf(ref) != 1 {
		t.Fatal("actor not at destination")
	}
}

func TestStopDropsActor(t *testing.T) {
	k, c, rt := testEnv(t, 1)
	ref := rt.SpawnOn("A", BehaviorFunc(func(ctx *Context, msg Message) {
		ctx.SetMemSize(1 << 20)
	}), 0)
	NewClient(rt, 0).Send(ref, "init", nil, 1)
	k.RunUntilIdle()
	if c.Machine(0).MemUsed() != 1<<20 {
		t.Fatalf("mem = %d", c.Machine(0).MemUsed())
	}
	rt.Stop(ref)
	if rt.Exists(ref) || rt.TypeOf(ref) != "" || rt.ServerOf(ref) != -1 {
		t.Fatal("stopped actor still visible")
	}
	if c.Machine(0).MemUsed() != 0 {
		t.Fatal("memory not released on stop")
	}
	// Message to dead actor must not crash.
	NewClient(rt, 0).Send(ref, "late", nil, 1)
	k.RunUntilIdle()
}

func TestPropsVisibleToRuntime(t *testing.T) {
	k, _, rt := testEnv(t, 1)
	child := rt.SpawnOn("File", &echo{}, 0)
	parent := rt.SpawnOn("Folder", BehaviorFunc(func(ctx *Context, msg Message) {
		ctx.SetProp("files", []Ref{child})
		ctx.AddPropRef("files", child)
	}), 0)
	NewClient(rt, 0).Send(parent, "init", nil, 1)
	k.RunUntilIdle()
	refs := rt.Props(parent, "files")
	if len(refs) != 2 || refs[0] != child || refs[1] != child {
		t.Fatalf("props = %v", refs)
	}
	if rt.Props(parent, "nope") != nil {
		t.Fatal("missing prop should be nil")
	}
}

func TestActorsOnAndOrdering(t *testing.T) {
	_, _, rt := testEnv(t, 2)
	a := rt.SpawnOn("A", &echo{}, 0)
	b := rt.SpawnOn("B", &echo{}, 1)
	c := rt.SpawnOn("C", &echo{}, 0)
	on0 := rt.ActorsOn(0)
	if len(on0) != 2 || on0[0] != a || on0[1] != c {
		t.Fatalf("ActorsOn(0) = %v", on0)
	}
	all := rt.Actors()
	if len(all) != 3 || all[0] != a || all[1] != b || all[2] != c {
		t.Fatalf("Actors() = %v", all)
	}
}

type countingProfiler struct {
	msgs, cpu, net int
	lastMethod     string
}

func (p *countingProfiler) OnMessage(_ cluster.MachineID, _ string, _ Ref, _ Ref, _, method string, _ int64) {
	p.msgs++
	p.lastMethod = method
}
func (p *countingProfiler) OnCPU(cluster.MachineID, Ref, string, sim.Duration) { p.cpu++ }
func (p *countingProfiler) OnNet(cluster.MachineID, Ref, string, int64)        { p.net++ }

func TestProfilerHookFires(t *testing.T) {
	k, _, rt := testEnv(t, 1)
	p := &countingProfiler{}
	rt.SetProfiler(p)
	ref := rt.SpawnOn("A", &echo{}, 0)
	NewClient(rt, 0).Request(ref, "hi", nil, 10, nil)
	k.RunUntilIdle()
	if p.msgs != 1 || p.cpu != 1 || p.net != 1 || p.lastMethod != "hi" {
		t.Fatalf("profiler counts: %+v", p)
	}
}

func TestProfilingAddsCost(t *testing.T) {
	run := func(profile bool) sim.Time {
		k := sim.New(1)
		c := cluster.New(k, 1, cluster.InstanceType{Name: "t", VCPUs: 1, MemMB: 1024, NetMbps: 100, SpeedFac: 1})
		rt := NewRuntime(k, c)
		if profile {
			rt.SetProfiler(&countingProfiler{})
		}
		ref := rt.SpawnOn("A", &echo{}, 0)
		cl := NewClient(rt, 0)
		for i := 0; i < 100; i++ {
			cl.Send(ref, "m", nil, 1)
		}
		k.RunUntilIdle()
		return k.Now()
	}
	off, on := run(false), run(true)
	if on <= off {
		t.Fatalf("profiling on (%v) should cost more than off (%v)", on, off)
	}
	overhead := float64(on-off) / float64(off)
	if overhead > 0.05 {
		t.Fatalf("profiling overhead %.3f too large (Table 3 says <= 2.3%%)", overhead)
	}
}

type placeAt struct{ srv cluster.MachineID }

func (p placeAt) Place(string, Ref, cluster.MachineID) cluster.MachineID { return p.srv }

func TestPlacementHookUsed(t *testing.T) {
	_, _, rt := testEnv(t, 3)
	rt.SetPlacement(placeAt{srv: 2})
	ref := rt.Spawn("A", &echo{}, Ref{})
	if rt.ServerOf(ref) != 2 {
		t.Fatalf("placed on %d, want 2", rt.ServerOf(ref))
	}
	rt.SetPlacement(placeAt{srv: -1}) // fall back to random
	ref2 := rt.Spawn("A", &echo{}, Ref{})
	if rt.ServerOf(ref2) < 0 {
		t.Fatal("fallback placement failed")
	}
}

// Property: no message is lost — every request to a live echo actor gets a
// reply, under random migration interleavings.
func TestPropertyNoMessageLoss(t *testing.T) {
	f := func(moves []uint8) bool {
		k := sim.New(31)
		c := cluster.New(k, 4, cluster.InstanceType{Name: "t", VCPUs: 2, MemMB: 4096, NetMbps: 1000, SpeedFac: 1})
		rt := NewRuntime(k, c)
		ref := rt.SpawnOn("A", &echo{}, 0)
		cl := NewClient(rt, 0)
		want := 0
		got := 0
		for _, mv := range moves {
			want++
			cl.Request(ref, "m", nil, 100, func(sim.Duration, interface{}) { got++ })
			dst := cluster.MachineID(mv % 4)
			rt.Migrate(ref, dst, nil)
			k.Run(k.Now() + sim.Time(sim.Duration(mv)*sim.Millisecond))
		}
		k.RunUntilIdle()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
