package actor

import (
	"testing"

	"plasma/internal/cluster"
	"plasma/internal/sim"
)

// Migration failure and rollback: a live migration must survive a crash of
// either endpoint mid-transfer. Destination loss rolls the actor back onto
// its source with its buffered mail intact (delivered exactly once); source
// loss aborts the move and the actor awaits RecoverMachine. In neither case
// may the actor be left stuck `migrating` or the in-flight registry leak.

// bigActor spawns an actor on srv whose state is 10 MB (so serialization
// takes 50 ms and the transfer ~335 ms — a wide window to crash into) and
// which counts every "work" message it processes.
func bigActor(t *testing.T, k *sim.Kernel, rt *Runtime, srv cluster.MachineID, worked *int) Ref {
	t.Helper()
	ref := rt.SpawnOn("Big", BehaviorFunc(func(ctx *Context, msg Message) {
		switch msg.Method {
		case "init":
			ctx.SetMemSize(10 << 20)
		case "work":
			*worked++
		}
	}), srv)
	NewClient(rt, srv).Send(ref, "init", nil, 1)
	k.RunUntilIdle()
	return ref
}

func TestDestinationCrashMidTransferRollsBack(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := NewRuntime(k, c)
	worked := 0
	ref := bigActor(t, k, rt, 0, &worked)

	var doneCalled, doneOK bool
	rt.Migrate(ref, 1, func(ok bool) { doneCalled, doneOK = true, ok })
	k.Run(k.Now() + sim.Time(100*sim.Millisecond)) // mid-transfer
	if !rt.Migrating(ref) || rt.InFlightMigrations() != 1 {
		t.Fatal("migration not in flight at crash time")
	}
	// Mail arriving mid-migration buffers in the mailbox.
	cl := NewClient(rt, 0)
	for i := 0; i < 3; i++ {
		cl.Send(ref, "work", nil, 8)
	}

	if !c.Fail(1) {
		t.Fatal("Fail rejected")
	}
	// Rollback is synchronous with the crash: the actor is live on its
	// source, nothing is stuck, and the initiator has been told.
	if !doneCalled || doneOK {
		t.Fatalf("initiator not told of failure (called=%v ok=%v)", doneCalled, doneOK)
	}
	if rt.Migrating(ref) || rt.InFlightMigrations() != 0 {
		t.Fatal("migration state stuck after destination crash")
	}
	if srv := rt.ServerOf(ref); srv != 0 {
		t.Fatalf("actor on %d after rollback, want source 0", srv)
	}
	if rt.FailedMigrations() != 1 {
		t.Fatalf("FailedMigrations = %d, want 1", rt.FailedMigrations())
	}

	// Buffered messages deliver exactly once after the rollback.
	k.RunUntilIdle()
	if worked != 3 {
		t.Fatalf("worked = %d, want 3 (exactly-once redelivery)", worked)
	}
	// Memory stayed attributed to the source.
	if got := c.Machine(0).MemUsed(); got != 10<<20 {
		t.Fatalf("source memory = %d, want 10MB", got)
	}

	// A follow-up migration succeeds once the destination is back.
	if !c.Repair(1) {
		t.Fatal("Repair rejected")
	}
	var retryOK bool
	rt.Migrate(ref, 1, func(ok bool) { retryOK = ok })
	k.RunUntilIdle()
	if !retryOK || rt.ServerOf(ref) != 1 {
		t.Fatalf("follow-up migration failed (ok=%v srv=%d)", retryOK, rt.ServerOf(ref))
	}
	if rt.Migrations() != 1 || rt.InFlightMigrations() != 0 {
		t.Fatalf("Migrations = %d, InFlight = %d after retry", rt.Migrations(), rt.InFlightMigrations())
	}
	if got := c.Machine(1).MemUsed(); got != 10<<20 {
		t.Fatalf("destination memory = %d after commit, want 10MB", got)
	}
}

func TestSourceCrashMidTransferAwaitsRecovery(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := NewRuntime(k, c)
	worked := 0
	ref := bigActor(t, k, rt, 0, &worked)

	var doneCalled, doneOK bool
	rt.Migrate(ref, 1, func(ok bool) { doneCalled, doneOK = true, ok })
	k.Run(k.Now() + sim.Time(100*sim.Millisecond))
	if !c.Fail(0) {
		t.Fatal("Fail rejected")
	}
	if !doneCalled || doneOK {
		t.Fatalf("initiator not told of failure (called=%v ok=%v)", doneCalled, doneOK)
	}
	if rt.Migrating(ref) || rt.InFlightMigrations() != 0 {
		t.Fatal("migration state stuck after source crash")
	}
	// The actor died with its machine; recovery re-homes it to the survivor.
	if n := rt.RecoverMachine(0); n != 1 {
		t.Fatalf("recovered %d actors, want 1", n)
	}
	if srv := rt.ServerOf(ref); srv != 1 {
		t.Fatalf("actor on %d after recovery, want 1", srv)
	}
	NewClient(rt, 1).Send(ref, "work", nil, 8)
	k.RunUntilIdle()
	if worked != 1 {
		t.Fatalf("recovered actor did not serve (worked=%d)", worked)
	}
}

// Satellite regression: a migration requested while the actor is busy (so it
// is still queued as pendingDst, not yet in flight) must fail fast when the
// destination dies, not leave the actor stuck waiting to migrate forever.
func TestQueuedMigrationFailsFastOnDeadDestination(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := NewRuntime(k, c)
	worked := 0
	ref := rt.SpawnOn("Slow", BehaviorFunc(func(ctx *Context, msg Message) {
		switch msg.Method {
		case "slow":
			ctx.Use(200 * sim.Millisecond)
		case "work":
			worked++
		}
	}), 0)
	cl := NewClient(rt, 0)
	cl.Send(ref, "slow", nil, 8)
	k.Run(k.Now() + sim.Time(10*sim.Millisecond)) // mid-processing

	var doneCalled, doneOK bool
	rt.Migrate(ref, 1, func(ok bool) { doneCalled, doneOK = true, ok })
	if rt.Migrating(ref) {
		t.Fatal("migration began while the actor was busy")
	}
	c.Fail(1)
	if !doneCalled || doneOK {
		t.Fatalf("queued migration not failed fast (called=%v ok=%v)", doneCalled, doneOK)
	}
	// The actor finishes its message and keeps serving on its source.
	cl.Send(ref, "work", nil, 8)
	k.RunUntilIdle()
	if rt.Migrating(ref) || rt.InFlightMigrations() != 0 {
		t.Fatal("migration state stuck")
	}
	if rt.ServerOf(ref) != 0 || worked != 1 {
		t.Fatalf("actor not serving on source (srv=%d worked=%d)", rt.ServerOf(ref), worked)
	}
}

// Decommission removes the destination without firing crash hooks; the
// transfer discovers the loss on arrival and rolls back.
func TestDecommissionMidTransferRollsBack(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 3, cluster.M1Small)
	rt := NewRuntime(k, c)
	worked := 0
	ref := bigActor(t, k, rt, 0, &worked)

	var doneCalled, doneOK bool
	rt.Migrate(ref, 1, func(ok bool) { doneCalled, doneOK = true, ok })
	k.Run(k.Now() + sim.Time(100*sim.Millisecond)) // past serialization, mid-transfer
	if err := c.Decommission(1); err != nil {
		t.Fatalf("Decommission: %v", err)
	}
	k.RunUntilIdle()
	if !doneCalled || doneOK {
		t.Fatalf("initiator not told of failure (called=%v ok=%v)", doneCalled, doneOK)
	}
	if rt.Migrating(ref) || rt.InFlightMigrations() != 0 {
		t.Fatal("migration state stuck after decommission")
	}
	if srv := rt.ServerOf(ref); srv != 0 {
		t.Fatalf("actor on %d after rollback, want source 0", srv)
	}
	NewClient(rt, 0).Send(ref, "work", nil, 8)
	k.RunUntilIdle()
	if worked != 1 {
		t.Fatalf("rolled-back actor did not serve (worked=%d)", worked)
	}
}

func TestStopDuringMigrationAborts(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := NewRuntime(k, c)
	worked := 0
	ref := bigActor(t, k, rt, 0, &worked)

	var doneCalled, doneOK bool
	rt.Migrate(ref, 1, func(ok bool) { doneCalled, doneOK = true, ok })
	k.Run(k.Now() + sim.Time(100*sim.Millisecond))
	rt.Stop(ref)
	k.RunUntilIdle()
	if !doneCalled || doneOK {
		t.Fatalf("initiator not told of failure (called=%v ok=%v)", doneCalled, doneOK)
	}
	if rt.InFlightMigrations() != 0 || rt.Exists(ref) {
		t.Fatal("stop during migration leaked state")
	}
	if rt.FailedMigrations() != 1 {
		t.Fatalf("FailedMigrations = %d, want 1", rt.FailedMigrations())
	}
}
