package actor

import (
	"testing"

	"plasma/internal/cluster"
	"plasma/internal/sim"
	"plasma/internal/trace"
)

// stateful sets a fixed state size on its first message so migrations have
// a real transfer cost.
func statefulActor(bytes int64) Behavior {
	return BehaviorFunc(func(ctx *Context, msg Message) {
		ctx.SetMemSize(bytes)
		ctx.Use(sim.Microsecond)
	})
}

// prime spawns an actor on srv with the given state size and processes one
// message so the size takes effect.
func primeActor(k *sim.Kernel, rt *Runtime, srv cluster.MachineID, bytes int64) Ref {
	ref := rt.SpawnOn("S", statefulActor(bytes), srv)
	cl := NewClient(rt, srv)
	cl.Request(ref, "init", nil, 1, nil)
	k.RunUntilIdle()
	return ref
}

// migrateAll starts every migration at the same instant and reports each
// completion time.
func migrateAll(k *sim.Kernel, rt *Runtime, moves map[Ref]cluster.MachineID) map[Ref]sim.Time {
	done := map[Ref]sim.Time{}
	for ref, dst := range moves {
		ref, dst := ref, dst
		rt.Migrate(ref, dst, func(ok bool) {
			if ok {
				done[ref] = k.Now()
			}
		})
	}
	k.RunUntilIdle()
	return done
}

// Two simultaneous transfers into the same destination NIC must serialize
// under the pipeline: the later one finishes roughly one wire time after
// the earlier, where without the pipeline both land together.
func TestXferPipelineSerializesSameDestination(t *testing.T) {
	const state = 64 << 20 // 64 MB over a 1000 Mbps NIC: ~512 ms wire time

	run := func(pipeline bool) (spread sim.Duration) {
		k, _, rt := testEnv(t, 3)
		rt.XferPipeline = pipeline
		a := primeActor(k, rt, 0, state)
		b := primeActor(k, rt, 1, state)
		done := migrateAll(k, rt, map[Ref]cluster.MachineID{a: 2, b: 2})
		if len(done) != 2 {
			t.Fatalf("pipeline=%v: %d migrations completed, want 2", pipeline, len(done))
		}
		d := done[a] - done[b]
		if d < 0 {
			d = -d
		}
		return sim.Duration(d)
	}

	unpiped := run(false)
	piped := run(true)
	wireSec := float64(state) * 8 / 1e6 / 1000
	wire := sim.Duration(wireSec * float64(sim.Second))
	if unpiped >= wire/2 {
		t.Fatalf("without the pipeline concurrent arrivals should land near-together, spread %v", unpiped)
	}
	if piped < wire/2 {
		t.Fatalf("pipelined same-destination transfers spread %v, want about one wire time (%v)", piped, wire)
	}
}

// Transfers to distinct destinations do not queue: with the pipeline on,
// both complete exactly when the contention-free model says they would.
func TestXferPipelineOverlapsDistinctDestinations(t *testing.T) {
	const state = 64 << 20

	run := func(pipeline bool) (at [2]sim.Time) {
		k, _, rt := testEnv(t, 4)
		rt.XferPipeline = pipeline
		a := primeActor(k, rt, 0, state)
		b := primeActor(k, rt, 1, state)
		done := migrateAll(k, rt, map[Ref]cluster.MachineID{a: 2, b: 3})
		if len(done) != 2 {
			t.Fatalf("pipeline=%v: %d migrations completed, want 2", pipeline, len(done))
		}
		return [2]sim.Time{done[a], done[b]}
	}

	if run(false) != run(true) {
		t.Fatal("distinct-destination transfers must be unaffected by the pipeline")
	}
}

// Every pipelined transfer leaves an xfer-pipeline record parented to its
// transfer record, with the queue wait in Detail.
func TestXferPipelineTraced(t *testing.T) {
	k, _, rt := testEnv(t, 3)
	ring := trace.NewRing(1 << 12)
	rt.SetTracer(trace.New(ring))
	rt.XferPipeline = true
	a := primeActor(k, rt, 0, 64<<20)
	b := primeActor(k, rt, 1, 64<<20)
	migrateAll(k, rt, map[Ref]cluster.MachineID{a: 2, b: 2})

	var recs []trace.Record
	byID := map[uint64]trace.Record{}
	for _, r := range ring.Records() {
		byID[r.ID] = r
		if r.Kind == trace.KindXferPipeline {
			recs = append(recs, r)
		}
	}
	if len(recs) != 2 {
		t.Fatalf("xfer-pipeline records = %d, want one per transfer", len(recs))
	}
	sawWait := false
	for _, r := range recs {
		parent, ok := byID[r.Parent]
		if !ok || parent.Kind != trace.KindTransfer {
			t.Fatalf("record %+v not parented to a transfer", r)
		}
		if r.Value <= 0 {
			t.Fatalf("record %+v carries no wire time", r)
		}
		if r.Detail != "wait=0us" {
			sawWait = true
		}
	}
	if !sawWait {
		t.Fatal("second same-destination transfer recorded no queue wait")
	}
}
