package actor

import (
	"testing"

	"plasma/internal/cluster"
	"plasma/internal/sim"
)

// Machine-failure behavior: the cluster drops in-flight work, and
// RecoverMachine models the underlying runtime's fault tolerance (§2.2) by
// re-homing the crashed machine's actors.

func TestMachineFailDropsInFlightWork(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := NewRuntime(k, c)
	done := false
	ref := rt.SpawnOn("A", BehaviorFunc(func(ctx *Context, msg Message) {
		ctx.Use(50 * sim.Millisecond)
		ctx.Reply(nil, 8)
	}), 0)
	NewClient(rt, 1).Request(ref, "m", nil, 8, func(sim.Duration, interface{}) { done = true })
	k.Run(sim.Time(5 * sim.Millisecond)) // mid-processing
	if !c.Fail(0) {
		t.Fatal("Fail rejected")
	}
	k.RunUntilIdle()
	if done {
		t.Fatal("reply arrived from a crashed machine")
	}
	if c.Machine(0).Up() {
		t.Fatal("failed machine still up")
	}
}

func TestRecoverMachineRehomesActors(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 3, cluster.M1Small)
	rt := NewRuntime(k, c)
	var served int
	var refs []Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, rt.SpawnOn("A", BehaviorFunc(func(ctx *Context, msg Message) {
			ctx.Use(sim.Millisecond)
			served++
			ctx.Reply(nil, 8)
		}), 0))
	}
	k.RunUntilIdle()
	c.Fail(0)
	n := rt.RecoverMachine(0)
	if n != 4 {
		t.Fatalf("recovered %d actors, want 4", n)
	}
	for _, r := range refs {
		if srv := rt.ServerOf(r); srv == 0 || srv < 0 {
			t.Fatalf("actor %v still on failed machine (srv %d)", r, srv)
		}
	}
	// Recovered actors keep serving.
	cl := NewClient(rt, 1)
	replies := 0
	for _, r := range refs {
		cl.Request(r, "m", nil, 8, func(sim.Duration, interface{}) { replies++ })
	}
	k.RunUntilIdle()
	if replies != 4 {
		t.Fatalf("replies = %d, want 4 after recovery", replies)
	}
}

func TestRecoverMachineRestoresMemoryAccounting(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := NewRuntime(k, c)
	ref := rt.SpawnOn("A", BehaviorFunc(func(ctx *Context, msg Message) {
		ctx.SetMemSize(1 << 20)
	}), 0)
	NewClient(rt, 0).Send(ref, "init", nil, 1)
	k.RunUntilIdle()
	c.Fail(0)
	rt.RecoverMachine(0)
	if got := c.Machine(1).MemUsed(); got != 1<<20 {
		t.Fatalf("destination memory = %d, want actor state re-attributed", got)
	}
}

func TestRepairReturnsMachineToService(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	c.Fail(0)
	if c.UpCount() != 1 {
		t.Fatalf("UpCount = %d after failure", c.UpCount())
	}
	if !c.Repair(0) {
		t.Fatal("Repair rejected")
	}
	if c.UpCount() != 2 || !c.Machine(0).Up() {
		t.Fatal("machine not back in service")
	}
	// Repaired machine executes work again.
	done := false
	c.Machine(0).Exec(sim.Millisecond, func() { done = true })
	k.RunUntilIdle()
	if !done {
		t.Fatal("repaired machine did not execute work")
	}
}

func TestFailRepairBounds(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 1, cluster.M1Small)
	_ = k
	if c.Fail(99) {
		t.Fatal("unknown machine failed")
	}
	if c.Repair(0) {
		t.Fatal("repairing a healthy machine accepted")
	}
	c.Fail(0)
	if c.Fail(0) {
		t.Fatal("double failure accepted")
	}
}

func TestMessagesToFailedMachineActorAreLostUntilRecovery(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := NewRuntime(k, c)
	got := 0
	ref := rt.SpawnOn("A", BehaviorFunc(func(ctx *Context, msg Message) {
		got++
	}), 0)
	k.RunUntilIdle()
	c.Fail(0)
	// Sends during the outage queue in the mailbox but cannot be processed.
	cl := NewClient(rt, 1)
	cl.Send(ref, "m", nil, 8)
	k.RunUntilIdle()
	if got != 0 {
		t.Fatal("message processed on a failed machine")
	}
	// Recovery re-homes the actor; its queued mail drains.
	rt.RecoverMachine(0)
	k.RunUntilIdle()
	if got != 1 {
		t.Fatalf("queued message not re-delivered after recovery: got=%d", got)
	}
}
