package actor

import (
	"testing"
	"testing/quick"

	"plasma/internal/cluster"
	"plasma/internal/sim"
)

// Property: memory accounting is conserved — after any sequence of spawns,
// state-size updates, migrations, and stops, the sum of machine MemUsed
// equals the sum of live actors' declared sizes.
func TestPropertyMemoryConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		k := sim.New(17)
		c := cluster.New(k, 3, cluster.InstanceType{Name: "t", VCPUs: 1, MemMB: 1 << 20, NetMbps: 1000, SpeedFac: 1})
		rt := NewRuntime(k, c)
		cl := NewClient(rt, 0)
		var live []Ref
		sizes := map[Ref]int64{}

		for _, op := range ops {
			switch op % 4 {
			case 0: // spawn with a declared size
				size := int64(op) * 1024
				ref := rt.SpawnOn("A", BehaviorFunc(func(ctx *Context, msg Message) {
					ctx.SetMemSize(size)
				}), cluster.MachineID(int(op)%3))
				cl.Send(ref, "init", nil, 1)
				live = append(live, ref)
				sizes[ref] = size
			case 1: // migrate a random live actor
				if len(live) > 0 {
					rt.Migrate(live[int(op)%len(live)], cluster.MachineID(int(op/4)%3), nil)
				}
			case 2: // stop one
				if len(live) > 0 {
					i := int(op) % len(live)
					rt.Stop(live[i])
					delete(sizes, live[i])
					live = append(live[:i], live[i+1:]...)
				}
			case 3: // let time pass
				k.Run(k.Now() + sim.Time(sim.Duration(op)*sim.Millisecond))
			}
		}
		k.RunUntilIdle()

		var wantTotal, gotTotal int64
		for _, s := range sizes {
			wantTotal += s
		}
		for _, m := range c.Machines() {
			gotTotal += m.MemUsed()
		}
		return gotTotal == wantTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the directory stays consistent — every live actor reports a
// server that is up, and ActorsOn partitions the live actor set.
func TestPropertyDirectoryConsistency(t *testing.T) {
	f := func(ops []uint16) bool {
		k := sim.New(23)
		c := cluster.New(k, 4, cluster.M1Small)
		rt := NewRuntime(k, c)
		var live []Ref
		for _, op := range ops {
			switch op % 3 {
			case 0:
				live = append(live, rt.SpawnOn("A", BehaviorFunc(func(*Context, Message) {}), cluster.MachineID(int(op)%4)))
			case 1:
				if len(live) > 0 {
					rt.Migrate(live[int(op)%len(live)], cluster.MachineID(int(op/3)%4), nil)
				}
			case 2:
				k.Run(k.Now() + sim.Time(sim.Duration(op%50)*sim.Millisecond))
			}
		}
		k.RunUntilIdle()

		seen := map[Ref]bool{}
		for srv := cluster.MachineID(0); srv < 4; srv++ {
			for _, ref := range rt.ActorsOn(srv) {
				if seen[ref] {
					return false // actor on two servers
				}
				seen[ref] = true
				if rt.ServerOf(ref) != srv {
					return false
				}
			}
		}
		return len(seen) == len(rt.Actors())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
