// Package actor implements the actor runtime PLASMA manages: typed actors
// with mailboxes, asynchronous messaging with request/reply, reference
// properties (the `ref(a.prop)` feature of the EPL), live migration, and
// hooks for the elasticity profiling runtime and for rule-driven placement
// of new actors.
//
// The runtime executes on the discrete-event simulator: application handlers
// run real Go code and declare virtual CPU cost via Context.Use; the hosting
// machine's cores are occupied for that long, producing the CPU, memory, and
// network signals the paper's elasticity rules react to.
//
// # Shard safety
//
// On a sharded kernel (sim.Kernel.SetShards > 1) message dispatch and
// handler execution run on the hosting machine's shard, concurrently with
// other shards inside one conservative time window. The runtime keeps that
// safe by partitioning its state along machine homes:
//
//   - per-actor state (mailbox, busy, props, memSize) is owned by the
//     actor's current home and touched only from that home's context;
//   - cross-machine effects (sends, replies, forwards) are routed through
//     the hosting machine's sim.Env, whose cross-home floor is the
//     kernel's lookahead — below the cluster's minimum network latency,
//     so message timing is unchanged;
//   - migration bookkeeping (the inflight table, trace emission, counters)
//     is global state: shard-context code escalates to the global phase
//     via Env.Schedule(sim.GlobalHome, ...) instead of mutating it;
//   - shed counts are striped per shard and summed on read.
//
// Control-plane entry points — Spawn/SpawnOn, Stop, Migrate/MigrateTraced,
// RecoverMachine, Client requests — are global-phase APIs: they may be
// called from timers and experiment harness code but not from inside a
// handler running on a sharded kernel (the kernel's context guard panics
// deterministically on misuse).
package actor

import (
	"fmt"
	"sort"
	"strconv"

	"plasma/internal/cluster"
	"plasma/internal/sim"
	"plasma/internal/trace"
)

// ID uniquely identifies an actor within a Runtime. The zero ID is invalid.
type ID uint64

// Ref is a location-transparent handle to an actor.
type Ref struct{ ID ID }

// Zero reports whether the ref is the invalid zero reference.
func (r Ref) Zero() bool { return r.ID == 0 }

func (r Ref) String() string { return fmt.Sprintf("actor#%d", r.ID) }

// ClientCaller is the caller type the EPL's `client` keyword matches.
const ClientCaller = "client"

// Message is one delivered actor message.
type Message struct {
	Method     string
	Arg        interface{}
	Size       int64  // payload bytes, for network and profiling accounting
	Sender     Ref    // zero when sent by a client
	SenderType string // actor type name, or ClientCaller

	reply *replyPath
}

// replyPath routes a reply back to the original requester across any number
// of Forward hops.
type replyPath struct {
	originSrv cluster.MachineID
	deliver   func(arg interface{}, size int64)
}

// Behavior is application logic for one actor. Receive runs when a message
// is dispatched; it should declare its CPU cost via ctx.Use. Outgoing
// effects (sends, replies, spawns) buffered during Receive take effect when
// the declared cost has elapsed on the hosting machine.
type Behavior interface {
	Receive(ctx *Context, msg Message)
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(ctx *Context, msg Message)

// Receive calls f.
func (f BehaviorFunc) Receive(ctx *Context, msg Message) { f(ctx, msg) }

// ProfilerHook observes runtime events for the elasticity profiling runtime.
type ProfilerHook interface {
	// OnMessage fires when a message is dispatched to an actor. caller is
	// the sending actor (zero for client senders).
	OnMessage(srv cluster.MachineID, callerType string, caller Ref, callee Ref, calleeType, method string, size int64)
	// OnCPU fires when an actor finishes consuming CPU for one message.
	OnCPU(srv cluster.MachineID, a Ref, typ string, cost sim.Duration)
	// OnNet fires when an actor sends size bytes off-machine.
	OnNet(srv cluster.MachineID, a Ref, typ string, size int64)
}

// PlacementHook decides where newly created actors go (§4.2 "New actor
// creation"). Returning a negative machine ID falls back to random placement.
type PlacementHook interface {
	Place(typ string, creator Ref, creatorSrv cluster.MachineID) cluster.MachineID
}

type delivery struct {
	msg Message
}

type instance struct {
	id       ID
	typ      string
	behavior Behavior
	srv      cluster.MachineID

	mailbox   []delivery
	busy      bool // currently processing a message
	migrating bool

	props    map[string][]Ref
	memSize  int64
	pinned   bool
	lastMove sim.Time

	pendingDst cluster.MachineID // -1 when no migration requested
	pendingFn  func(ok bool)
	pendingTr  uint64 // trace parent for the pending migration
	dead       bool

	// beginQueued marks an escalation from the actor's shard to the global
	// phase already in flight for the pending migration, so pump (which may
	// run once per delivery) queues at most one.
	beginQueued bool

	// migEpoch invalidates in-flight migration steps when the actor is
	// re-homed (crash recovery) or a newer migration supersedes them.
	migEpoch uint64
}

// Runtime hosts actors across a cluster.
type Runtime struct {
	K *sim.Kernel
	C *cluster.Cluster

	// BaseMsgCost is charged per dispatched message to model runtime
	// dispatch overhead.
	BaseMsgCost sim.Duration
	// ProfilingCost is the additional per-message CPU charge when a
	// profiler hook is attached (Table 3 measures this overhead).
	ProfilingCost sim.Duration
	// SerializeCost converts actor state bytes to CPU time for migration
	// (cost = SerializeCost per MB, on each side).
	SerializePerMB sim.Duration

	profiler  ProfilerHook
	placement PlacementHook

	nextID     ID
	actors     map[ID]*instance
	migrations int

	// order lists live actor ids in spawn (= ascending id) order, so bulk
	// iteration needs no per-call sort. Stopped actors leave stale entries
	// behind (skipped on iteration) until a compaction sweep removes them.
	order     []ID
	orderDead int // stale entries in order (actors since stopped)

	// inflight tracks live migrations so machine crashes can abort or roll
	// them back; failedMigs counts migrations that did not complete.
	inflight   map[ID]*migration
	failedMigs int

	// MailboxCap, when positive, bounds every actor's mailbox: a delivery
	// arriving at a full mailbox is shed (dropped; a request's reply
	// callback simply never fires) instead of growing the queue without
	// limit — overload degrades gracefully rather than melting down. Zero
	// keeps the legacy unbounded mailboxes.
	MailboxCap int

	// XferPipeline routes migration state transfers through a per-NIC
	// scheduler: a destination's inbound NIC ingests one state stream at a
	// time at the existing per-byte cost, so batched transfers into the
	// same server queue behind each other while transfers to distinct
	// destinations overlap. The batch planner (emr Config.Planner =
	// "batch") turns it on; off by default, migrations keep the legacy
	// contention-free latency model, byte-identical to pinned runs.
	XferPipeline bool
	// nicBusy is when each destination's inbound NIC next frees. Written
	// only from the global phase (migTransfer), like all migration state.
	nicBusy map[cluster.MachineID]sim.Time
	// shed is striped per kernel shard (deliver runs on the receiving
	// machine's shard); ShedRequests sums the stripes.
	shed []int64

	tr *trace.Tracer // nil = migration lifecycle untraced
}

// migration is one in-flight live migration.
type migration struct {
	inst    *instance
	src     cluster.MachineID
	dst     cluster.MachineID
	epoch   uint64
	onDone  func(ok bool)
	traceID uint64 // id of the KindTransfer record, parent of commit/rollback
}

// NewRuntime creates a runtime over the given cluster.
func NewRuntime(k *sim.Kernel, c *cluster.Cluster) *Runtime {
	rt := &Runtime{
		K:              k,
		C:              c,
		BaseMsgCost:    20 * sim.Microsecond,
		ProfilingCost:  2 * sim.Microsecond,
		SerializePerMB: 5 * sim.Millisecond,
		actors:         make(map[ID]*instance),
		inflight:       make(map[ID]*migration),
		shed:           make([]int64, k.Shards()),
	}
	c.OnFail(rt.onMachineFail)
	return rt
}

// envOf returns the scheduling context of the machine hosting srv; all
// shard-context scheduling in the runtime goes through it.
func (rt *Runtime) envOf(srv cluster.MachineID) *sim.Env { return rt.C.Machine(srv).Env() }

// spawnGrower is the optional profiler capability the runtime uses to
// pre-size dense per-actor accumulators at spawn time (the global phase),
// so profiling hooks never grow shared slices from inside a shard window.
type spawnGrower interface {
	OnSpawn(srv cluster.MachineID, a Ref)
}

// SetProfiler attaches (or detaches, with nil) the profiling hook. A hook
// implementing spawnGrower is told about every already-live actor so its
// dense accumulators are sized before any shard window runs.
func (rt *Runtime) SetProfiler(p ProfilerHook) {
	rt.profiler = p
	if g, ok := p.(spawnGrower); ok {
		for _, id := range rt.order {
			if inst := rt.actors[id]; inst != nil {
				g.OnSpawn(inst.srv, Ref{ID: id})
			}
		}
	}
}

// SetPlacement attaches (or detaches, with nil) the placement hook.
func (rt *Runtime) SetPlacement(p PlacementHook) { rt.placement = p }

// SetTracer installs (or removes, with nil) the decision tracer; the
// migration lifecycle (transfer, commit, rollback) is recorded through it.
func (rt *Runtime) SetTracer(t *trace.Tracer) { rt.tr = t }

// Migrations reports the total number of completed migrations.
func (rt *Runtime) Migrations() int { return rt.migrations }

// FailedMigrations reports migrations that started but did not complete
// (rolled back or aborted by a machine crash).
func (rt *Runtime) FailedMigrations() int { return rt.failedMigs }

// InFlightMigrations reports migrations currently in progress; a quiesced
// runtime must report zero (no actor may be stuck mid-move).
func (rt *Runtime) InFlightMigrations() int { return len(rt.inflight) }

// Migrating reports whether the actor is currently mid-migration.
func (rt *Runtime) Migrating(ref Ref) bool {
	inst := rt.actors[ref.ID]
	return inst != nil && inst.migrating
}

// onMachineFail aborts or rolls back every in-flight migration touching the
// crashed machine. A destination crash rolls the actor back onto its source
// (state never left it authoritatively; buffered mail redelivers there). A
// source crash loses the actor with the machine: the migration is aborted
// and the actor awaits RecoverMachine like any other resident.
func (rt *Runtime) onMachineFail(id cluster.MachineID) {
	ids := make([]ID, 0, len(rt.inflight))
	for aid := range rt.inflight {
		ids = append(ids, aid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, aid := range ids {
		mig := rt.inflight[aid]
		switch id {
		case mig.dst:
			rt.abortMigration(mig, true, "dst-crash")
		case mig.src:
			rt.abortMigration(mig, false, "src-crash")
		}
	}
	// Queued (not yet begun) migrations toward the dead machine fail fast so
	// the initiating LEM can replan instead of waiting forever.
	for _, ref := range rt.Actors() {
		inst := rt.actors[ref.ID]
		if inst.pendingDst == id && !inst.migrating {
			fn := inst.pendingFn
			inst.pendingDst = -1
			inst.pendingFn = nil
			if fn != nil {
				fn(false)
			}
		}
	}
}

// abortMigration ends an in-flight migration without committing it. With
// resume, the actor stays live on its source and message processing restarts
// there (destination failure); without, the actor stays frozen on its dead
// source until RecoverMachine re-homes it (source failure).
func (rt *Runtime) abortMigration(mig *migration, resume bool, reason string) {
	inst := mig.inst
	if rt.inflight[inst.id] != mig {
		return
	}
	delete(rt.inflight, inst.id)
	inst.migEpoch++ // invalidate the migration's still-scheduled steps
	inst.migrating = false
	rt.failedMigs++
	rt.tr.Emit(trace.Record{Kind: trace.KindRollback, Parent: mig.traceID,
		Server: int32(mig.src), Target: int32(mig.dst), Actor: uint64(inst.id), Rule: -1, Detail: reason})
	if mig.onDone != nil {
		mig.onDone(false)
	}
	if resume {
		rt.pump(inst)
	}
}

// Spawn creates an actor of the given type, placed via the placement hook
// when one is attached, otherwise on a random up machine.
func (rt *Runtime) Spawn(typ string, b Behavior, creator Ref) Ref {
	srv := cluster.MachineID(-1)
	if rt.placement != nil {
		creatorSrv := cluster.MachineID(-1)
		if inst := rt.actors[creator.ID]; inst != nil {
			creatorSrv = inst.srv
		}
		srv = rt.placement.Place(typ, creator, creatorSrv)
	}
	if srv < 0 {
		up := rt.C.UpMachines()
		if len(up) == 0 {
			panic("actor: no machines up")
		}
		srv = up[rt.K.Rand().Intn(len(up))].ID
	}
	return rt.SpawnOn(typ, b, srv)
}

// SpawnOn creates an actor on a specific machine.
func (rt *Runtime) SpawnOn(typ string, b Behavior, srv cluster.MachineID) Ref {
	m := rt.C.Machine(srv)
	if m == nil || !m.Up() {
		panic(fmt.Sprintf("actor: spawn on bad machine %d", srv))
	}
	rt.nextID++
	inst := &instance{
		id:         rt.nextID,
		typ:        typ,
		behavior:   b,
		srv:        srv,
		lastMove:   rt.K.Now(),
		pendingDst: -1,
	}
	rt.actors[inst.id] = inst
	rt.order = append(rt.order, inst.id)
	if g, ok := rt.profiler.(spawnGrower); ok {
		g.OnSpawn(srv, Ref{ID: inst.id})
	}
	return Ref{ID: inst.id}
}

// RecoverMachine re-homes every actor of a crashed machine onto surviving
// machines, modeling the fault-tolerance mechanism PLASMA inherits from the
// underlying actor runtime (§2.2): actor state is restored from the
// runtime's replication/checkpointing, in-flight processing is lost, and
// queued messages are re-delivered at the new home. Returns the number of
// recovered actors.
func (rt *Runtime) RecoverMachine(srv cluster.MachineID) int {
	up := rt.C.UpMachines()
	if len(up) == 0 {
		return 0
	}
	n := 0
	for _, ref := range rt.ActorsOn(srv) {
		inst := rt.actors[ref.ID]
		if mig := rt.inflight[inst.id]; mig != nil {
			// The machine's crash hook normally aborts these; clean up here
			// too so recovery is safe even if invoked on its own.
			delete(rt.inflight, inst.id)
			rt.failedMigs++
			rt.tr.Emit(trace.Record{Kind: trace.KindRollback, Parent: mig.traceID,
				Server: int32(mig.src), Target: int32(mig.dst), Actor: uint64(inst.id), Rule: -1, Detail: "src-recovered"})
			if mig.onDone != nil {
				mig.onDone(false)
			}
		}
		dst := up[rt.K.Rand().Intn(len(up))]
		inst.srv = dst.ID
		inst.lastMove = rt.K.Now()
		inst.busy = false // in-flight processing died with the machine
		inst.migrating = false
		inst.migEpoch++ // strand any step of a migration begun before the crash
		fn := inst.pendingFn
		inst.pendingDst = -1
		inst.pendingFn = nil
		if fn != nil {
			fn(false)
		}
		dst.AddMem(inst.memSize)
		n++
		rt.pump(inst)
	}
	return n
}

// Stop removes an actor permanently. Queued messages are dropped; an
// in-flight migration is aborted (its initiator is told it failed).
func (rt *Runtime) Stop(ref Ref) {
	inst := rt.actors[ref.ID]
	if inst == nil {
		return
	}
	inst.dead = true
	if mig := rt.inflight[inst.id]; mig != nil {
		delete(rt.inflight, inst.id)
		inst.migEpoch++
		rt.failedMigs++
		rt.tr.Emit(trace.Record{Kind: trace.KindRollback, Parent: mig.traceID,
			Server: int32(mig.src), Target: int32(mig.dst), Actor: uint64(inst.id), Rule: -1, Detail: "actor-stopped"})
		if mig.onDone != nil {
			mig.onDone(false)
		}
	}
	if fn := inst.pendingFn; fn != nil {
		inst.pendingDst = -1
		inst.pendingFn = nil
		fn(false)
	}
	rt.C.Machine(inst.srv).AddMem(-inst.memSize)
	delete(rt.actors, ref.ID)
	rt.orderDead++
	if rt.orderDead*2 > len(rt.order) {
		rt.compactOrder()
	}
}

// compactOrder drops stale (stopped) ids from the spawn-order list.
func (rt *Runtime) compactOrder() {
	live := rt.order[:0]
	for _, id := range rt.order {
		if rt.actors[id] != nil {
			live = append(live, id)
		}
	}
	rt.order = live
	rt.orderDead = 0
}

// Exists reports whether the actor is alive.
func (rt *Runtime) Exists(ref Ref) bool { return rt.actors[ref.ID] != nil }

// TypeOf reports an actor's type name ("" if dead).
func (rt *Runtime) TypeOf(ref Ref) string {
	if inst := rt.actors[ref.ID]; inst != nil {
		return inst.typ
	}
	return ""
}

// ServerOf reports the machine currently hosting the actor (-1 if dead).
func (rt *Runtime) ServerOf(ref Ref) cluster.MachineID {
	if inst := rt.actors[ref.ID]; inst != nil {
		return inst.srv
	}
	return -1
}

// Props returns an actor's reference property (nil if absent).
func (rt *Runtime) Props(ref Ref, name string) []Ref {
	if inst := rt.actors[ref.ID]; inst != nil {
		return inst.props[name]
	}
	return nil
}

// SetProp sets a reference property from outside a message handler (for
// spawn-time initialization by application facades).
func (rt *Runtime) SetProp(ref Ref, name string, refs []Ref) {
	if inst := rt.actors[ref.ID]; inst != nil {
		inst.setProp(name, append([]Ref(nil), refs...))
	}
}

// setProp stores a property, allocating the map on first use (most actors
// expose no properties, so instances carry a nil map until one appears).
func (inst *instance) setProp(name string, refs []Ref) {
	if inst.props == nil {
		inst.props = make(map[string][]Ref)
	}
	inst.props[name] = refs
}

// PropNames lists the actor's reference property names in sorted order.
func (rt *Runtime) PropNames(ref Ref) []string {
	inst := rt.actors[ref.ID]
	if inst == nil {
		return nil
	}
	names := make([]string, 0, len(inst.props))
	for n := range inst.props {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MemSize reports the actor's declared state size in bytes.
func (rt *Runtime) MemSize(ref Ref) int64 {
	if inst := rt.actors[ref.ID]; inst != nil {
		return inst.memSize
	}
	return 0
}

// Pin marks the actor as unmovable; Unpin reverses it.
func (rt *Runtime) Pin(ref Ref) {
	if inst := rt.actors[ref.ID]; inst != nil {
		inst.pinned = true
	}
}

// Unpin clears the pinned flag.
func (rt *Runtime) Unpin(ref Ref) {
	if inst := rt.actors[ref.ID]; inst != nil {
		inst.pinned = false
	}
}

// Pinned reports whether the actor is pinned.
func (rt *Runtime) Pinned(ref Ref) bool {
	inst := rt.actors[ref.ID]
	return inst != nil && inst.pinned
}

// LastMoved reports when the actor last changed servers (spawn counts).
func (rt *Runtime) LastMoved(ref Ref) sim.Time {
	if inst := rt.actors[ref.ID]; inst != nil {
		return inst.lastMove
	}
	return 0
}

// Actors returns all live actor refs in id order (deterministic).
func (rt *Runtime) Actors() []Ref {
	refs := make([]Ref, 0, len(rt.actors))
	for _, id := range rt.order {
		if rt.actors[id] != nil {
			refs = append(refs, Ref{ID: id})
		}
	}
	return refs
}

// ActorsOn returns the live actors hosted on srv, in id order.
func (rt *Runtime) ActorsOn(srv cluster.MachineID) []Ref {
	var refs []Ref
	for _, id := range rt.order {
		if inst := rt.actors[id]; inst != nil && inst.srv == srv {
			refs = append(refs, Ref{ID: id})
		}
	}
	return refs
}

// Info is one live actor's metadata as seen by ForEachActor: everything the
// elasticity profiling runtime needs per actor per period, delivered in a
// single visit instead of one map lookup per field.
type Info struct {
	Ref       Ref
	Type      string
	Server    cluster.MachineID
	MemBytes  int64
	Pinned    bool
	LastMoved sim.Time
	NumProps  int // number of reference properties the actor exposes
}

// ForEachActor visits every live actor in id order without allocating. It
// is the bulk-iteration fast path under the profiler's per-period snapshot;
// fn must not spawn or stop actors.
func (rt *Runtime) ForEachActor(fn func(Info)) {
	for _, id := range rt.order {
		inst := rt.actors[id]
		if inst == nil {
			continue
		}
		fn(Info{
			Ref:       Ref{ID: id},
			Type:      inst.typ,
			Server:    inst.srv,
			MemBytes:  inst.memSize,
			Pinned:    inst.pinned,
			LastMoved: inst.lastMove,
			NumProps:  len(inst.props),
		})
	}
}

// NumActors reports the number of live actors.
func (rt *Runtime) NumActors() int { return len(rt.actors) }

// MigratingTo reports the destination of the actor's in-flight or pending
// migration, or -1 when no move is underway. The EMR's reservation ledger
// uses it to keep a dedicated server held while its owner is still being
// transferred there.
func (rt *Runtime) MigratingTo(ref Ref) cluster.MachineID {
	if mig := rt.inflight[ref.ID]; mig != nil {
		return mig.dst
	}
	if inst := rt.actors[ref.ID]; inst != nil && inst.pendingDst >= 0 {
		return inst.pendingDst
	}
	return -1
}

// send routes a message to an actor, resolving its location at delivery
// time; messages chase migrated actors with an extra forwarding hop. It
// runs either in the global phase or on fromSrv's shard; the delivery
// itself is scheduled onto the destination's shard, which is where the
// receive side of the network accounting happens too.
func (rt *Runtime) send(fromSrv cluster.MachineID, msg Message, to Ref) {
	inst := rt.actors[to.ID]
	if inst == nil {
		return // dead letter
	}
	dstSrv := inst.srv
	lat := rt.C.TransferLatency(fromSrv, dstSrv, msg.Size)
	if fromSrv != dstSrv {
		rt.C.Machine(fromSrv).AddNetBytes(msg.Size)
	}
	rt.envOf(fromSrv).Schedule(int32(dstSrv), lat, func() {
		if fromSrv != dstSrv {
			rt.C.Machine(dstSrv).AddNetBytes(msg.Size)
		}
		cur := rt.actors[to.ID]
		if cur == nil {
			return
		}
		if cur.srv != dstSrv {
			// Actor moved while the message was in flight: forward.
			rt.send(dstSrv, msg, to)
			return
		}
		rt.deliver(cur, msg)
	})
}

// deliver runs on inst's shard (or the global phase on an unsharded
// kernel); the shed trace record is deferred so the shared tracer is only
// touched at the window barrier, in deterministic merge order.
func (rt *Runtime) deliver(inst *instance, msg Message) {
	if rt.MailboxCap > 0 && len(inst.mailbox) >= rt.MailboxCap {
		srv := inst.srv
		rt.shed[rt.K.ShardIndexOf(int32(srv))]++
		if rt.tr != nil {
			id, method := inst.id, msg.Method
			rt.envOf(srv).Defer(func() {
				rt.tr.Emit(trace.Record{Kind: trace.KindShed, Server: int32(srv), Target: -1,
					Actor: uint64(id), Rule: -1, Value: float64(rt.MailboxCap), Detail: method})
			})
		}
		return
	}
	inst.mailbox = append(inst.mailbox, delivery{msg: msg})
	rt.pump(inst)
}

// ShedRequests reports deliveries dropped at full bounded mailboxes.
func (rt *Runtime) ShedRequests() int64 {
	var n int64
	for _, s := range rt.shed {
		n += s
	}
	return n
}

// pump dispatches the next mailbox message if the actor is free and its
// machine is in service (a crashed machine processes nothing; queued mail
// drains after recovery). pump runs on the actor's shard (from deliveries
// and Exec completions) as well as in the global phase.
func (rt *Runtime) pump(inst *instance) {
	if inst.busy || inst.migrating || inst.dead {
		return
	}
	if m := rt.C.Machine(inst.srv); m == nil || !m.Up() {
		return
	}
	if inst.pendingDst >= 0 {
		// Migration bookkeeping (inflight table, tracer, counters) is
		// global state, but pump may be running on the actor's shard:
		// escalate to the global phase instead of starting it here. The
		// actor stays parked (pump dispatches nothing while a move is
		// pending), so at most one escalation is ever queued.
		if !inst.beginQueued {
			inst.beginQueued = true
			rt.envOf(inst.srv).Schedule(sim.GlobalHome, 0, func() {
				inst.beginQueued = false
				if inst.pendingDst >= 0 && !inst.busy && !inst.migrating {
					rt.beginMigration(inst)
					return
				}
				// The request was withdrawn while the escalation was in
				// flight (destination died, actor stopped): resume mail.
				rt.pump(inst)
			})
		}
		return
	}
	if len(inst.mailbox) == 0 {
		return
	}
	d := inst.mailbox[0]
	inst.mailbox = inst.mailbox[1:]
	inst.busy = true

	cost := rt.BaseMsgCost
	if rt.profiler != nil {
		cost += rt.ProfilingCost
		rt.profiler.OnMessage(inst.srv, d.msg.SenderType, d.msg.Sender, Ref{ID: inst.id}, inst.typ, d.msg.Method, d.msg.Size)
	}

	ctx := &Context{rt: rt, inst: inst, msg: d.msg}
	inst.behavior.Receive(ctx, d.msg)
	cost += ctx.cpu

	srv := inst.srv
	machine := rt.C.Machine(srv)
	machine.Exec(cost, func() {
		if rt.profiler != nil {
			// Attribute the actual core-occupancy time, so per-actor CPU
			// shares are comparable with server utilization.
			rt.profiler.OnCPU(srv, Ref{ID: inst.id}, inst.typ, machine.ScaledCost(cost))
		}
		ctx.commit(srv)
		inst.busy = false
		rt.pump(inst)
	})
}

// Migrate asks the runtime to move an actor to dst. The move happens after
// the actor finishes its current message; onDone (optional) reports whether
// the migration was carried out. Pinned and dead actors refuse.
func (rt *Runtime) Migrate(ref Ref, dst cluster.MachineID, onDone func(ok bool)) {
	rt.MigrateTraced(ref, dst, 0, onDone)
}

// MigrateTraced is Migrate with a causal trace parent: the migration's
// KindTransfer record is parented to it (the EMR passes the admission
// record's id, so a trace links propose → admit → transfer → commit).
func (rt *Runtime) MigrateTraced(ref Ref, dst cluster.MachineID, parent uint64, onDone func(ok bool)) {
	inst := rt.actors[ref.ID]
	fail := func() {
		if onDone != nil {
			onDone(false)
		}
	}
	if inst == nil || inst.pinned || inst.migrating || inst.pendingDst >= 0 {
		fail()
		return
	}
	m := rt.C.Machine(dst)
	if m == nil || !m.Up() || dst == inst.srv {
		fail()
		return
	}
	inst.pendingDst = dst
	inst.pendingFn = onDone
	inst.pendingTr = parent
	if !inst.busy {
		rt.beginMigration(inst)
	}
}

// beginMigration starts a pending migration. It runs only in the global
// phase (directly from MigrateTraced, or via pump's escalation event).
//
// Serialize on the source, transfer, deserialize on the destination, then
// resume message processing there. Every asynchronous step revalidates the
// migration: a crash of either endpoint (or a Stop, or a crash-recovery
// re-home) aborts it via the epoch guard, and the actor either resumes on
// its source with its buffered mail intact or awaits RecoverMachine —
// never a permanently stuck `migrating` flag. The serialize/deserialize
// Execs occupy the machines on their own shards; their completions
// escalate back to the global phase (floored to the kernel lookahead on a
// sharded kernel) because every inter-step decision reads and writes
// global migration state.
func (rt *Runtime) beginMigration(inst *instance) {
	dst := inst.pendingDst
	onDone := inst.pendingFn
	parent := inst.pendingTr
	inst.pendingDst = -1
	inst.pendingFn = nil
	inst.pendingTr = 0
	dstM := rt.C.Machine(dst)
	if dstM == nil || !dstM.Up() || inst.dead {
		if onDone != nil {
			onDone(false)
		}
		rt.pump(inst)
		return
	}
	inst.migrating = true
	inst.migEpoch++
	mig := &migration{inst: inst, src: inst.srv, dst: dst, epoch: inst.migEpoch, onDone: onDone}
	rt.inflight[inst.id] = mig
	src := inst.srv
	mig.traceID = rt.tr.Emit(trace.Record{Kind: trace.KindTransfer, Parent: parent,
		Server: int32(src), Target: int32(dst), Actor: uint64(inst.id), Rule: -1, Value: float64(inst.memSize)})
	stateMB := float64(inst.memSize) / (1 << 20)
	serCost := sim.Duration(stateMB * float64(rt.SerializePerMB))

	rt.C.Machine(src).Exec(serCost, func() {
		rt.envOf(src).Schedule(sim.GlobalHome, 0, func() { rt.migTransfer(mig, serCost) })
	})
}

// migTransfer is the post-serialize step: charge the state transfer to
// both NICs and schedule the arrival. Global phase.
//
// With XferPipeline set, the transfer first waits for earlier state
// streams into the same destination NIC to drain: the wire time itself is
// unchanged (the same per-byte TransferLatency pricing), but concurrent
// arrivals at one server serialize instead of magically sharing infinite
// ingest bandwidth, while transfers to distinct destinations overlap. Each
// pipelined transfer emits a KindXferPipeline record carrying its wire
// time and how long it queued.
func (rt *Runtime) migTransfer(mig *migration, serCost sim.Duration) {
	if !rt.migValid(mig) {
		return
	}
	inst, src, dst := mig.inst, mig.src, mig.dst
	lat := rt.C.TransferLatency(src, dst, inst.memSize)
	rt.C.Machine(src).AddNetBytes(inst.memSize)
	rt.C.Machine(dst).AddNetBytes(inst.memSize)
	if rt.XferPipeline {
		if rt.nicBusy == nil {
			rt.nicBusy = make(map[cluster.MachineID]sim.Time)
		}
		now := rt.K.Now()
		start := now
		if busy := rt.nicBusy[dst]; busy > start {
			start = busy
		}
		wait := sim.Duration(start - now)
		rt.nicBusy[dst] = start + sim.Time(lat)
		rt.tr.Emit(trace.Record{Kind: trace.KindXferPipeline, Parent: mig.traceID,
			Server: int32(src), Target: int32(dst), Actor: uint64(inst.id), Rule: -1,
			Value: float64(lat), Detail: "wait=" + strconv.FormatInt(int64(wait), 10) + "us"})
		lat += wait
	}
	rt.K.After(lat, func() {
		if !rt.migValid(mig) {
			return
		}
		if !rt.C.Machine(dst).Up() {
			// Destination lost mid-transfer (e.g. decommissioned; crashes
			// are caught by the failure hook): roll back to the source.
			rt.abortMigration(mig, true, "dst-down")
			return
		}
		rt.C.Machine(dst).Exec(serCost, func() {
			rt.envOf(dst).Schedule(sim.GlobalHome, 0, func() { rt.migCommit(mig) })
		})
	})
}

// migCommit is the post-deserialize step: re-home the actor and resume it
// on the destination. Global phase.
func (rt *Runtime) migCommit(mig *migration) {
	if !rt.migValid(mig) {
		return
	}
	inst, src, dst := mig.inst, mig.src, mig.dst
	if !rt.C.Machine(dst).Up() {
		rt.abortMigration(mig, true, "dst-down")
		return
	}
	delete(rt.inflight, inst.id)
	rt.C.Machine(src).AddMem(-inst.memSize)
	rt.C.Machine(dst).AddMem(inst.memSize)
	inst.srv = dst
	inst.lastMove = rt.K.Now()
	inst.migrating = false
	rt.migrations++
	rt.tr.Emit(trace.Record{Kind: trace.KindCommit, Parent: mig.traceID,
		Server: int32(src), Target: int32(dst), Actor: uint64(inst.id), Rule: -1})
	if mig.onDone != nil {
		mig.onDone(true)
	}
	rt.pump(inst)
}

// migValid reports whether an in-flight migration is still the actor's
// current one (not aborted, superseded, or orphaned by death/recovery).
func (rt *Runtime) migValid(mig *migration) bool {
	return rt.inflight[mig.inst.id] == mig && mig.inst.migEpoch == mig.epoch && !mig.inst.dead
}

// Context carries per-message runtime operations for Behavior.Receive.
// Outgoing effects are buffered and committed once the declared CPU cost
// has elapsed.
type Context struct {
	rt   *Runtime
	inst *instance
	msg  Message

	cpu     sim.Duration
	effects []func(srv cluster.MachineID)
}

// Self returns the receiving actor's ref.
func (c *Context) Self() Ref { return Ref{ID: c.inst.id} }

// Now returns the current virtual time, read from the hosting machine's
// scheduling context (handlers run on the machine's shard).
func (c *Context) Now() sim.Time { return c.rt.envOf(c.inst.srv).Now() }

// Runtime exposes the hosting runtime (for spawning from handlers).
func (c *Context) Runtime() *Runtime { return c.rt }

// Use declares cpu cost for processing the current message; multiple calls
// accumulate.
func (c *Context) Use(cpu sim.Duration) {
	if cpu > 0 {
		c.cpu += cpu
	}
}

// Send asynchronously delivers a new message (no reply path).
func (c *Context) Send(to Ref, method string, arg interface{}, size int64) {
	out := Message{Method: method, Arg: arg, Size: size, Sender: c.Self(), SenderType: c.inst.typ}
	c.effects = append(c.effects, func(srv cluster.MachineID) {
		c.rt.send(srv, out, to)
	})
}

// SendAfter delivers a new message after an extra delay beyond the current
// message's completion (for periodic/self-paced workloads).
func (c *Context) SendAfter(d sim.Duration, to Ref, method string, arg interface{}, size int64) {
	out := Message{Method: method, Arg: arg, Size: size, Sender: c.Self(), SenderType: c.inst.typ}
	c.effects = append(c.effects, func(srv cluster.MachineID) {
		// The delay elapses on the sending machine (same-home, so no
		// lookahead floor applies), then the send routes normally.
		c.rt.envOf(srv).Schedule(int32(srv), d, func() { c.rt.send(srv, out, to) })
	})
}

// Forward passes the current message's reply path along to another actor,
// so a downstream actor can Reply to the original requester.
func (c *Context) Forward(to Ref, method string, arg interface{}, size int64) {
	out := Message{Method: method, Arg: arg, Size: size, Sender: c.Self(), SenderType: c.inst.typ, reply: c.msg.reply}
	c.effects = append(c.effects, func(srv cluster.MachineID) {
		c.rt.send(srv, out, to)
	})
}

// Reply answers the current message's requester, if it expects a reply.
func (c *Context) Reply(arg interface{}, size int64) {
	rp := c.msg.reply
	if rp == nil {
		return
	}
	c.effects = append(c.effects, func(srv cluster.MachineID) {
		lat := c.rt.C.TransferLatency(srv, rp.originSrv, size)
		if srv != rp.originSrv {
			c.rt.C.Machine(srv).AddNetBytes(size)
		}
		c.rt.envOf(srv).Schedule(int32(rp.originSrv), lat, func() {
			if srv != rp.originSrv {
				c.rt.C.Machine(rp.originSrv).AddNetBytes(size)
			}
			rp.deliver(arg, size)
		})
	})
	if c.rt.profiler != nil {
		c.rt.profiler.OnNet(c.inst.srv, c.Self(), c.inst.typ, size)
	}
}

// SetProp publishes a reference property visible to EPL `ref(...)`
// conditions. The update is immediate (metadata, not messaging).
func (c *Context) SetProp(name string, refs []Ref) {
	c.inst.setProp(name, append([]Ref(nil), refs...))
}

// AddPropRef appends one ref to a property.
func (c *Context) AddPropRef(name string, r Ref) {
	c.inst.setProp(name, append(c.inst.props[name], r))
}

// SetMemSize declares the actor's state size in bytes (drives machine
// memory accounting and migration cost).
func (c *Context) SetMemSize(bytes int64) {
	delta := bytes - c.inst.memSize
	c.inst.memSize = bytes
	c.rt.C.Machine(c.inst.srv).AddMem(delta)
}

// commit applies buffered effects from the server the message was processed
// on.
func (c *Context) commit(srv cluster.MachineID) {
	for _, eff := range c.effects {
		eff(srv)
	}
	c.effects = nil
}

// Client issues latency-tracked requests into the actor system from a
// client machine, mirroring the paper's client driver instances.
type Client struct {
	rt   *Runtime
	Site cluster.MachineID // machine the client runs on
}

// NewClient creates a client homed on the given machine.
func NewClient(rt *Runtime, site cluster.MachineID) *Client {
	return &Client{rt: rt, Site: site}
}

// Request sends a message and invokes done with the end-to-end latency when
// the (possibly multi-hop) reply arrives. Request itself is a global-phase
// API; on a sharded kernel the done callback runs on the client site's
// shard, so it must only touch state owned by that site.
func (cl *Client) Request(to Ref, method string, arg interface{}, size int64, done func(lat sim.Duration, reply interface{})) {
	start := cl.rt.K.Now()
	msg := Message{
		Method: method, Arg: arg, Size: size, SenderType: ClientCaller,
		reply: &replyPath{
			originSrv: cl.Site,
			deliver: func(replyArg interface{}, _ int64) {
				if done != nil {
					done(sim.Duration(cl.rt.envOf(cl.Site).Now()-start), replyArg)
				}
			},
		},
	}
	cl.rt.send(cl.Site, msg, to)
}

// Send delivers a one-way client message (no reply expected).
func (cl *Client) Send(to Ref, method string, arg interface{}, size int64) {
	msg := Message{Method: method, Arg: arg, Size: size, SenderType: ClientCaller}
	cl.rt.send(cl.Site, msg, to)
}
