package profile

import (
	"sort"
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// naiveSnapshot replicates the pre-arena snapshot build: one fresh
// ActorInfo and Props map per actor per call, freshly copied call lists,
// and fresh lookup maps — the allocation pattern the pooled arena replaced.
// It reads the same accumulators as Snapshot, so it doubles as a reference
// for the ≥5× allocation win the arena is required to deliver at 10k actors.
func naiveSnapshot(p *Profiler) ([]*epl.ActorInfo, map[actor.Ref]*epl.ActorInfo) {
	window := p.Window()
	scope := map[cluster.MachineID]bool{}
	for _, m := range p.c.Machines() {
		if m.Up() {
			scope[m.ID] = true
		}
	}
	var servers []*epl.ServerInfo
	for _, m := range p.c.Machines() {
		if !scope[m.ID] {
			continue
		}
		servers = append(servers, &epl.ServerInfo{
			ID: m.ID, CPUPerc: m.CPUPercent(), MemPerc: m.MemPercent(),
			NetPerc: m.NetPercent(), VCPUs: m.Type.VCPUs, MemMB: m.Type.MemMB, Up: true,
		})
	}
	var actors []*epl.ActorInfo
	p.rt.ForEachActor(func(info actor.Info) {
		m := p.c.Machine(info.Server)
		if m == nil {
			return
		}
		ai := &epl.ActorInfo{
			Ref: info.Ref, Type: info.Type, Server: info.Server,
			MemBytes: info.MemBytes, Pinned: info.Pinned, LastMoved: info.LastMoved,
			Props: map[string][]actor.Ref{},
		}
		for _, name := range p.rt.PropNames(info.Ref) {
			ai.Props[name] = p.rt.Props(info.Ref, name)
		}
		if m.Type.MemMB > 0 {
			ai.MemPerc = float64(ai.MemBytes) / float64(m.Type.MemMB*1024*1024) * 100
		}
		id := int(info.Ref.ID)
		if scope[info.Server] && window > 0 && id < len(p.actorCPU) {
			ai.CPUTime = p.actorCPU[id]
			ai.CPUPerc = float64(ai.CPUTime) / (float64(window) * float64(m.Type.VCPUs)) * 100
			ai.NetBytes = p.actorNet[id]
			ai.NetPerc = float64(ai.NetBytes) * 8 / 1e6 / window.Seconds() / m.Type.NetMbps * 100
		}
		if id < len(p.calls) && len(p.calls[id].recs) > 0 {
			recs := append([]epl.CallStat(nil), p.calls[id].recs...)
			sort.Slice(recs, func(i, j int) bool {
				a, b := &recs[i], &recs[j]
				if a.Method != b.Method {
					return a.Method < b.Method
				}
				if a.CallerType != b.CallerType {
					return a.CallerType < b.CallerType
				}
				return a.Caller.ID < b.Caller.ID
			})
			ai.Calls = recs
		}
		actors = append(actors, ai)
	})
	byRef := make(map[actor.Ref]*epl.ActorInfo, len(actors))
	byType := map[string][]*epl.ActorInfo{}
	for _, a := range actors {
		byRef[a.Ref] = a
		byType[a.Type] = append(byType[a.Type], a)
	}
	byServer := make(map[cluster.MachineID]*epl.ServerInfo, len(servers))
	for _, s := range servers {
		byServer[s.ID] = s
	}
	return actors, byRef
}

// tenKFleet builds a 10k-actor fleet with light messaging and sparse
// properties — the snapshot-construction workload of the scale experiments.
func tenKFleet(t *testing.T) *Profiler {
	t.Helper()
	k := sim.New(1)
	c := cluster.New(k, 80, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	p := New(k, c, rt)
	noop := actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(50 * sim.Microsecond)
	})
	refs := make([]actor.Ref, 10_000)
	for i := range refs {
		refs[i] = rt.SpawnOn("Worker", noop, cluster.MachineID(i%80))
		if i%100 == 0 {
			rt.SetProp(refs[i], "peer", []actor.Ref{refs[0]})
		}
	}
	cl := actor.NewClient(rt, 0)
	for i := 0; i < 100; i++ {
		cl.Send(refs[i], "ping", nil, 256)
	}
	k.RunUntilIdle()
	return p
}

// The arena's whole point: at 10k actors a pooled snapshot must allocate at
// least 5x less than the naive per-actor build it replaced (the acceptance
// bar for the million-actor fleet work; measured ratios are far higher).
func TestSnapshotAllocs5xUnderNaiveAt10k(t *testing.T) {
	p := tenKFleet(t)
	// Warm both arena buffers so the measurement sees steady state.
	p.Snapshot(nil)
	p.Snapshot(nil)

	pooled := testing.AllocsPerRun(3, func() { p.Snapshot(nil) })
	naive := testing.AllocsPerRun(3, func() { naiveSnapshot(p) })

	if pooled == 0 {
		pooled = 1 // ServerInfos alone should prevent this, but guard the ratio
	}
	if ratio := naive / pooled; ratio < 5 {
		t.Fatalf("pooled snapshot allocates too much: naive=%.0f pooled=%.0f allocs/op (ratio %.1fx, want >=5x)",
			naive, pooled, ratio)
	}
	t.Logf("allocs/op: naive=%.0f pooled=%.0f", naive, pooled)
}

// The pooled build must report exactly what the naive build reports.
func TestSnapshotMatchesNaiveReference(t *testing.T) {
	p := tenKFleet(t)
	snap := p.Snapshot(nil)
	actors, byRef := naiveSnapshot(p)
	if len(snap.Actors) != len(actors) {
		t.Fatalf("actor count: pooled %d, naive %d", len(snap.Actors), len(actors))
	}
	for i, a := range snap.Actors {
		n := actors[i]
		if a.Ref != n.Ref || a.Type != n.Type || a.Server != n.Server ||
			a.CPUTime != n.CPUTime || a.CPUPerc != n.CPUPerc ||
			a.NetBytes != n.NetBytes || a.MemPerc != n.MemPerc ||
			len(a.Calls) != len(n.Calls) {
			t.Fatalf("actor %d diverges: pooled %+v naive %+v", i, *a, *n)
		}
		for j := range a.Calls {
			if a.Calls[j] != n.Calls[j] {
				t.Fatalf("actor %d call %d diverges: %+v vs %+v", i, j, a.Calls[j], n.Calls[j])
			}
		}
		// The pooled build leaves Props nil for prop-less actors; the naive
		// build allocated an empty map — contents must still agree.
		if len(a.Props) != len(n.Props) {
			t.Fatalf("actor %d props: pooled %d naive %d", i, len(a.Props), len(n.Props))
		}
		if ref := byRef[a.Ref]; ref == nil {
			t.Fatalf("actor %d missing from naive index", i)
		}
	}
}
