package profile

import (
	"math"
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

func env() (*sim.Kernel, *cluster.Cluster, *actor.Runtime, *Profiler) {
	k := sim.New(1)
	typ := cluster.InstanceType{Name: "t", VCPUs: 1, MemMB: 1024, NetMbps: 100, SpeedFac: 1}
	c := cluster.New(k, 2, typ)
	rt := actor.NewRuntime(k, c)
	p := New(k, c, rt)
	return k, c, rt, p
}

func TestSnapshotServerStats(t *testing.T) {
	k, _, rt, p := env()
	busy := actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(400 * sim.Millisecond)
	})
	ref := rt.SpawnOn("W", busy, 0)
	cl := actor.NewClient(rt, 1)
	cl.Send(ref, "work", nil, 100)
	cl.Send(ref, "work", nil, 100)
	k.Run(sim.Time(sim.Second))
	k.RunUntilIdle()
	snap := p.Snapshot(nil)
	if len(snap.Servers) != 2 {
		t.Fatalf("servers = %d", len(snap.Servers))
	}
	s0 := snap.Server(0)
	// ~800ms busy out of ~1s window.
	if s0.CPUPerc < 70 || s0.CPUPerc > 90 {
		t.Fatalf("server 0 CPU%% = %v, want ~80", s0.CPUPerc)
	}
	if s1 := snap.Server(1); s1.CPUPerc != 0 {
		t.Fatalf("server 1 CPU%% = %v, want 0", s1.CPUPerc)
	}
}

func TestSnapshotActorCPUAttribution(t *testing.T) {
	k, _, rt, p := env()
	mk := func(cost sim.Duration) actor.Ref {
		return rt.SpawnOn("W", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
			ctx.Use(cost)
		}), 0)
	}
	big := mk(300 * sim.Millisecond)
	small := mk(100 * sim.Millisecond)
	cl := actor.NewClient(rt, 1)
	cl.Send(big, "w", nil, 10)
	cl.Send(small, "w", nil, 10)
	k.Run(sim.Time(sim.Second))
	k.RunUntilIdle()
	snap := p.Snapshot(nil)
	ab, as := snap.Actor(big), snap.Actor(small)
	if ab.CPUPerc <= as.CPUPerc {
		t.Fatalf("big %.1f%% <= small %.1f%%", ab.CPUPerc, as.CPUPerc)
	}
	// Shares should roughly reflect 3:1.
	ratio := ab.CPUPerc / as.CPUPerc
	if math.Abs(ratio-3) > 0.5 {
		t.Fatalf("cpu ratio = %v, want ~3", ratio)
	}
}

func TestSnapshotCallStats(t *testing.T) {
	k, _, rt, p := env()
	folder := rt.SpawnOn("Folder", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(sim.Millisecond)
	}), 0)
	cl := actor.NewClient(rt, 1)
	for i := 0; i < 5; i++ {
		cl.Send(folder, "open", nil, 200)
	}
	k.RunUntilIdle()
	snap := p.Snapshot(nil)
	ai := snap.Actor(folder)
	if len(ai.Calls) != 1 {
		t.Fatalf("calls = %+v", ai.Calls)
	}
	cs := ai.Calls[0]
	if cs.CallerType != actor.ClientCaller || cs.Method != "open" || cs.Count != 5 || cs.Bytes != 1000 {
		t.Fatalf("call stat = %+v", cs)
	}
}

func TestSnapshotActorCallerTracked(t *testing.T) {
	k, _, rt, p := env()
	user := rt.SpawnOn("UserInfo", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {}), 0)
	vs := rt.SpawnOn("VideoStream", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Send(user, "track", nil, 50)
	}), 1)
	actor.NewClient(rt, 0).Send(vs, "watch", nil, 10)
	k.RunUntilIdle()
	snap := p.Snapshot(nil)
	ai := snap.Actor(user)
	found := false
	for _, cs := range ai.Calls {
		if cs.Method == "track" && cs.CallerType == "VideoStream" && cs.Caller == vs && cs.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("track call not attributed: %+v", ai.Calls)
	}
}

func TestResetClearsWindow(t *testing.T) {
	k, _, rt, p := env()
	ref := rt.SpawnOn("W", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(100 * sim.Millisecond)
	}), 0)
	actor.NewClient(rt, 1).Send(ref, "w", nil, 10)
	k.RunUntilIdle()
	p.Reset()
	k.Run(k.Now() + sim.Time(sim.Second))
	snap := p.Snapshot(nil)
	ai := snap.Actor(ref)
	if ai.CPUPerc != 0 || ai.CPUTime != 0 || len(ai.Calls) != 0 {
		t.Fatalf("stats survived reset: %+v", ai)
	}
	if snap.Server(0).CPUPerc != 0 {
		t.Fatalf("server window survived reset: %v", snap.Server(0).CPUPerc)
	}
}

func TestSnapshotScope(t *testing.T) {
	k, _, rt, p := env()
	a0 := rt.SpawnOn("W", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(50 * sim.Millisecond)
	}), 0)
	a1 := rt.SpawnOn("W", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(50 * sim.Millisecond)
	}), 1)
	cl := actor.NewClient(rt, 0)
	cl.Send(a0, "w", nil, 10)
	cl.Send(a1, "w", nil, 10)
	k.RunUntilIdle()
	snap := p.Snapshot([]cluster.MachineID{0})
	if len(snap.Servers) != 1 || snap.Servers[0].ID != 0 {
		t.Fatalf("scoped servers = %+v", snap.Servers)
	}
	// Out-of-scope actors keep metadata but no usage stats.
	if snap.Actor(a1) == nil {
		t.Fatal("out-of-scope actor metadata missing")
	}
	if snap.Actor(a1).CPUPerc != 0 {
		t.Fatal("out-of-scope actor has usage stats")
	}
	if snap.Actor(a0).CPUPerc == 0 {
		t.Fatal("in-scope actor lost usage stats")
	}
}

func TestSnapshotPropsAndPins(t *testing.T) {
	k, _, rt, p := env()
	file := rt.SpawnOn("File", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {}), 0)
	folder := rt.SpawnOn("Folder", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.SetProp("files", []actor.Ref{file})
	}), 0)
	actor.NewClient(rt, 0).Send(folder, "init", nil, 1)
	k.RunUntilIdle()
	rt.Pin(file)
	snap := p.Snapshot(nil)
	fi := snap.Actor(folder)
	if len(fi.Props["files"]) != 1 || fi.Props["files"][0] != file {
		t.Fatalf("props = %+v", fi.Props)
	}
	if !snap.Actor(file).Pinned {
		t.Fatal("pin not reflected")
	}
}

func TestSnapshotFeedsEvaluator(t *testing.T) {
	// End-to-end: profiled workload drives the PageRank balance rule.
	k, _, rt, p := env()
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Partition}, cpu);`)
	w := rt.SpawnOn("Partition", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(900 * sim.Millisecond)
	}), 0)
	actor.NewClient(rt, 1).Send(w, "compute", nil, 10)
	k.Run(sim.Time(sim.Second))
	k.RunUntilIdle()
	in := epl.Evaluate(pol, p.Snapshot(nil), true, true)
	if len(in.Balance) != 1 {
		t.Fatalf("balance = %+v", in.Balance)
	}
	// Server 0 ~90% (over), server 1 0% (under): both violate.
	if len(in.Balance[0].Violating) != 2 {
		t.Fatalf("violating = %v", in.Balance[0].Violating)
	}
}

func TestMessagesCounter(t *testing.T) {
	k, _, rt, p := env()
	ref := rt.SpawnOn("W", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {}), 0)
	cl := actor.NewClient(rt, 0)
	for i := 0; i < 7; i++ {
		cl.Send(ref, "m", nil, 1)
	}
	k.RunUntilIdle()
	if p.Messages() != 7 {
		t.Fatalf("messages = %d", p.Messages())
	}
}
