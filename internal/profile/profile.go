// Package profile implements PLASMA's elasticity profiling runtime (EPR):
// it tracks the behavior of actors (CPU time, memory, network) and their
// interactions (message rates and sizes per caller and function), plus
// per-server resource utilization, within each elasticity period window.
//
// The EPR is the data source for rule evaluation: every period, the EMR
// takes a Snapshot and resets the window.
//
// The hot path is built for million-actor fleets: actor ids are assigned
// sequentially and never reused, so all per-actor window accumulators are
// dense slices indexed by id rather than maps, and snapshots are built
// into a double-buffered arena of pooled ActorInfo storage instead of
// allocating one ActorInfo (plus a Props map) per actor per period.
package profile

import (
	"sort"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// callerKey identifies one (caller, method) aggregation bucket within a
// callee's per-window call list.
type callerKey struct {
	callerType string
	caller     actor.Ref
	method     string
}

// promoteAt is the per-callee call-list length past which the linear-scan
// lookup in OnMessage is promoted to a map index. Most callees see a
// handful of (caller, method) pairs per window; hot fan-in actors get the
// map.
const promoteAt = 16

// calleeCalls accumulates the call stats received by one callee within the
// current window. recs is kept unsorted during accumulation and sorted
// once at snapshot time.
type calleeCalls struct {
	recs []epl.CallStat
	idx  map[callerKey]int // non-nil once len(recs) exceeded promoteAt
}

func (cc *calleeCalls) buildIdx() {
	if cc.idx == nil {
		cc.idx = make(map[callerKey]int, 2*len(cc.recs))
	} else {
		clear(cc.idx)
	}
	for i := range cc.recs {
		r := &cc.recs[i]
		cc.idx[callerKey{callerType: r.CallerType, caller: r.Caller, method: r.Method}] = i
	}
}

// arena is one buffer of the double-buffered snapshot storage: the
// Snapshot handed out plus the pooled backing arrays its ActorInfos and
// CallStats live in. ServerInfo is deliberately NOT pooled — the GEM's
// bounded-staleness report cache retains *ServerInfo across periods.
type arena struct {
	snap    epl.Snapshot
	infos   []epl.ActorInfo
	callBuf []epl.CallStat
}

// Profiler collects per-window runtime information. It implements
// actor.ProfilerHook. A single Profiler serves all servers; snapshots can be
// scoped to a server subset, which is how per-LEM and per-GEM views are
// produced.
//
// Lifetime contract: the *epl.Snapshot returned by Snapshot remains valid
// until the next-but-one call to Snapshot (the two arena buffers
// alternate). Callers take one snapshot per elasticity period, so a
// snapshot stays readable for two full periods; nothing may retain an
// *ActorInfo beyond that.
type Profiler struct {
	k  *sim.Kernel
	c  *cluster.Cluster
	rt *actor.Runtime

	windowStart sim.Time

	// Dense per-actor window accumulators, indexed by actor id. The three
	// slices are grown in lockstep; Reset clears them in place. On a
	// sharded kernel the hooks run on the hosting machine's shard, which
	// is safe because each element is written only by the shard owning
	// that actor's machine and the slices are pre-grown at spawn time (the
	// global phase) via OnSpawn, so the headers never move mid-window.
	actorCPU []sim.Duration
	actorNet []int64
	calls    []calleeCalls

	// callRecs and messages are striped per kernel shard (OnMessage runs
	// on the callee's shard) and summed on read.
	callRecs []int   // total CallStat records across all callees this window
	messages []int64 // total messages observed (all time), for overhead tests

	arenas [2]arena
	cur    int
	scope  map[cluster.MachineID]bool // reused scratch for Snapshot scoping

	// noReuse makes every Snapshot build into a brand-new arena (the naive
	// reference path differential tests compare the pooled path against).
	noReuse bool
}

// New creates a profiler and attaches it to the runtime.
func New(k *sim.Kernel, c *cluster.Cluster, rt *actor.Runtime) *Profiler {
	p := &Profiler{k: k, c: c, rt: rt,
		callRecs: make([]int, k.Shards()),
		messages: make([]int64, k.Shards()),
	}
	rt.SetProfiler(p)
	return p
}

// OnSpawn pre-grows the dense accumulators for a newly spawned actor. The
// runtime calls it at spawn time — always the global phase — so the hot
// per-message hooks never reallocate the shared slices from shard context.
func (p *Profiler) OnSpawn(srv cluster.MachineID, a actor.Ref) { p.ensure(a.ID) }

// NoReuse switches the profiler to naive fresh-allocation snapshots: every
// Snapshot call builds into a brand-new arena instead of the pooled
// double-buffered one. Differential tests use this as the reference
// implementation; its results must be identical to the pooled path.
func (p *Profiler) NoReuse() { p.noReuse = true }

// ensure grows the dense per-actor accumulators to cover id.
func (p *Profiler) ensure(id actor.ID) {
	n := int(id) + 1
	if n <= len(p.actorCPU) {
		return
	}
	if n < 2*len(p.actorCPU) {
		n = 2 * len(p.actorCPU)
	}
	cpu := make([]sim.Duration, n)
	copy(cpu, p.actorCPU)
	p.actorCPU = cpu
	net := make([]int64, n)
	copy(net, p.actorNet)
	p.actorNet = net
	calls := make([]calleeCalls, n)
	copy(calls, p.calls)
	p.calls = calls
}

// OnMessage implements actor.ProfilerHook.
func (p *Profiler) OnMessage(srv cluster.MachineID, callerType string, caller actor.Ref, callee actor.Ref, calleeType, method string, size int64) {
	p.ensure(callee.ID)
	cc := &p.calls[callee.ID]
	if cc.idx != nil {
		key := callerKey{callerType: callerType, caller: caller, method: method}
		if i, ok := cc.idx[key]; ok {
			cc.recs[i].Count++
			cc.recs[i].Bytes += size
		} else {
			cc.idx[key] = len(cc.recs)
			cc.recs = append(cc.recs, epl.CallStat{CallerType: callerType, Caller: caller, Method: method, Count: 1, Bytes: size})
			p.callRecs[p.k.ShardIndexOf(int32(srv))]++
		}
	} else {
		hit := false
		for i := range cc.recs {
			r := &cc.recs[i]
			if r.Method == method && r.CallerType == callerType && r.Caller == caller {
				r.Count++
				r.Bytes += size
				hit = true
				break
			}
		}
		if !hit {
			cc.recs = append(cc.recs, epl.CallStat{CallerType: callerType, Caller: caller, Method: method, Count: 1, Bytes: size})
			p.callRecs[p.k.ShardIndexOf(int32(srv))]++
			if len(cc.recs) > promoteAt {
				cc.buildIdx()
			}
		}
	}
	p.actorNet[callee.ID] += size
	p.messages[p.k.ShardIndexOf(int32(srv))]++
}

// OnCPU implements actor.ProfilerHook.
func (p *Profiler) OnCPU(srv cluster.MachineID, a actor.Ref, typ string, cost sim.Duration) {
	p.ensure(a.ID)
	p.actorCPU[a.ID] += cost
}

// OnNet implements actor.ProfilerHook.
func (p *Profiler) OnNet(srv cluster.MachineID, a actor.Ref, typ string, size int64) {
	p.ensure(a.ID)
	p.actorNet[a.ID] += size
}

// Messages reports the total number of profiled messages.
func (p *Profiler) Messages() int64 {
	var n int64
	for _, m := range p.messages {
		n += m
	}
	return n
}

// windowCallRecs sums the per-shard CallStat record counts.
func (p *Profiler) windowCallRecs() int {
	n := 0
	for _, c := range p.callRecs {
		n += c
	}
	return n
}

// Window reports the current window's span so far.
func (p *Profiler) Window() sim.Duration { return sim.Duration(p.k.Now() - p.windowStart) }

// Reset closes the window: per-actor accumulators are cleared in place
// (no reallocation) and every up machine's utilization window restarts.
func (p *Profiler) Reset() {
	p.windowStart = p.k.Now()
	clear(p.actorCPU)
	clear(p.actorNet)
	for i := range p.calls {
		cc := &p.calls[i]
		if len(cc.recs) > 0 {
			cc.recs = cc.recs[:0]
		}
		if cc.idx != nil {
			clear(cc.idx)
		}
	}
	clear(p.callRecs)
	for _, m := range p.c.Machines() {
		m.ResetWindow()
	}
}

// Snapshot builds the rule-evaluation view for the given server scope (nil
// means all up servers). Actor metadata (type, placement, properties, pins)
// is included for every live actor so reference conditions resolve across
// servers; usage statistics are attributed per actor from this window.
func (p *Profiler) Snapshot(scope []cluster.MachineID) *epl.Snapshot {
	a := &p.arenas[p.cur]
	p.cur ^= 1
	if p.noReuse {
		a = &arena{}
	}
	window := p.Window()
	snap := &a.snap
	snap.At = p.k.Now()
	snap.Window = window

	// Scope set: the servers whose actors get usage statistics attributed.
	if p.scope == nil {
		p.scope = make(map[cluster.MachineID]bool, len(p.c.Machines()))
	} else {
		clear(p.scope)
	}
	if scope == nil {
		for _, m := range p.c.Machines() {
			if m.Up() {
				p.scope[m.ID] = true
			}
		}
	} else {
		for _, id := range scope {
			p.scope[id] = true
		}
	}

	// Server list: in-scope up machines in id order. ServerInfo is freshly
	// allocated on purpose (see arena doc).
	snap.Servers = snap.Servers[:0]
	for _, m := range p.c.Machines() {
		if !p.scope[m.ID] || !m.Up() {
			continue
		}
		snap.Servers = append(snap.Servers, &epl.ServerInfo{
			ID:      m.ID,
			CPUPerc: m.CPUPercent(),
			MemPerc: m.MemPercent(),
			NetPerc: m.NetPercent(),
			VCPUs:   m.Type.VCPUs,
			MemMB:   m.Type.MemMB,
			NetMbps: m.Type.NetMbps,
			Up:      true,
		})
	}

	// Reserve arena capacity up front: pointers into infos/callBuf are
	// carved out as we go, so the backing arrays must not grow mid-build.
	n := p.rt.NumActors()
	if cap(a.infos) < n {
		a.infos = make([]epl.ActorInfo, 0, n+n/4+16)
	}
	a.infos = a.infos[:0]
	if cap(snap.Actors) < n {
		snap.Actors = make([]*epl.ActorInfo, 0, n+n/4+16)
	}
	snap.Actors = snap.Actors[:0]
	callRecs := p.windowCallRecs()
	if cap(a.callBuf) < callRecs {
		a.callBuf = make([]epl.CallStat, 0, callRecs+callRecs/4+16)
	}
	a.callBuf = a.callBuf[:0]

	p.rt.ForEachActor(func(info actor.Info) {
		m := p.c.Machine(info.Server)
		if m == nil {
			return
		}
		a.infos = append(a.infos, epl.ActorInfo{
			Ref:       info.Ref,
			Type:      info.Type,
			Server:    info.Server,
			MemBytes:  info.MemBytes,
			Pinned:    info.Pinned,
			LastMoved: info.LastMoved,
		})
		ai := &a.infos[len(a.infos)-1]
		if info.NumProps > 0 {
			ai.Props = make(map[string][]actor.Ref, info.NumProps)
			for _, name := range p.rt.PropNames(info.Ref) {
				ai.Props[name] = p.rt.Props(info.Ref, name)
			}
		}
		if m.Type.MemMB > 0 {
			ai.MemPerc = float64(ai.MemBytes) / float64(m.Type.MemMB*1024*1024) * 100
		}
		id := int(info.Ref.ID)
		if p.scope[info.Server] && window > 0 {
			var cpu sim.Duration
			var net int64
			if id < len(p.actorCPU) {
				cpu = p.actorCPU[id]
				net = p.actorNet[id]
			}
			ai.CPUTime = cpu
			ai.CPUPerc = float64(cpu) / (float64(window) * float64(m.Type.VCPUs)) * 100
			ai.NetBytes = net
			ai.NetPerc = float64(net) * 8 / 1e6 / window.Seconds() / m.Type.NetMbps * 100
		}
		// Call stats: sort this callee's list once (method, callerType,
		// caller) — the same order the former global callKey sort yielded
		// per callee — then copy into the arena so the snapshot does not
		// alias live accumulation state.
		if id < len(p.calls) && len(p.calls[id].recs) > 0 {
			cc := &p.calls[id]
			sortCalls(cc.recs)
			if cc.idx != nil {
				cc.buildIdx() // sorting invalidated the indices
			}
			start := len(a.callBuf)
			a.callBuf = append(a.callBuf, cc.recs...)
			ai.Calls = a.callBuf[start:len(a.callBuf):len(a.callBuf)]
		}
		snap.Actors = append(snap.Actors, ai)
	})
	return snap.Index()
}

func sortCalls(recs []epl.CallStat) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.CallerType != b.CallerType {
			return a.CallerType < b.CallerType
		}
		return a.Caller.ID < b.Caller.ID
	})
}
