// Package profile implements PLASMA's elasticity profiling runtime (EPR):
// it tracks the behavior of actors (CPU time, memory, network) and their
// interactions (message rates and sizes per caller and function), plus
// per-server resource utilization, within each elasticity period window.
//
// The EPR is the data source for rule evaluation: every period, the EMR
// takes a Snapshot and resets the window.
package profile

import (
	"sort"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

type callKey struct {
	callee     actor.Ref
	callerType string
	caller     actor.Ref
	method     string
}

// Profiler collects per-window runtime information. It implements
// actor.ProfilerHook. A single Profiler serves all servers; snapshots can be
// scoped to a server subset, which is how per-LEM and per-GEM views are
// produced.
type Profiler struct {
	k  *sim.Kernel
	c  *cluster.Cluster
	rt *actor.Runtime

	windowStart sim.Time
	actorCPU    map[actor.Ref]sim.Duration
	actorNet    map[actor.Ref]int64
	calls       map[callKey]*countBytes

	messages int64 // total messages observed (all time), for overhead tests
}

type countBytes struct {
	count int64
	bytes int64
}

// New creates a profiler and attaches it to the runtime.
func New(k *sim.Kernel, c *cluster.Cluster, rt *actor.Runtime) *Profiler {
	p := &Profiler{
		k: k, c: c, rt: rt,
		actorCPU: make(map[actor.Ref]sim.Duration),
		actorNet: make(map[actor.Ref]int64),
		calls:    make(map[callKey]*countBytes),
	}
	rt.SetProfiler(p)
	return p
}

// OnMessage implements actor.ProfilerHook.
func (p *Profiler) OnMessage(srv cluster.MachineID, callerType string, caller actor.Ref, callee actor.Ref, calleeType, method string, size int64) {
	k := callKey{callee: callee, callerType: callerType, caller: caller, method: method}
	cb := p.calls[k]
	if cb == nil {
		cb = &countBytes{}
		p.calls[k] = cb
	}
	cb.count++
	cb.bytes += size
	p.actorNet[callee] += size
	p.messages++
}

// OnCPU implements actor.ProfilerHook.
func (p *Profiler) OnCPU(srv cluster.MachineID, a actor.Ref, typ string, cost sim.Duration) {
	p.actorCPU[a] += cost
}

// OnNet implements actor.ProfilerHook.
func (p *Profiler) OnNet(srv cluster.MachineID, a actor.Ref, typ string, size int64) {
	p.actorNet[a] += size
}

// Messages reports the total number of profiled messages.
func (p *Profiler) Messages() int64 { return p.messages }

// Window reports the current window's span so far.
func (p *Profiler) Window() sim.Duration { return sim.Duration(p.k.Now() - p.windowStart) }

// Reset closes the window: per-actor accumulators are cleared and every up
// machine's utilization window restarts.
func (p *Profiler) Reset() {
	p.windowStart = p.k.Now()
	p.actorCPU = make(map[actor.Ref]sim.Duration)
	p.actorNet = make(map[actor.Ref]int64)
	p.calls = make(map[callKey]*countBytes)
	for _, m := range p.c.Machines() {
		m.ResetWindow()
	}
}

// Snapshot builds the rule-evaluation view for the given server scope (nil
// means all up servers). Actor metadata (type, placement, properties, pins)
// is included for every live actor so reference conditions resolve across
// servers; usage statistics are attributed per actor from this window.
func (p *Profiler) Snapshot(scope []cluster.MachineID) *epl.Snapshot {
	snap := &epl.Snapshot{At: p.k.Now(), Window: p.Window()}
	inScope := map[cluster.MachineID]bool{}
	if scope == nil {
		for _, m := range p.c.UpMachines() {
			inScope[m.ID] = true
		}
	} else {
		for _, id := range scope {
			inScope[id] = true
		}
	}

	ids := make([]cluster.MachineID, 0, len(inScope))
	for id := range inScope {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m := p.c.Machine(id)
		if m == nil || !m.Up() {
			continue
		}
		snap.Servers = append(snap.Servers, &epl.ServerInfo{
			ID:      m.ID,
			CPUPerc: m.CPUPercent(),
			MemPerc: m.MemPercent(),
			NetPerc: m.NetPercent(),
			VCPUs:   m.Type.VCPUs,
			MemMB:   m.Type.MemMB,
			Up:      true,
		})
	}

	window := p.Window()
	for _, ref := range p.rt.Actors() {
		srvID := p.rt.ServerOf(ref)
		m := p.c.Machine(srvID)
		if m == nil {
			continue
		}
		ai := &epl.ActorInfo{
			Ref:       ref,
			Type:      p.rt.TypeOf(ref),
			Server:    srvID,
			MemBytes:  p.rt.MemSize(ref),
			Pinned:    p.rt.Pinned(ref),
			LastMoved: p.rt.LastMoved(ref),
			Props:     map[string][]actor.Ref{},
		}
		for _, name := range p.propNames(ref) {
			ai.Props[name] = p.rt.Props(ref, name)
		}
		if m.Type.MemMB > 0 {
			ai.MemPerc = float64(ai.MemBytes) / float64(m.Type.MemMB*1024*1024) * 100
		}
		if inScope[srvID] && window > 0 {
			cpu := p.actorCPU[ref]
			ai.CPUTime = cpu
			ai.CPUPerc = float64(cpu) / (float64(window) * float64(m.Type.VCPUs)) * 100
			net := p.actorNet[ref]
			ai.NetBytes = net
			ai.NetPerc = float64(net) * 8 / 1e6 / window.Seconds() / m.Type.NetMbps * 100
		}
		snap.Actors = append(snap.Actors, ai)
	}

	// Attach call statistics (deterministic order).
	keys := make([]callKey, 0, len(p.calls))
	for k := range p.calls {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.callee != b.callee {
			return a.callee.ID < b.callee.ID
		}
		if a.method != b.method {
			return a.method < b.method
		}
		if a.callerType != b.callerType {
			return a.callerType < b.callerType
		}
		return a.caller.ID < b.caller.ID
	})
	byActor := map[actor.Ref][]epl.CallStat{}
	for _, k := range keys {
		cb := p.calls[k]
		byActor[k.callee] = append(byActor[k.callee], epl.CallStat{
			CallerType: k.callerType,
			Caller:     k.caller,
			Method:     k.method,
			Count:      cb.count,
			Bytes:      cb.bytes,
		})
	}
	for _, ai := range snap.Actors {
		ai.Calls = byActor[ai.Ref]
	}
	return snap.Index()
}

// propNames lists the property names an actor currently exposes. The actor
// runtime does not enumerate properties, so the profiler asks via a small
// shim on Runtime.
func (p *Profiler) propNames(ref actor.Ref) []string {
	return p.rt.PropNames(ref)
}
