package graph

import (
	"sort"

	//lint:ignore DET002 partitioning draws from an explicitly seeded generator
	"math/rand"
)

// PartitionMultilevel is a METIS-style multilevel k-way partitioner:
//
//  1. coarsen the graph by repeated heavy-edge matching until it is small,
//  2. greedily partition the coarsest graph balancing vertex weight,
//  3. project the partition back up, refining at each level with a
//     boundary Kernighan–Lin pass that moves vertices to reduce edge cut
//     subject to a balance constraint on vertex weight.
//
// Like METIS, it balances *vertex* weight, so on power-law graphs the
// resulting parts have noticeably different edge counts — the compute skew
// the PageRank experiments exploit.
func PartitionMultilevel(g *Graph, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	w := newWorking(g)
	var levels []*working
	for w.n > 40*k && len(levels) < 30 {
		levels = append(levels, w)
		next := w.coarsen(rng)
		if next.n >= w.n*9/10 {
			// Matching stopped making progress.
			w = next
			break
		}
		w = next
	}
	parts := w.initialPartition(k, rng)
	w.refine(parts, k, 4)
	// Project back through the levels, refining each.
	for i := len(levels) - 1; i >= 0; i-- {
		fine := levels[i]
		fineParts := make([]int, fine.n)
		for v := 0; v < fine.n; v++ {
			fineParts[v] = parts[fine.coarseMap[v]]
		}
		fine.refine(fineParts, k, 4)
		parts = fineParts
	}
	return parts
}

// working is one level of the multilevel hierarchy: an undirected weighted
// graph (vertex weights = collapsed vertex counts, edge weights = collapsed
// multiplicities).
type working struct {
	n         int
	vw        []int           // vertex weights
	adj       []map[int32]int // adjacency with edge weights
	coarseMap []int           // fine vertex -> coarse vertex (set on the finer level)
}

func newWorking(g *Graph) *working {
	w := &working{n: g.N, vw: make([]int, g.N), adj: make([]map[int32]int, g.N)}
	for v := 0; v < g.N; v++ {
		w.vw[v] = 1
		w.adj[v] = make(map[int32]int)
	}
	// Symmetrize: partitioning treats the graph as undirected.
	for u := 0; u < g.N; u++ {
		for _, v := range g.Out[u] {
			if int(v) == u {
				continue
			}
			w.adj[u][v]++
			w.adj[v][int32(u)]++
		}
	}
	return w
}

// coarsen performs heavy-edge matching and builds the next level.
func (w *working) coarsen(rng *rand.Rand) *working {
	match := make([]int, w.n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(w.n)
	for _, u := range order {
		if match[u] >= 0 {
			continue
		}
		// Match with the unmatched neighbor of heaviest edge weight;
		// ties break toward the smaller vertex id so runs are
		// reproducible regardless of map iteration order.
		best, bestW := -1, 0
		for v, ew := range w.adj[u] {
			if match[v] >= 0 || int(v) == u {
				continue
			}
			if ew > bestW || (ew == bestW && best >= 0 && int(v) < best) {
				best, bestW = int(v), ew
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = u
		} else {
			match[u] = u
		}
	}
	// Assign coarse ids.
	coarseID := make([]int, w.n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	next := &working{}
	for u := 0; u < w.n; u++ {
		if coarseID[u] >= 0 {
			continue
		}
		id := next.n
		next.n++
		coarseID[u] = id
		if match[u] != u {
			coarseID[match[u]] = id
		}
	}
	next.vw = make([]int, next.n)
	next.adj = make([]map[int32]int, next.n)
	for i := range next.adj {
		next.adj[i] = make(map[int32]int)
	}
	for u := 0; u < w.n; u++ {
		cu := coarseID[u]
		next.vw[cu] += w.vw[u]
		for v, ew := range w.adj[u] {
			cv := coarseID[v]
			if cu == cv {
				continue
			}
			next.adj[cu][int32(cv)] += ew
		}
	}
	w.coarseMap = coarseID
	return next
}

// initialPartition greedily fills parts in decreasing vertex-weight order.
func (w *working) initialPartition(k int, rng *rand.Rand) []int {
	parts := make([]int, w.n)
	order := make([]int, w.n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return w.vw[order[i]] > w.vw[order[j]] })
	loads := make([]int, k)
	for _, v := range order {
		best := 0
		for p := 1; p < k; p++ {
			if loads[p] < loads[best] {
				best = p
			}
		}
		parts[v] = best
		loads[best] += w.vw[v]
	}
	return parts
}

// refine runs boundary KL passes: move a vertex to the neighboring part
// with the largest cut gain, provided vertex-weight balance stays within
// tolerance. Stops early when a pass makes no move.
func (w *working) refine(parts []int, k, passes int) {
	loads := make([]int, k)
	var total int
	for v := 0; v < w.n; v++ {
		loads[parts[v]] += w.vw[v]
		total += w.vw[v]
	}
	maxLoad := int(float64(total)/float64(k)*1.05) + 1
	minLoad := int(float64(total) / float64(k) * 0.85)

	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < w.n; v++ {
			pv := parts[v]
			// Tally edge weight toward each part among neighbors.
			var gainTo map[int]int
			internal := 0
			for u, ew := range w.adj[v] {
				pu := parts[u]
				if pu == pv {
					internal += ew
					continue
				}
				if gainTo == nil {
					gainTo = make(map[int]int)
				}
				gainTo[pu] += ew
			}
			bestP, bestGain := -1, 0
			// Deterministic iteration over candidate parts.
			cands := make([]int, 0, len(gainTo))
			for p := range gainTo {
				cands = append(cands, p)
			}
			sort.Ints(cands)
			if loads[pv]-w.vw[v] < minLoad {
				continue // moving would under-fill the source part
			}
			for _, p := range cands {
				gain := gainTo[p] - internal
				if gain > bestGain && loads[p]+w.vw[v] <= maxLoad {
					bestP, bestGain = p, gain
				}
			}
			if bestP >= 0 {
				loads[pv] -= w.vw[v]
				loads[bestP] += w.vw[v]
				parts[v] = bestP
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
