// Package graph provides the graph substrate for the PageRank experiments:
// a seeded power-law (Chung–Lu style) social-graph generator standing in
// for SNAP's LiveJournal dataset, partitioners (hash, streaming LDG, and a
// multilevel METIS-like scheme), and a reference PageRank kernel.
//
// The property the paper's experiments rely on is that vertex-balanced
// partitions of a power-law graph have *uneven edge counts*, so per-partition
// compute (proportional to edges) is skewed even after "balanced"
// partitioning — which is exactly the imbalance PLASMA's balance rule fixes.
package graph

import (
	"fmt"
	"math"
	"sort"

	//lint:ignore DET002 graph generation draws from an explicitly seeded generator
	"math/rand"
)

// Graph is a directed graph in adjacency-list form.
type Graph struct {
	N   int
	Out [][]int32
}

// NumEdges reports the total directed edge count.
func (g *Graph) NumEdges() int64 {
	var m int64
	for _, adj := range g.Out {
		m += int64(len(adj))
	}
	return m
}

// OutDeg reports a vertex's out-degree.
func (g *Graph) OutDeg(v int) int { return len(g.Out[v]) }

// GeneratePowerLaw builds a directed graph with n vertices and roughly
// n*avgDeg edges whose degree distribution follows a power law with the
// given exponent (typical social graphs: 2.0-2.5). Deterministic per seed.
func GeneratePowerLaw(n int, avgDeg float64, exponent float64, seed int64) *Graph {
	if n <= 0 {
		panic("graph: n must be positive")
	}
	if exponent <= 1 {
		panic("graph: exponent must exceed 1")
	}
	rng := rand.New(rand.NewSource(seed))

	// Chung–Lu expected-degree weights: w_i ∝ (i + i0)^(-1/(exponent-1)).
	alpha := 1 / (exponent - 1)
	i0 := 10.0 // damps the largest hubs so the graph stays connected-ish
	weights := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		weights[i] = math.Pow(float64(i)+i0, -alpha)
		sum += weights[i]
	}
	// Cumulative distribution for endpoint sampling.
	cum := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += weights[i] / sum
		cum[i] = acc
	}
	sample := func() int {
		x := rng.Float64()
		idx := sort.SearchFloat64s(cum, x)
		if idx >= n {
			idx = n - 1
		}
		return idx
	}

	m := int64(float64(n) * avgDeg)
	out := make([][]int32, n)
	for e := int64(0); e < m; e++ {
		u, v := sample(), sample()
		if u == v {
			continue
		}
		out[u] = append(out[u], int32(v))
	}
	// Guarantee every vertex has at least one out-edge (dangling vertices
	// complicate PageRank bookkeeping and never occur in LiveJournal's WCC).
	for v := 0; v < n; v++ {
		if len(out[v]) == 0 {
			out[v] = append(out[v], int32(rng.Intn(n)))
		}
	}
	return &Graph{N: n, Out: out}
}

// InDegrees computes the in-degree of every vertex.
func (g *Graph) InDegrees() []int {
	in := make([]int, g.N)
	for _, adj := range g.Out {
		for _, v := range adj {
			in[v]++
		}
	}
	return in
}

// PageRank runs the classic power-iteration PageRank for iters rounds and
// returns the final rank vector (sums to ~1).
func PageRank(g *Graph, damping float64, iters int) []float64 {
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(n)
		for i := range next {
			next[i] = base
		}
		var dangling float64
		for u := 0; u < n; u++ {
			deg := len(g.Out[u])
			if deg == 0 {
				dangling += rank[u]
				continue
			}
			share := damping * rank[u] / float64(deg)
			for _, v := range g.Out[u] {
				next[v] += share
			}
		}
		if dangling > 0 {
			spread := damping * dangling / float64(n)
			for i := range next {
				next[i] += spread
			}
		}
		rank, next = next, rank
	}
	return rank
}

// PartitionHash assigns vertices to k parts by vertex id modulo k.
func PartitionHash(g *Graph, k int) []int {
	parts := make([]int, g.N)
	for v := range parts {
		parts[v] = v % k
	}
	return parts
}

// PartitionLDG is the Linear Deterministic Greedy streaming partitioner:
// each vertex goes to the part holding most of its neighbors, weighted by a
// linear penalty on part fullness.
func PartitionLDG(g *Graph, k int) []int {
	parts := make([]int, g.N)
	for i := range parts {
		parts[i] = -1
	}
	capacity := float64(g.N)/float64(k) + 1
	sizes := make([]float64, k)
	neighborIn := make([]float64, k)
	for v := 0; v < g.N; v++ {
		for i := range neighborIn {
			neighborIn[i] = 0
		}
		for _, u := range g.Out[v] {
			if p := parts[u]; p >= 0 {
				neighborIn[p]++
			}
		}
		best, bestScore := 0, math.Inf(-1)
		for p := 0; p < k; p++ {
			score := (neighborIn[p] + 1) * (1 - sizes[p]/capacity)
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		parts[v] = best
		sizes[best]++
	}
	return parts
}

// EdgeCut counts directed edges crossing partition boundaries.
func EdgeCut(g *Graph, parts []int) int64 {
	var cut int64
	for u := 0; u < g.N; u++ {
		pu := parts[u]
		for _, v := range g.Out[u] {
			if parts[v] != pu {
				cut++
			}
		}
	}
	return cut
}

// PartVertexCounts reports vertices per part.
func PartVertexCounts(parts []int, k int) []int {
	counts := make([]int, k)
	for _, p := range parts {
		counts[p]++
	}
	return counts
}

// PartEdgeCounts reports out-edges per part — the per-partition compute
// cost proxy for PageRank.
func PartEdgeCounts(g *Graph, parts []int, k int) []int64 {
	counts := make([]int64, k)
	for u := 0; u < g.N; u++ {
		counts[parts[u]] += int64(len(g.Out[u]))
	}
	return counts
}

// Validate checks that parts is a complete assignment into [0, k).
func Validate(parts []int, n, k int) error {
	if len(parts) != n {
		return fmt.Errorf("graph: %d assignments for %d vertices", len(parts), n)
	}
	for v, p := range parts {
		if p < 0 || p >= k {
			return fmt.Errorf("graph: vertex %d assigned to invalid part %d", v, p)
		}
	}
	return nil
}
