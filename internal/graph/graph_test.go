package graph

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func testGraph() *Graph {
	return GeneratePowerLaw(2000, 8, 2.2, 42)
}

func TestGenerateDeterministic(t *testing.T) {
	a := GeneratePowerLaw(500, 6, 2.2, 7)
	b := GeneratePowerLaw(500, 6, 2.2, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	for v := 0; v < a.N; v++ {
		if len(a.Out[v]) != len(b.Out[v]) {
			t.Fatalf("vertex %d degree differs", v)
		}
	}
}

func TestGenerateSize(t *testing.T) {
	g := testGraph()
	if g.N != 2000 {
		t.Fatalf("N = %d", g.N)
	}
	m := g.NumEdges()
	// ~n*avgDeg minus dropped self loops, plus the >=1 out-degree fixups.
	if m < 12000 || m > 18000 {
		t.Fatalf("edges = %d, want ~16000", m)
	}
	for v := 0; v < g.N; v++ {
		if len(g.Out[v]) == 0 {
			t.Fatalf("vertex %d has no out-edges", v)
		}
	}
}

func TestGeneratePowerLawSkew(t *testing.T) {
	g := testGraph()
	degs := make([]int, g.N)
	for v := range degs {
		degs[v] = len(g.Out[v])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	// Power-law graphs concentrate edges on hubs: the top 1% of vertices
	// must hold far more than 1% of the edges.
	top := 0
	for _, d := range degs[:g.N/100] {
		top += d
	}
	frac := float64(top) / float64(g.NumEdges())
	if frac < 0.05 {
		t.Fatalf("top 1%% of vertices hold %.1f%% of edges; not heavy-tailed", frac*100)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := testGraph()
	rank := PageRank(g, 0.85, 20)
	var sum float64
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("rank sum = %v", sum)
	}
}

func TestPageRankHubsRankHigher(t *testing.T) {
	// A star: everything points at vertex 0.
	n := 50
	out := make([][]int32, n)
	for v := 1; v < n; v++ {
		out[v] = []int32{0}
	}
	out[0] = []int32{1}
	g := &Graph{N: n, Out: out}
	rank := PageRank(g, 0.85, 30)
	for v := 2; v < n; v++ {
		if rank[0] <= rank[v] {
			t.Fatalf("hub rank %v not above leaf rank %v", rank[0], rank[v])
		}
	}
}

func TestPartitionersProduceValidAssignments(t *testing.T) {
	g := testGraph()
	k := 8
	for name, parts := range map[string][]int{
		"hash":       PartitionHash(g, k),
		"ldg":        PartitionLDG(g, k),
		"multilevel": PartitionMultilevel(g, k, 1),
	} {
		if err := Validate(parts, g.N, k); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		counts := PartVertexCounts(parts, k)
		for p, c := range counts {
			if c == 0 {
				t.Fatalf("%s: part %d empty", name, p)
			}
		}
	}
}

func TestMultilevelBalancesVertices(t *testing.T) {
	g := testGraph()
	k := 8
	parts := PartitionMultilevel(g, k, 1)
	counts := PartVertexCounts(parts, k)
	ideal := g.N / k
	for p, c := range counts {
		if c < ideal*70/100 || c > ideal*130/100 {
			t.Fatalf("part %d has %d vertices, ideal %d (counts=%v)", p, c, ideal, counts)
		}
	}
}

func TestMultilevelBeatsHashOnCut(t *testing.T) {
	g := testGraph()
	k := 8
	hashCut := EdgeCut(g, PartitionHash(g, k))
	mlCut := EdgeCut(g, PartitionMultilevel(g, k, 1))
	if mlCut >= hashCut {
		t.Fatalf("multilevel cut %d not better than hash cut %d", mlCut, hashCut)
	}
}

func TestLDGBeatsHashOnCut(t *testing.T) {
	g := testGraph()
	k := 8
	hashCut := EdgeCut(g, PartitionHash(g, k))
	ldgCut := EdgeCut(g, PartitionLDG(g, k))
	if ldgCut >= hashCut {
		t.Fatalf("LDG cut %d not better than hash cut %d", ldgCut, hashCut)
	}
}

func TestVertexBalancedPartsHaveEdgeSkew(t *testing.T) {
	// The property the PageRank experiments rely on: balancing vertices on
	// a power-law graph leaves edge (=compute) imbalance.
	g := GeneratePowerLaw(5000, 10, 2.1, 3)
	k := 8
	parts := PartitionMultilevel(g, k, 1)
	edges := PartEdgeCounts(g, parts, k)
	min, max := edges[0], edges[0]
	for _, e := range edges {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if float64(max) < 1.1*float64(min) {
		t.Fatalf("edge counts too uniform (min=%d max=%d); no compute skew", min, max)
	}
}

func TestValidateRejectsBadAssignments(t *testing.T) {
	if Validate([]int{0, 1}, 3, 2) == nil {
		t.Fatal("short assignment accepted")
	}
	if Validate([]int{0, 5, 1}, 3, 2) == nil {
		t.Fatal("out-of-range part accepted")
	}
	if Validate([]int{0, 1, 1}, 3, 2) != nil {
		t.Fatal("valid assignment rejected")
	}
}

func TestPartEdgeCountsConserveEdges(t *testing.T) {
	g := testGraph()
	parts := PartitionMultilevel(g, 4, 9)
	edges := PartEdgeCounts(g, parts, 4)
	var sum int64
	for _, e := range edges {
		sum += e
	}
	if sum != g.NumEdges() {
		t.Fatalf("edge counts sum %d != %d", sum, g.NumEdges())
	}
}

// Property: multilevel partitioning is deterministic per seed and always
// valid for arbitrary small graphs.
func TestPropertyMultilevelValid(t *testing.T) {
	f := func(edges []uint16, kRaw uint8) bool {
		n := 64
		k := int(kRaw%7) + 2
		out := make([][]int32, n)
		for i := 0; i+1 < len(edges); i += 2 {
			u := int(edges[i]) % n
			v := int(edges[i+1]) % n
			if u != v {
				out[u] = append(out[u], int32(v))
			}
		}
		g := &Graph{N: n, Out: out}
		p1 := PartitionMultilevel(g, k, 5)
		p2 := PartitionMultilevel(g, k, 5)
		if Validate(p1, n, k) != nil {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: refinement never loses vertices and EdgeCut is bounded by the
// number of edges.
func TestPropertyCutBounded(t *testing.T) {
	f := func(seed int64) bool {
		g := GeneratePowerLaw(300, 5, 2.3, seed%1000)
		parts := PartitionMultilevel(g, 4, seed%7)
		cut := EdgeCut(g, parts)
		return cut >= 0 && cut <= g.NumEdges() && Validate(parts, g.N, 4) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
