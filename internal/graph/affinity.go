package graph

import "sort"

// Affinity is an undirected weighted communication graph over opaque int64
// node ids (actor ids in practice). The batch planner builds one per
// planning round from the profiled message-rate snapshot and uses it to
// keep chatty actors together: the affinity of an actor to a server is the
// summed edge weight toward actors resident there.
//
// Accumulation is map-backed for O(1) adds; Peers seals each adjacency
// list into id-sorted order on first read, so iteration is deterministic
// regardless of insertion order.
type Affinity struct {
	adj   map[int64]map[int64]float64
	peers map[int64][]AffEdge // sealed, id-sorted adjacency
}

// AffEdge is one sealed adjacency entry.
type AffEdge struct {
	Peer   int64
	Weight float64
}

// NewAffinity returns an empty affinity graph.
func NewAffinity() *Affinity {
	return &Affinity{adj: map[int64]map[int64]float64{}}
}

// Add accumulates weight onto the undirected edge (a, b). Self-edges and
// non-positive weights are ignored.
func (af *Affinity) Add(a, b int64, w float64) {
	if a == b || w <= 0 {
		return
	}
	af.peers = nil // invalidate sealed lists
	for _, pair := range [2][2]int64{{a, b}, {b, a}} {
		m := af.adj[pair[0]]
		if m == nil {
			m = map[int64]float64{}
			af.adj[pair[0]] = m
		}
		m[pair[1]] += w
	}
}

// Weight reads the accumulated weight of edge (a, b); 0 when absent.
func (af *Affinity) Weight(a, b int64) float64 { return af.adj[a][b] }

// Peers returns a's adjacency in ascending peer-id order.
func (af *Affinity) Peers(a int64) []AffEdge {
	if af.peers == nil {
		af.peers = make(map[int64][]AffEdge, len(af.adj))
	}
	if list, ok := af.peers[a]; ok {
		return list
	}
	m := af.adj[a]
	if len(m) == 0 {
		af.peers[a] = nil
		return nil
	}
	list := make([]AffEdge, 0, len(m))
	for p, w := range m {
		list = append(list, AffEdge{Peer: p, Weight: w})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Peer < list[j].Peer })
	af.peers[a] = list
	return list
}

// Nodes reports how many nodes have at least one edge.
func (af *Affinity) Nodes() int { return len(af.adj) }

// ScoreBy sums a's edge weight toward the peers for which at returns the
// given key — with at mapping actor to server, this is the actor's
// communication affinity to that server.
func (af *Affinity) ScoreBy(a int64, key int64, at func(int64) (int64, bool)) float64 {
	var s float64
	for p, w := range af.adj[a] {
		if k, ok := at(p); ok && k == key {
			s += w
		}
	}
	return s
}
