package graph

import "testing"

func TestAffinityAccumulatesUndirected(t *testing.T) {
	af := NewAffinity()
	af.Add(1, 2, 10)
	af.Add(2, 1, 5)
	af.Add(1, 1, 99) // self-edge ignored
	af.Add(1, 3, -1) // non-positive ignored
	if w := af.Weight(1, 2); w != 15 {
		t.Fatalf("weight(1,2) = %v, want 15", w)
	}
	if w := af.Weight(2, 1); w != 15 {
		t.Fatalf("weight(2,1) = %v, want 15", w)
	}
	if w := af.Weight(1, 3); w != 0 {
		t.Fatalf("weight(1,3) = %v, want 0", w)
	}
}

func TestAffinityPeersSortedAndResealed(t *testing.T) {
	af := NewAffinity()
	af.Add(1, 9, 1)
	af.Add(1, 3, 2)
	af.Add(1, 5, 3)
	peers := af.Peers(1)
	if len(peers) != 3 || peers[0].Peer != 3 || peers[1].Peer != 5 || peers[2].Peer != 9 {
		t.Fatalf("peers = %+v, want id-sorted {3,5,9}", peers)
	}
	// Adding after a read invalidates the sealed lists.
	af.Add(1, 2, 1)
	peers = af.Peers(1)
	if len(peers) != 4 || peers[0].Peer != 2 {
		t.Fatalf("resealed peers = %+v", peers)
	}
	if af.Nodes() != 5 {
		t.Fatalf("nodes = %d, want 5", af.Nodes())
	}
}

func TestAffinityScoreBy(t *testing.T) {
	af := NewAffinity()
	af.Add(1, 2, 10)
	af.Add(1, 3, 7)
	af.Add(1, 4, 1)
	home := map[int64]int64{2: 100, 3: 100, 4: 200}
	at := func(id int64) (int64, bool) { s, ok := home[id]; return s, ok }
	if s := af.ScoreBy(1, 100, at); s != 17 {
		t.Fatalf("score toward 100 = %v, want 17", s)
	}
	if s := af.ScoreBy(1, 200, at); s != 1 {
		t.Fatalf("score toward 200 = %v, want 1", s)
	}
}
