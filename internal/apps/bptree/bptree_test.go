package bptree

import (
	"testing"
	"testing/quick"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func env(machines int) (*sim.Kernel, *cluster.Cluster, *actor.Runtime, *profile.Profiler) {
	k := sim.New(1)
	c := cluster.New(k, machines, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	return k, c, rt, prof
}

func servers(n int) []cluster.MachineID {
	out := make([]cluster.MachineID, n)
	for i := range out {
		out[i] = cluster.MachineID(i)
	}
	return out
}

func TestPolicyChecksAgainstSchema(t *testing.T) {
	pol := epl.MustParse(PolicySrc)
	if _, err := epl.Check(pol, Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestInsertLookupRoundTrip(t *testing.T) {
	k, _, rt, _ := env(2)
	tree := New(k, rt, servers(2))
	cl := actor.NewClient(rt, 0)
	for i := 0; i < 100; i++ {
		tree.Insert(cl, i*7%100, i, nil)
		k.RunUntilIdle()
	}
	for i := 0; i < 100; i++ {
		key := i * 7 % 100
		var got interface{}
		tree.Lookup(cl, key, func(v interface{}) { got = v })
		k.RunUntilIdle()
		if got != i && got == nil {
			t.Fatalf("key %d missing", key)
		}
	}
}

func TestMissingKeyReturnsNil(t *testing.T) {
	k, _, rt, _ := env(1)
	tree := New(k, rt, servers(1))
	cl := actor.NewClient(rt, 0)
	tree.Insert(cl, 1, 10, nil)
	k.RunUntilIdle()
	got := interface{}(42)
	tree.Lookup(cl, 999, func(v interface{}) { got = v })
	k.RunUntilIdle()
	if got != nil {
		t.Fatalf("missing key returned %v", got)
	}
}

func TestTreeGrowsAndSplits(t *testing.T) {
	k, _, rt, _ := env(4)
	tree := New(k, rt, servers(4))
	cl := actor.NewClient(rt, 0)
	for i := 0; i < 200; i++ {
		tree.Insert(cl, i, i, nil)
		k.RunUntilIdle()
	}
	if len(tree.Leaves) < 200/(Fanout+1) {
		t.Fatalf("only %d leaves after 200 inserts", len(tree.Leaves))
	}
	if len(tree.Inners) == 0 {
		t.Fatal("tree never grew inner nodes")
	}
	if rt.TypeOf(tree.Root) != "InnerNode" {
		t.Fatal("root still a leaf")
	}
}

func TestConcurrentInsertsNoLoss(t *testing.T) {
	// Fire inserts without waiting: B-link sibling forwarding must keep
	// every key findable despite in-flight splits.
	k, _, rt, _ := env(4)
	tree := New(k, rt, servers(4))
	cl := actor.NewClient(rt, 0)
	const n = 300
	for i := 0; i < n; i++ {
		tree.Insert(cl, i, i, nil)
	}
	k.RunUntilIdle()
	missing := 0
	for i := 0; i < n; i++ {
		var got interface{}
		tree.Lookup(cl, i, func(v interface{}) { got = v })
		k.RunUntilIdle()
		if got == nil {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d/%d keys unreachable after concurrent inserts", missing, n)
	}
}

func TestPropertyRandomWorkload(t *testing.T) {
	f := func(keys []uint16) bool {
		k, _, rt, _ := env(3)
		tree := New(k, rt, servers(3))
		cl := actor.NewClient(rt, 0)
		want := map[int]int{}
		for i, raw := range keys {
			key := int(raw % 500)
			tree.Insert(cl, key, i, nil)
			want[key] = i
			k.RunUntilIdle()
		}
		for key, val := range want {
			var got interface{}
			tree.Lookup(cl, key, func(v interface{}) { got = v })
			k.RunUntilIdle()
			if got != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestElasticityColocatesInnerFamilies(t *testing.T) {
	k, c, rt, prof := env(4)
	tree := New(k, rt, servers(4))
	cl := actor.NewClient(rt, 0)
	for i := 0; i < 400; i++ {
		tree.Insert(cl, i, i, nil)
		k.RunUntilIdle()
	}
	mgr := emr.New(k, c, rt, prof, epl.MustParse(PolicySrc),
		emr.Config{Period: sim.Second, MinResidence: sim.Millisecond})
	mgr.Start()
	// Keep a light lookup load going.
	k.Every(10*sim.Millisecond, func() bool {
		tree.Lookup(cl, int(k.Now())%400, nil)
		return k.Now() < sim.Time(6*sim.Second)
	})
	k.Run(sim.Time(8 * sim.Second))

	// All inner nodes should have converged onto one server.
	srvs := map[cluster.MachineID]bool{}
	for _, in := range tree.Inners {
		srvs[rt.ServerOf(in)] = true
	}
	if len(srvs) != 1 {
		t.Fatalf("inner nodes on %d servers, want 1", len(srvs))
	}
	// Leaves should stay spread out.
	leafSrvs := map[cluster.MachineID]bool{}
	for _, lf := range tree.Leaves {
		leafSrvs[rt.ServerOf(lf)] = true
	}
	if len(leafSrvs) < 2 {
		t.Fatalf("leaves collapsed onto %d servers", len(leafSrvs))
	}
}
