// Package bptree is the distributed B+ tree application of Table 1: inner
// nodes and leaf nodes are actors; lookups and inserts route from the root
// through inner nodes to a leaf, and nodes split as they fill, growing the
// tree upward.
//
// Its two elasticity rules keep parent and child inner nodes together (a
// lookup always traverses that edge) while spreading leaf nodes — where the
// data and the per-key work live — across servers.
package bptree

import (
	"math"
	"sort"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// PolicySrc is Table 1's B+ tree policy: colocate parent-child inner nodes,
// keep leaf nodes on separate servers.
const PolicySrc = `
InnerNode(c) in ref(InnerNode(p).children) => colocate(p, c);
true => separate(LeafNode(a), LeafNode(b));
`

// Schema declares the application's actor classes.
func Schema() *epl.Schema {
	return epl.NewSchema(
		epl.Class("InnerNode", []string{"lookup", "insert", "childSplit"}, []string{"children"}),
		epl.Class("LeafNode", []string{"lookup", "insert"}, nil),
	)
}

// Fanout is the maximum number of keys per node before splitting.
const Fanout = 8

const (
	innerCost = 100 * sim.Microsecond
	leafCost  = 400 * sim.Microsecond
)

// op carries a tree operation.
type op struct {
	Key   int
	Value int
}

// split reports a node split: Right covers keys >= SepKey.
type split struct {
	SepKey int
	Right  actor.Ref
}

// Tree is a deployed B+ tree. The facade tracks the root and parent links
// (the paper's AEON implementation routes the same bookkeeping through a
// facade actor); node contents live in the actors.
type Tree struct {
	K  *sim.Kernel
	RT *actor.Runtime

	Root   actor.Ref
	Inners []actor.Ref
	Leaves []actor.Ref

	parent map[actor.Ref]actor.Ref
	srvs   []cluster.MachineID
	next   int
}

type leafNode struct {
	tree    *Tree
	keys    []int
	vals    []int
	high    int       // exclusive upper bound of this leaf's key range
	sibling actor.Ref // right sibling (B-link pointer)
}

func (l *leafNode) Receive(ctx *actor.Context, msg actor.Message) {
	o, _ := msg.Arg.(op)
	// B-link forwarding: a key beyond this leaf's range chases the right
	// sibling, which keeps routing correct while a split is still
	// propagating to the parent.
	if (msg.Method == "lookup" || msg.Method == "insert") && o.Key >= l.high {
		ctx.Use(innerCost)
		ctx.Forward(l.sibling, msg.Method, o, msg.Size)
		return
	}
	switch msg.Method {
	case "lookup":
		ctx.Use(leafCost)
		i := sort.SearchInts(l.keys, o.Key)
		if i < len(l.keys) && l.keys[i] == o.Key {
			ctx.Reply(l.vals[i], 64)
		} else {
			ctx.Reply(nil, 16)
		}
	case "insert":
		ctx.Use(leafCost)
		i := sort.SearchInts(l.keys, o.Key)
		if i < len(l.keys) && l.keys[i] == o.Key {
			l.vals[i] = o.Value
		} else {
			l.keys = insertAt(l.keys, i, o.Key)
			l.vals = insertAt(l.vals, i, o.Value)
		}
		ctx.SetMemSize(int64(len(l.keys)) * 128)
		if len(l.keys) > Fanout {
			mid := len(l.keys) / 2
			right := &leafNode{
				tree:    l.tree,
				keys:    append([]int(nil), l.keys[mid:]...),
				vals:    append([]int(nil), l.vals[mid:]...),
				high:    l.high,
				sibling: l.sibling,
			}
			l.keys = l.keys[:mid]
			l.vals = l.vals[:mid]
			rref := l.tree.spawnLeaf(right)
			l.high = right.keys[0]
			l.sibling = rref
			l.tree.onSplit(ctx.Self(), split{SepKey: right.keys[0], Right: rref})
		}
		ctx.Reply(nil, 16)
	}
}

type innerNode struct {
	tree     *Tree
	keys     []int
	children []actor.Ref
	high     int       // exclusive upper bound of this node's key range
	sibling  actor.Ref // right sibling (B-link pointer)
}

func (n *innerNode) childFor(key int) actor.Ref {
	return n.children[sort.SearchInts(n.keys, key+1)]
}

func (n *innerNode) Receive(ctx *actor.Context, msg actor.Message) {
	switch msg.Method {
	case "lookup", "insert":
		o, _ := msg.Arg.(op)
		ctx.Use(innerCost)
		if o.Key >= n.high {
			ctx.Forward(n.sibling, msg.Method, o, msg.Size)
			return
		}
		ctx.Forward(n.childFor(o.Key), msg.Method, o, msg.Size)
	case "childSplit":
		sp, _ := msg.Arg.(split)
		ctx.Use(innerCost)
		i := sort.SearchInts(n.keys, sp.SepKey)
		n.keys = insertAt(n.keys, i, sp.SepKey)
		n.children = insertAt(n.children, i+1, sp.Right)
		ctx.SetProp("children", n.innerChildren())
		if len(n.keys) > Fanout {
			mid := len(n.keys) / 2
			sep := n.keys[mid]
			right := &innerNode{
				tree:     n.tree,
				keys:     append([]int(nil), n.keys[mid+1:]...),
				children: append([]actor.Ref(nil), n.children[mid+1:]...),
				high:     n.high,
				sibling:  n.sibling,
			}
			n.keys = n.keys[:mid]
			n.children = n.children[:mid+1]
			ctx.SetProp("children", n.innerChildren())
			rref := n.tree.spawnInner(right)
			n.high = sep
			n.sibling = rref
			for _, c := range right.children {
				n.tree.parent[c] = rref
			}
			n.tree.RT.SetProp(rref, "children", right.innerChildren())
			n.tree.onSplit(ctx.Self(), split{SepKey: sep, Right: rref})
		}
	}
}

// innerChildren returns only the children that are inner nodes, for the
// colocation property (leaves deliberately separate instead).
func (n *innerNode) innerChildren() []actor.Ref {
	var out []actor.Ref
	for _, c := range n.children {
		if n.tree.RT.TypeOf(c) == "InnerNode" {
			out = append(out, c)
		}
	}
	return out
}

func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// New builds an empty tree (a single leaf root) spreading nodes round-robin
// over servers.
func New(k *sim.Kernel, rt *actor.Runtime, servers []cluster.MachineID) *Tree {
	t := &Tree{K: k, RT: rt, srvs: servers, parent: map[actor.Ref]actor.Ref{}}
	t.Root = t.spawnLeaf(&leafNode{tree: t, high: math.MaxInt})
	return t
}

func (t *Tree) nextSrv() cluster.MachineID {
	s := t.srvs[t.next%len(t.srvs)]
	t.next++
	return s
}

func (t *Tree) spawnLeaf(l *leafNode) actor.Ref {
	ref := t.RT.SpawnOn("LeafNode", l, t.nextSrv())
	t.Leaves = append(t.Leaves, ref)
	return ref
}

func (t *Tree) spawnInner(n *innerNode) actor.Ref {
	ref := t.RT.SpawnOn("InnerNode", n, t.nextSrv())
	t.Inners = append(t.Inners, ref)
	return ref
}

// onSplit routes a split to the splitting node's parent, or grows a new
// root when the root itself split. Called from inside node handlers (the
// simulator is single-threaded, so facade state is safe to touch).
func (t *Tree) onSplit(left actor.Ref, sp split) {
	t.parent[sp.Right] = t.parent[left]
	if left == t.Root {
		root := &innerNode{
			tree: t, keys: []int{sp.SepKey},
			children: []actor.Ref{left, sp.Right},
			high:     math.MaxInt,
		}
		rootRef := t.spawnInner(root)
		t.RT.SetProp(rootRef, "children", root.innerChildren())
		t.parent[left] = rootRef
		t.parent[sp.Right] = rootRef
		t.Root = rootRef
		return
	}
	p := t.parent[left]
	cl := actor.NewClient(t.RT, t.RT.ServerOf(p))
	cl.Send(p, "childSplit", sp, 64)
}

// Insert writes key=value through the root.
func (t *Tree) Insert(cl *actor.Client, key, value int, done func()) {
	cl.Request(t.Root, "insert", op{Key: key, Value: value}, 128, func(sim.Duration, interface{}) {
		if done != nil {
			done()
		}
	})
}

// Lookup reads a key through the root.
func (t *Tree) Lookup(cl *actor.Client, key int, done func(value interface{})) {
	cl.Request(t.Root, "lookup", op{Key: key}, 128, func(_ sim.Duration, reply interface{}) {
		if done != nil {
			done(reply)
		}
	})
}

// Depth reports the tree height (1 = a single leaf root).
func (t *Tree) Depth() int {
	d := 1
	ref := t.Root
	for t.RT.TypeOf(ref) == "InnerNode" {
		d++
		// Follow the leftmost child via the parent map inverse: cheapest is
		// to scan for a node whose parent is ref.
		var next actor.Ref
		for c, p := range t.parent {
			if p == ref {
				next = c
				break
			}
		}
		if next.Zero() {
			break
		}
		ref = next
	}
	return d
}
