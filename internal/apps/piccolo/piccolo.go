// Package piccolo is the Piccolo application of Table 1: distributed
// computation kernels over partitioned in-memory tables. Worker actors run
// iterative kernels that read from Table actors; Table 1's two rules balance
// worker CPU across servers and co-locate each worker with the table
// partition it reads from.
package piccolo

import (
	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// PolicySrc is Table 1's Piccolo policy.
const PolicySrc = `
server.cpu.perc > 80 or server.cpu.perc < 60 =>
    balance({Worker}, cpu);
Table(t) in ref(Worker(w).reads) => colocate(w, t);
`

// Schema declares the application's actor classes.
func Schema() *epl.Schema {
	return epl.NewSchema(
		epl.Class("Worker", []string{"kernel"}, []string{"reads"}),
		epl.Class("Table", []string{"get", "put"}, nil),
	)
}

const (
	getCost  = 50 * sim.Microsecond
	putCost  = 80 * sim.Microsecond
	cellSize = 512
)

// App is a deployed Piccolo computation.
type App struct {
	RT      *actor.Runtime
	Workers []actor.Ref
	Tables  []actor.Ref

	// KernelRuns counts completed kernel invocations per worker.
	KernelRuns []int
}

type tableState struct {
	cells map[int]int
}

func (t *tableState) Receive(ctx *actor.Context, msg actor.Message) {
	switch msg.Method {
	case "get":
		ctx.Use(getCost)
		key, _ := msg.Arg.(int)
		ctx.Reply(t.cells[key], cellSize)
	case "put":
		ctx.Use(putCost)
		key, _ := msg.Arg.(int)
		t.cells[key] = t.cells[key] + 1
		ctx.SetMemSize(int64(len(t.cells)) * cellSize)
	}
}

type workerState struct {
	app        *App
	idx        int
	table      actor.Ref
	kernelCost sim.Duration
	reads      int // gets per kernel run
	period     sim.Duration
}

func (w *workerState) Receive(ctx *actor.Context, msg actor.Message) {
	if msg.Method != "kernel" {
		return
	}
	ctx.Use(w.kernelCost)
	ctx.SetProp("reads", []actor.Ref{w.table})
	for i := 0; i < w.reads; i++ {
		ctx.Send(w.table, "get", i, 64)
	}
	ctx.Send(w.table, "put", w.idx, 64)
	w.app.KernelRuns[w.idx]++
	ctx.SendAfter(w.period, ctx.Self(), "kernel", nil, 16)
}

// Build deploys workers and their table partitions. kernelCost varies per
// worker (±50% around base) so CPU load is uneven, exercising the balance
// rule; workers and their tables are deliberately spawned on different
// servers so the colocate rule has work to do.
func Build(k *sim.Kernel, rt *actor.Runtime, servers []cluster.MachineID, workers int, baseCost sim.Duration) *App {
	app := &App{RT: rt, KernelRuns: make([]int, workers)}
	for i := 0; i < workers; i++ {
		table := rt.SpawnOn("Table", &tableState{cells: map[int]int{}}, servers[(i+1)%len(servers)])
		cost := baseCost + sim.Duration(i%3)*baseCost/2
		w := rt.SpawnOn("Worker", &workerState{
			app: app, idx: i, table: table,
			kernelCost: cost, reads: 4, period: 50 * sim.Millisecond,
		}, servers[i%len(servers)])
		app.Tables = append(app.Tables, table)
		app.Workers = append(app.Workers, w)
	}
	return app
}

// Start kicks every worker's kernel loop.
func (app *App) Start(k *sim.Kernel, site cluster.MachineID) {
	cl := actor.NewClient(app.RT, site)
	for _, w := range app.Workers {
		cl.Send(w, "kernel", nil, 16)
	}
}
