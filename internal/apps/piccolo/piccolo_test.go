package piccolo

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func TestPolicyChecksAgainstSchema(t *testing.T) {
	pol := epl.MustParse(PolicySrc)
	if _, err := epl.Check(pol, Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestKernelsRunAndReadTables(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Medium)
	rt := actor.NewRuntime(k, c)
	_ = profile.New(k, c, rt)
	app := Build(k, rt, []cluster.MachineID{0, 1}, 4, 2*sim.Millisecond)
	app.Start(k, 0)
	k.Run(sim.Time(2 * sim.Second))
	for i, runs := range app.KernelRuns {
		if runs == 0 {
			t.Fatalf("worker %d never ran", i)
		}
	}
}

func TestElasticityColocatesWorkerWithTable(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 4, cluster.M1Medium)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	app := Build(k, rt, []cluster.MachineID{0, 1, 2, 3}, 6, 2*sim.Millisecond)
	// Workers and tables start on different servers by construction.
	split := 0
	for i, w := range app.Workers {
		if rt.ServerOf(w) != rt.ServerOf(app.Tables[i]) {
			split++
		}
	}
	if split == 0 {
		t.Fatal("test setup should start workers away from their tables")
	}
	mgr := emr.New(k, c, rt, prof, epl.MustParse(PolicySrc),
		emr.Config{Period: sim.Second, MinResidence: sim.Millisecond})
	mgr.Start()
	app.Start(k, 0)
	k.Run(sim.Time(10 * sim.Second))
	for i, w := range app.Workers {
		if rt.ServerOf(w) != rt.ServerOf(app.Tables[i]) {
			t.Fatalf("worker %d still away from its table", i)
		}
	}
}
