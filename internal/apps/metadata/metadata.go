// Package metadata is the Metadata Server application of §3.3 and §5.3
// (Fig. 5): Folder actors and File actors serve remote clients. Opening a
// folder implies accessing the files contained in it, which is why the
// paper's rule both reserves an idle server for a hot folder and colocates
// its files with it — and why the application-agnostic default rule (move
// only the hot folder) gains nothing.
package metadata

import (
	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// PolicySrc is the §3.3 Metadata Server rule, verbatim.
const PolicySrc = `
server.cpu.perc > 80 and
client.call(Folder(fo).open).perc > 40 and
File(fi) in ref(fo.files) =>
    reserve(fo, cpu); colocate(fo, fi);
`

// Schema declares the application's actor classes for policy checking.
func Schema() *epl.Schema {
	return epl.NewSchema(
		epl.Class("Folder", []string{"open"}, []string{"files"}),
		epl.Class("File", []string{"read"}, nil),
	)
}

// Per-operation CPU costs. File reads dominate so that moving a folder
// without its files relieves almost nothing.
const (
	openCost = 5 * sim.Millisecond
	readCost = 20 * sim.Millisecond
	reqSize  = 128
	repSize  = 1024
)

// App is a deployed metadata server.
type App struct {
	RT      *actor.Runtime
	Folders []actor.Ref
	Files   [][]actor.Ref
}

// folderState forwards each open to the next file (round robin) in the
// folder; the file replies to the client.
type folderState struct {
	files []actor.Ref
	next  int
	init  bool
}

func (f *folderState) Receive(ctx *actor.Context, msg actor.Message) {
	switch msg.Method {
	case "init":
		ctx.SetProp("files", f.files)
		ctx.SetMemSize(64 << 10)
		f.init = true
	case "open":
		ctx.Use(openCost)
		if len(f.files) == 0 {
			ctx.Reply(nil, repSize)
			return
		}
		target := f.files[f.next%len(f.files)]
		f.next++
		ctx.Forward(target, "read", msg.Arg, msg.Size)
	}
}

type fileState struct{}

func (fileState) Receive(ctx *actor.Context, msg actor.Message) {
	switch msg.Method {
	case "init":
		ctx.SetMemSize(256 << 10)
	case "read":
		ctx.Use(readCost)
		ctx.Reply(nil, repSize)
	}
}

// Build deploys folders×filesPer actors on srv and publishes the folder →
// files reference properties.
func Build(k *sim.Kernel, rt *actor.Runtime, srv cluster.MachineID, folders, filesPer int) *App {
	app := &App{RT: rt}
	boot := actor.NewClient(rt, srv)
	for i := 0; i < folders; i++ {
		var files []actor.Ref
		for j := 0; j < filesPer; j++ {
			fr := rt.SpawnOn("File", fileState{}, srv)
			boot.Send(fr, "init", nil, 1)
			files = append(files, fr)
		}
		fo := rt.SpawnOn("Folder", &folderState{files: files}, srv)
		boot.Send(fo, "init", nil, 1)
		app.Folders = append(app.Folders, fo)
		app.Files = append(app.Files, files)
	}
	return app
}

// HotWeights returns the §5.3 request skew: folder 0 receives `hotFrac` of
// all requests and the rest share the remainder evenly.
func HotWeights(folders int, hotFrac float64) []float64 {
	w := make([]float64, folders)
	w[0] = hotFrac
	for i := 1; i < folders; i++ {
		w[i] = (1 - hotFrac) / float64(folders-1)
	}
	return w
}
