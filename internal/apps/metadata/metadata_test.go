package metadata

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/apps/workload"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func TestPolicyChecksAgainstSchema(t *testing.T) {
	pol := epl.MustParse(PolicySrc)
	if _, err := epl.Check(pol, Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestOpenTouchesFolderAndFile(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	app := Build(k, rt, 0, 2, 3)
	k.RunUntilIdle()
	cl := actor.NewClient(rt, 1)
	var lat sim.Duration
	cl.Request(app.Folders[0], "open", nil, reqSize, func(l sim.Duration, _ interface{}) { lat = l })
	k.RunUntilIdle()
	// Latency must cover folder open + file read.
	if lat < openCost+readCost {
		t.Fatalf("latency %v below processing cost", lat)
	}
}

func TestFolderPublishesFilesProp(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 1, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	app := Build(k, rt, 0, 1, 4)
	k.RunUntilIdle()
	refs := rt.Props(app.Folders[0], "files")
	if len(refs) != 4 {
		t.Fatalf("files prop = %d refs, want 4", len(refs))
	}
}

func TestRoundRobinSpreadsAcrossFiles(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 1, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	app := Build(k, rt, 0, 1, 4)
	k.RunUntilIdle()
	prof.Reset()
	cl := actor.NewClient(rt, 0)
	for i := 0; i < 8; i++ {
		cl.Request(app.Folders[0], "open", nil, reqSize, nil)
	}
	k.RunUntilIdle()
	snap := prof.Snapshot(nil)
	for _, fr := range app.Files[0] {
		ai := snap.Actor(fr)
		got := int64(0)
		for _, cs := range ai.Calls {
			if cs.Method == "read" {
				got += cs.Count
			}
		}
		if got != 2 {
			t.Fatalf("file %v got %d reads, want 2", fr, got)
		}
	}
}

func TestHotWeights(t *testing.T) {
	w := HotWeights(4, 0.5)
	if w[0] != 0.5 {
		t.Fatalf("hot weight = %v", w[0])
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum %v", sum)
	}
}

// End-to-end: under the §3.3 rule, the hot folder gets reserved onto the
// spare server and its files follow.
func TestElasticityMovesHotFolderWithFiles(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	app := Build(k, rt, 0, 4, 4)
	k.RunUntilIdle()

	pol := epl.MustParse(PolicySrc)
	mgr := emr.New(k, c, rt, prof, pol, emr.Config{Period: 2 * sim.Second, MinResidence: sim.Millisecond})
	mgr.Start()

	pick := workload.SkewedPicker(k, HotWeights(4, 0.5))
	for i := 0; i < 16; i++ {
		cl := &workload.ClosedLoop{
			K:      k,
			Client: actor.NewClient(rt, 1),
			Think:  5 * sim.Millisecond,
			Next: func() workload.Request {
				return workload.Request{Target: app.Folders[pick()], Method: "open", Size: reqSize}
			},
		}
		cl.Start()
	}
	k.Run(sim.Time(20 * sim.Second))

	hotSrv := rt.ServerOf(app.Folders[0])
	if hotSrv != 1 {
		t.Fatalf("hot folder on %d, want reserved server 1", hotSrv)
	}
	moved := 0
	for _, fr := range app.Files[0] {
		if rt.ServerOf(fr) == hotSrv {
			moved++
		}
	}
	if moved != len(app.Files[0]) {
		t.Fatalf("only %d/%d hot files colocated with folder", moved, len(app.Files[0]))
	}
	// Cold folders stay behind.
	for i := 1; i < 4; i++ {
		if rt.ServerOf(app.Folders[i]) != 0 {
			t.Fatalf("cold folder %d moved", i)
		}
	}
}
