// Package halo is the Halo Presence Service of §3.3 and §5.7 (Fig. 11): a
// player-liveness tracker modeled on Halo 4's actor-based presence service.
// Game consoles (clients) periodically send heartbeats to a randomly chosen
// Router actor; the router forwards to the Session actor managing the
// player, which forwards to the Player actor; the player acknowledges,
// which is the latency clients observe.
//
// A Player belongs to exactly one Session at a time, so the interaction
// rule co-locates each Player with its Session (and pins the session); the
// resource rule balances Router CPU across servers.
package halo

import (
	"sort"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// InterPolicySrc is the §3.3 interaction rule, verbatim.
const InterPolicySrc = `
Player(p) in ref(Session(s).players) =>
    pin(s); colocate(p, s);
`

// RouterPolicySrc is the §5.7 resource rule balancing Router CPU.
const RouterPolicySrc = `
server.cpu.perc > 80 or server.cpu.perc < 60 =>
    balance({Router}, cpu);
`

// FullPolicySrc combines both rules (Table 1's two Halo rules).
const FullPolicySrc = RouterPolicySrc + InterPolicySrc

// Schema declares the application's actor classes.
func Schema() *epl.Schema {
	return epl.NewSchema(
		epl.Class("Router", []string{"heartbeat"}, nil),
		epl.Class("Session", []string{"presence"}, []string{"players"}),
		epl.Class("Player", []string{"update"}, nil),
	)
}

// Costs and sizes per hop.
const (
	// DecryptCost is charged by routers when decryption is enabled (§5.7's
	// resource-rule experiment overloads router servers with it).
	DecryptCost   = 8 * sim.Millisecond
	routeCost     = 200 * sim.Microsecond
	presenceCost  = 300 * sim.Microsecond
	updateCost    = 200 * sim.Microsecond
	heartbeatSize = 256
)

// App is a deployed presence service.
type App struct {
	K  *sim.Kernel
	RT *actor.Runtime

	Routers  []actor.Ref
	Sessions []actor.Ref
	Players  []actor.Ref

	sessionOf map[actor.Ref]actor.Ref // player -> session
	// Decrypt enables the CPU-heavy decryption step on routers.
	Decrypt bool
}

type routerState struct{ app *App }

func (r *routerState) Receive(ctx *actor.Context, msg actor.Message) {
	if msg.Method != "heartbeat" {
		return
	}
	if r.app.Decrypt {
		ctx.Use(DecryptCost)
	} else {
		ctx.Use(routeCost)
	}
	player, _ := msg.Arg.(actor.Ref)
	session := r.app.sessionOf[player]
	if session.Zero() {
		ctx.Reply(nil, 64)
		return
	}
	ctx.Forward(session, "presence", player, msg.Size)
}

type sessionState struct{ app *App }

func (s *sessionState) Receive(ctx *actor.Context, msg actor.Message) {
	switch msg.Method {
	case "presence":
		ctx.Use(presenceCost)
		player, _ := msg.Arg.(actor.Ref)
		ctx.Forward(player, "update", nil, msg.Size)
	case "sync":
		// Re-publish the membership property after joins.
		refs, _ := msg.Arg.([]actor.Ref)
		ctx.SetProp("players", refs)
	}
}

type playerState struct{}

func (playerState) Receive(ctx *actor.Context, msg actor.Message) {
	if msg.Method == "update" {
		ctx.Use(updateCost)
		ctx.Reply(nil, 64)
	}
}

// Build deploys routers and sessions round-robin over the given servers.
// Players join later via Join.
func Build(k *sim.Kernel, rt *actor.Runtime, routerSrvs, sessionSrvs []cluster.MachineID, routers, sessions int) *App {
	app := &App{K: k, RT: rt, sessionOf: map[actor.Ref]actor.Ref{}}
	for i := 0; i < routers; i++ {
		app.Routers = append(app.Routers,
			rt.SpawnOn("Router", &routerState{app: app}, routerSrvs[i%len(routerSrvs)]))
	}
	for i := 0; i < sessions; i++ {
		app.Sessions = append(app.Sessions,
			rt.SpawnOn("Session", &sessionState{app: app}, sessionSrvs[i%len(sessionSrvs)]))
	}
	return app
}

// Join creates a Player actor for a new client, assigns it to the session,
// and publishes the session's updated membership. The player is created via
// the runtime placement hook with the session as creator, matching §5.7:
// with the interaction rule installed the hook puts it on the session's
// server; otherwise placement is random.
func (app *App) Join(sessionIdx int) actor.Ref {
	session := app.Sessions[sessionIdx%len(app.Sessions)]
	player := app.RT.Spawn("Player", playerState{}, session)
	app.Players = append(app.Players, player)
	app.sessionOf[player] = session

	var members []actor.Ref
	for p, s := range app.sessionOf {
		if s == session {
			members = append(members, p)
		}
	}
	// Deterministic order for the property.
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	cl := actor.NewClient(app.RT, app.RT.ServerOf(session))
	cl.Send(session, "sync", members, 64)
	return player
}

// SessionOf reports the session a player belongs to.
func (app *App) SessionOf(p actor.Ref) actor.Ref { return app.sessionOf[p] }

// Heartbeat sends one heartbeat for the player through a random router and
// reports the round-trip latency to done.
func (app *App) Heartbeat(cl *actor.Client, player actor.Ref, done func(lat sim.Duration)) {
	router := app.Routers[app.K.Rand().Intn(len(app.Routers))]
	cl.Request(router, "heartbeat", player, heartbeatSize, func(lat sim.Duration, _ interface{}) {
		if done != nil {
			done(lat)
		}
	})
}
