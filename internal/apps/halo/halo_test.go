package halo

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func env(machines int) (*sim.Kernel, *cluster.Cluster, *actor.Runtime, *profile.Profiler) {
	k := sim.New(1)
	c := cluster.New(k, machines, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	return k, c, rt, prof
}

func ids(n int) []cluster.MachineID {
	out := make([]cluster.MachineID, n)
	for i := range out {
		out[i] = cluster.MachineID(i)
	}
	return out
}

func TestPoliciesCheckAgainstSchema(t *testing.T) {
	for _, src := range []string{InterPolicySrc, RouterPolicySrc, FullPolicySrc} {
		pol := epl.MustParse(src)
		if _, err := epl.Check(pol, Schema()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	k, _, rt, _ := env(4)
	app := Build(k, rt, ids(2), ids(4), 2, 2)
	p := app.Join(0)
	k.RunUntilIdle()
	var lat sim.Duration
	cl := actor.NewClient(rt, 3)
	app.Heartbeat(cl, p, func(l sim.Duration) { lat = l })
	k.RunUntilIdle()
	if lat < routeCost+presenceCost+updateCost {
		t.Fatalf("heartbeat latency %v below pipeline cost", lat)
	}
}

func TestJoinPublishesMembership(t *testing.T) {
	k, _, rt, _ := env(2)
	app := Build(k, rt, ids(1), ids(2), 1, 2)
	p1 := app.Join(0)
	p2 := app.Join(0)
	p3 := app.Join(1)
	k.RunUntilIdle()
	s0 := rt.Props(app.Sessions[0], "players")
	if len(s0) != 2 || s0[0] != p1 || s0[1] != p2 {
		t.Fatalf("session 0 players = %v", s0)
	}
	s1 := rt.Props(app.Sessions[1], "players")
	if len(s1) != 1 || s1[0] != p3 {
		t.Fatalf("session 1 players = %v", s1)
	}
}

func TestInterRulePlacesJoinersWithSession(t *testing.T) {
	k, c, rt, prof := env(8)
	app := Build(k, rt, ids(8), ids(8), 8, 8)
	mgr := emr.New(k, c, rt, prof, epl.MustParse(InterPolicySrc),
		emr.Config{Period: 2 * sim.Second, MinResidence: sim.Millisecond})
	mgr.Start()
	for i := 0; i < 16; i++ {
		p := app.Join(i % 8)
		if rt.ServerOf(p) != rt.ServerOf(app.SessionOf(p)) {
			t.Fatalf("player %d not placed with its session at creation", i)
		}
	}
	k.Run(sim.Time(5 * sim.Second))
	// Sessions must be pinned by the rule.
	for _, s := range app.Sessions {
		if !rt.Pinned(s) {
			t.Fatal("session not pinned")
		}
	}
}

func TestColocationRepairsRandomPlacement(t *testing.T) {
	k, c, rt, prof := env(8)
	app := Build(k, rt, ids(8), ids(8), 8, 8)
	// No placement hook yet: join 16 players (random placement)...
	var players []actor.Ref
	for i := 0; i < 16; i++ {
		players = append(players, app.Join(i%8))
	}
	misplaced := 0
	for _, p := range players {
		if rt.ServerOf(p) != rt.ServerOf(app.SessionOf(p)) {
			misplaced++
		}
	}
	if misplaced == 0 {
		t.Skip("random placement happened to colocate everything")
	}
	// ...then start the EMR: the rule must repair placement.
	mgr := emr.New(k, c, rt, prof, epl.MustParse(InterPolicySrc),
		emr.Config{Period: 2 * sim.Second, MinResidence: sim.Millisecond})
	mgr.Start()
	// Drive some heartbeats so the run is realistic.
	cl := actor.NewClient(rt, 0)
	k.Every(100*sim.Millisecond, func() bool {
		for _, p := range players {
			app.Heartbeat(cl, p, nil)
		}
		return k.Now() < sim.Time(8*sim.Second)
	})
	k.Run(sim.Time(10 * sim.Second))
	for _, p := range players {
		if rt.ServerOf(p) != rt.ServerOf(app.SessionOf(p)) {
			t.Fatalf("player %v still away from its session", p)
		}
	}
}

func TestColocatedHeartbeatFasterThanRemote(t *testing.T) {
	k, _, rt, _ := env(3)
	app := Build(k, rt, ids(1), []cluster.MachineID{1}, 1, 1)
	p := app.Join(0)
	k.RunUntilIdle()
	cl := actor.NewClient(rt, 2)

	measure := func() sim.Duration {
		var lat sim.Duration
		app.Heartbeat(cl, p, func(l sim.Duration) { lat = l })
		k.RunUntilIdle()
		return lat
	}
	// Player placed randomly; force it away from its session, then measure.
	rt.Migrate(p, 0, nil)
	k.RunUntilIdle()
	remote := measure()
	rt.Migrate(p, 1, nil)
	k.RunUntilIdle()
	local := measure()
	if local >= remote {
		t.Fatalf("colocated latency %v not below remote %v", local, remote)
	}
}

func TestRouterBalanceSpreadsDecryptLoad(t *testing.T) {
	k, c, rt, prof := env(8)
	// All routers crowded onto 2 of 8 servers; decryption makes them hot.
	app := Build(k, rt, ids(2), ids(8), 8, 8)
	app.Decrypt = true
	for i := 0; i < 16; i++ {
		app.Join(i % 8)
	}
	mgr := emr.New(k, c, rt, prof, epl.MustParse(FullPolicySrc),
		emr.Config{Period: 2 * sim.Second, MinResidence: sim.Millisecond})
	mgr.Start()
	cl := actor.NewClient(rt, 7)
	k.Every(20*sim.Millisecond, func() bool {
		for _, p := range app.Players {
			app.Heartbeat(cl, p, nil)
		}
		return k.Now() < sim.Time(20*sim.Second)
	})
	k.Run(sim.Time(25 * sim.Second))

	srvs := map[cluster.MachineID]int{}
	for _, r := range app.Routers {
		srvs[rt.ServerOf(r)]++
	}
	if len(srvs) < 4 {
		t.Fatalf("routers still crowded on %d servers", len(srvs))
	}
}
