// Package workload provides the client drivers and latency recorders shared
// by the PLASMA example applications: closed-loop clients (send, wait for
// the reply, think, repeat — how the paper's Metadata Server and E-Store
// clients behave) and open-loop clients (fixed-rate fire-and-measure — how
// Halo consoles send heartbeats).
package workload

import (
	//lint:ignore DET002 only rand.Zipf over the kernel's seeded generator
	"math/rand"

	"plasma/internal/actor"
	"plasma/internal/metrics"
	"plasma/internal/sim"
)

// Recorder aggregates request latencies into a histogram and a time series
// of per-bucket means (the paper's latency-over-time figures).
type Recorder struct {
	Bucket sim.Duration

	Hist metrics.Histogram

	curStart sim.Time
	curSum   float64
	curN     int
	series   metrics.Series
}

// NewRecorder creates a recorder with the given time-bucket width.
func NewRecorder(bucket sim.Duration) *Recorder {
	return &Recorder{Bucket: bucket}
}

// Record adds one latency observation at virtual time now.
func (r *Recorder) Record(now sim.Time, lat sim.Duration) {
	ms := float64(lat) / float64(sim.Millisecond)
	r.Hist.Observe(ms)
	for now >= r.curStart+sim.Time(r.Bucket) {
		r.flush()
	}
	r.curSum += ms
	r.curN++
}

func (r *Recorder) flush() {
	if r.curN > 0 {
		r.series.Add(r.curStart.Seconds(), r.curSum/float64(r.curN))
	}
	r.curStart += sim.Time(r.Bucket)
	r.curSum, r.curN = 0, 0
}

// Series returns the completed per-bucket mean latency series (seconds vs
// milliseconds). The current partial bucket is flushed.
func (r *Recorder) Series() *metrics.Series {
	if r.curN > 0 {
		r.series.Add(r.curStart.Seconds(), r.curSum/float64(r.curN))
		r.curSum, r.curN = 0, 0
	}
	return &r.series
}

// Request describes one request a driver should issue.
type Request struct {
	Target actor.Ref
	Method string
	Arg    interface{}
	Size   int64
}

// ClosedLoop is a client that keeps one request outstanding: it sends,
// waits for the reply, records the latency, thinks, and repeats until
// stopped.
type ClosedLoop struct {
	K      *sim.Kernel
	Client *actor.Client
	Think  sim.Duration
	// Next picks the next request (called before every send).
	Next func() Request
	// Rec, when set, records request latencies.
	Rec *Recorder
	// OnReply, when set, observes every completed request.
	OnReply func(lat sim.Duration)

	stopped bool
}

// Start issues the first request.
func (c *ClosedLoop) Start() { c.step() }

// Stop ends the loop after the outstanding request completes.
func (c *ClosedLoop) Stop() { c.stopped = true }

func (c *ClosedLoop) step() {
	if c.stopped {
		return
	}
	req := c.Next()
	if req.Target.Zero() {
		c.K.After(c.Think, c.step)
		return
	}
	c.Client.Request(req.Target, req.Method, req.Arg, req.Size, func(lat sim.Duration, _ interface{}) {
		if c.Rec != nil {
			c.Rec.Record(c.K.Now(), lat)
		}
		if c.OnReply != nil {
			c.OnReply(lat)
		}
		c.K.After(c.Think, c.step)
	})
}

// OpenLoop fires requests at a fixed interval regardless of completions,
// recording each reply's latency.
type OpenLoop struct {
	K        *sim.Kernel
	Client   *actor.Client
	Interval sim.Duration
	Next     func() Request
	Rec      *Recorder
	OnReply  func(lat sim.Duration)

	stopped bool
}

// Start begins firing.
func (o *OpenLoop) Start() {
	o.K.Every(o.Interval, func() bool {
		if o.stopped {
			return false
		}
		req := o.Next()
		if !req.Target.Zero() {
			o.Client.Request(req.Target, req.Method, req.Arg, req.Size, func(lat sim.Duration, _ interface{}) {
				if o.Rec != nil {
					o.Rec.Record(o.K.Now(), lat)
				}
				if o.OnReply != nil {
					o.OnReply(lat)
				}
			})
		}
		return true
	})
}

// Stop ends the loop at the next firing.
func (o *OpenLoop) Stop() { o.stopped = true }

// SkewedPicker returns a function choosing index i with the given weights
// (need not sum to 1), deterministically from the kernel's random stream.
func SkewedPicker(k *sim.Kernel, weights []float64) func() int {
	var total float64
	for _, w := range weights {
		total += w
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	return func() int {
		x := k.Rand().Float64()
		for i, c := range cum {
			if x <= c {
				return i
			}
		}
		return len(cum) - 1
	}
}

// ZipfKeys draws keys from a seeded Zipf popularity distribution whose hot
// set occupies a contiguous, rotatable span of the key space — the
// streaming workloads' drifting hot-key model. Rank r is drawn Zipf(s) over
// [0, n); the hottest span ranks are interleaved across the span's blocks
// (key = offset + (r mod span/block)·block + r/(span/block)), so a
// block-partitioned deployment sees the hot load split across span/block
// partitions instead of piling the whole head into one; colder ranks map
// contiguously past the span. Rotate shifts the whole mapping by delta
// keys, moving the hot set onto previously cold partitions in one instant —
// the "skew shift" whose recovery time the stream experiments measure.
type ZipfKeys struct {
	n, span, block int
	offset         int
	z              *rand.Zipf
}

// NewZipfKeys builds the drawer: n keys total, Zipf exponent s (>1), a hot
// span of span keys interleaved in units of block (block must divide span).
func NewZipfKeys(k *sim.Kernel, s float64, n, span, block int) *ZipfKeys {
	if span%block != 0 || span > n {
		panic("workload: ZipfKeys span must be a multiple of block and <= n")
	}
	return &ZipfKeys{
		n: n, span: span, block: block,
		z: rand.NewZipf(k.Rand(), s, 1, uint64(n-1)),
	}
}

// Draw returns the next key.
func (z *ZipfKeys) Draw() int {
	r := int(z.z.Uint64())
	var key int
	if r < z.span {
		blocks := z.span / z.block
		key = (r%blocks)*z.block + r/blocks
	} else {
		key = r
	}
	return (key + z.offset) % z.n
}

// Rotate shifts the rank→key mapping by delta keys (the hot-set drift).
func (z *ZipfKeys) Rotate(delta int) {
	z.offset = ((z.offset+delta)%z.n + z.n) % z.n
}

// Offset reports the current rotation (for harness bookkeeping).
func (z *ZipfKeys) Offset() int { return z.offset }

// GeometricWeights returns E-Store's §5.5 request skew: the first element
// takes frac of the total, the second frac of the remainder, and so on.
func GeometricWeights(n int, frac float64) []float64 {
	w := make([]float64, n)
	remaining := 1.0
	for i := 0; i < n; i++ {
		if i == n-1 {
			w[i] = remaining
			break
		}
		w[i] = remaining * frac
		remaining -= w[i]
	}
	return w
}
