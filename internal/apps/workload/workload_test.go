package workload

import (
	"math"
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/sim"
)

func env() (*sim.Kernel, *actor.Runtime, actor.Ref) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	echo := actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(5 * sim.Millisecond)
		ctx.Reply("ok", 32)
	})
	return k, rt, rt.SpawnOn("Echo", echo, 0)
}

func TestClosedLoopKeepsOneOutstanding(t *testing.T) {
	k, rt, ref := env()
	count := 0
	loop := &ClosedLoop{
		K: k, Client: actor.NewClient(rt, 1), Think: 10 * sim.Millisecond,
		Next:    func() Request { return Request{Target: ref, Method: "m", Size: 8} },
		OnReply: func(sim.Duration) { count++ },
	}
	loop.Start()
	k.Run(sim.Time(200 * sim.Millisecond))
	// Cycle = ~5ms processing + network + 10ms think: roughly 12 requests.
	if count < 8 || count > 16 {
		t.Fatalf("completions = %d, want ~12", count)
	}
	loop.Stop()
	k.RunUntilIdle()
	final := count
	k.Run(k.Now() + sim.Time(100*sim.Millisecond))
	if count != final {
		t.Fatal("loop kept running after Stop")
	}
}

func TestClosedLoopSkipsZeroTarget(t *testing.T) {
	k, rt, ref := env()
	calls := 0
	loop := &ClosedLoop{
		K: k, Client: actor.NewClient(rt, 1), Think: 10 * sim.Millisecond,
		Next: func() Request {
			calls++
			if calls < 3 {
				return Request{} // not ready yet
			}
			return Request{Target: ref, Method: "m", Size: 8}
		},
	}
	loop.Start()
	k.Run(sim.Time(100 * sim.Millisecond))
	if calls < 3 {
		t.Fatalf("Next called %d times; zero target should retry", calls)
	}
	loop.Stop()
	k.RunUntilIdle()
}

func TestOpenLoopFiresAtRate(t *testing.T) {
	k, rt, ref := env()
	count := 0
	loop := &OpenLoop{
		K: k, Client: actor.NewClient(rt, 1), Interval: 20 * sim.Millisecond,
		Next:    func() Request { return Request{Target: ref, Method: "m", Size: 8} },
		OnReply: func(sim.Duration) { count++ },
	}
	loop.Start()
	k.Run(sim.Time(sim.Second))
	loop.Stop()
	k.RunUntilIdle()
	if count < 45 || count > 55 {
		t.Fatalf("completions = %d, want ~50", count)
	}
}

func TestRecorderBucketsAndHistogram(t *testing.T) {
	r := NewRecorder(sim.Second)
	r.Record(sim.Time(100*sim.Millisecond), 10*sim.Millisecond)
	r.Record(sim.Time(200*sim.Millisecond), 20*sim.Millisecond)
	r.Record(sim.Time(1500*sim.Millisecond), 40*sim.Millisecond)
	s := r.Series()
	if s.Len() != 2 {
		t.Fatalf("buckets = %d, want 2", s.Len())
	}
	if math.Abs(s.Y[0]-15) > 1e-9 {
		t.Fatalf("bucket 0 mean = %v, want 15", s.Y[0])
	}
	if math.Abs(s.Y[1]-40) > 1e-9 {
		t.Fatalf("bucket 1 mean = %v, want 40", s.Y[1])
	}
	if r.Hist.Count() != 3 {
		t.Fatalf("hist count = %d", r.Hist.Count())
	}
}

func TestRecorderSkipsEmptyBuckets(t *testing.T) {
	r := NewRecorder(sim.Second)
	r.Record(sim.Time(100*sim.Millisecond), 10*sim.Millisecond)
	r.Record(sim.Time(5500*sim.Millisecond), 30*sim.Millisecond)
	s := r.Series()
	if s.Len() != 2 {
		t.Fatalf("buckets = %d, want 2 (empty ones skipped)", s.Len())
	}
	if s.X[1] != 5 {
		t.Fatalf("second bucket at %v s, want 5", s.X[1])
	}
}

func TestSkewedPickerDistribution(t *testing.T) {
	k := sim.New(42)
	pick := SkewedPicker(k, []float64{0.5, 0.25, 0.25})
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[pick()]++
	}
	if counts[0] < 4700 || counts[0] > 5300 {
		t.Fatalf("hot index picked %d/10000, want ~5000", counts[0])
	}
	if counts[1]+counts[2] < 4700 {
		t.Fatalf("cold indices %d, %d", counts[1], counts[2])
	}
}

func TestGeometricWeightsSkew(t *testing.T) {
	w := GeometricWeights(40, 0.35)
	if len(w) != 40 {
		t.Fatalf("len = %d", len(w))
	}
	if math.Abs(w[0]-0.35) > 1e-9 {
		t.Fatalf("w[0] = %v", w[0])
	}
	// Second takes 35% of the remaining 65%.
	if math.Abs(w[1]-0.65*0.35) > 1e-9 {
		t.Fatalf("w[1] = %v", w[1])
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestZipfKeysInterleavesHotSpan(t *testing.T) {
	k := sim.New(1)
	// span 16 in blocks of 4: rank r < 16 maps to (r%4)*4 + r/4, spreading
	// the head across all four blocks instead of packing it into one.
	z := NewZipfKeys(k, 1.1, 64, 16, 4)
	counts := make([]int, 4) // hits per block of the hot span
	for i := 0; i < 20000; i++ {
		key := z.Draw()
		if key < 16 {
			counts[key/4]++
		}
	}
	for b, n := range counts {
		if n == 0 {
			t.Fatalf("hot-span block %d never drawn; interleave broken (counts=%v)", b, counts)
		}
	}
	// The four hottest ranks (0..3) land one per block, so no block may
	// dominate: the spread between blocks stays well under the Zipf head's
	// own skew.
	min, max := counts[0], counts[0]
	for _, n := range counts[1:] {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if float64(max) > 3*float64(min) {
		t.Fatalf("hot span badly unbalanced across blocks: %v", counts)
	}
}

func TestZipfKeysRotateMovesHotSet(t *testing.T) {
	k := sim.New(1)
	z := NewZipfKeys(k, 1.1, 64, 16, 4)
	if z.Offset() != 0 {
		t.Fatalf("fresh drawer offset = %d, want 0", z.Offset())
	}
	z.Rotate(32)
	if z.Offset() != 32 {
		t.Fatalf("offset after Rotate(32) = %d, want 32", z.Offset())
	}
	// Post-rotation the hot span occupies [32, 48): the bulk of draws must
	// land there and none of the old hot ranks keep their old keys.
	hits := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		key := z.Draw()
		if key >= 32 && key < 48 {
			hits++
		}
	}
	if hits < draws/2 {
		t.Fatalf("only %d/%d draws in the rotated hot span; rotation did not move the head", hits, draws)
	}
	// Rotation wraps modulo n and composes.
	z.Rotate(40)
	if z.Offset() != (32+40)%64 {
		t.Fatalf("offset after second rotate = %d, want %d", z.Offset(), (32+40)%64)
	}
	z.Rotate(-8)
	if z.Offset() != 0 {
		t.Fatalf("negative rotate did not wrap: offset = %d, want 0", z.Offset())
	}
}

func TestZipfKeysDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []int {
		k := sim.New(seed)
		z := NewZipfKeys(k, 1.05, 2048, 256, 64)
		out := make([]int, 256)
		for i := range out {
			if i == 128 {
				z.Rotate(1024)
			}
			out[i] = z.Draw()
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical draw sequence")
	}
}
