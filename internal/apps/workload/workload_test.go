package workload

import (
	"math"
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/sim"
)

func env() (*sim.Kernel, *actor.Runtime, actor.Ref) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	echo := actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(5 * sim.Millisecond)
		ctx.Reply("ok", 32)
	})
	return k, rt, rt.SpawnOn("Echo", echo, 0)
}

func TestClosedLoopKeepsOneOutstanding(t *testing.T) {
	k, rt, ref := env()
	count := 0
	loop := &ClosedLoop{
		K: k, Client: actor.NewClient(rt, 1), Think: 10 * sim.Millisecond,
		Next:    func() Request { return Request{Target: ref, Method: "m", Size: 8} },
		OnReply: func(sim.Duration) { count++ },
	}
	loop.Start()
	k.Run(sim.Time(200 * sim.Millisecond))
	// Cycle = ~5ms processing + network + 10ms think: roughly 12 requests.
	if count < 8 || count > 16 {
		t.Fatalf("completions = %d, want ~12", count)
	}
	loop.Stop()
	k.RunUntilIdle()
	final := count
	k.Run(k.Now() + sim.Time(100*sim.Millisecond))
	if count != final {
		t.Fatal("loop kept running after Stop")
	}
}

func TestClosedLoopSkipsZeroTarget(t *testing.T) {
	k, rt, ref := env()
	calls := 0
	loop := &ClosedLoop{
		K: k, Client: actor.NewClient(rt, 1), Think: 10 * sim.Millisecond,
		Next: func() Request {
			calls++
			if calls < 3 {
				return Request{} // not ready yet
			}
			return Request{Target: ref, Method: "m", Size: 8}
		},
	}
	loop.Start()
	k.Run(sim.Time(100 * sim.Millisecond))
	if calls < 3 {
		t.Fatalf("Next called %d times; zero target should retry", calls)
	}
	loop.Stop()
	k.RunUntilIdle()
}

func TestOpenLoopFiresAtRate(t *testing.T) {
	k, rt, ref := env()
	count := 0
	loop := &OpenLoop{
		K: k, Client: actor.NewClient(rt, 1), Interval: 20 * sim.Millisecond,
		Next:    func() Request { return Request{Target: ref, Method: "m", Size: 8} },
		OnReply: func(sim.Duration) { count++ },
	}
	loop.Start()
	k.Run(sim.Time(sim.Second))
	loop.Stop()
	k.RunUntilIdle()
	if count < 45 || count > 55 {
		t.Fatalf("completions = %d, want ~50", count)
	}
}

func TestRecorderBucketsAndHistogram(t *testing.T) {
	r := NewRecorder(sim.Second)
	r.Record(sim.Time(100*sim.Millisecond), 10*sim.Millisecond)
	r.Record(sim.Time(200*sim.Millisecond), 20*sim.Millisecond)
	r.Record(sim.Time(1500*sim.Millisecond), 40*sim.Millisecond)
	s := r.Series()
	if s.Len() != 2 {
		t.Fatalf("buckets = %d, want 2", s.Len())
	}
	if math.Abs(s.Y[0]-15) > 1e-9 {
		t.Fatalf("bucket 0 mean = %v, want 15", s.Y[0])
	}
	if math.Abs(s.Y[1]-40) > 1e-9 {
		t.Fatalf("bucket 1 mean = %v, want 40", s.Y[1])
	}
	if r.Hist.Count() != 3 {
		t.Fatalf("hist count = %d", r.Hist.Count())
	}
}

func TestRecorderSkipsEmptyBuckets(t *testing.T) {
	r := NewRecorder(sim.Second)
	r.Record(sim.Time(100*sim.Millisecond), 10*sim.Millisecond)
	r.Record(sim.Time(5500*sim.Millisecond), 30*sim.Millisecond)
	s := r.Series()
	if s.Len() != 2 {
		t.Fatalf("buckets = %d, want 2 (empty ones skipped)", s.Len())
	}
	if s.X[1] != 5 {
		t.Fatalf("second bucket at %v s, want 5", s.X[1])
	}
}

func TestSkewedPickerDistribution(t *testing.T) {
	k := sim.New(42)
	pick := SkewedPicker(k, []float64{0.5, 0.25, 0.25})
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[pick()]++
	}
	if counts[0] < 4700 || counts[0] > 5300 {
		t.Fatalf("hot index picked %d/10000, want ~5000", counts[0])
	}
	if counts[1]+counts[2] < 4700 {
		t.Fatalf("cold indices %d, %d", counts[1], counts[2])
	}
}

func TestGeometricWeightsSkew(t *testing.T) {
	w := GeometricWeights(40, 0.35)
	if len(w) != 40 {
		t.Fatalf("len = %d", len(w))
	}
	if math.Abs(w[0]-0.35) > 1e-9 {
		t.Fatalf("w[0] = %v", w[0])
	}
	// Second takes 35% of the remaining 65%.
	if math.Abs(w[1]-0.65*0.35) > 1e-9 {
		t.Fatalf("w[1] = %v", w[1])
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}
