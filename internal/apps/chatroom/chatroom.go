// Package chatroom is the online chat room microbenchmark of §5.2 (Table 3):
// users, each represented by an actor, exchange messages with others in the
// same room. It is deployed on a single instance and used to measure the
// profiling runtime's overhead (PLASMA vs vanilla execution time).
package chatroom

import (
	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/sim"
)

// PolicySrc is a minimal policy: the overhead experiment only needs the
// profiler running; actors are stationary on one instance. The envelope
// annotation moves the model checker's overload line up to the rule's
// deliberate 95% trigger — tolerating load right below it is the point.
const PolicySrc = `
# lint:envelope overload=96
server.cpu.perc > 95 => balance({User}, cpu);`

// Costs for one message hop. The room fan-out dominates.
const (
	postCost    = 300 * sim.Microsecond
	deliverCost = 120 * sim.Microsecond
	msgSize     = 256
)

// App is one chat room deployment.
type App struct {
	RT    *actor.Runtime
	Room  actor.Ref
	Users []actor.Ref

	// Delivered counts user-received messages.
	Delivered int64
}

// roomState broadcasts each post to every user in the room.
type roomState struct {
	app *App
}

func (r *roomState) Receive(ctx *actor.Context, msg actor.Message) {
	switch msg.Method {
	case "post":
		ctx.Use(postCost)
		for _, u := range r.app.Users {
			if u != msg.Sender {
				ctx.Send(u, "deliver", msg.Arg, msgSize)
			}
		}
	}
}

// userState processes deliveries and (optionally) keeps posting.
type userState struct {
	app *App
}

func (u *userState) Receive(ctx *actor.Context, msg actor.Message) {
	switch msg.Method {
	case "deliver":
		ctx.Use(deliverCost)
		u.app.Delivered++
	case "post":
		ctx.Use(deliverCost)
		ctx.Send(u.app.Room, "post", msg.Arg, msgSize)
	}
}

// Build deploys a room with n users on the given server.
func Build(rt *actor.Runtime, srv cluster.MachineID, n int) *App {
	app := &App{RT: rt}
	app.Room = rt.SpawnOn("Room", &roomState{app: app}, srv)
	for i := 0; i < n; i++ {
		app.Users = append(app.Users, rt.SpawnOn("User", &userState{app: app}, srv))
	}
	return app
}

// DrivePosts has every user post `posts` messages, paced by interval, via
// a client on the given site. Returns after scheduling; run the kernel to
// completion and read the clock for total execution time.
func (a *App) DrivePosts(k *sim.Kernel, site cluster.MachineID, posts int, interval sim.Duration) {
	cl := actor.NewClient(a.RT, site)
	for i := 0; i < posts; i++ {
		delay := sim.Duration(i) * interval
		k.After(delay, func() {
			for _, u := range a.Users {
				cl.Send(u, "post", nil, msgSize)
			}
		})
	}
}
