package chatroom

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func TestPolicyParses(t *testing.T) {
	if _, err := epl.Parse(PolicySrc); err != nil {
		t.Fatal(err)
	}
}

func TestPostsFanOutToAllOtherUsers(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 1, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	app := Build(rt, 0, 4)
	// One user posts once: the other 3 receive it (the sender is excluded
	// from the room's fan-out).
	actor.NewClient(rt, 0).Send(app.Users[0], "post", nil, 64)
	k.RunUntilIdle()
	if app.Delivered != 3 {
		t.Fatalf("delivered = %d, want 3", app.Delivered)
	}
}

func TestDrivePostsCompletes(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 1, cluster.M1Medium)
	rt := actor.NewRuntime(k, c)
	app := Build(rt, 0, 8)
	app.DrivePosts(k, 0, 5, sim.Millisecond)
	k.RunUntilIdle()
	// 5 rounds x 8 posters x 7 receivers.
	if app.Delivered != 5*8*7 {
		t.Fatalf("delivered = %d, want %d", app.Delivered, 5*8*7)
	}
}

func TestProfilingOverheadSmall(t *testing.T) {
	run := func(profiled bool) sim.Time {
		k := sim.New(1)
		c := cluster.New(k, 1, cluster.M1Small)
		rt := actor.NewRuntime(k, c)
		if profiled {
			profile.New(k, c, rt)
		}
		app := Build(rt, 0, 16)
		app.DrivePosts(k, 0, 20, sim.Millisecond)
		k.RunUntilIdle()
		return k.Now()
	}
	vanilla, profiled := run(false), run(true)
	overhead := float64(profiled-vanilla) / float64(vanilla)
	if overhead <= 0 {
		t.Fatal("profiling should cost something")
	}
	if overhead > 0.023 {
		t.Fatalf("overhead %.4f exceeds the paper's 2.3%% bound", overhead)
	}
}
