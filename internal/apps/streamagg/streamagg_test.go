package streamagg

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/sim"
)

func newEnv(machines int) (*sim.Kernel, *actor.Runtime, []cluster.MachineID) {
	k := sim.New(1)
	c := cluster.New(k, machines, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	servers := make([]cluster.MachineID, machines)
	for i := range servers {
		servers[i] = cluster.MachineID(i)
	}
	return k, rt, servers
}

func TestPlasmaOwnerMappingAndMemory(t *testing.T) {
	k, rt, servers := newEnv(4)
	cfg := Config{Keys: 64, PerKeyBytes: 1 << 10, EvCost: sim.Millisecond, FlushCost: sim.Microsecond}
	app := BuildPlasma(k, rt, servers, 8, cfg)
	k.RunUntilIdle()

	if len(app.Parts) != 8 {
		t.Fatalf("built %d partitions, want 8", len(app.Parts))
	}
	// Block partitioning: key k lives in partition k/8, and the partition
	// declares its whole key range's state.
	for _, key := range []int{0, 7, 8, 63} {
		if got, want := app.Owner(key), app.Parts[key/8]; got != want {
			t.Fatalf("Owner(%d) = %v, want partition %d", key, got, key/8)
		}
	}
	for _, ref := range app.Parts {
		if got := rt.MemSize(ref); got != 8<<10 {
			t.Fatalf("partition declares %d bytes, want %d (8 keys x 1KiB)", got, 8<<10)
		}
	}

	// Events are counted across partitions.
	cl := actor.NewClient(rt, servers[0])
	for i := 0; i < 5; i++ {
		cl.Send(app.Owner(i*13%64), "ev", i*13%64, 128)
	}
	k.RunUntilIdle()
	if app.Events != 5 {
		t.Fatalf("Events = %d, want 5", app.Events)
	}
}

func TestElasticHandoffFlipsOwnershipAndMemory(t *testing.T) {
	k, rt, servers := newEnv(2)
	cfg := Config{Keys: 8, PerKeyBytes: 1 << 20, EvCost: sim.Millisecond, FlushCost: sim.Microsecond}
	app := BuildElastic(k, rt, servers, servers[0], cfg)
	k.RunUntilIdle()

	// Block assignment: keys 0-3 on executor 0, 4-7 on executor 1.
	if app.OwnerOf(0) != 0 || app.OwnerOf(7) != 1 {
		t.Fatalf("initial assignment wrong: OwnerOf(0)=%d OwnerOf(7)=%d", app.OwnerOf(0), app.OwnerOf(7))
	}
	mem0, mem1 := rt.MemSize(app.Execs[0]), rt.MemSize(app.Execs[1])
	if mem0 != 4<<20 || mem1 != 4<<20 {
		t.Fatalf("initial memory split %d/%d, want 4MiB each", mem0, mem1)
	}

	app.StartHandoff([]int{1, 2}, 0, 1)
	if !app.Moving(1) || !app.Moving(2) {
		t.Fatal("keys not marked moving while the handoff is in flight")
	}
	if app.OwnerOf(1) != 0 {
		t.Fatal("ownership flipped before the state arrived at the destination")
	}
	k.RunUntilIdle()

	// Ownership flips when the installed state lands; memory followed it.
	if app.OwnerOf(1) != 1 || app.OwnerOf(2) != 1 {
		t.Fatalf("ownership after handoff: key1=%d key2=%d, want executor 1", app.OwnerOf(1), app.OwnerOf(2))
	}
	if app.Moving(1) || app.Moving(2) {
		t.Fatal("keys still marked moving after the handoff committed")
	}
	if got := rt.MemSize(app.Execs[0]); got != 2<<20 {
		t.Fatalf("source memory %d after shipping 2MiB, want %d", got, 2<<20)
	}
	if got := rt.MemSize(app.Execs[1]); got != 6<<20 {
		t.Fatalf("destination memory %d after installing 2MiB, want %d", got, 6<<20)
	}
	if app.HandoffBatches != 1 || app.HandoffKeys != 2 || app.HandoffBytes != 2<<20 {
		t.Fatalf("handoff accounting = %d batches / %d keys / %d bytes, want 1/2/%d",
			app.HandoffBatches, app.HandoffKeys, app.HandoffBytes, 2<<20)
	}

	// Events route to the new owner.
	cl := actor.NewClient(rt, servers[0])
	cl.Send(app.Owner(1), "ev", 1, 128)
	k.RunUntilIdle()
	if app.LoadOf(1) != 1 {
		t.Fatalf("LoadOf(1) = %d after one event, want 1", app.LoadOf(1))
	}
	if app.Owner(1) != app.Execs[1] {
		t.Fatal("Owner(1) still routes to the old executor")
	}
}

func TestElasticFlushRepliesWithBacklogLatency(t *testing.T) {
	k, rt, servers := newEnv(2)
	cfg := Config{Keys: 8, PerKeyBytes: 1 << 10, EvCost: 10 * sim.Millisecond, FlushCost: sim.Microsecond}
	app := BuildElastic(k, rt, servers, servers[0], cfg)
	k.RunUntilIdle()

	// Queue 5 events in front of the flush: its latency must include their
	// processing time (>= 50ms of CPU ahead of it).
	cl := actor.NewClient(rt, servers[0])
	for i := 0; i < 5; i++ {
		cl.Send(app.Execs[0], "ev", 0, 128)
	}
	var flushLat sim.Duration
	cl.Request(app.Execs[0], "flush", 0, 64, func(lat sim.Duration, _ interface{}) {
		flushLat = lat
	})
	k.RunUntilIdle()
	if flushLat < 50*sim.Millisecond {
		t.Fatalf("flush latency %v did not include the 5-event backlog (>= 50ms)", flushLat)
	}
}
