// Package streamagg is a windowed per-key streaming aggregation — the
// workload regime (open-loop arrivals, skewed and drifting key popularity,
// tumbling windows) where Elasticutor argues executor-level key
// repartitioning beats operator-level scaling on recovery time after a
// skew shift.
//
// The same logical job is built in two deployments:
//
//   - Plasma: the key space is block-partitioned over Part actors (one
//     contiguous range each); PLASMA's EMR migrates whole partitions
//     between servers under PolicySrc. The per-key-range profile the rules
//     consume is the existing call-share condition
//     client.call(Part(p).ev).perc — no new EPL surface is needed.
//   - Elastic: one executor actor per server owns a mutable set of keys;
//     an Elasticutor-style manager (internal/baseline) moves individual
//     hot keys between executors via state handoffs priced with the same
//     serialize/transfer/deserialize model as actor migration.
//
// Events are one-way ("ev", a fixed CPU cost per event); window latency is
// probed by per-window "flush" requests whose end-to-end latency measures
// the backlog in front of the window boundary.
package streamagg

import (
	"fmt"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
	"plasma/internal/trace"
)

// PolicySrc is the shipped PLASMA policy for the Plasma deployment:
// reserve capacity for a partition drawing a large share of the event
// stream on a hot server, and keep partitions CPU-balanced otherwise.
const PolicySrc = `
server.cpu.perc > 70 and
client.call(Part(p1).ev).perc > 25 =>
    reserve(p1, cpu);
server.cpu.perc > 70 or server.cpu.perc < 15 => balance({Part}, cpu);
`

// Schema declares the application's actor classes.
func Schema() *epl.Schema {
	return epl.NewSchema(
		epl.Class("Part", []string{"ev", "flush"}, nil),
	)
}

// Config sizes one deployment.
type Config struct {
	Keys        int          // key-space size
	PerKeyBytes int64        // state per key (drives migration/handoff cost)
	EvCost      sim.Duration // CPU per event
	FlushCost   sim.Duration // CPU per window flush probe
}

const (
	evSize    = 128
	flushSize = 64
)

// ---------------------------------------------------------------------------
// Plasma deployment: block-partitioned Part actors, managed by the EMR.

// Plasma is the PLASMA-managed deployment.
type Plasma struct {
	Parts []actor.Ref
	// Events counts processed events (all partitions).
	Events int64

	keysPerPart int
}

type partState struct {
	app *Plasma
	cfg Config
}

func (p *partState) Receive(ctx *actor.Context, msg actor.Message) {
	switch msg.Method {
	case "init":
		ctx.SetMemSize(int64(p.app.keysPerPart) * p.cfg.PerKeyBytes)
	case "ev":
		ctx.Use(p.cfg.EvCost)
		p.app.Events++
	case "flush":
		ctx.Use(p.cfg.FlushCost)
		ctx.Reply(nil, flushSize)
	}
}

// BuildPlasma deploys parts partition actors in key order, block-placed
// over the servers (partition p starts on servers[p·S/parts]), so a
// contiguous hot span lands on few servers until the EMR spreads it.
func BuildPlasma(k *sim.Kernel, rt *actor.Runtime, servers []cluster.MachineID, parts int, c Config) *Plasma {
	if c.Keys%parts != 0 {
		panic("streamagg: Keys must be a multiple of parts")
	}
	app := &Plasma{keysPerPart: c.Keys / parts}
	boot := actor.NewClient(rt, servers[0])
	for p := 0; p < parts; p++ {
		srv := servers[p*len(servers)/parts]
		ref := rt.SpawnOn("Part", &partState{app: app, cfg: c}, srv)
		boot.Send(ref, "init", nil, 1)
		app.Parts = append(app.Parts, ref)
	}
	return app
}

// Owner returns the partition actor owning key.
func (a *Plasma) Owner(key int) actor.Ref { return a.Parts[key/a.keysPerPart] }

// ---------------------------------------------------------------------------
// Elastic deployment: one executor per server with a mutable key→executor
// table, repartitioned by baseline.Elasticutor.

// Handoff is the state-movement control message: the source executor
// serializes Keys' state and ships it to executor Dst, which installs it
// and flips ownership.
type Handoff struct {
	Keys []int
	Dst  int
}

// Elastic is the executor-level deployment.
type Elastic struct {
	Execs []actor.Ref
	// Events counts processed events (all executors).
	Events int64
	// HandoffBatches/HandoffKeys/HandoffBytes account completed handoffs.
	HandoffBatches int
	HandoffKeys    int
	HandoffBytes   int64

	rt      *actor.Runtime
	tr      *trace.Tracer
	cfg     Config
	ctl     *actor.Client
	execSrv []cluster.MachineID
	owner   []int   // key → executor index
	moving  []bool  // key has a handoff in flight
	load    []int64 // events per key since ResetLoads
	execMem []int64 // state bytes per executor
}

type execState struct {
	app *Elastic
	idx int
}

func (e *execState) Receive(ctx *actor.Context, msg actor.Message) {
	app := e.app
	switch msg.Method {
	case "init":
		ctx.SetMemSize(app.execMem[e.idx])
	case "ev":
		ctx.Use(app.cfg.EvCost)
		app.Events++
		app.load[msg.Arg.(int)]++
	case "flush":
		ctx.Use(app.cfg.FlushCost)
		ctx.Reply(nil, flushSize)
	case "handoff":
		h := msg.Arg.(*Handoff)
		bytes := int64(len(h.Keys)) * app.cfg.PerKeyBytes
		ctx.Use(app.serCost(bytes))
		app.execMem[e.idx] -= bytes
		ctx.SetMemSize(app.execMem[e.idx])
		ctx.Send(app.Execs[h.Dst], "install", h, bytes)
	case "install":
		h := msg.Arg.(*Handoff)
		bytes := int64(len(h.Keys)) * app.cfg.PerKeyBytes
		ctx.Use(app.serCost(bytes))
		app.execMem[e.idx] += bytes
		ctx.SetMemSize(app.execMem[e.idx])
		app.commitHandoff(h, msg.Sender, bytes)
	}
}

// serCost prices (de)serializing bytes of state with the runtime's
// migration cost model.
func (a *Elastic) serCost(bytes int64) sim.Duration {
	return sim.Duration(float64(bytes) / (1 << 20) * float64(a.rt.SerializePerMB))
}

func (a *Elastic) commitHandoff(h *Handoff, src actor.Ref, bytes int64) {
	for _, key := range h.Keys {
		a.owner[key] = h.Dst
		a.moving[key] = false
	}
	a.HandoffBatches++
	a.HandoffKeys += len(h.Keys)
	a.HandoffBytes += bytes
	a.tr.Emit(trace.Record{Kind: trace.KindHandoff,
		Server: int32(a.rt.ServerOf(src)), Target: int32(a.execSrv[h.Dst]),
		Actor: uint64(src.ID), Rule: -1, Value: float64(bytes),
		Detail: fmt.Sprintf("%d keys", len(h.Keys))})
}

// BuildElastic deploys one executor per server, keys block-assigned
// (key k starts at executor k·E/Keys). ctlSite is the machine the
// repartitioner's control messages originate from.
func BuildElastic(k *sim.Kernel, rt *actor.Runtime, servers []cluster.MachineID, ctlSite cluster.MachineID, c Config) *Elastic {
	e := len(servers)
	app := &Elastic{
		rt: rt, cfg: c, ctl: actor.NewClient(rt, ctlSite),
		execSrv: append([]cluster.MachineID(nil), servers...),
		owner:   make([]int, c.Keys),
		moving:  make([]bool, c.Keys),
		load:    make([]int64, c.Keys),
		execMem: make([]int64, e),
	}
	for key := 0; key < c.Keys; key++ {
		app.owner[key] = key * e / c.Keys
		app.execMem[app.owner[key]] += c.PerKeyBytes
	}
	boot := actor.NewClient(rt, servers[0])
	for i, srv := range servers {
		ref := rt.SpawnOn("Exec", &execState{app: app, idx: i}, srv)
		boot.Send(ref, "init", nil, 1)
		app.Execs = append(app.Execs, ref)
	}
	return app
}

// SetTracer attaches a decision tracer (handoffs emit KindHandoff records).
func (a *Elastic) SetTracer(tr *trace.Tracer) { a.tr = tr }

// Owner returns the executor actor currently owning key.
func (a *Elastic) Owner(key int) actor.Ref { return a.Execs[a.owner[key]] }

// The baseline.KeyedApp view:

// NumKeys reports the key-space size.
func (a *Elastic) NumKeys() int { return a.cfg.Keys }

// NumExecs reports the executor count.
func (a *Elastic) NumExecs() int { return len(a.Execs) }

// OwnerOf reports the executor index owning key.
func (a *Elastic) OwnerOf(key int) int { return a.owner[key] }

// LoadOf reports key's event count since the last ResetLoads.
func (a *Elastic) LoadOf(key int) int64 { return a.load[key] }

// ResetLoads zeroes the per-key counters (one manager period's window).
func (a *Elastic) ResetLoads() {
	for i := range a.load {
		a.load[i] = 0
	}
}

// Moving reports whether key has a handoff in flight.
func (a *Elastic) Moving(key int) bool { return a.moving[key] }

// StartHandoff initiates moving keys from executor from to executor to:
// ownership flips when the installed state arrives at the destination.
func (a *Elastic) StartHandoff(keys []int, from, to int) {
	h := &Handoff{Keys: append([]int(nil), keys...), Dst: to}
	for _, key := range h.Keys {
		a.moving[key] = true
	}
	a.ctl.Send(a.Execs[from], "handoff", h, 256)
}
