// Package cassandra is the Cassandra-style application of Table 1: a
// replicated wide-column store where each table's replicas must land on
// different servers for fault isolation. A Coordinator actor fans writes
// out to every Replica of the key's table and acknowledges once a quorum
// has accepted.
package cassandra

import (
	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// PolicySrc is Table 1's Cassandra policy: replicas of a table on
// different servers.
const PolicySrc = `
Replica(r1) in ref(TableMeta(t).replicas) and
Replica(r2) in ref(t.replicas) =>
    separate(r1, r2);
`

// Schema declares the application's actor classes.
func Schema() *epl.Schema {
	return epl.NewSchema(
		epl.Class("Coordinator", []string{"write", "read"}, nil),
		epl.Class("TableMeta", []string{"describe"}, []string{"replicas"}),
		epl.Class("Replica", []string{"apply", "fetch"}, nil),
	)
}

const (
	coordCost = 100 * sim.Microsecond
	applyCost = 300 * sim.Microsecond
	rowSize   = 2 << 10
	quorumOf3 = 2
)

// writeReq tracks one quorum write in flight.
type writeReq struct {
	Table int
	Key   int
}

// App is a deployed store.
type App struct {
	RT          *actor.Runtime
	Coordinator actor.Ref
	TableMetas  []actor.Ref
	Replicas    [][]actor.Ref // per table

	Writes int
}

type coordState struct{ app *App }

func (cs *coordState) Receive(ctx *actor.Context, msg actor.Message) {
	req, _ := msg.Arg.(writeReq)
	switch msg.Method {
	case "write":
		ctx.Use(coordCost)
		reps := cs.app.Replicas[req.Table%len(cs.app.Replicas)]
		// Fan out; the first (quorum leader) carries the reply path so the
		// client unblocks after the quorum leader applies (a simplification
		// of per-ack counting that preserves the messaging pattern).
		for i, r := range reps {
			if i == 0 {
				ctx.Forward(r, "apply", req, msg.Size)
			} else {
				ctx.Send(r, "apply", req, msg.Size)
			}
		}
		cs.app.Writes++
	case "read":
		ctx.Use(coordCost)
		reps := cs.app.Replicas[req.Table%len(cs.app.Replicas)]
		ctx.Forward(reps[0], "fetch", req, msg.Size)
	}
}

type replicaState struct {
	rows map[int]int
}

func (rs *replicaState) Receive(ctx *actor.Context, msg actor.Message) {
	req, _ := msg.Arg.(writeReq)
	switch msg.Method {
	case "apply":
		ctx.Use(applyCost)
		rs.rows[req.Key] = req.Key
		ctx.SetMemSize(int64(len(rs.rows)) * rowSize)
		ctx.Reply(nil, 32)
	case "fetch":
		ctx.Use(applyCost)
		v, ok := rs.rows[req.Key]
		if ok {
			ctx.Reply(v, rowSize)
		} else {
			ctx.Reply(nil, 16)
		}
	}
}

type tableMetaState struct {
	replicas []actor.Ref
}

func (tm *tableMetaState) Receive(ctx *actor.Context, msg actor.Message) {
	if msg.Method == "init" {
		ctx.SetProp("replicas", tm.replicas)
	}
}

// Build deploys tables×rf replicas; all replicas initially crowd the first
// server (the separate rule must spread them).
func Build(k *sim.Kernel, rt *actor.Runtime, first cluster.MachineID, tables, rf int) *App {
	app := &App{RT: rt}
	boot := actor.NewClient(rt, first)
	for t := 0; t < tables; t++ {
		var reps []actor.Ref
		for r := 0; r < rf; r++ {
			reps = append(reps, rt.SpawnOn("Replica", &replicaState{rows: map[int]int{}}, first))
		}
		meta := rt.SpawnOn("TableMeta", &tableMetaState{replicas: reps}, first)
		boot.Send(meta, "init", nil, 1)
		app.TableMetas = append(app.TableMetas, meta)
		app.Replicas = append(app.Replicas, reps)
	}
	app.Coordinator = rt.SpawnOn("Coordinator", &coordState{app: app}, first)
	return app
}

// Write issues one replicated write and reports completion latency.
func (app *App) Write(cl *actor.Client, table, key int, done func(lat sim.Duration)) {
	cl.Request(app.Coordinator, "write", writeReq{Table: table, Key: key}, rowSize, func(lat sim.Duration, _ interface{}) {
		if done != nil {
			done(lat)
		}
	})
}

// DistinctServers reports, per table, how many different servers its
// replicas occupy.
func (app *App) DistinctServers(table int) int {
	srvs := map[cluster.MachineID]bool{}
	for _, r := range app.Replicas[table] {
		srvs[app.RT.ServerOf(r)] = true
	}
	return len(srvs)
}
