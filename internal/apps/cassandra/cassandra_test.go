package cassandra

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func TestPolicyChecksAgainstSchema(t *testing.T) {
	pol := epl.MustParse(PolicySrc)
	if _, err := epl.Check(pol, Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReplicatesToAllReplicas(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	app := Build(k, rt, 0, 1, 3)
	k.RunUntilIdle()
	prof.Reset()
	cl := actor.NewClient(rt, 1)
	done := false
	app.Write(cl, 0, 42, func(sim.Duration) { done = true })
	k.RunUntilIdle()
	if !done {
		t.Fatal("write never acknowledged")
	}
	snap := prof.Snapshot(nil)
	applied := 0
	for _, r := range app.Replicas[0] {
		ai := snap.Actor(r)
		for _, cs := range ai.Calls {
			if cs.Method == "apply" {
				applied += int(cs.Count)
			}
		}
	}
	if applied != 3 {
		t.Fatalf("apply reached %d replicas, want 3", applied)
	}
}

func TestReadAfterWrite(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 1, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	_ = profile.New(k, c, rt)
	app := Build(k, rt, 0, 2, 3)
	k.RunUntilIdle()
	cl := actor.NewClient(rt, 0)
	app.Write(cl, 1, 7, nil)
	k.RunUntilIdle()
	var got interface{}
	cl.Request(app.Coordinator, "read", writeReq{Table: 1, Key: 7}, 64, func(_ sim.Duration, v interface{}) { got = v })
	k.RunUntilIdle()
	if got != 7 {
		t.Fatalf("read returned %v", got)
	}
}

func TestSeparateSpreadsReplicas(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 3, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	app := Build(k, rt, 0, 2, 3)
	k.RunUntilIdle()
	if app.DistinctServers(0) != 1 {
		t.Fatal("replicas should start crowded")
	}
	mgr := emr.New(k, c, rt, prof, epl.MustParse(PolicySrc),
		emr.Config{Period: sim.Second, MinResidence: sim.Millisecond})
	mgr.Start()
	cl := actor.NewClient(rt, 0)
	i := 0
	k.Every(5*sim.Millisecond, func() bool {
		app.Write(cl, i%2, i, nil)
		i++
		return k.Now() < sim.Time(10*sim.Second)
	})
	k.Run(sim.Time(12 * sim.Second))
	for tbl := 0; tbl < 2; tbl++ {
		if n := app.DistinctServers(tbl); n < 3 {
			t.Fatalf("table %d replicas on %d servers, want 3", tbl, n)
		}
	}
}
