// Package zexpander is the zExpander application of Table 1: a two-zone
// key-value cache (after Wu et al., EuroSys'16) where a small fast Index
// zone absorbs hot lookups and large compact Leaf actors hold the bulk of
// the cached data in memory. Table 1's rule puts the memory-heavy leaf
// nodes on idle servers (reserve on mem).
package zexpander

import (
	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// PolicySrc is Table 1's zExpander policy.
const PolicySrc = `
server.mem.perc > 40 => reserve(Leaf(l), mem);
`

// Schema declares the application's actor classes.
func Schema() *epl.Schema {
	return epl.NewSchema(
		epl.Class("Index", []string{"get", "set"}, []string{"leaves"}),
		epl.Class("Leaf", []string{"fetch", "store"}, nil),
	)
}

const (
	indexCost = 30 * sim.Microsecond
	leafCost  = 150 * sim.Microsecond
	itemSize  = 1 << 10
)

// App is a deployed cache.
type App struct {
	RT     *actor.Runtime
	Index  actor.Ref
	Leaves []actor.Ref

	Hits, Misses int
}

type indexState struct {
	app    *App
	hot    map[int]int // small zone-1 cache
	leaves []actor.Ref
}

func (ix *indexState) Receive(ctx *actor.Context, msg actor.Message) {
	key, _ := msg.Arg.(int)
	switch msg.Method {
	case "init":
		ctx.SetProp("leaves", ix.leaves)
		ctx.SetMemSize(4 << 20)
	case "get":
		ctx.Use(indexCost)
		if v, ok := ix.hot[key]; ok {
			ix.app.Hits++
			ctx.Reply(v, itemSize)
			return
		}
		ctx.Forward(ix.leafFor(key), "fetch", key, msg.Size)
	case "set":
		ctx.Use(indexCost)
		ix.hot[key] = key
		if len(ix.hot) > 64 {
			// Evict: push the overflow down to the leaf zone.
			for k := range ix.hot {
				ctx.Send(ix.leafFor(k), "store", k, itemSize)
				delete(ix.hot, k)
				break
			}
		}
		ctx.Reply(nil, 16)
	}
}

func (ix *indexState) leafFor(key int) actor.Ref {
	return ix.leaves[key%len(ix.leaves)]
}

type leafState struct {
	app   *App
	items map[int]int
}

func (lf *leafState) Receive(ctx *actor.Context, msg actor.Message) {
	key, _ := msg.Arg.(int)
	switch msg.Method {
	case "fetch":
		ctx.Use(leafCost)
		if v, ok := lf.items[key]; ok {
			lf.app.Hits++
			ctx.Reply(v, itemSize)
		} else {
			lf.app.Misses++
			ctx.Reply(nil, 16)
		}
	case "store":
		ctx.Use(leafCost)
		lf.items[key] = key
		// Compact zone-2 storage dominates machine memory.
		ctx.SetMemSize(int64(len(lf.items))*itemSize + (120 << 20))
	}
}

// Build deploys one index and n leaf actors, all initially crowded on the
// first server (the rule will spread leaves to idle machines).
func Build(k *sim.Kernel, rt *actor.Runtime, first cluster.MachineID, leaves int) *App {
	app := &App{RT: rt}
	var leafRefs []actor.Ref
	for i := 0; i < leaves; i++ {
		lf := rt.SpawnOn("Leaf", &leafState{app: app, items: map[int]int{}}, first)
		leafRefs = append(leafRefs, lf)
	}
	ix := &indexState{app: app, hot: map[int]int{}, leaves: leafRefs}
	app.Index = rt.SpawnOn("Index", ix, first)
	app.Leaves = leafRefs
	actor.NewClient(rt, first).Send(app.Index, "init", 0, 1)
	return app
}
