package zexpander

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func TestPolicyChecksAgainstSchema(t *testing.T) {
	pol := epl.MustParse(PolicySrc)
	if _, err := epl.Check(pol, Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestGetSetThroughZones(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	_ = profile.New(k, c, rt)
	app := Build(k, rt, 0, 4)
	cl := actor.NewClient(rt, 1)
	k.RunUntilIdle()

	var setDone bool
	cl.Request(app.Index, "set", 7, 64, func(sim.Duration, interface{}) { setDone = true })
	k.RunUntilIdle()
	if !setDone {
		t.Fatal("set never acknowledged")
	}
	var got interface{}
	cl.Request(app.Index, "get", 7, 64, func(_ sim.Duration, v interface{}) { got = v })
	k.RunUntilIdle()
	if got != 7 {
		t.Fatalf("get returned %v", got)
	}
	if app.Hits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

func TestMissReturnsNil(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 1, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	_ = profile.New(k, c, rt)
	app := Build(k, rt, 0, 2)
	k.RunUntilIdle()
	cl := actor.NewClient(rt, 0)
	var got interface{} = 99
	cl.Request(app.Index, "get", 12345, 64, func(_ sim.Duration, v interface{}) { got = v })
	k.RunUntilIdle()
	if got != nil {
		t.Fatalf("miss returned %v", got)
	}
	if app.Misses == 0 {
		t.Fatal("miss not counted")
	}
}

func TestReserveSpreadsMemoryHeavyLeaves(t *testing.T) {
	k := sim.New(1)
	// Small memory machines so leaf stores dominate.
	typ := cluster.InstanceType{Name: "t", VCPUs: 1, MemMB: 512, NetMbps: 250, SpeedFac: 1}
	c := cluster.New(k, 3, typ)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	app := Build(k, rt, 0, 2)
	k.RunUntilIdle()

	mgr := emr.New(k, c, rt, prof, epl.MustParse(PolicySrc),
		emr.Config{Period: sim.Second, MinResidence: sim.Millisecond})
	mgr.Start()

	cl := actor.NewClient(rt, 2)
	i := 0
	k.Every(2*sim.Millisecond, func() bool {
		cl.Request(app.Index, "set", i, 64, nil)
		cl.Request(app.Index, "get", i/2, 64, nil)
		i++
		return k.Now() < sim.Time(8*sim.Second)
	})
	k.Run(sim.Time(10 * sim.Second))

	// The two leaves should end up on their own (reserved) servers, away
	// from the index's original machine.
	s0 := rt.ServerOf(app.Leaves[0])
	s1 := rt.ServerOf(app.Leaves[1])
	if s0 == 0 && s1 == 0 {
		t.Fatal("leaves never left the crowded server")
	}
	if s0 == s1 {
		t.Fatalf("both leaves on server %d; want dedicated servers", s0)
	}
}
