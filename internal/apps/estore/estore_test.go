package estore

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/apps/workload"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func TestPolicyChecksAgainstSchema(t *testing.T) {
	pol := epl.MustParse(PolicySrc)
	if _, err := epl.Check(pol, Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraversesRootAndChild(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	app := Build(k, rt, []cluster.MachineID{0}, 2, 3)
	k.RunUntilIdle()
	var lat sim.Duration
	actor.NewClient(rt, 1).Request(app.Roots[0], "read", nil, reqSize, func(l sim.Duration, _ interface{}) { lat = l })
	k.RunUntilIdle()
	if lat < rootCost+childCost {
		t.Fatalf("latency %v below root+child cost", lat)
	}
}

func TestChildrenStartColocatedWithRoot(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 4, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	app := Build(k, rt, []cluster.MachineID{0, 1, 2, 3}, 8, 4)
	k.RunUntilIdle()
	for i, root := range app.Roots {
		srv := rt.ServerOf(root)
		for _, ch := range app.Children[i] {
			if rt.ServerOf(ch) != srv {
				t.Fatalf("child of root %d not colocated at build", i)
			}
		}
	}
}

func TestGeometricWeights(t *testing.T) {
	w := workload.GeometricWeights(5, 0.35)
	if w[0] < 0.349 || w[0] > 0.351 {
		t.Fatalf("first weight %v, want 0.35", w[0])
	}
	if w[1] <= w[2] {
		t.Fatal("weights not decreasing")
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("sum %v", sum)
	}
}

func TestInAppMovesHotRootWithChildren(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 3, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	app := Build(k, rt, []cluster.MachineID{0, 1}, 4, 2)
	k.RunUntilIdle()

	mgr := &InApp{K: k, RT: rt, C: c, Prof: prof, App: app, Period: 2 * sim.Second, HighWater: 70, TopFrac: 0.3}
	mgr.Start()

	pick := workload.SkewedPicker(k, workload.GeometricWeights(4, 0.8))
	for i := 0; i < 12; i++ {
		cl := &workload.ClosedLoop{
			K: k, Client: actor.NewClient(rt, 2), Think: sim.Millisecond,
			Next: func() workload.Request {
				return workload.Request{Target: app.Roots[pick()], Method: "read", Size: reqSize}
			},
		}
		cl.Start()
	}
	k.Run(sim.Time(10 * sim.Second))

	if mgr.Migrations == 0 {
		t.Fatal("in-app manager never migrated")
	}
	// Whatever moved, every root must still be colocated with its children.
	k.Run(sim.Time(12 * sim.Second))
	for i, root := range app.Roots {
		srv := rt.ServerOf(root)
		for _, ch := range app.Children[i] {
			if rt.ServerOf(ch) != srv {
				t.Fatalf("in-app migration separated root %d from a child", i)
			}
		}
	}
}

func TestPlasmaRulesKeepFamiliesTogether(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 3, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	app := Build(k, rt, []cluster.MachineID{0, 1}, 4, 2)
	k.RunUntilIdle()

	mgr := emr.New(k, c, rt, prof, epl.MustParse(PolicySrc),
		emr.Config{Period: 2 * sim.Second, MinResidence: sim.Millisecond})
	mgr.Start()

	pick := workload.SkewedPicker(k, workload.GeometricWeights(4, 0.8))
	for i := 0; i < 12; i++ {
		cl := &workload.ClosedLoop{
			K: k, Client: actor.NewClient(rt, 2), Think: sim.Millisecond,
			Next: func() workload.Request {
				return workload.Request{Target: app.Roots[pick()], Method: "read", Size: reqSize}
			},
		}
		cl.Start()
	}
	k.Run(sim.Time(20 * sim.Second))

	if mgr.Stats.ExecutedMigrations == 0 {
		t.Fatal("PLASMA never migrated")
	}
	for i, root := range app.Roots {
		srv := rt.ServerOf(root)
		for _, ch := range app.Children[i] {
			if rt.ServerOf(ch) != srv {
				t.Fatalf("root %d separated from child (root on %d, child on %d)",
					i, srv, rt.ServerOf(ch))
			}
		}
	}
}
