// Package estore is the E-Store application of §3.3 and §5.5 (Fig. 9): an
// elastic partitioning layer for a distributed OLTP store. Root-level key
// Partition actors hold range blocks and are co-located with their child
// partitions; reads hit a root and continue into one child.
//
// Two elasticity managers are compared: PLASMA executing the three §3.3
// rules, and an in-app implementation of E-Store's own algorithm (migrate
// the top-k% hottest root partitions, with their children, from servers
// above a high-water mark to idle servers).
package estore

import (
	"sort"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// PolicySrc is the §3.3 E-Store policy, verbatim.
const PolicySrc = `
server.cpu.perc > 80 and
client.call(Partition(p1).read).perc > 30 =>
    reserve(p1, cpu);
Partition(p2) in ref(Partition(p1).children) =>
    colocate(p1, p2);
server.cpu.perc < 50 => balance({Partition}, cpu);
`

// Schema declares the application's actor classes.
func Schema() *epl.Schema {
	return epl.NewSchema(
		epl.Class("Partition", []string{"read", "readChild"}, []string{"children"}),
	)
}

// Per-operation CPU costs.
const (
	rootCost  = 3 * sim.Millisecond
	childCost = 6 * sim.Millisecond
	reqSize   = 256
	repSize   = 512
)

// App is a deployed E-Store.
type App struct {
	RT       *actor.Runtime
	Roots    []actor.Ref
	Children [][]actor.Ref
}

type rootState struct {
	children []actor.Ref
	next     int
}

func (r *rootState) Receive(ctx *actor.Context, msg actor.Message) {
	switch msg.Method {
	case "init":
		ctx.SetProp("children", r.children)
		ctx.SetMemSize(1 << 20)
	case "read":
		ctx.Use(rootCost)
		if len(r.children) == 0 {
			ctx.Reply(nil, repSize)
			return
		}
		ch := r.children[r.next%len(r.children)]
		r.next++
		ctx.Forward(ch, "readChild", msg.Arg, msg.Size)
	}
}

type childState struct{}

func (childState) Receive(ctx *actor.Context, msg actor.Message) {
	switch msg.Method {
	case "init":
		ctx.SetMemSize(2 << 20)
	case "readChild":
		ctx.Use(childCost)
		ctx.Reply(nil, repSize)
	}
}

// Build deploys roots×childrenPer partition actors spread evenly (roots
// round-robin with their children on the same server) over the servers.
func Build(k *sim.Kernel, rt *actor.Runtime, servers []cluster.MachineID, roots, childrenPer int) *App {
	app := &App{RT: rt}
	boot := actor.NewClient(rt, servers[0])
	for i := 0; i < roots; i++ {
		srv := servers[i%len(servers)]
		var children []actor.Ref
		for j := 0; j < childrenPer; j++ {
			ch := rt.SpawnOn("Partition", childState{}, srv)
			boot.Send(ch, "init", nil, 1)
			children = append(children, ch)
		}
		root := rt.SpawnOn("Partition", &rootState{children: children}, srv)
		boot.Send(root, "init", nil, 1)
		app.Roots = append(app.Roots, root)
		app.Children = append(app.Children, children)
	}
	return app
}

// InApp is the AEON E-Store baseline of §5.5: application-specific
// elasticity logic (the paper's authors added 3000 LoC for it). Every
// period it checks per-server CPU against a high-water mark and moves the
// top-k% most-requested root partitions on hot servers — together with
// their children — to the idlest servers.
type InApp struct {
	K    *sim.Kernel
	RT   *actor.Runtime
	C    *cluster.Cluster
	Prof *profile.Profiler
	App  *App

	Period    sim.Duration
	HighWater float64 // CPU% threshold
	TopFrac   float64 // fraction of hot roots to move (k%)

	Migrations int
	running    bool
}

// Start schedules periodic management.
func (e *InApp) Start() {
	if e.running {
		return
	}
	e.running = true
	if e.TopFrac == 0 {
		e.TopFrac = 0.1
	}
	e.K.Every(e.Period, func() bool {
		if !e.running {
			return false
		}
		e.tick()
		return true
	})
}

// Stop halts management after the current period.
func (e *InApp) Stop() { e.running = false }

func (e *InApp) tick() {
	snap := e.Prof.Snapshot(nil)
	e.Prof.Reset()
	// Hot servers above the high-water mark, idlest first for targets.
	var hot, cool []*epl.ServerInfo
	hotIDs := map[cluster.MachineID]bool{}
	for _, s := range snap.Servers {
		if s.CPUPerc > e.HighWater {
			hot = append(hot, s)
			hotIDs[s.ID] = true
		} else {
			cool = append(cool, s)
		}
	}
	if len(hot) == 0 || len(cool) == 0 {
		return
	}
	sort.Slice(cool, func(i, j int) bool { return cool[i].CPUPerc < cool[j].CPUPerc })

	// Rank root partitions on hot servers by request activity, globally,
	// and migrate the top k% of all roots with their children.
	type hotRoot struct {
		idx   int
		count int64
	}
	var ranked []hotRoot
	for i, root := range e.App.Roots {
		ai := snap.Actor(root)
		if ai == nil || !hotIDs[ai.Server] {
			continue
		}
		var reads int64
		for _, cs := range ai.Calls {
			if cs.Method == "read" {
				reads += cs.Count
			}
		}
		ranked = append(ranked, hotRoot{i, reads})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].count > ranked[j].count })
	n := int(float64(len(e.App.Roots))*e.TopFrac + 0.999)
	next := 0
	for i := 0; i < n && i < len(ranked); i++ {
		trg := cool[next%len(cool)]
		next++
		rootIdx := ranked[i].idx
		e.RT.Migrate(e.App.Roots[rootIdx], trg.ID, nil)
		e.Migrations++
		for _, ch := range e.App.Children[rootIdx] {
			e.RT.Migrate(ch, trg.ID, nil)
			e.Migrations++
		}
	}
}
