package mediaservice

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/apps/workload"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// End-to-end fleet lifecycle (the Fig. 10 mechanics at unit scale): the
// fleet grows under a client wave through reserve-driven scale-out and is
// reclaimed by scale-in after the wave leaves.
func TestFleetGrowsAndShrinksWithClientWave(t *testing.T) {
	k := sim.New(1)
	inst := cluster.M1Small
	inst.Boot = 5 * sim.Second
	c := cluster.New(k, 4, inst)
	c.SetMaxSize(65)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	app := Build(k, rt, []cluster.MachineID{0, 1, 2, 3}, 4)
	k.RunUntilIdle()

	mgr := emr.New(k, c, rt, prof, epl.MustParse(PolicySrc),
		emr.Config{Period: 10 * sim.Second, ScaleOut: true, ScaleIn: true,
			MinServers: 4, InstanceType: inst})
	mgr.Start()

	const clients = 24
	type session struct {
		id   int
		loop *workload.ClosedLoop
	}
	var sessions []session
	for i := 0; i < clients; i++ {
		i := i
		k.At(sim.Time(i)*sim.Time(2*sim.Second), func() {
			id, fe := app.AddClient()
			watch := true
			loop := &workload.ClosedLoop{
				K: k, Client: actor.NewClient(rt, 0), Think: 150 * sim.Millisecond,
				Next: func() workload.Request {
					watch = !watch
					if watch {
						return workload.Request{Target: fe, Method: "watch", Size: 512}
					}
					return workload.Request{Target: fe, Method: "review", Size: 2 << 10}
				},
			}
			loop.Start()
			sessions = append(sessions, session{id: id, loop: loop})
		})
	}
	k.Run(sim.Time(120 * sim.Second))
	peak := c.UpCount()
	if peak <= 4 {
		t.Fatalf("fleet never grew: %d servers at peak load", peak)
	}
	if mgr.Stats.ScaleOuts == 0 {
		t.Fatal("no scale-outs recorded")
	}

	// The wave leaves.
	for _, s := range sessions {
		s.loop.Stop()
		app.RemoveClient(s.id)
	}
	k.Run(sim.Time(400 * sim.Second))
	final := c.UpCount()
	if final >= peak {
		t.Fatalf("fleet not reclaimed: peak %d, final %d", peak, final)
	}
	if mgr.Stats.ScaleIns == 0 {
		t.Fatal("no scale-ins recorded")
	}
	if final < 4 {
		t.Fatalf("fleet shrank below MinServers: %d", final)
	}
	// No application actors may be lost during reclaim.
	if app.ActiveActors() != 8 { // 4 MovieReviews + 4 Catalogs
		t.Fatalf("actors after reclaim = %d, want the 8 globals", app.ActiveActors())
	}
}
