package mediaservice

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func env(machines int) (*sim.Kernel, *cluster.Cluster, *actor.Runtime, *profile.Profiler) {
	k := sim.New(1)
	c := cluster.New(k, machines, cluster.M1Small)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	return k, c, rt, prof
}

func TestPolicyChecksAgainstSchema(t *testing.T) {
	pol := epl.MustParse(PolicySrc)
	if _, err := epl.Check(pol, Schema()); err != nil {
		t.Fatal(err)
	}
	if len(pol.Rules) != 6 {
		t.Fatalf("rules = %d, want the paper's 6", len(pol.Rules))
	}
}

func TestWatchFlow(t *testing.T) {
	k, _, rt, prof := env(4)
	app := Build(k, rt, []cluster.MachineID{0, 1, 2, 3}, 4)
	_, fe := app.AddClient()
	k.RunUntilIdle()
	prof.Reset()
	var lat sim.Duration
	actor.NewClient(rt, 0).Request(fe, "watch", nil, watchReqSize, func(l sim.Duration, _ interface{}) { lat = l })
	k.RunUntilIdle()
	if lat < frontCost+streamCost {
		t.Fatalf("watch latency %v below pipeline cost", lat)
	}
	// The user's UserInfo must have received a track call.
	snap := prof.Snapshot(nil)
	tracked := false
	for _, ai := range snap.Actors {
		if ai.Type == "UserInfo" {
			for _, cs := range ai.Calls {
				if cs.Method == "track" && cs.Count > 0 {
					tracked = true
				}
			}
		}
	}
	if !tracked {
		t.Fatal("watch did not track history on UserInfo")
	}
}

func TestReviewFlow(t *testing.T) {
	k, _, rt, prof := env(4)
	app := Build(k, rt, []cluster.MachineID{0, 1, 2, 3}, 4)
	_, fe := app.AddClient()
	k.RunUntilIdle()
	prof.Reset()
	var lat sim.Duration
	actor.NewClient(rt, 0).Request(fe, "review", nil, reviewReqSize, func(l sim.Duration, _ interface{}) { lat = l })
	k.RunUntilIdle()
	if lat < frontCost+editCost+checkCost {
		t.Fatalf("review latency %v below pipeline cost", lat)
	}
	snap := prof.Snapshot(nil)
	var updates, publishes int64
	for _, ai := range snap.Actors {
		for _, cs := range ai.Calls {
			switch {
			case ai.Type == "UserReview" && cs.Method == "update":
				updates += cs.Count
			case ai.Type == "MovieReview" && cs.Method == "publish":
				publishes += cs.Count
			}
		}
	}
	if updates != 1 || publishes != 1 {
		t.Fatalf("updates=%d publishes=%d, want 1,1", updates, publishes)
	}
}

func TestClientPairingSharesActors(t *testing.T) {
	k, _, rt, _ := env(2)
	app := Build(k, rt, []cluster.MachineID{0, 1}, 2)
	_, fe0 := app.AddClient()
	_, fe1 := app.AddClient()
	_, fe2 := app.AddClient()
	if fe0 != fe1 {
		t.Fatal("clients 0 and 1 should share a FrontEnd")
	}
	if fe2 == fe0 {
		t.Fatal("client 2 should get a fresh FrontEnd")
	}
	k.RunUntilIdle()
}

func TestRemoveClientReleasesActors(t *testing.T) {
	k, _, rt, _ := env(2)
	app := Build(k, rt, []cluster.MachineID{0, 1}, 2)
	before := len(rt.Actors())
	id0, _ := app.AddClient()
	id1, _ := app.AddClient()
	k.RunUntilIdle()
	app.RemoveClient(id0)
	app.RemoveClient(id1)
	after := len(rt.Actors())
	if after != before {
		t.Fatalf("actors leaked: before=%d after=%d", before, after)
	}
}

func TestElasticityPinsAndColocates(t *testing.T) {
	k, c, rt, prof := env(4)
	app := Build(k, rt, []cluster.MachineID{0, 1, 2, 3}, 2)
	_, fe := app.AddClient()
	k.RunUntilIdle()

	mgr := emr.New(k, c, rt, prof, epl.MustParse(PolicySrc),
		emr.Config{Period: 2 * sim.Second, MinResidence: sim.Millisecond})
	mgr.Start()

	cl := actor.NewClient(rt, 0)
	k.Every(50*sim.Millisecond, func() bool {
		cl.Request(fe, "watch", nil, watchReqSize, nil)
		cl.Request(fe, "review", nil, reviewReqSize, nil)
		return k.Now() < sim.Time(10*sim.Second)
	})
	k.Run(sim.Time(12 * sim.Second))

	ca := app.clients[0]
	if !rt.Pinned(ca.video) {
		t.Fatal("VideoStream not pinned")
	}
	if rt.ServerOf(ca.video) != rt.ServerOf(ca.userInfo) {
		t.Fatal("VideoStream and UserInfo not colocated")
	}
	if rt.ServerOf(ca.editor) != rt.ServerOf(ca.userRev) {
		t.Fatal("ReviewEditor and UserReview not colocated")
	}
	for _, mr := range app.MovieReviews {
		if !rt.Pinned(mr) {
			t.Fatal("MovieReview not pinned")
		}
	}
}

func TestActiveActorsCount(t *testing.T) {
	k, _, rt, _ := env(2)
	app := Build(k, rt, []cluster.MachineID{0, 1}, 3)
	if app.ActiveActors() != 6 { // 3 MovieReviews + 3 Catalogs
		t.Fatalf("base actors = %d", app.ActiveActors())
	}
	app.AddClient()
	k.RunUntilIdle()
	if app.ActiveActors() != 6+4+2 {
		t.Fatalf("after one client: %d", app.ActiveActors())
	}
}
