// Package mediaservice is the Media Service application of §3.3 and §5.6
// (Fig. 10), modeled on the DeathStarBench media microservices: eight
// interdependent actor types serving two flows,
//
//	watch:  client → FrontEnd → VideoStream (CPU-heavy) → reply,
//	        with VideoStream tracking history on the user's UserInfo;
//	review: client → FrontEnd → ReviewEditor → ReviewChecker (CPU-heavy)
//	        → reply, with the editor updating the user's UserReview and
//	        the checker publishing into a genre MovieReview (memory-heavy).
//
// Clients join and leave over time; UserInfo/UserReview actors are
// per-client, FrontEnd/VideoStream/ReviewEditor/ReviewChecker actors each
// serve two clients, MovieReview and Catalog actors are global.
package mediaservice

import (
	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// PolicySrc is the §3.3 Media Service policy (6 rules), verbatim.
const PolicySrc = `
server.net.perc > 80 or server.net.perc < 60 =>
    balance({FrontEnd}, net);
server.cpu.perc > 50 => reserve(VideoStream(v), cpu);
VideoStream(v).call(UserInfo(u).track).count > 0 =>
    pin(v); colocate(v, u);
ReviewEditor(r).call(UserReview(u).update).count > 0 =>
    pin(r); colocate(r, u);
true => pin(MovieReview(m));
server.cpu.perc > 90 or server.cpu.perc < 70 =>
    balance({ReviewChecker}, cpu);
`

// Schema declares the application's actor classes.
func Schema() *epl.Schema {
	return epl.NewSchema(
		epl.Class("FrontEnd", []string{"watch", "review"}, nil),
		epl.Class("VideoStream", []string{"stream"}, nil),
		epl.Class("UserInfo", []string{"track"}, nil),
		epl.Class("ReviewEditor", []string{"edit"}, nil),
		epl.Class("UserReview", []string{"update"}, nil),
		epl.Class("ReviewChecker", []string{"check"}, nil),
		epl.Class("MovieReview", []string{"publish", "read"}, nil),
		epl.Class("Catalog", []string{"lookup"}, nil),
	)
}

// Flow costs and sizes.
const (
	frontCost   = 500 * sim.Microsecond
	streamCost  = 12 * sim.Millisecond
	trackCost   = 200 * sim.Microsecond
	editCost    = 2 * sim.Millisecond
	updateCost  = 300 * sim.Microsecond
	checkCost   = 10 * sim.Millisecond
	publishCost = 500 * sim.Microsecond

	watchReqSize  = 512
	streamRepSize = 64 << 10 // streamed chunk back to the client
	reviewReqSize = 2 << 10
	reviewRepSize = 256
)

// App is a deployed media service with a dynamic client population.
type App struct {
	K  *sim.Kernel
	RT *actor.Runtime

	MovieReviews []actor.Ref
	Catalogs     []actor.Ref

	clients map[int]*clientActors // keyed by pair index
	users   map[int]*userActors   // keyed by client id
	nextIdx int
}

// clientActors are the pair-scoped actors serving two clients.
type clientActors struct {
	frontEnd actor.Ref
	video    actor.Ref
	editor   actor.Ref
	checker  actor.Ref
	userInfo actor.Ref // the pair's most recent user's info actor
	userRev  actor.Ref
	refs     int // live clients on this pair
}

// userActors are the per-client actors.
type userActors struct {
	userInfo actor.Ref
	userRev  actor.Ref
}

type frontEndState struct {
	app *App
	idx int // client pair index
}

func (f *frontEndState) Receive(ctx *actor.Context, msg actor.Message) {
	ca := f.app.clients[f.idx]
	if ca == nil {
		return
	}
	switch msg.Method {
	case "watch":
		ctx.Use(frontCost)
		ctx.Forward(ca.video, "stream", msg.Arg, msg.Size)
	case "review":
		ctx.Use(frontCost)
		ctx.Forward(ca.editor, "edit", msg.Arg, msg.Size)
	}
}

type videoState struct {
	app *App
	idx int
}

func (v *videoState) Receive(ctx *actor.Context, msg actor.Message) {
	if msg.Method != "stream" {
		return
	}
	ctx.Use(streamCost)
	ctx.SetMemSize(1 << 20)
	if ca := v.app.clients[v.idx]; ca != nil && !ca.userInfo.Zero() {
		ctx.Send(ca.userInfo, "track", nil, 128)
	}
	ctx.Reply(nil, streamRepSize)
}

type userInfoState struct{}

func (userInfoState) Receive(ctx *actor.Context, msg actor.Message) {
	if msg.Method == "track" {
		ctx.Use(trackCost)
		ctx.SetMemSize(512 << 10)
	}
}

type editorState struct {
	app *App
	idx int
}

func (e *editorState) Receive(ctx *actor.Context, msg actor.Message) {
	if msg.Method != "edit" {
		return
	}
	ctx.Use(editCost)
	ca := e.app.clients[e.idx]
	if ca == nil {
		return
	}
	if !ca.userRev.Zero() {
		ctx.Send(ca.userRev, "update", nil, 512)
	}
	ctx.Forward(ca.checker, "check", msg.Arg, msg.Size)
}

type userReviewState struct{}

func (userReviewState) Receive(ctx *actor.Context, msg actor.Message) {
	if msg.Method == "update" {
		ctx.Use(updateCost)
		ctx.SetMemSize(256 << 10)
	}
}

type checkerState struct {
	app *App
	mr  int // genre index
}

func (c *checkerState) Receive(ctx *actor.Context, msg actor.Message) {
	if msg.Method != "check" {
		return
	}
	ctx.Use(checkCost)
	ctx.Send(c.app.MovieReviews[c.mr%len(c.app.MovieReviews)], "publish", nil, 1<<10)
	c.mr++
	ctx.Reply(nil, reviewRepSize)
}

type movieReviewState struct{}

func (movieReviewState) Receive(ctx *actor.Context, msg actor.Message) {
	switch msg.Method {
	case "publish":
		ctx.Use(publishCost)
		ctx.SetMemSize(64 << 20) // memory-intensive genre store
	case "read":
		ctx.Use(publishCost)
		ctx.Reply(nil, 4<<10)
	}
}

type catalogState struct{}

func (catalogState) Receive(ctx *actor.Context, msg actor.Message) {
	if msg.Method == "lookup" {
		ctx.Use(100 * sim.Microsecond)
		ctx.Reply(nil, 1<<10)
	}
}

// Build deploys the global actors (genre MovieReviews and Catalogs) across
// the initial servers. Per-client actors are created by AddClient.
func Build(k *sim.Kernel, rt *actor.Runtime, servers []cluster.MachineID, genres int) *App {
	app := &App{K: k, RT: rt, clients: map[int]*clientActors{}, users: map[int]*userActors{}}
	boot := actor.NewClient(rt, servers[0])
	for i := 0; i < genres; i++ {
		mr := rt.SpawnOn("MovieReview", movieReviewState{}, servers[i%len(servers)])
		boot.Send(mr, "publish", nil, 1)
		app.MovieReviews = append(app.MovieReviews, mr)
		app.Catalogs = append(app.Catalogs, rt.SpawnOn("Catalog", catalogState{}, servers[i%len(servers)]))
	}
	return app
}

// AddClient provisions actors for a joining client and returns its id and
// front-end ref. Every second client shares the pair-scoped actors
// (FrontEnd, VideoStream, ReviewEditor, ReviewChecker) with its sibling —
// the paper's "all other actors serve two clients each" — while UserInfo
// and UserReview are per-client.
func (app *App) AddClient() (id int, frontEnd actor.Ref) {
	id = app.nextIdx
	app.nextIdx++
	pair := id / 2

	ca := app.clients[pair]
	if ca == nil {
		ca = &clientActors{}
		app.clients[pair] = ca
		ca.frontEnd = app.RT.Spawn("FrontEnd", &frontEndState{app: app, idx: pair}, actor.Ref{})
		ca.video = app.RT.Spawn("VideoStream", &videoState{app: app, idx: pair}, ca.frontEnd)
		ca.editor = app.RT.Spawn("ReviewEditor", &editorState{app: app, idx: pair}, ca.frontEnd)
		ca.checker = app.RT.Spawn("ReviewChecker", &checkerState{app: app}, ca.editor)
	}
	ca.refs++
	ua := &userActors{
		userInfo: app.RT.Spawn("UserInfo", userInfoState{}, ca.video),
		userRev:  app.RT.Spawn("UserReview", userReviewState{}, ca.editor),
	}
	app.users[id] = ua
	// The pair's flows track the most recently joined user.
	ca.userInfo = ua.userInfo
	ca.userRev = ua.userRev
	return id, ca.frontEnd
}

// RemoveClient releases a client's actors; pair-scoped actors go away when
// both siblings have left.
func (app *App) RemoveClient(id int) {
	if ua := app.users[id]; ua != nil {
		app.RT.Stop(ua.userInfo)
		app.RT.Stop(ua.userRev)
		delete(app.users, id)
	}
	pair := id / 2
	ca := app.clients[pair]
	if ca == nil {
		return
	}
	ca.refs--
	if ca.refs > 0 {
		// Sibling still active: retarget the flows at a live user if any.
		for uid, ua := range app.users {
			if uid/2 == pair {
				ca.userInfo = ua.userInfo
				ca.userRev = ua.userRev
				break
			}
		}
		return
	}
	app.RT.Stop(ca.frontEnd)
	app.RT.Stop(ca.video)
	app.RT.Stop(ca.editor)
	app.RT.Stop(ca.checker)
	delete(app.clients, pair)
}

// ActiveActors reports the number of live application actors.
func (app *App) ActiveActors() int {
	return len(app.MovieReviews) + len(app.Catalogs) +
		4*len(app.clients) + 2*len(app.users)
}
