// Package pagerank is the distributed PageRank application of §2.1 and §5.4
// (Figs. 6-8): Worker actors each own one graph partition, compute on it
// every iteration (CPU cost proportional to the partition's edges), exchange
// boundary data with the other workers, and synchronize through a
// Coordinator actor — bulk-synchronous execution where the slowest worker
// bounds every iteration.
//
// Partitions come from the graph package's METIS-like partitioner: vertex
// counts are balanced but edge counts (and therefore compute) are skewed,
// which is the imbalance PLASMA's balance rule corrects by migrating whole
// Worker actors between servers. The Mizan baseline instead migrates
// vertices *between workers*, equalizing workers without fixing the
// per-server skew from random worker placement.
package pagerank

import (
	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/graph"
	"plasma/internal/sim"
)

// PolicySrc is the §3.3 PageRank rule, verbatim.
const PolicySrc = `
server.cpu.perc > 80 or server.cpu.perc < 60 =>
    balance({Worker}, cpu);
`

// Schema declares the application's actor classes.
func Schema() *epl.Schema {
	return epl.NewSchema(
		epl.Class("Worker", []string{"iterate", "boundary"}, nil),
		epl.Class("Coordinator", []string{"done"}, nil),
	)
}

// Config sizes one PageRank deployment.
type Config struct {
	Graph *graph.Graph
	Parts []int // vertex -> partition assignment
	K     int   // number of workers/partitions

	// PerEdgeCost is CPU time per edge per iteration.
	PerEdgeCost sim.Duration
	// BoundaryBytesPerEdge sizes the per-iteration boundary exchange.
	BoundaryBytesPerEdge int64
	// StatePerVertex sizes worker actor state (drives migration cost).
	StatePerVertex int64
	// HeteroSpread adds per-partition compute heterogeneity: each
	// partition's work is scaled by a factor drawn uniformly from
	// [1-spread, 1+spread]. The paper observes per-server CPU "diverging
	// greatly despite the even partitioning performed by METIS" (Fig. 7b):
	// locality, hub concentration, and convergence rates make equal-sized
	// partitions cost unequal work. 0 disables.
	HeteroSpread float64
	// SyncOverhead is per-iteration non-compute time (barrier, boundary
	// application, framework bookkeeping) between iterations. Real BSP
	// systems spend a sizable fraction of each iteration here, which is
	// what keeps converged CPU utilization inside the rule's band rather
	// than at 100%.
	SyncOverhead sim.Duration
	// Iterations to run (0 = unlimited until Stop).
	Iterations int
}

func (c Config) withDefaults() Config {
	if c.PerEdgeCost == 0 {
		c.PerEdgeCost = 2 * sim.Microsecond
	}
	if c.BoundaryBytesPerEdge == 0 {
		c.BoundaryBytesPerEdge = 4
	}
	if c.StatePerVertex == 0 {
		c.StatePerVertex = 64
	}
	return c
}

// App is one deployed PageRank computation.
type App struct {
	RT  *actor.Runtime
	Cfg Config

	Coord   actor.Ref
	Workers []actor.Ref

	// Vertices and Edges are per-worker partition sizes; Mizan-style vertex
	// migration rebalances these between workers at iteration boundaries.
	Vertices []int64
	Edges    []int64
	// Mult is each partition's compute-heterogeneity multiplier (hub
	// concentration, convergence rate, locality — Fig. 7b's divergence).
	// It is a property of the partition's hot vertices, which per-vertex
	// migration schemes deliberately avoid moving, so Mizan cannot
	// equalize it; PLASMA moves the whole actor, taking it along.
	Mult []float64

	// IterationTimes records each completed iteration's wall time.
	IterationTimes []sim.Duration
	// OnIteration, when set, observes each completed iteration.
	OnIteration func(iter int, d sim.Duration)
	// Done reports whether the configured iteration count completed.
	Done bool

	iter      int
	pending   int
	iterStart sim.Time
	lastDone  sim.Time // completion instant of the previous iteration
	// extraDelay is added before the next iteration starts (Mizan vertex
	// migration pauses).
	extraDelay sim.Duration
}

type coordState struct{ app *App }

func (c *coordState) Receive(ctx *actor.Context, msg actor.Message) {
	app := c.app
	switch msg.Method {
	case "start":
		app.startIteration(ctx)
	case "done":
		ctx.Use(50 * sim.Microsecond)
		app.pending--
		if app.pending > 0 {
			return
		}
		// Completion-to-completion time: inter-iteration pauses (barrier
		// overhead, vertex-migration stalls) are part of what users see as
		// iteration time.
		ref := app.lastDone
		if app.iter == 0 {
			ref = app.iterStart
		}
		d := sim.Duration(ctx.Now() - ref)
		app.lastDone = ctx.Now()
		app.IterationTimes = append(app.IterationTimes, d)
		if app.OnIteration != nil {
			app.OnIteration(app.iter, d)
		}
		app.iter++
		if app.Cfg.Iterations > 0 && app.iter >= app.Cfg.Iterations {
			app.Done = true
			return
		}
		delay := app.extraDelay + app.Cfg.SyncOverhead
		app.extraDelay = 0
		if delay > 0 {
			ctx.SendAfter(delay, ctx.Self(), "start", nil, 16)
			return
		}
		app.startIteration(ctx)
	}
}

func (app *App) startIteration(ctx *actor.Context) {
	app.pending = app.Cfg.K
	app.iterStart = ctx.Now()
	for _, w := range app.Workers {
		ctx.Send(w, "iterate", nil, 16)
	}
}

type workerState struct {
	app *App
	idx int
}

func (w *workerState) Receive(ctx *actor.Context, msg actor.Message) {
	app := w.app
	switch msg.Method {
	case "init":
		ctx.SetMemSize(app.Vertices[w.idx] * app.Cfg.StatePerVertex)
	case "iterate":
		edges := app.Edges[w.idx]
		ctx.Use(sim.Duration(float64(edges) * app.Mult[w.idx] * float64(app.Cfg.PerEdgeCost)))
		ctx.SetMemSize(app.Vertices[w.idx] * app.Cfg.StatePerVertex)
		// Boundary exchange: split the partition's boundary volume across
		// the other workers.
		if app.Cfg.K > 1 {
			total := edges * app.Cfg.BoundaryBytesPerEdge
			per := total / int64(app.Cfg.K-1)
			for j, other := range app.Workers {
				if j == w.idx {
					continue
				}
				ctx.Send(other, "boundary", nil, per)
			}
		}
		ctx.Send(app.Coord, "done", nil, 16)
	case "boundary":
		// Applying remote rank contributions is cheap relative to compute.
		ctx.Use(sim.Duration(msg.Size/64) * sim.Microsecond)
	}
}

// Build partitions the graph's work across cfg.K workers and deploys them
// round-robin over the given servers (nil = the runtime picks via the
// placement hook). Call Start to begin iterating.
func Build(k *sim.Kernel, rt *actor.Runtime, cfg Config, servers []cluster.MachineID) *App {
	cfg = cfg.withDefaults()
	app := &App{RT: rt, Cfg: cfg}
	app.Vertices = make([]int64, cfg.K)
	app.Edges = make([]int64, cfg.K)
	app.Mult = make([]float64, cfg.K)
	for i := range app.Mult {
		app.Mult[i] = 1
	}
	if cfg.Graph != nil && cfg.Parts != nil {
		for v, p := range cfg.Parts {
			app.Vertices[p]++
			app.Edges[p] += int64(len(cfg.Graph.Out[v]))
		}
	}
	if cfg.HeteroSpread > 0 {
		for i := range app.Mult {
			app.Mult[i] = 1 + cfg.HeteroSpread*(2*k.Rand().Float64()-1)
		}
	}

	coordSrv := cluster.MachineID(0)
	if len(servers) > 0 {
		coordSrv = servers[0]
	}
	app.Coord = rt.SpawnOn("Coordinator", &coordState{app: app}, coordSrv)
	rt.Pin(app.Coord) // the barrier stays put

	boot := actor.NewClient(rt, coordSrv)
	for i := 0; i < cfg.K; i++ {
		ws := &workerState{app: app, idx: i}
		var ref actor.Ref
		if len(servers) > 0 {
			ref = rt.SpawnOn("Worker", ws, servers[i%len(servers)])
		} else {
			ref = rt.Spawn("Worker", ws, app.Coord)
		}
		boot.Send(ref, "init", nil, 1)
		app.Workers = append(app.Workers, ref)
	}
	return app
}

// Start kicks off iteration 0 from a client at the coordinator's site.
func (app *App) Start(k *sim.Kernel) {
	cl := actor.NewClient(app.RT, app.RT.ServerOf(app.Coord))
	cl.Send(app.Coord, "start", nil, 16)
}

// ConvergedTime summarizes the mean of the last third of iteration times —
// the "converged computation time" of Fig. 6.
func (app *App) ConvergedTime() sim.Duration {
	n := len(app.IterationTimes)
	if n == 0 {
		return 0
	}
	start := n * 2 / 3
	var sum sim.Duration
	for _, d := range app.IterationTimes[start:] {
		sum += d
	}
	return sum / sim.Duration(n-start)
}

// Mizan is the §5.4 baseline: after every iteration it pairs the slowest
// and fastest workers by modeled compute time and migrates vertices (and
// their edges) between them, pausing the computation for the transfer.
// Worker actors never change servers, so per-server skew from placement
// remains — matching the paper's observation that Mizan's elasticity
// recovers only a few percent.
type Mizan struct {
	App *App
	// MaxFrac caps the fraction of the gap closed per iteration.
	MaxFrac float64
	// PausePerVertex is the migration stall per moved vertex.
	PausePerVertex sim.Duration

	MovedVertices int64
}

// Attach hooks the migrator into the app's iteration callback chain.
func (mz *Mizan) Attach() {
	if mz.MaxFrac == 0 {
		mz.MaxFrac = 0.1
	}
	if mz.PausePerVertex == 0 {
		mz.PausePerVertex = 40 * sim.Microsecond
	}
	prev := mz.App.OnIteration
	mz.App.OnIteration = func(iter int, d sim.Duration) {
		if prev != nil {
			prev(iter, d)
		}
		mz.rebalance()
	}
}

func (mz *Mizan) rebalance() {
	app := mz.App
	// Pair by modeled response time (edges x multiplier), like Mizan's
	// per-superstep statistics, but migrate plain vertices: the expensive
	// hub vertices stay put (migrating them is what Mizan's planner
	// explicitly avoids), so only the structural component moves.
	slow, fast := 0, 0
	respOf := func(i int) float64 { return float64(app.Edges[i]) * app.Mult[i] }
	for i := range app.Edges {
		if respOf(i) > respOf(slow) {
			slow = i
		}
		if respOf(i) < respOf(fast) {
			fast = i
		}
	}
	gap := app.Edges[slow] - app.Edges[fast]
	if gap <= 0 || slow == fast {
		return
	}
	moveEdges := int64(float64(gap) / 2 * mz.MaxFrac)
	if moveEdges <= 0 {
		return
	}
	// Move vertices proportionally to the edge volume moved.
	var avgDeg float64 = 1
	if app.Vertices[slow] > 0 {
		avgDeg = float64(app.Edges[slow]) / float64(app.Vertices[slow])
	}
	moveVerts := int64(float64(moveEdges) / avgDeg)
	if moveVerts < 1 {
		moveVerts = 1
	}
	if moveVerts > app.Vertices[slow]-1 {
		moveVerts = app.Vertices[slow] - 1
	}
	app.Edges[slow] -= moveEdges
	app.Edges[fast] += moveEdges
	app.Vertices[slow] -= moveVerts
	app.Vertices[fast] += moveVerts
	mz.MovedVertices += moveVerts
	app.extraDelay += sim.Duration(moveVerts) * mz.PausePerVertex
}
