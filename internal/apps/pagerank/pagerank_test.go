package pagerank

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/emr"
	"plasma/internal/epl"
	"plasma/internal/graph"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

func smallConfig(k int, iters int) Config {
	g := graph.GeneratePowerLaw(2000, 8, 2.2, 42)
	parts := graph.PartitionMultilevel(g, k, 1)
	return Config{
		Graph: g, Parts: parts, K: k,
		PerEdgeCost: 20 * sim.Microsecond,
		Iterations:  iters,
	}
}

func TestPolicyChecksAgainstSchema(t *testing.T) {
	pol := epl.MustParse(PolicySrc)
	if _, err := epl.Check(pol, Schema()); err != nil {
		t.Fatal(err)
	}
}

func TestIterationsComplete(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 4, cluster.M5Large)
	rt := actor.NewRuntime(k, c)
	app := Build(k, rt, smallConfig(8, 5), []cluster.MachineID{0, 1, 2, 3})
	app.Start(k)
	k.RunUntilIdle()
	if !app.Done {
		t.Fatal("app did not finish")
	}
	if len(app.IterationTimes) != 5 {
		t.Fatalf("iterations = %d", len(app.IterationTimes))
	}
	for i, d := range app.IterationTimes {
		if d <= 0 {
			t.Fatalf("iteration %d time %v", i, d)
		}
	}
}

func TestPartitionSizesConserved(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M5Large)
	rt := actor.NewRuntime(k, c)
	cfg := smallConfig(4, 1)
	app := Build(k, rt, cfg, []cluster.MachineID{0, 1})
	var verts, edges int64
	for i := range app.Vertices {
		verts += app.Vertices[i]
		edges += app.Edges[i]
	}
	if verts != int64(cfg.Graph.N) {
		t.Fatalf("vertices = %d, want %d", verts, cfg.Graph.N)
	}
	if edges != cfg.Graph.NumEdges() {
		t.Fatalf("edges = %d, want %d", edges, cfg.Graph.NumEdges())
	}
}

func TestSlowestWorkerBoundsIteration(t *testing.T) {
	// Two workers with very different partition sizes on separate servers:
	// the iteration time must track the big partition.
	k := sim.New(1)
	c := cluster.New(k, 2, cluster.M5Large)
	rt := actor.NewRuntime(k, c)
	cfg := Config{K: 2, PerEdgeCost: 100 * sim.Microsecond, Iterations: 2}
	app := Build(k, rt, cfg, []cluster.MachineID{0, 1})
	app.Vertices = []int64{100, 100}
	app.Edges = []int64{10000, 100}
	app.Start(k)
	k.RunUntilIdle()
	// Big partition: 10000 edges * 100µs / SpeedFac 4 = 250 ms minimum.
	if app.IterationTimes[0] < 200*sim.Millisecond {
		t.Fatalf("iteration time %v too fast for slow worker", app.IterationTimes[0])
	}
}

func TestElasticityImprovesConvergedTime(t *testing.T) {
	// Skewed random placement on 4 servers: PLASMA's balance rule should
	// beat the no-elasticity run.
	run := func(elastic bool) sim.Duration {
		k := sim.New(3)
		c := cluster.New(k, 4, cluster.M5Large)
		rt := actor.NewRuntime(k, c)
		prof := profile.New(k, c, rt)
		cfg := smallConfig(16, 300)
		// Skewed placement: most workers start on servers 0-1.
		servers := []cluster.MachineID{0, 0, 0, 1, 1, 1, 0, 1, 0, 1, 0, 1, 2, 2, 3, 3}
		app := Build(k, rt, cfg, servers)
		if elastic {
			mgr := emr.New(k, c, rt, prof, epl.MustParse(PolicySrc),
				emr.Config{Period: 500 * sim.Millisecond, MinResidence: sim.Millisecond})
			mgr.Start()
		}
		app.Start(k)
		k.Run(sim.Time(sim.Minute * 5))
		return app.ConvergedTime()
	}
	plain := run(false)
	elastic := run(true)
	if elastic >= plain {
		t.Fatalf("elastic converged time %v not better than plain %v", elastic, plain)
	}
}

func TestMizanEqualizesWorkersButMovesNoActors(t *testing.T) {
	k := sim.New(1)
	c := cluster.New(k, 4, cluster.M5Large)
	rt := actor.NewRuntime(k, c)
	cfg := smallConfig(8, 20)
	servers := []cluster.MachineID{0, 0, 0, 1, 1, 2, 2, 3}
	app := Build(k, rt, cfg, servers)
	before := make([]cluster.MachineID, len(app.Workers))
	for i, w := range app.Workers {
		before[i] = rt.ServerOf(w)
	}
	mz := &Mizan{App: app}
	mz.Attach()
	app.Start(k)
	k.RunUntilIdle()

	if mz.MovedVertices == 0 {
		t.Fatal("mizan moved no vertices")
	}
	// Edge counts should be much closer than the initial skew.
	min, max := app.Edges[0], app.Edges[0]
	for _, e := range app.Edges {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if float64(max) > 1.3*float64(min) {
		t.Fatalf("mizan left workers skewed: min=%d max=%d", min, max)
	}
	for i, w := range app.Workers {
		if rt.ServerOf(w) != before[i] {
			t.Fatal("mizan moved an actor between servers")
		}
	}
}

func TestMizanPausesCostTime(t *testing.T) {
	mkApp := func(withMizan bool) *App {
		k := sim.New(1)
		c := cluster.New(k, 1, cluster.M5Large)
		rt := actor.NewRuntime(k, c)
		cfg := Config{K: 2, PerEdgeCost: 10 * sim.Microsecond, Iterations: 10}
		app := Build(k, rt, cfg, []cluster.MachineID{0})
		app.Vertices = []int64{1000, 100}
		app.Edges = []int64{8000, 800}
		if withMizan {
			mz := &Mizan{App: app, PausePerVertex: sim.Millisecond}
			mz.Attach()
		}
		app.Start(k)
		k.RunUntilIdle()
		return app
	}
	plain := mkApp(false)
	paused := mkApp(true)
	var sumPlain, sumPaused sim.Duration
	for _, d := range plain.IterationTimes {
		sumPlain += d
	}
	for _, d := range paused.IterationTimes {
		sumPaused += d
	}
	// Same per-iteration compute on one server, but migrations stall the
	// start of following iterations — total elapsed (not summed iteration
	// time) is what grows; just sanity-check vertices moved and nothing
	// was lost.
	var v int64
	for _, x := range paused.Vertices {
		v += x
	}
	if v != 1100 {
		t.Fatalf("vertices not conserved: %d", v)
	}
	_ = sumPlain
	_ = sumPaused
}

func TestConvergedTimeEmpty(t *testing.T) {
	app := &App{}
	if app.ConvergedTime() != 0 {
		t.Fatal("empty app converged time nonzero")
	}
}
