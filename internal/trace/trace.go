// Package trace is PLASMA's elasticity decision-trace layer: a structured,
// deterministic event log of every decision the EER takes — rule
// evaluations (with the profiled values that fed them), the migration
// lifecycle (propose → admit/deny → transfer → commit/rollback),
// provisioning, and chaos injections — so a run's behavior can be
// reconstructed, filtered, diffed, and visualized instead of printf'd.
//
// Records carry virtual time, the servers and actor involved, the rule
// index, and a causal parent id; spans nest (tick → rule eval → action →
// admission → migration), so one elasticity period is a reconstructable
// tree. Because every record is emitted at a deterministic point of the
// simulation and ids come from a plain counter, two runs at the same seed
// produce byte-identical JSONL traces — which is what lets plasma-trace
// diff localize determinism drift to the first divergent decision.
//
// Tracing is off by default: components hold a nil *Tracer and every Emit
// on it is a nil-check returning immediately, so the disabled hot path
// costs nothing and allocates nothing (the perf gate in make bench-quick
// runs untraced).
package trace

import (
	"fmt"

	"plasma/internal/sim"
)

// Kind types a trace record.
type Kind uint8

const (
	// KindTick opens one elasticity period (a span: Value holds the period
	// length in µs, so exporters can render the tick as a duration).
	KindTick Kind = iota
	// KindRuleEval summarizes one rule's evaluation in a context: Value is
	// the number of bindings (or servers) that fired.
	KindRuleEval
	// KindRuleFire is one firing binding of a rule: Actor is the anchor
	// (zero for server-scoped rules), Server the context server, Detail the
	// profiled comparison values that fed the condition.
	KindRuleFire
	// KindReport is a LEM's REPORT send (Detail names the chosen GEM and
	// the attempt number; retransmissions have attempt > 0).
	KindReport
	// KindReportAck is the GEM ack (RREPLY) landing back at the LEM.
	KindReportAck
	// KindStaleReport is a GEM filling a lost REPORT from its
	// bounded-staleness cache (Value is the cached tick).
	KindStaleReport
	// KindGemEval is a GEM evaluating at the report-window deadline
	// (Detail carries gem id, report/stale counts, and the effective
	// quorum; a below-quorum skip is recorded too).
	KindGemEval
	// KindPropose is one planned migration action (Actor, Server=src,
	// Target=trg; Detail carries the behavior kind and priority).
	KindPropose
	// KindResolveDrop is an action lost to conflict resolution or skipped
	// before admission (stale source, crashed LEM, pinned actor).
	KindResolveDrop
	// KindQuery is the admission QUERY leaving the source LEM.
	KindQuery
	// KindAdmit is a granted admission (QREPLY true).
	KindAdmit
	// KindDeny is a denied admission; Detail is the reason (target-down,
	// draining, reserved, over-bound, timeout).
	KindDeny
	// KindTransfer is a live migration starting its state transfer
	// (Value is the actor's state size in bytes).
	KindTransfer
	// KindCommit is a migration committing on its destination.
	KindCommit
	// KindRollback is a migration aborted or rolled back; Detail is the
	// reason (dst-crash, src-crash, actor-stopped, …).
	KindRollback
	// KindScaleOut is a GEM's corroborated scale-out decision (Value is
	// the provisioning demand in servers).
	KindScaleOut
	// KindScaleIn is a GEM's corroborated scale-in decision: the victim
	// server (Target) begins draining.
	KindScaleIn
	// KindProvision is the cluster booting a new machine (Target).
	KindProvision
	// KindMachineUp is a provisioned machine finishing its boot delay.
	KindMachineUp
	// KindDecommission is a machine leaving service permanently.
	KindDecommission
	// KindCrash is a machine failure.
	KindCrash
	// KindRepair is a failed machine returning to service.
	KindRepair
	// KindChaos is a chaos-layer injection: a message fault verdict or a
	// scheduled control-plane fault (Detail carries the injector's line).
	KindChaos
	// KindProvFail is a provisioning attempt failing before the machine
	// reaches Up (Detail names the provisioning class, Value the attempt).
	KindProvFail
	// KindProvRetry is a failed provision being rescheduled with capped
	// exponential backoff (Value is the backoff delay in µs).
	KindProvRetry
	// KindShed is an overloaded actor rejecting a delivery because its
	// bounded mailbox is full (Value is the mailbox capacity).
	KindShed
	// KindHandoff is an executor-level key-range handoff in the Elasticutor
	// baseline (Server=src server, Target=dst server, Actor=src executor,
	// Value=state bytes moved, Detail=key count) — the baseline's analogue
	// of a transfer/commit pair.
	KindHandoff
	// KindPlanBatch summarizes one batched multi-resource planning round
	// (Config.Planner = "batch"): Value is the number of planned actions,
	// Detail carries the over/under server counts and how many moves the
	// packing round batched per destination.
	KindPlanBatch
	// KindXferPipeline is a migration transfer passing through the per-NIC
	// pipeline: Value is the wire time in µs, Detail the queue wait behind
	// earlier transfers into the same destination NIC (zero when the
	// transfer overlapped with traffic to other destinations).
	KindXferPipeline
	numKinds
)

var kindNames = [numKinds]string{
	"tick", "rule-eval", "rule-fire", "report", "report-ack",
	"stale-report", "gem-eval", "propose", "resolve-drop", "query",
	"admit", "deny", "transfer", "commit", "rollback", "scale-out",
	"scale-in", "provision", "machine-up", "decommission", "crash",
	"repair", "chaos", "prov-fail", "prov-retry", "shed", "handoff",
	"plan-batch", "xfer-pipeline",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindFromString parses a Kind name as written by Kind.String.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Kinds lists every kind in declaration order (for summaries).
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Record is one trace event. The zero value of the identity fields means
// "not applicable": Server/Target/Rule use -1 for none, Actor 0, Parent 0
// (a root record).
type Record struct {
	// ID is the record's position in the emission order (1-based); Parent
	// is the causally-enclosing record's ID (0 for roots). Together they
	// form the span tree: tick → rule eval → propose → query → transfer.
	ID     uint64
	Parent uint64
	// At is the virtual time the record was emitted.
	At   sim.Time
	Kind Kind
	// Tick is the elasticity period index (1-based; 0 when outside one).
	Tick int32
	// Server and Target are machine ids (-1 when not applicable); for a
	// migration, Server is the source and Target the destination.
	Server int32
	Target int32
	// Actor is the subject actor's id (0 when not applicable).
	Actor uint64
	// Rule is the policy rule index (-1 when not applicable).
	Rule int32
	// Value carries the record's scalar payload (period µs for ticks,
	// fired-binding counts for rule evals, state bytes for transfers, …).
	Value float64
	// Detail is a short human-readable qualifier (deny reason, profiled
	// values, chaos verdict). Kept small; the typed fields carry identity.
	Detail string
}

// Sink consumes emitted records. Implementations must not retain pointers
// into the record (it is passed by value) and must be deterministic: the
// trace layer's contract is byte-identical output at a fixed seed.
type Sink interface {
	Emit(Record)
}

// Tracer assigns record ids and timestamps and forwards to a Sink. A nil
// *Tracer is the disabled tracer: every method is safe to call and does
// nothing, so components gate their tracing on a single nil-check.
type Tracer struct {
	sink   Sink
	now    func() sim.Time
	nextID uint64
}

// New creates a tracer writing to sink. Call SetClock once a simulation
// kernel exists so records carry virtual time.
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// SetClock installs the virtual-time source (pass kernel.Now). Safe on a
// nil tracer. Experiments that run several kernels sequentially re-point
// the clock at each new kernel.
func (t *Tracer) SetClock(now func() sim.Time) {
	if t != nil {
		t.now = now
	}
}

// Enabled reports whether emissions reach a sink. Call sites that must
// format a Detail string should guard on this so the disabled path does
// not pay for fmt.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit stamps the record with the next id and the current virtual time
// and hands it to the sink, returning the id for use as a causal parent.
// On a nil tracer it returns 0 without touching the record.
func (t *Tracer) Emit(r Record) uint64 {
	if t == nil {
		return 0
	}
	t.nextID++
	r.ID = t.nextID
	if t.now != nil {
		r.At = t.now()
	}
	t.sink.Emit(r)
	return r.ID
}

// Ring is a fixed-capacity ring-buffer sink: the last cap records are
// kept, older ones are overwritten. The buffer is allocated once at
// construction, so steady-state emission allocates nothing (Detail
// strings aside, which the emitting site owns).
type Ring struct {
	buf   []Record
	start int
	n     int
	total uint64
}

// NewRing creates a ring holding the most recent capacity records.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Record, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(rec Record) {
	r.total++
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = rec
		r.n++
		return
	}
	r.buf[r.start] = rec
	r.start = (r.start + 1) % len(r.buf)
}

// Records returns the buffered records oldest-first (a fresh slice).
func (r *Ring) Records() []Record {
	out := make([]Record, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Total reports how many records were ever emitted into the ring.
func (r *Ring) Total() uint64 { return r.total }

// Dropped reports how many records the ring has overwritten.
func (r *Ring) Dropped() uint64 { return r.total - uint64(r.n) }
