package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"plasma/internal/sim"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must report disabled")
	}
	if id := tr.Emit(Record{Kind: KindTick}); id != 0 {
		t.Fatalf("nil tracer Emit returned id %d, want 0", id)
	}
	tr.SetClock(func() sim.Time { return 5 }) // must not panic
	if New(nil) != nil {
		t.Fatal("New(nil) should yield the disabled (nil) tracer")
	}
}

func TestEmitAssignsIDsAndTime(t *testing.T) {
	ring := NewRing(8)
	tr := New(ring)
	now := sim.Time(0)
	tr.SetClock(func() sim.Time { return now })

	if id := tr.Emit(Record{Kind: KindTick, Server: -1}); id != 1 {
		t.Fatalf("first id = %d, want 1", id)
	}
	now = 42
	id2 := tr.Emit(Record{Kind: KindRuleEval, Parent: 1, Server: -1})
	if id2 != 2 {
		t.Fatalf("second id = %d, want 2", id2)
	}
	recs := ring.Records()
	if len(recs) != 2 {
		t.Fatalf("ring holds %d records, want 2", len(recs))
	}
	if recs[1].At != 42 || recs[1].Parent != 1 || recs[1].ID != 2 {
		t.Fatalf("second record = %+v", recs[1])
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	ring := NewRing(3)
	tr := New(ring)
	for i := 0; i < 5; i++ {
		tr.Emit(Record{Kind: KindChaos})
	}
	recs := ring.Records()
	if len(recs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recs))
	}
	if recs[0].ID != 3 || recs[2].ID != 5 {
		t.Fatalf("ring kept ids %d..%d, want 3..5", recs[0].ID, recs[2].ID)
	}
	if ring.Total() != 5 || ring.Dropped() != 2 {
		t.Fatalf("total=%d dropped=%d, want 5/2", ring.Total(), ring.Dropped())
	}
}

func sampleRecords() []Record {
	return []Record{
		{ID: 1, Parent: 0, At: 60_000_000, Kind: KindTick, Tick: 1, Server: -1, Target: -1, Rule: -1, Value: 60_000_000, Detail: "up=4"},
		{ID: 2, Parent: 1, At: 60_000_000, Kind: KindRuleEval, Tick: 1, Server: -1, Target: -1, Rule: 0, Value: 2, Detail: "lem"},
		{ID: 3, Parent: 2, At: 60_000_000, Kind: KindRuleFire, Tick: 1, Server: 2, Target: -1, Actor: 7, Rule: 0, Value: 0, Detail: `server.cpu.perc > 85 = 91.5`},
		{ID: 4, Parent: 1, At: 60_004_000, Kind: KindPropose, Tick: 1, Server: 2, Target: 0, Actor: 7, Rule: -1, Detail: "balance pri=40"},
		{ID: 5, Parent: 4, At: 60_008_000, Kind: KindDeny, Tick: 1, Server: 0, Target: -1, Actor: 7, Rule: -1, Detail: "over-bound cpu 91.2+3.4>85"},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(recs) {
		t.Fatalf("wrote %d lines, want %d", n, len(recs))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("read %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], recs[i])
		}
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same records must serialize to identical bytes")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line must error")
	}
	bad := `{"id":1,"par":0,"at":0,"kind":"no-such-kind","tick":0,"srv":-1,"trg":-1,"actor":0,"rule":-1,"val":0,"det":""}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("unknown kind must error, got %v", err)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("kind %d (%s) does not round-trip", k, k)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Fatal("bogus kind must not parse")
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not a JSON array: %v", err)
	}
	// process_name + thread metadata + one event per record.
	var spans, instants int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			spans++
			if ev["dur"].(float64) != 60_000_000 {
				t.Fatalf("tick span dur = %v, want 6e7", ev["dur"])
			}
		case "i":
			instants++
		}
	}
	if spans != 1 || instants != 4 {
		t.Fatalf("got %d spans, %d instants; want 1 and 4", spans, instants)
	}

	var again bytes.Buffer
	if err := WriteChromeTrace(&again, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("chrome export must be deterministic")
	}
}

func TestEmitIsAllocFreeWhenDisabled(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		tr.Emit(Record{Kind: KindQuery, Server: 1, Target: 2, Actor: 3})
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %.1f per call, want 0", allocs)
	}
}
