package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"plasma/internal/sim"
)

// The JSONL format is the trace layer's interchange form: one record per
// line, every field present, fields in a fixed order, floats in Go's
// shortest 'g' form. Writing is deliberately by hand (not encoding/json)
// so the byte layout is a function of the records alone — two runs at the
// same seed produce byte-identical files, and `plasma-trace diff` (or
// plain cmp) localizes determinism drift to the first divergent record.

// jsonlRecord mirrors Record for parsing; Kind travels as its string name.
type jsonlRecord struct {
	ID     uint64  `json:"id"`
	Parent uint64  `json:"par"`
	At     int64   `json:"at"`
	Kind   string  `json:"kind"`
	Tick   int32   `json:"tick"`
	Server int32   `json:"srv"`
	Target int32   `json:"trg"`
	Actor  uint64  `json:"actor"`
	Rule   int32   `json:"rule"`
	Value  float64 `json:"val"`
	Detail string  `json:"det"`
}

// AppendJSONL appends one record's JSONL line (with trailing newline).
func AppendJSONL(dst []byte, r Record) []byte {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, r.ID, 10)
	dst = append(dst, `,"par":`...)
	dst = strconv.AppendUint(dst, r.Parent, 10)
	dst = append(dst, `,"at":`...)
	dst = strconv.AppendInt(dst, int64(r.At), 10)
	dst = append(dst, `,"kind":`...)
	dst = strconv.AppendQuote(dst, r.Kind.String())
	dst = append(dst, `,"tick":`...)
	dst = strconv.AppendInt(dst, int64(r.Tick), 10)
	dst = append(dst, `,"srv":`...)
	dst = strconv.AppendInt(dst, int64(r.Server), 10)
	dst = append(dst, `,"trg":`...)
	dst = strconv.AppendInt(dst, int64(r.Target), 10)
	dst = append(dst, `,"actor":`...)
	dst = strconv.AppendUint(dst, r.Actor, 10)
	dst = append(dst, `,"rule":`...)
	dst = strconv.AppendInt(dst, int64(r.Rule), 10)
	dst = append(dst, `,"val":`...)
	dst = strconv.AppendFloat(dst, r.Value, 'g', -1, 64)
	dst = append(dst, `,"det":`...)
	dst = strconv.AppendQuote(dst, r.Detail)
	dst = append(dst, '}', '\n')
	return dst
}

// WriteJSONL writes records as JSONL, one per line, in order.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, r := range recs {
		line = AppendJSONL(line[:0], r)
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace. Blank lines are skipped; any malformed
// line or unknown kind is an error naming the line number.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var jr jsonlRecord
		if err := json.Unmarshal(line, &jr); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		k, ok := KindFromString(jr.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", lineNo, jr.Kind)
		}
		out = append(out, Record{
			ID: jr.ID, Parent: jr.Parent, At: sim.Time(jr.At), Kind: k,
			Tick: jr.Tick, Server: jr.Server, Target: jr.Target,
			Actor: jr.Actor, Rule: jr.Rule, Value: jr.Value, Detail: jr.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return out, nil
}
