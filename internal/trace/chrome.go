package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Chrome trace_event export: the JSON Array Format understood by
// chrome://tracing and Perfetto (ui.perfetto.dev). Virtual time is already
// microseconds, which is exactly the ts unit the format wants.
//
// Mapping: everything lives in one process ("plasma"); each server gets a
// thread (named "server N"), and records with no server (GEM-side and
// cluster-global events) land on a synthetic "control-plane" thread. Ticks
// export as complete ("X") spans of one elasticity period; everything else
// is an instant ("i") event carrying its typed fields in args, including
// the causal parent id so a span tree can be rebuilt from the UI.

type chromeEvent struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat,omitempty"`
	Ph    string                 `json:"ph"`
	Ts    int64                  `json:"ts"`
	Dur   int64                  `json:"dur,omitempty"`
	Pid   int                    `json:"pid"`
	Tid   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

const (
	chromePid     = 1
	controlTid    = 1
	serverTidBase = 2 // server N maps to tid N+serverTidBase
)

func chromeTid(server int32) int {
	if server < 0 {
		return controlTid
	}
	return int(server) + serverTidBase
}

// WriteChromeTrace converts records to the Chrome trace_event JSON array
// format. Output is deterministic for a given record slice.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	var events []chromeEvent

	// Thread metadata: name every tid we will reference, in sorted order.
	tids := map[int]string{controlTid: "control-plane"}
	for _, r := range recs {
		if r.Server >= 0 {
			tids[chromeTid(r.Server)] = "server " + strconv.Itoa(int(r.Server))
		}
	}
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]interface{}{"name": "plasma"},
	})
	order := make([]int, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Ints(order)
	for _, tid := range order {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]interface{}{"name": tids[tid]},
		})
	}

	for _, r := range recs {
		args := map[string]interface{}{"id": r.ID}
		if r.Parent != 0 {
			args["parent"] = r.Parent
		}
		if r.Tick != 0 {
			args["tick"] = r.Tick
		}
		if r.Actor != 0 {
			args["actor"] = r.Actor
		}
		if r.Rule >= 0 {
			args["rule"] = r.Rule
		}
		if r.Target >= 0 {
			args["target"] = r.Target
		}
		if r.Detail != "" {
			args["detail"] = r.Detail
		}
		ev := chromeEvent{
			Name: r.Kind.String(), Cat: "plasma", Ts: int64(r.At),
			Pid: chromePid, Tid: chromeTid(r.Server), Args: args,
		}
		if r.Kind == KindTick && r.Value > 0 {
			ev.Ph, ev.Dur = "X", int64(r.Value)
			ev.Name = "tick " + strconv.Itoa(int(r.Tick))
		} else {
			ev.Ph, ev.Scope = "i", "t"
		}
		events = append(events, ev)
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
		if i != len(events)-1 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
