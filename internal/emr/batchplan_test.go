package emr

import (
	"strings"
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/trace"
)

// newBatchEnv is newPlanEnv with the batch planner selected.
func newBatchEnv(t *testing.T, machines int) *planEnv {
	t.Helper()
	pe := newPlanEnv(t, machines)
	pe.m.Cfg.Planner = "batch"
	return pe
}

// buildSnapVec is buildSnap with full (cpu, mem, net) server vectors.
func buildSnapVec(pe *planEnv, servers [][3]float64, actors []*epl.ActorInfo) *epl.Snapshot {
	snap := &epl.Snapshot{At: pe.e.k.Now(), Window: 1}
	for i, v := range servers {
		snap.Servers = append(snap.Servers, &epl.ServerInfo{
			ID: cluster.MachineID(i), CPUPerc: v[0], MemPerc: v[1], NetPerc: v[2],
			VCPUs: 2, MemMB: 4096, NetMbps: 1000, Up: true,
		})
	}
	snap.Actors = actors
	return snap.Index()
}

// setMem gives the actor a consistent memory share on the 4096 MB test
// machines (loadOn recomputes the target share from MemBytes).
func setMem(ai *epl.ActorInfo, pct float64) *epl.ActorInfo {
	ai.MemPerc = pct
	ai.MemBytes = int64(pct / 100 * 4096 * 1024 * 1024)
	return ai
}

// The batch round packs on all three axes: a target whose memory would
// cross the admission bound is rejected even if it is the quietest on the
// planned (CPU) axis. The legacy single-axis planner picks it and the move
// dies at admission a hop later.
func TestBatchTargetMustFitEveryAxis(t *testing.T) {
	pe := newBatchEnv(t, 3)
	mover := setMem(mkActor(pe, "W", 0, 20), 10)
	servers := [][3]float64{{95, 20, 0}, {30, 84, 0}, {50, 10, 0}}
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}

	snap := buildSnapVec(pe, servers, []*epl.ActorInfo{mover})
	acts, _, _, _, _ := pe.m.planResourceBatch(scope(3), snap, &epl.Intents{Balance: []epl.BalanceIntent{bi}}, 0, 0)
	if len(acts) != 1 || acts[0].Trg != 2 {
		t.Fatalf("batch actions = %+v, want the mover on server 2 (server 1 memory would hit 94%%)", acts)
	}

	// Contrast pin: the legacy planner only sees the CPU axis and picks the
	// server that admission will refuse.
	pe.m.Cfg.Planner = ""
	snap = buildSnapVec(pe, servers, []*epl.ActorInfo{mover})
	acts, _, _, _, _ = pe.m.planResource(scope(3), snap, &epl.Intents{Balance: []epl.BalanceIntent{bi}})
	if len(acts) != 1 || acts[0].Trg != 1 {
		t.Fatalf("legacy actions = %+v, want the single-axis choice of server 1", acts)
	}
}

// Among fitting targets the mover's communication affinity wins over
// projected load; with no profiled traffic the round falls back to the
// least-loaded choice.
func TestBatchTargetPrefersCommunicationAffinity(t *testing.T) {
	pe := newBatchEnv(t, 3)
	peer := mkActor(pe, "P", 2, 5)
	mover := mkActor(pe, "W", 0, 20)
	mover.Calls = []epl.CallStat{{CallerType: "P", Caller: peer.Ref, Method: "m", Count: 50}}
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}

	snap := buildSnapVec(pe, [][3]float64{{95, 0, 0}, {30, 0, 0}, {40, 0, 0}}, []*epl.ActorInfo{peer, mover})
	acts, _, _, _, _ := pe.m.planResourceBatch(scope(3), snap, &epl.Intents{Balance: []epl.BalanceIntent{bi}}, 0, 0)
	if len(acts) != 1 || acts[0].Trg != 2 {
		t.Fatalf("actions = %+v, want the mover beside its peer on server 2", acts)
	}

	mover.Calls = nil
	snap = buildSnapVec(pe, [][3]float64{{95, 0, 0}, {30, 0, 0}, {40, 0, 0}}, []*epl.ActorInfo{peer, mover})
	acts, _, _, _, _ = pe.m.planResourceBatch(scope(3), snap, &epl.Intents{Balance: []epl.BalanceIntent{bi}}, 0, 0)
	if len(acts) != 1 || acts[0].Trg != 1 {
		t.Fatalf("actions = %+v, want the least-loaded server 1 without traffic", acts)
	}
}

// Later intents plan against the projection the earlier ones left behind:
// after intent A lands its mover on the quietest server, intent B's mover
// goes to the next-quietest instead of piling onto the same target.
func TestBatchIntentsShareOneProjection(t *testing.T) {
	pe := newBatchEnv(t, 4)
	a := mkActor(pe, "A", 0, 25)
	b := mkActor(pe, "B", 1, 25)
	in := &epl.Intents{Balance: []epl.BalanceIntent{
		{Types: []string{"A"}, Res: epl.CPU, Upper: 80, Lower: 60},
		{Types: []string{"B"}, Res: epl.CPU, Upper: 80, Lower: 60},
	}}
	snap := buildSnapVec(pe, [][3]float64{{95, 0, 0}, {95, 0, 0}, {30, 0, 0}, {40, 0, 0}}, []*epl.ActorInfo{a, b})
	acts, _, _, _, _ := pe.m.planResourceBatch(scope(4), snap, in, 0, 0)
	if len(acts) != 2 {
		t.Fatalf("actions = %+v, want both movers placed", acts)
	}
	if acts[0].Actor != a.Ref || acts[0].Trg != 2 {
		t.Fatalf("first action %+v, want A on server 2", acts[0])
	}
	if acts[1].Actor != b.Ref || acts[1].Trg != 3 {
		t.Fatalf("second action %+v, want B pushed to server 3 by A's projected load", acts[1])
	}
}

// An actor planned by one intent is off the table for every later intent in
// the same round: overlapping rules yield one action, not conflicting ones.
func TestBatchNeverPlansAnActorTwice(t *testing.T) {
	pe := newBatchEnv(t, 2)
	w := mkActor(pe, "W", 0, 20)
	in := &epl.Intents{Balance: []epl.BalanceIntent{
		{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60},
		{Types: []string{"W"}, Res: epl.CPU, Upper: 70, Lower: 50},
	}}
	snap := buildSnapVec(pe, [][3]float64{{95, 0, 0}, {30, 0, 0}}, []*epl.ActorInfo{w})
	acts, _, _, _, _ := pe.m.planResourceBatch(scope(2), snap, in, 0, 0)
	if len(acts) != 1 {
		t.Fatalf("actions = %+v, want the shared actor planned exactly once", acts)
	}
}

// Every batch round leaves one plan-batch record summarizing the moves and
// the residual band pressure.
func TestBatchRoundEmitsPlanBatchRecord(t *testing.T) {
	pe := newBatchEnv(t, 3)
	ring := trace.NewRing(1 << 10)
	pe.m.SetTracer(trace.New(ring))
	w := mkActor(pe, "W", 0, 20)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	snap := buildSnapVec(pe, [][3]float64{{95, 0, 0}, {30, 0, 0}, {40, 0, 0}}, []*epl.ActorInfo{w})
	acts, _, _, _, _ := pe.m.planResourceBatch(scope(3), snap, &epl.Intents{Balance: []epl.BalanceIntent{bi}}, 7, 3)
	if len(acts) != 1 {
		t.Fatalf("actions = %+v", acts)
	}
	var rec *trace.Record
	for _, r := range ring.Records() {
		if r.Kind == trace.KindPlanBatch {
			r := r
			rec = &r
		}
	}
	if rec == nil {
		t.Fatal("no plan-batch record emitted")
	}
	if rec.Parent != 7 || rec.Tick != 3 {
		t.Fatalf("record %+v, want parent 7 tick 3", rec)
	}
	if rec.Value != 1 || !strings.Contains(rec.Detail, "moves=1") || !strings.Contains(rec.Detail, "dsts=1") {
		t.Fatalf("record %+v, want one move to one destination summarized", rec)
	}
}

// In batch mode a colocation group with internal traffic anchors where that
// traffic already lands, not where the most state sits; without traffic (or
// without the batch planner) the mass rule still decides.
func TestGroupAnchorFollowsIntraGroupTraffic(t *testing.T) {
	pe := newBatchEnv(t, 3)
	a := mkActor(pe, "A", 1, 5)
	a.MemBytes = 1 << 30 // the mass rule would anchor on server 1
	b := mkActor(pe, "B", 2, 5)
	c := mkActor(pe, "C", 2, 5)
	c.Calls = []epl.CallStat{
		{CallerType: "A", Caller: a.Ref, Method: "m", Count: 10},
		{CallerType: "B", Caller: b.Ref, Method: "m", Count: 2},
	}
	members := []*epl.ActorInfo{a, b, c}

	dest, anchor := pe.m.groupAnchor(members, map[actor.Ref]Action{})
	if dest != 2 {
		t.Fatalf("dest = %d, want the traffic home server 2", dest)
	}
	if anchor != b.Ref {
		t.Fatalf("anchor = %v, want the first resident member %v", anchor, b.Ref)
	}

	// No intra-group traffic: affinity abstains, mass decides.
	c.Calls = nil
	if dest, _ := pe.m.groupAnchor(members, map[actor.Ref]Action{}); dest != 1 {
		t.Fatalf("dest = %d, want the mass anchor server 1 without traffic", dest)
	}

	// Legacy planner: traffic is ignored entirely.
	c.Calls = []epl.CallStat{{CallerType: "A", Caller: a.Ref, Method: "m", Count: 10}}
	pe.m.Cfg.Planner = ""
	if dest, _ := pe.m.groupAnchor(members, map[actor.Ref]Action{}); dest != 1 {
		t.Fatalf("dest = %d, want the legacy mass anchor server 1", dest)
	}
}

// A mover that fits nowhere on every axis is unresolved overload: the round
// reports scale-out pressure.
func TestBatchWantOutWhenNothingFits(t *testing.T) {
	pe := newBatchEnv(t, 2)
	w := mkActor(pe, "W", 0, 40)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	snap := buildSnapVec(pe, [][3]float64{{95, 0, 0}, {70, 0, 0}}, []*epl.ActorInfo{w})
	acts, _, _, outNeed, _ := pe.m.planResourceBatch(scope(2), snap, &epl.Intents{Balance: []epl.BalanceIntent{bi}}, 0, 0)
	if len(acts) != 0 {
		t.Fatalf("actions = %+v, want none (70+40 crosses the bound)", acts)
	}
	if outNeed == 0 {
		t.Fatal("unplaceable overload reported no scale-out need")
	}
}

// The low-water side still works through the batch round: a tight band
// redistributes via planDeficitFill and the moves land in the shared
// projection.
func TestBatchLowWaterRedistributes(t *testing.T) {
	pe := newBatchEnv(t, 2)
	actors := []*epl.ActorInfo{mkActor(pe, "W", 0, 6), mkActor(pe, "W", 0, 3)}
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 70, Lower: 60}
	snap := buildSnapVec(pe, [][3]float64{{66, 0, 0}, {54, 0, 0}}, actors)
	acts, _, _, _, _ := pe.m.planResourceBatch(scope(2), snap, &epl.Intents{Balance: []epl.BalanceIntent{bi}}, 0, 0)
	if len(acts) == 0 {
		t.Fatal("tight-band low-water redistribution never fired in batch mode")
	}
	for _, a := range acts {
		if a.Src != 0 || a.Trg != 1 {
			t.Fatalf("action %+v, want a move from 0 to the starved server 1", a)
		}
	}
}
