package emr

import (
	"fmt"
	"sort"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/graph"
	"plasma/internal/trace"
)

// Batched multi-resource planning round (Config.Planner = "batch").
//
// The legacy planner (planner.go) walks intents one at a time: each balance
// rule greedily sheds its own resource axis with no knowledge of the other
// axes, reservations and balance moves are planned against the same static
// loads, and colocation anchors by resident memory. The batch round instead
// collects the period's reserve and balance intents and solves one
// deterministic greedy packing pass over per-server (cpu, mem, net)
// utilization vectors:
//
//   - every planned move updates a shared projection, so a later intent
//     sees the fleet as the earlier ones will leave it;
//   - a target must fit the mover on *all three* axes (the planned axis
//     under the rule's upper bound, the others under the admission bound),
//     so multi-resource conflicts are caught at plan time instead of being
//     denied at admission a hop later;
//   - among fitting targets the mover's communication affinity decides
//     (the profiled message-rate graph, internal/graph), so chatty actors
//     batch toward common destinations and colocate groups anchor where
//     the group's traffic already lands;
//   - the resulting migrations execute through the per-NIC transfer
//     pipeline (actor.Runtime.XferPipeline), which the batch planner turns
//     on at Manager construction.
//
// Determinism argument: servers are scanned in snapshot (id) order, over
// sources are sorted by (load desc, id asc), candidates come from
// balanceCandidates' stable heaviest-first order, affinity adjacency is
// id-sorted, and every tiebreak ends at the lowest server id. No map is
// iterated without an intervening sort. At a fixed seed the round is
// byte-reproducible, which the plan_* experiment gates check.
//
// The legacy planner remains the default and is byte-frozen: with Planner
// unset nothing in this file runs.

// axisIdx maps a Resource to its ResVec axis.
func axisIdx(r epl.Resource) int {
	for i, rr := range epl.Resources {
		if rr == r {
			return i
		}
	}
	return 0
}

// loadVecOn is loadOn across all three axes: the actor's projected
// utilization vector on the target, capacity-rescaled per axis.
func (m *Manager) loadVecOn(ai *epl.ActorInfo, trg cluster.MachineID, snap *epl.Snapshot) [3]float64 {
	return [3]float64{
		m.loadOn(ai, epl.CPU, trg, snap),
		m.loadOn(ai, epl.Mem, trg, snap),
		m.loadOn(ai, epl.Net, trg, snap),
	}
}

// buildAffinity folds the snapshot's profiled call stats into an undirected
// actor communication graph, weighted by message count per window. Client
// calls (Caller.ID == 0) have no actor peer and are skipped.
func buildAffinity(snap *epl.Snapshot) *graph.Affinity {
	af := graph.NewAffinity()
	for _, ai := range snap.Actors {
		for _, cs := range ai.Calls {
			if cs.Caller.ID == 0 {
				continue
			}
			af.Add(int64(ai.Ref.ID), int64(cs.Caller.ID), float64(cs.Count))
		}
	}
	return af
}

// batchState is the shared projection the packing round mutates.
type batchState struct {
	servers []cluster.MachineID                  // packing set, id order
	proj    map[cluster.MachineID]*[3]float64    // projected (cpu, mem, net)
	dest    map[actor.ID]cluster.MachineID       // planned destinations this round
	af      *graph.Affinity
	snap    *epl.Snapshot
}

// affTo is the mover's communication affinity to a target: summed edge
// weight toward peers resident there, counting peers already planned to
// move there this round.
func (bs *batchState) affTo(id actor.ID, trg cluster.MachineID) float64 {
	var s float64
	for _, e := range bs.af.Peers(int64(id)) {
		p := actor.ID(e.Peer)
		srv, planned := bs.dest[p]
		if !planned {
			pi := bs.snap.Actor(actor.Ref{ID: p})
			if pi == nil {
				continue
			}
			srv = pi.Server
		}
		if srv == trg {
			s += e.Weight
		}
	}
	return s
}

// planResourceBatch is the batch-mode replacement for planResource: same
// contract (actions plus the scale signals), one packing round instead of
// per-intent greedy shedding. parent/tickIdx anchor the plan-batch trace
// record to the GEM evaluation that produced the intents.
func (m *Manager) planResourceBatch(scope []cluster.MachineID, snap *epl.Snapshot, in *epl.Intents, parent uint64, tickIdx int) (actions []Action, allOver, allUnder bool, outNeed int, wantIn bool) {
	inScope := map[cluster.MachineID]bool{}
	for _, id := range scope {
		inScope[id] = true
	}

	// Reservations first, exactly like the legacy round (planReserve itself
	// carries the batch-mode lexicographic target tiebreak): they are the
	// most specific placement demands and remove their servers from the
	// packing set.
	takenThisTick := map[cluster.MachineID]bool{}
	nResv := 0
	for _, ri := range in.Reserve {
		for srv, owner := range m.reserved {
			if owner == ri.Actor {
				m.resLease[srv] = m.Stats.Ticks
			}
		}
		a, starved := m.planReserve(ri, snap, inScope, takenThisTick)
		if a != nil {
			takenThisTick[a.Trg] = true
			actions = append(actions, *a)
			nResv++
		}
		if starved {
			outNeed++
		}
	}

	// Packing set: scoped, up, shared-pool servers, with their projected
	// multi-resource vectors. Servers dedicated this very tick are excluded
	// — the legacy planner would still balance onto them, only to be denied
	// at admission.
	bs := &batchState{
		proj: map[cluster.MachineID]*[3]float64{},
		dest: map[actor.ID]cluster.MachineID{},
		af:   buildAffinity(snap),
		snap: snap,
	}
	for _, srv := range snap.Servers {
		if !srv.Up || !inScope[srv.ID] || m.draining[srv.ID] || takenThisTick[srv.ID] {
			continue
		}
		if _, taken := m.reserved[srv.ID]; taken {
			continue
		}
		v := srv.ResVec()
		bs.servers = append(bs.servers, srv.ID)
		bs.proj[srv.ID] = &v
	}
	if len(bs.servers) == 0 {
		m.traceBatch(parent, tickIdx, actions, nResv, 0, 0)
		return actions, false, false, outNeed, false
	}

	nOverTotal, nUnderTotal := 0, 0
	for _, bi := range in.Balance {
		acts, over, under, out, in2 := m.packBalance(bi, bs)
		actions = append(actions, acts...)
		allOver = allOver || over
		allUnder = allUnder || under
		if out {
			outNeed++
		}
		wantIn = wantIn || in2
		no, nu := m.bandCounts(bi, bs)
		nOverTotal += no
		nUnderTotal += nu
	}
	m.traceBatch(parent, tickIdx, actions, nResv, nOverTotal, nUnderTotal)
	return actions, allOver, allUnder, outNeed, wantIn
}

// bandCounts reports how many packing-set servers remain over/under the
// intent's band after the round (the plan-batch record's summary).
func (m *Manager) bandCounts(bi epl.BalanceIntent, bs *batchState) (nOver, nUnder int) {
	upper, lower := m.bandOf(bi)
	ax := axisIdx(bi.Res)
	for _, id := range bs.servers {
		switch l := bs.proj[id][ax]; {
		case l > upper:
			nOver++
		case l < lower:
			nUnder++
		}
	}
	return nOver, nUnder
}

// bandOf applies the rule's threshold defaulting (planBalance's rules).
func (m *Manager) bandOf(bi epl.BalanceIntent) (upper, lower float64) {
	upper = bi.Upper
	lower = bi.Lower
	if !bi.HasUpper() {
		upper = m.Cfg.DefaultUpper
	}
	if !bi.HasLower() {
		lower = upper
	}
	return upper, lower
}

// packBalance runs one balance intent through the shared packing state:
// over-upper sources shed heaviest-first into multi-resource, affinity-
// scored targets; the low-water side reuses planDeficitFill over the
// projected loads. Scale signals keep planBalance's semantics.
func (m *Manager) packBalance(bi epl.BalanceIntent, bs *batchState) (actions []Action, allOver, allUnder, wantOut, wantIn bool) {
	upper, lower := m.bandOf(bi)
	ax := axisIdx(bi.Res)

	var over []srvLoad
	nOver, nUnder, total := 0, 0, 0
	for _, id := range bs.servers {
		total++
		load := bs.proj[id][ax]
		if load > upper {
			nOver++
			over = append(over, srvLoad{id, load})
		} else if load < lower {
			nUnder++
		}
	}
	if total == 0 {
		return nil, false, false, false, false
	}
	allOver = nOver == total
	allUnder = nUnder == total
	wantIn = allUnder && total > m.Cfg.MinServers

	if len(over) == 0 {
		// Low-water redistribution on the projected loads: planDeficitFill
		// already carries the band-relative thresholds. Its accounting is
		// axis-local; apply the moves to the shared projection so later
		// intents see them.
		if nUnder > 0 && bi.HasLower() {
			minSource := 0.0
			if bi.HasUpper() {
				minSource = (upper + lower) / 2
			}
			cur := make([]srvLoad, 0, len(bs.servers))
			for _, id := range bs.servers {
				cur = append(cur, srvLoad{id, bs.proj[id][ax]})
			}
			actions = m.planDeficitFill(bi, bs.snap, cur, lower, upper-lower, minSource)
			for _, a := range actions {
				ai := bs.snap.Actor(a.Actor)
				bs.proj[a.Src][ax] -= ai.ResOf(bi.Res)
				bs.proj[a.Trg][ax] += m.loadOn(ai, bi.Res, a.Trg, bs.snap)
				bs.dest[a.Actor.ID] = a.Trg
			}
		}
		return actions, allOver, allUnder, false, wantIn
	}

	sort.Slice(over, func(i, j int) bool {
		if over[i].load != over[j].load {
			return over[i].load > over[j].load
		}
		return over[i].id < over[j].id
	})

	for _, src := range over {
		cands := m.balanceCandidates(src.id, bi, bs.snap)
		// Shed the candidates that least want to be here first: evicting an
		// actor away from its own traffic only recreates the remote chatter
		// somewhere else. Stable, so equal-affinity candidates keep the
		// heaviest-first shed order.
		sort.SliceStable(cands, func(i, j int) bool {
			return bs.affTo(cands[i].Ref.ID, src.id) < bs.affTo(cands[j].Ref.ID, src.id)
		})
		for _, ai := range cands {
			if bs.proj[src.id][ax] <= upper {
				break
			}
			if _, planned := bs.dest[ai.Ref.ID]; planned {
				continue // an earlier intent already moves it
			}
			use := ai.ResOf(bi.Res)
			if use <= 0 {
				break
			}
			trg := m.pickBatchTarget(ai, bi, upper, ax, src.id, bs)
			if trg < 0 {
				wantOut = true
				continue // a lighter candidate may still fit
			}
			actions = append(actions, Action{
				Actor: ai.Ref, Src: src.id, Trg: trg,
				Kind: epl.KindBalance, Res: bi.Res,
				Pri: m.Cfg.priority(epl.KindBalance),
			})
			add := m.loadVecOn(ai, trg, bs.snap)
			vec := ai.ResVec()
			for x := 0; x < 3; x++ {
				bs.proj[src.id][x] -= vec[x]
				bs.proj[trg][x] += add[x]
			}
			bs.dest[ai.Ref.ID] = trg
		}
		if bs.proj[src.id][ax] > upper {
			wantOut = true // unresolved overload is scale-out pressure
		}
	}
	if allOver {
		wantOut = true
	}
	return actions, allOver, allUnder, wantOut, wantIn
}

// pickBatchTarget chooses where a mover goes: the target must fit it on
// every axis (the planned axis under the rule's upper bound, the others
// under the admission bound), and among fits the highest communication
// affinity wins, then the lowest projected load on the planned axis, then
// the lowest server id.
func (m *Manager) pickBatchTarget(ai *epl.ActorInfo, bi epl.BalanceIntent, upper float64, ax int, src cluster.MachineID, bs *batchState) cluster.MachineID {
	best := cluster.MachineID(-1)
	bestAff, bestLoad := 0.0, 0.0
	for _, id := range bs.servers {
		if id == src {
			continue
		}
		add := m.loadVecOn(ai, id, bs.snap)
		p := bs.proj[id]
		fits := true
		for x := 0; x < 3; x++ {
			bound := m.Cfg.DefaultUpper
			if x == ax {
				bound = upper
			}
			if p[x]+add[x] > bound {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		aff := bs.affTo(ai.Ref.ID, id)
		load := p[ax]
		if best < 0 || aff > bestAff || (aff == bestAff && load < bestLoad) {
			best, bestAff, bestLoad = id, aff, load
		}
	}
	return best
}

// groupAnchorAffinity is the batch-mode colocation anchor fallback: the
// group lives where its internal communication already lands. Per server,
// the members resident there contribute their intra-group message weight;
// the highest total wins, ties to resident state mass, then the lowest
// server id. ok is false when the group exchanged no profiled messages
// (the caller falls back to the legacy mass rule).
func (m *Manager) groupAnchorAffinity(members []*epl.ActorInfo) (dest cluster.MachineID, anchor actor.Ref, ok bool) {
	inGroup := map[actor.ID]bool{}
	for _, mem := range members {
		inGroup[mem.Ref.ID] = true
	}
	af := graph.NewAffinity()
	for _, mem := range members {
		for _, cs := range mem.Calls {
			if inGroup[cs.Caller.ID] {
				af.Add(int64(mem.Ref.ID), int64(cs.Caller.ID), float64(cs.Count))
			}
		}
	}
	if af.Nodes() == 0 {
		return -1, actor.Ref{}, false
	}
	comm := map[cluster.MachineID]float64{}
	mass := map[cluster.MachineID]int64{}
	for _, mem := range members {
		for _, e := range af.Peers(int64(mem.Ref.ID)) {
			comm[mem.Server] += e.Weight
		}
		mass[mem.Server] += mem.MemBytes + 1
	}
	ids := make([]cluster.MachineID, 0, len(mass))
	for id := range mass {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dest = -1
	var bestComm float64
	var bestMass int64
	for _, id := range ids {
		if dest < 0 || comm[id] > bestComm || (comm[id] == bestComm && mass[id] > bestMass) {
			dest, bestComm, bestMass = id, comm[id], mass[id]
		}
	}
	for _, mem := range members {
		if mem.Server == dest {
			anchor = mem.Ref
			break
		}
	}
	return dest, anchor, true
}

// traceBatch emits the round's plan-batch summary record.
func (m *Manager) traceBatch(parent uint64, tickIdx int, actions []Action, nResv, nOver, nUnder int) {
	if !m.tr.Enabled() {
		return
	}
	dsts := map[cluster.MachineID]bool{}
	for _, a := range actions {
		dsts[a.Trg] = true
	}
	m.tr.Emit(trace.Record{Kind: trace.KindPlanBatch, Parent: parent,
		Tick: int32(tickIdx), Server: -1, Target: -1, Rule: -1,
		Value: float64(len(actions)),
		Detail: fmt.Sprintf("resv=%d moves=%d dsts=%d over=%d under=%d",
			nResv, len(actions)-nResv, len(dsts), nOver, nUnder)})
}
