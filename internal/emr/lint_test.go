package emr

import (
	"strings"
	"testing"

	"plasma/internal/epl"
	"plasma/internal/lint"
	"plasma/internal/sim"
)

// TestNewRejectsUnsatisfiablePolicy asserts the EMR fails fast at
// policy-load time: a rule that can never fire is a configuration bug, not
// something to discover after a day of simulated elasticity.
func TestNewRejectsUnsatisfiablePolicy(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 and server.cpu.perc < 20 => balance({Worker}, cpu);`)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New accepted an unsatisfiable policy")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "EPL001") {
			t.Fatalf("panic = %v, want message naming EPL001", r)
		}
	}()
	New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second})
}

// TestNewRecordsWarningDiagnostics asserts warning-severity findings are
// kept on the manager for experiments to inspect, without rejecting the
// policy.
func TestNewRecordsWarningDiagnostics(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`
server.cpu.perc > 70 => balance({Worker}, cpu);
server.cpu.perc < 70 => balance({Worker}, cpu);
`)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second})
	found := false
	for _, d := range m.PolicyDiagnostics {
		if d.Code == lint.CodeFlapping {
			found = true
		}
		if d.Severity >= lint.Error {
			t.Fatalf("unexpected error-severity diagnostic: %s", d)
		}
	}
	if !found {
		t.Fatalf("flapping policy not diagnosed; got %v", m.PolicyDiagnostics)
	}
}

// TestNewAcceptsNilPolicy keeps the no-policy construction path (used by
// baseline experiments) working.
func TestNewAcceptsNilPolicy(t *testing.T) {
	e := newEnv(1, 2, 1)
	m := New(e.k, e.c, e.rt, e.prof, nil, Config{Period: sim.Second})
	if m == nil || m.PolicyDiagnostics != nil {
		t.Fatalf("nil policy should produce no diagnostics, got %v", m.PolicyDiagnostics)
	}
}
