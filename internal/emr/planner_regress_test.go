package emr

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
)

// Regression tests for the planner band-math fixes, plus coverage for the
// colocation group anchoring rules.

// A balance rule with a tight band ([60,70]: band width 10) must still be
// able to low-water redistribute: server 0 sits at 66 (above the band
// midpoint), server 1 at 54 (below lower), and moving the 6-point actor
// equalizes the pair. The legacy thresholds were absolute (probe lower-5,
// spread > 15), so any band narrower than ~15 points could never fill its
// deficit.
func TestDeficitFillActsOnTightBand(t *testing.T) {
	pe := newPlanEnv(t, 2)
	actors := []*epl.ActorInfo{
		mkActor(pe, "W", 0, 6), mkActor(pe, "W", 0, 3),
	}
	snap := buildSnap(pe, []float64{66, 54}, actors)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 70, Lower: 60}
	acts, _, _, _, _ := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true})
	if len(acts) == 0 {
		t.Fatal("tight-band rule never low-water redistributed")
	}
	for _, a := range acts {
		if a.Src != 0 || a.Trg != 1 {
			t.Fatalf("action %+v, want move from loaded server 0 to starved server 1", a)
		}
	}
}

// The band-relative thresholds must reduce to the legacy constants (probe 5
// below lower, spread > 15) on the standard 20-point band, so every shipped
// policy plans identically: a [60,80] pair at spread 12 stays quiet.
func TestDeficitFillWideBandKeepsLegacyThresholds(t *testing.T) {
	pe := newPlanEnv(t, 2)
	actors := []*epl.ActorInfo{
		mkActor(pe, "W", 0, 6), mkActor(pe, "W", 0, 3),
	}
	snap := buildSnap(pe, []float64{71, 59}, actors)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	acts, _, _, _, _ := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true})
	if len(acts) != 0 {
		t.Fatalf("20-point band acted on a 12-point spread: %+v", acts)
	}
}

// A source that sheds every movable candidate and still sits above the upper
// bound is unresolved overload: it must report scale-out pressure. The
// legacy check only fired when the candidate list was empty to begin with.
func TestPlanBalanceWantOutAfterSheddingAllCandidates(t *testing.T) {
	pe := newPlanEnv(t, 2)
	actors := []*epl.ActorInfo{mkActor(pe, "W", 0, 5)}
	snap := buildSnap(pe, []float64{95, 50}, actors)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	acts, _, _, wantOut, _ := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true})
	if len(acts) != 1 {
		t.Fatalf("actions = %+v, want the single candidate shed", acts)
	}
	if !wantOut {
		t.Fatal("source shed everything, remains at 90 > 80, yet reported no scale-out pressure")
	}
}

// A source brought back inside the band by its sheds is resolved: no
// scale-out pressure.
func TestPlanBalanceNoWantOutWhenShedsResolve(t *testing.T) {
	pe := newPlanEnv(t, 2)
	actors := []*epl.ActorInfo{mkActor(pe, "W", 0, 20)}
	snap := buildSnap(pe, []float64{95, 30}, actors)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	acts, _, _, wantOut, _ := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true})
	if len(acts) != 1 {
		t.Fatalf("actions = %+v, want one shed", acts)
	}
	if wantOut {
		t.Fatal("source re-entered the band yet reported scale-out pressure")
	}
}

// Under the batch planner, planReserve's target choice is lexicographic
// (load, resident count): a truly idle server with a few cold residents
// beats a resident-free server carrying real load. The legacy score sums
// the utilization percentage with the raw actor count, so 3 idle actors
// outweigh 2.9 points of load.
func TestPlanReservePrefersLeastLoadedOverFewestResidents(t *testing.T) {
	pe := newPlanEnv(t, 3)
	pe.m.Cfg.Planner = "batch"
	vip := mkActor(pe, "V", 0, 30)
	// Server 1: zero load, three idle residents. Server 2: 2.9% load, empty.
	idle := []*epl.ActorInfo{
		mkActor(pe, "I", 1, 0), mkActor(pe, "I", 1, 0), mkActor(pe, "I", 1, 0),
	}
	snap := buildSnap(pe, []float64{90, 0, 2.9}, append(idle, vip))
	ri := epl.ReserveIntent{Actor: vip.Ref, Res: epl.CPU}
	act, starved := pe.m.planReserve(ri, snap, map[cluster.MachineID]bool{0: true, 1: true, 2: true}, map[cluster.MachineID]bool{})
	if act == nil || starved {
		t.Fatalf("act=%v starved=%v, want action/false", act, starved)
	}
	if act.Trg != 1 {
		t.Fatalf("reserved server %d, want the zero-load server 1", act.Trg)
	}
}

// Audit pin: the legacy planner keeps the historical sum score (load +
// resident count) verbatim — pinned experiment ids depend on its choices
// being byte-identical at fixed seed, unit mixing and all. The fixed
// scoring lives behind Config.Planner = "batch" (test above).
func TestPlanReserveLegacyScoreFrozen(t *testing.T) {
	pe := newPlanEnv(t, 3)
	vip := mkActor(pe, "V", 0, 30)
	idle := []*epl.ActorInfo{
		mkActor(pe, "I", 1, 0), mkActor(pe, "I", 1, 0), mkActor(pe, "I", 1, 0),
	}
	snap := buildSnap(pe, []float64{90, 0, 2.9}, append(idle, vip))
	ri := epl.ReserveIntent{Actor: vip.Ref, Res: epl.CPU}
	act, _ := pe.m.planReserve(ri, snap, map[cluster.MachineID]bool{0: true, 1: true, 2: true}, map[cluster.MachineID]bool{})
	if act == nil || act.Trg != 2 {
		t.Fatalf("act=%+v, want legacy sum score to pick server 2 (2.9 < 0+3)", act)
	}
}

// On equal load the resident count breaks the tie, and on a full tie the
// lowest server id wins (snapshot servers iterate in id order).
func TestPlanReserveCountThenIDTiebreak(t *testing.T) {
	pe := newPlanEnv(t, 4)
	pe.m.Cfg.Planner = "batch"
	vip := mkActor(pe, "V", 0, 30)
	resident := mkActor(pe, "I", 1, 0)
	snap := buildSnap(pe, []float64{90, 0, 0, 0}, []*epl.ActorInfo{vip, resident})
	ri := epl.ReserveIntent{Actor: vip.Ref, Res: epl.CPU}
	act, _ := pe.m.planReserve(ri, snap, map[cluster.MachineID]bool{0: true, 1: true, 2: true, 3: true}, map[cluster.MachineID]bool{})
	if act == nil || act.Trg != 2 {
		t.Fatalf("act=%+v, want server 2 (same load as 3, fewer residents than 1, lowest id)", act)
	}
}

// groupAnchor mass fallback: equal resident state on two servers anchors at
// the lowest server id.
func TestGroupAnchorMassTieGoesToLowestServerID(t *testing.T) {
	pe := newPlanEnv(t, 3)
	a := mkActor(pe, "A", 2, 10)
	a.MemBytes = 1 << 20
	b := mkActor(pe, "B", 1, 10)
	b.MemBytes = 1 << 20
	dest, anchor := pe.m.groupAnchor([]*epl.ActorInfo{a, b}, map[actor.Ref]Action{})
	if dest != 1 || anchor != b.Ref {
		t.Fatalf("dest=%d anchor=%v, want tie broken to lowest server id 1", dest, anchor)
	}
}

// A planned (committed) action on any member outranks a pinned member when
// choosing the group's home.
func TestGroupAnchorPlannedActionBeatsPinnedMember(t *testing.T) {
	pe := newPlanEnv(t, 3)
	a := mkActor(pe, "A", 0, 10)
	pinned := mkActor(pe, "B", 1, 10)
	pinned.Pinned = true
	planned := map[actor.Ref]Action{
		a.Ref: {Actor: a.Ref, Src: 0, Trg: 2, Pri: 45, Kind: epl.KindReserve},
	}
	dest, anchor := pe.m.groupAnchor([]*epl.ActorInfo{a, pinned}, planned)
	if dest != 2 || anchor != a.Ref {
		t.Fatalf("dest=%d anchor=%v, want the reserve destination 2", dest, anchor)
	}
}

// A member with its own committed higher-priority action is never dragged
// by the group: the rest follow the anchor, the committed member keeps its
// own destination.
func TestColocateGroupsCommittedMemberKeepsOwnAction(t *testing.T) {
	pe := newPlanEnv(t, 3)
	a := mkActor(pe, "A", 0, 5)
	b := mkActor(pe, "B", 1, 5)
	c := mkActor(pe, "C", 1, 5)
	snap := buildSnap(pe, []float64{10, 10, 10}, []*epl.ActorInfo{a, b, c})
	planned := map[actor.Ref]Action{
		b.Ref: {Actor: b.Ref, Src: 1, Trg: 2, Pri: 45, Kind: epl.KindReserve},
	}
	pairs := []epl.PairIntent{{A: a.Ref, B: b.Ref}, {A: b.Ref, B: c.Ref}}
	acts := pe.m.planColocateGroups(snap, pairs, planned)
	if len(acts) != 2 {
		t.Fatalf("actions = %+v, want a and c following the anchor", acts)
	}
	for _, act := range acts {
		if act.Actor == b.Ref {
			t.Fatalf("committed member b re-planned by colocate: %+v", act)
		}
		if act.Trg != 2 {
			t.Fatalf("follower sent to %d, want the anchor destination 2", act.Trg)
		}
	}
}

// Transitive merges are order-independent: the same pair set presented in
// reversed order yields the identical action list.
func TestColocateGroupsMergeOrderIndependent(t *testing.T) {
	pe := newPlanEnv(t, 4)
	a := mkActor(pe, "A", 0, 5)
	b := mkActor(pe, "B", 1, 5)
	c := mkActor(pe, "C", 2, 5)
	d := mkActor(pe, "D", 3, 5)
	snap := buildSnap(pe, []float64{10, 10, 10, 10}, []*epl.ActorInfo{a, b, c, d})
	fwd := []epl.PairIntent{{A: a.Ref, B: b.Ref}, {A: b.Ref, B: c.Ref}, {A: c.Ref, B: d.Ref}}
	rev := []epl.PairIntent{{A: c.Ref, B: d.Ref}, {A: b.Ref, B: c.Ref}, {A: a.Ref, B: b.Ref}}
	got1 := pe.m.planColocateGroups(snap, fwd, map[actor.Ref]Action{})
	got2 := pe.m.planColocateGroups(snap, rev, map[actor.Ref]Action{})
	if len(got1) != len(got2) {
		t.Fatalf("fwd=%+v rev=%+v", got1, got2)
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("merge order changed the plan: fwd[%d]=%+v rev[%d]=%+v", i, got1[i], i, got2[i])
		}
	}
}
