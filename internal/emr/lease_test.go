package emr

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// Tests for the reservation lease (Config.ReserveTTL) and grant-time
// evacuation (Config.ReserveEvacuate): a dedication that no reserve intent
// keeps naming must lapse back to the shared pool, and a grant on a server
// with existing residents must clear them out for the owner.

func quiet() actor.Behavior {
	return actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {})
}

func TestReserveLeaseExpiresWithoutRefresh(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	m := New(e.k, e.c, e.rt, e.prof, pol,
		Config{Period: sim.Second, MinResidence: sim.Millisecond, ReserveTTL: 2})
	// An owner sits on its dedicated server, but no reserve rule exists to
	// re-name it: the lease must lapse after TTL periods.
	owner := e.rt.SpawnOn("VIP", quiet(), 1)
	m.reserved[1] = owner
	m.resLease[1] = 0
	m.Start()
	e.k.Run(sim.Time(5 * sim.Second))
	if _, held := m.reserved[1]; held {
		t.Fatal("unrefreshed reservation still held after TTL periods")
	}
	if m.Stats.ExpiredReservations != 1 {
		t.Fatalf("ExpiredReservations = %d, want 1", m.Stats.ExpiredReservations)
	}
}

func TestReserveLegacyPersistsWithZeroTTL(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	m := New(e.k, e.c, e.rt, e.prof, pol,
		Config{Period: sim.Second, MinResidence: sim.Millisecond})
	owner := e.rt.SpawnOn("VIP", quiet(), 1)
	m.reserved[1] = owner
	m.resLease[1] = 0
	m.Start()
	e.k.Run(sim.Time(10 * sim.Second))
	if got := m.reserved[1]; got != owner {
		t.Fatalf("legacy (TTL=0) reservation dropped: reserved[1]=%v", got)
	}
	if m.Stats.ExpiredReservations != 0 {
		t.Fatalf("ExpiredReservations = %d with TTL disabled, want 0", m.Stats.ExpiredReservations)
	}
}

func TestReserveLeaseRefreshedByStandingIntent(t *testing.T) {
	e := newEnv(1, 3, 1)
	// The same reserve rule as TestReserveDedicatesServer: while the folder
	// stays hot the rule keeps firing, each intent refreshes the lease, and
	// the dedication must outlive many TTL windows. The TTL rides out the
	// transfer window (while the owner is mid-flight neither the cooling
	// source nor the not-yet-hot target trips the rule, so no intent names
	// the owner for a period or two).
	pol := epl.MustParse(`
server.cpu.perc > 80 and client.call(Folder(fo).open).perc > 40 => reserve(fo, cpu);
`)
	hot := e.rt.SpawnOn("Folder", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(30 * sim.Millisecond)
		ctx.Reply(nil, 32)
	}), 0)
	cold := e.rt.SpawnOn("Folder", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(10 * sim.Millisecond)
		ctx.Reply(nil, 32)
	}), 0)
	e.rt.SpawnOn("Other", quiet(), 2)

	m := New(e.k, e.c, e.rt, e.prof, pol,
		Config{Period: sim.Second, MinResidence: sim.Millisecond, ReserveTTL: 4})
	m.Start()
	cl := actor.NewClient(e.rt, 2)
	e.k.Every(20*sim.Millisecond, func() bool {
		cl.Request(hot, "open", nil, 64, nil)
		cl.Request(hot, "open", nil, 64, nil)
		cl.Request(cold, "open", nil, 64, nil)
		return e.k.Now() < sim.Time(12*sim.Second)
	})
	e.k.Run(sim.Time(14 * sim.Second))

	if got := e.rt.ServerOf(hot); got != 1 {
		t.Fatalf("hot folder on %d, want reserved server 1", got)
	}
	// Held for ~11 periods against a 4-period TTL: only the standing
	// intents' refreshes can explain it. (The stat is not asserted zero:
	// the first thin snapshot may briefly qualify the cold folder too, and
	// that spurious dedication expiring is the lease doing its job.)
	if owner := m.reserved[1]; owner != hot {
		t.Fatalf("reservation lapsed despite standing reserve intents (reserved[1]=%v)", owner)
	}
}

func TestReserveGrantEvacuatesResidents(t *testing.T) {
	e := newEnv(1, 3, 1)
	pol := epl.MustParse(`
server.cpu.perc > 80 and client.call(Folder(fo).open).perc > 40 => reserve(fo, cpu);
`)
	hot := e.rt.SpawnOn("Folder", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(30 * sim.Millisecond)
		ctx.Reply(nil, 32)
	}), 0)
	cold := e.rt.SpawnOn("Folder", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(10 * sim.Millisecond)
		ctx.Reply(nil, 32)
	}), 0)
	// Server 1 (the reserve's idlest candidate) already houses two quiet
	// residents; a dedication must push them off, not share with them.
	r1 := e.rt.SpawnOn("Other", quiet(), 1)
	r2 := e.rt.SpawnOn("Other", quiet(), 1)

	m := New(e.k, e.c, e.rt, e.prof, pol,
		Config{Period: sim.Second, MinResidence: sim.Millisecond,
			ReserveTTL: 3, ReserveEvacuate: true})
	m.Start()
	cl := actor.NewClient(e.rt, 2)
	e.k.Every(20*sim.Millisecond, func() bool {
		cl.Request(hot, "open", nil, 64, nil)
		cl.Request(hot, "open", nil, 64, nil)
		cl.Request(cold, "open", nil, 64, nil)
		return e.k.Now() < sim.Time(8*sim.Second)
	})
	e.k.Run(sim.Time(10 * sim.Second))

	srv := e.rt.ServerOf(hot)
	if owner := m.reserved[srv]; owner != hot {
		t.Fatalf("hot folder's server %d not reserved for it (reserved=%v)", srv, owner)
	}
	for _, r := range []actor.Ref{r1, r2} {
		if got := e.rt.ServerOf(r); got == srv {
			t.Fatalf("resident %v still shares the dedicated server %d", r, srv)
		}
	}
	if got := len(e.rt.ActorsOn(srv)); got != 1 {
		t.Fatalf("dedicated server holds %d actors, want only the owner", got)
	}
}

func TestReserveGrantKeepsResidentsWithoutEvacuate(t *testing.T) {
	e := newEnv(1, 3, 1)
	pol := epl.MustParse(`
server.cpu.perc > 80 and client.call(Folder(fo).open).perc > 40 => reserve(fo, cpu);
`)
	hot := e.rt.SpawnOn("Folder", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(30 * sim.Millisecond)
		ctx.Reply(nil, 32)
	}), 0)
	cold := e.rt.SpawnOn("Folder", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(10 * sim.Millisecond)
		ctx.Reply(nil, 32)
	}), 0)
	r1 := e.rt.SpawnOn("Other", quiet(), 1)

	m := New(e.k, e.c, e.rt, e.prof, pol,
		Config{Period: sim.Second, MinResidence: sim.Millisecond})
	m.Start()
	cl := actor.NewClient(e.rt, 2)
	e.k.Every(20*sim.Millisecond, func() bool {
		cl.Request(hot, "open", nil, 64, nil)
		cl.Request(hot, "open", nil, 64, nil)
		cl.Request(cold, "open", nil, 64, nil)
		return e.k.Now() < sim.Time(8*sim.Second)
	})
	e.k.Run(sim.Time(10 * sim.Second))

	// Legacy semantics: the dedication is exclusivity against NEW admissions
	// only; the idle resident stays put.
	if got := e.rt.ServerOf(r1); got != 1 {
		t.Fatalf("resident moved to %d with ReserveEvacuate off, want 1", got)
	}
}
