package emr

import (
	"math"
	"sort"
	"strconv"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/trace"
)

// tryScaleOut implements the adjustment protocol of §4.2: the requesting
// GEM broadcasts to all other GEMs; each replies whether its own view is
// similar (all of its servers overloaded too). On a majority of
// corroborating replies the fleet grows by one server.
func (m *Manager) tryScaleOut(g *gem, need int, parent uint64) {
	agree := 1
	voters := 1
	for _, other := range m.gems {
		if other == g || other.failed || len(other.reports) == 0 {
			continue
		}
		voters++
		if other.allOver {
			agree++
		}
	}
	if agree*2 <= voters {
		return
	}
	// Provision up to the demand, capped per period, counting machines
	// already booting toward it (the boot pipeline is the cooldown).
	const maxPerPeriod = 4
	if need > maxPerPeriod {
		need = maxPerPeriod
	}
	if m.tr.Enabled() {
		m.tr.Emit(trace.Record{Kind: trace.KindScaleOut, Parent: parent,
			Tick: int32(m.Stats.Ticks), Server: -1, Target: -1, Rule: -1,
			Value: float64(need), Detail: "agree=" + strconv.Itoa(agree) + "/" + strconv.Itoa(voters)})
	}
	for m.booting < need {
		mach := m.provisionNext()
		if mach == nil {
			return
		}
		m.booting++
		m.Stats.ScaleOuts++
	}
}

// provisionNext boots one machine for scale-out. With a provisioning
// spectrum configured it walks the class preference order — the policy's
// provclass rules first, then spec order — falling to the next class when
// a warm pool is exhausted; without one it uses the legacy constant-boot
// provisioner. Either way the outcome callback decrements the booting
// counter on success AND failure: a machine crashed or decommissioned
// mid-boot (or whose boot retries are exhausted) must not suppress
// scale-out forever.
func (m *Manager) provisionNext() *cluster.Machine {
	done := func(_ *cluster.Machine, ok bool) {
		m.booting--
		if !ok {
			m.Stats.FailedProvisions++
		}
	}
	if len(m.provSpecs) == 0 {
		return m.C.ProvisionClass(m.Cfg.InstanceType, nil, done)
	}
	for _, i := range m.provOrder() {
		spec := &m.provSpecs[i]
		if !spec.Available() {
			continue
		}
		if mach := m.C.ProvisionClass(m.Cfg.InstanceType, spec, done); mach != nil {
			return mach
		}
	}
	return nil
}

// provOrder indexes m.provSpecs in preference order: classes the policy's
// provclass rules named (in rule order) first, then the rest in spec
// order.
func (m *Manager) provOrder() []int {
	order := make([]int, 0, len(m.provSpecs))
	used := make([]bool, len(m.provSpecs))
	for _, pc := range m.provPref {
		for i := range m.provSpecs {
			if !used[i] && m.provSpecs[i].Class == pc {
				used[i] = true
				order = append(order, i)
			}
		}
	}
	for i := range m.provSpecs {
		if !used[i] {
			order = append(order, i)
		}
	}
	return order
}

// ProvSpecs exposes the manager's live provisioning spectrum (warm-pool
// capacities deplete as the run provisions), for experiment reporting.
func (m *Manager) ProvSpecs() []cluster.ProvSpec { return m.provSpecs }

// tryScaleIn drains the emptiest of the GEM's servers after a corroborating
// majority vote, migrating its actors away; the server is decommissioned
// once empty (next tick).
func (m *Manager) tryScaleIn(g *gem, scope []cluster.MachineID, snap *epl.Snapshot, parent uint64) {
	if len(m.draining) > 0 || m.C.UpCount() <= m.Cfg.MinServers {
		return
	}
	agree := 1
	voters := 1
	for _, other := range m.gems {
		if other == g || other.failed || len(other.reports) == 0 {
			continue
		}
		voters++
		if other.allUnder {
			agree++
		}
	}
	if agree*2 <= voters {
		return
	}

	// Pick the scoped server with the fewest actors (cheapest to drain).
	victim := cluster.MachineID(-1)
	fewest := math.MaxInt32
	for _, id := range scope {
		if _, taken := m.reserved[id]; taken {
			continue
		}
		n := len(m.RT.ActorsOn(id))
		if n < fewest {
			fewest = n
			victim = id
		}
	}
	if victim < 0 {
		return
	}
	m.draining[victim] = true
	m.Stats.PlannedActions += fewest
	scaleInID := m.tr.Emit(trace.Record{Kind: trace.KindScaleIn, Parent: parent,
		Tick: int32(m.Stats.Ticks), Server: -1, Target: int32(victim), Rule: -1,
		Value: float64(fewest)})

	// Evacuate: spread the victim's actors over the least-loaded remaining
	// servers. Drain migrations bypass the admission query (the server is
	// going away), but still respect pins.
	targets := m.evacTargets(victim, snap)
	if len(targets) == 0 {
		delete(m.draining, victim)
		return
	}
	for i, ref := range m.RT.ActorsOn(victim) {
		if m.RT.Pinned(ref) {
			// A pinned actor blocks the drain entirely.
			delete(m.draining, victim)
			return
		}
		m.RT.MigrateTraced(ref, targets[i%len(targets)], scaleInID, nil)
	}
}

// evacTargets lists candidate servers for drain migrations, least loaded
// first.
func (m *Manager) evacTargets(victim cluster.MachineID, snap *epl.Snapshot) []cluster.MachineID {
	var out []srvLoad
	for _, srv := range snap.Servers {
		if !srv.Up || srv.ID == victim || m.draining[srv.ID] {
			continue
		}
		if _, taken := m.reserved[srv.ID]; taken {
			continue
		}
		out = append(out, srvLoad{srv.ID, srv.CPUPerc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].load < out[j].load })
	ids := make([]cluster.MachineID, len(out))
	for i, s := range out {
		ids[i] = s.id
	}
	return ids
}

// Place implements actor.PlacementHook: new actors are placed per the
// elasticity rules (§4.2 "New actor creation") — colocation rules put them
// next to their creator, reserve/balance rules put them on the idlest
// server for the rule's resource; otherwise placement falls back to random
// (return -1).
func (m *Manager) Place(typ string, creator actor.Ref, creatorSrv cluster.MachineID) cluster.MachineID {
	creatorType := m.RT.TypeOf(creator)
	for _, rule := range m.Pol.Rules {
		for _, beh := range rule.Behaviors {
			switch bh := beh.(type) {
			case *epl.ColocateBeh:
				at, bt := bh.A.Type(), bh.B.Type()
				if typ != at && typ != bt && at != epl.AnyType && bt != epl.AnyType {
					continue
				}
				partner := bt
				if typ == bt {
					partner = at
				}
				if creatorSrv >= 0 && (partner == creatorType || partner == epl.AnyType) {
					if mach := m.C.Machine(creatorSrv); mach != nil && mach.Up() {
						return creatorSrv
					}
				}
			case *epl.ReserveBeh:
				if bh.Actor.Type() == typ || bh.Actor.Type() == epl.AnyType {
					if srv, ok := m.idlestMachine(bh.Res); ok {
						return srv
					}
				}
			case *epl.BalanceBeh:
				for _, t := range bh.Types {
					if t == typ || t == epl.AnyType {
						if srv, ok := m.idlestMachine(bh.Res); ok {
							return srv
						}
					}
				}
			}
		}
	}
	return -1
}

// idlestMachine picks the up, non-reserved, non-draining machine with the
// lowest live utilization on res.
func (m *Manager) idlestMachine(res epl.Resource) (cluster.MachineID, bool) {
	best := cluster.MachineID(-1)
	bestLoad := math.Inf(1)
	for _, mach := range m.C.UpMachines() {
		if m.draining[mach.ID] {
			continue
		}
		if _, taken := m.reserved[mach.ID]; taken {
			continue
		}
		var load float64
		switch res {
		case epl.CPU:
			load = mach.CPUPercent()
		case epl.Mem:
			load = mach.MemPercent()
		case epl.Net:
			load = mach.NetPercent()
		}
		// Bias toward machines with fewer actors to break early-period ties
		// (utilization windows may be empty right after a reset).
		load += float64(len(m.RT.ActorsOn(mach.ID))) * 0.01
		if load < bestLoad {
			bestLoad = load
			best = mach.ID
		}
	}
	return best, best >= 0
}
