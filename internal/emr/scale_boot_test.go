package emr

import (
	"testing"

	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// Regression (booting-counter leak): a machine crashed mid-boot must
// decrement the scaler's booting counter. The old code only decremented
// on onUp, so a provision that never reached Up suppressed scale-out
// permanently.
func TestMidBootCrashDoesNotStarveScaleOut(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 => balance({Worker}, cpu);`)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{
		Period: sim.Second, ScaleOut: true,
		InstanceType: cluster.InstanceType{Name: "t", VCPUs: 1, MemMB: 4096, NetMbps: 1000, Boot: 10 * sim.Second, SpeedFac: 1},
	})

	// A single-GEM vote always corroborates itself; demand one machine.
	m.tryScaleOut(m.gems[0], 1, 0)
	if m.booting != 1 {
		t.Fatalf("booting = %d after scale-out, want 1", m.booting)
	}
	booted := e.c.Machines()[len(e.c.Machines())-1]

	// Crash the machine halfway through its boot.
	e.k.Run(e.k.Now() + sim.Time(5*sim.Second))
	if !e.c.Fail(booted.ID) {
		t.Fatal("Fail refused the booting machine")
	}
	if m.booting != 0 {
		t.Fatalf("booting = %d after mid-boot crash, want 0 (counter leaked)", m.booting)
	}
	if m.Stats.FailedProvisions != 1 {
		t.Errorf("FailedProvisions = %d, want 1", m.Stats.FailedProvisions)
	}

	// Scale-out must still be able to provision: the leaked counter used
	// to satisfy `booting < need` forever.
	before := e.c.Provisions()
	m.tryScaleOut(m.gems[0], 1, 0)
	if e.c.Provisions() != before+1 {
		t.Fatalf("scale-out starved: provisions stayed at %d", before)
	}
	e.k.RunUntilIdle()
	if m.booting != 0 {
		t.Errorf("booting = %d after boot completed, want 0", m.booting)
	}
}

// Scale-out through a provisioning spectrum consumes the preferred class
// first (policy provclass order), falls to the next class when the warm
// pool is exhausted, and a permanently failed provision also releases the
// booting slot.
func TestScaleOutWalksProvisioningSpectrum(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 => provclass({warm, container}); server.cpu.perc > 80 => balance({Worker}, cpu);`)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{
		Period: sim.Second, ScaleOut: true,
		InstanceType: cluster.M1Small,
		ProvSpecs: []cluster.ProvSpec{
			{Class: cluster.VM, BootMin: 30 * sim.Second, Capacity: -1},
			{Class: cluster.WarmPool, BootMin: 100 * sim.Millisecond, Capacity: 2},
			{Class: cluster.Container, BootMin: 2 * sim.Second, Capacity: -1},
		},
	})
	m.provPref = []cluster.ProvClass{cluster.WarmPool, cluster.Container}

	for i := 0; i < 4; i++ {
		if mach := m.provisionNext(); mach == nil {
			t.Fatalf("provision %d refused", i)
		}
	}
	machines := e.c.Machines()
	got := make([]cluster.ProvClass, 0, 4)
	for _, mach := range machines[2:] { // skip the two seed machines
		got = append(got, mach.ProvClass())
	}
	want := []cluster.ProvClass{cluster.WarmPool, cluster.WarmPool, cluster.Container, cluster.Container}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("provision %d used class %v, want %v (order %v)", i, got[i], want[i], got)
		}
	}
	if specs := m.ProvSpecs(); specs[1].Remaining() != 0 {
		t.Errorf("warm pool remaining = %d, want 0", specs[1].Remaining())
	}
}
