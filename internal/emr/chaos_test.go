package emr

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/chaos"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
	"plasma/internal/trace"
)

// Control-plane chaos: the EMR must degrade gracefully — not stall, not
// double-execute — when REPORT/RREPLY/QUERY/QREPLY messages are dropped,
// delayed, or duplicated by a seeded injector.

func hotServerEnv(t *testing.T) (*env, []actor.Ref, *epl.Policy) {
	t.Helper()
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	var refs []actor.Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(45), 0))
	}
	return e, refs, pol
}

// Acceptance: with a fixed fraction of REPORTs dropped, GEMs still evaluate
// at the report-window deadline on the partial snapshot (retransmissions and
// the stale cache filling the gaps) and elasticity actions still happen.
func TestGEMProceedsOnPartialSnapshotUnderReportLoss(t *testing.T) {
	e, refs, pol := hotServerEnv(t)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	inj := chaos.NewInjector(7, e.k.Now)
	inj.SetFaults(chaos.Report, chaos.Faults{DropProb: 0.5})
	m.SetChaos(inj)
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(20 * sim.Second))

	if inj.Stats.Dropped[chaos.Report] == 0 {
		t.Fatal("injector dropped nothing; test is vacuous")
	}
	if m.Stats.RetriedReports == 0 {
		t.Fatal("no REPORT retransmissions under loss")
	}
	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("elasticity stalled under REPORT loss")
	}
	on0, on1 := len(e.rt.ActorsOn(0)), len(e.rt.ActorsOn(1))
	if on1 == 0 {
		t.Fatalf("load never left the hot server (0:%d 1:%d)", on0, on1)
	}
	if on0+on1 != 4 {
		t.Fatalf("workers lost under chaos: %d + %d", on0, on1)
	}
}

// Under heavy loss the retry budget is often exhausted; the GEM then plans
// on cached REPORTs no older than StalePeriods.
func TestStaleCacheStandsInForLostReports(t *testing.T) {
	e, refs, pol := hotServerEnv(t)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	inj := chaos.NewInjector(3, e.k.Now)
	inj.SetFaults(chaos.Report, chaos.Faults{DropProb: 0.7})
	m.SetChaos(inj)
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(30 * sim.Second))

	if m.Stats.StaleReportsUsed == 0 {
		t.Fatal("stale cache never used under 70% REPORT loss")
	}
	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("elasticity stalled under heavy REPORT loss")
	}
	if len(e.rt.ActorsOn(0))+len(e.rt.ActorsOn(1)) != 4 {
		t.Fatal("workers lost under chaos")
	}
}

// A lost admission reply is a denial, not a hang: the source LEM times out,
// counts it, and the planner replans next period.
func TestQueryReplyLossTimesOutIntoDenial(t *testing.T) {
	e, refs, pol := hotServerEnv(t)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	inj := chaos.NewInjector(5, e.k.Now)
	inj.SetFaults(chaos.QReply, chaos.Faults{DropProb: 1})
	m.SetChaos(inj)
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(10 * sim.Second))

	if m.Stats.QueryTimeouts == 0 {
		t.Fatal("no query timeouts with every QREPLY dropped")
	}
	if m.Stats.DeniedAdmissions == 0 {
		t.Fatal("timeouts not counted as denials")
	}
	if m.Stats.ExecutedMigrations != 0 {
		t.Fatal("migration executed without an admission reply")
	}
	for _, r := range refs {
		if e.rt.ServerOf(r) != 0 {
			t.Fatal("actor moved despite denied admissions")
		}
	}
}

// Duplicated control messages must be idempotent end to end: a run with
// every message duplicated behaves exactly like the clean run.
func TestDuplicatedMessagesAreIdempotent(t *testing.T) {
	run := func(dup bool) (Stats, int, int) {
		e, refs, pol := hotServerEnv(t)
		m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
		if dup {
			inj := chaos.NewInjector(9, e.k.Now)
			inj.SetAllFaults(chaos.Faults{DupProb: 1})
			m.SetChaos(inj)
		}
		m.Start()
		startWork(e, refs...)
		e.k.Run(sim.Time(15 * sim.Second))
		return m.Stats, len(e.rt.ActorsOn(0)), len(e.rt.ActorsOn(1))
	}
	clean, c0, c1 := run(false)
	dup, d0, d1 := run(true)
	if clean.ExecutedMigrations == 0 {
		t.Fatal("clean run executed no migrations; test is vacuous")
	}
	if dup.ExecutedMigrations != clean.ExecutedMigrations {
		t.Fatalf("duplication changed executed migrations: %d vs %d",
			dup.ExecutedMigrations, clean.ExecutedMigrations)
	}
	if d0 != c0 || d1 != c1 {
		t.Fatalf("duplication changed placement: (%d,%d) vs (%d,%d)", d0, d1, c0, c1)
	}
}

// Delayed messages that miss their period's deadline are simply lost for
// that period; elasticity still converges and no actor is lost.
func TestDelayedMessagesDoNotBreakPeriods(t *testing.T) {
	e, refs, pol := hotServerEnv(t)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	inj := chaos.NewInjector(11, e.k.Now)
	inj.SetAllFaults(chaos.Faults{DelayProb: 0.5, MaxDelay: 50 * sim.Millisecond})
	m.SetChaos(inj)
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(20 * sim.Second))

	if inj.Stats.TotalDelayed() == 0 {
		t.Fatal("injector delayed nothing; test is vacuous")
	}
	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("elasticity stalled under delays")
	}
	if len(e.rt.ActorsOn(0))+len(e.rt.ActorsOn(1)) != 4 {
		t.Fatal("workers lost under delays")
	}
}

// A crashed LEM takes its server out of the control plane: no REPORTs, no
// admission answers, no actions — while its actors keep running. Recovery
// re-registers it.
func TestFailLEMRemovesServerFromControlPlane(t *testing.T) {
	e, refs, pol := hotServerEnv(t)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	m.Start()
	if !m.FailLEM(1) {
		t.Fatal("FailLEM rejected")
	}
	startWork(e, refs...)
	e.k.Run(sim.Time(8 * sim.Second))
	// The only balance target's LEM is dead: nothing can be admitted there,
	// but the workers keep running on server 0.
	if m.Stats.ExecutedMigrations != 0 {
		t.Fatal("migrated onto a server whose LEM is dead")
	}
	if len(e.rt.ActorsOn(0)) != 4 {
		t.Fatal("actors stopped running under LEM failure")
	}

	if !m.RecoverLEM(1) {
		t.Fatal("RecoverLEM rejected")
	}
	e.k.Run(sim.Time(20 * sim.Second))
	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("no migrations after LEM recovery")
	}
	if len(e.rt.ActorsOn(1)) == 0 {
		t.Fatal("load never balanced after LEM recovery")
	}
	_ = refs
}

// The K-quorum discounts crashed LEMs: with K=2 over three servers, losing
// one LEM leaves two reports, which must still clear the (discounted)
// quorum and keep resource rules running on the survivors.
func TestKQuorumDiscountsFailedLEMs(t *testing.T) {
	e := newEnv(1, 3, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	var refs []actor.Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(45), 0))
	}
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond, K: 2})
	m.Start()
	if !m.FailLEM(2) {
		t.Fatal("FailLEM rejected")
	}
	startWork(e, refs...)
	e.k.Run(sim.Time(15 * sim.Second))
	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("quorum did not account for the dead LEM")
	}
	if len(e.rt.ActorsOn(2)) != 0 {
		t.Fatal("migrated onto the server with the dead LEM")
	}
	if len(e.rt.ActorsOn(0))+len(e.rt.ActorsOn(1)) != 4 {
		t.Fatal("workers lost")
	}
}

// The nastiest timing for a machine crash is the exact instant a migration
// commits. Pass 1 traces a clean run to learn when the first commit lands
// and from which source; pass 2 replays the same seed with the source
// crashing at precisely that instant. The crash is scheduled up front, so it
// wins the same-instant (at, seq) tie against the commit callback: the
// migration must roll back, not commit, and no actor may be lost or stuck.
func TestCrashExactlyAtMigrationCommitTick(t *testing.T) {
	var commitAt sim.Time
	commitSrc := cluster.MachineID(-1)
	{
		e, refs, pol := hotServerEnv(t)
		m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
		ring := trace.NewRing(1 << 16)
		tr := trace.New(ring)
		tr.SetClock(e.k.Now)
		m.SetTracer(tr)
		m.Start()
		startWork(e, refs...)
		e.k.Run(sim.Time(20 * sim.Second))
		for _, r := range ring.Records() {
			if r.Kind == trace.KindCommit {
				commitAt, commitSrc = r.At, cluster.MachineID(r.Server)
				break
			}
		}
		if commitSrc < 0 {
			t.Fatal("clean run committed no migration; test is vacuous")
		}
	}

	e, refs, pol := hotServerEnv(t)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	ring := trace.NewRing(1 << 16)
	tr := trace.New(ring)
	tr.SetClock(e.k.Now)
	m.SetTracer(tr)
	e.k.At(commitAt, func() {
		if !e.c.Fail(commitSrc) {
			t.Errorf("crash of machine %d refused at t=%d", commitSrc, int64(commitAt))
			return
		}
		e.rt.RecoverMachine(commitSrc)
	})
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(20 * sim.Second))

	sawAbort := false
	for _, r := range ring.Records() {
		if r.At != commitAt {
			continue
		}
		switch r.Kind {
		case trace.KindRollback:
			sawAbort = true
		case trace.KindCommit:
			t.Fatalf("migration committed at the crash instant t=%d", int64(commitAt))
		}
	}
	if !sawAbort {
		t.Fatal("no rollback at the crash instant; the crash missed the in-flight migration")
	}
	if n := e.rt.InFlightMigrations(); n != 0 {
		t.Fatalf("%d migrations stuck in flight after crash-at-commit", n)
	}
	for _, r := range refs {
		if !e.rt.Exists(r) {
			t.Fatal("worker lost to a crash-at-commit race")
		}
		srv := e.rt.ServerOf(r)
		if mach := e.c.Machine(srv); mach == nil || !mach.Up() {
			t.Fatalf("worker homed on down machine %d", srv)
		}
	}
}

// A machine that crashes and recovers entirely inside the warm-up window —
// before the very first elasticity period has ticked — must leave no scar:
// the first snapshot sees a healthy fleet and elasticity balances onto the
// recovered server exactly as in an undisturbed run.
func TestRecoveryBeforeFirstElasticityPeriod(t *testing.T) {
	e, refs, pol := hotServerEnv(t)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	e.k.At(sim.Time(200*sim.Millisecond), func() {
		if !e.c.Fail(1) {
			t.Error("crash of machine 1 refused")
			return
		}
		e.rt.RecoverMachine(1)
	})
	e.k.At(sim.Time(500*sim.Millisecond), func() {
		if !e.c.Repair(1) {
			t.Error("repair of machine 1 refused")
		}
	})
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(15 * sim.Second))

	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("elasticity never ran after a pre-period crash/repair")
	}
	if on0, on1 := len(e.rt.ActorsOn(0)), len(e.rt.ActorsOn(1)); on0+on1 != 4 {
		t.Fatalf("workers lost across pre-period recovery: 0:%d 1:%d", on0, on1)
	}
	if len(e.rt.ActorsOn(1)) == 0 {
		t.Fatal("load never balanced onto the repaired server")
	}
}

func TestFailLEMBounds(t *testing.T) {
	e := newEnv(1, 2, 1)
	m := New(e.k, e.c, e.rt, e.prof, epl.MustParse(`true => pin(A(a));`), Config{Period: sim.Second})
	if m.FailLEM(99) {
		t.Fatal("FailLEM accepted an unknown machine")
	}
	if m.RecoverLEM(99) {
		t.Fatal("RecoverLEM accepted an unknown machine")
	}
	if m.RecoverLEM(0) {
		t.Fatal("RecoverLEM accepted a healthy LEM")
	}
	if !m.FailLEM(0) || !m.RecoverLEM(0) {
		t.Fatal("fail/recover round trip rejected")
	}
}
