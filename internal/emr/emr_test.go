package emr

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

type env struct {
	k    *sim.Kernel
	c    *cluster.Cluster
	rt   *actor.Runtime
	prof *profile.Profiler
}

func newEnv(seed int64, machines, vcpus int) *env {
	k := sim.New(seed)
	typ := cluster.InstanceType{Name: "t", VCPUs: vcpus, MemMB: 4096, NetMbps: 1000, Boot: 10 * sim.Second, SpeedFac: 1}
	c := cluster.New(k, machines, typ)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	return &env{k: k, c: c, rt: rt, prof: prof}
}

// worker is a behavior that sustains roughly dutyPct% load on one core: it
// burns dutyPct milliseconds of CPU then idles for the rest of a 100 ms
// cycle before sending itself the next work message.
func worker(dutyPct int) actor.Behavior {
	cost := sim.Duration(dutyPct) * sim.Millisecond
	idle := sim.Duration(100-dutyPct) * sim.Millisecond
	return actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(cost)
		ctx.SendAfter(idle, ctx.Self(), "work", nil, 16)
	})
}

func startWork(e *env, refs ...actor.Ref) {
	cl := actor.NewClient(e.rt, 0)
	for _, r := range refs {
		cl.Send(r, "work", nil, 16)
	}
}

func TestBalanceMovesLoadOffHotServer(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	// Four workers, each ~45% of one core, all on server 0: ~100% (queued).
	var refs []actor.Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(45), 0))
	}
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(10 * sim.Second))

	on0 := len(e.rt.ActorsOn(0))
	on1 := len(e.rt.ActorsOn(1))
	if on1 == 0 {
		t.Fatalf("no workers migrated off the hot server (0:%d 1:%d)", on0, on1)
	}
	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("no migrations recorded")
	}
	if on0+on1 != 4 {
		t.Fatalf("workers lost: %d + %d", on0, on1)
	}
}

func TestBalanceQuietWhenBalanced(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	a := e.rt.SpawnOn("Worker", worker(35), 0)
	b := e.rt.SpawnOn("Worker", worker(35), 1)
	a2 := e.rt.SpawnOn("Worker", worker(35), 0)
	b2 := e.rt.SpawnOn("Worker", worker(35), 1)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	m.Start()
	startWork(e, a, b, a2, b2)
	e.k.Run(sim.Time(10 * sim.Second))
	// Both servers at ~70%: inside the band; nothing should move.
	if m.Stats.ExecutedMigrations != 0 {
		t.Fatalf("migrations on balanced load: %d", m.Stats.ExecutedMigrations)
	}
}

func TestColocateBringsPairTogether(t *testing.T) {
	e := newEnv(1, 2, 2)
	pol := epl.MustParse(`VideoStream(v).call(UserInfo(u).track).count > 0 => pin(v); colocate(v, u);`)
	user := e.rt.SpawnOn("UserInfo", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(sim.Millisecond)
	}), 1)
	video := e.rt.SpawnOn("VideoStream", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(10 * sim.Millisecond)
		ctx.Send(user, "track", nil, 64)
		ctx.Send(ctx.Self(), "stream", nil, 16)
	}), 0)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	m.Start()
	startWork(e, video)
	e.k.Run(sim.Time(5 * sim.Second))

	if !e.rt.Pinned(video) {
		t.Fatal("video stream not pinned")
	}
	if e.rt.ServerOf(video) != 0 {
		t.Fatal("pinned actor moved")
	}
	if e.rt.ServerOf(user) != 0 {
		t.Fatalf("user info on %d, want colocated with video on 0", e.rt.ServerOf(user))
	}
}

func TestReserveDedicatesServer(t *testing.T) {
	e := newEnv(1, 3, 1)
	pol := epl.MustParse(`
server.cpu.perc > 80 and client.call(Folder(fo).open).perc > 40 => reserve(fo, cpu);
`)
	hot := e.rt.SpawnOn("Folder", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(30 * sim.Millisecond)
		ctx.Reply(nil, 32)
	}), 0)
	cold := e.rt.SpawnOn("Folder", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(10 * sim.Millisecond)
		ctx.Reply(nil, 32)
	}), 0)
	// Server 2 has a bystander so the reserve should prefer empty server 1.
	e.rt.SpawnOn("Other", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {}), 2)

	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	m.Start()
	cl := actor.NewClient(e.rt, 2)
	e.k.Every(20*sim.Millisecond, func() bool {
		cl.Request(hot, "open", nil, 64, nil)
		cl.Request(hot, "open", nil, 64, nil)
		cl.Request(cold, "open", nil, 64, nil)
		return e.k.Now() < sim.Time(8*sim.Second)
	})
	e.k.Run(sim.Time(10 * sim.Second))

	if got := e.rt.ServerOf(hot); got != 1 {
		t.Fatalf("hot folder on %d, want reserved empty server 1", got)
	}
	if owner := m.reserved[1]; owner != hot {
		t.Fatalf("server 1 reserved for %v, want %v", owner, hot)
	}
}

func TestReservedServerRejectsOthers(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	owner := e.rt.SpawnOn("VIP", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {}), 1)
	m.reserved[1] = owner
	var refs []actor.Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(45), 0))
	}
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(8 * sim.Second))
	// Balance wants to move workers but the only target is reserved: the
	// planner must avoid it, so nothing migrates.
	if len(e.rt.ActorsOn(1)) != 1 {
		t.Fatalf("reserved server accepted foreign actors: %v", e.rt.ActorsOn(1))
	}
	if m.Stats.ExecutedMigrations != 0 {
		t.Fatalf("migrations onto reserved server: %d", m.Stats.ExecutedMigrations)
	}
}

func TestScaleOutWhenAllOverloaded(t *testing.T) {
	e := newEnv(1, 1, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	var refs []actor.Ref
	for i := 0; i < 3; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(50), 0))
	}
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{
		Period: sim.Second, MinResidence: sim.Millisecond,
		ScaleOut: true, InstanceType: e.c.Machine(0).Type,
	})
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(30 * sim.Second))
	if m.Stats.ScaleOuts == 0 {
		t.Fatal("no scale-out despite saturated fleet")
	}
	if e.c.UpCount() < 2 {
		t.Fatalf("up servers = %d", e.c.UpCount())
	}
	// Workers must eventually spread onto the new server.
	if len(e.rt.ActorsOn(1)) == 0 {
		t.Fatal("new server unused after scale-out")
	}
}

func TestScaleInWhenAllUnderutilized(t *testing.T) {
	e := newEnv(1, 3, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	// One light worker per server: everything far below 60%.
	var refs []actor.Ref
	for i := 0; i < 3; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(5), cluster.MachineID(i)))
	}
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{
		Period: sim.Second, MinResidence: sim.Millisecond,
		ScaleIn: true, MinServers: 1, InstanceType: e.c.Machine(0).Type,
	})
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(20 * sim.Second))
	if m.Stats.ScaleIns == 0 {
		t.Fatal("no scale-in despite idle fleet")
	}
	if e.c.UpCount() >= 3 {
		t.Fatalf("up servers = %d, want < 3", e.c.UpCount())
	}
	// No worker may be lost.
	total := 0
	for _, mach := range e.c.UpMachines() {
		total += len(e.rt.ActorsOn(mach.ID))
	}
	if total != 3 {
		t.Fatalf("workers after scale-in = %d", total)
	}
}

func TestPinPreventsBalanceMigration(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`
true => pin(Worker(w));
server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);
`)
	var refs []actor.Ref
	for i := 0; i < 3; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(50), 0))
	}
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(8 * sim.Second))
	if m.Stats.ExecutedMigrations != 0 {
		t.Fatalf("pinned workers migrated %d times", m.Stats.ExecutedMigrations)
	}
	for _, r := range refs {
		if e.rt.ServerOf(r) != 0 {
			t.Fatal("pinned worker moved")
		}
	}
}

func TestStabilityBlocksImmediateRemigration(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	var refs []actor.Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(45), 0))
	}
	// MinResidence = 5 periods: within the first few periods nothing moves
	// because spawn counts as the last move.
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: 5 * sim.Second})
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(4 * sim.Second))
	if m.Stats.ExecutedMigrations != 0 {
		t.Fatal("migration before minimum residence elapsed")
	}
	e.k.Run(sim.Time(12 * sim.Second))
	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("no migration after residence elapsed")
	}
}

func TestPlacementHookColocatesNewActor(t *testing.T) {
	e := newEnv(1, 4, 2)
	pol := epl.MustParse(`Player(p) in ref(Session(s).players) => pin(s); colocate(p, s);`)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second})
	m.Start()
	session := e.rt.SpawnOn("Session", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {}), 2)
	player := e.rt.Spawn("Player", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {}), session)
	if e.rt.ServerOf(player) != 2 {
		t.Fatalf("player placed on %d, want creator's server 2", e.rt.ServerOf(player))
	}
}

func TestPlacementHookReserveTypePrefersIdle(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 50 => reserve(VideoStream(v), cpu);`)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second})
	m.Start()
	// Load server 0.
	w := e.rt.SpawnOn("W", worker(40), 0)
	startWork(e, w)
	e.k.Run(sim.Time(500 * sim.Millisecond))
	vs := e.rt.Spawn("VideoStream", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {}), actor.Ref{})
	if e.rt.ServerOf(vs) != 1 {
		t.Fatalf("video stream placed on %d, want idle server 1", e.rt.ServerOf(vs))
	}
}

func TestPlacementHookFallsBackToRandom(t *testing.T) {
	e := newEnv(1, 3, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 => balance({Other}, cpu);`)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second})
	m.Start()
	ref := e.rt.Spawn("Unrelated", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {}), actor.Ref{})
	if e.rt.ServerOf(ref) < 0 {
		t.Fatal("fallback placement failed")
	}
}

func TestConflictResolutionPrefersHigherPriority(t *testing.T) {
	e := newEnv(1, 3, 1)
	m := New(e.k, e.c, e.rt, e.prof, epl.MustParse(`true => pin(None(n));`), Config{Period: sim.Second})
	a := actor.Ref{ID: 42}
	final := m.resolveActions([]Action{
		{Actor: a, Src: 0, Trg: 1, Kind: epl.KindColocate, Pri: 20},
		{Actor: a, Src: 0, Trg: 2, Kind: epl.KindBalance, Pri: 40},
	})
	if len(final) != 1 || final[0].Trg != 2 || final[0].Kind != epl.KindBalance {
		t.Fatalf("resolved = %+v, want balance to server 2", final)
	}
	if m.Stats.ResolvedConflicts != 1 {
		t.Fatalf("conflicts = %d", m.Stats.ResolvedConflicts)
	}
}

func TestColocateFollowsMigratingPartner(t *testing.T) {
	e := newEnv(1, 3, 1)
	m := New(e.k, e.c, e.rt, e.prof, epl.MustParse(`true => pin(None(n));`), Config{Period: sim.Second})
	partner := actor.Ref{ID: 1}
	follower := actor.Ref{ID: 2}
	// The partner is being reserved onto server 2; the follower's colocate
	// was planned against the partner's old server 1.
	final := m.resolveActions([]Action{
		{Actor: follower, Src: 0, Trg: 1, Kind: epl.KindColocate, Pri: 20, Partner: partner},
		{Actor: partner, Src: 1, Trg: 2, Kind: epl.KindReserve, Pri: 30, Partner: partner},
	})
	for _, a := range final {
		if a.Actor == follower && a.Trg != 2 {
			t.Fatalf("follower retargeted to %d, want 2", a.Trg)
		}
	}
}

func TestMultipleGEMsStillBalance(t *testing.T) {
	e := newEnv(3, 8, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	var refs []actor.Ref
	for i := 0; i < 16; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(22), 0))
	}
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond, NumGEMs: 4})
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(40 * sim.Second))
	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("no migrations with 4 GEMs")
	}
	if len(e.rt.ActorsOn(0)) == 16 {
		t.Fatal("load never left the hot server")
	}
}

func TestKThresholdSuppressesSmallGEMs(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	var refs []actor.Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(45), 0))
	}
	// K=5 > number of servers: the GEM never acts.
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond, K: 5})
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(8 * sim.Second))
	if m.Stats.ExecutedMigrations != 0 {
		t.Fatal("GEM acted below the K report threshold")
	}
}

func TestStopHaltsManagement(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	m.Start()
	m.Stop()
	var refs []actor.Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(45), 0))
	}
	startWork(e, refs...)
	e.k.Run(sim.Time(5 * sim.Second))
	if m.Stats.Ticks > 1 {
		t.Fatalf("manager ticked %d times after Stop", m.Stats.Ticks)
	}
}

func TestOnTickObserverFires(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 => balance({Worker}, cpu);`)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second})
	ticks := 0
	m.OnTick = func(tick int, snap *epl.Snapshot) {
		ticks++
		if len(snap.Servers) != 2 {
			t.Errorf("snapshot servers = %d", len(snap.Servers))
		}
	}
	m.Start()
	e.k.Run(sim.Time(5500 * sim.Millisecond))
	if ticks != 5 {
		t.Fatalf("observer fired %d times, want 5", ticks)
	}
}
