package emr

import (
	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// DecisionBench is the harness behind cmd/plasma-bench's
// planner_decision_time entry: one GEM planning round over a synthetic
// dense snapshot, sized up to the tentpole scale (a million actors on a
// thousand servers). The snapshot is built once here, outside the timed
// region — the entry measures the decision round itself, which is the part
// that sits between REPORT and RREPLY and therefore must stay off the
// migration critical path.
//
// The fleet shape is fixed and arithmetic (no RNG): every tenth server is
// CPU-hot, the next one memory-hot, every tenth cold, the rest mid-band,
// so both band intents always have real shedding work and the cold tail
// gives targets on every axis. Every fourth actor carries one profiled
// caller edge to its predecessor, giving the batch round's affinity
// scoring a sparse graph of the density the profiler produces in practice.
// A fixed fleet means the action counts the round plans are pure functions
// of (actors, servers) — plasma-bench records them in the entry's Summary,
// where the -compare determinism gate will flag any planner drift.
type DecisionBench struct {
	NumActors  int
	NumServers int

	m     *Manager
	snap  *epl.Snapshot
	in    *epl.Intents
	scope []cluster.MachineID
}

// NewDecisionBench builds the synthetic fleet and snapshot. Both planners
// run against the identical inputs; Run selects between them.
func NewDecisionBench(actors, servers int) *DecisionBench {
	k := sim.New(1)
	typ := cluster.InstanceType{Name: "bench", VCPUs: 2, MemMB: 8192, NetMbps: 10000, Boot: 10 * sim.Second, SpeedFac: 1}
	c := cluster.New(k, servers, typ)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	m := New(k, c, rt, prof, epl.MustParse(`true => pin(Nothing(n));`),
		Config{Period: sim.Second, MinResidence: sim.Millisecond})
	// Advance past the residence window so every fabricated actor
	// (LastMoved = 0) is movable, as in a steady-state period.
	k.Run(sim.Time(sim.Second))

	b := &DecisionBench{NumActors: actors, NumServers: servers, m: m}
	snap := &epl.Snapshot{At: k.Now(), Window: sim.Second}
	srvCPU := make([]float64, servers)
	srvMem := make([]float64, servers)
	for i := 0; i < servers; i++ {
		cpu, mem := 55.0, 50.0
		switch i % 10 {
		case 0:
			cpu, mem = 92, 40
		case 1:
			cpu, mem = 40, 90
		case 9:
			cpu, mem = 12, 10
		}
		srvCPU[i], srvMem[i] = cpu, mem
		snap.Servers = append(snap.Servers, &epl.ServerInfo{
			ID: cluster.MachineID(i), CPUPerc: cpu, MemPerc: mem, NetPerc: 20,
			VCPUs: typ.VCPUs, MemMB: typ.MemMB, NetMbps: typ.NetMbps, Up: true,
		})
		b.scope = append(b.scope, cluster.MachineID(i))
	}
	per := actors / servers
	if per < 1 {
		per = 1
	}
	snap.Actors = make([]*epl.ActorInfo, 0, actors)
	for i := 0; i < actors; i++ {
		srv := i % servers
		ai := &epl.ActorInfo{
			Ref:      actor.Ref{ID: actor.ID(i + 1)},
			Type:     "W",
			Server:   cluster.MachineID(srv),
			CPUPerc:  srvCPU[srv] / float64(per),
			MemPerc:  srvMem[srv] / float64(per),
			NetPerc:  20 / float64(per),
			MemBytes: int64(srvMem[srv] / float64(per) / 100 * float64(typ.MemMB) * 1024 * 1024),
		}
		if i%4 == 0 && i > 0 {
			ai.Calls = []epl.CallStat{{CallerType: "W", Caller: actor.Ref{ID: actor.ID(i)}, Method: "m", Count: 16, Bytes: 4096}}
		}
		snap.Actors = append(snap.Actors, ai)
	}
	b.snap = snap.Index()
	b.in = &epl.Intents{Balance: []epl.BalanceIntent{
		{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60},
		{Types: []string{"W"}, Res: epl.Mem, Upper: 80, Lower: 60},
	}}
	return b
}

// Run executes one planning round with the named planner ("batch" or ""
// for legacy) and returns the number of actions planned. The snapshot is
// never mutated, so repeated runs are independent and identical.
func (b *DecisionBench) Run(planner string) int {
	b.m.Cfg.Planner = planner
	var acts []Action
	if b.m.batchPlanner() {
		acts, _, _, _, _ = b.m.planResourceBatch(b.scope, b.snap, b.in, 0, 0)
	} else {
		acts, _, _, _, _ = b.m.planResource(b.scope, b.snap, b.in)
	}
	return len(acts)
}
