package emr

import (
	"bytes"
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
	"plasma/internal/trace"
)

// differentialRun drives a full elasticity scenario — hot servers shedding
// workers, call stats, properties, multiple GEMs — and returns its decision
// trace. With noReuse the profiler builds every snapshot into fresh memory;
// the pooled arena path must produce byte-identical decisions.
func differentialRun(t *testing.T, noReuse bool) []byte {
	t.Helper()
	e := newEnv(7, 4, 2)
	if noReuse {
		e.prof.NoReuse()
	}
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	var refs []actor.Ref
	for i := 0; i < 12; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(30), cluster.MachineID(i%2)))
	}
	for i := 0; i < 3; i++ {
		e.rt.SetProp(refs[i], "peer", []actor.Ref{refs[(i+1)%3]})
	}
	m := New(e.k, e.c, e.rt, e.prof, pol,
		Config{Period: sim.Second, MinResidence: sim.Millisecond, NumGEMs: 2})
	ring := trace.NewRing(1 << 20)
	tr := trace.New(ring)
	tr.SetClock(e.k.Now)
	m.SetTracer(tr)
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(12 * sim.Second))

	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("differential scenario executed no migrations; trace comparison is vacuous")
	}
	if ring.Dropped() > 0 {
		t.Fatalf("trace ring dropped %d records", ring.Dropped())
	}
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, ring.Records()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The arena-reuse differential: at a fixed seed, the pooled snapshot path
// and the naive fresh-allocation path must drive the EMR to byte-identical
// decision traces. Any cross-period leak through the reused ActorInfo or
// CallStat storage would surface as a diverging record here.
func TestPooledSnapshotTraceMatchesNoReuse(t *testing.T) {
	pooled := differentialRun(t, false)
	naive := differentialRun(t, true)
	if len(pooled) == 0 {
		t.Fatal("traced run emitted no records")
	}
	if !bytes.Equal(pooled, naive) {
		t.Fatalf("pooled vs no-reuse traces differ (%d vs %d bytes)", len(pooled), len(naive))
	}
}
