package emr

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/chaos"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// Regression tests for the reservation ledger's two admission races: the
// cleanup pass dropping a reservation while the owner's admitted transfer
// is still in flight, and a lost QREPLY leaving a stale target-side
// reservation that blocks the server for everyone else.

// The cleanup pass runs at every period boundary; while the owner's
// admitted migration to the reserved server is in flight, ServerOf still
// reports the source, which must not be read as "the owner moved away".
// Pre-fix, cleanupReservations deleted the reservation in exactly that
// window, letting a racing balance action put a foreign actor onto the
// dedicated server mid-transfer.
func TestReservationHeldDuringInFlightReserveTransfer(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})

	// 64 MB of state: serialization alone costs 320 ms per side, so the
	// transfer spans several cleanup passes.
	owner := e.rt.SpawnOn("VIP", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.SetMemSize(64 << 20)
	}), 0)
	actor.NewClient(e.rt, 0).Send(owner, "grow", nil, 1)
	e.k.RunUntilIdle()

	// The reserve was admitted: the ledger dedicates server 1 to the owner
	// and the transfer begins.
	m.reserved[1] = owner
	e.rt.Migrate(owner, 1, nil)
	if !e.rt.Migrating(owner) || e.rt.ServerOf(owner) != 0 {
		t.Fatalf("transfer not in flight (migrating=%v srv=%d)",
			e.rt.Migrating(owner), e.rt.ServerOf(owner))
	}

	// A period boundary's cleanup pass lands mid-transfer.
	m.cleanupReservations()
	if got := m.reserved[1]; got != owner {
		t.Fatalf("reservation dropped while the owner's transfer is in flight (reserved[1]=%v)", got)
	}

	// So a racing balance migration is still denied admission.
	foreign := e.rt.SpawnOn("Worker", worker(45), 0)
	snap := e.prof.Snapshot(nil)
	ok, reason := m.checkIdleRes(Action{Actor: foreign, Src: 0, Trg: 1, Kind: epl.KindBalance, Res: epl.CPU}, snap)
	if ok || reason != "reserved" {
		t.Fatalf("foreign actor admitted onto the reserved server mid-transfer (ok=%v reason=%q)", ok, reason)
	}

	// Once the owner settles, the reservation must of course survive too.
	e.k.RunUntilIdle()
	if got := e.rt.ServerOf(owner); got != 1 {
		t.Fatalf("owner never arrived on the reserved server (srv=%d)", got)
	}
	m.cleanupReservations()
	if m.reserved[1] != owner {
		t.Fatal("reservation dropped after the owner settled on its server")
	}
}

// dropFirstQReply swallows exactly one QREPLY — the reserve admission's
// answer — and delivers everything else.
type dropFirstQReply struct{ dropped bool }

func (d *dropFirstQReply) Intercept(kind chaos.MsgKind, from, to string) chaos.Decision {
	if kind == chaos.QReply && !d.dropped {
		d.dropped = true
		return chaos.Decision{Verdict: chaos.Drop}
	}
	return chaos.Decision{Verdict: chaos.Deliver}
}

// When the target LEM admits a reserve QUERY it records the reservation,
// but if the QREPLY is lost the source times out and never migrates.
// Pre-fix, that stale reservation blocked the target for every other
// actor; the target must release its own grant after the query timeout.
func TestDroppedQReplyReleasesTargetReservation(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	d := &dropFirstQReply{}
	m.SetChaos(d)

	owner := e.rt.SpawnOn("VIP", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {}), 0)
	foreign := e.rt.SpawnOn("Worker", worker(45), 0)
	snap := e.prof.Snapshot(nil)

	// A reserve action's admission round trip; the QREPLY is dropped.
	m.queryAdmission(Action{Actor: owner, Src: 0, Trg: 1, Kind: epl.KindReserve, Res: epl.CPU}, snap, false)
	e.k.Run(sim.Time(2 * sim.Millisecond)) // QUERY delivered, grant recorded
	if m.reserved[1] != owner {
		t.Fatal("reserve admission did not record the target-side grant")
	}
	if !d.dropped {
		t.Fatal("QREPLY not dropped; test is vacuous")
	}

	// Past the query timeout: the source counted a denial and the target
	// must have released its orphaned grant.
	e.k.Run(sim.Time(10 * sim.Millisecond))
	if m.Stats.QueryTimeouts != 1 {
		t.Fatalf("query timeouts = %d, want 1", m.Stats.QueryTimeouts)
	}
	if _, held := m.reserved[1]; held {
		t.Fatal("stale reservation still blocks the target after the query timeout")
	}
	if m.Stats.ReleasedReservations != 1 {
		t.Fatalf("released reservations = %d, want 1", m.Stats.ReleasedReservations)
	}

	// The server admits other actors again.
	ok, reason := m.checkIdleRes(Action{Actor: foreign, Src: 0, Trg: 1, Kind: epl.KindBalance, Res: epl.CPU}, snap)
	if !ok {
		t.Fatalf("server still rejects admissions after the orphaned grant (reason=%q)", reason)
	}
}
