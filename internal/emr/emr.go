// Package emr implements PLASMA's elasticity management runtime (EMR): the
// elasticity execution runtime of §4, organised as per-server local
// elasticity managers (LEMs, Alg. 1) and a configurable number of global
// elasticity managers (GEMs, Alg. 2).
//
// Every elasticity period:
//
//  1. each LEM evaluates the interaction elasticity rules against its local
//     profiling snapshot (applyActRules) and REPORTs resource-rule actor and
//     server runtime info to a randomly chosen GEM;
//  2. each GEM that received more than K reports builds a global runtime
//     snapshot over its reporting servers, evaluates the resource elasticity
//     rules (applyResRules), and RREPLYs migration actions to the LEMs;
//  3. LEMs resolve conflicting actions by priority (resolveActions), QUERY
//     the target server's LEM for admission (checkIdleRes), and migrate on
//     QREPLY via the actor runtime's live migration.
//
// GEMs also drive cluster scale-out/in: when all of a GEM's managed servers
// are overloaded (resp. under-utilized) it polls the other GEMs and adjusts
// the number of servers on a majority of corroborating views.
package emr

import (
	"sort"
	"strconv"

	"plasma/internal/actor"
	"plasma/internal/chaos"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/lint"
	"plasma/internal/profile"
	"plasma/internal/sim"
	"plasma/internal/trace"
)

// Action is a planned actor migration (Table 2b).
type Action struct {
	Actor   actor.Ref
	Src     cluster.MachineID // server currently holding the actor
	Trg     cluster.MachineID // target server
	Kind    epl.BehaviorKind
	Res     epl.Resource // resource the action is accounted against
	Pri     int
	Partner actor.Ref // colocation partner / reservation owner at the target

	traceID uint64 // id of the action's KindPropose record (0 untraced)
}

// Config tunes the EMR.
type Config struct {
	// Period is the elasticity time period (user-set, §2.2).
	Period sim.Duration
	// NumGEMs is the number of global elasticity managers (§5.7).
	NumGEMs int
	// K is the report-count threshold before a GEM acts (Alg. 2 line 8).
	K int
	// MinResidence is the minimum time an actor must stay on a server
	// before it may move again; 0 defaults to Period (§4.3 stability).
	MinResidence sim.Duration
	// GEMLatency models one LEM<->GEM message hop.
	GEMLatency sim.Duration
	// ReportTimeout is how long a LEM waits for the GEM's REPORT ack before
	// retransmitting; the wait doubles per attempt, capped at 4x. Default
	// 4*GEMLatency.
	ReportTimeout sim.Duration
	// ReportRetries caps REPORT retransmissions per period (default 2, so
	// up to three sends).
	ReportRetries int
	// ReportWindow is how long after the period starts a GEM waits before
	// evaluating with whatever REPORTs arrived (partial snapshots instead
	// of stalling). Default 4*ReportTimeout.
	ReportWindow sim.Duration
	// ExecDelay is when LEMs resolve and execute the period's actions;
	// RREPLYs arriving later are lost for the period. Default
	// ReportWindow + 4*GEMLatency.
	ExecDelay sim.Duration
	// QueryTimeout is how long a source LEM waits for an admission QREPLY
	// before treating the migration as denied. Default 4*GEMLatency.
	QueryTimeout sim.Duration
	// StalePeriods bounds how many periods old a cached REPORT may be and
	// still stand in for a lost one in the GEM's snapshot. Default 2.
	StalePeriods int
	// ScaleOut/ScaleIn enable dynamic resource allocation.
	ScaleOut bool
	ScaleIn  bool
	// MinServers bounds scale-in; InstanceType is what scale-out provisions.
	MinServers   int
	InstanceType cluster.InstanceType
	// ProvSpecs, when non-empty, is the provisioning spectrum scale-out
	// draws from (warm pool, container, VM, ...). Classes are tried in
	// policy-preference order (a `provclass` rule), then spec order,
	// falling to the next class when a pool is exhausted. Empty keeps the
	// legacy single-constant-boot provisioner.
	ProvSpecs []cluster.ProvSpec
	// ReserveTTL, when positive, is how many periods a granted reservation
	// outlives the last reserve intent naming its owner: a reserve rule that
	// stops firing (the anchor went cold, or the dedicated server pulled it
	// back under the rule's threshold) lets the lease lapse and returns the
	// server to the shared pool after ReserveTTL periods. Zero keeps the
	// legacy behavior — reservations persist until the owner moves or dies —
	// which on drifting workloads fragments the fleet one stale dedication
	// at a time.
	ReserveTTL int
	// ReserveEvacuate, when set, drains a freshly dedicated server's other
	// residents to the least loaded unreserved servers at grant time.
	// Without it a dedication is exclusivity layered over whatever already
	// lived there — the owner shares its "dedicated" CPU with the old
	// residents, and balance cannot fix that because reserved servers are
	// outside its scope. Off by default: the eviction burst costs transfer
	// bandwidth, which only pays off when reservations target loaded
	// servers (skewed streams), not when they land on idle ones.
	ReserveEvacuate bool
	// DefaultUpper is the admission bound used when a rule states no upper
	// threshold.
	DefaultUpper float64
	// Planner selects the GEM planning strategy. Empty or "legacy" keeps
	// the historical one-intent-at-a-time greedy planner, byte-identical
	// at fixed seed to every pinned experiment. "batch" collects the
	// period's balance/reserve intents into one deterministic
	// multi-resource (CPU/mem/net) packing round, colocates by
	// communication affinity, and executes the resulting migrations
	// through the per-NIC transfer pipeline (DESIGN.md §11).
	Planner string
	// Priorities orders conflicting actions; higher wins. Zero value uses
	// the defaults (reserve > pin > balance > colocate > separate: reserve
	// is the most specific placement demand, pin blocks everything below
	// it, and balance outranks colocate as in the paper's §4.3 example).
	Priorities map[epl.BehaviorKind]int
}

// batchPlanner reports whether the batched multi-resource planning round is
// selected. Any value other than "batch" (including empty and "legacy")
// keeps the historical greedy planner.
func (m *Manager) batchPlanner() bool { return m.Cfg.Planner == "batch" }

func (c Config) priority(k epl.BehaviorKind) int {
	if c.Priorities != nil {
		if p, ok := c.Priorities[k]; ok {
			return p
		}
	}
	switch k {
	case epl.KindReserve:
		return 45
	case epl.KindPin:
		return 42
	case epl.KindBalance:
		return 40
	case epl.KindColocate:
		return 20
	case epl.KindSeparate:
		return 10
	}
	return 0
}

func (c Config) withDefaults() Config {
	if c.Period == 0 {
		c.Period = 60 * sim.Second
	}
	if c.NumGEMs <= 0 {
		c.NumGEMs = 1
	}
	if c.MinResidence == 0 {
		c.MinResidence = c.Period
	}
	if c.GEMLatency == 0 {
		c.GEMLatency = sim.Millis(1)
	}
	if c.ReportTimeout == 0 {
		c.ReportTimeout = 4 * c.GEMLatency
	}
	if c.ReportRetries == 0 {
		c.ReportRetries = 2
	}
	if c.ReportWindow == 0 {
		c.ReportWindow = 4 * c.ReportTimeout
	}
	if c.ExecDelay == 0 {
		c.ExecDelay = c.ReportWindow + 4*c.GEMLatency
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 4 * c.GEMLatency
	}
	if c.StalePeriods == 0 {
		c.StalePeriods = 2
	}
	if c.MinServers <= 0 {
		c.MinServers = 1
	}
	if c.DefaultUpper == 0 {
		c.DefaultUpper = 85
	}
	return c
}

// Stats counts EMR activity for experiments.
type Stats struct {
	Ticks              int
	PlannedActions     int
	ExecutedMigrations int
	DeniedAdmissions   int
	ResolvedConflicts  int
	ScaleOuts          int
	ScaleIns           int

	// Control-plane robustness counters.
	RetriedReports   int // REPORT retransmissions after an ack timeout
	QueryTimeouts    int // admission queries treated as denials on timeout
	StaleReportsUsed int // cache entries standing in for lost REPORTs
	// ReleasedReservations counts target-side reserve grants released
	// because the admitted transfer never started (lost QREPLY or period
	// rollover before the source acted).
	ReleasedReservations int
	// ExpiredReservations counts reservations released because no reserve
	// intent re-named their owner for Cfg.ReserveTTL periods.
	ExpiredReservations int
	// FailedProvisions counts scale-out provisions that never reached Up
	// (boot retries exhausted, or crashed/decommissioned mid-boot).
	FailedProvisions int
}

// Manager wires the EMR to an application: policy, profiler, cluster, and
// actor runtime. Create with New, then Start.
type Manager struct {
	K    *sim.Kernel
	C    *cluster.Cluster
	RT   *actor.Runtime
	Prof *profile.Profiler
	Pol  *epl.Policy
	Cfg  Config

	gems     []*gem
	lems     map[cluster.MachineID]*lem
	reserved map[cluster.MachineID]actor.Ref // dedicated server -> owner
	// resEpoch counts (re)grants per reserved server, so a stale
	// release-on-timeout closure from an earlier grant cannot revoke a
	// newer legitimate reservation of the same server.
	resEpoch map[cluster.MachineID]uint64
	// resLease records, per reserved server, the last tick a reserve intent
	// named the reservation's owner (grants count); with Cfg.ReserveTTL set,
	// cleanupReservations expires leases this stopped refreshing.
	resLease map[cluster.MachineID]int
	draining map[cluster.MachineID]bool

	// OnTick, when set, observes each period's global snapshot before
	// planning (used by experiments to trace CPU% and actor distributions).
	OnTick func(tick int, snap *epl.Snapshot)
	// OnActions, when set, observes the final resolved action list each
	// period before admission checks.
	OnActions func(final []Action)

	// PolicyDiagnostics holds the static-analysis findings for Pol,
	// computed once at construction. New panics if any finding has error
	// severity (an unsatisfiable policy would silently never fire).
	PolicyDiagnostics []lint.Diagnostic

	Stats   Stats
	running bool
	timer   *sim.Timer // reusable tick timer; re-armed each period
	booting int        // provisioned machines not yet up (scale-out cooldown)

	// provSpecs is the manager's mutable copy of Cfg.ProvSpecs (warm-pool
	// capacity depletes); provPref is the class preference the policy's
	// provclass rules last expressed, refreshed at every GEM evaluation.
	provSpecs []cluster.ProvSpec
	provPref  []cluster.ProvClass

	chaosI chaos.Interceptor // nil = reliable control plane

	tr     *trace.Tracer // nil = decisions untraced
	trTick uint64        // current period's KindTick record id
}

// SetTracer installs (or removes, with nil) the decision tracer, fanning it
// out to the actor runtime, the cluster, and any already-installed chaos
// interceptor that accepts one. Install before Start.
func (m *Manager) SetTracer(t *trace.Tracer) {
	m.tr = t
	m.RT.SetTracer(t)
	m.C.SetTracer(t)
	if s, ok := m.chaosI.(interface{ SetTracer(*trace.Tracer) }); ok {
		s.SetTracer(t)
	}
}

// evalObs bridges epl evaluation telemetry into trace records, parented to
// the current tick (LEM pass) or the GEM's evaluation record.
type evalObs struct {
	m      *Manager
	parent uint64
	tick   int32
	ctx    string
}

func (o *evalObs) RuleEvaluated(rule *epl.Rule, examined, fired int) {
	o.m.tr.Emit(trace.Record{Kind: trace.KindRuleEval, Parent: o.parent, Tick: o.tick,
		Server: -1, Target: -1, Rule: int32(rule.Index), Value: float64(fired),
		Detail: o.ctx + " examined=" + strconv.Itoa(examined)})
}

func (o *evalObs) RuleFired(rule *epl.Rule, anchor actor.Ref, srv cluster.MachineID, values []epl.FeatureValue) {
	var det []byte
	for i, v := range values {
		if i > 0 {
			det = append(det, "; "...)
		}
		det = append(det, v.Feature...)
		det = append(det, " = "...)
		det = strconv.AppendFloat(det, v.Value, 'g', -1, 64)
	}
	o.m.tr.Emit(trace.Record{Kind: trace.KindRuleFire, Parent: o.parent, Tick: o.tick,
		Server: int32(srv), Target: -1, Actor: uint64(anchor.ID), Rule: int32(rule.Index),
		Detail: string(det)})
}

// obs returns the evaluation observer for one pass, or nil when tracing is
// off (epl.EvaluateObserved with nil is exactly epl.Evaluate).
func (m *Manager) obs(parent uint64, tick int, ctx string) epl.EvalObserver {
	if !m.tr.Enabled() {
		return nil
	}
	return &evalObs{m: m, parent: parent, tick: int32(tick), ctx: ctx}
}

// tracePropose stamps each planned action with its KindPropose record.
func (m *Manager) tracePropose(actions []Action, parent uint64, tickIdx int) {
	if !m.tr.Enabled() {
		return
	}
	for i := range actions {
		a := &actions[i]
		a.traceID = m.tr.Emit(trace.Record{Kind: trace.KindPropose, Parent: parent,
			Tick: int32(tickIdx), Server: int32(a.Src), Target: int32(a.Trg),
			Actor: uint64(a.Actor.ID), Rule: -1, Value: float64(a.Pri),
			Detail: a.Kind.String()})
	}
}

type lem struct {
	srv cluster.MachineID

	gemActions []Action // actions received via RREPLY this period

	// admission ledger: extra resource share already promised to inbound
	// actors this period, per resource.
	promised [3]float64

	failed bool // crashed LEM: no reports, no queries answered, no actions
	acked  bool // this period's REPORT was acknowledged (stops retransmits)
}

type gem struct {
	id      int
	reports []report
	got     map[cluster.MachineID]bool // REPORT dedup for this period
	failed  bool

	// cache holds each server's last REPORT for bounded-staleness reuse
	// when a period's REPORT is lost.
	cache map[cluster.MachineID]cachedReport

	// view flags from the last processed period, for adjustment voting.
	allOver  bool
	allUnder bool
}

type cachedReport struct {
	info *epl.ServerInfo
	tick int
}

type report struct {
	srv  cluster.MachineID
	info *epl.ServerInfo
}

// New creates an EMR manager. Call Start to begin elasticity management.
func New(k *sim.Kernel, c *cluster.Cluster, rt *actor.Runtime, prof *profile.Profiler, pol *epl.Policy, cfg Config) *Manager {
	m := &Manager{
		K: k, C: c, RT: rt, Prof: prof, Pol: pol, Cfg: cfg.withDefaults(),
		lems:     make(map[cluster.MachineID]*lem),
		reserved: make(map[cluster.MachineID]actor.Ref),
		resEpoch: make(map[cluster.MachineID]uint64),
		resLease: make(map[cluster.MachineID]int),
		draining: make(map[cluster.MachineID]bool),
	}
	if m.batchPlanner() && rt != nil {
		// Batched plans hand the runtime several same-period migrations;
		// the per-NIC scheduler lets transfers to distinct destinations
		// overlap instead of serializing behind one another.
		rt.XferPipeline = true
	}
	// Copy the provisioning spectrum: specs are mutable (warm-pool
	// capacity depletes), and the caller's slice must stay pristine.
	if len(m.Cfg.ProvSpecs) > 0 {
		m.provSpecs = append([]cluster.ProvSpec(nil), m.Cfg.ProvSpecs...)
	}
	if pol != nil {
		m.PolicyDiagnostics = lint.AnalyzePolicy(pol, nil)
		for _, d := range m.PolicyDiagnostics {
			if d.Severity >= lint.Error {
				panic("emr: policy rejected by static analysis: " + d.String())
			}
		}
	}
	for i := 0; i < m.Cfg.NumGEMs; i++ {
		m.gems = append(m.gems, &gem{
			id:    i,
			got:   make(map[cluster.MachineID]bool),
			cache: make(map[cluster.MachineID]cachedReport),
		})
	}
	return m
}

// Start installs the new-actor placement hook and schedules periodic
// elasticity management on a reusable kernel timer: each period re-arms
// the same slot (sim.Timer.Reset), so the tick loop costs one heap push
// and zero allocations per period.
func (m *Manager) Start() {
	if m.running {
		return
	}
	m.running = true
	m.RT.SetPlacement(m)
	m.Prof.Reset()
	m.timer = m.K.AfterFunc(m.Cfg.Period, m.tickLoop)
}

// tickLoop runs one elasticity period and re-arms the timer. After Stop,
// the pending fire lapses without rescheduling (releasing the timer slot),
// matching the lazy shutdown of the previous Every-based loop.
func (m *Manager) tickLoop() {
	if !m.running {
		return
	}
	m.tick()
	m.timer.Reset(m.Cfg.Period)
}

// Stop halts elasticity management after the current period.
func (m *Manager) Stop() { m.running = false }

// FailGEM simulates the crash of one global elasticity manager (§4.3 fault
// tolerance): no state synchronization exists between LEMs and GEMs, so
// LEMs simply stop picking the failed GEM at the next period. Returns false
// if the id is out of range.
func (m *Manager) FailGEM(id int) bool {
	if id < 0 || id >= len(m.gems) {
		return false
	}
	m.gems[id].failed = true
	return true
}

// RecoverGEM brings a failed GEM back into the shuffle.
func (m *Manager) RecoverGEM(id int) bool {
	if id < 0 || id >= len(m.gems) {
		return false
	}
	m.gems[id].failed = false
	return true
}

// FailLEM simulates the crash of one server's local elasticity manager:
// the server stops reporting (so it drops out of the global snapshot once
// its cached REPORTs age past StalePeriods), answers no admission queries,
// and receives no actions — but its actors keep running; this is a
// control-plane failure, not a machine failure. Returns false if no such
// machine exists.
func (m *Manager) FailLEM(srv cluster.MachineID) bool {
	if m.C.Machine(srv) == nil {
		return false
	}
	m.lemFor(srv).failed = true
	return true
}

// RecoverLEM re-registers a failed LEM; its server rejoins the global
// snapshot at the next period's REPORT. Returns false if no such machine
// exists or the LEM was not failed.
func (m *Manager) RecoverLEM(srv cluster.MachineID) bool {
	if m.C.Machine(srv) == nil || !m.lemFor(srv).failed {
		return false
	}
	m.lemFor(srv).failed = false
	return true
}

// failedLEMCount counts crashed LEMs on machines that are still up — the
// servers whose REPORTs the K-quorum must not wait for.
func (m *Manager) failedLEMCount() int {
	n := 0
	for _, mach := range m.C.UpMachines() {
		if l := m.lems[mach.ID]; l != nil && l.failed {
			n++
		}
	}
	return n
}

// aliveGEMs lists the GEMs currently accepting reports.
func (m *Manager) aliveGEMs() []*gem {
	var out []*gem
	for _, g := range m.gems {
		if !g.failed {
			out = append(out, g)
		}
	}
	return out
}

// lemFor returns (creating if needed) the LEM for a server.
func (m *Manager) lemFor(srv cluster.MachineID) *lem {
	l := m.lems[srv]
	if l == nil {
		l = &lem{srv: srv}
		m.lems[srv] = l
	}
	return l
}

// tick runs one elasticity period end to end (phases spaced by GEMLatency).
func (m *Manager) tick() {
	m.Stats.Ticks++
	tickIdx := m.Stats.Ticks

	if m.tr.Enabled() {
		m.trTick = m.tr.Emit(trace.Record{Kind: trace.KindTick, Tick: int32(tickIdx),
			Server: -1, Target: -1, Rule: -1, Value: float64(m.Cfg.Period),
			Detail: "up=" + strconv.Itoa(m.C.UpCount())})
	}

	// Close the profiling window.
	snap := m.Prof.Snapshot(nil)
	m.Prof.Reset()
	m.cleanupReservations()
	m.finishDraining()

	if m.OnTick != nil {
		m.OnTick(tickIdx, snap)
	}

	up := m.C.UpMachines()
	if len(up) == 0 {
		return
	}

	// Phase 1 — LEMs: apply interaction rules locally, report to a GEM.
	for _, g := range m.gems {
		g.reports = nil
		g.got = make(map[cluster.MachineID]bool)
	}
	for _, mach := range up {
		l := m.lemFor(mach.ID)
		l.gemActions = nil
		l.promised = [3]float64{}
		l.acked = false
	}
	// Pins first so planners see them.
	inter := epl.EvaluateObserved(m.Pol, snap, false, true, m.obs(m.trTick, tickIdx, "lem"))
	for _, pi := range inter.Pin {
		m.RT.Pin(pi.Actor)
	}
	// Refresh pin flags in the snapshot for planners.
	for _, ai := range snap.Actors {
		ai.Pinned = m.RT.Pinned(ai.Ref)
	}
	// Alg. 1 line 11: each live LEM sends its REPORT (with ack-driven
	// retransmission) to a randomly chosen live GEM — the shuffling that
	// makes GEM failure harmless.
	for _, mach := range up {
		m.lemReport(m.lemFor(mach.ID), snap, tickIdx, 0)
	}

	// Phase 2 — GEMs: at the report-window deadline, apply resource rules
	// over whatever REPORTs arrived (plus bounded-staleness cache fills).
	m.K.After(m.Cfg.ReportWindow, func() {
		if m.Stats.Ticks != tickIdx {
			return
		}
		for _, g := range m.gems {
			if g.failed {
				continue
			}
			m.gemProcess(g, snap, tickIdx)
		}
	})
	// Phase 3 — LEMs: plan interaction actions against the GEM actions'
	// destinations, resolve conflicts, query targets, migrate.
	m.K.After(m.Cfg.ExecDelay, func() {
		if m.Stats.Ticks != tickIdx {
			return
		}
		m.resolveAndExecute(snap, inter)
	})
}

// cleanupReservations drops reservations whose owner died or moved away.
// A reservation is kept while the owner's admitted transfer TO the
// reserved server is still in flight: ServerOf reports the source until
// the migration commits, so "not on srv yet" must not be read as "moved
// away" — that window is exactly when a foreign actor could otherwise be
// admitted onto the dedicated server.
func (m *Manager) cleanupReservations() {
	for srv, owner := range m.reserved {
		if !m.RT.Exists(owner) {
			m.dropReservation(srv)
			continue
		}
		if m.RT.ServerOf(owner) == srv || m.RT.MigratingTo(owner) == srv {
			continue // settled on, or still being transferred to, srv
		}
		m.dropReservation(srv)
	}
	m.expireReservations()
}

// dropReservation forgets a server's dedication and its lease bookkeeping.
func (m *Manager) dropReservation(srv cluster.MachineID) {
	delete(m.reserved, srv)
	delete(m.resLease, srv)
}

// expireReservations is the ReserveTTL lease check: a reservation whose
// owner no reserve intent has named for more than TTL periods goes back to
// the shared pool (the owner stays put; only the exclusivity ends). Sorted
// iteration keeps trace emission order deterministic.
func (m *Manager) expireReservations() {
	ttl := m.Cfg.ReserveTTL
	if ttl <= 0 || len(m.reserved) == 0 {
		return
	}
	srvs := make([]cluster.MachineID, 0, len(m.reserved))
	for srv := range m.reserved {
		srvs = append(srvs, srv)
	}
	sort.Slice(srvs, func(i, j int) bool { return srvs[i] < srvs[j] })
	for _, srv := range srvs {
		if m.Stats.Ticks-m.resLease[srv] <= ttl {
			continue
		}
		owner := m.reserved[srv]
		m.dropReservation(srv)
		m.Stats.ExpiredReservations++
		m.tr.Emit(trace.Record{Kind: trace.KindDeny, Parent: m.trTick,
			Tick: int32(m.Stats.Ticks), Server: int32(srv), Target: -1,
			Actor: uint64(owner.ID), Rule: -1, Detail: "reserve-expired"})
	}
}

// finishDraining decommissions drained servers once they are empty.
func (m *Manager) finishDraining() {
	ids := make([]cluster.MachineID, 0, len(m.draining))
	for id := range m.draining {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if len(m.RT.ActorsOn(id)) == 0 {
			if m.C.Decommission(id) == nil {
				m.Stats.ScaleIns++
			}
			delete(m.draining, id)
		}
	}
}

// gemProcess is Alg. 2 at the report-window deadline: build the global
// snapshot over the servers whose REPORTs arrived — filling gaps with
// bounded-staleness cache entries, so a lossy control plane degrades the
// view instead of stalling it — apply resource rules, distribute actions
// as RREPLY messages, and drive scale adjustment. The K-quorum discounts
// crashed LEMs: their REPORTs are not coming.
func (m *Manager) gemProcess(g *gem, snap *epl.Snapshot, tickIdx int) {
	// Refresh the cache from this period's arrivals.
	for _, r := range g.reports {
		if r.info != nil {
			g.cache[r.srv] = cachedReport{info: r.info, tick: tickIdx}
		}
	}
	combined := append([]report(nil), g.reports...)
	if len(g.reports) > 0 {
		// Stand in for lost REPORTs with cached ones that are fresh enough,
		// from machines still up whose LEMs still live.
		srvs := make([]cluster.MachineID, 0, len(g.cache))
		for srv := range g.cache {
			srvs = append(srvs, srv)
		}
		sort.Slice(srvs, func(i, j int) bool { return srvs[i] < srvs[j] })
		for _, srv := range srvs {
			c := g.cache[srv]
			if tickIdx-c.tick > m.Cfg.StalePeriods {
				delete(g.cache, srv)
				continue
			}
			if g.got[srv] || m.lemFor(srv).failed {
				continue
			}
			if mach := m.C.Machine(srv); mach == nil || !mach.Up() {
				continue
			}
			m.Stats.StaleReportsUsed++
			m.tr.Emit(trace.Record{Kind: trace.KindStaleReport, Parent: m.trTick,
				Tick: int32(tickIdx), Server: int32(srv), Target: -1, Rule: -1, Value: float64(c.tick)})
			combined = append(combined, report{srv: srv, info: c.info})
		}
	}

	effK := m.Cfg.K - m.failedLEMCount()
	if effK < 0 {
		effK = 0
	}
	gemEvalID := uint64(0)
	if m.tr.Enabled() {
		det := gemName(g.id) + " reports=" + strconv.Itoa(len(g.reports)) +
			" combined=" + strconv.Itoa(len(combined)) + " quorum=" + strconv.Itoa(effK)
		if len(combined) <= effK {
			det += " skipped"
		}
		gemEvalID = m.tr.Emit(trace.Record{Kind: trace.KindGemEval, Parent: m.trTick,
			Tick: int32(tickIdx), Server: -1, Target: -1, Rule: -1,
			Value: float64(len(combined)), Detail: det})
	}
	if len(combined) <= effK {
		return
	}
	scope := make([]cluster.MachineID, 0, len(combined))
	for _, r := range combined {
		scope = append(scope, r.srv)
	}
	sort.Slice(scope, func(i, j int) bool { return scope[i] < scope[j] })

	// The GEM's view is built from REPORT payloads (fresh or cached), not
	// from the profiler directly: what the GEM plans on is exactly what the
	// network delivered.
	servers := make([]*epl.ServerInfo, 0, len(scope))
	for _, srv := range scope {
		if c, ok := g.cache[srv]; ok && c.info != nil {
			servers = append(servers, c.info)
		}
	}
	gemView := snap.WithServers(servers)

	var obs epl.EvalObserver
	if m.tr.Enabled() {
		obs = &evalObs{m: m, parent: gemEvalID, tick: int32(tickIdx), ctx: gemName(g.id)}
	}
	res := epl.EvaluateObserved(m.Pol, gemView, true, false, obs)
	if len(res.ProvClass) > 0 {
		// Refresh the scale-out class preference from the provclass rules
		// that fired this period (rule order = preference order).
		m.provPref = m.provPref[:0]
		for _, pi := range res.ProvClass {
			for _, name := range pi.Classes {
				if pc, ok := cluster.ProvClassFromString(name); ok {
					m.provPref = append(m.provPref, pc)
				}
			}
		}
	}
	var actions []Action
	var allOver, allUnder, wantIn bool
	var outNeed int
	if m.batchPlanner() {
		actions, allOver, allUnder, outNeed, wantIn = m.planResourceBatch(scope, gemView, res, gemEvalID, tickIdx)
	} else {
		actions, allOver, allUnder, outNeed, wantIn = m.planResource(scope, gemView, res)
	}
	g.allOver = allOver
	g.allUnder = allUnder
	m.Stats.PlannedActions += len(actions)
	m.tracePropose(actions, gemEvalID, tickIdx)
	m.rreplyActions(g, tickIdx, actions)
	if outNeed > 0 && m.Cfg.ScaleOut {
		m.tryScaleOut(g, outNeed, gemEvalID)
	}
	if wantIn && m.Cfg.ScaleIn && len(actions) == 0 {
		m.tryScaleIn(g, scope, gemView, gemEvalID)
	}
}

// resolveAndExecute is Alg. 1 lines 13-22: plan interaction actions with
// knowledge of the GEM actions' destinations (so colocation partners follow
// reserved/balanced actors in the same period), resolve per-actor conflicts
// by priority, admission-check targets, then migrate.
func (m *Manager) resolveAndExecute(snap *epl.Snapshot, inter *epl.Intents) {
	srvs := make([]cluster.MachineID, 0, len(m.lems))
	for id := range m.lems {
		srvs = append(srvs, id)
	}
	sort.Slice(srvs, func(i, j int) bool { return srvs[i] < srvs[j] })

	var all []Action
	for _, srv := range srvs {
		if m.lems[srv].failed {
			continue
		}
		all = append(all, m.lems[srv].gemActions...)
	}
	interActions := m.planInteraction(snap, inter, all)
	m.Stats.PlannedActions += len(interActions)
	m.tracePropose(interActions, m.trTick, m.Stats.Ticks)
	all = append(all, interActions...)

	final := m.resolveActions(all)
	// Process queries in priority order so reservations admit partners.
	sort.SliceStable(final, func(i, j int) bool { return final[i].Pri > final[j].Pri })
	if m.OnActions != nil {
		m.OnActions(final)
	}

	pinPri := m.Cfg.priority(epl.KindPin)
	for _, a := range final {
		a := a
		if m.RT.ServerOf(a.Actor) != a.Src {
			m.traceDrop(a, "stale-src")
			continue // stale: the actor moved since planning
		}
		if m.lemFor(a.Src).failed {
			m.traceDrop(a, "lem-crashed")
			continue // the initiating LEM crashed after planning
		}
		repin := false
		if m.RT.Pinned(a.Actor) {
			if a.Pri <= pinPri {
				m.traceDrop(a, "pinned")
				continue
			}
			// An action outranking pin (reserve by default) may move a
			// pinned actor; the pin is restored at its new home.
			repin = true
		}
		// Queries are sent here in priority order and arrive in that same
		// order one hop later, so reservations register before their
		// colocation partners are admission-checked.
		m.queryAdmission(a, snap, repin)
	}
}

// resolveActions keeps, per actor, the highest-priority action. Colocate
// actions additionally retarget to follow a partner that is itself being
// migrated this period.
func (m *Manager) resolveActions(all []Action) []Action {
	if len(all) == 0 {
		return nil
	}
	dest := map[actor.Ref]cluster.MachineID{}
	for _, a := range all {
		dest[a.Actor] = a.Trg
	}
	best := map[actor.Ref]Action{}
	order := []actor.Ref{}
	for _, a := range all {
		if a.Kind == epl.KindColocate && !a.Partner.Zero() {
			if d, ok := dest[a.Partner]; ok {
				a.Trg = d
			}
		}
		if a.Trg == a.Src {
			continue
		}
		cur, ok := best[a.Actor]
		if !ok {
			best[a.Actor] = a
			order = append(order, a.Actor)
			continue
		}
		m.Stats.ResolvedConflicts++
		loser := a
		if a.Pri > cur.Pri {
			loser = cur
			best[a.Actor] = a
		}
		m.traceDrop(loser, "conflict")
	}
	out := make([]Action, 0, len(order))
	for _, ref := range order {
		out = append(out, best[ref])
	}
	return out
}

// traceDrop records an action lost before admission (conflict resolution,
// stale source, crashed LEM, pin), parented to its propose record.
func (m *Manager) traceDrop(a Action, reason string) {
	m.tr.Emit(trace.Record{Kind: trace.KindResolveDrop, Parent: a.traceID,
		Tick: int32(m.Stats.Ticks), Server: int32(a.Src), Target: int32(a.Trg),
		Actor: uint64(a.Actor.ID), Rule: -1, Value: float64(a.Pri), Detail: reason})
}

// checkIdleRes decides whether the target server can accept the actor
// (Table 2a): reserved servers admit only their owner and its colocation
// partners; draining and down servers admit nothing; otherwise the target's
// projected utilization must stay under the admission bound. The second
// return is the denial reason ("" when admitted), recorded in the trace.
func (m *Manager) checkIdleRes(a Action, snap *epl.Snapshot) (bool, string) {
	mach := m.C.Machine(a.Trg)
	if mach == nil || !mach.Up() {
		return false, "target-down"
	}
	if m.draining[a.Trg] {
		return false, "draining"
	}
	if owner, ok := m.reserved[a.Trg]; ok {
		if a.Actor != owner && a.Partner != owner {
			return false, "reserved"
		}
		// The owner and its colocation partners are the dedicated server's
		// entitled workload: no load check (the reserve planner already
		// chose an idle server for them).
		return true, ""
	}
	ai := snap.Actor(a.Actor)
	ti := snap.Server(a.Trg)
	if ai == nil {
		return false, "unknown-actor"
	}
	l := m.lemFor(a.Trg)
	res := a.Res
	load := m.loadOn(ai, res, a.Trg, snap)
	projected := l.promised[res]
	if ti != nil {
		projected += ti.Res(res)
	}
	if projected+load > m.admissionBound(res) {
		return false, "over-bound"
	}
	l.promised[res] += load
	return true, ""
}

// admissionBound is the utilization ceiling for accepting migrations.
func (m *Manager) admissionBound(res epl.Resource) float64 {
	return m.Cfg.DefaultUpper
}

// loadOn estimates the resource share (0-100) the actor would add on the
// target server, rescaling its measured usage by relative capacity.
func (m *Manager) loadOn(ai *epl.ActorInfo, res epl.Resource, trg cluster.MachineID, snap *epl.Snapshot) float64 {
	src := m.C.Machine(ai.Server)
	dst := m.C.Machine(trg)
	if src == nil || dst == nil {
		return ai.ResOf(res)
	}
	switch res {
	case epl.CPU:
		srcCap := float64(src.Type.VCPUs) * src.Type.SpeedFac
		dstCap := float64(dst.Type.VCPUs) * dst.Type.SpeedFac
		if dstCap == 0 {
			return ai.CPUPerc
		}
		return ai.CPUPerc * srcCap / dstCap
	case epl.Mem:
		if dst.Type.MemMB == 0 {
			return ai.MemPerc
		}
		return float64(ai.MemBytes) / float64(dst.Type.MemMB*1024*1024) * 100
	case epl.Net:
		if dst.Type.NetMbps == 0 {
			return ai.NetPerc
		}
		return ai.NetPerc * src.Type.NetMbps / dst.Type.NetMbps
	}
	return 0
}

// movable reports whether the actor may be migrated now (not pinned, has
// satisfied the minimum-residence stability requirement, §4.3).
func (m *Manager) movable(ai *epl.ActorInfo) bool {
	if ai.Pinned {
		return false
	}
	return m.rested(ai)
}

// movableAt is movable for a specific action priority: actions outranking
// pin may move pinned actors.
func (m *Manager) movableAt(ai *epl.ActorInfo, pri int) bool {
	if ai.Pinned && pri <= m.Cfg.priority(epl.KindPin) {
		return false
	}
	return m.rested(ai)
}

// rested reports whether the minimum-residence stability requirement
// (§4.3) has elapsed since the actor's last move.
func (m *Manager) rested(ai *epl.ActorInfo) bool {
	return sim.Duration(m.K.Now()-ai.LastMoved) >= m.Cfg.MinResidence
}
