package emr

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// Direct unit tests for the planners over synthetic snapshots.

type planEnv struct {
	e *env
	m *Manager
}

func newPlanEnv(t *testing.T, machines int) *planEnv {
	t.Helper()
	e := newEnv(1, machines, 2)
	m := New(e.k, e.c, e.rt, e.prof, epl.MustParse(`true => pin(Nothing(n));`),
		Config{Period: sim.Second, MinResidence: sim.Millisecond})
	// Advance past the residence window so fabricated actors (LastMoved=0)
	// are movable.
	e.k.Run(sim.Time(sim.Second))
	return &planEnv{e: e, m: m}
}

// buildSnap makes a snapshot with explicit server loads and actors.
func buildSnap(pe *planEnv, serverCPU []float64, actors []*epl.ActorInfo) *epl.Snapshot {
	snap := &epl.Snapshot{At: pe.e.k.Now(), Window: sim.Second}
	for i, cpu := range serverCPU {
		snap.Servers = append(snap.Servers, &epl.ServerInfo{
			ID: cluster.MachineID(i), CPUPerc: cpu, VCPUs: 2, Up: true,
		})
	}
	snap.Actors = actors
	return snap.Index()
}

// mkActor fabricates actor info; the actor is also spawned in the runtime
// so ActorsOn and admission lookups resolve.
func mkActor(pe *planEnv, typ string, srv cluster.MachineID, cpu float64) *epl.ActorInfo {
	ref := pe.e.rt.SpawnOn(typ, actor.BehaviorFunc(func(*actor.Context, actor.Message) {}), srv)
	return &epl.ActorInfo{
		Ref: ref, Type: typ, Server: srv, CPUPerc: cpu,
		Props: map[string][]actor.Ref{},
	}
}

func scope(n int) []cluster.MachineID {
	out := make([]cluster.MachineID, n)
	for i := range out {
		out[i] = cluster.MachineID(i)
	}
	return out
}

func TestPlanBalanceShedsOverloadedServer(t *testing.T) {
	pe := newPlanEnv(t, 3)
	actors := []*epl.ActorInfo{
		mkActor(pe, "W", 0, 40), mkActor(pe, "W", 0, 30), mkActor(pe, "W", 0, 25),
		mkActor(pe, "W", 1, 30),
	}
	snap := buildSnap(pe, []float64{95, 30, 10}, actors)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	acts, _, _, _, _ := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true, 2: true})
	if len(acts) == 0 {
		t.Fatal("no actions for a 95% server")
	}
	for _, a := range acts {
		if a.Src != 0 {
			t.Fatalf("action from %d, want hot server 0", a.Src)
		}
		if a.Trg == 0 {
			t.Fatal("action targets the hot server")
		}
	}
}

func TestPlanBalanceRespectsScope(t *testing.T) {
	pe := newPlanEnv(t, 3)
	actors := []*epl.ActorInfo{mkActor(pe, "W", 0, 50)}
	snap := buildSnap(pe, []float64{95, 5, 5}, actors)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	// Server 2 is outside the GEM's scope: nothing may target it.
	acts, _, _, _, _ := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true})
	for _, a := range acts {
		if a.Trg == 2 {
			t.Fatal("action targets an out-of-scope server")
		}
	}
}

func TestPlanBalanceSkipsWrongTypes(t *testing.T) {
	pe := newPlanEnv(t, 2)
	actors := []*epl.ActorInfo{mkActor(pe, "Other", 0, 90)}
	snap := buildSnap(pe, []float64{95, 5}, actors)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	acts, _, _, outNeedIgnored, _ := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true})
	_ = outNeedIgnored
	if len(acts) != 0 {
		t.Fatalf("balanced an uncovered type: %+v", acts)
	}
}

func TestPlanBalanceAllOverSignalsScaleOut(t *testing.T) {
	pe := newPlanEnv(t, 2)
	actors := []*epl.ActorInfo{mkActor(pe, "W", 0, 50), mkActor(pe, "W", 1, 50)}
	snap := buildSnap(pe, []float64{95, 92}, actors)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	_, allOver, _, wantOut, _ := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true})
	if !allOver || !wantOut {
		t.Fatalf("allOver=%v wantOut=%v, want both true", allOver, wantOut)
	}
}

func TestPlanBalanceAllUnderSignalsScaleIn(t *testing.T) {
	pe := newPlanEnv(t, 3)
	snap := buildSnap(pe, []float64{10, 12, 8}, nil)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	_, _, allUnder, _, wantIn := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true, 2: true})
	if !allUnder || !wantIn {
		t.Fatalf("allUnder=%v wantIn=%v, want both true", allUnder, wantIn)
	}
}

func TestDeficitFillPullsOntoEmptyServer(t *testing.T) {
	pe := newPlanEnv(t, 3)
	actors := []*epl.ActorInfo{
		mkActor(pe, "W", 0, 20), mkActor(pe, "W", 0, 18), mkActor(pe, "W", 0, 16),
		mkActor(pe, "W", 1, 30),
	}
	snap := buildSnap(pe, []float64{74, 50, 0}, actors)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	acts, _, _, _, _ := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true, 2: true})
	filled := false
	for _, a := range acts {
		if a.Trg == 2 {
			filled = true
		}
	}
	if !filled {
		t.Fatalf("empty server never filled: %+v", acts)
	}
}

func TestDeficitFillQuietWhenFleetUniformlyLight(t *testing.T) {
	pe := newPlanEnv(t, 3)
	actors := []*epl.ActorInfo{mkActor(pe, "W", 0, 10), mkActor(pe, "W", 1, 10), mkActor(pe, "W", 2, 10)}
	snap := buildSnap(pe, []float64{20, 22, 18}, actors)
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: 80, Lower: 60}
	acts, _, _, _, _ := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true, 2: true})
	if len(acts) != 0 {
		t.Fatalf("dual-bound rule rebalanced a uniformly light fleet: %+v", acts)
	}
}

func TestDeficitFillLowerOnlyRuleActsOnLightFleet(t *testing.T) {
	pe := newPlanEnv(t, 3)
	actors := []*epl.ActorInfo{
		mkActor(pe, "W", 0, 15), mkActor(pe, "W", 0, 14), mkActor(pe, "W", 0, 9),
	}
	snap := buildSnap(pe, []float64{40, 2, 1}, actors)
	// Lower-only (E-Store style): redistribute despite all servers < upper.
	bi := epl.BalanceIntent{Types: []string{"W"}, Res: epl.CPU, Upper: nan(), Lower: 50}
	acts, _, _, _, _ := pe.m.planBalance(bi, snap, map[cluster.MachineID]bool{0: true, 1: true, 2: true})
	if len(acts) == 0 {
		t.Fatal("lower-only rule did not redistribute")
	}
}

func nan() float64 {
	var z float64
	return 0 / z // NaN: "no upper bound stated"
}

func TestPlanReserveStarvedWhenNoTarget(t *testing.T) {
	pe := newPlanEnv(t, 2)
	vip := mkActor(pe, "V", 0, 30)
	snap := buildSnap(pe, []float64{90, 50}, []*epl.ActorInfo{vip})
	// Reserve the only other server for someone else.
	pe.m.reserved[1] = actor.Ref{ID: 9999}
	ri := epl.ReserveIntent{Actor: vip.Ref, Res: epl.CPU}
	act, starved := pe.m.planReserve(ri, snap, map[cluster.MachineID]bool{0: true, 1: true}, map[cluster.MachineID]bool{})
	if act != nil || !starved {
		t.Fatalf("act=%v starved=%v, want nil/true", act, starved)
	}
}

func TestPlanReserveSatisfiedNotStarved(t *testing.T) {
	pe := newPlanEnv(t, 2)
	vip := mkActor(pe, "V", 0, 30)
	snap := buildSnap(pe, []float64{90, 5}, []*epl.ActorInfo{vip})
	ri := epl.ReserveIntent{Actor: vip.Ref, Res: epl.CPU}
	act, starved := pe.m.planReserve(ri, snap, map[cluster.MachineID]bool{0: true, 1: true}, map[cluster.MachineID]bool{})
	if act == nil || starved {
		t.Fatalf("act=%v starved=%v, want action/false", act, starved)
	}
	if act.Trg != 1 || act.Kind != epl.KindReserve {
		t.Fatalf("action %+v", act)
	}
}

func TestGroupAnchorPrefersPlannedAction(t *testing.T) {
	pe := newPlanEnv(t, 3)
	a := mkActor(pe, "A", 0, 10)
	b := mkActor(pe, "B", 1, 10)
	planned := map[actor.Ref]Action{
		a.Ref: {Actor: a.Ref, Src: 0, Trg: 2, Pri: 45, Kind: epl.KindReserve},
	}
	dest, anchor := pe.m.groupAnchor([]*epl.ActorInfo{a, b}, planned)
	if dest != 2 || anchor != a.Ref {
		t.Fatalf("dest=%d anchor=%v, want planned destination 2 anchored at a", dest, anchor)
	}
}

func TestGroupAnchorPrefersPinnedOverMass(t *testing.T) {
	pe := newPlanEnv(t, 2)
	heavy := mkActor(pe, "A", 0, 10)
	heavy.MemBytes = 1 << 30
	pinned := mkActor(pe, "B", 1, 10)
	pinned.Pinned = true
	dest, anchor := pe.m.groupAnchor([]*epl.ActorInfo{heavy, pinned}, map[actor.Ref]Action{})
	if dest != 1 || anchor != pinned.Ref {
		t.Fatalf("dest=%d anchor=%v, want pinned member's server", dest, anchor)
	}
}

func TestGroupAnchorFallsBackToMass(t *testing.T) {
	pe := newPlanEnv(t, 2)
	big := mkActor(pe, "A", 1, 10)
	big.MemBytes = 1 << 20
	small := mkActor(pe, "B", 0, 10)
	dest, _ := pe.m.groupAnchor([]*epl.ActorInfo{big, small}, map[actor.Ref]Action{})
	if dest != 1 {
		t.Fatalf("dest=%d, want the server holding most state", dest)
	}
}

func TestColocateGroupsMergeTransitively(t *testing.T) {
	pe := newPlanEnv(t, 3)
	a := mkActor(pe, "A", 0, 5)
	b := mkActor(pe, "B", 1, 5)
	c := mkActor(pe, "C", 2, 5)
	snap := buildSnap(pe, []float64{10, 10, 10}, []*epl.ActorInfo{a, b, c})
	pairs := []epl.PairIntent{{A: a.Ref, B: b.Ref}, {A: b.Ref, B: c.Ref}}
	acts := pe.m.planColocateGroups(snap, pairs, map[actor.Ref]Action{})
	// a, b, c form one family: two of them must move to the third's server.
	if len(acts) != 2 {
		t.Fatalf("actions = %+v, want 2 moves into one home", acts)
	}
	if acts[0].Trg != acts[1].Trg {
		t.Fatal("family split across destinations")
	}
}

func TestSeparatesSpreadAcrossTargets(t *testing.T) {
	pe := newPlanEnv(t, 4)
	a := mkActor(pe, "L", 0, 5)
	b := mkActor(pe, "L", 0, 5)
	c := mkActor(pe, "L", 0, 5)
	snap := buildSnap(pe, []float64{50, 5, 6, 7}, []*epl.ActorInfo{a, b, c})
	pairs := []epl.PairIntent{
		{A: a.Ref, B: b.Ref}, {A: a.Ref, B: c.Ref}, {A: b.Ref, B: c.Ref},
	}
	acts := pe.m.planSeparates(snap, pairs, map[actor.Ref]Action{})
	if len(acts) < 2 {
		t.Fatalf("actions = %+v, want at least 2 movers", acts)
	}
	seen := map[cluster.MachineID]bool{}
	for _, act := range acts {
		if seen[act.Trg] {
			t.Fatalf("two separate movers sent to the same server: %+v", acts)
		}
		seen[act.Trg] = true
	}
}
