package emr

import (
	"fmt"
	"sort"

	"plasma/internal/chaos"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/trace"
)

// This file is the EMR's control-plane transport: REPORT/RREPLY/QUERY/QREPLY
// travel as real (simulated) messages that a chaos interceptor may drop,
// delay, or duplicate. LEMs retransmit unacknowledged REPORTs with capped
// exponential backoff; GEMs evaluate at a fixed report-window deadline on
// whatever arrived, filling gaps from a bounded-staleness cache; admission
// queries time out into denials. Receivers deduplicate, so duplication is
// harmless. With no interceptor installed every message is delivered after
// exactly GEMLatency and the flow degenerates to the original lossless one.

func lemName(srv cluster.MachineID) string { return fmt.Sprintf("lem%d", srv) }
func gemName(id int) string                { return fmt.Sprintf("gem%d", id) }

// SetChaos installs (or, with nil, removes) the control-plane fault
// interceptor. Install before Start. An already-installed tracer is handed
// to interceptors that accept one, so SetChaos/SetTracer order is free.
func (m *Manager) SetChaos(i chaos.Interceptor) {
	m.chaosI = i
	if s, ok := i.(interface{ SetTracer(*trace.Tracer) }); ok && m.tr != nil {
		s.SetTracer(m.tr)
	}
}

// sendCtl delivers one control-plane message after GEMLatency, subject to
// the chaos interceptor. A duplicated message is delivered a second time one
// extra hop later; receivers are responsible for deduplication.
func (m *Manager) sendCtl(kind chaos.MsgKind, from, to string, deliver func()) {
	lat := m.Cfg.GEMLatency
	if m.chaosI != nil {
		switch d := m.chaosI.Intercept(kind, from, to); d.Verdict {
		case chaos.Drop:
			return
		case chaos.Delay:
			lat += d.Delay
		case chaos.Duplicate:
			m.K.After(lat+m.Cfg.GEMLatency, deliver)
		}
	}
	m.K.After(lat, deliver)
}

// lemReport is Alg. 1 line 11 with a lossy network: the LEM sends its
// REPORT to a randomly chosen live GEM and retransmits with doubled,
// capped backoff until the GEM's ack (an RREPLY) lands or the retry budget
// is spent. Retries re-pick among the GEMs alive at retry time, so a GEM
// crash mid-period only costs one timeout.
func (m *Manager) lemReport(l *lem, snap *epl.Snapshot, tickIdx, attempt int) {
	if l.acked || l.failed || m.Stats.Ticks != tickIdx {
		return
	}
	alive := m.aliveGEMs()
	if len(alive) == 0 {
		return // no GEM: interaction rules still ran locally (§4.3)
	}
	g := alive[m.K.Rand().Intn(len(alive))]
	if attempt > 0 {
		m.Stats.RetriedReports++
	}
	srv := l.srv
	info := snap.Server(srv)
	if m.tr.Enabled() {
		m.tr.Emit(trace.Record{Kind: trace.KindReport, Parent: m.trTick,
			Tick: int32(tickIdx), Server: int32(srv), Target: -1, Rule: -1,
			Value: float64(attempt), Detail: gemName(g.id)})
	}
	m.sendCtl(chaos.Report, lemName(srv), gemName(g.id), func() {
		if g.failed || m.Stats.Ticks != tickIdx {
			return
		}
		if !g.got[srv] { // duplicate/retransmitted REPORTs collapse
			g.got[srv] = true
			g.reports = append(g.reports, report{srv: srv, info: info})
		}
		m.sendCtl(chaos.RReply, gemName(g.id), lemName(srv), func() {
			if m.Stats.Ticks == tickIdx && !l.acked {
				l.acked = true
				if m.tr.Enabled() {
					m.tr.Emit(trace.Record{Kind: trace.KindReportAck, Parent: m.trTick,
						Tick: int32(tickIdx), Server: int32(srv), Target: -1, Rule: -1,
						Detail: gemName(g.id)})
				}
			}
		})
	})
	if attempt < m.Cfg.ReportRetries {
		wait := m.Cfg.ReportTimeout << uint(attempt)
		if max := 4 * m.Cfg.ReportTimeout; wait > max {
			wait = max
		}
		m.K.After(wait, func() { m.lemReport(l, snap, tickIdx, attempt+1) })
	}
}

// rreplyActions distributes a GEM's planned actions to their source LEMs as
// RREPLY messages (deduplicated per destination).
func (m *Manager) rreplyActions(g *gem, tickIdx int, actions []Action) {
	bySrc := map[cluster.MachineID][]Action{}
	for _, a := range actions {
		bySrc[a.Src] = append(bySrc[a.Src], a)
	}
	srcs := make([]cluster.MachineID, 0, len(bySrc))
	for srv := range bySrc {
		srcs = append(srcs, srv)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, srv := range srcs {
		srv, acts := srv, bySrc[srv]
		delivered := false
		m.sendCtl(chaos.RReply, gemName(g.id), lemName(srv), func() {
			if delivered || m.Stats.Ticks != tickIdx {
				return
			}
			delivered = true
			l := m.lemFor(srv)
			if l.failed {
				return
			}
			l.gemActions = append(l.gemActions, acts...)
		})
	}
}

// queryAdmission runs one action's QUERY/QREPLY round trip: the target's
// LEM answers the admission check (Table 2a) where the promised-resource
// ledger lives; the source LEM migrates on a positive QREPLY and treats a
// timed-out query — lost message, lost reply, or dead target LEM — as a
// denial, leaving the planner to retry or replan next period.
func (m *Manager) queryAdmission(a Action, snap *epl.Snapshot, repin bool) {
	tickIdx := m.Stats.Ticks
	processed := false // dedups duplicate QUERY deliveries at the target
	answered := false  // dedups duplicate QREPLYs and the timeout at the source
	queryID := m.tr.Emit(trace.Record{Kind: trace.KindQuery, Parent: a.traceID,
		Tick: int32(tickIdx), Server: int32(a.Src), Target: int32(a.Trg),
		Actor: uint64(a.Actor.ID), Rule: -1, Value: float64(a.Pri)})
	m.sendCtl(chaos.Query, lemName(a.Src), lemName(a.Trg), func() {
		if processed || m.Stats.Ticks != tickIdx {
			return
		}
		processed = true
		if tl := m.lemFor(a.Trg); tl.failed {
			return // dead target LEM: silence; the source times out
		}
		ok, denyReason := m.checkIdleRes(a, snap)
		if ok && a.Kind == epl.KindReserve {
			m.reserved[a.Trg] = a.Actor
			m.resLease[a.Trg] = m.Stats.Ticks
			m.resEpoch[a.Trg]++
			m.evacuateReserved(a, snap, queryID)
			epoch := m.resEpoch[a.Trg]
			// The QREPLY may be lost (chaos) or the period may roll over
			// before the source acts — then no transfer toward Trg ever
			// starts and the hold would block the target for every other
			// actor. The target releases its own grant after the query
			// timeout unless the owner's transfer is underway (or done).
			m.K.After(m.Cfg.QueryTimeout, func() {
				if cur, held := m.reserved[a.Trg]; !held || cur != a.Actor || m.resEpoch[a.Trg] != epoch {
					return
				}
				if m.RT.ServerOf(a.Actor) == a.Trg || m.RT.MigratingTo(a.Actor) == a.Trg {
					return // the admitted transfer went ahead
				}
				m.dropReservation(a.Trg)
				m.Stats.ReleasedReservations++
				m.tr.Emit(trace.Record{Kind: trace.KindDeny, Parent: queryID,
					Tick: int32(m.Stats.Ticks), Server: int32(a.Trg), Target: -1,
					Actor: uint64(a.Actor.ID), Rule: -1, Detail: "reserve-released"})
			})
		}
		m.sendCtl(chaos.QReply, lemName(a.Trg), lemName(a.Src), func() {
			if answered || m.Stats.Ticks != tickIdx {
				return
			}
			answered = true
			if !ok {
				m.Stats.DeniedAdmissions++
				m.tr.Emit(trace.Record{Kind: trace.KindDeny, Parent: queryID,
					Tick: int32(tickIdx), Server: int32(a.Trg), Target: -1,
					Actor: uint64(a.Actor.ID), Rule: -1, Detail: denyReason})
				return
			}
			admitID := m.tr.Emit(trace.Record{Kind: trace.KindAdmit, Parent: queryID,
				Tick: int32(tickIdx), Server: int32(a.Trg), Target: -1,
				Actor: uint64(a.Actor.ID), Rule: -1})
			m.execMigration(a, repin, admitID)
		})
	})
	m.K.After(m.Cfg.QueryTimeout, func() {
		if answered || m.Stats.Ticks != tickIdx {
			return
		}
		answered = true
		m.Stats.QueryTimeouts++
		m.Stats.DeniedAdmissions++
		m.tr.Emit(trace.Record{Kind: trace.KindDeny, Parent: queryID,
			Tick: int32(tickIdx), Server: int32(a.Trg), Target: -1,
			Actor: uint64(a.Actor.ID), Rule: -1, Detail: "timeout"})
	})
}

// evacuateReserved clears a freshly dedicated server for its owner: the
// resident actors (save the owner and pinned ones) drain to the least
// loaded unreserved servers, like a scale-in drain (see
// Config.ReserveEvacuate).
func (m *Manager) evacuateReserved(a Action, snap *epl.Snapshot, parent uint64) {
	if !m.Cfg.ReserveEvacuate {
		return
	}
	targets := m.evacTargets(a.Trg, snap)
	if len(targets) == 0 {
		return
	}
	for i, ref := range m.RT.ActorsOn(a.Trg) {
		if ref == a.Actor || m.RT.Pinned(ref) {
			continue
		}
		m.RT.MigrateTraced(ref, targets[i%len(targets)], parent, func(ok bool) {
			if ok {
				m.Stats.ExecutedMigrations++
			}
		})
	}
}

// execMigration carries out an admitted action via live migration; parent
// is the admission record's trace id (0 untraced), inherited by the
// migration's transfer record.
func (m *Manager) execMigration(a Action, repin bool, parent uint64) {
	if m.RT.ServerOf(a.Actor) != a.Src {
		return // the actor moved during the admission round trip
	}
	if repin {
		m.RT.Unpin(a.Actor)
	}
	m.RT.MigrateTraced(a.Actor, a.Trg, parent, func(ok bool) {
		if repin {
			m.RT.Pin(a.Actor)
		}
		if ok {
			m.Stats.ExecutedMigrations++
		} else if a.Kind == epl.KindReserve && m.reserved[a.Trg] == a.Actor {
			m.dropReservation(a.Trg)
		}
	})
}
