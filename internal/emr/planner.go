package emr

import (
	"math"
	"sort"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
)

// srvLoad pairs a server with its utilization on the resource being planned.
type srvLoad struct {
	id   cluster.MachineID
	load float64
}

// planInteraction turns interaction intents into migration actions
// (applyActRules), aware of the destinations GEM actions will move actors
// to this period, so colocation partners follow in the same period.
//
// Colocate pairs are first merged into groups (a folder with eight files,
// a root partition with its children): the whole group follows one anchor
// destination, so a higher-priority balance or reserve action on any member
// drags the rest of the family along instead of splitting it.
func (m *Manager) planInteraction(snap *epl.Snapshot, in *epl.Intents, gemActions []Action) []Action {
	planned := map[actor.Ref]Action{}
	for _, a := range gemActions {
		if cur, ok := planned[a.Actor]; !ok || a.Pri > cur.Pri {
			planned[a.Actor] = a
		}
	}
	var out []Action
	out = append(out, m.planColocateGroups(snap, in.Colocate, planned)...)
	out = append(out, m.planSeparates(snap, in.Separate, planned)...)
	return out
}

// planColocateGroups unions colocate pairs into groups and emits one
// follow-the-anchor action per displaced member.
func (m *Manager) planColocateGroups(snap *epl.Snapshot, pairs []epl.PairIntent, planned map[actor.Ref]Action) []Action {
	parent := map[actor.Ref]actor.Ref{}
	var find func(x actor.Ref) actor.Ref
	find = func(x actor.Ref) actor.Ref {
		if parent[x] == x {
			return x
		}
		r := find(parent[x])
		parent[x] = r
		return r
	}
	add := func(x actor.Ref) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	for _, pi := range pairs {
		if snap.Actor(pi.A) == nil || snap.Actor(pi.B) == nil {
			continue
		}
		add(pi.A)
		add(pi.B)
		ra, rb := find(pi.A), find(pi.B)
		if ra != rb {
			// Deterministic union: smaller id becomes root.
			if rb.ID < ra.ID {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	groups := map[actor.Ref][]*epl.ActorInfo{}
	for x := range parent {
		groups[find(x)] = append(groups[find(x)], snap.Actor(x))
	}
	roots := make([]actor.Ref, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })

	var out []Action
	for _, r := range roots {
		members := groups[r]
		sort.Slice(members, func(i, j int) bool { return members[i].Ref.ID < members[j].Ref.ID })
		dest, anchor := m.groupAnchor(members, planned)
		if dest < 0 {
			continue
		}
		for _, mem := range members {
			if mem.Server == dest {
				continue
			}
			if _, committed := planned[mem.Ref]; committed {
				continue // its own higher-priority action wins this period
			}
			if mem.Pinned || !m.movable(mem) {
				continue
			}
			out = append(out, Action{
				Actor: mem.Ref, Src: mem.Server, Trg: dest,
				Kind: epl.KindColocate, Res: epl.CPU,
				Pri: m.Cfg.priority(epl.KindColocate), Partner: anchor,
			})
		}
	}
	return out
}

// groupAnchor picks where a colocation group should live: the destination
// of the member with the highest-priority planned action, else the server
// of a pinned member, else the server already holding the most group state.
func (m *Manager) groupAnchor(members []*epl.ActorInfo, planned map[actor.Ref]Action) (cluster.MachineID, actor.Ref) {
	bestPri := -1
	var dest cluster.MachineID = -1
	var anchor actor.Ref
	for _, mem := range members {
		if a, ok := planned[mem.Ref]; ok && a.Pri > bestPri {
			bestPri = a.Pri
			dest = a.Trg
			anchor = mem.Ref
		}
	}
	if dest >= 0 {
		return dest, anchor
	}
	for _, mem := range members {
		if mem.Pinned {
			return mem.Server, mem.Ref
		}
	}
	if m.batchPlanner() {
		// Anchor on the group's internal traffic when it has any: the whole
		// family converges where its messages already land, so the colocate
		// migration batch moves the least chatty state.
		if dest, anchor, ok := m.groupAnchorAffinity(members); ok {
			return dest, anchor
		}
	}
	// Most resident state wins; ties go to the lowest server id.
	mass := map[cluster.MachineID]int64{}
	for _, mem := range members {
		mass[mem.Server] += mem.MemBytes + 1
	}
	ids := make([]cluster.MachineID, 0, len(mass))
	for id := range mass {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var best cluster.MachineID = -1
	var bestMass int64 = -1
	for _, id := range ids {
		if mass[id] > bestMass {
			best, bestMass = id, mass[id]
		}
	}
	for _, mem := range members {
		if mem.Server == best {
			anchor = mem.Ref
			break
		}
	}
	return best, anchor
}

// destOf is an actor's server after this period's already-planned actions.
func destOf(ai *epl.ActorInfo, planned map[actor.Ref]Action) cluster.MachineID {
	if a, ok := planned[ai.Ref]; ok {
		return a.Trg
	}
	return ai.Server
}

// planSeparates spreads co-resident actors of violated separate intents:
// each mover goes to a distinct least-loaded server, with a shared
// projection so one idle server does not absorb every mover (§3.2: keep
// separated "whenever resources are available").
func (m *Manager) planSeparates(snap *epl.Snapshot, pairs []epl.PairIntent, planned map[actor.Ref]Action) []Action {
	if len(pairs) == 0 {
		return nil
	}
	score := map[cluster.MachineID]float64{}
	var targets []cluster.MachineID
	for _, srv := range snap.Servers {
		if !srv.Up || m.draining[srv.ID] {
			continue
		}
		if _, taken := m.reserved[srv.ID]; taken {
			continue
		}
		score[srv.ID] = srv.CPUPerc
		targets = append(targets, srv.ID)
	}
	if len(targets) < 2 {
		return nil
	}
	// spreadPenalty makes each assignment push later movers elsewhere.
	const spreadPenalty = 25

	moved := map[actor.Ref]bool{}
	var out []Action
	for _, pi := range pairs {
		a, b := snap.Actor(pi.A), snap.Actor(pi.B)
		if a == nil || b == nil {
			continue
		}
		if destOf(a, planned) != destOf(b, planned) {
			continue
		}
		mover := b
		if _, committed := planned[mover.Ref]; committed || mover.Pinned || !m.movable(mover) || moved[mover.Ref] {
			mover = a
		}
		if _, committed := planned[mover.Ref]; committed || mover.Pinned || !m.movable(mover) || moved[mover.Ref] {
			continue
		}
		src := destOf(a, planned)
		best := cluster.MachineID(-1)
		bestScore := math.Inf(1)
		for _, id := range targets {
			if id == src {
				continue
			}
			if sc := score[id]; sc < bestScore {
				best, bestScore = id, sc
			}
		}
		if best < 0 || bestScore >= score[src] {
			continue // no quieter server available
		}
		moved[mover.Ref] = true
		score[best] += spreadPenalty
		out = append(out, Action{
			Actor: mover.Ref, Src: mover.Server, Trg: best,
			Kind: epl.KindSeparate, Res: epl.CPU,
			Pri: m.Cfg.priority(epl.KindSeparate),
		})
	}
	return out
}

// planResource is Alg. 2's applyResRules over a GEM's scope: balance and
// reserve intents become actions. It also reports whether every scoped
// server is overloaded (scale-out signal) or under-utilized (scale-in
// signal) per the triggering rules.
func (m *Manager) planResource(scope []cluster.MachineID, snap *epl.Snapshot, in *epl.Intents) (actions []Action, allOver, allUnder bool, outNeed int, wantIn bool) {
	inScope := map[cluster.MachineID]bool{}
	for _, id := range scope {
		inScope[id] = true
	}
	takenThisTick := map[cluster.MachineID]bool{}
	for _, ri := range in.Reserve {
		// A reserve intent naming a reservation's owner refreshes its lease:
		// the rule still wants the dedication (see Config.ReserveTTL).
		for srv, owner := range m.reserved {
			if owner == ri.Actor {
				m.resLease[srv] = m.Stats.Ticks
			}
		}
		a, starved := m.planReserve(ri, snap, inScope, takenThisTick)
		if a != nil {
			takenThisTick[a.Trg] = true
			actions = append(actions, *a)
		}
		if starved {
			// A reservation demand with no idle server to satisfy it is
			// scale-out pressure, one server's worth per starved intent.
			outNeed++
		}
	}
	for _, bi := range in.Balance {
		acts, over, under, out, in2 := m.planBalance(bi, snap, inScope)
		actions = append(actions, acts...)
		allOver = allOver || over
		allUnder = allUnder || under
		if out {
			outNeed++
		}
		wantIn = wantIn || in2
	}
	return actions, allOver, allUnder, outNeed, wantIn
}

// planReserve migrates the actor to an idle server which then becomes
// dedicated to it (admission enforces exclusivity).
func (m *Manager) planReserve(ri epl.ReserveIntent, snap *epl.Snapshot, inScope, takenThisTick map[cluster.MachineID]bool) (act *Action, starved bool) {
	ai := snap.Actor(ri.Actor)
	if ai == nil || !m.movableAt(ai, m.Cfg.priority(epl.KindReserve)) {
		return nil, false
	}
	// Already reserved somewhere and sitting there: nothing to do.
	if owner, ok := m.reserved[ai.Server]; ok && owner == ri.Actor {
		return nil, false
	}
	exclude := map[cluster.MachineID]bool{ai.Server: true}
	best := cluster.MachineID(-1)
	bestLoad := math.Inf(1)
	bestCnt := 0
	for _, srv := range snap.Servers {
		if !srv.Up || exclude[srv.ID] || m.draining[srv.ID] {
			continue
		}
		if !inScope[srv.ID] {
			continue
		}
		if _, taken := m.reserved[srv.ID]; taken {
			continue
		}
		if takenThisTick[srv.ID] {
			continue
		}
		load := srv.Res(ri.Res)
		cnt := len(m.RT.ActorsOn(srv.ID))
		if m.batchPlanner() {
			// Lexicographic (load, resident count): the quietest server
			// wins, an emptier one breaks ties, and the id-ordered
			// iteration breaks full ties to the lowest server id.
			if load < bestLoad || (load == bestLoad && cnt < bestCnt) {
				bestLoad, bestCnt = load, cnt
				best = srv.ID
			}
			continue
		}
		// Legacy score: utilization percentage plus raw resident count, so
		// an empty server wins ties. The unit mixing is a known wart — 3
		// idle residents outweigh 2.9 points of load — but the scoring is
		// frozen under the byte-identity contract for pinned experiment
		// ids; the batch planner branch above carries the fix.
		load += float64(cnt)
		if load < bestLoad {
			bestLoad = load
			best = srv.ID
		}
	}
	if best < 0 {
		return nil, true
	}
	// Only worth reserving if the target is meaningfully quieter.
	src := snap.Server(ai.Server)
	trg := snap.Server(best)
	if src != nil && trg != nil && trg.Res(ri.Res) >= src.Res(ri.Res) {
		return nil, true
	}
	return &Action{
		Actor: ri.Actor, Src: ai.Server, Trg: best,
		Kind: epl.KindReserve, Res: ri.Res,
		Pri: m.Cfg.priority(epl.KindReserve), Partner: ri.Actor,
	}, false
}

// planBalance moves actors of the covered types from servers above the
// rule's upper bound to servers below its lower bound (PLASMA's heuristic,
// §4.2), greedily by per-actor usage, until the source's projected load
// falls inside the band.
func (m *Manager) planBalance(bi epl.BalanceIntent, snap *epl.Snapshot, inScope map[cluster.MachineID]bool) (actions []Action, allOver, allUnder, wantOut, wantIn bool) {
	upper := bi.Upper
	lower := bi.Lower
	if !bi.HasUpper() {
		upper = m.Cfg.DefaultUpper
	}
	if !bi.HasLower() {
		lower = upper
	}

	var over, underOrMid []srvLoad
	nOver, nUnder, total := 0, 0, 0
	for _, srv := range snap.Servers {
		if !srv.Up || !inScope[srv.ID] || m.draining[srv.ID] {
			continue
		}
		if _, taken := m.reserved[srv.ID]; taken {
			// Dedicated servers are outside balance's purview: their load
			// is the reservation owner's entitlement.
			continue
		}
		total++
		load := srv.Res(bi.Res)
		if load > upper {
			nOver++
			over = append(over, srvLoad{srv.ID, load})
		} else {
			if load < lower {
				nUnder++
			}
			underOrMid = append(underOrMid, srvLoad{srv.ID, load})
		}
	}
	if total == 0 {
		return nil, false, false, false, false
	}
	allOver = nOver == total
	allUnder = nUnder == total
	wantIn = allUnder && total > m.Cfg.MinServers

	// No overloaded server: the low-water side of the rule redistributes
	// by pulling actors onto under-utilized servers. For a lower-only rule
	// (E-Store's "server.cpu.perc < 50 => balance") any spread qualifies;
	// for a dual-bound rule the source must itself sit above the low-water
	// mark — a fleet that is uniformly light is a scale-in signal, not a
	// balancing problem.
	if len(over) == 0 {
		if nUnder > 0 && bi.HasLower() {
			minSource := 0.0
			if bi.HasUpper() {
				// Sources must be at least midway into the band: §4.2 moves
				// work off *loaded* servers, and a uniformly light fleet is
				// a scale-in signal rather than a balancing problem.
				minSource = (upper + lower) / 2
			}
			actions = m.planDeficitFill(bi, snap, underOrMid, lower, upper-lower, minSource)
		}
		return actions, allOver, allUnder, false, wantIn
	}

	sort.Slice(over, func(i, j int) bool { return over[i].load > over[j].load })
	sort.Slice(underOrMid, func(i, j int) bool { return underOrMid[i].load < underOrMid[j].load })
	projected := map[cluster.MachineID]float64{}
	for _, t := range underOrMid {
		projected[t.id] = t.load
	}

	for _, src := range over {
		cands := m.balanceCandidates(src.id, bi, snap)
		load := src.load
		// A source above the upper bound sheds load until it re-enters the
		// band; a source picked by the low-water redistribution path (its
		// load is already below upper) sheds toward the middle of the band.
		bar := upper
		if load <= upper {
			bar = (upper + lower) / 2
		}
		for _, ai := range cands {
			if load <= bar {
				break
			}
			use := ai.ResOf(bi.Res)
			if use <= 0 {
				break
			}
			trg := m.pickBalanceTarget(ai, bi, upper, projected, underOrMid, snap)
			if trg < 0 {
				// This actor fits nowhere; a lighter one may still fit.
				wantOut = true
				continue
			}
			actions = append(actions, Action{
				Actor: ai.Ref, Src: src.id, Trg: trg,
				Kind: epl.KindBalance, Res: bi.Res,
				Pri: m.Cfg.priority(epl.KindBalance),
			})
			load -= use
			projected[trg] += m.loadOn(ai, bi.Res, trg, snap)
		}
		if load > upper {
			// Still over the bound after shedding everything movable (or
			// having nothing to shed): unresolved overload is scale-out
			// pressure even when every candidate found a home.
			wantOut = true
		}
	}
	if allOver {
		wantOut = true
	}
	return actions, allOver, allUnder, wantOut, wantIn
}

// planDeficitFill raises servers below the rule's lower bound by moving
// actors from the most loaded servers, while never dragging a source below
// the destination's projected load (which would just invert the imbalance).
//
// The starvation probe (how far below lower a target must sit) and the
// minimum actionable spread are band-relative, capped at the historical
// constants 5 and 15: a rule with the standard 20-point band (or wider)
// plans exactly as before, while a tighter band scales both down so its
// low-water side can still act at all. band is upper-lower with the rule's
// bounds already defaulted; a degenerate band keeps the legacy constants.
func (m *Manager) planDeficitFill(bi epl.BalanceIntent, snap *epl.Snapshot, servers []srvLoad, lower, band, minSource float64) []Action {
	probe, minSpread := 5.0, 15.0
	if band > 0 && band/4 < probe {
		probe = band / 4
	}
	if band > 0 && 0.75*band < minSpread {
		minSpread = 0.75 * band
	}
	proj := map[cluster.MachineID]float64{}
	for _, s := range servers {
		proj[s.id] = s.load
	}
	moved := map[actor.Ref]bool{}
	var out []Action
	for guard := 0; guard < 64; guard++ {
		// Most deficient target and most loaded source.
		var trg, src cluster.MachineID = -1, -1
		minL, maxL := lower-probe, -1.0
		for _, s := range servers {
			l := proj[s.id]
			if l < minL {
				minL, trg = l, s.id
			}
			if l > maxL {
				maxL, src = l, s.id
			}
		}
		// Act only on meaningfully starved targets and material spreads;
		// a tighter trigger here would thrash actors around the band edge.
		if trg < 0 || src < 0 || src == trg || maxL-minL <= minSpread || maxL < minSource {
			break
		}
		cands := m.balanceCandidates(src, bi, snap)
		var pick *epl.ActorInfo
		spread := maxL - minL
		for _, ai := range cands {
			if moved[ai.Ref] {
				continue
			}
			use := ai.ResOf(bi.Res)
			add := m.loadOn(ai, bi.Res, trg, snap)
			if use <= 0 {
				break
			}
			// The move must shrink the pair's spread, not just invert it.
			after := (maxL - use) - (minL + add)
			if after < 0 {
				after = -after
			}
			if after < spread {
				pick = ai
				break
			}
		}
		if pick == nil {
			break
		}
		moved[pick.Ref] = true
		out = append(out, Action{
			Actor: pick.Ref, Src: src, Trg: trg,
			Kind: epl.KindBalance, Res: bi.Res,
			Pri: m.Cfg.priority(epl.KindBalance),
		})
		proj[src] -= pick.ResOf(bi.Res)
		proj[trg] += m.loadOn(pick, bi.Res, trg, snap)
	}
	return out
}

// balanceCandidates lists movable actors of the covered types on src,
// heaviest first.
func (m *Manager) balanceCandidates(src cluster.MachineID, bi epl.BalanceIntent, snap *epl.Snapshot) []*epl.ActorInfo {
	var cands []*epl.ActorInfo
	for _, ai := range snap.Actors {
		if ai.Server != src || !bi.Covers(ai.Type) || !m.movable(ai) {
			continue
		}
		cands = append(cands, ai)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].ResOf(bi.Res) > cands[j].ResOf(bi.Res)
	})
	return cands
}

// pickBalanceTarget chooses the least-projected-loaded target that stays
// under the upper bound after receiving the actor. Targets below the lower
// bound are preferred (the paper's "especially below specified lower
// bounds").
func (m *Manager) pickBalanceTarget(ai *epl.ActorInfo, bi epl.BalanceIntent, upper float64, projected map[cluster.MachineID]float64, targets []srvLoad, snap *epl.Snapshot) cluster.MachineID {
	best := cluster.MachineID(-1)
	bestLoad := math.Inf(1)
	for _, t := range targets {
		p := projected[t.id]
		add := m.loadOn(ai, bi.Res, t.id, snap)
		if p+add > upper {
			continue
		}
		if p < bestLoad {
			bestLoad = p
			best = t.id
		}
	}
	return best
}

// leastLoaded returns the up, non-reserved, non-draining server with the
// lowest utilization on res, excluding the given set.
func (m *Manager) leastLoaded(res epl.Resource, snap *epl.Snapshot, exclude map[cluster.MachineID]bool) (cluster.MachineID, bool) {
	best := cluster.MachineID(-1)
	bestLoad := math.Inf(1)
	for _, srv := range snap.Servers {
		if !srv.Up || exclude[srv.ID] || m.draining[srv.ID] {
			continue
		}
		if _, taken := m.reserved[srv.ID]; taken {
			continue
		}
		if srv.Res(res) < bestLoad {
			bestLoad = srv.Res(res)
			best = srv.ID
		}
	}
	return best, best >= 0
}
