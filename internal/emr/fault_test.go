package emr

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/epl"
	"plasma/internal/sim"
)

// §4.3 fault tolerance: no state synchronization exists between LEMs and
// GEMs, so a GEM crash must not stop elasticity management — LEMs shuffle
// onto the surviving GEMs.

func TestBalanceSurvivesGEMFailure(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	var refs []actor.Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(45), 0))
	}
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond, NumGEMs: 4})
	m.Start()
	// Kill three of the four GEMs before any period elapses.
	for id := 0; id < 3; id++ {
		if !m.FailGEM(id) {
			t.Fatalf("FailGEM(%d) rejected", id)
		}
	}
	startWork(e, refs...)
	e.k.Run(sim.Time(10 * sim.Second))
	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("no migrations with one surviving GEM")
	}
	if len(e.rt.ActorsOn(1)) == 0 {
		t.Fatal("load never balanced after GEM failures")
	}
}

func TestAllGEMsFailedStopsResourceRulesOnly(t *testing.T) {
	e := newEnv(1, 2, 2)
	// One interaction rule and one resource rule.
	pol := epl.MustParse(`
VideoStream(v).call(UserInfo(u).track).count > 0 => colocate(v, u);
server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);
`)
	user := e.rt.SpawnOn("UserInfo", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {}), 1)
	video := e.rt.SpawnOn("VideoStream", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(sim.Millisecond)
		ctx.Send(user, "track", nil, 32)
		ctx.SendAfter(20*sim.Millisecond, ctx.Self(), "go", nil, 8)
	}), 0)
	var refs []actor.Ref
	for i := 0; i < 4; i++ {
		// Light background load so the colocate admission has headroom.
		refs = append(refs, e.rt.SpawnOn("Worker", worker(15), 0))
	}
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond, NumGEMs: 2})
	m.Start()
	m.FailGEM(0)
	m.FailGEM(1)
	startWork(e, refs...)
	actor.NewClient(e.rt, 0).Send(video, "go", nil, 8)
	e.k.Run(sim.Time(8 * sim.Second))
	// Interaction rules are evaluated by LEMs and keep working...
	if e.rt.ServerOf(user) != e.rt.ServerOf(video) {
		t.Fatal("interaction rule stopped working without GEMs")
	}
	// ...while resource rules (GEM-owned) cannot run: workers stay put.
	for _, r := range refs {
		if e.rt.ServerOf(r) != 0 {
			t.Fatal("balance ran without any GEM")
		}
	}
}

func TestRecoverGEMRestoresResourceRules(t *testing.T) {
	e := newEnv(1, 2, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	var refs []actor.Ref
	for i := 0; i < 4; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(45), 0))
	}
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	m.Start()
	m.FailGEM(0)
	startWork(e, refs...)
	e.k.Run(sim.Time(5 * sim.Second))
	if m.Stats.ExecutedMigrations != 0 {
		t.Fatal("migrations while the only GEM was down")
	}
	m.RecoverGEM(0)
	e.k.Run(sim.Time(10 * sim.Second))
	if m.Stats.ExecutedMigrations == 0 {
		t.Fatal("no migrations after GEM recovery")
	}
}

func TestFailGEMBounds(t *testing.T) {
	e := newEnv(1, 1, 1)
	m := New(e.k, e.c, e.rt, e.prof, epl.MustParse(`true => pin(A(a));`), Config{Period: sim.Second})
	if m.FailGEM(-1) || m.FailGEM(5) {
		t.Fatal("out-of-range GEM id accepted")
	}
	if m.RecoverGEM(99) {
		t.Fatal("out-of-range recover accepted")
	}
}

func TestElasticityContinuesAfterMachineFailure(t *testing.T) {
	e := newEnv(1, 3, 1)
	pol := epl.MustParse(`server.cpu.perc > 80 or server.cpu.perc < 60 => balance({Worker}, cpu);`)
	var refs []actor.Ref
	for i := 0; i < 6; i++ {
		refs = append(refs, e.rt.SpawnOn("Worker", worker(30), cluster.MachineID(i%3)))
	}
	m := New(e.k, e.c, e.rt, e.prof, pol, Config{Period: sim.Second, MinResidence: sim.Millisecond})
	m.Start()
	startWork(e, refs...)
	e.k.Run(sim.Time(3 * sim.Second))

	// Crash machine 2 and let the underlying runtime recover its actors.
	if !e.c.Fail(2) {
		t.Fatal("Fail rejected")
	}
	e.rt.RecoverMachine(2)
	e.k.Run(sim.Time(15 * sim.Second))

	// All six workers live on the two survivors and keep their load split.
	total := 0
	for _, id := range []cluster.MachineID{0, 1} {
		total += len(e.rt.ActorsOn(id))
	}
	if total != 6 {
		t.Fatalf("workers on survivors = %d, want 6", total)
	}
	if len(e.rt.ActorsOn(2)) != 0 {
		t.Fatal("actors left on the crashed machine")
	}
	// The EMR should have spread them roughly evenly (3 workers each at
	// 30% duty = 90% per 1-core machine; the balance band keeps migrating
	// until the split is 3/3).
	n0, n1 := len(e.rt.ActorsOn(0)), len(e.rt.ActorsOn(1))
	if n0 < 2 || n1 < 2 {
		t.Fatalf("post-failure balance skewed: %d vs %d", n0, n1)
	}
}
