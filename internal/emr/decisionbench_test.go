package emr

import "testing"

// The decision bench is itself under the determinism gate (plasma-bench
// -compare diffs its action counts at fixed sizes), so pin the properties
// that gate relies on: repeated runs are identical, and both planners
// produce work on the synthetic fleet.
func TestDecisionBenchDeterministic(t *testing.T) {
	db := NewDecisionBench(2048, 32)
	batch := db.Run("batch")
	legacy := db.Run("")
	if batch == 0 || legacy == 0 {
		t.Fatalf("degenerate synthetic fleet: batch=%d legacy=%d actions", batch, legacy)
	}
	for i := 0; i < 3; i++ {
		if n := db.Run("batch"); n != batch {
			t.Fatalf("batch run %d planned %d actions, first run planned %d", i, n, batch)
		}
		if n := db.Run(""); n != legacy {
			t.Fatalf("legacy run %d planned %d actions, first run planned %d", i, n, legacy)
		}
	}
}

// BenchmarkPlannerDecision times one GEM decision round per planner. The
// 1M_1k case is the tentpole scale: a million actors on a thousand servers,
// snapshot construction excluded (it happens once, outside b.N).
//
//	go test ./internal/emr -bench PlannerDecision -benchtime 3x -run ^$
func BenchmarkPlannerDecision(b *testing.B) {
	cases := []struct {
		name            string
		actors, servers int
	}{
		{"64k_256", 65536, 256},
		{"1M_1k", 1_000_000, 1000},
	}
	for _, tc := range cases {
		db := NewDecisionBench(tc.actors, tc.servers)
		for _, planner := range []string{"legacy", "batch"} {
			arg := planner
			if arg == "legacy" {
				arg = ""
			}
			b.Run(tc.name+"/"+planner, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					db.Run(arg)
				}
			})
		}
	}
}
