package cluster

import (
	"testing"

	"plasma/internal/sim"
	"plasma/internal/trace"
)

// These tests audit the capped-backoff retry path against teardown (the
// same family as the mid-boot fixes of the boot timer itself): a retry
// timer armed before Decommission or Fail must go stale rather than
// provisioning into a dead pool. The guards in startBoot's boot and retry
// closures already close this hole — these tests pin it shut.

// retrySpec always fails its boot attempts, so the first attempt arms a
// backoff retry timer deterministically (boot done at 100ms, retry at
// 100ms + 1s).
func retrySpec() *ProvSpec {
	return &ProvSpec{
		Class:       Container,
		BootMin:     100 * sim.Millisecond,
		BootMax:     100 * sim.Millisecond, // deterministic: no boot-time draw
		FailProb:    1,
		MaxRetries:  3,
		BaseBackoff: sim.Second,
		Capacity:    -1,
	}
}

// provisionIntoBackoff provisions through retrySpec and advances the clock
// into the middle of the first backoff window, returning the machine, a
// pointer to the recorded outcome (nil until the callback fires), a call
// counter, and a ring capturing the provisioning trace.
func provisionIntoBackoff(t *testing.T, k *sim.Kernel, c *Cluster) (*Machine, *[]bool, *trace.Ring) {
	t.Helper()
	ring := trace.NewRing(64)
	c.SetTracer(trace.New(ring))
	outcomes := &[]bool{}
	m := c.ProvisionClass(M1Small, retrySpec(), func(_ *Machine, ok bool) { *outcomes = append(*outcomes, ok) })
	if m == nil {
		t.Fatal("ProvisionClass returned nil")
	}
	// Past the failed first attempt (100ms), into the backoff (until 1.1s).
	k.Run(600 * sim.Time(sim.Millisecond))
	if len(*outcomes) != 0 {
		t.Fatalf("outcome fired during backoff: %v", *outcomes)
	}
	if !m.Booting() {
		t.Fatal("machine should still be boot-pending while awaiting retry")
	}
	if got := countKind(ring, trace.KindProvFail); got != 1 {
		t.Fatalf("ProvFail records before teardown = %d, want 1", got)
	}
	if got := countKind(ring, trace.KindProvRetry); got != 1 {
		t.Fatalf("ProvRetry records before teardown = %d, want 1", got)
	}
	return m, outcomes, ring
}

func countKind(r *trace.Ring, k trace.Kind) int {
	n := 0
	for _, rec := range r.Records() {
		if rec.Kind == k {
			n++
		}
	}
	return n
}

// Decommission during the backoff window: the armed retry timer must go
// stale — no further boot attempts, no resurrection, exactly one
// ok=false outcome (at decommission time, not at retry exhaustion).
func TestDecommissionDuringBackoffStalesRetry(t *testing.T) {
	k := sim.New(1)
	c := New(k, 1, M1Small)
	m, outcomes, ring := provisionIntoBackoff(t, k, c)

	if err := c.Decommission(m.ID); err != nil {
		t.Fatalf("Decommission during backoff: %v", err)
	}
	if len(*outcomes) != 1 || (*outcomes)[0] {
		t.Fatalf("outcomes after Decommission = %v, want exactly one false", *outcomes)
	}

	k.RunUntilIdle() // the retry timer fires at 1.1s and must be a no-op
	if m.Up() {
		t.Error("stale retry timer brought a decommissioned machine up")
	}
	if m.Booting() {
		t.Error("decommissioned machine still reports Booting")
	}
	if len(*outcomes) != 1 {
		t.Errorf("outcome fired again after teardown: %v", *outcomes)
	}
	if c.UpCount() != 1 {
		t.Errorf("UpCount = %d, want 1 (only the seed machine)", c.UpCount())
	}
	// The stale retry must not have re-attempted: no new failure/retry
	// records beyond the single pre-teardown attempt.
	if got := countKind(ring, trace.KindProvFail); got != 1 {
		t.Errorf("ProvFail records after teardown = %d, want 1 (retry ran despite teardown)", got)
	}
	if got := countKind(ring, trace.KindProvRetry); got != 1 {
		t.Errorf("ProvRetry records after teardown = %d, want 1 (retry re-armed despite teardown)", got)
	}
}

// Fail (crash) during the backoff window: same staleness contract as
// Decommission, plus no repair path back into service for a machine that
// never finished booting.
func TestFailDuringBackoffStalesRetry(t *testing.T) {
	k := sim.New(1)
	c := New(k, 1, M1Small)
	m, outcomes, ring := provisionIntoBackoff(t, k, c)

	if !c.Fail(m.ID) {
		t.Fatal("Fail refused a machine awaiting its boot retry")
	}
	if len(*outcomes) != 1 || (*outcomes)[0] {
		t.Fatalf("outcomes after Fail = %v, want exactly one false", *outcomes)
	}

	k.RunUntilIdle()
	if m.Up() {
		t.Error("stale retry timer brought a crashed machine up")
	}
	if len(*outcomes) != 1 {
		t.Errorf("outcome fired again after crash: %v", *outcomes)
	}
	if got := countKind(ring, trace.KindProvFail); got != 1 {
		t.Errorf("ProvFail records after crash = %d, want 1 (retry ran despite crash)", got)
	}
	if c.Repair(m.ID) {
		t.Error("Repair resurrected a machine that never finished booting")
	}
	if c.UpCount() != 1 {
		t.Errorf("UpCount = %d, want 1 (only the seed machine)", c.UpCount())
	}
}

// Control: with no teardown, the armed retry keeps trying and exhausts
// MaxRetries — proving the staleness above comes from the teardown guards,
// not from the retry path being inert.
func TestBackoffRetriesExhaustWithoutTeardown(t *testing.T) {
	k := sim.New(1)
	c := New(k, 1, M1Small)
	m, outcomes, ring := provisionIntoBackoff(t, k, c)

	k.RunUntilIdle()
	if got := countKind(ring, trace.KindProvFail); got != 3 {
		t.Errorf("ProvFail records = %d, want 3 (every attempt fails)", got)
	}
	if got := countKind(ring, trace.KindProvRetry); got != 2 {
		t.Errorf("ProvRetry records = %d, want 2 (retries between the 3 attempts)", got)
	}
	if len(*outcomes) != 1 || (*outcomes)[0] {
		t.Fatalf("outcomes = %v, want exactly one false (permanent exhaustion)", *outcomes)
	}
	if m.Up() || m.Booting() {
		t.Error("exhausted provision left the machine up or boot-pending")
	}
}
