package cluster

import (
	"fmt"

	"plasma/internal/sim"
	"plasma/internal/trace"
)

// ProvClass is a provisioning class: how fast (and how reliably) new
// capacity comes online. The paper models a single constant boot delay;
// real elasticity outcomes hinge on the provisioning spectrum — a
// warm-pool restore lands in milliseconds, a container in seconds, a VM
// in tens of seconds — so the cluster exposes all three as first-class
// classes that scale-out policy can choose between.
type ProvClass int

const (
	// WarmPool is pre-booted capacity held in reserve: near-instant
	// activation, but the pool is finite.
	WarmPool ProvClass = iota
	// Container is container-style provisioning: seconds to start,
	// effectively unlimited supply.
	Container
	// VM is full virtual-machine provisioning: tens of seconds, the
	// paper's original single boot constant.
	VM
	numProvClasses
)

func (pc ProvClass) String() string {
	switch pc {
	case WarmPool:
		return "warm"
	case Container:
		return "container"
	case VM:
		return "vm"
	}
	return fmt.Sprintf("ProvClass(%d)", int(pc))
}

// ProvClassFromString parses a class name as written by ProvClass.String.
func ProvClassFromString(s string) (ProvClass, bool) {
	for pc := ProvClass(0); pc < numProvClasses; pc++ {
		if pc.String() == s {
			return pc, true
		}
	}
	return 0, false
}

// ProvClassNames lists every class name in declaration order.
func ProvClassNames() []string {
	out := make([]string, numProvClasses)
	for i := range out {
		out[i] = ProvClass(i).String()
	}
	return out
}

// ProvSpec describes one provisioning class's behavior: a uniform
// boot-time distribution over [BootMin, BootMax], a per-attempt failure
// probability, and (for warm pools) a finite capacity. A spec is mutable
// state — warm-pool acquisitions decrement Capacity — so callers hold
// specs by pointer for the life of a run.
type ProvSpec struct {
	Class ProvClass
	// BootMin/BootMax bound the uniform boot-time draw. BootMax <= BootMin
	// makes the boot deterministic at BootMin (no RNG consumed).
	BootMin sim.Duration
	BootMax sim.Duration
	// FailProb is the probability one boot attempt fails (0 disables the
	// failure draw entirely, consuming no randomness).
	FailProb float64
	// Capacity is the remaining pool size; negative means unlimited.
	Capacity int
	// MaxRetries bounds boot re-attempts after failures (default 3).
	MaxRetries int
	// BaseBackoff is the first retry delay, doubling per attempt up to
	// MaxBackoff (defaults 1s and 8s).
	BaseBackoff sim.Duration
	MaxBackoff  sim.Duration
}

// DefaultProvSpecs is the calibrated three-class spectrum used by the
// burst experiments: a small near-instant warm pool, elastic containers,
// and slow VMs. Boot windows follow Dandelion-style measurements
// (millisecond restores vs multi-second VM boots), scaled to the
// simulator's instance catalog.
func DefaultProvSpecs() []ProvSpec {
	return []ProvSpec{
		{Class: WarmPool, BootMin: 50 * sim.Millisecond, BootMax: 200 * sim.Millisecond, FailProb: 0.01, Capacity: 8},
		{Class: Container, BootMin: 2 * sim.Second, BootMax: 5 * sim.Second, FailProb: 0.03, Capacity: -1},
		{Class: VM, BootMin: 30 * sim.Second, BootMax: 60 * sim.Second, FailProb: 0.05, Capacity: -1},
	}
}

func (s *ProvSpec) maxRetries() int {
	if s.MaxRetries <= 0 {
		return 3
	}
	return s.MaxRetries
}

func (s *ProvSpec) backoff(attempt int) sim.Duration {
	base := s.BaseBackoff
	if base <= 0 {
		base = sim.Second
	}
	max := s.MaxBackoff
	if max <= 0 {
		max = 8 * sim.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// Available reports whether the class can supply at least one machine.
func (s *ProvSpec) Available() bool { return s.Capacity != 0 }

// Remaining reports the pool capacity left (negative = unlimited).
func (s *ProvSpec) Remaining() int { return s.Capacity }

// acquire consumes one unit of pool capacity, reporting success.
func (s *ProvSpec) acquire() bool {
	if s.Capacity < 0 {
		return true
	}
	if s.Capacity == 0 {
		return false
	}
	s.Capacity--
	return true
}

// ProvisionClass boots a new machine of the given type through a
// provisioning class. The machine is returned immediately but only
// becomes Up once a boot attempt succeeds; done (if non-nil) fires
// exactly once with ok=true when the machine comes up, or ok=false if
// provisioning fails permanently (retries exhausted, or the machine is
// crashed/decommissioned mid-boot).
//
// A nil spec provisions with the legacy constant boot delay (typ.Boot),
// no failure draw, and no randomness — byte-identical event sequence to
// the original single-constant provisioner.
//
// Returns nil without side effects when the fleet is at its cap or the
// class's pool is exhausted.
func (c *Cluster) ProvisionClass(typ InstanceType, spec *ProvSpec, done func(*Machine, bool)) *Machine {
	if c.UpCount() >= c.maxSize {
		return nil
	}
	if spec != nil && !spec.acquire() {
		return nil
	}
	m := c.newMachine(typ)
	m.bootPending = true
	m.bootDone = done
	c.provisions++
	detail := typ.Name
	if spec != nil {
		m.provClass = spec.Class
		detail = typ.Name + "/" + spec.Class.String()
	}
	c.tr.Emit(trace.Record{Kind: trace.KindProvision, Server: -1, Target: int32(m.ID), Rule: -1, Detail: detail})
	if spec == nil {
		c.K.After(typ.Boot, func() { c.finishBoot(m) })
		return m
	}
	c.startBoot(m, spec, 0)
	return m
}

// startBoot draws one boot attempt's duration and failure verdict from
// the kernel's stream (at scheduling time, so the sequence is a function
// of the call order alone) and schedules its completion. Failed attempts
// retry with capped exponential backoff until MaxRetries, each failure
// and retry emitted as a trace record.
func (c *Cluster) startBoot(m *Machine, spec *ProvSpec, attempt int) {
	boot := spec.BootMin
	if spec.BootMax > spec.BootMin {
		boot += sim.Duration(c.K.Rand().Int63n(int64(spec.BootMax-spec.BootMin) + 1))
	}
	failed := spec.FailProb > 0 && c.K.Rand().Float64() < spec.FailProb
	c.K.After(boot, func() {
		if !m.bootPending || m.failed || m.decommed {
			return // stale boot timer: the machine was torn down mid-boot
		}
		if !failed {
			c.finishBoot(m)
			return
		}
		c.tr.Emit(trace.Record{Kind: trace.KindProvFail, Server: -1, Target: int32(m.ID), Rule: -1,
			Value: float64(attempt), Detail: spec.Class.String()})
		if attempt+1 >= spec.maxRetries() {
			c.abortBoot(m)
			return
		}
		delay := spec.backoff(attempt)
		c.tr.Emit(trace.Record{Kind: trace.KindProvRetry, Server: -1, Target: int32(m.ID), Rule: -1,
			Value: float64(delay), Detail: spec.Class.String()})
		c.K.After(delay, func() {
			if !m.bootPending || m.failed || m.decommed {
				return
			}
			c.startBoot(m, spec, attempt+1)
		})
	})
}

// finishBoot brings a pending machine up and notifies its provisioner.
// Stale timers — the machine crashed or was decommissioned during boot —
// are no-ops.
func (c *Cluster) finishBoot(m *Machine) {
	if !m.bootPending || m.failed || m.decommed {
		return
	}
	m.up = true
	m.bootPending = false
	c.tr.Emit(trace.Record{Kind: trace.KindMachineUp, Server: -1, Target: int32(m.ID), Rule: -1})
	done := m.bootDone
	m.bootDone = nil
	if done != nil {
		done(m, true)
	}
}

// abortBoot permanently fails a pending provision: the machine never
// enters service and can never be repaired into it.
func (c *Cluster) abortBoot(m *Machine) {
	m.bootPending = false
	m.decommed = true
	done := m.bootDone
	m.bootDone = nil
	if done != nil {
		done(m, false)
	}
}
