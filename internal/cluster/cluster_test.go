package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"plasma/internal/sim"
)

func newTestMachine(k *sim.Kernel, vcpus int) *Machine {
	typ := InstanceType{Name: "test", VCPUs: vcpus, MemMB: 1024, NetMbps: 100, SpeedFac: 1.0}
	c := New(k, 1, typ)
	return c.UpMachines()[0]
}

func TestExecCompletesAfterCost(t *testing.T) {
	k := sim.New(1)
	m := newTestMachine(k, 1)
	var doneAt sim.Time
	m.Exec(10*sim.Millisecond, func() { doneAt = k.Now() })
	k.RunUntilIdle()
	if doneAt != sim.Time(10*sim.Millisecond) {
		t.Fatalf("done at %d, want 10ms", doneAt)
	}
}

func TestSingleCoreSerializesWork(t *testing.T) {
	k := sim.New(1)
	m := newTestMachine(k, 1)
	var order []int
	m.Exec(10*sim.Millisecond, func() { order = append(order, 1) })
	m.Exec(10*sim.Millisecond, func() { order = append(order, 2) })
	if m.QueueLen() != 1 {
		t.Fatalf("queue len = %d, want 1", m.QueueLen())
	}
	k.RunUntilIdle()
	if k.Now() != sim.Time(20*sim.Millisecond) {
		t.Fatalf("finished at %v, want 20ms (serialized)", k.Now())
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("completion order %v", order)
	}
}

func TestTwoCoresRunInParallel(t *testing.T) {
	k := sim.New(1)
	m := newTestMachine(k, 2)
	done := 0
	m.Exec(10*sim.Millisecond, func() { done++ })
	m.Exec(10*sim.Millisecond, func() { done++ })
	k.RunUntilIdle()
	if k.Now() != sim.Time(10*sim.Millisecond) {
		t.Fatalf("finished at %v, want 10ms (parallel)", k.Now())
	}
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
}

func TestSpeedFactorScalesCost(t *testing.T) {
	k := sim.New(1)
	typ := InstanceType{Name: "fast", VCPUs: 1, MemMB: 1024, NetMbps: 100, SpeedFac: 2.0}
	c := New(k, 1, typ)
	m := c.UpMachines()[0]
	m.Exec(10*sim.Millisecond, nil)
	k.RunUntilIdle()
	if k.Now() != sim.Time(5*sim.Millisecond) {
		t.Fatalf("finished at %v, want 5ms on 2x machine", k.Now())
	}
}

func TestCPUPercentFullyBusy(t *testing.T) {
	k := sim.New(1)
	m := newTestMachine(k, 1)
	m.Exec(sim.Second, nil)
	k.Run(sim.Time(500 * sim.Millisecond))
	if got := m.CPUPercent(); math.Abs(got-100) > 0.5 {
		t.Fatalf("CPU%% = %v, want ~100 (in-flight work counted)", got)
	}
	k.RunUntilIdle()
	if got := m.CPUPercent(); math.Abs(got-100) > 0.5 {
		t.Fatalf("CPU%% after completion = %v, want ~100", got)
	}
}

func TestCPUPercentHalfBusyTwoCores(t *testing.T) {
	k := sim.New(1)
	m := newTestMachine(k, 2)
	m.Exec(sim.Second, nil)
	k.Run(sim.Time(sim.Second))
	k.RunUntilIdle()
	if got := m.CPUPercent(); math.Abs(got-50) > 1 {
		t.Fatalf("CPU%% = %v, want ~50 (1 of 2 cores busy)", got)
	}
}

func TestResetWindowClearsUtilization(t *testing.T) {
	k := sim.New(1)
	m := newTestMachine(k, 1)
	m.Exec(sim.Second, nil)
	k.RunUntilIdle()
	m.ResetWindow()
	k.Run(k.Now() + sim.Time(sim.Second))
	if got := m.CPUPercent(); got != 0 {
		t.Fatalf("CPU%% after reset+idle = %v, want 0", got)
	}
}

func TestResetWindowStraddlingWork(t *testing.T) {
	k := sim.New(1)
	m := newTestMachine(k, 1)
	m.Exec(2*sim.Second, nil)
	k.Run(sim.Time(sim.Second))
	m.ResetWindow()
	k.RunUntilIdle() // work completes at t=2s, 1s inside the new window
	k.Run(k.Now() + sim.Time(sim.Second))
	// New window spans [1s, 3s] with 1s of busy -> 50%.
	if got := m.CPUPercent(); math.Abs(got-50) > 1 {
		t.Fatalf("CPU%% = %v, want ~50", got)
	}
}

func TestNetPercent(t *testing.T) {
	k := sim.New(1)
	m := newTestMachine(k, 1) // 100 Mbps
	// 100 Mbps over 1s = 12.5 MB; send 6.25 MB -> 50%.
	m.AddNetBytes(6_250_000)
	k.Run(sim.Time(sim.Second))
	if got := m.NetPercent(); math.Abs(got-50) > 1 {
		t.Fatalf("net%% = %v, want ~50", got)
	}
}

func TestMemAccounting(t *testing.T) {
	k := sim.New(1)
	m := newTestMachine(k, 1) // 1024 MB
	m.AddMem(512 * 1024 * 1024)
	if got := m.MemPercent(); math.Abs(got-50) > 0.01 {
		t.Fatalf("mem%% = %v, want 50", got)
	}
	m.AddMem(-600 * 1024 * 1024)
	if m.MemUsed() != 0 {
		t.Fatalf("mem clamped to %d, want 0", m.MemUsed())
	}
}

func TestProvisionBootDelay(t *testing.T) {
	k := sim.New(1)
	typ := InstanceType{Name: "t", VCPUs: 1, MemMB: 1024, NetMbps: 100, Boot: 30 * sim.Second, SpeedFac: 1}
	c := New(k, 1, typ)
	var upAt sim.Time = -1
	m := c.Provision(typ, func(*Machine) { upAt = k.Now() })
	if m.Up() {
		t.Fatal("machine up before boot delay")
	}
	if c.UpCount() != 1 {
		t.Fatalf("UpCount = %d, want 1 during boot", c.UpCount())
	}
	k.RunUntilIdle()
	if !m.Up() || upAt != sim.Time(30*sim.Second) {
		t.Fatalf("up=%v upAt=%v, want up at 30s", m.Up(), upAt)
	}
	if c.Provisions() != 1 {
		t.Fatalf("Provisions = %d", c.Provisions())
	}
}

func TestProvisionRespectsMaxSize(t *testing.T) {
	k := sim.New(1)
	c := New(k, 2, M1Small)
	c.SetMaxSize(2)
	if m := c.Provision(M1Small, nil); m != nil {
		t.Fatal("Provision exceeded max size")
	}
}

func TestDecommission(t *testing.T) {
	k := sim.New(1)
	c := New(k, 2, M1Small)
	if err := c.Decommission(0); err != nil {
		t.Fatal(err)
	}
	if c.UpCount() != 1 {
		t.Fatalf("UpCount = %d, want 1", c.UpCount())
	}
	if err := c.Decommission(0); err == nil {
		t.Fatal("double decommission should fail")
	}
	if err := c.Decommission(99); err == nil {
		t.Fatal("unknown machine should fail")
	}
}

// Repair after Decommission must be well-defined: a decommissioned machine
// is gone for good and never resurrects into UpMachines, whether it was
// healthy or crashed when removed.
func TestRepairAfterDecommissionRefused(t *testing.T) {
	k := sim.New(1)
	c := New(k, 3, M1Small)
	if err := c.Decommission(0); err != nil {
		t.Fatal(err)
	}
	if c.Repair(0) {
		t.Fatal("repaired a decommissioned machine")
	}
	if c.Machine(0).Up() || c.UpCount() != 2 {
		t.Fatal("decommissioned machine resurrected")
	}
	if !c.Machine(0).Decommissioned() {
		t.Fatal("Decommissioned() not reported")
	}
	// A crashed machine may be decommissioned (it is down either way)...
	if !c.Fail(1) {
		t.Fatal("Fail rejected")
	}
	if err := c.Decommission(1); err != nil {
		t.Fatalf("decommissioning a crashed machine: %v", err)
	}
	// ...after which repair is refused for it too.
	if c.Repair(1) {
		t.Fatal("repaired a crashed-then-decommissioned machine")
	}
	if c.Machine(1).Up() {
		t.Fatal("machine resurrected")
	}
	for _, m := range c.UpMachines() {
		if m.ID == 0 || m.ID == 1 {
			t.Fatal("decommissioned machine in UpMachines")
		}
	}
}

func TestTransferLatency(t *testing.T) {
	k := sim.New(1)
	c := New(k, 2, M1Small) // 250 Mbps
	if got := c.TransferLatency(0, 0, 1e6); got != 0 {
		t.Fatalf("local transfer latency = %v, want 0", got)
	}
	// 1 MB over 250 Mbps = 8e6 bits / 250 bits/µs = 32000 µs, + 500 µs base.
	want := sim.Duration(32000) + c.BaseLatency
	if got := c.TransferLatency(0, 1, 1e6); got != want {
		t.Fatalf("transfer latency = %v, want %v", got, want)
	}
}

func TestTransferLatencyUsesSlowerNIC(t *testing.T) {
	k := sim.New(1)
	c := New(k, 1, M1Small)
	c.Provision(M5Large, nil)
	k.RunUntilIdle()
	// m1.small's 250 Mbps should bound the m5.large's 10 Gbps.
	lat := c.TransferLatency(0, 1, 1e6) - c.BaseLatency
	want := sim.Duration(1e6 * 8 / 250)
	if lat != want {
		t.Fatalf("transfer term = %v, want %v", lat, want)
	}
}

// Property: CPUPercent stays within [0, 100] under arbitrary workloads.
func TestPropertyCPUPercentBounded(t *testing.T) {
	f := func(costs []uint16, vcpus8 uint8) bool {
		vcpus := int(vcpus8%4) + 1
		k := sim.New(11)
		m := newTestMachine(k, vcpus)
		for _, c := range costs {
			m.Exec(sim.Duration(c)*sim.Millisecond, nil)
		}
		ok := true
		k.Every(100*sim.Millisecond, func() bool {
			p := m.CPUPercent()
			if p < 0 || p > 100.0001 {
				ok = false
			}
			return k.Pending() > 1
		})
		k.RunUntilIdle()
		return ok && m.CPUPercent() <= 100.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: total busy time equals total submitted cost once idle (single
// window, no resets).
func TestPropertyBusyConservation(t *testing.T) {
	f := func(costs []uint16) bool {
		k := sim.New(13)
		m := newTestMachine(k, 2)
		var total sim.Duration
		for _, c := range costs {
			d := sim.Duration(c) * sim.Microsecond
			total += d
			m.Exec(d, nil)
		}
		k.RunUntilIdle()
		if k.Now() == 0 {
			return total == 0
		}
		busy := sim.Duration(float64(m.CPUPercent()) / 100 * float64(k.Now()) * float64(m.Type.VCPUs))
		diff := busy - total
		if diff < 0 {
			diff = -diff
		}
		return diff <= sim.Duration(len(costs)+1) // rounding slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
