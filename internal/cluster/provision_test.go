package cluster

import (
	"fmt"
	"testing"

	"plasma/internal/sim"
)

// Regression (boot-timer lifecycle): crashing a machine mid-boot must be
// possible, must report the outcome to the provisioner, and must turn the
// pending boot timer into a no-op. The old code refused Fail on a booting
// machine (it required Up()) and its boot callback unconditionally set
// up=true even after a teardown.
func TestFailMidBootMakesBootTimerStale(t *testing.T) {
	k := sim.New(1)
	c := New(k, 1, M1Small)

	upFired := false
	m := c.Provision(M1Small, func(*Machine) { upFired = true })
	if m == nil {
		t.Fatal("Provision returned nil")
	}
	if !m.Booting() {
		t.Fatal("provisioned machine should report Booting")
	}

	// Crash halfway through the boot delay.
	k.Run(k.Now() + sim.Time(M1Small.Boot/2))
	if !c.Fail(m.ID) {
		t.Fatal("Fail refused a booting machine")
	}
	if m.Booting() {
		t.Error("crashed machine still reports Booting")
	}

	// Let the original boot timer fire: it must be a no-op.
	k.RunUntilIdle()
	if m.Up() {
		t.Error("stale boot timer brought a crashed machine up")
	}
	if upFired {
		t.Error("onUp fired for a machine crashed mid-boot")
	}
	if c.UpCount() != 1 {
		t.Errorf("UpCount = %d, want 1 (only the seed machine)", c.UpCount())
	}
	// The provision is gone for good: no resurrection path.
	if c.Repair(m.ID) {
		t.Error("Repair resurrected a machine that never booted")
	}
}

// Regression: decommissioning a machine mid-boot (the fleet shrank while
// it was booting) cancels the provision and reports failure to the
// outcome callback; the stale boot timer is a no-op.
func TestDecommissionMidBootCancelsProvision(t *testing.T) {
	k := sim.New(1)
	c := New(k, 1, M1Small)

	var gotOK *bool
	m := c.ProvisionClass(M1Small, nil, func(_ *Machine, ok bool) { gotOK = &ok })
	if m == nil {
		t.Fatal("ProvisionClass returned nil")
	}
	k.Run(k.Now() + sim.Time(M1Small.Boot/2))
	if err := c.Decommission(m.ID); err != nil {
		t.Fatalf("Decommission mid-boot: %v", err)
	}
	if gotOK == nil || *gotOK {
		t.Fatal("outcome callback should have fired with ok=false")
	}
	k.RunUntilIdle()
	if m.Up() {
		t.Error("stale boot timer brought a decommissioned machine up")
	}
	if !m.Decommissioned() {
		t.Error("machine should be decommissioned")
	}
}

// ProvisionClass with a nil spec must behave exactly like the legacy
// constant-boot provisioner: up at typ.Boot, outcome ok=true.
func TestProvisionClassNilSpecLegacyBoot(t *testing.T) {
	k := sim.New(1)
	c := New(k, 0, M1Small)
	var upAt sim.Time
	ok := false
	m := c.ProvisionClass(M5Large, nil, func(_ *Machine, o bool) { upAt, ok = k.Now(), o })
	if m == nil {
		t.Fatal("ProvisionClass returned nil")
	}
	k.RunUntilIdle()
	if !ok {
		t.Fatal("outcome callback did not report success")
	}
	if upAt != sim.Time(M5Large.Boot) {
		t.Errorf("came up at %v, want %v", upAt, sim.Time(M5Large.Boot))
	}
	if !m.Up() {
		t.Error("machine not Up after boot")
	}
}

// A warm pool's finite capacity depletes; exhausted pools refuse to
// provision without side effects.
func TestWarmPoolCapacityDepletes(t *testing.T) {
	k := sim.New(1)
	c := New(k, 0, M1Small)
	spec := ProvSpec{Class: WarmPool, BootMin: 100 * sim.Millisecond, Capacity: 2}

	for i := 0; i < 2; i++ {
		if m := c.ProvisionClass(M1Small, &spec, nil); m == nil {
			t.Fatalf("warm provision %d refused with capacity left", i)
		}
	}
	if spec.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", spec.Remaining())
	}
	before := c.Provisions()
	if m := c.ProvisionClass(M1Small, &spec, nil); m != nil {
		t.Fatal("exhausted warm pool still provisioned")
	}
	if c.Provisions() != before {
		t.Error("refused provision still counted")
	}
	k.RunUntilIdle()
	if c.UpCount() != 2 {
		t.Errorf("UpCount = %d, want 2", c.UpCount())
	}
}

// Boot times are drawn uniformly from [BootMin, BootMax].
func TestProvisionBootWindow(t *testing.T) {
	k := sim.New(7)
	c := New(k, 0, M1Small)
	spec := ProvSpec{Class: Container, BootMin: 2 * sim.Second, BootMax: 5 * sim.Second, Capacity: -1}
	var ups []sim.Time
	for i := 0; i < 20; i++ {
		c.ProvisionClass(M1Small, &spec, func(*Machine, bool) { ups = append(ups, k.Now()) })
	}
	k.RunUntilIdle()
	if len(ups) != 20 {
		t.Fatalf("%d machines came up, want 20", len(ups))
	}
	varied := false
	for _, at := range ups {
		if at < sim.Time(spec.BootMin) || at > sim.Time(spec.BootMax) {
			t.Errorf("boot finished at %v, outside [%v, %v]", at, spec.BootMin, spec.BootMax)
		}
		if at != ups[0] {
			varied = true
		}
	}
	if !varied {
		t.Error("20 boot draws all identical; distribution not applied")
	}
}

// A failing class retries with capped exponential backoff and eventually
// either succeeds or reports permanent failure; either way the outcome
// callback fires exactly once per provision.
func TestProvisionFailureRetriesAndExhaustion(t *testing.T) {
	k := sim.New(3)
	c := New(k, 0, M1Small)
	spec := ProvSpec{
		Class: VM, BootMin: sim.Second, FailProb: 1.0, Capacity: -1,
		MaxRetries: 3, BaseBackoff: sim.Second, MaxBackoff: 2 * sim.Second,
	}
	outcomes := 0
	okCount := 0
	m := c.ProvisionClass(M1Small, &spec, func(_ *Machine, ok bool) {
		outcomes++
		if ok {
			okCount++
		}
	})
	k.RunUntilIdle()
	if outcomes != 1 {
		t.Fatalf("outcome callback fired %d times, want 1", outcomes)
	}
	if okCount != 0 {
		t.Fatal("FailProb=1 provision reported success")
	}
	if m.Up() {
		t.Error("permanently failed provision is Up")
	}
	if !m.Decommissioned() {
		t.Error("permanently failed provision should be decommissioned")
	}
	// Attempts: boot(1s) + backoff(1s) + boot + backoff(2s, capped) + boot.
	want := sim.Time(3*sim.Second + 3*sim.Second)
	if k.Now() != want {
		t.Errorf("exhaustion at %v, want %v", k.Now(), want)
	}
}

// Two same-seed runs of a flaky provisioning burst produce identical
// outcome sequences (the spectrum is deterministic).
func TestProvisionClassDeterministic(t *testing.T) {
	run := func() string {
		k := sim.New(11)
		c := New(k, 0, M1Small)
		specs := DefaultProvSpecs()
		out := ""
		for i := 0; i < 12; i++ {
			i := i
			s := &specs[i%len(specs)]
			if m := c.ProvisionClass(M1Small, s, func(_ *Machine, ok bool) {
				out += fmt.Sprintf("%d:%v@%d ", i, ok, k.Now())
			}); m == nil {
				out += fmt.Sprintf("%d:refused ", i)
			}
		}
		k.RunUntilIdle()
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed provisioning diverged:\n%s\nvs\n%s", a, b)
	}
}
