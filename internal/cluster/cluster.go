// Package cluster models a cloud cluster for PLASMA's experiments: machines
// with a fixed number of virtual CPUs, memory, and NIC bandwidth, plus a
// provisioner that adds and removes machines with a boot delay (the paper
// uses the AWS Instance Scheduler for the same purpose).
//
// CPU is modeled as vCPU "cores" that each execute one work item at a time;
// pending work queues FIFO. This makes server CPU utilization an emergent,
// truthful signal for the elasticity profiling runtime, which is what all of
// the paper's resource elasticity rules key on.
package cluster

import (
	"fmt"

	"plasma/internal/sim"
	"plasma/internal/trace"
)

// InstanceType describes a machine flavor, mirroring the AWS instance types
// used in the paper's evaluation.
type InstanceType struct {
	Name     string
	VCPUs    int
	MemMB    int64
	NetMbps  float64      // NIC bandwidth
	Boot     sim.Duration // provisioning delay before the machine is usable
	SpeedFac float64      // relative per-core speed (1.0 = baseline); work cost is divided by this
}

// Instance types approximating the paper's testbed. Absolute speeds are
// arbitrary; ratios (small vs medium vs large) match AWS's published specs
// closely enough to preserve the experiments' shapes.
var (
	M1Small  = InstanceType{Name: "m1.small", VCPUs: 1, MemMB: 1700, NetMbps: 250, Boot: 45 * sim.Second, SpeedFac: 1.0}
	M1Medium = InstanceType{Name: "m1.medium", VCPUs: 1, MemMB: 3750, NetMbps: 500, Boot: 45 * sim.Second, SpeedFac: 2.0}
	M5Large  = InstanceType{Name: "m5.large", VCPUs: 2, MemMB: 8192, NetMbps: 10000, Boot: 30 * sim.Second, SpeedFac: 4.0}
)

// MachineID identifies a machine within its cluster.
type MachineID int

// work is one CPU task occupying a core for its cost. Completed work
// structs are recycled through the machine's free list, and fire — the
// completion callback handed to the kernel — is built once per struct, so
// the steady-state Exec path allocates nothing.
type work struct {
	cost  sim.Duration
	start sim.Time
	done  func()
	fire  func() // reusable completion closure: m.complete(w)
	next  *work  // free-list link
}

// Machine is a simulated server.
type Machine struct {
	ID   MachineID
	Type InstanceType

	k        *sim.Kernel
	env      *sim.Env // scheduling context for this machine's home (shard-safe)
	up       bool
	failed   bool
	decommed bool // permanently removed; Repair must not resurrect it

	bootPending bool                  // provisioned, boot delay still running
	bootDone    func(*Machine, bool) // pending provision-outcome callback
	provClass   ProvClass            // class this machine was provisioned through

	active []*work // currently running, len <= VCPUs
	queue  []*work // waiting for a core
	freeW  *work   // recycled work structs

	windowStart sim.Time
	busyWindow  sim.Duration // completed core-busy time since windowStart
	netBytes    int64        // NIC bytes since windowStart
	memUsed     int64        // bytes currently attributed to this machine
}

// Env returns the machine's scheduling context: events homed at this
// machine (message deliveries, CPU completions) are scheduled through it
// so a sharded kernel can run them on the machine's shard.
func (m *Machine) Env() *sim.Env { return m.env }

// Up reports whether the machine has finished booting and is usable.
func (m *Machine) Up() bool { return m.up && !m.failed }

// Failed reports whether the machine has crashed.
func (m *Machine) Failed() bool { return m.failed }

// Booting reports whether the machine is provisioned but still booting.
func (m *Machine) Booting() bool { return m.bootPending }

// ProvClass reports the provisioning class the machine came from
// (WarmPool for pre-seeded machines, which never went through a boot).
func (m *Machine) ProvClass() ProvClass { return m.provClass }

// Decommissioned reports whether the machine has been permanently removed
// from service.
func (m *Machine) Decommissioned() bool { return m.decommed }

// ScaledCost converts a baseline CPU cost into this machine's actual
// execution (core-occupancy) time.
func (m *Machine) ScaledCost(cost sim.Duration) sim.Duration {
	if cost <= 0 {
		return 0
	}
	return sim.Duration(float64(cost) / m.Type.SpeedFac)
}

// Exec schedules a CPU task costing cost (at baseline speed) and calls done
// when it completes. Cost is scaled by the machine's per-core speed. Work
// submitted to a failed machine is silently dropped (it crashed).
func (m *Machine) Exec(cost sim.Duration, done func()) {
	if m.failed {
		return
	}
	w := m.allocWork()
	w.cost, w.done = m.ScaledCost(cost), done
	if len(m.active) < m.Type.VCPUs {
		m.start(w)
	} else {
		m.queue = append(m.queue, w)
	}
}

// allocWork pops a recycled work struct or builds a fresh one with its
// permanent completion closure.
func (m *Machine) allocWork() *work {
	if w := m.freeW; w != nil {
		m.freeW = w.next
		w.next = nil
		return w
	}
	w := &work{}
	w.fire = func() { m.complete(w) }
	return w
}

func (m *Machine) start(w *work) {
	w.start = m.env.Now()
	m.active = append(m.active, w)
	// Completion stays homed at this machine, so queued work chains and
	// window accounting run on the machine's own shard.
	m.env.Schedule(int32(m.ID), w.cost, w.fire)
}

func (m *Machine) complete(w *work) {
	if m.failed {
		// The machine crashed while this work was in flight. The struct is
		// NOT recycled: Fail dropped it from the run queues, and leaving it
		// out of the free list keeps a later stale fire harmless.
		return
	}
	for i, a := range m.active {
		if a == w {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	m.busyWindow += sim.Duration(m.env.Now() - w.start)
	if len(m.queue) > 0 {
		next := m.queue[0]
		m.queue = m.queue[1:]
		m.start(next)
	}
	done := w.done
	// Recycle before running done: the kernel event that fired us was this
	// struct's only pending reference, and done may Exec new work that can
	// immediately reuse it.
	w.done = nil
	w.next = m.freeW
	m.freeW = w
	if done != nil {
		done()
	}
}

// QueueLen reports the number of CPU tasks waiting for a core.
func (m *Machine) QueueLen() int { return len(m.queue) }

// Busy reports the number of cores currently executing work.
func (m *Machine) Busy() int { return len(m.active) }

// AddNetBytes accounts NIC traffic against the current window.
func (m *Machine) AddNetBytes(n int64) { m.netBytes += n }

// AddMem adjusts the machine's resident memory attribution (may be negative).
func (m *Machine) AddMem(delta int64) {
	m.memUsed += delta
	if m.memUsed < 0 {
		m.memUsed = 0
	}
}

// MemUsed reports resident bytes.
func (m *Machine) MemUsed() int64 { return m.memUsed }

// CPUPercent reports core utilization (0-100) since the window started,
// including partially complete in-flight work.
func (m *Machine) CPUPercent() float64 {
	elapsed := m.env.Now() - m.windowStart
	if elapsed <= 0 {
		return 0
	}
	busy := m.busyWindow
	for _, w := range m.active {
		s := w.start
		if s < m.windowStart {
			s = m.windowStart
		}
		busy += sim.Duration(m.env.Now() - s)
	}
	return float64(busy) / (float64(elapsed) * float64(m.Type.VCPUs)) * 100
}

// NetPercent reports NIC utilization (0-100) since the window started.
func (m *Machine) NetPercent() float64 {
	elapsedSec := (m.env.Now() - m.windowStart).Seconds()
	if elapsedSec <= 0 {
		return 0
	}
	mbps := float64(m.netBytes) * 8 / 1e6 / elapsedSec
	return mbps / m.Type.NetMbps * 100
}

// MemPercent reports memory utilization (0-100).
func (m *Machine) MemPercent() float64 {
	return float64(m.memUsed) / float64(m.Type.MemMB*1024*1024) * 100
}

// ResetWindow starts a fresh accounting window at the current instant.
// In-flight work is credited up to now and continues into the new window.
func (m *Machine) ResetWindow() {
	now := m.env.Now()
	for _, w := range m.active {
		// In-flight time up to now belongs to the closed window; the work
		// restarts its accounting in the new one.
		w.start = now
	}
	m.windowStart = now
	m.busyWindow = 0
	m.netBytes = 0
}

// Cluster manages the machine fleet.
type Cluster struct {
	K *sim.Kernel

	machines []*Machine
	maxSize  int

	// BaseLatency is the one-way network latency between two machines,
	// before the size-proportional transfer term.
	BaseLatency sim.Duration

	provisions    int // total Provision calls, for experiment accounting
	decommissions int

	// onFail hooks fire synchronously when a machine crashes, letting the
	// actor runtime abort in-flight migrations deterministically.
	onFail []func(MachineID)

	tr *trace.Tracer // nil = machine lifecycle events untraced
}

// SetTracer installs (or removes, with nil) the decision tracer; machine
// lifecycle events (provision, boot, crash, repair, decommission) are
// recorded through it.
func (c *Cluster) SetTracer(t *trace.Tracer) { c.tr = t }

// New creates a cluster with n machines of the given type, already booted.
func New(k *sim.Kernel, n int, typ InstanceType) *Cluster {
	c := &Cluster{K: k, maxSize: 1 << 20, BaseLatency: sim.Millis(0.5)}
	for i := 0; i < n; i++ {
		m := c.newMachine(typ)
		m.up = true
	}
	return c
}

// SetMaxSize caps the fleet size for Provision (the paper's Media Service
// scales "up to 65 instances").
func (c *Cluster) SetMaxSize(n int) { c.maxSize = n }

func (c *Cluster) newMachine(typ InstanceType) *Machine {
	id := MachineID(len(c.machines))
	m := &Machine{ID: id, Type: typ, k: c.K, env: c.K.Env(int32(id)), windowStart: c.K.Now()}
	c.machines = append(c.machines, m)
	return m
}

// Provision boots a new machine of the given type with the legacy
// constant boot delay. The machine is returned immediately but only
// becomes Up after the type's boot delay; onUp (if non-nil) fires at that
// point — and only if the machine was not crashed or decommissioned while
// booting (a stale boot timer is a no-op). Returns nil if the fleet is at
// its cap. Callers that need to observe provisioning failure use
// ProvisionClass with an outcome callback instead.
func (c *Cluster) Provision(typ InstanceType, onUp func(*Machine)) *Machine {
	var done func(*Machine, bool)
	if onUp != nil {
		done = func(m *Machine, ok bool) {
			if ok {
				onUp(m)
			}
		}
	}
	return c.ProvisionClass(typ, nil, done)
}

// OnFail registers a hook invoked synchronously whenever a machine crashes
// (after its run queues have been dropped).
func (c *Cluster) OnFail(fn func(MachineID)) { c.onFail = append(c.onFail, fn) }

// Fail crashes a machine: it leaves service immediately, in-flight and
// queued work is lost, and nothing can execute on it until the experiment
// explicitly repairs it with Repair. A machine still booting may also be
// crashed: its provision never completes (the pending boot timer becomes
// a no-op, the outcome callback fires with ok=false) and it is gone for
// good. Returns false for unknown/already-down ids.
func (c *Cluster) Fail(id MachineID) bool {
	m := c.Machine(id)
	if m == nil || m.failed || m.decommed {
		return false
	}
	if m.bootPending {
		// Crash mid-boot: the machine never entered service, so there are
		// no run queues to drop, no actors to re-home, and nothing for
		// Repair to restore — it is permanently gone.
		m.failed = true
		m.bootPending = false
		m.decommed = true
		c.tr.Emit(trace.Record{Kind: trace.KindCrash, Server: int32(id), Target: -1, Rule: -1, Detail: "mid-boot"})
		done := m.bootDone
		m.bootDone = nil
		if done != nil {
			done(m, false)
		}
		return true
	}
	if !m.up {
		return false
	}
	m.failed = true
	m.active = nil
	m.queue = nil
	c.tr.Emit(trace.Record{Kind: trace.KindCrash, Server: int32(id), Target: -1, Rule: -1})
	for _, fn := range c.onFail {
		fn(id)
	}
	return true
}

// Repair returns a failed machine to service with empty run queues and a
// fresh accounting window. A decommissioned machine is gone for good:
// repairing it is rejected and it never re-enters UpMachines.
func (c *Cluster) Repair(id MachineID) bool {
	m := c.Machine(id)
	if m == nil || !m.failed || m.decommed {
		return false
	}
	m.failed = false
	m.memUsed = 0
	m.ResetWindow()
	c.tr.Emit(trace.Record{Kind: trace.KindRepair, Server: int32(id), Target: -1, Rule: -1})
	return true
}

// Decommission removes a machine from service permanently. The caller is
// responsible for having evacuated it first. A crashed (failed) machine may
// be decommissioned — it is down either way — and so may a machine still
// booting (the fleet shrank before the boot finished: the pending boot
// timer becomes a no-op and the provision outcome is failure). A
// decommissioned machine can never be repaired back into service.
func (c *Cluster) Decommission(id MachineID) error {
	m := c.Machine(id)
	if m == nil {
		return fmt.Errorf("cluster: no machine %d", id)
	}
	if m.decommed {
		return fmt.Errorf("cluster: machine %d is not up", id)
	}
	if m.bootPending {
		m.bootPending = false
		m.decommed = true
		c.decommissions++
		c.tr.Emit(trace.Record{Kind: trace.KindDecommission, Server: int32(id), Target: -1, Rule: -1, Detail: "mid-boot"})
		done := m.bootDone
		m.bootDone = nil
		if done != nil {
			done(m, false)
		}
		return nil
	}
	if !m.up {
		return fmt.Errorf("cluster: machine %d is not up", id)
	}
	m.up = false
	m.decommed = true
	c.decommissions++
	c.tr.Emit(trace.Record{Kind: trace.KindDecommission, Server: int32(id), Target: -1, Rule: -1})
	return nil
}

// Machine returns the machine with the given id, or nil.
func (c *Cluster) Machine(id MachineID) *Machine {
	if int(id) < 0 || int(id) >= len(c.machines) {
		return nil
	}
	return c.machines[id]
}

// Machines returns all machines ever created (including down ones).
func (c *Cluster) Machines() []*Machine { return c.machines }

// UpMachines returns the machines currently in service, in id order.
func (c *Cluster) UpMachines() []*Machine {
	var up []*Machine
	for _, m := range c.machines {
		if m.Up() {
			up = append(up, m)
		}
	}
	return up
}

// UpCount reports the number of machines in service.
func (c *Cluster) UpCount() int {
	n := 0
	for _, m := range c.machines {
		if m.Up() {
			n++
		}
	}
	return n
}

// Provisions reports the number of Provision calls so far.
func (c *Cluster) Provisions() int { return c.provisions }

// Decommissions reports the number of Decommission calls so far.
func (c *Cluster) Decommissions() int { return c.decommissions }

// TransferLatency is the one-way latency for moving size bytes from src to
// dst: base latency plus a bandwidth term at the slower NIC's rate. Local
// delivery (src == dst) is free.
func (c *Cluster) TransferLatency(src, dst MachineID, size int64) sim.Duration {
	if src == dst {
		return 0
	}
	srcM, dstM := c.Machine(src), c.Machine(dst)
	mbps := srcM.Type.NetMbps
	if dstM.Type.NetMbps < mbps {
		mbps = dstM.Type.NetMbps
	}
	transfer := sim.Duration(float64(size) * 8 / mbps) // bytes*8 bits / (Mbps = bits/µs)
	return c.BaseLatency + transfer
}
