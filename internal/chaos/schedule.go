package chaos

import (
	"fmt"
	"sort"

	"plasma/internal/sim"
)

// Op is a scheduled crash/recovery fault against the control plane or the
// machine fleet.
type Op int

const (
	// CrashMachine fails a machine; the underlying runtime's fault
	// tolerance re-homes its actors onto survivors.
	CrashMachine Op = iota
	// RepairMachine returns a previously crashed machine to service.
	RepairMachine
	// FailGEM crashes a global elasticity manager.
	FailGEM
	// RecoverGEM brings a failed GEM back.
	RecoverGEM
	// FailLEM crashes a server's local elasticity manager: the server drops
	// out of the global snapshot and answers no admission queries, but its
	// actors keep running (control-plane failure, not machine failure).
	FailLEM
	// RecoverLEM re-registers a failed LEM.
	RecoverLEM
	numOps
)

func (o Op) String() string {
	switch o {
	case CrashMachine:
		return "crash-machine"
	case RepairMachine:
		return "repair-machine"
	case FailGEM:
		return "fail-gem"
	case RecoverGEM:
		return "recover-gem"
	case FailLEM:
		return "fail-lem"
	case RecoverLEM:
		return "recover-lem"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Event is one timed fault.
type Event struct {
	At     sim.Time
	Op     Op
	Target int // machine id, GEM id, or LEM server id, per Op
}

// Env is what a fault schedule executes against; the experiment harness
// bridges it to the cluster, actor runtime, and EMR. Implementations may
// refuse an event (return false) — e.g. crashing the last surviving
// machine — and the refusal is recorded in the trace.
type Env interface {
	CrashMachine(id int) bool
	RepairMachine(id int) bool
	FailGEM(id int) bool
	RecoverGEM(id int) bool
	FailLEM(srv int) bool
	RecoverLEM(srv int) bool
}

// Apply schedules every event on the kernel, dispatching through env and
// recording each application (or refusal) in the injector's trace.
func (in *Injector) Apply(k *sim.Kernel, env Env, events []Event) {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for _, ev := range sorted {
		ev := ev
		k.At(ev.At, func() {
			var ok bool
			switch ev.Op {
			case CrashMachine:
				ok = env.CrashMachine(ev.Target)
			case RepairMachine:
				ok = env.RepairMachine(ev.Target)
			case FailGEM:
				ok = env.FailGEM(ev.Target)
			case RecoverGEM:
				ok = env.RecoverGEM(ev.Target)
			case FailLEM:
				ok = env.FailLEM(ev.Target)
			case RecoverLEM:
				ok = env.RecoverLEM(ev.Target)
			}
			if ok {
				in.Tracef("%s %d", ev.Op, ev.Target)
			} else {
				in.Tracef("%s %d skipped", ev.Op, ev.Target)
			}
		})
	}
}

// ScheduleOpts sizes a generated fault schedule.
type ScheduleOpts struct {
	// Horizon is the window faults are drawn from; recoveries may land up
	// to MeanOutage past it.
	Horizon sim.Time
	// Machines are the crashable machine ids (client-site machines should
	// be excluded by the caller).
	Machines []int
	// GEMs is the GEM count; LEMs are the LEM server ids.
	GEMs int
	LEMs []int
	// Crashes, GEMFails, LEMFails count fault pairs of each family; every
	// fault is followed by its matching recovery after ~MeanOutage.
	Crashes  int
	GEMFails int
	LEMFails int
	// MeanOutage is the average fault-to-recovery gap (default 10s).
	MeanOutage sim.Duration
}

// Generate draws a randomized-but-seeded fault schedule from the
// injector's stream: each fault picks a target and an instant uniformly
// over the horizon, paired with a recovery one exponential-ish outage
// later. Generation consumes the stream deterministically, so a given
// (seed, opts) always yields the same schedule.
func (in *Injector) Generate(opts ScheduleOpts) []Event {
	if opts.MeanOutage == 0 {
		opts.MeanOutage = 10 * sim.Second
	}
	var events []Event
	pair := func(n int, targets []int, fail, recover Op) {
		for i := 0; i < n && len(targets) > 0; i++ {
			t := targets[in.rng.Intn(len(targets))]
			at := sim.Time(in.rng.Int63n(int64(opts.Horizon)))
			outage := sim.Duration(float64(opts.MeanOutage) * (0.5 + in.rng.Float64()))
			events = append(events,
				Event{At: at, Op: fail, Target: t},
				Event{At: at + sim.Time(outage), Op: recover, Target: t})
		}
	}
	pair(opts.Crashes, opts.Machines, CrashMachine, RepairMachine)
	gems := make([]int, opts.GEMs)
	for i := range gems {
		gems[i] = i
	}
	pair(opts.GEMFails, gems, FailGEM, RecoverGEM)
	pair(opts.LEMFails, opts.LEMs, FailLEM, RecoverLEM)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}
