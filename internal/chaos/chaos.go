// Package chaos is PLASMA's deterministic fault-injection layer. A seeded
// Injector decides the fate of every EMR control-plane message (REPORT,
// RREPLY, QUERY, QREPLY) — deliver, drop, delay, or duplicate — and applies
// timed crash/recovery schedules against the cluster, the GEMs, and the
// LEMs. All decisions flow from the injector's own seeded stream, so a
// fault schedule replays bit-for-bit: the same seed produces the same
// drops, the same delays, and the same recovery trace, which is what lets
// the experiment harness assert invariants under chaos instead of arguing
// for them (§4.3's "graceful degradation" claims).
package chaos

import (
	"fmt"

	//lint:ignore DET002 the injector is the seeded source of every fault decision
	"math/rand"

	"plasma/internal/sim"
	"plasma/internal/trace"
)

// MsgKind enumerates the EMR control-plane message types (§4.1 Fig. 4).
type MsgKind int

const (
	// Report is a LEM's per-period runtime info REPORT to its chosen GEM.
	Report MsgKind = iota
	// RReply is a GEM's reply to a reporting LEM (ack or planned actions).
	RReply
	// Query is a source LEM's admission QUERY to a migration target's LEM.
	Query
	// QReply is the target LEM's admission answer.
	QReply
	numKinds
)

func (k MsgKind) String() string {
	switch k {
	case Report:
		return "REPORT"
	case RReply:
		return "RREPLY"
	case Query:
		return "QUERY"
	case QReply:
		return "QREPLY"
	}
	return fmt.Sprintf("MsgKind(%d)", int(k))
}

// Verdict is the fate of one intercepted message.
type Verdict int

const (
	// Deliver passes the message through untouched.
	Deliver Verdict = iota
	// Drop loses the message silently.
	Drop
	// Delay adds Decision.Delay of extra latency.
	Delay
	// Duplicate delivers the message twice (receivers must deduplicate).
	Duplicate
)

func (v Verdict) String() string {
	switch v {
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "dup"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Decision is an Interceptor's ruling on one message.
type Decision struct {
	Verdict Verdict
	Delay   sim.Duration // extra latency when Verdict == Delay
}

// Interceptor decides the fate of control-plane messages. The EMR calls it
// once per logical send; a nil interceptor means a reliable network.
type Interceptor interface {
	Intercept(kind MsgKind, from, to string) Decision
}

// Faults is the per-message-kind fault plan: independent probabilities for
// drop, duplicate, and delay (checked in that order), and the delay bound.
type Faults struct {
	DropProb  float64
	DupProb   float64
	DelayProb float64
	// MaxDelay bounds injected delays; delays are drawn uniformly from
	// (0, MaxDelay]. Zero disables delay injection.
	MaxDelay sim.Duration
}

// Stats counts injector activity per message kind.
type Stats struct {
	Intercepted [numKinds]int
	Dropped     [numKinds]int
	Delayed     [numKinds]int
	Duplicated  [numKinds]int
}

// Total sums a per-kind counter array.
func total(a [numKinds]int) int {
	n := 0
	for _, v := range a {
		n += v
	}
	return n
}

// TotalDropped reports drops across all message kinds.
func (s Stats) TotalDropped() int { return total(s.Dropped) }

// TotalDelayed reports delays across all message kinds.
func (s Stats) TotalDelayed() int { return total(s.Delayed) }

// TotalDuplicated reports duplications across all message kinds.
func (s Stats) TotalDuplicated() int { return total(s.Duplicated) }

// TotalIntercepted reports all interception decisions taken.
func (s Stats) TotalIntercepted() int { return total(s.Intercepted) }

// Injector is a seeded, deterministic fault source. It implements
// Interceptor for message faults and records a human-readable event trace
// whose bit-identity across runs is the determinism invariant tests pin.
type Injector struct {
	rng   *rand.Rand
	now   func() sim.Time
	plans [numKinds]Faults
	trace []string
	tr    *trace.Tracer // nil = injections not in the structured trace

	Stats Stats
}

// SetTracer mirrors every injected fault into the structured decision trace
// (as KindChaos records) in addition to the injector's own string trace.
func (in *Injector) SetTracer(t *trace.Tracer) { in.tr = t }

// NewInjector creates an injector whose fault stream derives only from
// seed. now supplies timestamps for the trace (pass kernel.Now); nil uses
// zero times.
func NewInjector(seed int64, now func() sim.Time) *Injector {
	if now == nil {
		now = func() sim.Time { return 0 }
	}
	return &Injector{rng: rand.New(rand.NewSource(seed)), now: now}
}

// SetFaults installs the fault plan for one message kind.
func (in *Injector) SetFaults(kind MsgKind, f Faults) {
	if kind >= 0 && kind < numKinds {
		in.plans[kind] = f
	}
}

// SetAllFaults installs the same fault plan for every message kind.
func (in *Injector) SetAllFaults(f Faults) {
	for k := MsgKind(0); k < numKinds; k++ {
		in.plans[k] = f
	}
}

// Intercept implements Interceptor: it draws the message's fate from the
// seeded stream and records any injected fault in the trace.
func (in *Injector) Intercept(kind MsgKind, from, to string) Decision {
	in.Stats.Intercepted[kind]++
	p := in.plans[kind]
	// Always draw all three variates so the stream position per message is
	// fixed regardless of plan probabilities: changing one probability does
	// not reshuffle every later decision.
	dropRoll := in.rng.Float64()
	dupRoll := in.rng.Float64()
	delayRoll := in.rng.Float64()
	switch {
	case dropRoll < p.DropProb:
		in.Stats.Dropped[kind]++
		in.Tracef("%s %s->%s drop", kind, from, to)
		return Decision{Verdict: Drop}
	case dupRoll < p.DupProb:
		in.Stats.Duplicated[kind]++
		in.Tracef("%s %s->%s dup", kind, from, to)
		return Decision{Verdict: Duplicate}
	case delayRoll < p.DelayProb && p.MaxDelay > 0:
		d := sim.Duration(in.rng.Int63n(int64(p.MaxDelay))) + 1
		in.Stats.Delayed[kind]++
		in.Tracef("%s %s->%s delay %v", kind, from, to, d)
		return Decision{Verdict: Delay, Delay: d}
	}
	return Decision{Verdict: Deliver}
}

// Tracef appends a timestamped line to the injector's event trace (the
// string trace whose bit-identity determinism tests pin) and mirrors it
// into the structured decision trace when a tracer is installed.
func (in *Injector) Tracef(format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	in.trace = append(in.trace, fmt.Sprintf("t=%d %s", int64(in.now()), msg))
	in.tr.Emit(trace.Record{Kind: trace.KindChaos, Server: -1, Target: -1, Rule: -1, Detail: msg})
}

// Trace returns the recorded event trace (do not mutate).
func (in *Injector) Trace() []string { return in.trace }

// Rand exposes the injector's deterministic stream (for schedule
// generation tied to the same seed).
func (in *Injector) Rand() *rand.Rand { return in.rng }
