package chaos

import (
	"reflect"
	"testing"

	"plasma/internal/sim"
)

func TestInterceptDeterministic(t *testing.T) {
	run := func() ([]Decision, []string, Stats) {
		in := NewInjector(42, nil)
		in.SetAllFaults(Faults{DropProb: 0.2, DupProb: 0.2, DelayProb: 0.3, MaxDelay: sim.Millis(5)})
		var out []Decision
		for i := 0; i < 200; i++ {
			out = append(out, in.Intercept(MsgKind(i%int(numKinds)), "a", "b"))
		}
		return out, in.Trace(), in.Stats
	}
	d1, t1, s1 := run()
	d2, t2, s2 := run()
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("same seed produced different decisions")
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("same seed produced different traces")
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different stats: %+v vs %+v", s1, s2)
	}
	if s1.TotalDropped() == 0 || s1.TotalDuplicated() == 0 || s1.TotalDelayed() == 0 {
		t.Fatalf("expected all fault families over 200 messages: %+v", s1)
	}
}

func TestInterceptSeedsDiffer(t *testing.T) {
	trace := func(seed int64) []string {
		in := NewInjector(seed, nil)
		in.SetAllFaults(Faults{DropProb: 0.5})
		for i := 0; i < 50; i++ {
			in.Intercept(Report, "a", "b")
		}
		return in.Trace()
	}
	if reflect.DeepEqual(trace(1), trace(2)) {
		t.Fatal("different seeds produced identical fault traces")
	}
}

func TestZeroProbabilitiesDeliverEverything(t *testing.T) {
	in := NewInjector(7, nil)
	for i := 0; i < 100; i++ {
		if d := in.Intercept(Query, "a", "b"); d.Verdict != Deliver {
			t.Fatalf("fault injected with zero probabilities: %v", d.Verdict)
		}
	}
	if in.Stats.TotalIntercepted() != 100 {
		t.Fatalf("intercepted = %d, want 100", in.Stats.TotalIntercepted())
	}
	if len(in.Trace()) != 0 {
		t.Fatalf("clean run produced trace entries: %v", in.Trace())
	}
}

func TestDropProbOneDropsEverything(t *testing.T) {
	in := NewInjector(7, nil)
	in.SetFaults(Report, Faults{DropProb: 1})
	for i := 0; i < 20; i++ {
		if d := in.Intercept(Report, "a", "b"); d.Verdict != Drop {
			t.Fatalf("message survived DropProb=1: %v", d.Verdict)
		}
	}
	// Other kinds keep their (empty) plan.
	if d := in.Intercept(RReply, "a", "b"); d.Verdict != Deliver {
		t.Fatalf("fault plan leaked across kinds: %v", d.Verdict)
	}
	if got := in.Stats.Dropped[Report]; got != 20 {
		t.Fatalf("dropped[Report] = %d, want 20", got)
	}
}

func TestDelayBounded(t *testing.T) {
	in := NewInjector(11, nil)
	max := sim.Millis(3)
	in.SetFaults(QReply, Faults{DelayProb: 1, MaxDelay: max})
	for i := 0; i < 100; i++ {
		d := in.Intercept(QReply, "a", "b")
		if d.Verdict != Delay {
			t.Fatalf("verdict = %v, want Delay", d.Verdict)
		}
		if d.Delay <= 0 || d.Delay > max {
			t.Fatalf("delay %v outside (0, %v]", d.Delay, max)
		}
	}
}

func TestDelayProbWithoutMaxDelayDelivers(t *testing.T) {
	in := NewInjector(11, nil)
	in.SetFaults(Query, Faults{DelayProb: 1}) // MaxDelay 0: delay disabled
	if d := in.Intercept(Query, "a", "b"); d.Verdict != Deliver {
		t.Fatalf("verdict = %v, want Deliver when MaxDelay is zero", d.Verdict)
	}
}

// Changing one kind's probabilities must not reshuffle decisions for later
// messages (each Intercept consumes a fixed number of variates).
func TestStreamPositionStableAcrossPlanChanges(t *testing.T) {
	verdicts := func(report Faults) []Verdict {
		in := NewInjector(5, nil)
		in.SetFaults(Report, report)
		in.SetFaults(Query, Faults{DropProb: 0.4})
		var out []Verdict
		for i := 0; i < 100; i++ {
			in.Intercept(Report, "a", "b") // consumes the stream either way
			out = append(out, in.Intercept(Query, "a", "b").Verdict)
		}
		return out
	}
	base := verdicts(Faults{})
	faulty := verdicts(Faults{DropProb: 0.9})
	if !reflect.DeepEqual(base, faulty) {
		t.Fatal("changing Report's plan reshuffled Query decisions")
	}
}

func TestGenerateDeterministicAndPaired(t *testing.T) {
	opts := ScheduleOpts{
		Horizon:  sim.Time(60 * sim.Second),
		Machines: []int{0, 1, 2, 3},
		GEMs:     2,
		LEMs:     []int{0, 1, 2, 3},
		Crashes:  3, GEMFails: 2, LEMFails: 2,
	}
	gen := func() []Event { return NewInjector(9, nil).Generate(opts) }
	ev1, ev2 := gen(), gen()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatal("same seed generated different schedules")
	}
	if want := 2 * (3 + 2 + 2); len(ev1) != want {
		t.Fatalf("len(events) = %d, want %d", len(ev1), want)
	}
	// Sorted by time, and every fault has a later matching recovery.
	recovery := map[Op]Op{CrashMachine: RepairMachine, FailGEM: RecoverGEM, FailLEM: RecoverLEM}
	for i, ev := range ev1 {
		if i > 0 && ev.At < ev1[i-1].At {
			t.Fatal("schedule not sorted by time")
		}
		rec, isFault := recovery[ev.Op]
		if !isFault {
			continue
		}
		found := false
		for _, other := range ev1 {
			if other.Op == rec && other.Target == ev.Target && other.At > ev.At {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("fault %v %d has no later recovery", ev.Op, ev.Target)
		}
	}
}

// Two events scheduled for the same instant must dispatch in their slice
// order (Apply's sort is stable): a crash and its repair colliding on one
// tick is crash-then-repair, never the reverse.
func TestApplySameInstantEventsKeepScheduleOrder(t *testing.T) {
	k := sim.New(1)
	in := NewInjector(1, k.Now)
	env := &fakeEnv{}
	at := sim.Time(sim.Second)
	in.Apply(k, env, []Event{
		{At: at, Op: CrashMachine, Target: 0},
		{At: at, Op: RepairMachine, Target: 0},
		{At: at, Op: FailLEM, Target: 1},
	})
	k.Run(sim.Time(2 * sim.Second))
	want := []string{"crash", "repair", "faillem"}
	if !reflect.DeepEqual(env.log, want) {
		t.Fatalf("same-instant dispatch order = %v, want %v", env.log, want)
	}
}

// A degenerate one-tick horizon crams every fault onto t=0; recoveries must
// still land strictly later (outage is never zero), or a fault and its own
// recovery would race on the same instant.
func TestGenerateTinyHorizonOrdersRecoveryAfterFault(t *testing.T) {
	in := NewInjector(13, nil)
	events := in.Generate(ScheduleOpts{
		Horizon:  1,
		Machines: []int{0, 1},
		GEMs:     1, LEMs: []int{0, 1},
		Crashes: 2, GEMFails: 1, LEMFails: 2,
	})
	recovery := map[Op]bool{RepairMachine: true, RecoverGEM: true, RecoverLEM: true}
	for _, ev := range events {
		if recovery[ev.Op] {
			if ev.At == 0 {
				t.Fatalf("recovery %v %d scheduled at t=0, same instant as its fault", ev.Op, ev.Target)
			}
		} else if ev.At != 0 {
			t.Fatalf("fault %v %d escaped a one-tick horizon: t=%d", ev.Op, ev.Target, int64(ev.At))
		}
	}
}

type fakeEnv struct{ log []string }

func (e *fakeEnv) CrashMachine(id int) bool  { e.log = append(e.log, "crash"); return true }
func (e *fakeEnv) RepairMachine(id int) bool { e.log = append(e.log, "repair"); return true }
func (e *fakeEnv) FailGEM(id int) bool       { e.log = append(e.log, "failgem"); return id == 0 }
func (e *fakeEnv) RecoverGEM(id int) bool    { e.log = append(e.log, "recgem"); return true }
func (e *fakeEnv) FailLEM(srv int) bool      { e.log = append(e.log, "faillem"); return true }
func (e *fakeEnv) RecoverLEM(srv int) bool   { e.log = append(e.log, "reclem"); return true }

func TestApplyDispatchesAndTracesRefusals(t *testing.T) {
	k := sim.New(1)
	in := NewInjector(1, k.Now)
	env := &fakeEnv{}
	in.Apply(k, env, []Event{
		{At: sim.Time(2 * sim.Second), Op: FailGEM, Target: 1}, // refused by fakeEnv
		{At: sim.Time(sim.Second), Op: CrashMachine, Target: 0},
		{At: sim.Time(3 * sim.Second), Op: RepairMachine, Target: 0},
	})
	k.Run(sim.Time(5 * sim.Second))
	want := []string{"crash", "failgem", "repair"}
	if !reflect.DeepEqual(env.log, want) {
		t.Fatalf("dispatch order = %v, want %v", env.log, want)
	}
	tr := in.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace = %v, want 3 lines", tr)
	}
	if tr[1] != "t=2000000 fail-gem 1 skipped" {
		t.Fatalf("refusal not traced as skipped: %q", tr[1])
	}
}
