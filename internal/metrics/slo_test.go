package metrics

import (
	"math"
	"testing"
)

func TestSLOTrackerIntegratesViolationTime(t *testing.T) {
	s := NewSLOTracker(100) // e.g. 100 ms latency SLO
	s.Observe(0, 50)        // compliant 0..10
	s.Observe(10, 150)      // violating 10..25
	s.Observe(25, 80)       // compliant 25..40
	s.Observe(40, 200)      // violating 40..45
	s.Finish(45)

	if got := s.ViolationSeconds(); math.Abs(got-20) > 1e-9 {
		t.Errorf("ViolationSeconds = %v, want 20", got)
	}
	if s.Episodes() != 2 {
		t.Errorf("Episodes = %d, want 2", s.Episodes())
	}
	if s.Worst() != 200 {
		t.Errorf("Worst = %v, want 200", s.Worst())
	}
}

func TestSLOTrackerNoViolations(t *testing.T) {
	s := NewSLOTracker(100)
	s.Observe(0, 10)
	s.Observe(5, 99)
	s.Finish(10)
	if s.ViolationSeconds() != 0 || s.Episodes() != 0 {
		t.Errorf("clean signal reported %v violation-seconds, %d episodes",
			s.ViolationSeconds(), s.Episodes())
	}
}

func TestSLOTrackerBoundaryIsCompliant(t *testing.T) {
	s := NewSLOTracker(100)
	s.Observe(0, 100) // exactly at the threshold: compliant
	s.Finish(10)
	if s.ViolationSeconds() != 0 {
		t.Errorf("threshold-equal value counted as violating")
	}
}

func TestSLOTrackerEmptyFinish(t *testing.T) {
	s := NewSLOTracker(1)
	s.Finish(100) // no observations: nothing to integrate
	if s.ViolationSeconds() != 0 {
		t.Errorf("empty tracker reported violations")
	}
}

// A violation window still open at end of run must be credited through the
// Finalize instant — without the flush, the whole open interval is lost
// (this is the end-of-run under-count regression).
func TestSLOTrackerFinalizeFlushesOpenWindow(t *testing.T) {
	s := NewSLOTracker(100)
	s.Observe(0, 150) // violating from t=0, never observed again
	if got := s.ViolationSeconds(); got != 0 {
		t.Fatalf("pre-flush ViolationSeconds = %v, want 0 (nothing credited yet)", got)
	}
	s.Finalize(30)
	if got := s.ViolationSeconds(); math.Abs(got-30) > 1e-9 {
		t.Errorf("ViolationSeconds after Finalize(30) = %v, want 30", got)
	}
	if got := s.FinishedAt(); got != 30 {
		t.Errorf("FinishedAt = %v, want 30", got)
	}
}

// Finalize seals the tracker: repeating it later, or re-flushing via
// Finish, must not keep integrating past the end of the run. (Plain
// Finish deliberately fails this — it is the re-openable mid-run
// checkpoint — which is exactly why the end-of-run path uses Finalize.)
func TestSLOTrackerFinalizeIsIdempotent(t *testing.T) {
	s := NewSLOTracker(100)
	s.Observe(0, 150)
	s.Finalize(30)
	s.Finalize(45)
	s.Finish(60)
	if got := s.ViolationSeconds(); math.Abs(got-30) > 1e-9 {
		t.Errorf("ViolationSeconds after repeated finalization = %v, want 30", got)
	}
}

// Straggler observations after Finalize (e.g. replies still in flight at
// the simulation deadline) must not reopen the integration window.
func TestSLOTrackerObserveAfterFinalizeIgnored(t *testing.T) {
	s := NewSLOTracker(100)
	s.Observe(0, 150)
	s.Finalize(10)
	s.Observe(20, 500)
	s.Finalize(40)
	if got := s.ViolationSeconds(); math.Abs(got-10) > 1e-9 {
		t.Errorf("ViolationSeconds = %v, want 10 (post-finalize samples discarded)", got)
	}
	if s.Worst() != 150 {
		t.Errorf("Worst = %v, want 150 (post-finalize samples discarded)", s.Worst())
	}
	if s.Episodes() != 1 {
		t.Errorf("Episodes = %d, want 1", s.Episodes())
	}
}

// Finish stays a live checkpoint: integration continues across it, so
// periodic reporting can flush without ending the run.
func TestSLOTrackerFinishKeepsIntegrating(t *testing.T) {
	s := NewSLOTracker(100)
	s.Observe(0, 150)
	s.Finish(10)
	if got := s.ViolationSeconds(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("checkpoint ViolationSeconds = %v, want 10", got)
	}
	s.Observe(20, 150) // still violating 10..20 and beyond
	s.Finalize(25)
	if got := s.ViolationSeconds(); math.Abs(got-25) > 1e-9 {
		t.Errorf("final ViolationSeconds = %v, want 25", got)
	}
}
