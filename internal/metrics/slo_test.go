package metrics

import (
	"math"
	"testing"
)

func TestSLOTrackerIntegratesViolationTime(t *testing.T) {
	s := NewSLOTracker(100) // e.g. 100 ms latency SLO
	s.Observe(0, 50)        // compliant 0..10
	s.Observe(10, 150)      // violating 10..25
	s.Observe(25, 80)       // compliant 25..40
	s.Observe(40, 200)      // violating 40..45
	s.Finish(45)

	if got := s.ViolationSeconds(); math.Abs(got-20) > 1e-9 {
		t.Errorf("ViolationSeconds = %v, want 20", got)
	}
	if s.Episodes() != 2 {
		t.Errorf("Episodes = %d, want 2", s.Episodes())
	}
	if s.Worst() != 200 {
		t.Errorf("Worst = %v, want 200", s.Worst())
	}
}

func TestSLOTrackerNoViolations(t *testing.T) {
	s := NewSLOTracker(100)
	s.Observe(0, 10)
	s.Observe(5, 99)
	s.Finish(10)
	if s.ViolationSeconds() != 0 || s.Episodes() != 0 {
		t.Errorf("clean signal reported %v violation-seconds, %d episodes",
			s.ViolationSeconds(), s.Episodes())
	}
}

func TestSLOTrackerBoundaryIsCompliant(t *testing.T) {
	s := NewSLOTracker(100)
	s.Observe(0, 100) // exactly at the threshold: compliant
	s.Finish(10)
	if s.ViolationSeconds() != 0 {
		t.Errorf("threshold-equal value counted as violating")
	}
}

func TestSLOTrackerEmptyFinish(t *testing.T) {
	s := NewSLOTracker(1)
	s.Finish(100) // no observations: nothing to integrate
	if s.ViolationSeconds() != 0 {
		t.Errorf("empty tracker reported violations")
	}
}
