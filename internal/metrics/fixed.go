package metrics

import (
	"fmt"
	"math"
)

// FixedHistogram is the constant-memory companion to Histogram for
// high-volume series: a fixed number of equal-width buckets over [lo, hi),
// with dedicated underflow/overflow buckets and exact min/max/sum. Observe
// is O(1) and allocation-free; Percentile walks the bucket counts and
// interpolates linearly inside the chosen bucket, so its error is bounded
// by one bucket width (exact at the tracked min and max).
type FixedHistogram struct {
	lo, width float64
	counts    []uint64
	under     uint64 // samples below lo
	over      uint64 // samples at or above hi
	n         uint64
	sum       float64
	min, max  float64
}

// NewFixedHistogram builds a histogram with the given bucket count over
// [lo, hi). It panics on a non-positive bucket count or an empty range —
// both are programming errors, mirroring NewEWMA.
func NewFixedHistogram(lo, hi float64, buckets int) *FixedHistogram {
	if buckets <= 0 || !(hi > lo) {
		panic(fmt.Sprintf("metrics: FixedHistogram range [%v,%v) with %d buckets", lo, hi, buckets))
	}
	return &FixedHistogram{
		lo:     lo,
		width:  (hi - lo) / float64(buckets),
		counts: make([]uint64, buckets),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one sample. NaN samples are dropped.
func (h *FixedHistogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.n++
	h.sum += x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
	switch i := int((x - h.lo) / h.width); {
	case x < h.lo:
		h.under++
	case i >= len(h.counts):
		h.over++
	default:
		h.counts[i]++
	}
}

// Count reports the number of samples.
func (h *FixedHistogram) Count() int { return int(h.n) }

// Mean reports the exact arithmetic mean (0 if empty).
func (h *FixedHistogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min reports the exact smallest sample (0 if empty).
func (h *FixedHistogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max reports the exact largest sample (0 if empty).
func (h *FixedHistogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Percentile reports an approximation of the p-th percentile. p outside
// [0,100] is clamped; an empty histogram (or NaN p) reports NaN, matching
// Histogram. The estimate interpolates within the bucket holding the rank;
// underflow and overflow ranks resolve to the exact min and max.
func (h *FixedHistogram) Percentile(p float64) float64 {
	if h.n == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := p / 100 * float64(h.n-1)
	if rank < float64(h.under) {
		return h.min
	}
	cum := float64(h.under)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if rank < cum+float64(c) {
			// Interpolate within bucket i by the rank's position among its
			// count. The fraction is capped at 1 so a sparse bucket cannot
			// project past its own top edge and break monotonicity; the
			// result is further clamped to the observed extremes.
			frac := (rank - cum + 0.5) / float64(c)
			if frac > 1 {
				frac = 1
			}
			bLo := h.lo + float64(i)*h.width
			v := bLo + frac*h.width
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += float64(c)
	}
	return h.max
}

// Merge folds other into h. The histograms must share lo/width/buckets;
// mismatched shapes panic.
func (h *FixedHistogram) Merge(other *FixedHistogram) {
	if h.lo != other.lo || h.width != other.width || len(h.counts) != len(other.counts) {
		panic("metrics: merging FixedHistograms with different bucket layouts")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.under += other.under
	h.over += other.over
	h.n += other.n
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset discards all samples, keeping the bucket layout.
func (h *FixedHistogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.under, h.over, h.n, h.sum = 0, 0, 0, 0
	h.min, h.max = math.Inf(1), math.Inf(-1)
}
