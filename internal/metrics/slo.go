package metrics

// SLOTracker integrates SLO-violation time: feed it a stream of
// (time, value) observations and a threshold, and it accumulates the
// seconds during which the observed signal exceeded the threshold,
// treating the signal as a step function between observations (each
// observation's value holds until the next). Naskos et al. motivate
// quantifying elasticity guarantees this way — violation *time*, not just
// convergence plots.
//
// Time is a plain float64 (seconds) so the package stays free of
// simulator imports; callers pass sim.Time.Seconds().
type SLOTracker struct {
	Threshold float64

	lastT      float64
	lastV      float64
	seen       bool
	violating  bool
	violSec    float64
	episodes   int
	worstV     float64
	finishedAt float64
	closed     bool
}

// NewSLOTracker creates a tracker for the given violation threshold:
// observed values strictly above it count as violating.
func NewSLOTracker(threshold float64) *SLOTracker {
	return &SLOTracker{Threshold: threshold}
}

// Observe records the signal's value at time t (seconds). Observations
// must be fed in nondecreasing time order. Observations after Finalize
// are discarded: the run is over, and straggler samples (e.g. replies
// still in flight when the simulation deadline hit) must not reopen the
// integration window.
func (s *SLOTracker) Observe(t, v float64) {
	if s.closed {
		return
	}
	if s.seen {
		s.accumulate(t)
	}
	wasViolating := s.violating
	s.lastT, s.lastV, s.seen = t, v, true
	s.violating = v > s.Threshold
	if s.violating && !wasViolating {
		s.episodes++
	}
	if v > s.worstV {
		s.worstV = v
	}
}

// Finish flushes the integration window through time t, crediting the
// interval since the last observation. Idempotent for the same t; the
// signal is still live afterwards (later Observes keep integrating),
// which makes Finish suitable for mid-run checkpoints. To close the
// tracker at end of run use Finalize, which seals it.
func (s *SLOTracker) Finish(t float64) {
	if s.closed {
		return
	}
	if s.seen {
		s.accumulate(t)
		s.lastT = t
	}
	s.finishedAt = t
}

// Finalize closes the tracker at end of run: a violation window still
// open at now is credited through now (without this, a run ending
// mid-violation under-counts by the entire open interval), and the
// tracker is sealed — further Observe, Finish, or Finalize calls are
// no-ops, so a stray post-deadline sample or a repeated shutdown path
// cannot inflate the integral.
func (s *SLOTracker) Finalize(now float64) {
	s.Finish(now)
	s.closed = true
}

// FinishedAt reports the time the window was last flushed through (the
// last Finish checkpoint or the Finalize instant; 0 before either).
func (s *SLOTracker) FinishedAt() float64 { return s.finishedAt }

func (s *SLOTracker) accumulate(t float64) {
	if s.violating && t > s.lastT {
		s.violSec += t - s.lastT
	}
}

// ViolationSeconds reports the accumulated time the signal spent above
// the threshold (through the last Observe or Finish).
func (s *SLOTracker) ViolationSeconds() float64 { return s.violSec }

// Episodes reports how many distinct violation episodes began (entries
// from compliant to violating).
func (s *SLOTracker) Episodes() int { return s.episodes }

// Worst reports the largest value ever observed (0 before observations).
func (s *SLOTracker) Worst() float64 { return s.worstV }
