package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCounterAddMerge(t *testing.T) {
	var a, b Counter
	a.Add(10)
	a.Add(20)
	b.Add(5)
	a.Merge(b)
	if a.N != 3 || a.Bytes != 35 {
		t.Fatalf("got N=%d Bytes=%d, want 3, 35", a.N, a.Bytes)
	}
	a.Reset()
	if a.N != 0 || a.Bytes != 0 {
		t.Fatalf("reset failed: %+v", a)
	}
}

func TestEWMAFirstObservationSeeds(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("value after first observe = %v, want 10", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("value = %v, want 15", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zero mean/min/max")
	}
	// An empty histogram has no percentile; 0 would be a fabricated sample.
	if got := h.Percentile(50); !math.IsNaN(got) {
		t.Fatalf("empty Percentile(50) = %v, want NaN", got)
	}
}

func TestHistogramPercentileClamped(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	// Out-of-range p clamps to the extremes instead of indexing out of range.
	if got := h.Percentile(150); got != 10 {
		t.Fatalf("p150 = %v, want 10", got)
	}
	if got := h.Percentile(-20); got != 1 {
		t.Fatalf("p-20 = %v, want 1", got)
	}
	if got := h.Percentile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Percentile(NaN) = %v, want NaN", got)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
	if got := h.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("p50 = %v, want 50.5", got)
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", got)
	}
}

func TestHistogramObserveAfterQuery(t *testing.T) {
	var h Histogram
	h.Observe(5)
	_ = h.Percentile(50)
	h.Observe(1) // must re-sort
	if got := h.Min(); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(x)
	}
	if got := h.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestSeriesSummaries(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := s.MeanY(); math.Abs(got-4.5) > 1e-9 {
		t.Fatalf("mean = %v, want 4.5", got)
	}
	if got := s.MaxY(); got != 9 {
		t.Fatalf("max = %v, want 9", got)
	}
	// Last 20% of 10 points = {8, 9} -> mean 8.5.
	if got := s.TailMeanY(0.2); math.Abs(got-8.5) > 1e-9 {
		t.Fatalf("tail mean = %v, want 8.5", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.MeanY() != 0 || s.MaxY() != 0 || s.TailMeanY(0.5) != 0 {
		t.Fatal("empty series should report zeros")
	}
}

// Regression: a truncated-to-zero tail length (n=3, frac=0.1) must average
// the final sample, never divide by an empty tail.
func TestTailMeanYMinimumOneSample(t *testing.T) {
	cases := []struct {
		n    int
		frac float64
		want float64 // Y values are 0..n-1
	}{
		{n: 3, frac: 0.1, want: 2},            // int(0.3)=0 -> floor to 1 sample
		{n: 1, frac: 0.99, want: 0},           // int(0.99)=0 -> 1 sample
		{n: 10, frac: 0.2, want: 8.5},         // exact: last 2 of 0..9
		{n: 10, frac: 0.25, want: 8.5},        // truncates to 2 samples
		{n: 4, frac: 1.0, want: 1.5},          // whole series
		{n: 4, frac: 2.5, want: 1.5},          // frac > 1 clamps to whole series
		{n: 5, frac: 0, want: 4},              // zero frac -> last sample
		{n: 5, frac: -0.5, want: 4},           // negative frac -> last sample
		{n: 5, frac: math.NaN(), want: 4},     // NaN frac -> last sample, not NaN
		{n: 2, frac: 0.5, want: 1},            // exact single sample
		{n: 100, frac: 0.001, want: 99},       // tiny frac on large n
	}
	for _, c := range cases {
		var s Series
		for i := 0; i < c.n; i++ {
			s.Add(float64(i), float64(i))
		}
		got := s.TailMeanY(c.frac)
		if math.IsNaN(got) || math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TailMeanY(n=%d, frac=%v) = %v, want %v", c.n, c.frac, got, c.want)
		}
	}
}

// Property: interleaved Observe/query bursts produce the same percentiles
// as a single sort at the end — the incremental tail-merge must be
// equivalent to a full re-sort.
func TestPropertyIncrementalSortEquivalent(t *testing.T) {
	f := func(raw []float64, splitRaw uint8) bool {
		vals := raw[:0:0]
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			vals = append(vals, x)
		}
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		split := int(splitRaw) % (len(vals) + 1)
		for _, x := range vals[:split] {
			h.Observe(x)
		}
		_ = h.Percentile(50) // force a sort of the first burst
		_ = h.Min()
		for _, x := range vals[split:] {
			h.Observe(x)
		}
		var ref Histogram
		for _, x := range vals {
			ref.Observe(x)
		}
		for p := 0.0; p <= 100; p += 7 {
			if h.Percentile(p) != ref.Percentile(p) {
				return false
			}
		}
		return h.Min() == ref.Min() && h.Max() == ref.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{50, 50, 50}); got != 0 {
		t.Fatalf("balanced imbalance = %v, want 0", got)
	}
	if got := Imbalance([]float64{0, 100}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("imbalance = %v, want 2", got)
	}
	if got := Imbalance(nil); got != 0 {
		t.Fatalf("nil imbalance = %v, want 0", got)
	}
	if got := Imbalance([]float64{0, 0}); got != 0 {
		t.Fatalf("zero-mean imbalance = %v, want 0", got)
	}
}

// Property: Percentile is monotone in p and bounded by [Min, Max].
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var h Histogram
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			h.Observe(x)
		}
		if h.Count() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: p50 of distinct values matches the sorted median neighborhood.
func TestPropertyMedianWithinRange(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		vals := make([]float64, len(raw))
		for i, x := range raw {
			vals[i] = float64(x)
			h.Observe(float64(x))
		}
		sort.Float64s(vals)
		med := h.Percentile(50)
		return med >= vals[0] && med <= vals[len(vals)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
